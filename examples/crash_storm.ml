(* Crash storm: consensus under crash-stop faults.

   Three demonstrations of the fault-injection layer:

   1. racing consensus survives any single targeted crash — even a
      worst-case Before_write crash that swallows a pending covering
      write — because obstruction-free protocols owe nothing to the
      crashed process;
   2. a seeded random crash storm, replayed exactly from the recorded
      RNG state and fault seed;
   3. the classic non-resilient counterexample: a wait-for-all protocol
      where one crash before the announcing write strands everyone else,
      and the model checker's t-resilience search finds and replays the
      stuck witness.

     dune exec examples/crash_storm.exe
*)
open Ts_model
open Ts_protocols

let n = 3
let inputs = [| Value.int 1; Value.int 0; Value.int 1 |]

let () =
  let proto = Racing.make ~n in
  Format.printf "== 1. targeted crashes against %s ==@." proto.Protocol.name;
  List.iter
    (fun (label, plan) ->
      let rng = Rng.create 2026 in
      let o =
        Sim.run proto ~faults:plan ~inputs ~policy:(Sim.Random rng)
          ~flips:(fun () -> Rng.bool rng)
          ~budget:100_000
      in
      Format.printf "  %-28s crashed {%a}; survivors decided: %a@." label
        Fmt.(list ~sep:comma (fmt "p%d")) o.Sim.crashed
        Fmt.(list ~sep:comma (pair ~sep:(any "->") (fmt "p%d") Value.pp))
        o.Sim.decisions;
      match Sim.agreement o with
      | Ok v ->
        assert (Sim.valid ~inputs v);
        Format.printf "  %-28s agreement on %a@." "" Value.pp v
      | Error vs -> Format.printf "  DISAGREEMENT: %a@." Fmt.(Dump.list Value.pp) vs)
    [
      "crash p0 after 5 steps:", Fault.crash_after 0 5;
      "crash p2 before a write:", Fault.crash_before_write 2;
      "crash p0 and p1:", Fault.union (Fault.crash_after 0 3) (Fault.crash_before_write 1);
    ];

  Format.printf "@.== 2. seeded random crash storm ==@.";
  let plan = Fault.random ~seed:42 ~n ~t:(n - 1) ~max_delay:10 in
  Format.printf "  plan: %a@." Fault.pp plan;
  let rng = Rng.create 7 in
  let o =
    Sim.run proto ~faults:plan ~inputs ~policy:(Sim.Random rng)
      ~flips:(fun () -> Rng.bool rng)
      ~budget:100_000
  in
  Format.printf "  crashed {%a}, %d steps, decisions %a@."
    Fmt.(list ~sep:comma (fmt "p%d")) o.Sim.crashed o.Sim.steps
    Fmt.(list ~sep:comma (pair ~sep:(any "->") (fmt "p%d") Value.pp)) o.Sim.decisions;
  (* the outcome records the generator state: replay the identical run *)
  (match o.Sim.rng_state with
   | None -> assert false
   | Some s ->
     let rng' = Rng.of_state s in
     let o' =
       Sim.run proto ~faults:plan ~inputs ~policy:(Sim.Random rng')
         ~flips:(fun () -> Rng.bool rng')
         ~budget:100_000
     in
     Format.printf "  replay from recorded rng state: %s@."
       (if o'.Sim.steps = o.Sim.steps && o'.Sim.decisions = o.Sim.decisions
           && o'.Sim.crashed = o.Sim.crashed
        then "identical run reproduced"
        else "MISMATCH"));

  Format.printf "@.== 3. a protocol that is not 1-resilient ==@.";
  let waiting = Broken.wait_for_all ~n in
  Format.printf "  %s: %s@." waiting.Protocol.name waiting.Protocol.description;
  (* fault-free, the full group terminates... *)
  let o =
    Sim.run waiting ~inputs ~policy:Sim.Round_robin ~flips:(fun () -> true)
      ~budget:10_000
  in
  Format.printf "  fault-free round-robin: %d/%d decided in %d steps@."
    (List.length o.Sim.decisions) n o.Sim.steps;
  (* ...but one crash before the announcing write stalls the rest *)
  let o =
    Sim.run waiting ~faults:(Fault.crash_before_write 0) ~inputs
      ~policy:Sim.Round_robin ~flips:(fun () -> true) ~budget:10_000
  in
  Format.printf "  crash p0 before its write: %d decided, budget exhausted: %b@."
    (List.length o.Sim.decisions) o.Sim.ran_out;
  (* the checker finds the same flaw as a replayable witness *)
  let r =
    Ts_checker.Explore.check_t_resilient waiting ~t:1
      ~inputs_list:(Ts_checker.Explore.binary_inputs n) ~max_configs:5_000
      ~max_depth:20 ~solo_budget:200
  in
  match r.Ts_checker.Explore.verdict with
  | Ok () -> Format.printf "  checker: unexpectedly clean?!@."
  | Error v ->
    Format.printf "  checker: %a@." Ts_checker.Explore.pp_violation v;
    (match Ts_checker.Explore.replay waiting v with
     | Ok () -> Format.printf "  witness independently replayed: confirmed.@."
     | Error e -> Format.printf "  replay failed: %s@." e)
