#!/usr/bin/env sh
# CI entry point: full build, test suite, and a bench smoke run.
# Assumes an opam switch with OCaml >= 5.1 and the repo's dependencies
# (fmt, logs, cmdliner, alcotest, qcheck(-alcotest,-core), bechamel)
# already installed — see README "Install & run".
#
# The test and smoke steps run under `timeout`: a hung search must fail
# the build loudly, not eat the CI time budget.  The limits are far above
# any healthy run (tests ~1 min, smokes a few seconds).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest (20 min cap) =="
timeout 1200 dune runtest

echo "== bench smoke (tables only, no timings; 5 min cap) =="
timeout 300 dune exec bench/main.exe -- --tables-only > /dev/null

echo "== fault-injection smoke (crash storm + t-resilience; 5 min cap) =="
timeout 300 dune exec examples/crash_storm.exe > /dev/null
timeout 300 dune exec bin/tightspace.exe -- resilient --protocol racing -n 3 -t 2 \
  --max-configs 2000 --max-depth 12 > /dev/null
# the non-resilient control must be caught (exit 1) and its witness replay
if timeout 300 dune exec bin/tightspace.exe -- resilient --protocol broken-wait -n 3 -t 1 \
     > /tmp/resilient-broken.out 2>&1; then
  echo "ci: broken-wait unexpectedly passed the resilience check" >&2
  exit 1
fi
grep -q "witness replayed independently: confirmed" /tmp/resilient-broken.out

echo "== static analysis gate (5 min cap) =="
# the full gate: every legitimate protocol clean, every Broken.* control
# flagged, the parallel engine certified race-free, the planted race caught
timeout 300 dune exec bin/tightspace.exe -- analyze --all --json \
  > /tmp/analyze-all.json
grep -q '"ok": true' /tmp/analyze-all.json
grep -q '"planted_race_caught": true' /tmp/analyze-all.json
# single-protocol mode gates on the protocol itself: a broken control must
# exit non-zero even though the registry expects it to be flagged
if timeout 300 dune exec bin/tightspace.exe -- analyze --protocol broken-lww \
     > /dev/null 2>&1; then
  echo "ci: analyze did not flag broken-lww" >&2
  exit 1
fi
timeout 300 dune exec bin/tightspace.exe -- analyze --protocol racing > /dev/null

echo "ci: ok"
