#!/usr/bin/env sh
# CI entry point: full build, test suite, and a bench smoke run.
# Assumes an opam switch with OCaml >= 5.1 and the repo's dependencies
# (fmt, logs, cmdliner, alcotest, qcheck(-alcotest,-core), bechamel)
# already installed — see README "Install & run".
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== bench smoke (tables only, no timings) =="
dune exec bench/main.exe -- --tables-only > /dev/null

echo "ci: ok"
