#!/usr/bin/env sh
# CI entry point: full build, test suite, and a bench smoke run.
# Assumes an opam switch with OCaml >= 5.1 and the repo's dependencies
# (fmt, logs, cmdliner, alcotest, qcheck(-alcotest,-core), bechamel)
# already installed — see README "Install & run".
#
# The test and smoke steps run under `timeout`: a hung search must fail
# the build loudly, not eat the CI time budget.  The limits are far above
# any healthy run (tests ~1 min, smokes a few seconds).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest (20 min cap) =="
timeout 1200 dune runtest

echo "== bench smoke (tables only, no timings; 5 min cap) =="
timeout 300 dune exec bench/main.exe -- --tables-only > /dev/null

echo "== fault-injection smoke (crash storm + t-resilience; 5 min cap) =="
timeout 300 dune exec examples/crash_storm.exe > /dev/null
timeout 300 dune exec bin/tightspace.exe -- resilient --protocol racing -n 3 -t 2 \
  --max-configs 2000 --max-depth 12 > /dev/null
# the non-resilient control must be caught (exit 1) and its witness replay
if timeout 300 dune exec bin/tightspace.exe -- resilient --protocol broken-wait -n 3 -t 1 \
     > /tmp/resilient-broken.out 2>&1; then
  echo "ci: broken-wait unexpectedly passed the resilience check" >&2
  exit 1
fi
grep -q "witness replayed independently: confirmed" /tmp/resilient-broken.out

echo "== trace smoke (span tracing + Chrome export; 5 min cap) =="
# the Theorem-1 trace must export well-formed Chrome trace_event JSON with
# at least one span per lemma phase (the names CI greps for are the stable
# span vocabulary documented in docs/OBSERVABILITY.md)
timeout 300 dune exec bin/tightspace.exe -- trace racing -n 3 \
  --out /tmp/trace.json --metrics > /tmp/trace.out
if command -v python3 > /dev/null 2>&1; then
  python3 -c 'import json; json.load(open("/tmp/trace.json"))'
fi
for span in theorem1 lemma1 lemma2 lemma3 lemma4 valency.search; do
  grep -q "\"name\":\"$span\"" /tmp/trace.json || {
    echo "ci: trace.json is missing span '$span'" >&2; exit 1; }
done
grep -q "engine metrics:" /tmp/trace.out

echo "== odoc (skipped unless odoc is installed) =="
if command -v odoc > /dev/null 2>&1; then
  dune build @doc 2> /tmp/odoc.err
  # odoc warnings (broken references, missing comments) land on stderr;
  # the docs satellite requires a warning-clean render
  if [ -s /tmp/odoc.err ]; then
    echo "ci: dune build @doc produced warnings:" >&2
    cat /tmp/odoc.err >&2
    exit 1
  fi
else
  echo "odoc not installed; skipping doc build"
fi

echo "== static analysis gate (5 min cap) =="
# the full gate: every legitimate protocol clean, every Broken.* control
# flagged, the parallel engine certified race-free, the planted race caught
timeout 300 dune exec bin/tightspace.exe -- analyze --all --json \
  > /tmp/analyze-all.json
grep -q '"ok": true' /tmp/analyze-all.json
grep -q '"planted_race_caught": true' /tmp/analyze-all.json
# single-protocol mode gates on the protocol itself: a broken control must
# exit non-zero even though the registry expects it to be flagged
if timeout 300 dune exec bin/tightspace.exe -- analyze --protocol broken-lww \
     > /dev/null 2>&1; then
  echo "ci: analyze did not flag broken-lww" >&2
  exit 1
fi
timeout 300 dune exec bin/tightspace.exe -- analyze --protocol racing > /dev/null

echo "== serve smoke (daemon + mixed batch + cache hit + drain; 5 min cap) =="
# the daemon must start on an ephemeral port, answer a mixed batch
# (including one deliberately malformed frame), serve the repeated query
# from cache, and drain cleanly on SIGTERM — all the E21 plumbing
TS=_build/default/bin/tightspace.exe
"$TS" serve --port 0 --workers 2 > /tmp/serve.out 2>&1 &
SERVE_PID=$!
PORT=""
i=0
while [ -z "$PORT" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "ci: serve did not announce a port" >&2; cat /tmp/serve.out >&2
    kill "$SERVE_PID" 2> /dev/null || true; exit 1
  fi
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' /tmp/serve.out)
  [ -n "$PORT" ] || sleep 0.2
done
timeout 60 "$TS" query ping --port "$PORT" > /tmp/q-ping.json
grep -q '"pong": true' /tmp/q-ping.json
timeout 300 "$TS" query witness --port "$PORT" --protocol racing -n 2 > /tmp/q-cold.json
grep -q '"provenance": "fresh"' /tmp/q-cold.json
# the repeat must come back from the cache
timeout 60 "$TS" query witness --port "$PORT" --protocol racing -n 2 > /tmp/q-warm.json
grep -q '"provenance": "cached"' /tmp/q-warm.json
# a malformed frame gets a typed error answer and must not kill the daemon
timeout 60 "$TS" query ping --port "$PORT" --raw 'garbage#frame' > /tmp/q-raw.json
grep -q '"bad-frame"' /tmp/q-raw.json
kill -0 "$SERVE_PID" || { echo "ci: daemon died on malformed frame" >&2; exit 1; }
timeout 60 "$TS" query stats --port "$PORT" > /tmp/q-stats.json
grep -q '"hits": 1' /tmp/q-stats.json
# graceful drain: SIGTERM, bounded wait, daemon must exit 0 with a summary
kill -TERM "$SERVE_PID"
i=0
while kill -0 "$SERVE_PID" 2> /dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "ci: serve did not drain after SIGTERM" >&2
    kill -9 "$SERVE_PID" 2> /dev/null || true; exit 1
  fi
  sleep 0.2
done
wait "$SERVE_PID"
grep -q "served .* request" /tmp/serve.out

echo "== persistence smoke (store-backed serve + restart recovery; 5 min cap) =="
# the E22 story end to end: a store-backed daemon persists its answers,
# and a NEW process on the same log serves the repeat from disk — same
# provenance discipline, byte-identical result — without recomputing
STORE=/tmp/ci-witlog-$$.log
rm -f "$STORE"
serve_on_store() {
  # $1: output file.  Starts a store-backed daemon, echoes its port.
  "$TS" serve --port 0 --workers 2 --store "$STORE" > "$1" 2>&1 &
  SERVE_PID=$!
  PORT=""
  i=0
  while [ -z "$PORT" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "ci: store-backed serve did not announce a port" >&2; cat "$1" >&2
      kill "$SERVE_PID" 2> /dev/null || true; exit 1
    fi
    PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$1")
    [ -n "$PORT" ] || sleep 0.2
  done
}
drain() {
  kill -TERM "$SERVE_PID"
  i=0
  while kill -0 "$SERVE_PID" 2> /dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "ci: store-backed serve did not drain after SIGTERM" >&2
      kill -9 "$SERVE_PID" 2> /dev/null || true; exit 1
    fi
    sleep 0.2
  done
  wait "$SERVE_PID"
}
serve_on_store /tmp/serve-store1.out
timeout 300 "$TS" query witness --port "$PORT" --protocol racing -n 2 > /tmp/q-persist1.json
grep -q '"provenance": "fresh"' /tmp/q-persist1.json
drain
# the log must exist and carry the one answer
"$TS" store "$STORE" > /tmp/store-inspect.out
grep -q "1 record" /tmp/store-inspect.out
# restart on the same log: the repeat is served from disk, not recomputed
serve_on_store /tmp/serve-store2.out
timeout 60 "$TS" query witness --port "$PORT" --protocol racing -n 2 > /tmp/q-persist2.json
grep -q '"provenance": "recovered"' /tmp/q-persist2.json
# ...and a second repeat from the re-warmed memory tier
timeout 60 "$TS" query witness --port "$PORT" --protocol racing -n 2 > /tmp/q-persist3.json
grep -q '"provenance": "cached"' /tmp/q-persist3.json
if command -v python3 > /dev/null 2>&1; then
  # the differential guarantee: all three tiers return the same result bytes
  python3 - /tmp/q-persist1.json /tmp/q-persist2.json /tmp/q-persist3.json <<'EOF'
import json, sys
fresh, recovered, cached = (
    json.dumps(json.load(open(f))["result"], sort_keys=True) for f in sys.argv[1:])
assert fresh == recovered == cached, "fresh/recovered/cached results differ"
EOF
fi
drain
rm -f "$STORE"

echo "== chaos smoke (fault proxy + resilient client + crash torture; 10 min cap) =="
# the E23 bar, part 1: the full loadgen mix through an in-process chaos
# proxy injecting resets, truncations, corruption, latency and throttling
# — every call must eventually succeed with answers byte-identical to the
# fault-free baseline, replayable from the printed seed
timeout 600 dune exec bench/loadgen.exe -- --chaos --clients 4 --rounds 10 \
  --chaos-seed 2026 > /tmp/chaos-loadgen.out
grep -q "100% eventual success" /tmp/chaos-loadgen.out
# part 2: the standalone proxy CLI, fault probability 1.0 (every
# connection draws a faulty plan), with the query client's retry budget
# absorbing whatever the schedule deals
"$TS" serve --port 0 --workers 2 > /tmp/serve-chaos.out 2>&1 &
SERVE_PID=$!
PORT=""
i=0
while [ -z "$PORT" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "ci: serve did not announce a port" >&2; cat /tmp/serve-chaos.out >&2
    kill "$SERVE_PID" 2> /dev/null || true; exit 1
  fi
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' /tmp/serve-chaos.out)
  [ -n "$PORT" ] || sleep 0.2
done
"$TS" chaos proxy --upstream-port "$PORT" --seed 7 --fault-prob 1.0 \
  > /tmp/chaos-proxy.out 2>&1 &
PROXY_PID=$!
PPORT=""
i=0
while [ -z "$PPORT" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "ci: chaos proxy did not announce a port" >&2; cat /tmp/chaos-proxy.out >&2
    kill "$PROXY_PID" "$SERVE_PID" 2> /dev/null || true; exit 1
  fi
  PPORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' /tmp/chaos-proxy.out)
  [ -n "$PPORT" ] || sleep 0.2
done
timeout 300 "$TS" query witness --port "$PPORT" --protocol racing -n 2 \
  --retries 10 > /tmp/q-chaos1.json
timeout 300 "$TS" query witness --port "$PPORT" --protocol racing -n 2 \
  --retries 10 > /tmp/q-chaos2.json
if command -v python3 > /dev/null 2>&1; then
  # byte-equal result bodies through the faulty path
  python3 - /tmp/q-chaos1.json /tmp/q-chaos2.json <<'EOF'
import json, sys
a, b = (json.dumps(json.load(open(f))["result"], sort_keys=True) for f in sys.argv[1:])
assert a == b, "results through the chaos proxy differ"
EOF
fi
kill -INT "$PROXY_PID"
wait "$PROXY_PID"
grep -q "connections" /tmp/chaos-proxy.out
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
# part 3: the store crash-torture bar — 300 seeded append/crash/reopen
# cycles, recovery invariants checked sharply at every reopen
TORTURE_LOG=/tmp/ci-torture-$$.log
timeout 600 "$TS" chaos torture --iterations 300 --seed 2026 \
  --path "$TORTURE_LOG" --json > /tmp/torture.json
grep -q '"iterations":300' /tmp/torture.json
rm -f "$TORTURE_LOG"

echo "== certificate gate (witness corpus + micro-checker + tamper rejection; 10 min cap) =="
# the trust base must stay minimal: the micro-checker's dune stanza may
# never grow a (libraries ...) field — stdlib only, enforced here
if grep -q "(libraries" lib/cert/microcheck/dune; then
  echo "ci: lib/cert/microcheck must not depend on any library" >&2
  exit 1
fi
# the gating pass: every registry witness certifies (micro-checker AND
# engine replay), every tampered variant is rejected
timeout 600 dune exec bin/tightspace.exe -- analyze --certify --json \
  > /tmp/certify-gate.json
grep -q '"ok": true' /tmp/certify-gate.json
# a small on-disk corpus through the standalone checker
CERTDIR=/tmp/ci-certs-$$
mkdir -p "$CERTDIR"
timeout 300 "$TS" witness --protocol racing -n 2 \
  --certificate "$CERTDIR/racing.cert" > /dev/null
# the violation subcommands exit 1 when they find what they are sent to
# find; the certificate is the point here, not the exit code
timeout 300 "$TS" check --protocol broken-lww -n 2 \
  --certificate "$CERTDIR/broken-lww.cert" > /dev/null || true
timeout 300 "$TS" resilient --protocol broken-wait -n 2 -t 1 \
  --certificate "$CERTDIR/broken-wait.cert" > /dev/null || true
for f in racing broken-lww broken-wait; do
  [ -s "$CERTDIR/$f.cert" ] || {
    echo "ci: no certificate was written for $f" >&2; exit 1; }
done
timeout 60 "$TS" certify "$CERTDIR"/*.cert
# flip one byte mid-certificate: the checker must reject with exit 3
if command -v python3 > /dev/null 2>&1; then
  python3 - "$CERTDIR/racing.cert" "$CERTDIR/tampered.cert" <<'PYFLIP'
import sys
b = bytearray(open(sys.argv[1], "rb").read())
b[len(b) // 2] ^= 0x01
open(sys.argv[2], "wb").write(bytes(b))
PYFLIP
  set +e
  timeout 60 "$TS" certify "$CERTDIR/tampered.cert" > /dev/null
  RC=$?
  set -e
  if [ "$RC" -ne 3 ]; then
    echo "ci: tampered certificate exited $RC, want 3" >&2
    exit 1
  fi
fi
# certified answers survive the store: persist one, then audit the log
AUDIT_STORE=/tmp/ci-auditlog-$$.log
rm -f "$AUDIT_STORE"
"$TS" serve --port 0 --workers 2 --store "$AUDIT_STORE" > /tmp/serve-audit.out 2>&1 &
SERVE_PID=$!
PORT=""
i=0
while [ -z "$PORT" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "ci: audit serve did not announce a port" >&2; cat /tmp/serve-audit.out >&2
    kill "$SERVE_PID" 2> /dev/null || true; exit 1
  fi
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' /tmp/serve-audit.out)
  [ -n "$PORT" ] || sleep 0.2
done
timeout 300 "$TS" query witness --port "$PORT" --protocol racing -n 2 \
  --certificate > /tmp/q-certified.json
grep -q '"certificate"' /tmp/q-certified.json
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
timeout 60 "$TS" store "$AUDIT_STORE" --audit > /tmp/store-audit.out
grep -q "certificate pass" /tmp/store-audit.out
rm -rf "$CERTDIR" "$AUDIT_STORE"

echo "== crosscheck gate (two lower-bound engines, full registry; 10 min cap) =="
# both engines over every registry protocol: identical bounds and accepted
# witnesses wherever agreement is expected, and at least one agreement
timeout 600 dune exec bin/tightspace.exe -- crosscheck --json \
  > /tmp/crosscheck-gate.json
grep -q '"ok": true' /tmp/crosscheck-gate.json
# the gate must prove it can catch a divergence: the planted
# broken-scribbler fixture (revisionist claims a bound, Lemmas refuses)
# exits non-zero in single-protocol mode
if timeout 300 dune exec bin/tightspace.exe -- crosscheck \
     --protocol broken-scribbler > /dev/null 2>&1; then
  echo "ci: crosscheck did not catch the planted broken-scribbler divergence" >&2
  exit 1
fi
# ...and a genuine agreement exits zero
timeout 300 dune exec bin/tightspace.exe -- crosscheck --protocol racing \
  > /dev/null
# the two-engine witness path agrees end to end on the CLI too
timeout 300 "$TS" witness --protocol racing -n 2 --engine both \
  > /tmp/witness-both.out
grep -q "engines agree: space bound 1" /tmp/witness-both.out
# a second-engine certificate round-trips through the micro-checker
timeout 300 "$TS" witness --protocol racing -n 2 --engine revisionist \
  --certificate /tmp/ci-rev-$$.cert > /dev/null
timeout 60 "$TS" certify /tmp/ci-rev-$$.cert
rm -f /tmp/ci-rev-$$.cert

echo "== cluster smoke (2 TCP workers + coordinator, byte-identical to serial; 10 min cap) =="
# the PR 9 bar: a two-worker cluster over real TCP returns the exact
# bytes the serial engine prints — verdicts, violations, visit counts,
# queue peak — and workers drain cleanly on SIGTERM
wait_cluster_port() {
  # $1: worker log file.  Sets PORT from the worker's announcement line.
  PORT=""
  i=0
  while [ -z "$PORT" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "ci: cluster worker did not announce a port" >&2; cat "$1" >&2
      kill "$W1_PID" "$W2_PID" 2> /dev/null || true; exit 1
    fi
    PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$1")
    [ -n "$PORT" ] || sleep 0.2
  done
}
"$TS" cluster worker --port 0 > /tmp/ci-cluster-w1.out 2>&1 &
W1_PID=$!
"$TS" cluster worker --port 0 > /tmp/ci-cluster-w2.out 2>&1 &
W2_PID=$!
wait_cluster_port /tmp/ci-cluster-w1.out; P1=$PORT
wait_cluster_port /tmp/ci-cluster-w2.out; P2=$PORT
# clean run: same bytes as the serial engine, exit 0
timeout 300 "$TS" cluster coordinate check --protocol racing -n 2 \
  --max-configs 400 --max-depth 12 \
  --worker 127.0.0.1:"$P1" --worker 127.0.0.1:"$P2" \
  --json > /tmp/ci-cluster-clean.json
timeout 300 "$TS" check --protocol racing -n 2 --max-configs 400 --max-depth 12 \
  --json > /tmp/ci-serial-clean.json
cmp /tmp/ci-cluster-clean.json /tmp/ci-serial-clean.json
# violation run: same bytes AND the same exit code (1) as the serial engine
set +e
timeout 300 "$TS" cluster coordinate check --protocol broken-lww -n 2 \
  --max-configs 400 --max-depth 12 \
  --worker 127.0.0.1:"$P1" --worker 127.0.0.1:"$P2" \
  --json > /tmp/ci-cluster-broken.json
CRC=$?
timeout 300 "$TS" check --protocol broken-lww -n 2 \
  --max-configs 400 --max-depth 12 \
  --json > /tmp/ci-serial-broken.json
SRC=$?
set -e
if [ "$CRC" -ne 1 ] || [ "$SRC" -ne 1 ]; then
  echo "ci: broken-lww exits: cluster $CRC serial $SRC, want 1/1" >&2
  exit 1
fi
cmp /tmp/ci-cluster-broken.json /tmp/ci-serial-broken.json
if command -v python3 > /dev/null 2>&1; then
  # structural double-check on top of the literal byte diff
  python3 - /tmp/ci-cluster-clean.json /tmp/ci-serial-clean.json <<'EOF'
import json, sys
cluster, serial = (json.load(open(f)) for f in sys.argv[1:])
assert cluster == serial, "cluster/serial result documents differ"
assert cluster["stats"]["configs_explored"] == serial["stats"]["configs_explored"]
EOF
fi
# graceful drain: SIGTERM, bounded wait, both workers exit 0
kill -TERM "$W1_PID" "$W2_PID"
for PID in "$W1_PID" "$W2_PID"; do
  i=0
  while kill -0 "$PID" 2> /dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "ci: cluster worker did not drain after SIGTERM" >&2
      kill -9 "$W1_PID" "$W2_PID" 2> /dev/null || true; exit 1
    fi
    sleep 0.2
  done
done
wait "$W1_PID"
wait "$W2_PID"

echo "== cluster walkthrough (docs/CLUSTER.md fence, verbatim; 10 min cap) =="
# the operator's handbook is a contract: the quick-start fence must run
# exactly as printed, from the repo root, after dune build
if command -v python3 > /dev/null 2>&1; then
  python3 - <<'EOF' > /tmp/ci-cluster-walkthrough.sh
import re
text = open("docs/CLUSTER.md", encoding="utf-8").read()
m = re.search(r'<!-- ci:cluster-walkthrough -->\n```sh\n(.*?)\n```', text, re.S)
assert m, "docs/CLUSTER.md lost its ci:cluster-walkthrough fence"
print(m.group(1))
EOF
  timeout 600 sh -eu /tmp/ci-cluster-walkthrough.sh
else
  echo "python3 not installed; skipping walkthrough run"
fi

echo "== docs link check (every relative link must resolve) =="
if command -v python3 > /dev/null 2>&1; then
  python3 - <<'EOF'
import os, re, sys
files = ["README.md"] + sorted(
    os.path.join("docs", f) for f in os.listdir("docs") if f.endswith(".md"))
bad = []
for path in files:
    text = open(path, encoding="utf-8").read()
    for m in re.finditer(r"\[[^\]]*\]\(([^)\s]+)\)", text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
        if not os.path.exists(resolved):
            bad.append("%s: dangling link -> %s" % (path, target))
for b in bad:
    print("ci: " + b, file=sys.stderr)
sys.exit(1 if bad else 0)
EOF
else
  echo "python3 not installed; skipping docs link check"
fi

echo "ci: ok"
