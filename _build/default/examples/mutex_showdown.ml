(* Mutual exclusion under the Fan-Lynch state-change cost model.

   Canonical executions (every process enters the critical section once)
   for three locks: Peterson's filter lock, an arbitration tree of
   2-process Peterson locks, and a swap-based test-and-set lock.  The
   encoder then squeezes a canonical execution into bits and gets the
   critical-section permutation back out.

     dune exec examples/mutex_showdown.exe
*)
open Ts_model
open Ts_mutex

let () =
  Format.printf "Canonical executions in the state-change cost model@.";
  Format.printf "%4s %12s %12s %12s %14s@." "n" "peterson" "tournament" "tas(swap)"
    "FL bound nlog2n";
  List.iter
    (fun n ->
      let order = Array.init n Fun.id in
      let cost alg = (Arena.serial alg ~order).Arena.cost in
      Format.printf "%4d %12d %12d %12d %14.0f@." n
        (cost (Peterson.make ~n))
        (cost (Tournament.make ~n))
        (cost (Tas_lock.make ~n))
        (Ts_core.Bounds.fan_lynch_cost n))
    [ 2; 4; 8; 16; 32; 64 ];

  (* contention: everyone in the trying section at once *)
  let n = 8 in
  let o = Arena.contended (Tournament.make ~n) in
  Format.printf "@.contended tournament, n=%d: cost %d, CS order %a@." n o.Arena.cost
    Fmt.(Dump.list int) o.Arena.cs_order;

  (* encoder/decoder: the information-theoretic argument, live *)
  let alg = Tournament.make ~n in
  let order = Rng.permutation (Rng.create 17) n in
  let oserial = Arena.serial alg ~order in
  (match Ts_encoder.Codec.round_trip alg oserial with
   | Ok enc ->
     let o' = Ts_encoder.Codec.decode (Tournament.make ~n) enc in
     Format.printf
       "@.encoded a canonical execution for order %a@.\
        into %d bits (entropy floor log2(%d!) = %.1f);@.\
        decoder replayed it and recovered the order %a@."
       Fmt.(Dump.list int) (Array.to_list order)
       (snd enc.Ts_encoder.Codec.bits) n
       (Ts_core.Bounds.log2_factorial n)
       Fmt.(Dump.list int) o'.Arena.cs_order
   | Error e -> Format.printf "round trip failed: %s@." e);
  Format.printf
    "@.Since the decoder recovers the permutation, the n! canonical executions@.\
     have distinct encodings, so some execution costs Ω(n log n) to describe —@.\
     the Fan-Lynch lower bound, matched by the arbitration tree above.@."
