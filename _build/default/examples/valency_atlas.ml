(* The pictures behind the proofs, generated from a real protocol.

   Two artefacts:
   - an ASCII space-time diagram of an adversarial execution (the lanes
     the covering arguments are usually drawn with), and
   - the valency-annotated configuration graph of 2-process racing
     consensus, written to valency.dot for Graphviz (`dot -Tsvg`).

     dune exec examples/valency_atlas.exe
*)
open Ts_model
open Ts_core
open Ts_protocols

let () =
  (* a lockstep duel, drawn *)
  let proto = Racing.make ~n:2 in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let o =
    Sim.run proto ~inputs ~policy:(Sim.Alternating (0, 1)) ~flips:(fun () -> false)
      ~budget:40
  in
  Format.printf "racing-2 under a lockstep schedule (w = write, r = read):@.@.%s@."
    (Diagram.render ~width:20 ~n:2 o.Sim.trace);

  (* the valency atlas *)
  let t = Valency.create proto ~horizon:40 in
  let dot, stats =
    Valgraph.dot t ~inputs ~pset:(Pset.all 2) ~depth:12 ~max_nodes:4_000
  in
  let file = "valency.dot" in
  let oc = open_out file in
  output_string oc dot;
  close_out oc;
  Format.printf
    "wrote %s: %d configurations, %d edges@.\
    \  bivalent: %d   0-univalent: %d   1-univalent: %d@.\
     render with:  dot -Tsvg %s -o valency.svg@.@."
    file stats.Valgraph.nodes stats.Valgraph.edges stats.Valgraph.bivalent
    stats.Valgraph.univalent0 stats.Valgraph.univalent1 file;
  Format.printf
    "The bivalent region (ellipses) narrows between the two univalent regions@.\
     (boxes) — the FLP picture.  Zhu's Lemma 4 walks this graph keeping a pair@.\
     bivalent while parking everyone else on covered registers.@."
