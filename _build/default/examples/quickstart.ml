(* Quickstart: run an obstruction-free consensus protocol in the simulator.

   Three processes propose bits, a seeded random scheduler interleaves
   them, and they agree on one of the proposed values using only
   read/write registers — the upper-bound side of the paper's story.

     dune exec examples/quickstart.exe
*)
open Ts_model
open Ts_protocols

let () =
  let n = 3 in
  let proto = Racing.make ~n in
  let inputs = [| Value.int 1; Value.int 0; Value.int 1 |] in
  Format.printf "protocol %s: %d processes, %d registers@." proto.Protocol.name n
    proto.Protocol.num_registers;
  Format.printf "inputs: %a@." Fmt.(array ~sep:sp Value.pp) inputs;

  (* a fully random, reproducible schedule *)
  let rng = Rng.create 2026 in
  let outcome =
    Sim.run proto ~inputs ~policy:(Sim.Random rng)
      ~flips:(fun () -> Rng.bool rng)
      ~budget:100_000
  in
  Format.printf "@.%d steps under a random schedule; decisions:@." outcome.Sim.steps;
  List.iter (fun (p, v) -> Format.printf "  p%d decided %a@." p Value.pp v) outcome.Sim.decisions;
  (match Sim.agreement outcome with
   | Ok v ->
     Format.printf "agreement on %a (valid input: %b)@." Value.pp v (Sim.valid ~inputs v)
   | Error vs -> Format.printf "DISAGREEMENT: %a@." Fmt.(Dump.list Value.pp) vs);

  (* obstruction-freedom: any process running alone decides *)
  let solo = Sim.run proto ~inputs ~policy:(Sim.Solo 1) ~flips:(fun () -> true) ~budget:10_000 in
  Format.printf "@.p1 running solo decides %a after %d steps, writing registers {%a}@."
    Value.pp (List.assoc 1 solo.Sim.decisions) solo.Sim.steps
    Fmt.(list ~sep:comma (fmt "R%d"))
    (Execution.written_registers solo.Sim.trace);
  Format.printf "@.The paper proves any such protocol needs >= n-1 = %d registers;@." (n - 1);
  Format.printf "this one uses 2n = %d. Run examples/space_witness.exe to watch the@."
    (2 * n);
  Format.printf "lower-bound adversary force those writes.@."
