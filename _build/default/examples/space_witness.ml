(* The paper's main theorem, executed.

   Zhu's proof of the n-1 space bound is constructive: given any
   nondeterministic-solo-terminating consensus protocol it builds an
   execution in which n-1 distinct registers get written.  This example
   points the mechanized construction (Lemmas 1-4 + Theorem 1) at the
   racing-counters protocol for n = 2 and n = 3 and prints the witnesses.

     dune exec examples/space_witness.exe
*)
open Ts_model
open Ts_core
open Ts_protocols

let show_witness ~n ~horizon =
  let proto = Racing.make ~n in
  let t = Valency.create proto ~horizon in
  Format.printf "@.=== n = %d ===@." n;
  match Theorem.theorem1 t with
  | exception Valency.Horizon_exceeded msg ->
    Format.printf "oracle horizon %d too small: %s@." horizon msg
  | cert ->
    Format.printf "%a@." Theorem.pp_certificate cert;
    (match Theorem.verify cert proto with
     | Ok () -> Format.printf "independent replay: verified.@."
     | Error e -> Format.printf "independent replay FAILED: %s@." e);
    (* show the tail of the witness execution: the block write and the
       forced fresh write are where the covered registers get hit *)
    let cfg0 = Config.initial proto ~inputs:cert.Theorem.inputs in
    let _, trace = Execution.apply proto cfg0 cert.Theorem.schedule in
    let tail k = List.filteri (fun i _ -> i >= List.length trace - k) trace in
    Format.printf "last steps of the witness:@.  %a@." Execution.pp_trace (tail 8);
    Format.printf "registers written overall: {%a}@."
      Fmt.(list ~sep:comma (fmt "R%d"))
      cert.Theorem.registers_written

let () =
  Format.printf
    "Mechanized Zhu construction: valency + covering against racing counters.@.";
  show_witness ~n:2 ~horizon:40;
  show_witness ~n:3 ~horizon:70;
  Format.printf
    "@.Each run is a real execution of the protocol: the adversary only chose@.\
     the schedule.  The n-1 bound is the count of distinct registers written.@."
