(* Covering and hiding: the Jayanti-Tan-Toueg adversary, narrated.

   The adversary parks processes on pending writes ("covering"), then shows
   that a perturbing operation stopped before its first fresh write is
   invisible once the covering block write lands — while a completed
   operation survives.  This is why perturbable objects need a fresh
   register per process: the n-1 space bound.

     dune exec examples/perturbation.exe
*)
open Ts_perturb

let narrate run name ~n =
  let r = run ~n in
  Format.printf "@.=== %s, n = %d ===@." name n;
  Format.printf "adversary parked %d processes on pending writes, covering registers {%a}@."
    (List.length r.Adversary.cover)
    Fmt.(list ~sep:comma (fmt "R%d"))
    (List.map snd r.Adversary.cover);
  Format.printf "distinct covered registers: %d (JTT bound: n-1 = %d)@."
    r.Adversary.distinct_covered r.Adversary.jtt_bound;
  Format.printf "the prober's operation took %d steps and touched %d registers@."
    r.Adversary.probe_steps r.Adversary.probe_accesses;
  Format.printf "hiding experiment (stage n-2):@.";
  Format.printf "  probe after block write only:            %s@."
    (Ts_model.Value.to_string r.Adversary.base_probe);
  Format.printf "  ... with a truncated perturbation added: %s  (invisible: %b)@."
    (Ts_model.Value.to_string r.Adversary.hidden_probe)
    r.Adversary.hidden_invisible;
  Format.printf "  ... with a completed perturbation added: %s  (visible: %b)@."
    (Ts_model.Value.to_string r.Adversary.completed_probe)
    r.Adversary.completed_visible

let () =
  Format.printf "The perturbable-object bound (lecture part I.1), executed.@.";
  narrate Adversary.run_counter "wait-free counter" ~n:5;
  narrate Adversary.run_maxreg "max-register" ~n:5;
  narrate Adversary.run_snapshot "atomic snapshot (Afek et al.)" ~n:4;
  Format.printf
    "@.An operation that never writes outside the covered registers can be@.\
     erased by the block write — so every process must own a fresh register,@.\
     and any such object implementation uses at least n-1 of them.@."
