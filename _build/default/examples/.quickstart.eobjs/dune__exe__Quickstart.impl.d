examples/quickstart.ml: Dump Execution Fmt Format List Protocol Racing Rng Sim Ts_model Ts_protocols Value
