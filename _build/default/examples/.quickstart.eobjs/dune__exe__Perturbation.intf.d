examples/perturbation.mli:
