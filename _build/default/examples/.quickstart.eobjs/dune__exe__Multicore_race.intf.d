examples/multicore_race.mli:
