examples/space_witness.mli:
