examples/valency_atlas.ml: Diagram Format Pset Racing Sim Ts_core Ts_model Ts_protocols Valency Valgraph Value
