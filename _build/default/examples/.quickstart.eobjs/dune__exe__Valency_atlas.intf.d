examples/valency_atlas.mli:
