examples/quickstart.mli:
