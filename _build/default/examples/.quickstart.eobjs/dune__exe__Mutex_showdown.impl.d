examples/mutex_showdown.ml: Arena Array Dump Fmt Format Fun List Peterson Rng Tas_lock Tournament Ts_core Ts_encoder Ts_model Ts_mutex
