examples/mutex_showdown.mli:
