examples/space_witness.ml: Config Execution Fmt Format List Racing Theorem Ts_core Ts_model Ts_protocols Valency
