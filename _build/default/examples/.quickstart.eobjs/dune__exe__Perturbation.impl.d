examples/perturbation.ml: Adversary Fmt Format List Ts_model Ts_perturb
