examples/multicore_race.ml: Atomic_run Format List Racing Ts_protocols Ts_runtime
