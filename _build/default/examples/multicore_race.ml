(* The same consensus state machines on real OCaml 5 domains.

   Registers become Atomic.t cells, processes become domains, and the
   schedules come from the operating system instead of an adversary.
   Agreement and validity must still hold on every trial.

     dune exec examples/multicore_race.exe
*)
open Ts_protocols
open Ts_runtime

let () =
  Format.printf "Racing-counters consensus on OCaml 5 domains (Atomic registers)@.";
  List.iter
    (fun (proto, trials) ->
      let s = Atomic_run.run proto ~trials ~seed:4242 ~step_budget:1_000_000 ~mixed_inputs:true in
      Format.printf "  %a@." Atomic_run.pp_stats s)
    [
      Racing.make ~n:2, 40;
      Racing.make ~n:3, 25;
      Racing.make ~n:4, 15;
      Racing.make_randomized ~n:3, 15;
    ];
  Format.printf
    "@.Zero agreement/validity failures expected: the simulator's adversary is@.\
     strictly more hostile than any schedule the OS produces, and the protocol@.\
     was model-checked under it.  (Single-core container: domains interleave@.\
     preemptively; we validate correctness, not speedup.)@."
