bench/main.mli:
