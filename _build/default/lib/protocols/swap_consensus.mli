(** Consensus from a single swap register (§4's primitive).

    The paper's conclusion explains why its lower-bound technique does not
    extend to historyless objects such as swap: a swapper sees the value it
    displaced, so covered writes are no longer silently obliterable.  This
    module makes that concrete with the classic protocols:

    - {!two_process}: wait-free 2-process consensus from *one* swap
      register: swap your input in; if you displaced ⊥ you were first and
      decide your own value, otherwise decide what you displaced.  One
      register — equal to the n − 1 = 1 register bound, but achieved with a
      stronger primitive and wait-freedom (registers alone cannot even
      solve it deterministically).

    - {!naive_chain}: the same rule for n ≥ 3, which is *wrong* (swap has
      consensus number exactly 2): the third swapper displaces the second's
      value, not the first's.  Shipped as a negative control; the model
      checker finds the agreement violation. *)

type state

val two_process : unit -> state Ts_model.Protocol.t

(** [naive_chain ~n] for [n >= 3] — deliberately broken. *)
val naive_chain : n:int -> state Ts_model.Protocol.t
