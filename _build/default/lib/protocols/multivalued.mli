(** Multivalued obstruction-free consensus from binary consensus.

    The classic reduction: processes first post their inputs in
    single-writer registers, then agree on the output bit by bit, running
    one embedded binary racing-counters consensus per bit position.  A
    process whose candidate disagrees with a decided bit rescans the posts
    and adopts some posted value matching the decided prefix — one must
    exist, because the winning bit was proposed by a process whose
    candidate (itself a posted value) matched the prefix.

    Agreement: the [bits] decided bits determine the value (inputs are
    restricted to [0, 2^bits)).  Validity: candidates are always posted
    inputs.  Obstruction-freedom is inherited from the embedded races.

    Space: [n + 2·n·bits] registers ([n] posts plus one racing instance per
    bit).  This is the standard Θ(n)-per-bit construction; the paper's
    bound applies per instance (binary consensus is the special case
    [bits = 1]). *)

type state

(** [make ~n ~bits] — inputs must be [Value.Int v] with [0 <= v < 2^bits]. *)
val make : n:int -> bits:int -> state Ts_model.Protocol.t
