(** Obstruction-free k-set agreement from registers.

    k-set agreement relaxes consensus: at most [k] distinct values may be
    decided (consensus is k = 1).  The paper's conclusion (§4) asks whether
    the covering/valency technique yields an Ω(n − k) space bound; the best
    known upper bound is n − k + 1 registers [BRS15].

    This implementation is the simple *partitioned* upper bound: processes
    are split round-robin into [k] groups and each group independently runs
    racing-counters consensus among its members, giving at most one decided
    value per group.  Space is 2n registers — not the BRS15 optimum, but
    the right shape (O(n) for fixed k), obstruction-free, and a correct
    baseline for the E15 experiment.  The substitution is documented in
    DESIGN.md.

    Inputs must be [Value.Int 0] or [Value.Int 1] per process (binary
    k-set agreement; with k >= 2 groups the set of decided values can still
    have size up to [min k 2]). *)

type state

(** [make ~n ~k] — [1 <= k <= n]. *)
val make : n:int -> k:int -> state Ts_model.Protocol.t

(** [group ~k p] is the group of process [p]; [group_rank ~k p] its index
    inside the group; [group_size ~n ~k g] the group's population. *)
val group : k:int -> int -> int

val group_rank : k:int -> int -> int
val group_size : n:int -> k:int -> int -> int
