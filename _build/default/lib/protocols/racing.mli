(** Racing-counters binary consensus from registers.

    The classic register-only consensus pattern (Chandra, PODC'96; see also
    Aspnes' surveys): one monotone counter per value, each counter made of
    [n] single-writer register slots.  A process repeatedly collects both
    counters — its own preference's slots first, then the rival's — adopts
    the rival value if it is strictly ahead, and otherwise increments its
    preference's counter by writing its own slot.  It decides [v] once a
    collect shows [c_v >= c_w + n].

    Why the collect order matters: all slots are monotone, so when a collect
    reads the preferred value's slots first (total [B]) and the rival's
    second (total [A]), at the instant between the two phases the *actual*
    counters satisfy [c_v >= B] and [c_w <= A].  An observed gap of [n] is
    therefore a real gap of [n] at a single instant; after that instant each
    other process can add at most one stale increment to the losing counter
    before re-collecting and adopting the winner, so the gap never closes
    and no process can ever observe the losing value ahead — agreement.

    Space: [2n] registers, matching the Θ(n) upper bounds the paper cites
    ([AH90], [AW96], [Zhu15] use between n and O(n)); the lower bound proved
    by the paper is n−1.

    The [randomized] variant flips a local coin to choose a preference when
    a collect shows an exact tie; agreement is unaffected (a tie still
    satisfies the "not strictly behind" requirement) and termination against
    an oblivious scheduler becomes a biased random walk. *)

type state

(** [make ~n] is the deterministic obstruction-free instance for [n]
    processes ([n >= 1]).  Inputs must be [Value.Int 0] or [Value.Int 1]. *)
val make : n:int -> state Ts_model.Protocol.t

(** [make_randomized ~n] additionally flips a coin on observed ties. *)
val make_randomized : n:int -> state Ts_model.Protocol.t

(** [slot ~n v i] is the register index of process [i]'s slot in value
    [v]'s counter — exposed for tests. *)
val slot : n:int -> int -> int -> int
