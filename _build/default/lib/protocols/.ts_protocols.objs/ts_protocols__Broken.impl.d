lib/protocols/broken.ml: Action Fmt List Printf Protocol Ts_model Value
