lib/protocols/broken.mli: Ts_model
