lib/protocols/swap_consensus.mli: Ts_model
