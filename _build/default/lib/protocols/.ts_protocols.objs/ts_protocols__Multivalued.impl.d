lib/protocols/multivalued.ml: Action Fmt Printf Protocol Ts_model Value
