lib/protocols/kset.ml: Action Fmt Printf Protocol Ts_model Value
