lib/protocols/multivalued.mli: Ts_model
