lib/protocols/racing.mli: Ts_model
