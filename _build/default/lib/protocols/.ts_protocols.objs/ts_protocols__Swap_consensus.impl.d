lib/protocols/swap_consensus.ml: Action Fmt Printf Protocol Ts_model Value
