lib/protocols/racing.ml: Action Fmt Printf Protocol Ts_model Value
