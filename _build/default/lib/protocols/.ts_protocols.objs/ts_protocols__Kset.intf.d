lib/protocols/kset.mli: Ts_model
