type writer = {
  buf : Buffer.t;
  mutable cur : int;  (* byte under construction *)
  mutable used : int;  (* bits used in [cur] *)
  mutable total : int;
}

type reader = {
  data : string;
  bits : int;
  mutable pos : int;
}

let writer () = { buf = Buffer.create 64; cur = 0; used = 0; total = 0 }
let bit_length w = w.total

let write_bit w b =
  w.cur <- (w.cur lsl 1) lor (if b then 1 else 0);
  w.used <- w.used + 1;
  w.total <- w.total + 1;
  if w.used = 8 then begin
    Buffer.add_char w.buf (Char.chr w.cur);
    w.cur <- 0;
    w.used <- 0
  end

let write_gamma w k =
  if k <= 0 then invalid_arg "Bits.write_gamma: k must be positive";
  (* k = 1b_{m-1}...b_0 in binary: m zeros, then the m+1 significant bits *)
  let m =
    let rec go m v = if v <= 1 then m else go (m + 1) (v lsr 1) in
    go 0 k
  in
  for _ = 1 to m do
    write_bit w false
  done;
  for i = m downto 0 do
    write_bit w (k land (1 lsl i) <> 0)
  done

let contents w =
  let pad = if w.used = 0 then 0 else 8 - w.used in
  let cur = w.cur lsl pad in
  let s = Buffer.contents w.buf in
  let s = if w.used = 0 then s else s ^ String.make 1 (Char.chr (cur land 0xff)) in
  s, w.total

let reader (data, bits) = { data; bits; pos = 0 }

let read_bit r =
  if r.pos >= r.bits then invalid_arg "Bits.read_bit: past end of stream";
  let byte = Char.code r.data.[r.pos / 8] in
  let bit = byte land (1 lsl (7 - (r.pos mod 8))) <> 0 in
  r.pos <- r.pos + 1;
  bit

let read_gamma r =
  let rec zeros m = if read_bit r then m else zeros (m + 1) in
  let m = zeros 0 in
  let rec value acc i = if i = 0 then acc else value ((acc lsl 1) lor (if read_bit r then 1 else 0)) (i - 1) in
  value 1 m

let remaining r = r.bits - r.pos
