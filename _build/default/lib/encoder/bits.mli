(** Packed bit streams with Elias-gamma integer coding.

    The Fan–Lynch argument is about the exact number of bits a canonical
    execution's schedule costs to describe, so the encoder writes real
    packed bits (not characters) and the decoder consumes them back. *)

type writer
type reader

val writer : unit -> writer

(** Number of bits written so far. *)
val bit_length : writer -> int

val write_bit : writer -> bool -> unit

(** [write_gamma w k] writes positive [k] in Elias-gamma: [2*floor(log2 k) + 1] bits.
    @raise Invalid_argument if [k <= 0]. *)
val write_gamma : writer -> int -> unit

(** Freeze the stream.  The pair is (packed bytes, exact bit count). *)
val contents : writer -> string * int

val reader : string * int -> reader

(** @raise Invalid_argument when reading past the end. *)
val read_bit : reader -> bool

val read_gamma : reader -> int

(** Bits remaining to be read. *)
val remaining : reader -> int
