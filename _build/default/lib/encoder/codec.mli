(** The Fan–Lynch encoder/decoder, executable form.

    The Ω(n log n) mutex bound is proved in three steps (part II of the
    lecture bundle): build a canonical execution for each permutation π of
    critical-section entries; encode it into a short bit string; decode the
    string back into the execution.  Since the decoder recovers π, the
    encodings of the n! canonical executions are distinct, so some
    encoding has at least [log2 n!] bits; because the encoding's length is
    tied to the execution's cost, some execution costs Ω(n log n).

    This module implements the encode/decode pair over {!Ts_mutex.Arena}
    executions.  The schedule is encoded run-length style: each event is a
    process picked by a move-to-front code (recently active processes are
    cheap) followed by how many consecutive steps it takes.  The decoder
    knows the algorithm — only the *schedule* is information — and replays
    it, reconstructing the execution, its cost, and the CS order π.

    Relative to Fan–Lynch's metastep construction this is a simplification
    (documented in DESIGN.md): we encode scheduling choices directly, which
    costs up to an O(log n) factor more than their amortized O(1) bits per
    unit of cost, but preserves both directions that the experiment needs:
    the decoder demonstrably extracts π (so ≥ log2 n! bits are necessary
    for some π), and measured bits track the execution's length/cost. *)

open Ts_mutex

type encoding = {
  bits : string * int;  (** packed data and exact bit length *)
  events : int;  (** number of schedule events encoded *)
}

(** [encode outcome] encodes the schedule of [outcome.step_log].  Works
    for any arena execution (serial or contended). *)
val encode : Arena.outcome -> encoding

(** [decode alg enc] replays the encoded schedule on a fresh instance of
    [alg], returning the reconstructed outcome.  The caller should compare
    [cs_order] (and cost) with the original — {!round_trip} does. *)
val decode : 's Algorithm.t -> encoding -> Arena.outcome

(** [round_trip alg outcome] encodes and decodes, then checks that the CS
    order, total cost and step count survived.  Returns the encoding on
    success, an explanatory message otherwise. *)
val round_trip : 's Algorithm.t -> Arena.outcome -> (encoding, string) result
