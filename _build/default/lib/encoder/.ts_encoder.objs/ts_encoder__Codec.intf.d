lib/encoder/codec.mli: Algorithm Arena Ts_mutex
