lib/encoder/codec.ml: Algorithm Arena Bits Fun List Printexc Ts_mutex
