lib/encoder/bits.mli:
