lib/encoder/bits.ml: Buffer Char String
