type reg = int

type t =
  | Read of reg
  | Write of reg * Value.t
  | Swap of reg * Value.t
  | Flip
  | Decide of Value.t

let equal a b =
  match a, b with
  | Read r1, Read r2 -> r1 = r2
  | Write (r1, v1), Write (r2, v2) -> r1 = r2 && Value.equal v1 v2
  | Swap (r1, v1), Swap (r2, v2) -> r1 = r2 && Value.equal v1 v2
  | Flip, Flip -> true
  | Decide v1, Decide v2 -> Value.equal v1 v2
  | (Read _ | Write _ | Swap _ | Flip | Decide _), _ -> false

let written_register = function
  | Write (r, _) | Swap (r, _) -> Some r
  | Read _ | Flip | Decide _ -> None

let accessed_register = function
  | Read r | Write (r, _) | Swap (r, _) -> Some r
  | Flip | Decide _ -> None

let is_write = function Write _ -> true | Read _ | Swap _ | Flip | Decide _ -> false
let is_swap = function Swap _ -> true | Read _ | Write _ | Flip | Decide _ -> false
let is_read = function Read _ -> true | Write _ | Swap _ | Flip | Decide _ -> false
let is_decide = function Decide _ -> true | Read _ | Write _ | Swap _ | Flip -> false

let pp ppf = function
  | Read r -> Fmt.pf ppf "read(R%d)" r
  | Write (r, v) -> Fmt.pf ppf "write(R%d,%a)" r Value.pp v
  | Swap (r, v) -> Fmt.pf ppf "swap(R%d,%a)" r Value.pp v
  | Flip -> Fmt.string ppf "flip"
  | Decide v -> Fmt.pf ppf "decide(%a)" Value.pp v
