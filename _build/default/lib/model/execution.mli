(** Schedules, executions and traces.

    A schedule is a sequence of scheduled steps — a process id together with
    a coin outcome for the (rare) steps that are coin flips.  Applying a
    schedule to a configuration yields the resulting configuration and a
    trace recording the action each step performed (Zhu §2: "a sequence of
    steps applicable at a configuration"). *)

type pid = int

type event = {
  pid : pid;
  coin : bool option;  (** [Some b] iff this step is a coin flip resolved to [b] *)
}

val ev : pid -> event
(** [ev p] is a non-flip step by [p]. *)

val flip : pid -> bool -> event
(** [flip p b] is a coin-flip step by [p] resolved to [b]. *)

type step_record = {
  actor : pid;
  action : Action.t;
  coin_used : bool option;
}

type trace = step_record list

(** [apply proto cfg sched] applies the steps of [sched] in order.
    @raise Invalid_argument if a scheduled process has already decided, or
    if a coin annotation does not match the step kind. *)
val apply : 's Protocol.t -> 's Config.t -> event list -> 's Config.t * trace

(** [apply_trace proto cfg tr] replays the schedule underlying [tr]. *)
val apply_trace : 's Protocol.t -> 's Config.t -> trace -> 's Config.t * trace

(** Distinct registers written in a trace, sorted. *)
val written_registers : trace -> Action.reg list

(** Distinct registers read or written in a trace, sorted. *)
val accessed_registers : trace -> Action.reg list

(** The set of processes taking steps in a trace. *)
val participants : trace -> Pset.t

(** [schedule_of_trace tr] recovers the schedule that produced [tr]. *)
val schedule_of_trace : trace -> event list

(** [solo proto cfg p ~flips ~budget] runs [p] alone until it decides or the
    step budget is exhausted, resolving the [i]-th coin flip with
    [flips i].  Returns the final configuration, the trace, and the decision
    if one was reached. *)
val solo :
  's Protocol.t ->
  's Config.t ->
  pid ->
  flips:(int -> bool) ->
  budget:int ->
  's Config.t * trace * Value.t option

val pp_event : Format.formatter -> event -> unit
val pp_step : Format.formatter -> step_record -> unit
val pp_trace : Format.formatter -> trace -> unit
