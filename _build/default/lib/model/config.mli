(** Configurations: the global state of the system.

    A configuration consists of the local state of every process and the
    contents of every register (Zhu §2).  Processes that have decided are
    recorded with their decision and take no further steps.

    Configurations are plain immutable data; [equal]/[hash] are structural,
    which is exactly the indistinguishability notion the proofs need when
    restricted to the relevant components. *)

type pid = int

type 's status =
  | Running of 's
  | Decided of Value.t

type 's t = private {
  procs : 's status array;
  regs : Value.t array;
}

(** [initial proto ~inputs] is the initial configuration in which process
    [i] has input [inputs.(i)] and every register holds [Value.bot].
    @raise Invalid_argument if [Array.length inputs <> proto.num_processes]. *)
val initial : 's Protocol.t -> inputs:Value.t array -> 's t

(** [poised proto cfg p] is the action process [p] is poised to perform, or
    [None] if [p] has decided. *)
val poised : 's Protocol.t -> 's t -> pid -> Action.t option

(** [step proto cfg p ~coin] applies one step of process [p].  [coin] must
    be [Some _] exactly when [p] is poised to flip.  Returns the resulting
    configuration and the action performed.
    @raise Invalid_argument if [p] has already decided, or on coin misuse. *)
val step : 's Protocol.t -> 's t -> pid -> coin:bool option -> 's t * Action.t

(** [has_decided cfg p] is the decision of [p] in [cfg], if any. *)
val has_decided : 's t -> pid -> Value.t option

(** All decisions present in [cfg] (without duplicates, in value order). *)
val decided_values : 's t -> Value.t list

(** [covers proto cfg p] is [Some r] iff [p] is poised to write register
    [r] in [cfg] (Definition 2: [p] covers [r]). *)
val covers : 's Protocol.t -> 's t -> pid -> Action.reg option

(** [covered_registers proto cfg ps] is the set of registers covered by the
    processes of [ps], as a sorted list of distinct registers. *)
val covered_registers : 's Protocol.t -> 's t -> Pset.t -> Action.reg list

(** [covering_is_distinct proto cfg ps] holds iff every process of [ps]
    covers a register and no two cover the same one ("well spread"). *)
val covering_is_distinct : 's Protocol.t -> 's t -> Pset.t -> bool

val equal : 's t -> 's t -> bool
val hash : 's t -> int

(** [register v cfg r] is the contents of register [r]. *)
val register : 's t -> Action.reg -> Value.t

val pp : 's Protocol.t -> Format.formatter -> 's t -> unit
