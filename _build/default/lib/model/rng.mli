(** A small deterministic PRNG (splitmix64).

    Experiments must be reproducible from a printed seed, so nothing in the
    library uses global randomness; every randomized component takes an
    explicit [Rng.t]. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool
val bits64 : t -> int64

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [permutation t n] is a uniform permutation of [0..n-1]. *)
val permutation : t -> int -> int array
