type t = int
type pid = int

let check p =
  if p < 0 || p > 62 then invalid_arg "Pset: pid out of [0,62]"

let empty = 0
let is_empty s = s = 0
let singleton p = check p; 1 lsl p
let add p s = check p; s lor (1 lsl p)
let remove p s = check p; s land lnot (1 lsl p)
let mem p s = p >= 0 && p <= 62 && s land (1 lsl p) <> 0

let cardinal s =
  let rec go acc s = if s = 0 then acc else go (acc + (s land 1)) (s lsr 1) in
  go 0 s

let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let equal (a : int) b = a = b
let compare (a : int) b = Stdlib.compare a b
let of_list ps = List.fold_left (fun s p -> add p s) empty ps

let fold f s init =
  let rec go p s acc =
    if s = 0 then acc
    else if s land 1 <> 0 then go (p + 1) (s lsr 1) (f p acc)
    else go (p + 1) (s lsr 1) acc
  in
  go 0 s init

let to_list s = List.rev (fold (fun p acc -> p :: acc) s [])

let range lo hi =
  let rec go p acc = if p > hi then acc else go (p + 1) (add p acc) in
  if lo > hi then empty else go lo empty

let all n = range 0 (n - 1)
let iter f s = fold (fun p () -> f p) s ()
let for_all f s = fold (fun p acc -> acc && f p) s true
let exists f s = fold (fun p acc -> acc || f p) s false
let filter f s = fold (fun p acc -> if f p then add p acc else acc) s empty

let choose s =
  if s = 0 then invalid_arg "Pset.choose: empty set"
  else
    let rec go p = if s land (1 lsl p) <> 0 then p else go (p + 1) in
    go 0

let to_mask s = s

let pp ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") (fmt "p%d")) (to_list s)
