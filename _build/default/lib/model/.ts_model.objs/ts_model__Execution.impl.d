lib/model/execution.ml: Action Config Fmt List Pset Stdlib
