lib/model/pset.mli: Format
