lib/model/action.ml: Fmt Value
