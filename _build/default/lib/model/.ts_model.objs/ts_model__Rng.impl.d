lib/model/rng.ml: Array Fun Int64
