lib/model/execution.mli: Action Config Format Protocol Pset Value
