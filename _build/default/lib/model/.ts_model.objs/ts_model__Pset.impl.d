lib/model/pset.ml: Fmt List Stdlib
