lib/model/diagram.mli: Execution Format
