lib/model/protocol.mli: Action Format Value
