lib/model/action.mli: Format Value
