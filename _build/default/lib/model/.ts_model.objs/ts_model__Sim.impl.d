lib/model/sim.ml: Action Array Config Execution Fun List Option Protocol Rng Value
