lib/model/sim.mli: Config Execution Protocol Rng Value
