lib/model/protocol.ml: Action Format Value
