lib/model/rng.mli:
