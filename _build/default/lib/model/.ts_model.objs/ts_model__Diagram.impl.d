lib/model/diagram.ml: Action Array Buffer Execution Format Printf String
