lib/model/config.ml: Action Array Fmt Hashtbl List Option Protocol Pset Stdlib Value
