lib/model/value.ml: Fmt Format Hashtbl List Stdlib
