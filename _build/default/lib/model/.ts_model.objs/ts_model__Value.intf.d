lib/model/value.mli: Format
