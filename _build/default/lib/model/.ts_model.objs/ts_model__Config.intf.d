lib/model/config.mli: Action Format Protocol Pset Value
