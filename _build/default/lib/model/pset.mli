(** Finite sets of process identifiers.

    The refined valency of Zhu's Definition 1 is attached to a *set of
    processes* in a configuration, so process sets appear in every engine
    signature.  Sets are represented as bit masks; process ids must lie in
    [0, 62]. *)

type t
(** An immutable set of process ids. *)

type pid = int

val empty : t
val is_empty : t -> bool
val singleton : pid -> t
val add : pid -> t -> t
val remove : pid -> t -> t
val mem : pid -> t -> bool
val cardinal : t -> int
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val of_list : pid list -> t
val to_list : t -> pid list

(** [range lo hi] is the set [{lo, ..., hi}] ([empty] if [lo > hi]). *)
val range : pid -> pid -> t

(** [all n] is the full set [{0, ..., n-1}]. *)
val all : int -> t

val iter : (pid -> unit) -> t -> unit
val fold : (pid -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (pid -> bool) -> t -> bool
val exists : (pid -> bool) -> t -> bool
val filter : (pid -> bool) -> t -> t

(** [choose s] is the smallest element. @raise Invalid_argument on [empty]. *)
val choose : t -> pid

(** [to_mask s] exposes the underlying bit mask (used as a hash key). *)
val to_mask : t -> int

val pp : Format.formatter -> t -> unit
