(** ASCII space-time diagrams of executions.

    Renders a trace as one lane per process, one column per step — the
    pictures the covering arguments are usually drawn with, generated from
    real executions.  Used by the examples and handy when debugging a
    protocol or an adversary construction. *)

(** [render ~n trace] lays the trace out as [n] lanes.  Cells: [w3] write
    to register 3, [r3] read of register 3, [f+]/[f-] coin flips, [D!] a
    decision, [.] idle.  Long traces are wrapped into bands of
    [width] steps (default 24). *)
val render : ?width:int -> n:int -> Execution.trace -> string

(** [pp ~n ppf trace] prints {!render}'s output. *)
val pp : ?width:int -> n:int -> Format.formatter -> Execution.trace -> unit
