(** Pending steps of a process.

    In Zhu's model a step is a read or a write of a register; a process that
    has reached a decision takes no further steps.  We add [Flip] so the same
    machinery covers randomized protocols: Zhu's bound applies to every
    nondeterministic-solo-terminating protocol, and the adversary engine
    resolves coin flips adversarially while the simulator resolves them with
    a seeded RNG. *)

type reg = int
(** Registers are indexed by small integers. *)

type t =
  | Read of reg  (** poised to read register [reg] *)
  | Write of reg * Value.t  (** poised to write [Value.t] to [reg] *)
  | Swap of reg * Value.t
      (** poised to atomically write and receive the displaced value — the
          historyless-but-stronger primitive of the paper's §4 *)
  | Flip  (** poised to flip a local coin *)
  | Decide of Value.t  (** poised to decide (terminal) *)

val equal : t -> t -> bool

(** [written_register a] is [Some r] iff [a] writes (or swaps) [r]. *)
val written_register : t -> reg option

(** [accessed_register a] is [Some r] iff [a] reads or writes [r]. *)
val accessed_register : t -> reg option

val is_write : t -> bool
val is_swap : t -> bool
val is_read : t -> bool
val is_decide : t -> bool
val pp : Format.formatter -> t -> unit
