type pid = int

type policy =
  | Round_robin
  | Random of Rng.t
  | Solo of pid
  | Alternating of pid * pid

type 's outcome = {
  final : 's Config.t;
  decisions : (pid * Value.t) list;
  steps : int;
  trace : Execution.trace;
  ran_out : bool;
}

let undecided proto cfg =
  let n = proto.Protocol.num_processes in
  let rec go p acc = if p < 0 then acc else
      go (p - 1) (if Config.has_decided cfg p = None then p :: acc else acc)
  in
  go (n - 1) []

let relevant_done proto cfg policy =
  match policy with
  | Round_robin | Random _ -> undecided proto cfg = []
  | Solo p -> Config.has_decided cfg p <> None
  | Alternating (p, q) ->
    Config.has_decided cfg p <> None && Config.has_decided cfg q <> None

let pick proto cfg policy tick =
  let alive = undecided proto cfg in
  match policy with
  | Round_robin ->
    let n = proto.Protocol.num_processes in
    let rec find k =
      let p = (tick + k) mod n in
      if Config.has_decided cfg p = None then p else find (k + 1)
    in
    find 0
  | Random rng -> List.nth alive (Rng.int rng (List.length alive))
  | Solo p -> p
  | Alternating (p, q) ->
    let cands = List.filter (fun x -> Config.has_decided cfg x = None) [ p; q ] in
    (match cands with
     | [ x ] -> x
     | [ x; y ] -> if tick mod 2 = 0 then x else y
     | _ -> invalid_arg "Sim.run: alternating processes already decided")

let run proto ~inputs ~policy ~flips ~budget =
  let cfg0 = Config.initial proto ~inputs in
  let rec go cfg acc steps =
    if relevant_done proto cfg policy then cfg, acc, steps, false
    else if steps >= budget then cfg, acc, steps, true
    else
      let p = pick proto cfg policy steps in
      let coin =
        match Config.poised proto cfg p with
        | Some Action.Flip -> Some (flips ())
        | _ -> None
      in
      let cfg', action = Config.step proto cfg p ~coin in
      go cfg' ({ Execution.actor = p; action; coin_used = coin } :: acc) (steps + 1)
  in
  let final, rev_trace, steps, ran_out = go cfg0 [] 0 in
  let decisions =
    List.init proto.Protocol.num_processes (fun p ->
        Option.map (fun v -> p, v) (Config.has_decided final p))
    |> List.filter_map Fun.id
  in
  { final; decisions; steps; trace = List.rev rev_trace; ran_out }

let agreement outcome =
  match List.sort_uniq Value.compare (List.map snd outcome.decisions) with
  | [ v ] -> Ok v
  | vs -> Error vs

let valid ~inputs v = Array.exists (Value.equal v) inputs
