let cell_of_step (s : Execution.step_record) =
  match s.Execution.action with
  | Action.Read r -> Printf.sprintf "r%d" r
  | Action.Write (r, _) -> Printf.sprintf "w%d" r
  | Action.Swap (r, _) -> Printf.sprintf "x%d" r
  | Action.Flip -> (match s.Execution.coin_used with Some true -> "f+" | _ -> "f-")
  | Action.Decide _ -> "D!"

let render ?(width = 24) ~n trace =
  let steps = Array.of_list trace in
  let total = Array.length steps in
  let cellw =
    Array.fold_left (fun acc s -> max acc (String.length (cell_of_step s))) 1 steps
  in
  let pad s = s ^ String.make (max 0 (cellw - String.length s)) ' ' in
  let buf = Buffer.create 256 in
  let band lo hi =
    for p = 0 to n - 1 do
      Buffer.add_string buf (Printf.sprintf "p%-2d|" p);
      for i = lo to hi - 1 do
        let s = steps.(i) in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad (if s.Execution.actor = p then cell_of_step s else "."))
      done;
      Buffer.add_char buf '\n'
    done
  in
  let rec bands lo =
    if lo < total then begin
      if lo > 0 then Buffer.add_char buf '\n';
      band lo (min total (lo + width));
      bands (lo + width)
    end
  in
  if total = 0 then "(empty execution)\n" else (bands 0; Buffer.contents buf)

let pp ?width ~n ppf trace = Format.pp_print_string ppf (render ?width ~n trace)
