type pid = int

type event = {
  pid : pid;
  coin : bool option;
}

let ev p = { pid = p; coin = None }
let flip p b = { pid = p; coin = Some b }

type step_record = {
  actor : pid;
  action : Action.t;
  coin_used : bool option;
}

type trace = step_record list

let apply proto cfg sched =
  let cfg, rev =
    List.fold_left
      (fun (cfg, acc) e ->
        let cfg', action = Config.step proto cfg e.pid ~coin:e.coin in
        cfg', { actor = e.pid; action; coin_used = e.coin } :: acc)
      (cfg, []) sched
  in
  cfg, List.rev rev

let schedule_of_trace tr =
  List.map (fun s -> { pid = s.actor; coin = s.coin_used }) tr

let apply_trace proto cfg tr = apply proto cfg (schedule_of_trace tr)

let written_registers tr =
  List.filter_map (fun s -> Action.written_register s.action) tr
  |> List.sort_uniq Stdlib.compare

let accessed_registers tr =
  List.filter_map (fun s -> Action.accessed_register s.action) tr
  |> List.sort_uniq Stdlib.compare

let participants tr =
  List.fold_left (fun s r -> Pset.add r.actor s) Pset.empty tr

let solo proto cfg p ~flips ~budget =
  let rec go cfg acc nflip fuel =
    match Config.has_decided cfg p with
    | Some v -> cfg, List.rev acc, Some v
    | None ->
      if fuel = 0 then cfg, List.rev acc, None
      else
        let coin, nflip =
          match Config.poised proto cfg p with
          | Some Action.Flip -> Some (flips nflip), nflip + 1
          | _ -> None, nflip
        in
        let cfg', action = Config.step proto cfg p ~coin in
        go cfg' ({ actor = p; action; coin_used = coin } :: acc) nflip (fuel - 1)
  in
  go cfg [] 0 budget

let pp_event ppf e =
  match e.coin with
  | None -> Fmt.pf ppf "p%d" e.pid
  | Some b -> Fmt.pf ppf "p%d(coin=%b)" e.pid b

let pp_step ppf s = Fmt.pf ppf "p%d:%a" s.actor Action.pp s.action

let pp_trace ppf tr = Fmt.pf ppf "@[<hov 1>%a@]" Fmt.(list ~sep:sp pp_step) tr
