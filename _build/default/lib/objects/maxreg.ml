open Ts_model

type op =
  | Write_max of int
  | Read_max

type state =
  | Wm_read of { me : int; v : int }
  | Wm_write of { me : int; v : int }
  | Collect of { n : int; idx : int; best : int }
  | Done of Value.t

let nat_of = function Value.Bot -> 0 | v -> Value.to_int v

let pp_op ppf = function
  | Write_max v -> Fmt.pf ppf "writeMax(%d)" v
  | Read_max -> Fmt.string ppf "readMax"

let make ~n : (state, op) Impl.t =
  {
    name = Printf.sprintf "slot-maxreg-%d" n;
    description = "wait-free max-register: one monotone single-writer slot per process";
    num_processes = n;
    num_registers = n;
    begin_op =
      (fun ~pid op ->
        match op with
        | Write_max v ->
          if v < 0 then invalid_arg "Maxreg: negative value";
          Wm_read { me = pid; v }
        | Read_max -> Collect { n; idx = 0; best = 0 });
    poised =
      (function
        | Wm_read { me; _ } -> Impl.Read me
        | Wm_write { me; v } -> Impl.Write (me, Value.int v)
        | Collect { idx; _ } -> Impl.Read idx
        | Done v -> Impl.Return v);
    on_read =
      (fun st value ->
        match st with
        | Wm_read { me; v } ->
          if v > nat_of value then Wm_write { me; v } else Done Value.bot
        | Collect { n; idx; best } ->
          let best = max best (nat_of value) in
          if idx = n - 1 then Done (Value.int best)
          else Collect { n; idx = idx + 1; best }
        | Wm_write _ | Done _ -> invalid_arg "Maxreg.on_read");
    on_write =
      (function
        | Wm_write _ -> Done Value.bot
        | Wm_read _ | Collect _ | Done _ -> invalid_arg "Maxreg.on_write");
    pp_op;
  }
