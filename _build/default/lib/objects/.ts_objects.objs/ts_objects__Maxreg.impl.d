lib/objects/maxreg.ml: Fmt Impl Printf Ts_model Value
