lib/objects/counter.ml: Fmt Impl Printf Ts_model Value
