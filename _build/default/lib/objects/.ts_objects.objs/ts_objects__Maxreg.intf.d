lib/objects/maxreg.mli: Impl
