lib/objects/shared_coin.mli: Impl
