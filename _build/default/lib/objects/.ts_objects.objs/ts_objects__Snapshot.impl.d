lib/objects/snapshot.ml: Fmt Fun Impl List Printf Ts_model Value
