lib/objects/shared_coin.ml: Fmt Impl Int64 Printf Ts_model Value
