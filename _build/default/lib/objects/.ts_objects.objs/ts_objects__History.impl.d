lib/objects/history.ml: Fmt Hashtbl List Option Ts_model Value
