lib/objects/linearize.ml: Array Counter Hashtbl History List Maxreg Snapshot Ts_model Value
