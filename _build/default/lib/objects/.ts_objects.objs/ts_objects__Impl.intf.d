lib/objects/impl.mli: Action Format Ts_model Value
