lib/objects/runner.ml: Action Array History Impl List Option Stdlib Ts_model Value
