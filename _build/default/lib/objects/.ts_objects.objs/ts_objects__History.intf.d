lib/objects/history.mli: Format Ts_model Value
