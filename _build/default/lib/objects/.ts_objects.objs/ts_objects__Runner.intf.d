lib/objects/runner.mli: Action History Impl Ts_model Value
