lib/objects/snapshot.mli: Impl Ts_model Value
