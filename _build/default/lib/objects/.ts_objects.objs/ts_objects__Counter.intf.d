lib/objects/counter.mli: Impl
