lib/objects/linearize.mli: Counter History Maxreg Snapshot Ts_model Value
