lib/objects/impl.ml: Action Format Ts_model Value
