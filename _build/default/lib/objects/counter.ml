open Ts_model

type op =
  | Inc
  | Read_count

type state =
  | Inc_read of { me : int }
  | Inc_write of { me : int; next : int }
  | Collect of { n : int; idx : int; sum : int }
  | Done of Value.t

let count_of = function Value.Bot -> 0 | v -> Value.to_int v

let pp_op ppf = function
  | Inc -> Fmt.string ppf "inc"
  | Read_count -> Fmt.string ppf "read"

let make ~n : (state, op) Impl.t =
  {
    name = Printf.sprintf "slot-counter-%d" n;
    description = "wait-free counter: one monotone single-writer slot per process";
    num_processes = n;
    num_registers = n;
    begin_op =
      (fun ~pid op ->
        match op with
        | Inc -> Inc_read { me = pid }
        | Read_count -> Collect { n; idx = 0; sum = 0 });
    poised =
      (function
        | Inc_read { me } -> Impl.Read me
        | Inc_write { me; next } -> Impl.Write (me, Value.int next)
        | Collect { idx; _ } -> Impl.Read idx
        | Done v -> Impl.Return v);
    on_read =
      (fun st v ->
        match st with
        | Inc_read { me } -> Inc_write { me; next = count_of v + 1 }
        | Collect { n; idx; sum } ->
          let sum = sum + count_of v in
          if idx = n - 1 then Done (Value.int sum) else Collect { n; idx = idx + 1; sum }
        | Inc_write _ | Done _ -> invalid_arg "Counter.on_read");
    on_write =
      (function
        | Inc_write _ -> Done Value.bot
        | Inc_read _ | Collect _ | Done _ -> invalid_arg "Counter.on_write");
    pp_op;
  }
