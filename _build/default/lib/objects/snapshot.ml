open Ts_model

type op =
  | Update of Value.t
  | Scan

type seg = { seq : int; v : Value.t; view : Value.t list }

type cont =
  | Scan_return
  | Update_write of Value.t

type state =
  | Scanning of {
      me : int;
      n : int;
      cont : cont;
      prev : seg list option;  (* last complete collect *)
      acc : seg list;  (* current collect, reversed *)
      idx : int;  (* next segment to read *)
      moved : int list;  (* per-process observed moves *)
    }
  | Writing of { me : int; seq : int; v : Value.t; view : Value.t list }
  | Done of Value.t

let decode n = function
  | Value.Bot -> { seq = 0; v = Value.bot; view = List.init n (fun _ -> Value.bot) }
  | Value.Pair (Value.Int seq, Value.Pair (v, Value.List view)) -> { seq; v; view }
  | _ -> invalid_arg "Snapshot.decode: corrupt segment"

let encode s = Value.pair (Value.int s.seq) (Value.pair s.v (Value.list s.view))

let start_scan ~me ~n ~cont =
  Scanning { me; n; cont; prev = None; acc = []; idx = 0; moved = List.init n (fun _ -> 0) }

let deliver ~me ~cont ~cur view =
  match cont with
  | Scan_return -> Done (Value.list view)
  | Update_write v ->
    let own = List.nth cur me in
    Writing { me; seq = own.seq + 1; v; view }

(* A complete collect [cur] arrived; compare against [prev]. *)
let collect_done ~me ~n ~cont ~prev ~moved cur =
  match prev with
  | None ->
    Scanning { me; n; cont; prev = Some cur; acc = []; idx = 0; moved }
  | Some pv ->
    let changed =
      List.filter
        (fun i -> (List.nth pv i).seq <> (List.nth cur i).seq)
        (List.init n Fun.id)
    in
    if changed = [] then
      deliver ~me ~cont ~cur (List.map (fun s -> s.v) cur)
    else
      let moved = List.mapi (fun i m -> if List.mem i changed then m + 1 else m) moved in
      (match List.find_opt (fun i -> List.nth moved i >= 2) changed with
       | Some i -> deliver ~me ~cont ~cur (List.nth cur i).view
       | None -> Scanning { me; n; cont; prev = Some cur; acc = []; idx = 0; moved })

let pp_op ppf = function
  | Update v -> Fmt.pf ppf "update(%a)" Value.pp v
  | Scan -> Fmt.string ppf "scan"

let make ~n : (state, op) Impl.t =
  {
    name = Printf.sprintf "afek-snapshot-%d" n;
    description = "Afek et al. wait-free single-writer atomic snapshot";
    num_processes = n;
    num_registers = n;
    begin_op =
      (fun ~pid op ->
        match op with
        | Scan -> start_scan ~me:pid ~n ~cont:Scan_return
        | Update v -> start_scan ~me:pid ~n ~cont:(Update_write v));
    poised =
      (function
        | Scanning { idx; _ } -> Impl.Read idx
        | Writing { me; seq; v; view } -> Impl.Write (me, encode { seq; v; view })
        | Done v -> Impl.Return v);
    on_read =
      (fun st value ->
        match st with
        | Scanning ({ n; idx; acc; _ } as s) ->
          let acc = decode n value :: acc in
          if idx = n - 1 then
            collect_done ~me:s.me ~n ~cont:s.cont ~prev:s.prev ~moved:s.moved
              (List.rev acc)
          else Scanning { s with acc; idx = idx + 1 }
        | Writing _ | Done _ -> invalid_arg "Snapshot.on_read");
    on_write =
      (function
        | Writing _ -> Done Value.bot
        | Scanning _ | Done _ -> invalid_arg "Snapshot.on_write");
    pp_op;
  }

let view_of_scan = Value.to_list
