open Ts_model

type op = Toss of { seed : int }

(* One splitmix64 step over plain int state: deterministic pseudo-coins
   without mutable generator state. *)
let next_coin seed =
  let open Int64 in
  let z = add (of_int seed) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 1L) = 1, to_int (logand z max_int)

type state =
  | Read_own of { me : int; n : int; k : int; seed : int; own : int }
      (* [own] is our running contribution; re-read to stay single-writer-honest *)
  | Write_own of { me : int; n : int; k : int; seed : int; own : int }
  | Collect of { me : int; n : int; k : int; seed : int; own : int; idx : int; sum : int }
  | Done of Value.t

let make ~n ~k : (state, op) Impl.t =
  if k < 1 then invalid_arg "Shared_coin.make: k >= 1";
  {
    name = Printf.sprintf "walk-coin-%d" n;
    description = "weak shared coin: ±1 random walk over n slots";
    num_processes = n;
    num_registers = n;
    begin_op =
      (fun ~pid (Toss { seed }) -> Read_own { me = pid; n; k; seed; own = 0 });
    poised =
      (function
        | Read_own { me; _ } -> Impl.Read me
        | Write_own { me; own; _ } -> Impl.Write (me, Value.int own)
        | Collect { idx; _ } -> Impl.Read idx
        | Done v -> Impl.Return v);
    on_read =
      (fun st v ->
        match st with
        | Read_own r ->
          let cur = match v with Value.Bot -> 0 | v -> Value.to_int v in
          let up, seed = next_coin r.seed in
          Write_own { me = r.me; n = r.n; k = r.k; seed; own = cur + (if up then 1 else -1) }
        | Collect c ->
          let x = match v with Value.Bot -> 0 | v -> Value.to_int v in
          let sum = c.sum + x in
          if c.idx = c.n - 1 then
            if abs sum >= c.k * c.n then Done (Value.bool (sum > 0))
            else Read_own { me = c.me; n = c.n; k = c.k; seed = c.seed; own = c.own }
          else Collect { c with idx = c.idx + 1; sum }
        | Write_own _ | Done _ -> invalid_arg "Shared_coin.on_read");
    on_write =
      (function
        | Write_own w ->
          Collect { me = w.me; n = w.n; k = w.k; seed = w.seed; own = w.own; idx = 0; sum = 0 }
        | Read_own _ | Collect _ | Done _ -> invalid_arg "Shared_coin.on_write");
    pp_op = (fun ppf (Toss { seed }) -> Fmt.pf ppf "toss(%d)" seed);
  }
