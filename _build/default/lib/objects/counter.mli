(** A wait-free linearizable counter from [n] single-writer registers.

    [Inc] reads the caller's slot and writes it back incremented (the slot
    is single-writer, so the read-modify-write is atomic enough);
    [Read_count] collects all slots and returns their sum.  Because each
    slot is monotone, a collect's sum always lies between the counter's
    value at the collect's start and at its end, which makes the sum a
    valid linearization point — the classic monotone-collect argument.

    This is the perturbable object of the Jayanti–Tan–Toueg experiment:
    space [n], reader solo-step complexity [n] (reads every slot), against
    their lower bound of [n − 1] for both. *)


type op =
  | Inc
  | Read_count

type state

val make : n:int -> (state, op) Impl.t
