open Ts_model

type 'op event =
  | Inv of int * 'op
  | Res of int * Value.t

type 'op t = 'op event list

type 'op operation = {
  pid : int;
  op : 'op;
  result : Value.t;
  inv_at : int;
  res_at : int;
}

let operations h =
  let pending = Hashtbl.create 8 in
  let ops = ref [] in
  List.iteri
    (fun i e ->
      match e with
      | Inv (p, op) ->
        if Hashtbl.mem pending p then
          invalid_arg "History.operations: double invocation";
        Hashtbl.replace pending p (op, i)
      | Res (p, v) ->
        (match Hashtbl.find_opt pending p with
         | None -> invalid_arg "History.operations: response without invocation"
         | Some (op, inv_at) ->
           Hashtbl.remove pending p;
           ops := { pid = p; op; result = v; inv_at; res_at = i } :: !ops))
    h;
  if Hashtbl.length pending > 0 then
    invalid_arg "History.operations: incomplete history";
  List.rev !ops

let complete h =
  let responded = Hashtbl.create 8 in
  (* count responses per pid, then keep only invocations that get one *)
  List.iter
    (function
      | Res (p, _) ->
        Hashtbl.replace responded p (1 + Option.value ~default:0 (Hashtbl.find_opt responded p))
      | Inv _ -> ())
    h;
  List.filter
    (function
      | Res _ -> true
      | Inv (p, _) ->
        (match Hashtbl.find_opt responded p with
         | Some k when k > 0 ->
           Hashtbl.replace responded p (k - 1);
           true
         | _ -> false))
    h

let pp pp_op ppf h =
  let pp_event ppf = function
    | Inv (p, op) -> Fmt.pf ppf "p%d:%a?" p pp_op op
    | Res (p, v) -> Fmt.pf ppf "p%d:=%a" p Value.pp v
  in
  Fmt.pf ppf "@[<hov 1>%a@]" Fmt.(list ~sep:sp pp_event) h
