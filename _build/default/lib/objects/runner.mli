(** Mutable sessions driving an object implementation.

    A session holds the shared registers and each process's in-progress
    operation; the caller (test, adversary, workload generator) decides who
    steps when.  Sessions are cloneable, which is what the covering
    adversary needs to compare a run with and without a hidden
    perturbation. *)

open Ts_model

type ('s, 'op) t

val create : ('s, 'op) Impl.t -> ('s, 'op) t
val clone : ('s, 'op) t -> ('s, 'op) t
val impl : ('s, 'op) t -> ('s, 'op) Impl.t

(** [invoke t p op] starts [op] at process [p].
    @raise Invalid_argument if [p] already has an operation in progress. *)
val invoke : ('s, 'op) t -> int -> 'op -> unit

(** [busy t p] holds iff [p] has an operation in progress. *)
val busy : ('s, 'op) t -> int -> bool

(** [poised t p] is the step [p]'s pending operation will take next. *)
val poised : ('s, 'op) t -> int -> Impl.step option

(** [step t p] advances [p]'s operation by one step.
    @raise Invalid_argument if [p] has no operation in progress. *)
val step : ('s, 'op) t -> int -> [ `Continues | `Returned of Value.t ]

(** [finish t p] runs [p] solo until its current operation returns.
    Returns the response and the number of steps taken.
    @raise Invalid_argument if no operation is in progress, or if the
    operation fails to return within a large internal budget (a wait-free
    implementation always returns). *)
val finish : ('s, 'op) t -> int -> Value.t * int

(** [op t p op] = invoke + finish: runs a whole solo operation. *)
val op : ('s, 'op) t -> int -> 'op -> Value.t * int

(** The history of all invocations and responses so far. *)
val history : ('s, 'op) t -> 'op History.t

(** Distinct registers accessed (read or written) by [p] since its current
    operation began; reset at [invoke].  Sorted. *)
val op_accesses : ('s, 'op) t -> int -> Action.reg list

(** Distinct registers written in the whole session so far.  Sorted. *)
val written : ('s, 'op) t -> Action.reg list

(** Current contents of register [r]. *)
val register : ('s, 'op) t -> Action.reg -> Value.t
