(** Wait-free single-writer atomic snapshot from registers
    (Afek, Attiya, Dolev, Gafni, Merritt, Shavit, JACM 1993).

    One register ("segment") per process holds a triple
    [(sequence number, value, embedded view)].  [Scan] repeatedly collects
    all segments: two identical consecutive collects are a true snapshot
    ("direct" scan); otherwise a process observed to move twice has
    performed a whole [Update] — embedded scan included — inside our scan's
    interval, so its embedded view can be borrowed.  [Update v] performs an
    embedded scan and then writes [(seq+1, v, view)] to its own segment.

    A scan terminates after at most [n + 2] collects, each of [n] reads.
    The single-writer snapshot is in the Jayanti–Tan–Toueg set [A] of
    perturbable objects, so its space is subject to the [n − 1] bound;
    this implementation uses exactly [n] registers. *)

open Ts_model

type op =
  | Update of Value.t
  | Scan

type state

val make : n:int -> (state, op) Impl.t

(** [view_of_scan v] decodes a [Scan] response into the per-process values. *)
val view_of_scan : Value.t -> Value.t list
