(** Linearizability checking (Wing–Gong / Herlihy–Wing style).

    Given a complete concurrent history and a sequential specification,
    search for a linearization: a total order of the operations that
    respects real-time precedence and in which every response matches the
    specification.  Exponential in the worst case; intended for the small
    and medium histories the tests and experiments generate (memoized on
    the set of linearized operations plus specification state). *)

open Ts_model

type ('st, 'op) spec = {
  init : 'st;
  apply : 'st -> pid:int -> 'op -> 'st * Value.t;
      (** sequential effect of one operation *)
}

(** [check spec history] decides whether [history] (which must be complete;
    see {!History.complete}) is linearizable w.r.t. [spec].  Returns the
    witness order as operation indices when it is. *)
val check : ('st, 'op) spec -> 'op History.t -> int list option

(** Sequential specification of {!Counter}. *)
val counter_spec : (int, Counter.op) spec

(** Sequential specification of {!Maxreg}. *)
val maxreg_spec : (int, Maxreg.op) spec

(** Sequential specification of {!Snapshot} for [n] processes. *)
val snapshot_spec : n:int -> (Value.t list, Snapshot.op) spec
