(** Long-lived shared objects implemented from registers.

    Unlike a consensus protocol (one shot, ends in a decision), an object
    implementation serves an unbounded stream of operations per process.
    An operation in progress is a small state machine poised to read, to
    write, or to return a response; its state must be plain immutable data
    so sessions can be cloned for adversarial experiments.

    These are the perturbable objects of the Jayanti–Tan–Toueg bound (and
    of part I.1 of the lecture bundle): counters, max-registers and
    single-writer snapshots, all implementable wait-free from registers,
    all subject to the n−1 space/solo-step lower bound. *)

open Ts_model

type step =
  | Read of Action.reg
  | Write of Action.reg * Value.t
  | Return of Value.t  (** the operation completes with this response *)

type ('s, 'op) t = {
  name : string;
  description : string;
  num_processes : int;
  num_registers : int;
  begin_op : pid:int -> 'op -> 's;  (** state at the operation's invocation *)
  poised : 's -> step;
  on_read : 's -> Value.t -> 's;
  on_write : 's -> 's;
  pp_op : Format.formatter -> 'op -> unit;
}
