open Ts_model

type step =
  | Read of Action.reg
  | Write of Action.reg * Value.t
  | Return of Value.t

type ('s, 'op) t = {
  name : string;
  description : string;
  num_processes : int;
  num_registers : int;
  begin_op : pid:int -> 'op -> 's;
  poised : 's -> step;
  on_read : 's -> Value.t -> 's;
  on_write : 's -> 's;
  pp_op : Format.formatter -> 'op -> unit;
}
