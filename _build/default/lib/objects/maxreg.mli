(** A wait-free linearizable max-register (over naturals) from [n]
    single-writer registers.

    [Write_max v] raises the caller's slot to at least [v]; [Read_max]
    collects all slots and returns the maximum (0 when fresh).  Slots are
    monotone, so the collect-max is linearizable by the same argument as
    the counter's collect-sum. *)


type op =
  | Write_max of int  (** argument must be [>= 0] *)
  | Read_max

type state

val make : n:int -> (state, op) Impl.t
