(** Concurrent histories: the invoke/response record a run of an object
    produces, in real-time order.  Consumed by the linearizability
    checker. *)

open Ts_model

type 'op event =
  | Inv of int * 'op  (** process [pid] invokes [op] *)
  | Res of int * Value.t  (** process [pid]'s pending operation returns *)

type 'op t = 'op event list
(** Events in real-time order (head happened first). *)

(** One completed operation extracted from a history. *)
type 'op operation = {
  pid : int;
  op : 'op;
  result : Value.t;
  inv_at : int;  (** index of the invocation in the history *)
  res_at : int;  (** index of the response *)
}

(** [operations h] pairs up invocations and responses.
    @raise Invalid_argument on malformed or incomplete histories (a pending
    invocation without a response must be removed by the caller first — use
    [complete]). *)
val operations : 'op t -> 'op operation list

(** [complete h] drops invocations that never received a response.  (For
    checking purposes this is the "pending operations took no effect"
    completion; sufficient for our experiments, where sessions finish
    cleanly or the pending op performed no writes.) *)
val complete : 'op t -> 'op t

val pp : (Format.formatter -> 'op -> unit) -> Format.formatter -> 'op t -> unit
