open Ts_model

type ('st, 'op) spec = {
  init : 'st;
  apply : 'st -> pid:int -> 'op -> 'st * Value.t;
}

let check spec history =
  let ops = Array.of_list (History.operations history) in
  let n = Array.length ops in
  if n > 62 then invalid_arg "Linearize.check: history too large";
  let full = (1 lsl n) - 1 in
  (* [failed] remembers (mask, state) pairs from which no completion
     exists; states are plain data so structural hashing applies. *)
  let failed = Hashtbl.create 256 in
  (* o can linearize next iff no other unlinearized op finished before o
     was invoked. *)
  let minimal mask i =
    let oi = ops.(i) in
    let ok = ref true in
    for j = 0 to n - 1 do
      if j <> i && mask land (1 lsl j) = 0 && ops.(j).History.res_at < oi.History.inv_at
      then ok := false
    done;
    !ok
  in
  let rec go mask state acc =
    if mask = full then Some (List.rev acc)
    else if Hashtbl.mem failed (mask, state) then None
    else begin
      let result = ref None in
      (try
         for i = 0 to n - 1 do
           if mask land (1 lsl i) = 0 && minimal mask i then begin
             let o = ops.(i) in
             let state', v = spec.apply state ~pid:o.History.pid o.History.op in
             if Value.equal v o.History.result then
               match go (mask lor (1 lsl i)) state' (i :: acc) with
               | Some _ as r ->
                 result := r;
                 raise Exit
               | None -> ()
           end
         done
       with Exit -> ());
      if !result = None then Hashtbl.replace failed (mask, state) ();
      !result
    end
  in
  go 0 spec.init []

let counter_spec =
  {
    init = 0;
    apply =
      (fun s ~pid:_ op ->
        match op with
        | Counter.Inc -> s + 1, Value.bot
        | Counter.Read_count -> s, Value.int s);
  }

let maxreg_spec =
  {
    init = 0;
    apply =
      (fun s ~pid:_ op ->
        match op with
        | Maxreg.Write_max v -> max s v, Value.bot
        | Maxreg.Read_max -> s, Value.int s);
  }

let snapshot_spec ~n =
  {
    init = List.init n (fun _ -> Value.bot);
    apply =
      (fun s ~pid op ->
        match op with
        | Snapshot.Update v -> List.mapi (fun i x -> if i = pid then v else x) s, Value.bot
        | Snapshot.Scan -> s, Value.list s);
  }
