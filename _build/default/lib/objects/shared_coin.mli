(** A weak shared coin by random walk (Aspnes–Herlihy style).

    The building block of sub-exponential randomized consensus: processes
    repeatedly flip local coins and push ±1 increments into per-process
    slots; once the collected sum drifts past [±K·n] they output its sign.
    Because the walk must travel a long way to cross from one threshold to
    the other, most executions end with every process seeing the same
    sign — a "weak" coin: all processes agree on the outcome with constant
    probability, regardless of the schedule.

    Local coin flips are derived from a splitmix state carried in the
    operation ([Toss { seed }]), keeping the state machine deterministic
    data, so sessions remain cloneable and replays exact.

    [Toss] returns [Value.Bool sign].  Each process may toss once per
    instance. *)

type op = Toss of { seed : int }

type state

(** [make ~n ~k] uses threshold [k * n]; [k >= 1]. *)
val make : n:int -> k:int -> (state, op) Impl.t
