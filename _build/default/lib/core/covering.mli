(** Covering sets and block writes (Zhu, Definition 2).

    A process covers a register when it is poised to write it; a block
    write by a covering set [R] is an execution in which each process of
    [R] performs exactly its pending write.  When every process of [R]
    covers a *different* register the order of the block write is
    irrelevant; we fix ascending pid order. *)

open Ts_model

(** [covered t cfg r_set] is the covered register of each process of
    [r_set], or [None] for the whole set if some process is not poised to
    write. *)
val covered : 's Protocol.t -> 's Config.t -> Pset.t -> (int * Action.reg) list option

(** [covered_set proto cfg r_set] is the sorted distinct registers covered
    by [r_set] (processes not poised to write contribute nothing). *)
val covered_set : 's Protocol.t -> 's Config.t -> Pset.t -> Action.reg list

(** [is_covering proto cfg r_set] holds iff every process of [r_set] is
    poised to write. *)
val is_covering : 's Protocol.t -> 's Config.t -> Pset.t -> bool

(** [well_spread proto cfg r_set] holds iff [r_set] is covering and covers
    pairwise distinct registers. *)
val well_spread : 's Protocol.t -> 's Config.t -> Pset.t -> bool

(** [block_write r_set] is the schedule performing the block write by
    [r_set] in ascending pid order.  The empty set gives the empty
    schedule (the proofs treat [R = ∅] as a valid covering set). *)
val block_write : Pset.t -> Execution.event list
