(** The engine's log source.

    The adversary constructions are search procedures; when a horizon is
    too small it helps to see how far they got.  Enable with:

    {[
      Logs.set_reporter (Logs.format_reporter ());
      Logs.Src.set_level Engine_log.src (Some Logs.Debug)
    ]} *)

val src : Logs.src

module Log : Logs.LOG
