lib/core/engine_log.mli: Logs
