lib/core/lemmas.mli: Action Config Execution Pset Ts_model Valency Value
