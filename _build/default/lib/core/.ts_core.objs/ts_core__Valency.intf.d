lib/core/valency.mli: Config Execution Protocol Pset Ts_model Value
