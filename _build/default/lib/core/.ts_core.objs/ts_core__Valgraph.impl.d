lib/core/valgraph.ml: Action Buffer Config Hashtbl List Printf Protocol Queue String Ts_model Valency Value
