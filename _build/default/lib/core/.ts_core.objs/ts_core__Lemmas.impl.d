lib/core/lemmas.ml: Action Config Covering Dump Engine_log Execution Fmt Format List Pset Ts_model Valency Value
