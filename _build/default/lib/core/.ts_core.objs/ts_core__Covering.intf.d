lib/core/covering.mli: Action Config Execution Protocol Pset Ts_model
