lib/core/bounds.mli:
