lib/core/valency.ml: Action Config Execution Hashtbl List Protocol Pset Queue Ts_model Value
