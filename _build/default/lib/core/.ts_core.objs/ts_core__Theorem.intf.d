lib/core/theorem.mli: Action Config Execution Format Protocol Pset Ts_model Valency Value
