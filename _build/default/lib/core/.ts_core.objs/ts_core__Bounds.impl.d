lib/core/bounds.ml:
