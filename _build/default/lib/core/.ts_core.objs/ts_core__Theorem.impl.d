lib/core/theorem.ml: Action Array Config Covering Engine_log Execution Fmt Format Lemmas List Printexc Printf Protocol Pset Ts_model Valency Value
