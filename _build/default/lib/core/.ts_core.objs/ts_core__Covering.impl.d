lib/core/covering.ml: Config Execution List Option Pset Ts_model
