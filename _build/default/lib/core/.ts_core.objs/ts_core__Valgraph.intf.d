lib/core/valgraph.mli: Pset Ts_model Valency Value
