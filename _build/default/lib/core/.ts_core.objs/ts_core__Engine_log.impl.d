lib/core/engine_log.ml: Logs
