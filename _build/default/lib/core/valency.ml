open Ts_model

exception Horizon_exceeded of string

type 's t = {
  proto : 's Protocol.t;
  horizon : int;
  memo : ('s Config.t * int * int, Execution.event list option) Hashtbl.t;
  mutable searches : int;
}

let create proto ~horizon = { proto; horizon; memo = Hashtbl.create 4096; searches = 0 }
let protocol t = t.proto
let horizon t = t.horizon
let searches t = t.searches

let zero = Value.int 0
let one = Value.int 1

let decided_here cfg v = List.exists (Value.equal v) (Config.decided_values cfg)

(* Breadth-first search for a P-only execution from [cfg] deciding [v].
   BFS visits every configuration at its shortest P-only distance, so
   together with the visited table the search is *complete* for executions
   of length <= horizon, and the returned witness is one of minimal
   length.  Negative answers still only mean "not within horizon". *)
let search t cfg ps v =
  t.searches <- t.searches + 1;
  let visited = Hashtbl.create 1024 in
  let q = Queue.create () in
  Queue.add (cfg, [], 0) q;
  Hashtbl.replace visited cfg ();
  let result = ref None in
  (try
     while not (Queue.is_empty q) do
       let cfg, rev_sched, depth = Queue.pop q in
       if decided_here cfg v then begin
         result := Some (List.rev rev_sched);
         raise Exit
       end;
       if depth < t.horizon then
         Pset.iter
           (fun p ->
             let push coin =
               let cfg', _ = Config.step t.proto cfg p ~coin in
               if not (Hashtbl.mem visited cfg') then begin
                 Hashtbl.replace visited cfg' ();
                 Queue.add (cfg', { Execution.pid = p; coin } :: rev_sched, depth + 1) q
               end
             in
             match Config.poised t.proto cfg p with
             | None -> ()
             | Some Action.Flip ->
               push (Some true);
               push (Some false)
             | Some _ -> push None)
           ps
     done
   with Exit -> ());
  !result

let can_decide t cfg ps v =
  let key = cfg, Pset.to_mask ps, Value.to_int v in
  match Hashtbl.find_opt t.memo key with
  | Some r -> r
  | None ->
    let r = search t cfg ps v in
    Hashtbl.replace t.memo key r;
    r

type verdict =
  | Bivalent of Execution.event list * Execution.event list
  | Univalent of Value.t * Execution.event list
  | Blocked

let classify t cfg ps =
  match can_decide t cfg ps zero, can_decide t cfg ps one with
  | Some w0, Some w1 -> Bivalent (w0, w1)
  | Some w0, None -> Univalent (zero, w0)
  | None, Some w1 -> Univalent (one, w1)
  | None, None -> Blocked

let is_bivalent t cfg ps =
  match classify t cfg ps with
  | Bivalent _ -> true
  | Univalent _ | Blocked -> false

let univalent_value t cfg ps =
  match classify t cfg ps with
  | Univalent (v, _) -> Some v
  | Bivalent _ | Blocked -> None
