(** Executable versions of Zhu's Lemmas 1–3.

    Each procedure follows the published proof step by step, using the
    {!Valency} oracle for the existential facts the proof asserts, and
    *re-verifies its own conclusion* before returning — a successful return
    is a machine-checked instance of the lemma on the protocol at hand.
    When the bounded oracle cannot support a step, the procedures raise
    {!Valency.Horizon_exceeded} rather than return anything unverified. *)

open Ts_model

(** Result of {!lemma1}: a P-only execution [phi] and a process [z] such
    that [P - {z}] is bivalent from [C·phi]. *)
type lemma1_result = {
  phi : Execution.event list;
  z : int;
}

(** [lemma1 t c p] — Zhu's Lemma 1.  Requires [|p| >= 3] and [p] bivalent
    from [c] (checked).  The search walks the prefixes of a witness
    execution exactly as in the proof, testing all candidate [z]. *)
val lemma1 : 's Valency.t -> 's Config.t -> Pset.t -> lemma1_result

(** [solo_deciding t c z] is a {z}-only schedule from [c] in which [z]
    decides — the "nondeterministic solo terminating" obligation.
    @raise Valency.Horizon_exceeded if none is found within horizon. *)
val solo_deciding : 's Valency.t -> 's Config.t -> int -> Execution.event list

(** [split_at_uncovered_write t c z ~covered ~zeta] applies the prefix of
    the {z}-only schedule [zeta] from [c] up to (excluding) the first write
    to a register outside [covered].  Returns the applied prefix, the
    resulting configuration and the register of the pending uncovered
    write.  This is the executable content of Lemma 2: for a correct
    protocol such a write must exist in every deciding solo execution.
    @raise Valency.Horizon_exceeded if [zeta] contains no such write. *)
val split_at_uncovered_write :
  's Valency.t ->
  's Config.t ->
  int ->
  covered:Action.reg list ->
  zeta:Execution.event list ->
  Execution.event list * 's Config.t * Action.reg

(** [lemma2_holds t c ~p ~r ~z] checks Lemma 2's conclusion on the solo
    deciding execution the oracle finds for [z] from [c]: it must contain a
    write to a register not covered by [r] in [c].  (For a deterministic
    protocol the solo execution is unique, so this checks the universally
    quantified statement.) *)
val lemma2_holds : 's Valency.t -> 's Config.t -> r:Pset.t -> z:int -> bool

(** Result of {!lemma3}: a Q-only execution [phi] and a process [q] in [Q]
    such that [R ∪ {q}] is bivalent from [C·phi·β], where [β] is the block
    write by [R]. *)
type lemma3_result = {
  phi3 : Execution.event list;
  q : int;
  v_r : Value.t;  (** the value R can decide from C·β, as in the proof *)
}

(** [lemma3 t c ~p ~r] — Zhu's Lemma 3.  Requires [r] a non-empty covering
    set in [c], [r ⊆ p], and [Q = p − r] bivalent from [c] (checked). *)
val lemma3 : 's Valency.t -> 's Config.t -> p:Pset.t -> r:Pset.t -> lemma3_result

(** [apply_schedule t c sched] is [Execution.apply] under the oracle's
    protocol — convenience re-export. *)
val apply_schedule :
  's Valency.t -> 's Config.t -> Execution.event list -> 's Config.t * Execution.trace
