let zhu_space n = n - 1
let fhs_space n = int_of_float (ceil (sqrt (float_of_int n)))
let known_upper_space n = n
let jtt_space n = n - 1

let log2 x = log x /. log 2.

let fan_lynch_cost n =
  let n = float_of_int n in
  n *. log2 n

let log2_factorial n =
  let rec go acc k = if k <= 1 then acc else go (acc +. log2 (float_of_int k)) (k - 1) in
  go 0. n

let leader_election_space n = int_of_float (ceil (log2 (float_of_int (max 2 n)))) + 1
let attiya_censor_steps n = n * n
