(** The bound curves the experiment tables compare against.

    Each function gives, for a system of [n] processes, the value a cited
    theorem proves; the benches print them next to measured quantities. *)

(** Zhu (this paper): registers used by any nondeterministic solo
    terminating binary consensus protocol, [n - 1]. *)
val zhu_space : int -> int

(** Fich–Herlihy–Shavit 1993/98: the previous lower bound, [ceil(sqrt n)]. *)
val fhs_space : int -> int

(** Best known upper bounds ([Zhu15] anonymous memoryless protocol): [n]. *)
val known_upper_space : int -> int

(** Jayanti–Tan–Toueg: space (and deterministic solo time) for perturbable
    objects, [n - 1]. *)
val jtt_space : int -> int

(** Fan–Lynch: total state-change cost of [n] critical-section entries,
    [Omega(n log n)]; we print [n * log2 n]. *)
val fan_lynch_cost : int -> float

(** Bits needed to name a permutation of [n]: [log2 (n!)]. *)
val log2_factorial : int -> float

(** Gelashvili/GHHW leader election: [O(log n)] registers; we print
    [ceil(log2 n) + 1] as the cited upper-bound curve. *)
val leader_election_space : int -> int

(** Attiya–Censor 2008: total step complexity of randomized consensus is
    [Theta(n^2)]; we print [n^2]. *)
val attiya_censor_steps : int -> int
