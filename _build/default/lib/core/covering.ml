open Ts_model

let covered proto cfg r_set =
  let entries =
    Pset.fold
      (fun p acc ->
        match Config.covers proto cfg p with
        | Some r -> Some (p, r) :: acc
        | None -> None :: acc)
      r_set []
  in
  if List.for_all Option.is_some entries then
    Some (List.rev_map Option.get entries)
  else None

let covered_set proto cfg r_set = Config.covered_registers proto cfg r_set

let is_covering proto cfg r_set = Option.is_some (covered proto cfg r_set)

let well_spread proto cfg r_set = Config.covering_is_distinct proto cfg r_set

let block_write r_set = List.map Execution.ev (Pset.to_list r_set)
