let src = Logs.Src.create "tightspace.core" ~doc:"Zhu lower-bound engine"

module Log = (val Logs.src_log src : Logs.LOG)
