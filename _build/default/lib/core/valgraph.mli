(** Valency-annotated configuration graphs, exported as Graphviz DOT.

    The FLP/Zhu arguments are usually drawn as pictures of configuration
    graphs with bivalent and univalent regions; this module generates those
    pictures from real protocols.  Nodes are configurations reachable
    within a step bound, classified by the {!Valency} oracle for a chosen
    process set; edges are single steps labelled by the acting process.

    Intended for small instances (the n = 2 racing protocol up to depth
    6-8 is already instructive); the node budget is a hard cap. *)

open Ts_model

type stats = {
  nodes : int;
  edges : int;
  bivalent : int;
  univalent0 : int;
  univalent1 : int;
  blocked : int;
}

(** [dot t ~inputs ~pset ~depth ~max_nodes] explores the full interleaving
    graph from the initial configuration with [inputs] up to [depth] steps
    (capped at [max_nodes] nodes), classifies every node's valency for
    [pset], and returns the DOT source plus counts.  Bivalent nodes are
    drawn as ellipses, v-univalent nodes as boxes labelled with v. *)
val dot :
  's Valency.t ->
  inputs:Value.t array ->
  pset:Pset.t ->
  depth:int ->
  max_nodes:int ->
  string * stats
