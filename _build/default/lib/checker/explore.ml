open Ts_model

type violation =
  | Agreement_violation of { inputs : Value.t array; schedule : Execution.event list; values : Value.t list }
  | Validity_violation of { inputs : Value.t array; schedule : Execution.event list; value : Value.t }
  | Solo_stuck of { inputs : Value.t array; schedule : Execution.event list; pid : int }

type stats = {
  configs_explored : int;
  truncated : bool;
  deepest : int;
}

type result = {
  verdict : (unit, violation) Stdlib.result;
  stats : stats;
}

(* Can [p], running alone from [cfg], decide within [budget] steps for some
   resolution of its coin flips?  BFS over coin outcomes with a visited set
   (BFS + visited is complete for "reachable within budget"). *)
let solo_can_decide proto cfg p ~budget ~cache =
  match Hashtbl.find_opt cache (cfg, p) with
  | Some r -> r
  | None ->
  let visited = Hashtbl.create 64 in
  let q = Queue.create () in
  Queue.add (cfg, 0) q;
  Hashtbl.replace visited cfg ();
  let found = ref false in
  (try
     while not (Queue.is_empty q) do
       let cfg, depth = Queue.pop q in
       (match Config.has_decided cfg p with
        | Some _ ->
          found := true;
          raise Exit
        | None -> ());
       if depth < budget then
         let push cfg' =
           if not (Hashtbl.mem visited cfg') then begin
             Hashtbl.replace visited cfg' ();
             Queue.add (cfg', depth + 1) q
           end
         in
         match Config.poised proto cfg p with
         | None -> ()
         | Some Action.Flip ->
           push (fst (Config.step proto cfg p ~coin:(Some true)));
           push (fst (Config.step proto cfg p ~coin:(Some false)))
         | Some _ -> push (fst (Config.step proto cfg p ~coin:None))
     done
   with Exit -> ());
  Hashtbl.replace cache (cfg, p) !found;
  !found

exception Found of violation

(* Successor configurations of [cfg]: one per undecided process, two for a
   process poised to flip. *)
let successors proto cfg =
  let n = proto.Protocol.num_processes in
  let acc = ref [] in
  for p = n - 1 downto 0 do
    match Config.poised proto cfg p with
    | None -> ()
    | Some Action.Flip ->
      List.iter
        (fun b ->
          let cfg', _ = Config.step proto cfg p ~coin:(Some b) in
          acc := (Execution.flip p b, cfg') :: !acc)
        [ true; false ]
    | Some _ ->
      let cfg', _ = Config.step proto cfg p ~coin:None in
      acc := (Execution.ev p, cfg') :: !acc
  done;
  !acc

let check_from proto ~k ~inputs ~max_configs ~max_depth ~solo_budget ~check_solo
    ~explored ~truncated ~deepest =
  let module H = Hashtbl in
  let solo_cache = H.create 4096 in
  let visited = H.create 4096 in
  let key cfg = cfg in
  let cfg0 = Config.initial proto ~inputs in
  (* queue holds (config, reversed schedule, depth) *)
  let q = Queue.create () in
  Queue.add (cfg0, [], 0) q;
  H.replace visited (key cfg0) ();
  let check cfg rev_sched =
    let schedule () = List.rev rev_sched in
    let decided = Config.decided_values cfg in
    List.iter
      (fun v ->
        if not (Array.exists (Value.equal v) inputs) then
          raise (Found (Validity_violation { inputs; schedule = schedule (); value = v })))
      decided;
    if List.length decided > k then
      raise (Found (Agreement_violation { inputs; schedule = schedule (); values = decided }));
    if check_solo then
      for p = 0 to proto.Protocol.num_processes - 1 do
        if Config.has_decided cfg p = None
           && not (solo_can_decide proto cfg p ~budget:solo_budget ~cache:solo_cache)
        then raise (Found (Solo_stuck { inputs; schedule = schedule (); pid = p }))
      done
  in
  try
    while not (Queue.is_empty q) do
      let cfg, rev_sched, depth = Queue.pop q in
      incr explored;
      if depth > !deepest then deepest := depth;
      check cfg rev_sched;
      if depth >= max_depth || !explored >= max_configs then truncated := true
      else
        List.iter
          (fun (e, cfg') ->
            if not (H.mem visited (key cfg')) then begin
              H.replace visited (key cfg') ();
              Queue.add (cfg', e :: rev_sched, depth + 1) q
            end)
          (successors proto cfg)
    done;
    Ok ()
  with Found v -> Error v

let check_set_agreement ~k proto ~inputs_list ~max_configs ~max_depth
    ~solo_budget ~check_solo =
  let explored = ref 0 and truncated = ref false and deepest = ref 0 in
  let verdict =
    List.fold_left
      (fun acc inputs ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          check_from proto ~k ~inputs ~max_configs ~max_depth ~solo_budget
            ~check_solo ~explored ~truncated ~deepest)
      (Ok ()) inputs_list
  in
  {
    verdict;
    stats =
      { configs_explored = !explored; truncated = !truncated; deepest = !deepest };
  }

let check_consensus proto = check_set_agreement ~k:1 proto

let binary_inputs n =
  let rec go k =
    if k = 0 then [ [] ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun tl -> [ 0 :: tl; 1 :: tl ]) rest
  in
  List.map (fun bits -> Array.of_list (List.map Value.int bits)) (go n)

let pp_violation ppf = function
  | Agreement_violation { inputs; values; schedule } ->
    Fmt.pf ppf "agreement violated: inputs=[%a] decided {%a} after %d steps"
      Fmt.(array ~sep:(any ";") Value.pp) inputs
      Fmt.(list ~sep:comma Value.pp) values
      (List.length schedule)
  | Validity_violation { inputs; value; schedule } ->
    Fmt.pf ppf "validity violated: inputs=[%a] decided %a after %d steps"
      Fmt.(array ~sep:(any ";") Value.pp) inputs
      Value.pp value (List.length schedule)
  | Solo_stuck { inputs; pid; schedule } ->
    Fmt.pf ppf
      "solo termination violated: inputs=[%a], p%d cannot decide solo after %d prefix steps"
      Fmt.(array ~sep:(any ";") Value.pp) inputs
      pid (List.length schedule)
