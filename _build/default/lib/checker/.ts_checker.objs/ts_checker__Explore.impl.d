lib/checker/explore.ml: Action Array Config Execution Fmt Hashtbl List Protocol Queue Stdlib Ts_model Value
