lib/checker/explore.mli: Execution Format Protocol Stdlib Ts_model Value
