lib/runtime/atomic_run.ml: Action Array Atomic Domain Fmt List Protocol Rng Ts_model Unix Value
