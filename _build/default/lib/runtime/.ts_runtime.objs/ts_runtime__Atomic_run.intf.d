lib/runtime/atomic_run.mli: Format Protocol Ts_model
