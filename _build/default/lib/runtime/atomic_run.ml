open Ts_model

type stats = {
  protocol : string;
  trials : int;
  agreement_failures : int;
  validity_failures : int;
  timeouts : int;
  total_steps : int;
  max_process_steps : int;
  wall_seconds : float;
}

(* One process's life: drive the state machine against the atomics until
   it decides or exhausts its budget. *)
let process_body (proto : 's Protocol.t) regs pid input rng budget =
  let rec go st steps =
    if steps >= budget then None, steps
    else
      match proto.Protocol.poised st with
      | Action.Read r -> go (proto.Protocol.on_read st (Atomic.get regs.(r))) (steps + 1)
      | Action.Write (r, v) ->
        Atomic.set regs.(r) v;
        go (proto.Protocol.on_write st) (steps + 1)
      | Action.Swap (r, v) ->
        let old = Atomic.exchange regs.(r) v in
        go (proto.Protocol.on_swap st old) (steps + 1)
      | Action.Flip -> go (proto.Protocol.on_flip st (Rng.bool rng)) (steps + 1)
      | Action.Decide v -> Some v, steps
  in
  go (proto.Protocol.init ~pid ~input) 0

let run_trial proto ~inputs ~seed ~step_budget =
  let n = proto.Protocol.num_processes in
  let regs = Array.init (max 1 proto.Protocol.num_registers) (fun _ -> Atomic.make Value.bot) in
  let domains =
    Array.init n (fun pid ->
        Domain.spawn (fun () ->
            let rng = Rng.create (seed + (pid * 7919)) in
            process_body proto regs pid inputs.(pid) rng step_budget))
  in
  Array.map Domain.join domains

let run proto ~trials ~seed ~step_budget ~mixed_inputs =
  let n = proto.Protocol.num_processes in
  let rng = Rng.create seed in
  let agreement_failures = ref 0 in
  let validity_failures = ref 0 in
  let timeouts = ref 0 in
  let total_steps = ref 0 in
  let max_process_steps = ref 0 in
  let t0 = Unix.gettimeofday () in
  for trial = 1 to trials do
    let inputs =
      Array.init n (fun pid ->
          if mixed_inputs then Value.int (Rng.int rng 2) else Value.int (pid mod 2))
    in
    let results = run_trial proto ~inputs ~seed:(seed + (trial * 65537)) ~step_budget in
    let decisions = ref [] in
    Array.iter
      (fun (decision, steps) ->
        total_steps := !total_steps + steps;
        if steps > !max_process_steps then max_process_steps := steps;
        match decision with
        | None -> incr timeouts
        | Some v ->
          if not (List.exists (Value.equal v) !decisions) then decisions := v :: !decisions;
          if not (Array.exists (Value.equal v) inputs) then incr validity_failures)
      results;
    if List.length !decisions > 1 then incr agreement_failures
  done;
  {
    protocol = proto.Protocol.name;
    trials;
    agreement_failures = !agreement_failures;
    validity_failures = !validity_failures;
    timeouts = !timeouts;
    total_steps = !total_steps;
    max_process_steps = !max_process_steps;
    wall_seconds = Unix.gettimeofday () -. t0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "%s: %d trials, %d agreement failures, %d validity failures, %d timeouts, %d steps (max %d/process), %.3fs"
    s.protocol s.trials s.agreement_failures s.validity_failures s.timeouts
    s.total_steps s.max_process_steps s.wall_seconds
