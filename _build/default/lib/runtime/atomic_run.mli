(** Multicore execution of protocol state machines over OCaml 5 atomics.

    The simulator executes protocols under *chosen* schedules; this module
    executes the very same [Protocol.t] state machines under *real*
    OCaml 5 domains, with each shared register an [Atomic.t].  An atomic
    [get]/[set] pair is exactly an asynchronous multi-writer atomic
    register, so the protocol code is reused unchanged.

    On this container (single hardware thread) domains interleave
    preemptively rather than in parallel, which still exercises real
    data races on the atomics; the experiment (E12) therefore reports
    agreement/validity across trials and step counts, not parallel
    speedup — see EXPERIMENTS.md. *)

open Ts_model

type stats = {
  protocol : string;
  trials : int;
  agreement_failures : int;  (** trials with two different decisions *)
  validity_failures : int;  (** trials deciding a non-input *)
  timeouts : int;  (** processes that hit the step budget *)
  total_steps : int;  (** across all trials and processes *)
  max_process_steps : int;  (** worst single process *)
  wall_seconds : float;
}

(** [run proto ~trials ~seed ~step_budget ~mixed_inputs] runs [trials]
    full executions, one domain per process.  Inputs are random binary
    values when [mixed_inputs], else all distinct-by-parity (process id
    mod 2). *)
val run :
  's Protocol.t ->
  trials:int ->
  seed:int ->
  step_budget:int ->
  mixed_inputs:bool ->
  stats

val pp_stats : Format.formatter -> stats -> unit
