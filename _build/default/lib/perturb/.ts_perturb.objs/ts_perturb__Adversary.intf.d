lib/perturb/adversary.mli: Action Format Impl Ts_model Ts_objects Value
