lib/perturb/adversary.ml: Action Counter Fmt Fun Impl List Maxreg Runner Snapshot Stdlib Ts_model Ts_objects Value
