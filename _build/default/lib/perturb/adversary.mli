(** The Jayanti–Tan–Toueg covering adversary for perturbable objects.

    The JTT bound (SICOMP 2000; part I.1 of the lecture bundle) says any
    nonblocking implementation of a perturbable object — counter, snapshot,
    max-register, ... — from historyless primitives uses at least [n − 1]
    registers, and a deterministic one also needs [n − 1] solo steps.  The
    proof drives the implementation into configurations where more and more
    processes cover distinct registers, hiding the covered writes of others
    behind block writes.

    This module executes that construction against a concrete
    implementation and reports the measurable content of the proof:

    - {b covering}: processes [p_1 ... p_{n-1}] can each be parked on a
      write to a fresh register ([distinct_covered = n − 1]);
    - {b hiding}: a perturbing operation stopped just before its first
      fresh write is invisible to the prober once the covering processes
      perform their block write ([hidden_invisible]);
    - {b visibility}: the same operation run to completion *is* visible
      despite the block write, because its fresh write survives
      ([completed_visible]);
    - {b probe cost}: the prober's operation accesses at least the covered
      registers ([probe_accesses]), giving the solo-step measurement.

    The adversary is generic in the implementation; it only needs a
    perturbing operation and a probing operation whose result the
    perturbation must change. *)

open Ts_model
open Ts_objects

type report = {
  object_name : string;
  n : int;
  cover : (int * Action.reg) list;  (** covering process, covered register *)
  distinct_covered : int;
  probe_accesses : int;  (** distinct registers the probe accessed *)
  probe_steps : int;  (** steps of the probe operation *)
  base_probe : Value.t;  (** probe result after the block write only *)
  hidden_probe : Value.t;  (** ... with a truncated perturbation inserted *)
  completed_probe : Value.t;  (** ... with a completed perturbation inserted *)
  hidden_invisible : bool;  (** [hidden_probe = base_probe] *)
  completed_visible : bool;  (** [completed_probe <> base_probe] *)
  jtt_bound : int;  (** n − 1 *)
}

(** [run impl ~perturb ~probe] executes the construction.  [perturb] is the
    operation the covering/perturbing processes issue; [probe] the one the
    last process measures with.
    @raise Invalid_argument if [impl.num_processes < 2], or if a process
    cannot be parked on a fresh write within an internal budget (the
    implementation would then not be perturbable this way). *)
val run : ('s, 'op) Impl.t -> perturb:'op -> probe:'op -> report

(** The construction specialized to the shipped objects. *)
val run_counter : n:int -> report

val run_maxreg : n:int -> report
val run_snapshot : n:int -> report
val pp_report : Format.formatter -> report -> unit
