(** Obstruction-free weak leader election by a tournament of 2-party
    consensus matches.

    Each internal node of a balanced binary tree hosts a 2-party
    racing-counters consensus (4 registers) between the winners of its two
    subtrees, who propose their own side; whoever's side is decided climbs
    on.  The process that wins the root is the unique leader; every other
    process learns it lost.  Obstruction-freedom is inherited from racing
    counters.

    Space is [4 (2^⌈log2 n⌉ - 1)] = O(n) registers, but a solo passage
    touches only the [O(log n)] registers on its root path — the
    space-adaptivity gap the paper's introduction contrasts with consensus:
    leader election is solvable in [O(log n)] registers (GHHW'15) while
    consensus provably needs [n − 1].  Our implementation is the simple
    O(n) upper bound; the cited [O(log n)] bound appears as a curve in the
    E10 table (substitution documented in DESIGN.md). *)


type op = Elect

(** [Elect] returns [Value.Bool true] iff the caller is the leader. *)

type state

val make : n:int -> (state, op) Ts_objects.Impl.t

(** Registers of the consensus match at heap node [node] ([>= 1]):
    [reg node v side] is value-[v]'s slot for the party on [side]. *)
val reg : int -> int -> int -> int
