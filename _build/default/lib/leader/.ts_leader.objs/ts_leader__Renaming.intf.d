lib/leader/renaming.mli: Ts_objects
