lib/leader/election.ml: Fmt List Printf Ts_model Ts_objects Value
