lib/leader/splitter.mli: Ts_model Ts_objects Value
