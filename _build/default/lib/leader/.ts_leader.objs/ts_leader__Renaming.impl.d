lib/leader/renaming.ml: Fmt Printf Ts_model Ts_objects Value
