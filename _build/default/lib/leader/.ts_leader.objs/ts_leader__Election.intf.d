lib/leader/election.mli: Ts_objects
