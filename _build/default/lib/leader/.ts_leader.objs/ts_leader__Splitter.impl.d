lib/leader/splitter.ml: Fmt Ts_model Ts_objects Value
