open Ts_model

type op = Rename

let name_of ~row ~diag = (diag * (diag + 1) / 2) + row
let name_space n = n * (n + 1) / 2

(* Splitter at grid position (row, diag) owns registers base, base+1. *)
let base ~row ~diag = 2 * name_of ~row ~diag

type phase =
  | Write_x
  | Read_y
  | Write_y
  | Read_x
  | Ret of int

type state = {
  me : int;
  n : int;
  row : int;
  diag : int;
  phase : phase;
}

let move st ~down =
  let row = if down then st.row + 1 else st.row in
  let diag = st.diag + 1 in
  if diag >= st.n then
    invalid_arg "Renaming: fell off the grid (more than n processes?)"
  else { st with row; diag; phase = Write_x }

let make ~n : (state, op) Ts_objects.Impl.t =
  if n < 1 then invalid_arg "Renaming.make: n >= 1";
  {
    name = Printf.sprintf "ma-renaming-%d" n;
    description = "Moir-Anderson one-shot renaming from a splitter grid";
    num_processes = n;
    num_registers = 2 * name_space n;
    begin_op = (fun ~pid Rename -> { me = pid; n; row = 0; diag = 0; phase = Write_x });
    poised =
      (fun st ->
        let b = base ~row:st.row ~diag:st.diag in
        match st.phase with
        | Write_x -> Ts_objects.Impl.Write (b, Value.int st.me)
        | Read_y -> Ts_objects.Impl.Read (b + 1)
        | Write_y -> Ts_objects.Impl.Write (b + 1, Value.bool true)
        | Read_x -> Ts_objects.Impl.Read b
        | Ret name -> Ts_objects.Impl.Return (Value.int name));
    on_read =
      (fun st v ->
        match st.phase with
        | Read_y ->
          if Value.is_bot v then { st with phase = Write_y } else move st ~down:false
        | Read_x ->
          if Value.equal v (Value.int st.me) then
            { st with phase = Ret (name_of ~row:st.row ~diag:st.diag) }
          else move st ~down:true
        | Write_x | Write_y | Ret _ -> invalid_arg "Renaming.on_read");
    on_write =
      (fun st ->
        match st.phase with
        | Write_x -> { st with phase = Read_y }
        | Write_y -> { st with phase = Read_x }
        | Read_y | Read_x | Ret _ -> invalid_arg "Renaming.on_write");
    pp_op = (fun ppf Rename -> Fmt.string ppf "rename");
  }
