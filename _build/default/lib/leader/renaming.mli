(** One-shot renaming from a grid of splitters (Moir–Anderson 1995).

    Processes with large original ids acquire small distinct names by
    walking a triangular grid of splitters: start at the corner, move
    right when the splitter answers Right, down when it answers Down, and
    take the splitter's grid index as your name when it answers Stop.  On
    every path at most [n - 1] processes continue past each splitter, so
    everyone stops within the first [n] diagonals: the name space is
    [n (n + 1) / 2].

    This is the same two-register splitter that powers the sub-linear
    leader-election results the paper's introduction contrasts with
    consensus — here demonstrating a task strictly weaker than consensus
    that is solvable wait-free from registers.

    [Rename] returns [Value.Int name]. *)

type op = Rename

type state

val make : n:int -> (state, op) Ts_objects.Impl.t

(** [name_of ~row ~diag] is the name assigned at grid position
    (row, diag-row); exposed for tests. *)
val name_of : row:int -> diag:int -> int

(** Size of the name space: [n (n+1) / 2]. *)
val name_space : int -> int
