(** The splitter (Lamport's fast-path mechanism; Moir–Anderson renaming).

    A one-shot object over two registers.  Of the [k >= 1] processes that
    complete [Split]:

    - at most one returns [Stop];
    - at most [k - 1] return [Right];
    - at most [k - 1] return [Down];
    - a process running alone returns [Stop].

    The splitter is the building block of the GHHW leader-election
    protocols the paper's introduction cites as evidence that weak leader
    election is provably cheaper than consensus ([O(log n)] registers vs
    this paper's [n - 1]).  It demonstrates sub-linear space for a weaker
    task: two registers serve any number of processes. *)

open Ts_model

type op = Split

(** [Split] returns [Value.Int 0] for Stop, [1] for Right, [2] for Down. *)

type outcome =
  | Stop
  | Right
  | Down

val outcome_of_value : Value.t -> outcome

type state

val make : n:int -> (state, op) Ts_objects.Impl.t
