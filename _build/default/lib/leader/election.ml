open Ts_model

type op = Elect

let reg node v side = ((node - 1) * 4) + (v * 2) + side

let rec leaves_for n acc = if acc >= n then acc else leaves_for n (2 * acc)

let path_of ~leaves p =
  let rec go c acc = if c <= 1 then List.rev acc else go (c / 2) ((c / 2, c land 1) :: acc) in
  go (leaves + p) []

type phase =
  | Scan of { step : int; s_own : int; s_riv : int; my_own : int; my_riv : int }
  | Incr of int
  | Ret of bool

type state = {
  path : (int * int) list;
  level : int;
  pref : int;  (* current proposal in the node's match: a side, 0 or 1 *)
  phase : phase;
}

let fresh_scan = Scan { step = 0; s_own = 0; s_riv = 0; my_own = 0; my_riv = 0 }

let count_of = function Value.Bot -> 0 | v -> Value.to_int v

let node_side st = List.nth st.path st.level

(* The register the scan reads: own-proposal slots (step 0,1) first. *)
let scan_target st step =
  let node, _ = node_side st in
  let v = if step < 2 then st.pref else 1 - st.pref in
  reg node v (step mod 2)

(* The match at the current node decided [winner]. *)
let decided st winner =
  let _, side = node_side st in
  if winner <> side then { st with phase = Ret false }
  else if st.level + 1 >= List.length st.path then { st with phase = Ret true }
  else
    let level = st.level + 1 in
    let _, side' = List.nth st.path level in
    { st with level; pref = side'; phase = fresh_scan }

let finish_scan st s_own s_riv my_own my_riv =
  if s_own >= s_riv + 2 then decided st st.pref
  else if s_riv > s_own then { st with pref = 1 - st.pref; phase = Incr (my_riv + 1) }
  else { st with phase = Incr (my_own + 1) }

let make ~n : (state, op) Ts_objects.Impl.t =
  if n < 1 then invalid_arg "Election.make: n >= 1";
  let leaves = leaves_for n 1 in
  {
    name = Printf.sprintf "tournament-election-%d" n;
    description = "obstruction-free leader election: tree of 2-party racing matches";
    num_processes = n;
    num_registers = 4 * max 1 (leaves - 1);
    begin_op =
      (fun ~pid Elect ->
        let path = path_of ~leaves pid in
        match path with
        | [] -> { path; level = 0; pref = 0; phase = Ret true }
        | (_, side) :: _ -> { path; level = 0; pref = side; phase = fresh_scan });
    poised =
      (fun st ->
        match st.phase with
        | Scan { step; _ } -> Ts_objects.Impl.Read (scan_target st step)
        | Incr c ->
          let node, side = node_side st in
          Ts_objects.Impl.Write (reg node st.pref side, Value.int c)
        | Ret b -> Ts_objects.Impl.Return (Value.bool b));
    on_read =
      (fun st v ->
        match st.phase with
        | Scan s ->
          let c = count_of v in
          let _, side = node_side st in
          let own_phase = s.step < 2 in
          let slot = s.step mod 2 in
          let s_own = if own_phase then s.s_own + c else s.s_own in
          let s_riv = if own_phase then s.s_riv else s.s_riv + c in
          let my_own = if own_phase && slot = side then c else s.my_own in
          let my_riv = if (not own_phase) && slot = side then c else s.my_riv in
          if s.step = 3 then finish_scan st s_own s_riv my_own my_riv
          else { st with phase = Scan { step = s.step + 1; s_own; s_riv; my_own; my_riv } }
        | Incr _ | Ret _ -> invalid_arg "Election.on_read");
    on_write =
      (fun st ->
        match st.phase with
        | Incr _ -> { st with phase = fresh_scan }
        | Scan _ | Ret _ -> invalid_arg "Election.on_write");
    pp_op = (fun ppf Elect -> Fmt.string ppf "elect");
  }
