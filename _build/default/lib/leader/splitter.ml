open Ts_model

type op = Split

type outcome =
  | Stop
  | Right
  | Down

let outcome_of_value v =
  match Value.to_int v with
  | 0 -> Stop
  | 1 -> Right
  | 2 -> Down
  | _ -> invalid_arg "Splitter.outcome_of_value"

(* Register 0: X (last process to enter); register 1: Y (door closed). *)
type state =
  | Write_x of int
  | Read_y of int
  | Write_y of int
  | Read_x of int
  | Ret of int

let make ~n : (state, op) Ts_objects.Impl.t =
  {
    name = "splitter";
    description = "one-shot splitter from two registers";
    num_processes = n;
    num_registers = 2;
    begin_op = (fun ~pid Split -> Write_x pid);
    poised =
      (function
        | Write_x me -> Ts_objects.Impl.Write (0, Value.int me)
        | Read_y _ -> Ts_objects.Impl.Read 1
        | Write_y _ -> Ts_objects.Impl.Write (1, Value.bool true)
        | Read_x _ -> Ts_objects.Impl.Read 0
        | Ret r -> Ts_objects.Impl.Return (Value.int r));
    on_read =
      (fun st v ->
        match st with
        | Read_y me -> if Value.is_bot v then Write_y me else Ret 1 (* Right *)
        | Read_x me ->
          if Value.equal v (Value.int me) then Ret 0 (* Stop *) else Ret 2 (* Down *)
        | Write_x _ | Write_y _ | Ret _ -> invalid_arg "Splitter.on_read");
    on_write =
      (fun st ->
        match st with
        | Write_x me -> Read_y me
        | Write_y me -> Read_x me
        | Read_y _ | Read_x _ | Ret _ -> invalid_arg "Splitter.on_write");
    pp_op = (fun ppf Split -> Fmt.string ppf "split");
  }
