(** Arbitration-tree mutual exclusion: a balanced binary tournament of
    2-process Peterson locks (the structure of Yang–Anderson's O(n log n)
    algorithm, charged in the state-change model).

    A process climbs from its leaf to the root, acquiring the 2-process
    lock of every internal node on the way, enters the critical section at
    the root, and releases the nodes top-down on exit.  A passage costs
    O(log n) charged accesses, so a canonical execution costs O(n log n) —
    matching the Fan–Lynch lower bound, which is the tightness half of
    experiment E8.

    Registers: 3 per internal node (two flags and a turn), [3 * (2^⌈log2 n⌉ - 1)]
    in total. *)

type state

val make : n:int -> state Algorithm.t
