open Ts_model

type step =
  | Read of Action.reg
  | Write of Action.reg * Value.t
  | Swap of Action.reg * Value.t
  | Enter_cs
  | Exit_cs
  | Done

type 's t = {
  name : string;
  description : string;
  num_processes : int;
  num_registers : int;
  uses_swap : bool;
  start : pid:int -> 's;
  poised : 's -> step;
  on_read : 's -> Value.t -> 's;
  on_write : 's -> 's;
  on_swap : 's -> Value.t -> 's;
  on_enter : 's -> 's;
  on_exit : 's -> 's;
}

type packed = Packed : 's t -> packed

let no_swap _ _ = invalid_arg "Algorithm.no_swap: register-only algorithm swapped"
