(** Mutual-exclusion algorithms as state machines.

    A process cycles through remainder → trying section → critical section
    → exit section → remainder.  Shared steps are reads and writes of
    registers, plus [Swap] so that one algorithm (the test-and-set lock)
    can demonstrate what a *historyless but stronger-than-register*
    primitive buys — the contrast drawn in the paper's conclusion (§4) and
    in the Fan–Lynch model, whose bound is for registers.

    The scheduler (in {!Arena}) decides when a process poised at
    [Enter_cs] actually enters and when a process in the critical section
    leaves; algorithms never busy-wait inside the critical section. *)

open Ts_model

type step =
  | Read of Action.reg
  | Write of Action.reg * Value.t
  | Swap of Action.reg * Value.t  (** atomically write, returning the old value *)
  | Enter_cs  (** poised to enter the critical section *)
  | Exit_cs  (** inside the critical section, poised to start the exit code *)
  | Done  (** back in the remainder section *)

type 's t = {
  name : string;
  description : string;
  num_processes : int;
  num_registers : int;
  uses_swap : bool;  (** true iff some step is a [Swap] (stronger primitive) *)
  start : pid:int -> 's;  (** state at the top of the trying section *)
  poised : 's -> step;
  on_read : 's -> Value.t -> 's;
  on_write : 's -> 's;
  on_swap : 's -> Value.t -> 's;  (** receives the swapped-out old value *)
  on_enter : 's -> 's;  (** the [Enter_cs] step was granted *)
  on_exit : 's -> 's;  (** the [Exit_cs] step was taken; exit code begins *)
}

type packed = Packed : 's t -> packed

val no_swap : 's -> Value.t -> 's
(** [on_swap] for register-only algorithms; raises if invoked. *)
