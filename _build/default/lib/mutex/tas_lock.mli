(** Test-and-test-and-set lock from a single swap register.

    [swap] is a *historyless* primitive — exactly the class the paper's
    conclusion (§4) singles out: Zhu's technique does not directly extend
    to it because a swapper sees the value it displaced.  This lock shows
    what that extra power buys: one shared location and O(1) charged
    accesses per uncontended passage, far below the register-only
    Ω(n log n) mutex cost and the n−1 consensus space floor.  Used by
    experiments E8 (cost comparison) and E13 (historyless contrast). *)

type state

val make : n:int -> state Algorithm.t
