(** Driving mutual-exclusion algorithms and charging their cost.

    {b Cost model} — the Fan–Lynch "state change cost model", a
    simplification of the cache-coherent model: every write (and swap) is
    charged 1; a read is charged 1 only if it returns a value different
    from the last value the process observed in that register (a cache
    miss / invalidation).  Re-reading an unchanged register while
    busy-waiting is free, exactly as local spinning is free in the CC
    model.

    {b Canonical executions} — each process enters the critical section
    exactly once.  Two drivers:

    - [serial ~order]: the adversary runs one process at a time through a
      whole passage, in the given permutation order.  This realizes any of
      the n! canonical CS orders — the executions the encoder/decoder
      argument quantifies over.
    - [contended]: all processes start their trying sections and are
      stepped round-robin until everyone got through; mutual exclusion is
      asserted at every entry.

    Both report total cost, total shared accesses, and the realized CS
    order. *)

(** One entry of an execution log: a process entering its trying section
    or taking a step (with its state-change charge). *)
type log_entry =
  | Started of int
  | Stepped of int * bool

type outcome = {
  algorithm : string;
  n : int;
  cs_order : int list;  (** processes in order of critical-section entry *)
  cost : int;  (** total state-change cost *)
  accesses : int;  (** total shared-memory accesses (incl. free re-reads) *)
  steps : int;  (** total steps including CS enter/exit transitions *)
  per_process_cost : int array;
  step_log : log_entry list;
      (** the full schedule; the raw material of the Fan–Lynch encoder *)
}

exception Mutual_exclusion_violated of int * int
(** Two processes simultaneously in the critical section. *)

exception No_progress of string
(** The round-robin driver span for too long without anyone entering. *)

(** [serial alg ~order] runs a canonical execution with passages in
    [order] (a permutation of [0..n-1]). *)
val serial : 's Algorithm.t -> order:int array -> outcome

(** [contended alg] starts every process and round-robins single steps
    until all are done; each process enters the critical section once.
    The realized CS order is whatever the algorithm's arbitration gives
    the round-robin schedule. *)
val contended : 's Algorithm.t -> outcome

(** {1 Low-level sessions}

    Step-by-step control, used by the Fan–Lynch decoder to replay an
    execution from its encoding and by tests. *)

type 's session

val session : 's Algorithm.t -> 's session

(** [start_proc s p] puts [p] at the top of its trying section. *)
val start_proc : 's session -> int -> unit

(** [active s p] holds iff [p] is between [start_proc] and its return to
    the remainder section. *)
val active : 's session -> int -> bool

val step_proc : 's session -> int -> [ `Continues | `Done ]

(** Whether the most recent step was charged in the state-change model. *)
val last_step_charged : 's session -> bool

val session_outcome : 's session -> outcome
