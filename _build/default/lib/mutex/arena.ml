open Ts_model

type log_entry =
  | Started of int
  | Stepped of int * bool

type outcome = {
  algorithm : string;
  n : int;
  cs_order : int list;
  cost : int;
  accesses : int;
  steps : int;
  per_process_cost : int array;
  step_log : log_entry list;
}

exception Mutual_exclusion_violated of int * int
exception No_progress of string

type 's arena = {
  alg : 's Algorithm.t;
  regs : Value.t array;
  states : 's option array;  (* None = remainder / finished *)
  last_seen : Value.t option array array;  (* per process, per register *)
  cost : int array;
  mutable accesses : int;
  mutable steps : int;
  mutable in_cs : int option;
  mutable cs_order_rev : int list;
  mutable log_rev : log_entry list;
  entered : bool array;  (* has completed / is past its CS entry *)
}

let create alg =
  let n = alg.Algorithm.num_processes in
  {
    alg;
    regs = Array.make (max 1 alg.Algorithm.num_registers) Value.bot;
    states = Array.make n None;
    last_seen = Array.init n (fun _ -> Array.make (max 1 alg.Algorithm.num_registers) None);
    cost = Array.make n 0;
    accesses = 0;
    steps = 0;
    in_cs = None;
    cs_order_rev = [];
    log_rev = [];
    entered = Array.make n false;
  }

let start s p =
  s.states.(p) <- Some (s.alg.Algorithm.start ~pid:p);
  s.log_rev <- Started p :: s.log_rev

(* A read is charged iff it returns something the process has not already
   observed in that register (cache miss); writes and swaps are always
   charged.  Returns whether the access was charged. *)
let charge_read s p r v =
  let seen = s.last_seen.(p).(r) in
  s.last_seen.(p).(r) <- Some v;
  match seen with
  | Some v' when Value.equal v v' -> false
  | Some _ | None ->
    s.cost.(p) <- s.cost.(p) + 1;
    true

let charge_write s p r v =
  s.last_seen.(p).(r) <- Some v;
  s.cost.(p) <- s.cost.(p) + 1

(* One step of process [p]; returns [`Done] when it re-enters the
   remainder section. *)
let step s p =
  match s.states.(p) with
  | None -> invalid_arg "Arena.step: process not in the protocol"
  | Some st ->
    s.steps <- s.steps + 1;
    let log charged = s.log_rev <- Stepped (p, charged) :: s.log_rev in
    (match s.alg.Algorithm.poised st with
     | Algorithm.Read r ->
       s.accesses <- s.accesses + 1;
       let v = s.regs.(r) in
       let charged = charge_read s p r v in
       log charged;
       s.states.(p) <- Some (s.alg.Algorithm.on_read st v);
       `Continues
     | Algorithm.Write (r, v) ->
       s.accesses <- s.accesses + 1;
       charge_write s p r v;
       log true;
       s.regs.(r) <- v;
       s.states.(p) <- Some (s.alg.Algorithm.on_write st);
       `Continues
     | Algorithm.Swap (r, v) ->
       s.accesses <- s.accesses + 1;
       let old = s.regs.(r) in
       charge_write s p r v;
       log true;
       s.regs.(r) <- v;
       s.states.(p) <- Some (s.alg.Algorithm.on_swap st old);
       `Continues
     | Algorithm.Enter_cs ->
       (match s.in_cs with
        | Some q -> raise (Mutual_exclusion_violated (q, p))
        | None ->
          s.in_cs <- Some p;
          s.cs_order_rev <- p :: s.cs_order_rev;
          s.entered.(p) <- true;
          s.states.(p) <- Some (s.alg.Algorithm.on_enter st);
          log true;
          `Continues)
     | Algorithm.Exit_cs ->
       assert (s.in_cs = Some p);
       s.in_cs <- None;
       s.states.(p) <- Some (s.alg.Algorithm.on_exit st);
       log true;
       `Continues
     | Algorithm.Done ->
       s.states.(p) <- None;
       log true;
       `Done)

let outcome s =
  {
    algorithm = s.alg.Algorithm.name;
    n = s.alg.Algorithm.num_processes;
    cs_order = List.rev s.cs_order_rev;
    cost = Array.fold_left ( + ) 0 s.cost;
    accesses = s.accesses;
    steps = s.steps;
    per_process_cost = Array.copy s.cost;
    step_log = List.rev s.log_rev;
  }

let run_passage s p ~fuel =
  start s p;
  let rec go fuel =
    if fuel = 0 then raise (No_progress "solo passage did not finish")
    else match step s p with `Done -> () | `Continues -> go (fuel - 1)
  in
  go fuel

let serial alg ~order =
  let n = alg.Algorithm.num_processes in
  if Array.length order <> n then invalid_arg "Arena.serial: order size mismatch";
  let s = create alg in
  let fuel = 10_000 * (n + 1) * (n + 1) in
  Array.iter (fun p -> run_passage s p ~fuel) order;
  outcome s

let contended alg =
  let n = alg.Algorithm.num_processes in
  let s = create alg in
  for p = 0 to n - 1 do
    start s p
  done;
  let remaining = ref n in
  let budget = ref (1_000_000 * (n + 1)) in
  while !remaining > 0 do
    if !budget <= 0 then raise (No_progress "contended round-robin stalled");
    for p = 0 to n - 1 do
      if s.states.(p) <> None then begin
        decr budget;
        match step s p with `Done -> decr remaining | `Continues -> ()
      end
    done
  done;
  outcome s


(* Public step-by-step session API: a thin veneer over [arena]. *)
type 's session = 's arena

let session alg = create alg
let start_proc s p = start s p
let active s p = s.states.(p) <> None
let step_proc s p = step s p

let last_step_charged s =
  match s.log_rev with
  | Stepped (_, charged) :: _ -> charged
  | Started _ :: _ | [] -> invalid_arg "Arena.last_step_charged: no step taken yet"

let session_outcome s = outcome s
