(** Lamport's bakery algorithm.

    The classic first-come-first-served mutex from registers: a process
    takes a ticket one larger than every ticket it sees, then waits until
    no process with a smaller (ticket, id) pair is choosing or waiting.
    Tickets grow without bound — the paper's model allows unbounded
    registers, and the bakery is the canonical beneficiary.

    Registers: [choosing[0..n-1]] then [ticket[0..n-1]].

    Besides mutual exclusion, the bakery is FIFO with respect to the
    doorway: if p finishes taking its ticket before q starts taking its
    own, p enters the critical section first — the fairness property the
    test suite checks under contention.  Cost in the state-change model is
    Θ(n) charged accesses per passage (every passage rescans the other
    processes' tickets), so canonical executions cost Θ(n²): above the
    arbitration tree, below Peterson's filter. *)

type state

val make : n:int -> state Algorithm.t

val choosing_reg : n:int -> int -> int
val ticket_reg : n:int -> int -> int
