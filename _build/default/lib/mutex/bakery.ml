open Ts_model

let choosing_reg ~n:_ i = i
let ticket_reg ~n i = n + i

type phase =
  | Set_choosing
  | Scan_tickets of { j : int; best : int }
  | Set_ticket of int
  | Clear_choosing
  | Wait_choosing of int  (* waiting for choosing[j] = 0 *)
  | Wait_ticket of int  (* waiting for ticket[j] to release us *)
  | At_cs
  | In_cs
  | Reset_ticket
  | Finished

type state = {
  me : int;
  n : int;
  ticket : int;  (* our ticket once drawn *)
  phase : phase;
}

let nat_of = function Value.Bot -> 0 | v -> Value.to_int v

(* The next process to wait on, skipping ourselves; [n] means done. *)
let next_j me j = if j + 1 = me then j + 2 else j + 1

let first_j me n = if me = 0 then (if n > 1 then 1 else n) else 0

let make ~n : state Algorithm.t =
  if n < 1 then invalid_arg "Bakery.make: n >= 1";
  {
    name = Printf.sprintf "bakery-%d" n;
    description = "Lamport's bakery: FCFS mutex from unbounded registers";
    num_processes = n;
    num_registers = 2 * n;
    uses_swap = false;
    start = (fun ~pid -> { me = pid; n; ticket = 0; phase = Set_choosing });
    poised =
      (fun st ->
        match st.phase with
        | Set_choosing -> Algorithm.Write (choosing_reg ~n st.me, Value.int 1)
        | Scan_tickets { j; _ } -> Algorithm.Read (ticket_reg ~n j)
        | Set_ticket t -> Algorithm.Write (ticket_reg ~n st.me, Value.int t)
        | Clear_choosing -> Algorithm.Write (choosing_reg ~n st.me, Value.int 0)
        | Wait_choosing j -> Algorithm.Read (choosing_reg ~n j)
        | Wait_ticket j -> Algorithm.Read (ticket_reg ~n j)
        | At_cs -> Algorithm.Enter_cs
        | In_cs -> Algorithm.Exit_cs
        | Reset_ticket -> Algorithm.Write (ticket_reg ~n st.me, Value.int 0)
        | Finished -> Algorithm.Done);
    on_read =
      (fun st v ->
        match st.phase with
        | Scan_tickets { j; best } ->
          let best = max best (nat_of v) in
          if j = st.n - 1 then { st with phase = Set_ticket (best + 1); ticket = best + 1 }
          else { st with phase = Scan_tickets { j = j + 1; best } }
        | Wait_choosing j ->
          if nat_of v = 0 then { st with phase = Wait_ticket j } else st
        | Wait_ticket j ->
          let t_j = nat_of v in
          if t_j = 0 || t_j > st.ticket || (t_j = st.ticket && j > st.me) then begin
            let j' = next_j st.me j in
            if j' >= st.n then { st with phase = At_cs }
            else { st with phase = Wait_choosing j' }
          end
          else st
        | Set_choosing | Set_ticket _ | Clear_choosing | At_cs | In_cs | Reset_ticket
        | Finished ->
          invalid_arg "Bakery.on_read");
    on_write =
      (fun st ->
        match st.phase with
        | Set_choosing -> { st with phase = Scan_tickets { j = 0; best = 0 } }
        | Set_ticket _ -> { st with phase = Clear_choosing }
        | Clear_choosing ->
          let j = first_j st.me st.n in
          if j >= st.n then { st with phase = At_cs }
          else { st with phase = Wait_choosing j }
        | Reset_ticket -> { st with phase = Finished }
        | Scan_tickets _ | Wait_choosing _ | Wait_ticket _ | At_cs | In_cs | Finished ->
          invalid_arg "Bakery.on_write");
    on_swap = Algorithm.no_swap;
    on_enter =
      (fun st -> match st.phase with At_cs -> { st with phase = In_cs } | _ -> invalid_arg "Bakery.on_enter");
    on_exit =
      (fun st -> match st.phase with In_cs -> { st with phase = Reset_ticket } | _ -> invalid_arg "Bakery.on_exit");
  }
