lib/mutex/bakery.ml: Algorithm Printf Ts_model Value
