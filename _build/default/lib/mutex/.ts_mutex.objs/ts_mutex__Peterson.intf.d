lib/mutex/peterson.mli: Algorithm
