lib/mutex/tas_lock.ml: Algorithm Printf Ts_model Value
