lib/mutex/tournament.ml: Algorithm List Printf Ts_model Value
