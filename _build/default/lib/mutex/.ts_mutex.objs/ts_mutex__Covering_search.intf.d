lib/mutex/covering_search.mli: Algorithm Format
