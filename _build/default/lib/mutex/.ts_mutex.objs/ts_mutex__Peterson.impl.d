lib/mutex/peterson.ml: Algorithm Printf Ts_model Value
