lib/mutex/arena.ml: Algorithm Array List Ts_model Value
