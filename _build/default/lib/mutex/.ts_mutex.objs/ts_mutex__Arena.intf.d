lib/mutex/arena.mli: Algorithm
