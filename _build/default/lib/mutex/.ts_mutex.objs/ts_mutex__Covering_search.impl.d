lib/mutex/covering_search.ml: Algorithm Array Fmt Hashtbl List Queue Ts_model Value
