lib/mutex/tournament.mli: Algorithm
