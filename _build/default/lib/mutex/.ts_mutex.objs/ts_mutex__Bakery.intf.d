lib/mutex/bakery.mli: Algorithm
