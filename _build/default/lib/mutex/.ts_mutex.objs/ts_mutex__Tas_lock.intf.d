lib/mutex/tas_lock.mli: Algorithm
