lib/mutex/algorithm.mli: Action Ts_model Value
