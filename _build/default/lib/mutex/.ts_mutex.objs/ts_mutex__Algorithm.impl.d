lib/mutex/algorithm.ml: Action Ts_model Value
