(** Searching mutual-exclusion state spaces for covering configurations.

    Burns–Lynch (1993) — the origin of the covering technique Zhu's proof
    builds on — shows any deadlock-free n-process mutex from registers
    needs n shared registers, by driving the algorithm into configurations
    where more and more processes are poised to write ("cover") distinct
    registers.

    This module searches a mutex algorithm's reachable configuration graph
    (all n processes in their trying/critical/exit sections, exhaustive
    interleavings up to a node budget) for the configuration covering the
    most distinct registers, giving the measured counterpart of the BL93
    bound on the implemented locks.  Mutual exclusion is also asserted on
    every explored configuration, so the search doubles as a bounded model
    check of the lock. *)

type report = {
  algorithm : string;
  n : int;
  best_covered : int;  (** max distinct registers simultaneously covered *)
  configs_explored : int;
  truncated : bool;
  exclusion_violated : bool;  (** a reachable configuration admitted two CS entries *)
}

(** [search alg ~max_configs] explores breadth-first from "everyone at the
    top of the trying section". *)
val search : 's Algorithm.t -> max_configs:int -> report

val pp_report : Format.formatter -> report -> unit
