open Ts_model

let level_reg ~n:_ i = i
let waiting_reg ~n m = n + m

type phase =
  | Set_level of int
  | Set_waiting of int
  | Check_waiting of int
  | Scan_levels of { m : int; k : int }
  | At_cs
  | In_cs
  | Reset_level
  | Finished

type state = { me : int; n : int; phase : phase }

let level_of = function Value.Bot -> -1 | v -> Value.to_int v

(* The next process index to scan at a level, skipping ourselves. *)
let first_other me n = if me = 0 then (if n > 1 then 1 else n) else 0

let next_other me n k =
  let k = k + 1 in
  if k = me then k + 1 else if k >= n then n else k

let advance st m =
  if m >= st.n - 2 then { st with phase = At_cs } else { st with phase = Set_level (m + 1) }

let make ~n : state Algorithm.t =
  if n < 1 then invalid_arg "Peterson.make: n >= 1";
  {
    name = Printf.sprintf "peterson-%d" n;
    description = "Peterson's n-process filter lock (registers only)";
    num_processes = n;
    num_registers = n + max 0 (n - 1);
    uses_swap = false;
    start =
      (fun ~pid ->
        { me = pid; n; phase = (if n = 1 then At_cs else Set_level 0) });
    poised =
      (fun st ->
        match st.phase with
        | Set_level m -> Algorithm.Write (level_reg ~n st.me, Value.int m)
        | Set_waiting m -> Algorithm.Write (waiting_reg ~n m, Value.int st.me)
        | Check_waiting m -> Algorithm.Read (waiting_reg ~n m)
        | Scan_levels { k; _ } -> Algorithm.Read (level_reg ~n k)
        | At_cs -> Algorithm.Enter_cs
        | In_cs -> Algorithm.Exit_cs
        | Reset_level -> Algorithm.Write (level_reg ~n st.me, Value.int (-1))
        | Finished -> Algorithm.Done);
    on_read =
      (fun st v ->
        match st.phase with
        | Check_waiting m ->
          if level_of v <> st.me then advance st m
          else
            let k = first_other st.me st.n in
            if k >= st.n then advance st m
            else { st with phase = Scan_levels { m; k } }
        | Scan_levels { m; k } ->
          if level_of v >= m then { st with phase = Check_waiting m }
          else
            let k' = next_other st.me st.n k in
            if k' >= st.n then advance st m
            else { st with phase = Scan_levels { m; k = k' } }
        | Set_level _ | Set_waiting _ | At_cs | In_cs | Reset_level | Finished ->
          invalid_arg "Peterson.on_read")
      ;
    on_write =
      (fun st ->
        match st.phase with
        | Set_level m -> { st with phase = Set_waiting m }
        | Set_waiting m -> { st with phase = Check_waiting m }
        | Reset_level -> { st with phase = Finished }
        | Check_waiting _ | Scan_levels _ | At_cs | In_cs | Finished ->
          invalid_arg "Peterson.on_write");
    on_swap = Algorithm.no_swap;
    on_enter =
      (fun st ->
        match st.phase with
        | At_cs -> { st with phase = In_cs }
        | _ -> invalid_arg "Peterson.on_enter");
    on_exit =
      (fun st ->
        match st.phase with
        | In_cs -> { st with phase = Reset_level }
        | _ -> invalid_arg "Peterson.on_exit");
  }
