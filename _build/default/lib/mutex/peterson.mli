(** Peterson's n-process mutual exclusion (the filter lock), as presented
    in part II of the lecture bundle.

    [n - 1] levels; at level [m] a process announces [level[me] = m],
    signs the level's waiting board [waiting[m] = me], and busy-waits
    until either someone else signed after it ([waiting[m] <> me]) or no
    other process is at level [m] or higher.  A process that clears all
    levels enters the critical section; the exit code resets its level.

    Registers: [n] level registers followed by [n - 1] waiting registers.
    Total work in canonical executions is O(n^3) worst case (the slides'
    figure); the serial canonical cost in the state-change model measures
    Θ(n²), well above the Fan–Lynch Ω(n log n) floor that the arbitration
    tree matches. *)

type state

val make : n:int -> state Algorithm.t

(** Register indices, exposed for tests. *)
val level_reg : n:int -> int -> int

val waiting_reg : n:int -> int -> int
