(* Process sets: bit-mask sets checked against a list model. *)
open Ts_model

let arb_pids = QCheck.(list_of_size Gen.(0 -- 10) (int_bound 20))

let model_of ps = List.sort_uniq compare ps

let test_empty () =
  Alcotest.(check bool) "is_empty" true (Pset.is_empty Pset.empty);
  Alcotest.(check int) "cardinal" 0 (Pset.cardinal Pset.empty);
  Alcotest.(check (list int)) "to_list" [] (Pset.to_list Pset.empty)

let test_singleton () =
  let s = Pset.singleton 5 in
  Alcotest.(check bool) "mem" true (Pset.mem 5 s);
  Alcotest.(check bool) "not mem" false (Pset.mem 4 s);
  Alcotest.(check int) "cardinal" 1 (Pset.cardinal s)

let test_range_all () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Pset.to_list (Pset.range 2 4));
  Alcotest.(check (list int)) "empty range" [] (Pset.to_list (Pset.range 4 2));
  Alcotest.(check (list int)) "all" [ 0; 1; 2 ] (Pset.to_list (Pset.all 3))

let test_set_algebra () =
  let a = Pset.of_list [ 0; 1; 2 ] and b = Pset.of_list [ 2; 3 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2; 3 ] (Pset.to_list (Pset.union a b));
  Alcotest.(check (list int)) "inter" [ 2 ] (Pset.to_list (Pset.inter a b));
  Alcotest.(check (list int)) "diff" [ 0; 1 ] (Pset.to_list (Pset.diff a b));
  Alcotest.(check bool) "subset yes" true (Pset.subset (Pset.of_list [ 1; 2 ]) a);
  Alcotest.(check bool) "subset no" false (Pset.subset b a)

let test_choose () =
  Alcotest.(check int) "choose smallest" 3 (Pset.choose (Pset.of_list [ 7; 3; 5 ]));
  Alcotest.check_raises "choose empty" (Invalid_argument "Pset.choose: empty set")
    (fun () -> ignore (Pset.choose Pset.empty))

let test_bounds () =
  Alcotest.check_raises "pid 63 rejected" (Invalid_argument "Pset: pid out of [0,62]")
    (fun () -> ignore (Pset.singleton 63));
  Alcotest.check_raises "negative pid rejected" (Invalid_argument "Pset: pid out of [0,62]")
    (fun () -> ignore (Pset.add (-1) Pset.empty))

let test_iterators () =
  let s = Pset.of_list [ 1; 4; 9 ] in
  Alcotest.(check int) "fold sum" 14 (Pset.fold (fun p acc -> p + acc) s 0);
  Alcotest.(check bool) "for_all" true (Pset.for_all (fun p -> p > 0) s);
  Alcotest.(check bool) "exists" true (Pset.exists (fun p -> p = 4) s);
  Alcotest.(check (list int)) "filter" [ 4 ] (Pset.to_list (Pset.filter (fun p -> p mod 2 = 0) s))

let prop_of_to_list =
  QCheck.Test.make ~name:"of_list/to_list is sorted dedup" ~count:500 arb_pids
    (fun ps -> Pset.to_list (Pset.of_list ps) = model_of ps)

let prop_cardinal =
  QCheck.Test.make ~name:"cardinal matches model" ~count:500 arb_pids (fun ps ->
      Pset.cardinal (Pset.of_list ps) = List.length (model_of ps))

let prop_union_model =
  QCheck.Test.make ~name:"union matches model" ~count:500
    (QCheck.pair arb_pids arb_pids) (fun (a, b) ->
      Pset.to_list (Pset.union (Pset.of_list a) (Pset.of_list b)) = model_of (a @ b))

let prop_diff_inter_partition =
  QCheck.Test.make ~name:"diff and inter partition the set" ~count:500
    (QCheck.pair arb_pids arb_pids) (fun (a, b) ->
      let sa = Pset.of_list a and sb = Pset.of_list b in
      Pset.equal sa (Pset.union (Pset.diff sa sb) (Pset.inter sa sb)))

let prop_remove_not_mem =
  QCheck.Test.make ~name:"remove then not mem" ~count:500
    (QCheck.pair (QCheck.int_bound 20) arb_pids) (fun (p, ps) ->
      not (Pset.mem p (Pset.remove p (Pset.of_list ps))))

let suite =
  ( "pset",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "singleton" `Quick test_singleton;
      Alcotest.test_case "range/all" `Quick test_range_all;
      Alcotest.test_case "set algebra" `Quick test_set_algebra;
      Alcotest.test_case "choose" `Quick test_choose;
      Alcotest.test_case "pid bounds" `Quick test_bounds;
      Alcotest.test_case "iterators" `Quick test_iterators;
      QCheck_alcotest.to_alcotest prop_of_to_list;
      QCheck_alcotest.to_alcotest prop_cardinal;
      QCheck_alcotest.to_alcotest prop_union_model;
      QCheck_alcotest.to_alcotest prop_diff_inter_partition;
      QCheck_alcotest.to_alcotest prop_remove_not_mem;
    ] )
