(* Shared objects from registers: counter, max-register, snapshot. *)
open Ts_model
open Ts_objects

(* Run a random interleaving of [ops] = (pid, op) list, all invoked up
   front per process queue, and return the history. *)
let random_history impl ops ~seed =
  let rng = Rng.create seed in
  let s = Runner.create impl in
  let queues = Hashtbl.create 8 in
  List.iter
    (fun (p, op) ->
      Hashtbl.replace queues p (Option.value ~default:[] (Hashtbl.find_opt queues p) @ [ op ]))
    ops;
  let alive () =
    Hashtbl.fold (fun p q acc -> if q <> [] || Runner.busy s p then p :: acc else acc) queues []
    |> List.sort compare
  in
  let rec drive () =
    match alive () with
    | [] -> ()
    | ps ->
      let p = List.nth ps (Rng.int rng (List.length ps)) in
      if not (Runner.busy s p) then begin
        match Hashtbl.find queues p with
        | op :: rest ->
          Hashtbl.replace queues p rest;
          Runner.invoke s p op
        | [] -> ()
      end
      else ignore (Runner.step s p);
      drive ()
  in
  drive ();
  (* let any still-busy ops finish *)
  List.iter (fun p -> if Runner.busy s p then ignore (Runner.finish s p))
    (List.init impl.Impl.num_processes Fun.id);
  Runner.history s

let test_counter_sequential () =
  let s = Runner.create (Counter.make ~n:2) in
  Alcotest.(check int) "fresh counter reads 0" 0
    (Value.to_int (fst (Runner.op s 0 Counter.Read_count)));
  ignore (Runner.op s 0 Counter.Inc);
  ignore (Runner.op s 1 Counter.Inc);
  ignore (Runner.op s 0 Counter.Inc);
  Alcotest.(check int) "three incs" 3 (Value.to_int (fst (Runner.op s 1 Counter.Read_count)))

let test_counter_per_slot () =
  let s = Runner.create (Counter.make ~n:3) in
  ignore (Runner.op s 2 Counter.Inc);
  Alcotest.(check int) "slot written" 1 (Value.to_int (Runner.register s 2));
  Alcotest.(check bool) "other slots untouched" true (Value.is_bot (Runner.register s 0))

let test_counter_linearizable_random () =
  for seed = 1 to 30 do
    let n = 3 in
    let ops =
      List.concat_map (fun p -> [ p, Counter.Inc; p, Counter.Read_count; p, Counter.Inc ])
        (List.init n Fun.id)
    in
    let h = random_history (Counter.make ~n) ops ~seed in
    match Linearize.check Linearize.counter_spec h with
    | Some _ -> ()
    | None -> Alcotest.failf "counter history not linearizable (seed %d)" seed
  done

let test_maxreg_sequential () =
  let s = Runner.create (Maxreg.make ~n:2) in
  Alcotest.(check int) "fresh max is 0" 0 (Value.to_int (fst (Runner.op s 0 Maxreg.Read_max)));
  ignore (Runner.op s 0 (Maxreg.Write_max 5));
  ignore (Runner.op s 1 (Maxreg.Write_max 3));
  Alcotest.(check int) "max survives smaller write" 5
    (Value.to_int (fst (Runner.op s 1 Maxreg.Read_max)));
  ignore (Runner.op s 1 (Maxreg.Write_max 9));
  Alcotest.(check int) "max raised" 9 (Value.to_int (fst (Runner.op s 0 Maxreg.Read_max)))

let test_maxreg_skips_write () =
  let s = Runner.create (Maxreg.make ~n:2) in
  ignore (Runner.op s 0 (Maxreg.Write_max 5));
  let before = Runner.written s in
  ignore (Runner.op s 0 (Maxreg.Write_max 2));
  Alcotest.(check (list int)) "no new register written for smaller value" before (Runner.written s)

let test_maxreg_rejects_negative () =
  let s = Runner.create (Maxreg.make ~n:2) in
  Alcotest.check_raises "negative" (Invalid_argument "Maxreg: negative value") (fun () ->
      Runner.invoke s 0 (Maxreg.Write_max (-1)))

let test_maxreg_linearizable_random () =
  for seed = 1 to 30 do
    let n = 3 in
    let ops =
      List.concat_map
        (fun p -> [ p, Maxreg.Write_max (p + 1); p, Maxreg.Read_max; p, Maxreg.Write_max (3 * (p + 1)) ])
        (List.init n Fun.id)
    in
    let h = random_history (Maxreg.make ~n) ops ~seed in
    match Linearize.check Linearize.maxreg_spec h with
    | Some _ -> ()
    | None -> Alcotest.failf "maxreg history not linearizable (seed %d)" seed
  done

let test_snapshot_sequential () =
  let n = 3 in
  let s = Runner.create (Snapshot.make ~n) in
  ignore (Runner.op s 0 (Snapshot.Update (Value.int 7)));
  ignore (Runner.op s 2 (Snapshot.Update (Value.int 9)));
  let view, _ = Runner.op s 1 Snapshot.Scan in
  Alcotest.(check (list string)) "view" [ "7"; "⊥"; "9" ]
    (List.map Value.to_string (Snapshot.view_of_scan view))

let test_snapshot_update_overwrites () =
  let s = Runner.create (Snapshot.make ~n:2) in
  ignore (Runner.op s 0 (Snapshot.Update (Value.int 1)));
  ignore (Runner.op s 0 (Snapshot.Update (Value.int 2)));
  let view, _ = Runner.op s 1 Snapshot.Scan in
  Alcotest.(check string) "latest value visible" "2"
    (Value.to_string (List.nth (Snapshot.view_of_scan view) 0))

let test_snapshot_borrowed_view () =
  (* Force the borrow path: a scanner sees p1 move twice and must adopt
     p1's embedded view, which itself must be a legal snapshot. *)
  let n = 2 in
  let s = Runner.create (Snapshot.make ~n) in
  (* scanner p0 starts and completes its first collect *)
  Runner.invoke s 0 Snapshot.Scan;
  for _ = 1 to n do ignore (Runner.step s 0) done;
  (* p1 performs two full updates, each moving its sequence number *)
  ignore (Runner.op s 1 (Snapshot.Update (Value.int 10)));
  (* second collect observes the first move *)
  for _ = 1 to n do ignore (Runner.step s 0) done;
  ignore (Runner.op s 1 (Snapshot.Update (Value.int 20)));
  let view, _ = Runner.finish s 0 in
  let vs = Snapshot.view_of_scan view in
  Alcotest.(check int) "view arity" n (List.length vs);
  (* the borrowed view reflects one of p1's updates *)
  Alcotest.(check bool) "p1 entry is 10 or 20" true
    (List.mem (Value.to_string (List.nth vs 1)) [ "10"; "20" ]);
  match Linearize.check (Linearize.snapshot_spec ~n) (Runner.history s) with
  | Some _ -> ()
  | None -> Alcotest.fail "borrow-path history not linearizable"

let test_snapshot_linearizable_random () =
  for seed = 1 to 25 do
    let n = 3 in
    let ops =
      List.concat_map
        (fun p -> [ p, Snapshot.Update (Value.int (10 + p)); p, Snapshot.Scan ])
        (List.init n Fun.id)
    in
    let h = random_history (Snapshot.make ~n) ops ~seed in
    match Linearize.check (Linearize.snapshot_spec ~n) h with
    | Some _ -> ()
    | None -> Alcotest.failf "snapshot history not linearizable (seed %d)" seed
  done

let test_snapshot_scan_terminates_under_interference () =
  (* wait-freedom: a scan completes within (n+2) collects even while the
     other processes keep updating *)
  let n = 4 in
  let s = Runner.create (Snapshot.make ~n) in
  Runner.invoke s 0 Snapshot.Scan;
  let steps = ref 0 in
  let continue = ref true in
  while !continue do
    (* one scanner step, then everyone else does a full update *)
    (match Runner.step s 0 with `Returned _ -> continue := false | `Continues -> incr steps);
    if !continue then
      for p = 1 to n - 1 do
        ignore (Runner.op s p (Snapshot.Update (Value.int !steps)))
      done;
    if !steps > 10_000 then Alcotest.fail "scan did not terminate"
  done;
  Alcotest.(check bool) "scan bounded by (n+2) collects" true (!steps <= (n + 2) * n + n)

let test_runner_clone_isolation () =
  let s = Runner.create (Counter.make ~n:2) in
  ignore (Runner.op s 0 Counter.Inc);
  let s' = Runner.clone s in
  ignore (Runner.op s' 0 Counter.Inc);
  Alcotest.(check int) "clone advanced" 2 (Value.to_int (fst (Runner.op s' 1 Counter.Read_count)));
  Alcotest.(check int) "original untouched" 1 (Value.to_int (fst (Runner.op s 1 Counter.Read_count)))

let test_runner_busy_protocol () =
  let s = Runner.create (Counter.make ~n:2) in
  Runner.invoke s 0 Counter.Inc;
  Alcotest.(check bool) "busy" true (Runner.busy s 0);
  Alcotest.check_raises "double invoke" (Invalid_argument "Runner.invoke: operation already in progress")
    (fun () -> Runner.invoke s 0 Counter.Inc);
  Alcotest.check_raises "step idle" (Invalid_argument "Runner.step: no operation in progress")
    (fun () -> ignore (Runner.step s 1))

let test_runner_access_tracking () =
  let n = 4 in
  let s = Runner.create (Counter.make ~n) in
  ignore (Runner.op s 0 Counter.Read_count);
  Alcotest.(check int) "read collects all slots" n (List.length (Runner.op_accesses s 0));
  ignore (Runner.op s 1 Counter.Inc);
  Alcotest.(check (list int)) "inc touches own slot" [ 1 ] (Runner.op_accesses s 1);
  Alcotest.(check (list int)) "written registers" [ 1 ] (Runner.written s)

let suite =
  ( "objects",
    [
      Alcotest.test_case "counter: sequential" `Quick test_counter_sequential;
      Alcotest.test_case "counter: slot layout" `Quick test_counter_per_slot;
      Alcotest.test_case "counter: random histories linearizable" `Slow test_counter_linearizable_random;
      Alcotest.test_case "maxreg: sequential" `Quick test_maxreg_sequential;
      Alcotest.test_case "maxreg: smaller write skipped" `Quick test_maxreg_skips_write;
      Alcotest.test_case "maxreg: rejects negatives" `Quick test_maxreg_rejects_negative;
      Alcotest.test_case "maxreg: random histories linearizable" `Slow test_maxreg_linearizable_random;
      Alcotest.test_case "snapshot: sequential" `Quick test_snapshot_sequential;
      Alcotest.test_case "snapshot: update overwrites" `Quick test_snapshot_update_overwrites;
      Alcotest.test_case "snapshot: borrowed view" `Quick test_snapshot_borrowed_view;
      Alcotest.test_case "snapshot: random histories linearizable" `Slow test_snapshot_linearizable_random;
      Alcotest.test_case "snapshot: scan wait-free under interference" `Quick
        test_snapshot_scan_terminates_under_interference;
      Alcotest.test_case "runner: clone isolation" `Quick test_runner_clone_isolation;
      Alcotest.test_case "runner: busy protocol" `Quick test_runner_busy_protocol;
      Alcotest.test_case "runner: access tracking" `Quick test_runner_access_tracking;
    ] )
