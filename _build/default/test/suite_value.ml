(* Values: the register universe. *)
open Ts_model

let v = Alcotest.testable Value.pp Value.equal

let arb_value =
  let open QCheck in
  let base =
    oneof [ always Value.bot; map Value.int small_signed_int; map Value.bool bool ]
  in
  let rec build depth =
    if depth = 0 then base
    else
      oneof
        [
          base;
          map (fun (a, b) -> Value.pair a b) (pair (build (depth - 1)) (build (depth - 1)));
          map Value.list (list_of_size Gen.(0 -- 3) (build (depth - 1)));
        ]
  in
  build 2

let test_constructors () =
  Alcotest.check v "int" (Value.Int 4) (Value.int 4);
  Alcotest.check v "bool" (Value.Bool true) (Value.bool true);
  Alcotest.check v "pair" (Value.Pair (Value.Int 1, Value.Bot)) (Value.pair (Value.int 1) Value.bot);
  Alcotest.check v "list" (Value.List [ Value.Int 1 ]) (Value.list [ Value.int 1 ])

let test_projections () =
  Alcotest.(check int) "to_int" 7 (Value.to_int (Value.int 7));
  Alcotest.(check bool) "to_bool" true (Value.to_bool (Value.bool true));
  let a, b = Value.to_pair (Value.pair (Value.int 1) (Value.int 2)) in
  Alcotest.check v "fst" (Value.int 1) a;
  Alcotest.check v "snd" (Value.int 2) b;
  Alcotest.(check int) "list len" 2 (List.length (Value.to_list (Value.list [ Value.bot; Value.bot ])))

let test_projection_failures () =
  Alcotest.check_raises "to_int of bot" (Invalid_argument "Value.to_int: non-int") (fun () ->
      ignore (Value.to_int Value.bot));
  Alcotest.check_raises "to_bool of int" (Invalid_argument "Value.to_bool: non-bool") (fun () ->
      ignore (Value.to_bool (Value.int 1)));
  Alcotest.check_raises "to_pair of int" (Invalid_argument "Value.to_pair: non-pair") (fun () ->
      ignore (Value.to_pair (Value.int 1)));
  Alcotest.check_raises "to_list of int" (Invalid_argument "Value.to_list: non-list") (fun () ->
      ignore (Value.to_list (Value.int 1)))

let test_is_bot () =
  Alcotest.(check bool) "bot" true (Value.is_bot Value.bot);
  Alcotest.(check bool) "int" false (Value.is_bot (Value.int 0))

let test_ordering () =
  (* Bot < Int < Bool < Pair < List across constructors *)
  Alcotest.(check bool) "bot smallest" true (Value.compare Value.bot (Value.int (-100)) < 0);
  Alcotest.(check bool) "int < bool" true (Value.compare (Value.int 999) (Value.bool false) < 0);
  Alcotest.(check bool) "bool < pair" true
    (Value.compare (Value.bool true) (Value.pair Value.bot Value.bot) < 0);
  Alcotest.(check bool) "pair < list" true
    (Value.compare (Value.pair Value.bot Value.bot) (Value.list []) < 0)

let test_pp () =
  Alcotest.(check string) "pp bot" "⊥" (Value.to_string Value.bot);
  Alcotest.(check string) "pp pair" "(1,true)"
    (Value.to_string (Value.pair (Value.int 1) (Value.bool true)));
  Alcotest.(check string) "pp list" "[1;2]"
    (Value.to_string (Value.list [ Value.int 1; Value.int 2 ]))

let prop_equal_refl =
  QCheck.Test.make ~name:"equal is reflexive" ~count:300 arb_value (fun x ->
      Value.equal x x)

let prop_compare_equal_agree =
  QCheck.Test.make ~name:"compare = 0 iff equal" ~count:300
    (QCheck.pair arb_value arb_value) (fun (x, y) ->
      Value.equal x y = (Value.compare x y = 0))

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:300
    (QCheck.pair arb_value arb_value) (fun (x, y) ->
      compare (Value.compare x y) 0 = -compare (Value.compare y x) 0)

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal values hash equal" ~count:300 arb_value (fun x ->
      Value.hash x = Value.hash x)

let suite =
  ( "value",
    [
      Alcotest.test_case "constructors" `Quick test_constructors;
      Alcotest.test_case "projections" `Quick test_projections;
      Alcotest.test_case "projection failures" `Quick test_projection_failures;
      Alcotest.test_case "is_bot" `Quick test_is_bot;
      Alcotest.test_case "cross-constructor ordering" `Quick test_ordering;
      Alcotest.test_case "pretty printing" `Quick test_pp;
      QCheck_alcotest.to_alcotest prop_equal_refl;
      QCheck_alcotest.to_alcotest prop_compare_equal_agree;
      QCheck_alcotest.to_alcotest prop_compare_antisym;
      QCheck_alcotest.to_alcotest prop_hash_consistent;
    ] )
