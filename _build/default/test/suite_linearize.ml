(* The linearizability checker itself, on hand-crafted histories. *)
open Ts_model
open Ts_objects

let inv p op = History.Inv (p, op)
let res p v = History.Res (p, v)

let test_empty_history () =
  Alcotest.(check bool) "empty history linearizable" true
    (Linearize.check Linearize.counter_spec [] = Some [])

let test_sequential_ok () =
  let h =
    [ inv 0 Counter.Inc; res 0 Value.bot; inv 1 Counter.Read_count; res 1 (Value.int 1) ]
  in
  Alcotest.(check bool) "sequential inc-read" true
    (Linearize.check Linearize.counter_spec h <> None)

let test_sequential_wrong_value () =
  let h =
    [ inv 0 Counter.Inc; res 0 Value.bot; inv 1 Counter.Read_count; res 1 (Value.int 0) ]
  in
  Alcotest.(check bool) "read 0 after completed inc is not linearizable" true
    (Linearize.check Linearize.counter_spec h = None)

let test_concurrent_read_may_miss () =
  (* read overlapping an inc may return 0 or 1 *)
  let h0 =
    [ inv 1 Counter.Read_count; inv 0 Counter.Inc; res 0 Value.bot; res 1 (Value.int 0) ]
  in
  let h1 =
    [ inv 1 Counter.Read_count; inv 0 Counter.Inc; res 0 Value.bot; res 1 (Value.int 1) ]
  in
  Alcotest.(check bool) "may miss concurrent inc" true
    (Linearize.check Linearize.counter_spec h0 <> None);
  Alcotest.(check bool) "may see concurrent inc" true
    (Linearize.check Linearize.counter_spec h1 <> None)

let test_real_time_order_enforced () =
  (* two sequential reads must not go backwards: 1 then 0 is illegal once
     an inc has completed before the first read *)
  let h =
    [
      inv 0 Counter.Inc; res 0 Value.bot;
      inv 1 Counter.Read_count; res 1 (Value.int 1);
      inv 1 Counter.Read_count; res 1 (Value.int 0);
    ]
  in
  Alcotest.(check bool) "non-monotone reads rejected" true
    (Linearize.check Linearize.counter_spec h = None)

let test_witness_is_valid_order () =
  let h =
    [
      inv 0 Counter.Inc;
      inv 1 Counter.Read_count;
      res 1 (Value.int 1);
      res 0 Value.bot;
      inv 1 Counter.Read_count; res 1 (Value.int 1);
    ]
  in
  match Linearize.check Linearize.counter_spec h with
  | None -> Alcotest.fail "expected linearizable"
  | Some order ->
    Alcotest.(check int) "three operations" 3 (List.length order);
    Alcotest.(check (list int)) "all ops appear once" [ 0; 1; 2 ] (List.sort compare order)

let test_snapshot_spec_violation () =
  (* a scan returning a view that was never a state must be rejected:
     updates 1 then 2 complete sequentially; a later scan shows only the
     first *)
  let n = 2 in
  let h =
    [
      inv 0 (Snapshot.Update (Value.int 1)); res 0 Value.bot;
      inv 1 (Snapshot.Update (Value.int 2)); res 1 Value.bot;
      inv 0 Snapshot.Scan; res 0 (Value.list [ Value.int 1; Value.bot ]);
    ]
  in
  Alcotest.(check bool) "stale view rejected" true
    (Linearize.check (Linearize.snapshot_spec ~n) h = None)

let test_snapshot_spec_ok () =
  let n = 2 in
  let h =
    [
      inv 0 (Snapshot.Update (Value.int 1)); res 0 Value.bot;
      inv 1 (Snapshot.Update (Value.int 2)); res 1 Value.bot;
      inv 0 Snapshot.Scan; res 0 (Value.list [ Value.int 1; Value.int 2 ]);
    ]
  in
  Alcotest.(check bool) "current view accepted" true
    (Linearize.check (Linearize.snapshot_spec ~n) h <> None)

let test_complete_drops_pending () =
  let h = [ inv 0 Counter.Inc; inv 1 Counter.Read_count; res 1 (Value.int 0) ] in
  let c = History.complete h in
  Alcotest.(check int) "one op survives" 1 (List.length (History.operations c))

let test_operations_malformed () =
  Alcotest.check_raises "double invocation"
    (Invalid_argument "History.operations: double invocation") (fun () ->
      ignore (History.operations [ inv 0 Counter.Inc; inv 0 Counter.Inc ]));
  Alcotest.check_raises "orphan response"
    (Invalid_argument "History.operations: response without invocation") (fun () ->
      ignore (History.operations [ res 0 Value.bot ]))

let suite =
  ( "linearize",
    [
      Alcotest.test_case "empty history" `Quick test_empty_history;
      Alcotest.test_case "sequential history accepted" `Quick test_sequential_ok;
      Alcotest.test_case "wrong sequential value rejected" `Quick test_sequential_wrong_value;
      Alcotest.test_case "concurrent read both ways" `Quick test_concurrent_read_may_miss;
      Alcotest.test_case "real-time order enforced" `Quick test_real_time_order_enforced;
      Alcotest.test_case "witness is a valid order" `Quick test_witness_is_valid_order;
      Alcotest.test_case "snapshot: stale view rejected" `Quick test_snapshot_spec_violation;
      Alcotest.test_case "snapshot: fresh view accepted" `Quick test_snapshot_spec_ok;
      Alcotest.test_case "complete drops pending" `Quick test_complete_drops_pending;
      Alcotest.test_case "malformed histories rejected" `Quick test_operations_malformed;
    ] )
