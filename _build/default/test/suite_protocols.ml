(* Consensus protocols: racing counters and the broken controls. *)
open Ts_model
open Ts_protocols

let run_to_agreement proto ~inputs ~seed =
  let rng = Rng.create seed in
  let o =
    Sim.run proto ~inputs ~policy:(Sim.Random rng)
      ~flips:(fun () -> Rng.bool rng)
      ~budget:500_000
  in
  Alcotest.(check bool) "finished" false o.Sim.ran_out;
  match Sim.agreement o with
  | Ok v ->
    Alcotest.(check bool) "validity" true (Sim.valid ~inputs v);
    v
  | Error vs ->
    Alcotest.failf "agreement violated: %a" Fmt.(Dump.list (fun ppf v -> Value.pp ppf v)) vs

let test_racing_solo_each_value () =
  List.iter
    (fun n ->
      let proto = Racing.make ~n in
      List.iter
        (fun input ->
          let inputs = Array.init n (fun p -> Value.int (if p = 0 then input else 1 - input)) in
          let o = Sim.run proto ~inputs ~policy:(Sim.Solo 0) ~flips:(fun () -> true) ~budget:100_000 in
          Alcotest.(check bool) (Printf.sprintf "n=%d solo decides" n) true
            (o.Sim.decisions = [ 0, Value.int input ]))
        [ 0; 1 ])
    [ 1; 2; 3; 5; 8 ]

let test_racing_random_runs () =
  List.iter
    (fun n ->
      let proto = Racing.make ~n in
      for seed = 1 to 10 do
        let rng = Rng.create (seed * 31) in
        let inputs = Array.init n (fun _ -> Value.int (Rng.int rng 2)) in
        ignore (run_to_agreement proto ~inputs ~seed)
      done)
    [ 2; 3; 4; 6 ]

let test_racing_unanimous_inputs_win () =
  (* validity pins the decision when inputs are unanimous *)
  List.iter
    (fun input ->
      let n = 4 in
      let inputs = Array.make n (Value.int input) in
      let v = run_to_agreement (Racing.make ~n) ~inputs ~seed:5 in
      Alcotest.(check int) "unanimous decision" input (Value.to_int v))
    [ 0; 1 ]

let test_racing_rejects_bad_input () =
  Alcotest.check_raises "non-binary input" (Invalid_argument "Racing.init: input must be 0 or 1")
    (fun () ->
      ignore (Config.initial (Racing.make ~n:2) ~inputs:[| Value.int 2; Value.int 0 |]))

let test_racing_register_layout () =
  Alcotest.(check int) "slot 0 0" 0 (Racing.slot ~n:3 0 0);
  Alcotest.(check int) "slot 1 2" 5 (Racing.slot ~n:3 1 2);
  Alcotest.(check int) "registers" 6 (Racing.make ~n:3).Protocol.num_registers

let test_randomized_terminates_with_agreement () =
  let proto = Racing.make_randomized ~n:3 in
  for seed = 1 to 10 do
    let rng = Rng.create (seed * 97) in
    let inputs = Array.init 3 (fun _ -> Value.int (Rng.int rng 2)) in
    ignore (run_to_agreement proto ~inputs ~seed:(seed * 97))
  done

let test_randomized_flips_on_tie () =
  (* a tie with both counters positive triggers a flip; the initial 0-0
     "tie" must NOT (that would let the coin violate validity) *)
  let proto = Racing.make_randomized ~n:2 in
  let cfg = Config.initial proto ~inputs:[| Value.int 0; Value.int 1 |] in
  let rec first_non_read cfg p k =
    if k > 10_000 then Alcotest.fail "no non-read step found"
    else
      match Config.poised proto cfg p with
      | Some (Action.Read _) ->
        first_non_read (fst (Config.step proto cfg p ~coin:None)) p (k + 1)
      | Some a -> a, cfg
      | None -> Alcotest.fail "decided unexpectedly"
  in
  (* initial scan sees 0-0: must increment, not flip *)
  (match first_non_read cfg 0 0 with
   | Action.Write _, _ -> ()
   | a, _ -> Alcotest.failf "expected write on fresh tie, got %a" Action.pp a);
  (* interleave so both processes scan 0-0 concurrently and then both
     increment their own value: a genuine 1-1 tie *)
  let run_to_pending_write cfg p =
    let rec go cfg =
      match Config.poised proto cfg p with
      | Some (Action.Read _) -> go (fst (Config.step proto cfg p ~coin:None))
      | Some (Action.Write _) -> cfg
      | Some a -> Alcotest.failf "unexpected %a" Action.pp a
      | None -> Alcotest.fail "decided unexpectedly"
    in
    go cfg
  in
  let cfg = run_to_pending_write cfg 0 in
  let cfg = run_to_pending_write cfg 1 in
  let cfg = fst (Config.step proto cfg 0 ~coin:None) in
  let cfg = fst (Config.step proto cfg 1 ~coin:None) in
  (match first_non_read cfg 0 0 with
   | Action.Flip, _ -> ()
   | a, _ -> Alcotest.failf "expected flip on genuine tie, got %a" Action.pp a)

let test_deterministic_racing_never_flips () =
  let proto = Racing.make ~n:2 in
  let cfg = Config.initial proto ~inputs:[| Value.int 0; Value.int 1 |] in
  (* run p0 to decision; no step may be a flip *)
  let _, trace, decision = Execution.solo proto cfg 0 ~flips:(fun _ -> true) ~budget:10_000 in
  Alcotest.(check bool) "decided" true (decision <> None);
  Alcotest.(check bool) "no flips" true
    (List.for_all (fun s -> s.Execution.action <> Action.Flip) trace)

(* The key internal invariant behind racing's agreement proof: a deciding
   collect reads the preferred counter first.  We check the read order of a
   full scan from a fresh state. *)
let test_scan_order_own_counter_first () =
  let n = 3 in
  let proto = Racing.make ~n in
  let cfg = Config.initial proto ~inputs:[| Value.int 1; Value.int 0; Value.int 0 |] in
  let rec collect cfg k acc =
    if k = 2 * n then List.rev acc
    else
      match Config.poised proto cfg 0 with
      | Some (Action.Read r) -> collect (fst (Config.step proto cfg 0 ~coin:None)) (k + 1) (r :: acc)
      | _ -> Alcotest.fail "expected read during scan"
  in
  let reads = collect cfg 0 [] in
  let expected =
    (* p0 prefers 1: slots of counter 1 first (3,4,5), then counter 0 *)
    [ 3; 4; 5; 0; 1; 2 ]
  in
  Alcotest.(check (list int)) "scan order" expected reads

let explore proto =
  Ts_checker.Explore.check_consensus proto
    ~inputs_list:(Ts_checker.Explore.binary_inputs proto.Protocol.num_processes)
    ~max_configs:15_000 ~max_depth:30 ~solo_budget:200 ~check_solo:true

let test_model_check_racing_2 () =
  let r = explore (Racing.make ~n:2) in
  (match r.Ts_checker.Explore.verdict with
   | Ok () -> ()
   | Error v -> Alcotest.failf "violation: %a" Ts_checker.Explore.pp_violation v)

let test_model_check_randomized_2 () =
  let r = explore (Racing.make_randomized ~n:2) in
  (match r.Ts_checker.Explore.verdict with
   | Ok () -> ()
   | Error v -> Alcotest.failf "violation: %a" Ts_checker.Explore.pp_violation v)

let expect_violation name proto pred =
  let r = explore proto in
  match r.Ts_checker.Explore.verdict with
  | Ok () -> Alcotest.failf "%s: violation not caught" name
  | Error v ->
    Alcotest.(check bool) (name ^ ": right violation kind") true (pred v)

let test_broken_lww () =
  expect_violation "lww" (Broken.last_write_wins ~n:2) (function
    | Ts_checker.Explore.Agreement_violation _ -> true
    | _ -> false)

let test_broken_max () =
  expect_violation "naive max" (Broken.naive_max ~n:2) (function
    | Ts_checker.Explore.Agreement_violation _ -> true
    | _ -> false)

let test_broken_const () =
  expect_violation "constant 7" (Broken.oblivious_seven ~n:2) (function
    | Ts_checker.Explore.Validity_violation { value; _ } -> Value.equal value (Value.int 7)
    | _ -> false)

let test_broken_spin () =
  expect_violation "insomniac" (Broken.insomniac ~n:2) (function
    | Ts_checker.Explore.Solo_stuck _ -> true
    | _ -> false)

let test_violation_schedules_replay () =
  (* the counterexample schedule must actually reproduce the violation *)
  let proto = Broken.last_write_wins ~n:2 in
  let r = explore proto in
  match r.Ts_checker.Explore.verdict with
  | Error (Ts_checker.Explore.Agreement_violation { inputs; schedule; values }) ->
    let cfg = Config.initial proto ~inputs in
    let cfg', _ = Execution.apply proto cfg schedule in
    Alcotest.(check bool) "replayed decisions match" true
      (Config.decided_values cfg' = values)
  | _ -> Alcotest.fail "expected agreement violation with schedule"

let suite =
  ( "protocols",
    [
      Alcotest.test_case "racing: solo decides own input" `Quick test_racing_solo_each_value;
      Alcotest.test_case "racing: random runs agree validly" `Quick test_racing_random_runs;
      Alcotest.test_case "racing: unanimous inputs win" `Quick test_racing_unanimous_inputs_win;
      Alcotest.test_case "racing: rejects non-binary input" `Quick test_racing_rejects_bad_input;
      Alcotest.test_case "racing: register layout" `Quick test_racing_register_layout;
      Alcotest.test_case "randomized: agrees across seeds" `Quick test_randomized_terminates_with_agreement;
      Alcotest.test_case "randomized: flips on observed tie" `Quick test_randomized_flips_on_tie;
      Alcotest.test_case "deterministic variant never flips" `Quick test_deterministic_racing_never_flips;
      Alcotest.test_case "scan reads own counter first" `Quick test_scan_order_own_counter_first;
      Alcotest.test_case "model check: racing n=2" `Slow test_model_check_racing_2;
      Alcotest.test_case "model check: randomized n=2" `Slow test_model_check_randomized_2;
      Alcotest.test_case "broken: last-write-wins caught" `Quick test_broken_lww;
      Alcotest.test_case "broken: naive max caught" `Quick test_broken_max;
      Alcotest.test_case "broken: constant 7 caught" `Quick test_broken_const;
      Alcotest.test_case "broken: insomniac caught" `Quick test_broken_spin;
      Alcotest.test_case "counterexample schedules replay" `Quick test_violation_schedules_replay;
    ] )
