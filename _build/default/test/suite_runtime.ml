(* Multicore execution over OCaml 5 atomics. *)
open Ts_protocols
open Ts_runtime

let test_racing_on_domains () =
  let s =
    Atomic_run.run (Racing.make ~n:2) ~trials:25 ~seed:42 ~step_budget:500_000
      ~mixed_inputs:true
  in
  Alcotest.(check int) "no agreement failures" 0 s.Atomic_run.agreement_failures;
  Alcotest.(check int) "no validity failures" 0 s.Atomic_run.validity_failures;
  Alcotest.(check int) "no timeouts" 0 s.Atomic_run.timeouts;
  Alcotest.(check bool) "steps recorded" true (s.Atomic_run.total_steps > 0)

let test_racing3_on_domains () =
  let s =
    Atomic_run.run (Racing.make ~n:3) ~trials:15 ~seed:1 ~step_budget:500_000
      ~mixed_inputs:true
  in
  Alcotest.(check int) "agreement holds across domains" 0 s.Atomic_run.agreement_failures;
  Alcotest.(check int) "validity holds" 0 s.Atomic_run.validity_failures

let test_randomized_on_domains () =
  let s =
    Atomic_run.run (Racing.make_randomized ~n:3) ~trials:10 ~seed:5
      ~step_budget:500_000 ~mixed_inputs:true
  in
  Alcotest.(check int) "randomized agrees" 0 s.Atomic_run.agreement_failures;
  Alcotest.(check int) "randomized decides" 0 s.Atomic_run.timeouts

let test_fixed_inputs_parity () =
  let s =
    Atomic_run.run (Racing.make ~n:4) ~trials:10 ~seed:9 ~step_budget:500_000
      ~mixed_inputs:false
  in
  Alcotest.(check int) "agreement with parity inputs" 0 s.Atomic_run.agreement_failures

let test_stats_pp () =
  let s =
    Atomic_run.run (Racing.make ~n:2) ~trials:2 ~seed:3 ~step_budget:100_000
      ~mixed_inputs:true
  in
  let str = Format.asprintf "%a" Atomic_run.pp_stats s in
  Alcotest.(check bool) "stats print" true (String.length str > 20)

let suite =
  ( "runtime",
    [
      Alcotest.test_case "racing-2 on real domains" `Quick test_racing_on_domains;
      Alcotest.test_case "racing-3 on real domains" `Quick test_racing3_on_domains;
      Alcotest.test_case "randomized racing on domains" `Quick test_randomized_on_domains;
      Alcotest.test_case "parity inputs" `Quick test_fixed_inputs_parity;
      Alcotest.test_case "stats pretty-print" `Quick test_stats_pp;
    ] )
