(* k-set agreement and multivalued consensus (the §4 extensions). *)
open Ts_model
open Ts_protocols
module E = Ts_checker.Explore

let test_group_layout () =
  Alcotest.(check int) "group of p5, k=2" 1 (Kset.group ~k:2 5);
  Alcotest.(check int) "rank of p5, k=2" 2 (Kset.group_rank ~k:2 5);
  Alcotest.(check int) "group 0 size, n=5 k=2" 3 (Kset.group_size ~n:5 ~k:2 0);
  Alcotest.(check int) "group 1 size, n=5 k=2" 2 (Kset.group_size ~n:5 ~k:2 1);
  Alcotest.(check int) "registers" 10 (Kset.make ~n:5 ~k:2).Protocol.num_registers

let test_kset_arity_checks () =
  Alcotest.check_raises "k=0" (Invalid_argument "Kset.make: need 1 <= k <= n") (fun () ->
      ignore (Kset.make ~n:3 ~k:0));
  Alcotest.check_raises "k>n" (Invalid_argument "Kset.make: need 1 <= k <= n") (fun () ->
      ignore (Kset.make ~n:3 ~k:4))

let test_kset_solo () =
  (* a solo process decides its own input whatever its group *)
  List.iter
    (fun p ->
      let proto = Kset.make ~n:5 ~k:2 in
      let inputs = Array.init 5 (fun q -> Value.int (if q = p then 1 else 0)) in
      let o = Sim.run proto ~inputs ~policy:(Sim.Solo p) ~flips:(fun () -> true) ~budget:50_000 in
      Alcotest.(check bool) "solo decides own input" true
        (o.Sim.decisions = [ p, Value.int 1 ]))
    [ 0; 1; 4 ]

let test_kset_at_most_k_values () =
  (* random runs: every process decides; at most k distinct values;
     all decided values are inputs *)
  List.iter
    (fun (n, k) ->
      let proto = Kset.make ~n ~k in
      for seed = 1 to 15 do
        let rng = Rng.create (seed * 53) in
        let inputs = Array.init n (fun _ -> Value.int (Rng.int rng 2)) in
        let o =
          Sim.run proto ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> true)
            ~budget:500_000
        in
        Alcotest.(check bool) "all decide" true (List.length o.Sim.decisions = n);
        let decided = List.sort_uniq Value.compare (List.map snd o.Sim.decisions) in
        Alcotest.(check bool) "at most k values" true (List.length decided <= k);
        List.iter
          (fun v -> Alcotest.(check bool) "valid" true (Sim.valid ~inputs v))
          decided
      done)
    [ 3, 2; 4, 2; 5, 3; 6, 2 ]

let test_kset_group_agreement () =
  (* within a group everyone agrees (each group runs consensus) *)
  let n = 6 and k = 2 in
  let proto = Kset.make ~n ~k in
  let rng = Rng.create 77 in
  let inputs = Array.init n (fun p -> Value.int (p mod 2)) in
  let o = Sim.run proto ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> true) ~budget:500_000 in
  List.iter
    (fun g ->
      let group_decisions =
        List.filter (fun (p, _) -> Kset.group ~k p = g) o.Sim.decisions |> List.map snd
      in
      Alcotest.(check int) "group agrees" 1
        (List.length (List.sort_uniq Value.compare group_decisions)))
    [ 0; 1 ]

let test_kset_model_checked () =
  let r =
    E.check_set_agreement ~k:2 (Kset.make ~n:3 ~k:2) ~inputs_list:(E.binary_inputs 3)
      ~max_configs:12_000 ~max_depth:25 ~solo_budget:150 ~check_solo:true
  in
  match r.E.verdict with
  | Ok () -> ()
  | Error v -> Alcotest.failf "kset violation: %a" E.pp_violation v

let test_kset_is_not_consensus () =
  (* with k = 2 groups, the k = 1 checker must find two decided values *)
  let r =
    E.check_consensus (Kset.make ~n:3 ~k:2) ~inputs_list:(E.binary_inputs 3)
      ~max_configs:12_000 ~max_depth:25 ~solo_budget:150 ~check_solo:false
  in
  match r.E.verdict with
  | Error (E.Agreement_violation _) -> ()
  | _ -> Alcotest.fail "partitioned protocol should not pass the consensus checker"

let test_kset_k1_is_consensus () =
  (* k = 1 degenerates to plain racing consensus *)
  let r =
    E.check_consensus (Kset.make ~n:2 ~k:1) ~inputs_list:(E.binary_inputs 2)
      ~max_configs:12_000 ~max_depth:25 ~solo_budget:150 ~check_solo:true
  in
  match r.E.verdict with
  | Ok () -> ()
  | Error v -> Alcotest.failf "kset k=1 violation: %a" E.pp_violation v

let test_multi_rejects_bad_params () =
  Alcotest.check_raises "bits 0" (Invalid_argument "Multivalued.make: 1 <= bits <= 20")
    (fun () -> ignore (Multivalued.make ~n:2 ~bits:0));
  Alcotest.check_raises "input range" (Invalid_argument "Multivalued.init: input out of range")
    (fun () ->
      ignore (Config.initial (Multivalued.make ~n:2 ~bits:2) ~inputs:[| Value.int 4; Value.int 0 |]))

let test_multi_solo () =
  List.iter
    (fun v ->
      let proto = Multivalued.make ~n:3 ~bits:3 in
      let inputs = [| Value.int v; Value.int ((v + 1) mod 8); Value.int ((v + 2) mod 8) |] in
      let o = Sim.run proto ~inputs ~policy:(Sim.Solo 0) ~flips:(fun () -> true) ~budget:100_000 in
      Alcotest.(check bool) (Printf.sprintf "solo decides %d" v) true
        (o.Sim.decisions = [ 0, Value.int v ]))
    [ 0; 3; 5; 7 ]

let test_multi_agreement_random () =
  List.iter
    (fun (n, bits) ->
      let proto = Multivalued.make ~n ~bits in
      for seed = 1 to 15 do
        let rng = Rng.create (seed * 17) in
        let inputs = Array.init n (fun _ -> Value.int (Rng.int rng (1 lsl bits))) in
        let o =
          Sim.run proto ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> true)
            ~budget:1_000_000
        in
        Alcotest.(check bool) "finished" false o.Sim.ran_out;
        match Sim.agreement o with
        | Ok v -> Alcotest.(check bool) "valid" true (Sim.valid ~inputs v)
        | Error vs ->
          Alcotest.failf "multivalued disagreement: %a" Fmt.(Dump.list Value.pp) vs
      done)
    [ 2, 2; 3, 3; 4, 4 ]

let test_multi_register_count () =
  Alcotest.(check int) "n + 2nb" (3 + (2 * 3 * 4))
    (Multivalued.make ~n:3 ~bits:4).Protocol.num_registers

let test_multi_model_checked_small () =
  (* bounded exhaustive check of n=2, bits=2 over all 16 input vectors *)
  let proto = Multivalued.make ~n:2 ~bits:2 in
  let inputs_list =
    List.concat_map (fun a -> List.map (fun b -> [| Value.int a; Value.int b |]) [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  let r =
    E.check_consensus proto ~inputs_list ~max_configs:8_000 ~max_depth:25
      ~solo_budget:300 ~check_solo:true
  in
  match r.E.verdict with
  | Ok () -> ()
  | Error v -> Alcotest.failf "multivalued violation: %a" E.pp_violation v

let suite =
  ( "kset-multivalued",
    [
      Alcotest.test_case "kset: group layout" `Quick test_group_layout;
      Alcotest.test_case "kset: arity checks" `Quick test_kset_arity_checks;
      Alcotest.test_case "kset: solo decides own input" `Quick test_kset_solo;
      Alcotest.test_case "kset: at most k values, all valid" `Quick test_kset_at_most_k_values;
      Alcotest.test_case "kset: intra-group agreement" `Quick test_kset_group_agreement;
      Alcotest.test_case "kset: model-checked (k=2, n=3)" `Slow test_kset_model_checked;
      Alcotest.test_case "kset: k=2 is not consensus" `Quick test_kset_is_not_consensus;
      Alcotest.test_case "kset: k=1 is consensus" `Quick test_kset_k1_is_consensus;
      Alcotest.test_case "multi: parameter validation" `Quick test_multi_rejects_bad_params;
      Alcotest.test_case "multi: solo decides own input" `Quick test_multi_solo;
      Alcotest.test_case "multi: random agreement+validity" `Quick test_multi_agreement_random;
      Alcotest.test_case "multi: register count" `Quick test_multi_register_count;
      Alcotest.test_case "multi: model-checked (n=2, bits=2)" `Slow test_multi_model_checked_small;
    ] )
