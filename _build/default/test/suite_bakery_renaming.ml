(* The bakery lock, splitter-grid renaming, and the weak shared coin. *)
open Ts_model
open Ts_mutex

let test_bakery_serial () =
  List.iter
    (fun n ->
      let order = Array.init n (fun i -> n - 1 - i) in
      let o = Arena.serial (Bakery.make ~n) ~order in
      Alcotest.(check (list int)) "order realized" (Array.to_list order) o.Arena.cs_order)
    [ 1; 2; 3; 6 ]

let test_bakery_contended () =
  List.iter
    (fun n ->
      let o = Arena.contended (Bakery.make ~n) in
      Alcotest.(check (list int)) "everyone enters once" (List.init n Fun.id)
        (List.sort compare o.Arena.cs_order))
    [ 2; 3; 4; 8 ]

let test_bakery_fifo_under_round_robin () =
  (* round-robin from a cold start: all processes clear the doorway in pid
     order (p0 first), so the bakery's FCFS property forces CS order
     0,1,...,n-1 *)
  let n = 5 in
  let o = Arena.contended (Bakery.make ~n) in
  Alcotest.(check (list int)) "FIFO order" (List.init n Fun.id) o.Arena.cs_order

let test_bakery_mutual_exclusion_random () =
  let n = 4 in
  for seed = 1 to 15 do
    let rng = Rng.create (seed * 7) in
    let s = Arena.session (Bakery.make ~n) in
    for p = 0 to n - 1 do
      Arena.start_proc s p
    done;
    let remaining = ref n in
    let guard = ref 500_000 in
    while !remaining > 0 && !guard > 0 do
      decr guard;
      let alive = List.filter (Arena.active s) (List.init n Fun.id) in
      match alive with
      | [] -> remaining := 0
      | _ ->
        let p = List.nth alive (Rng.int rng (List.length alive)) in
        (match Arena.step_proc s p with `Done -> decr remaining | `Continues -> ())
    done;
    Alcotest.(check int) "all passages complete" 0 !remaining
  done

let test_bakery_cost_quadratic () =
  let cost n = (Arena.serial (Bakery.make ~n) ~order:(Array.init n Fun.id)).Arena.cost in
  let ratio = float_of_int (cost 32) /. float_of_int (cost 8) in
  Alcotest.(check bool) "bakery ~ n^2" true (ratio > 10. && ratio < 24.);
  (* and it sits between the tree and Peterson at n = 32 *)
  let tree = (Arena.serial (Tournament.make ~n:32) ~order:(Array.init 32 Fun.id)).Arena.cost in
  Alcotest.(check bool) "above the arbitration tree" true (cost 32 > tree)

let test_bakery_covering () =
  let r = Covering_search.search (Bakery.make ~n:2) ~max_configs:150_000 in
  Alcotest.(check bool) "covers >= n registers" true (r.Covering_search.best_covered >= 2);
  Alcotest.(check bool) "no exclusion violation" false r.Covering_search.exclusion_violated

(* --- renaming --- *)
open Ts_objects
open Ts_leader

let run_renaming ~n ~seed =
  let rng = Rng.create seed in
  let s = Runner.create (Renaming.make ~n) in
  for p = 0 to n - 1 do
    Runner.invoke s p Renaming.Rename
  done;
  let names = Array.make n None in
  let pending = ref (List.init n Fun.id) in
  while !pending <> [] do
    let p = List.nth !pending (Rng.int rng (List.length !pending)) in
    match Runner.step s p with
    | `Returned v ->
      names.(p) <- Some (Value.to_int v);
      pending := List.filter (fun q -> q <> p) !pending
    | `Continues -> ()
  done;
  Array.to_list names |> List.map Option.get

let test_renaming_solo_gets_zero () =
  let s = Runner.create (Renaming.make ~n:5) in
  let v, _ = Runner.op s 3 Renaming.Rename in
  Alcotest.(check int) "solo stops at the corner" 0 (Value.to_int v)

let test_renaming_unique_names () =
  List.iter
    (fun n ->
      for seed = 1 to 30 do
        let names = run_renaming ~n ~seed in
        Alcotest.(check int) "distinct names" n
          (List.length (List.sort_uniq compare names));
        List.iter
          (fun name ->
            Alcotest.(check bool) "name within n(n+1)/2" true
              (name >= 0 && name < Renaming.name_space n))
          names
      done)
    [ 1; 2; 3; 5; 7 ]

let test_renaming_name_space () =
  Alcotest.(check int) "n(n+1)/2" 15 (Renaming.name_space 5);
  Alcotest.(check int) "registers = 2 * names" 30 (Renaming.make ~n:5).Impl.num_registers;
  Alcotest.(check int) "corner name" 0 (Renaming.name_of ~row:0 ~diag:0);
  Alcotest.(check int) "diag 1 row 0" 1 (Renaming.name_of ~row:0 ~diag:1);
  Alcotest.(check int) "diag 1 row 1" 2 (Renaming.name_of ~row:1 ~diag:1)

(* --- shared coin --- *)

let toss_all ~n ~k ~seed =
  let rng = Rng.create seed in
  let s = Runner.create (Shared_coin.make ~n ~k) in
  for p = 0 to n - 1 do
    Runner.invoke s p (Shared_coin.Toss { seed = seed + (p * 101) })
  done;
  let outs = Array.make n None in
  let pending = ref (List.init n Fun.id) in
  let guard = ref 2_000_000 in
  while !pending <> [] && !guard > 0 do
    decr guard;
    let p = List.nth !pending (Rng.int rng (List.length !pending)) in
    match Runner.step s p with
    | `Returned v ->
      outs.(p) <- Some (Value.to_bool v);
      pending := List.filter (fun q -> q <> p) !pending
    | `Continues -> ()
  done;
  Alcotest.(check bool) "all tosses returned" true (!pending = []);
  Array.to_list outs |> List.map Option.get

let test_coin_terminates_and_agreement_is_common () =
  let n = 3 in
  let agreed = ref 0 in
  let trials = 30 in
  for seed = 1 to trials do
    let outs = toss_all ~n ~k:3 ~seed:(seed * 997) in
    if List.length (List.sort_uniq compare outs) = 1 then incr agreed
  done;
  (* a weak shared coin must produce unanimous outcomes with constant
     probability; with threshold 3n the empirical rate is high *)
  Alcotest.(check bool)
    (Printf.sprintf "unanimous in %d/%d trials" !agreed trials)
    true
    (!agreed * 2 > trials)

let test_coin_solo_deterministic () =
  let run () =
    let s = Runner.create (Shared_coin.make ~n:2 ~k:1) in
    fst (Runner.op s 0 (Shared_coin.Toss { seed = 12345 }))
  in
  Alcotest.(check bool) "same seed, same outcome" true (Value.equal (run ()) (run ()))

let test_coin_rejects_bad_k () =
  Alcotest.check_raises "k=0" (Invalid_argument "Shared_coin.make: k >= 1") (fun () ->
      ignore (Shared_coin.make ~n:2 ~k:0))

let suite =
  ( "bakery-renaming-coin",
    [
      Alcotest.test_case "bakery: serial orders" `Quick test_bakery_serial;
      Alcotest.test_case "bakery: contended" `Quick test_bakery_contended;
      Alcotest.test_case "bakery: FIFO under round robin" `Quick test_bakery_fifo_under_round_robin;
      Alcotest.test_case "bakery: random schedules safe" `Slow test_bakery_mutual_exclusion_random;
      Alcotest.test_case "bakery: quadratic cost" `Quick test_bakery_cost_quadratic;
      Alcotest.test_case "bakery: covering configurations" `Slow test_bakery_covering;
      Alcotest.test_case "renaming: solo gets 0" `Quick test_renaming_solo_gets_zero;
      Alcotest.test_case "renaming: unique names in range" `Quick test_renaming_unique_names;
      Alcotest.test_case "renaming: name space arithmetic" `Quick test_renaming_name_space;
      Alcotest.test_case "coin: termination + common agreement" `Quick
        test_coin_terminates_and_agreement_is_common;
      Alcotest.test_case "coin: solo determinism" `Quick test_coin_solo_deterministic;
      Alcotest.test_case "coin: parameter check" `Quick test_coin_rejects_bad_k;
    ] )
