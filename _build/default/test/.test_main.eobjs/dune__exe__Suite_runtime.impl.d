test/suite_runtime.ml: Alcotest Atomic_run Format Racing String Ts_protocols Ts_runtime
