test/suite_model.ml: Action Alcotest Array Config Execution Fmt Fun List Option Protocol Pset QCheck QCheck_alcotest Rng Sim Ts_model Ts_protocols Value
