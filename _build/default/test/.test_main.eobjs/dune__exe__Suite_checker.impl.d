test/suite_checker.ml: Alcotest Array Broken Explore Format List Racing String Ts_checker Ts_model Ts_protocols Value
