test/suite_objects.ml: Alcotest Counter Fun Hashtbl Impl Linearize List Maxreg Option Rng Runner Snapshot Ts_model Ts_objects Value
