test/suite_extras.ml: Alcotest Array Diagram List Printf Pset Racing Sim String Ts_core Ts_model Ts_mutex Ts_protocols Value
