test/suite_swap.ml: Action Alcotest Config Execution List Protocol Pset Swap_consensus Ts_checker Ts_core Ts_model Ts_protocols Ts_runtime Value
