test/suite_linearize.ml: Alcotest Counter History Linearize List Snapshot Ts_model Ts_objects Value
