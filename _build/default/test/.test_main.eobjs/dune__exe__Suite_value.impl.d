test/suite_value.ml: Alcotest Gen List QCheck QCheck_alcotest Ts_model Value
