test/suite_bakery_renaming.ml: Alcotest Arena Array Bakery Covering_search Fun Impl List Option Printf Renaming Rng Runner Shared_coin Tournament Ts_leader Ts_model Ts_mutex Ts_objects Value
