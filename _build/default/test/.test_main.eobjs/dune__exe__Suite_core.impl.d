test/suite_core.ml: Action Alcotest Array Bounds Config Covering Execution Format Lemmas List Option Protocol Pset Racing String Theorem Ts_core Ts_model Ts_protocols Valency Value
