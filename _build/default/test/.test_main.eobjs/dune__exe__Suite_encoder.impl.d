test/suite_encoder.ml: Alcotest Algorithm Arena Array Bits Codec Gen List Peterson Printf QCheck QCheck_alcotest Rng Tas_lock Tournament Ts_core Ts_encoder Ts_model Ts_mutex
