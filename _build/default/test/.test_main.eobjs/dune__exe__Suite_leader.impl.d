test/suite_leader.ml: Alcotest Array Election Fun Impl List Option Printf Rng Runner Splitter Ts_leader Ts_model Ts_objects Value
