test/suite_mutex.ml: Alcotest Algorithm Arena Array Fun List Peterson Printf Rng Tas_lock Tournament Ts_model Ts_mutex
