test/suite_kset_multi.ml: Alcotest Array Config Dump Fmt Kset List Multivalued Printf Protocol Rng Sim Ts_checker Ts_model Ts_protocols Value
