test/suite_protocols.ml: Action Alcotest Array Broken Config Dump Execution Fmt List Printf Protocol Racing Rng Sim Ts_checker Ts_model Ts_protocols Value
