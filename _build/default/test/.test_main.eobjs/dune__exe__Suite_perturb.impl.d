test/suite_perturb.ml: Adversary Alcotest Format List String Ts_model Ts_objects Ts_perturb
