test/suite_pset.ml: Alcotest Gen List Pset QCheck QCheck_alcotest Ts_model
