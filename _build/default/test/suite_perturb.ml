(* The Jayanti–Tan–Toueg covering adversary. *)
open Ts_perturb

let check_report name r =
  let n = r.Adversary.n in
  Alcotest.(check int) (name ^ ": covering processes") (n - 1) (List.length r.Adversary.cover);
  Alcotest.(check int) (name ^ ": distinct covered registers = n-1") (n - 1)
    r.Adversary.distinct_covered;
  Alcotest.(check int) (name ^ ": jtt bound") (n - 1) r.Adversary.jtt_bound;
  Alcotest.(check bool) (name ^ ": probe accesses >= n-1") true
    (r.Adversary.probe_accesses >= n - 1);
  Alcotest.(check bool) (name ^ ": probe steps >= n-1") true (r.Adversary.probe_steps >= n - 1);
  Alcotest.(check bool) (name ^ ": truncated perturbation hidden") true
    r.Adversary.hidden_invisible;
  Alcotest.(check bool) (name ^ ": completed perturbation visible") true
    r.Adversary.completed_visible

let test_counter () =
  List.iter (fun n -> check_report "counter" (Adversary.run_counter ~n)) [ 2; 3; 4; 8; 12 ]

let test_maxreg () =
  List.iter (fun n -> check_report "maxreg" (Adversary.run_maxreg ~n)) [ 2; 3; 4; 8 ]

let test_snapshot () =
  List.iter (fun n -> check_report "snapshot" (Adversary.run_snapshot ~n)) [ 2; 3; 4; 8 ]

let test_generic_run_equals_specialized () =
  let r1 = Adversary.run (Ts_objects.Counter.make ~n:4) ~perturb:Ts_objects.Counter.Inc
      ~probe:Ts_objects.Counter.Read_count in
  let r2 = Adversary.run_counter ~n:4 in
  Alcotest.(check int) "same covering size" r2.Adversary.distinct_covered r1.Adversary.distinct_covered;
  Alcotest.(check bool) "hidden in generic run too" true r1.Adversary.hidden_invisible

let test_counter_probe_value_counts_block_writes () =
  (* after the block write of the n-1 covering incs, the probe reads n-1 *)
  let r = Adversary.run_counter ~n:5 in
  Alcotest.(check string) "base probe counts the n-2 block-written incs" "3"
    (Ts_model.Value.to_string r.Adversary.base_probe)

let test_small_n_rejected () =
  Alcotest.check_raises "n=1" (Invalid_argument "Adversary.run: need n >= 2") (fun () ->
      ignore (Adversary.run_counter ~n:1))

let test_report_pp () =
  let r = Adversary.run_counter ~n:3 in
  let s = Format.asprintf "%a" Adversary.pp_report r in
  Alcotest.(check bool) "report prints" true (String.length s > 40)

let suite =
  ( "perturb",
    [
      Alcotest.test_case "counter covering & hiding" `Quick test_counter;
      Alcotest.test_case "maxreg covering & hiding" `Quick test_maxreg;
      Alcotest.test_case "snapshot covering & hiding" `Quick test_snapshot;
      Alcotest.test_case "generic run equals specialized" `Quick test_generic_run_equals_specialized;
      Alcotest.test_case "probe counts block-written ops" `Quick test_counter_probe_value_counts_block_writes;
      Alcotest.test_case "n=1 rejected" `Quick test_small_n_rejected;
      Alcotest.test_case "report pretty-prints" `Quick test_report_pp;
    ] )
