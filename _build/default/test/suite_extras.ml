(* Diagram rendering, valency-graph export, BL93 covering search. *)
open Ts_model
open Ts_protocols

let run_alternating n budget =
  let proto = Racing.make ~n in
  let inputs = Array.init n (fun p -> Value.int (p mod 2)) in
  Sim.run proto ~inputs ~policy:(Sim.Alternating (0, 1)) ~flips:(fun () -> false) ~budget

let test_diagram_lanes () =
  let o = run_alternating 2 10 in
  let s = Diagram.render ~n:2 o.Sim.trace in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "two lanes in one band" 2 (List.length lines);
  Alcotest.(check bool) "p0 lane present" true
    (List.exists (fun l -> String.length l > 3 && String.sub l 0 3 = "p0 ") lines)

let test_diagram_wrapping () =
  let o = run_alternating 2 100 in
  let s = Diagram.render ~width:10 ~n:2 o.Sim.trace in
  let bands =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 2 && String.sub l 0 1 = "p")
  in
  (* 100 steps at width 10 = 10 bands of 2 lanes *)
  Alcotest.(check int) "bands wrap" 20 (List.length bands)

let test_diagram_empty () =
  Alcotest.(check string) "empty trace" "(empty execution)\n" (Diagram.render ~n:2 [])

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_diagram_cells () =
  let o = run_alternating 2 9 in
  let s = Diagram.render ~n:2 o.Sim.trace in
  Alcotest.(check bool) "read cells appear" true (contains ~needle:"r0" s);
  Alcotest.(check bool) "idle cells appear" true (contains ~needle:"." s)

let test_valgraph_structure () =
  let proto = Racing.make ~n:2 in
  let t = Ts_core.Valency.create proto ~horizon:40 in
  let dot, stats =
    Ts_core.Valgraph.dot t ~inputs:[| Value.int 0; Value.int 1 |] ~pset:(Pset.all 2)
      ~depth:4 ~max_nodes:500
  in
  Alcotest.(check bool) "dot header" true (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "nodes counted" true (stats.Ts_core.Valgraph.nodes > 5);
  Alcotest.(check bool) "edges at least nodes-1" true
    (stats.Ts_core.Valgraph.edges >= stats.Ts_core.Valgraph.nodes - 1);
  (* the initial region of racing-2 with mixed inputs is all bivalent *)
  Alcotest.(check int) "no univalent node this early" 0
    (stats.Ts_core.Valgraph.univalent0 + stats.Ts_core.Valgraph.univalent1);
  Alcotest.(check int) "nothing blocked" 0 stats.Ts_core.Valgraph.blocked

let test_valgraph_univalent_regions_appear () =
  (* deep enough, 0- and 1-univalent configurations both appear *)
  let proto = Racing.make ~n:2 in
  let t = Ts_core.Valency.create proto ~horizon:40 in
  let _, stats =
    Ts_core.Valgraph.dot t ~inputs:[| Value.int 0; Value.int 1 |] ~pset:(Pset.all 2)
      ~depth:12 ~max_nodes:4_000
  in
  Alcotest.(check bool) "0-univalent region" true (stats.Ts_core.Valgraph.univalent0 > 0);
  Alcotest.(check bool) "1-univalent region" true (stats.Ts_core.Valgraph.univalent1 > 0);
  Alcotest.(check bool) "bivalent region" true (stats.Ts_core.Valgraph.bivalent > 0)

let test_valgraph_node_cap () =
  let proto = Racing.make ~n:2 in
  let t = Ts_core.Valency.create proto ~horizon:30 in
  let _, stats =
    Ts_core.Valgraph.dot t ~inputs:[| Value.int 0; Value.int 1 |] ~pset:(Pset.all 2)
      ~depth:30 ~max_nodes:50
  in
  Alcotest.(check bool) "cap respected" true (stats.Ts_core.Valgraph.nodes <= 50)

let test_covering_search_register_locks_cover_n () =
  (* BL93 measured: the register-only locks admit configurations covering
     n distinct registers *)
  List.iter
    (fun (Ts_mutex.Algorithm.Packed alg, expect_at_least) ->
      let r = Ts_mutex.Covering_search.search alg ~max_configs:60_000 in
      Alcotest.(check bool)
        (Printf.sprintf "%s covers >= %d" r.Ts_mutex.Covering_search.algorithm expect_at_least)
        true
        (r.Ts_mutex.Covering_search.best_covered >= expect_at_least);
      Alcotest.(check bool) "exclusion holds" false
        r.Ts_mutex.Covering_search.exclusion_violated)
    [
      Ts_mutex.Algorithm.Packed (Ts_mutex.Peterson.make ~n:2), 2;
      Ts_mutex.Algorithm.Packed (Ts_mutex.Peterson.make ~n:3), 3;
      Ts_mutex.Algorithm.Packed (Ts_mutex.Tournament.make ~n:2), 2;
      Ts_mutex.Algorithm.Packed (Ts_mutex.Tournament.make ~n:3), 3;
    ]

let test_covering_search_swap_covers_one () =
  (* the swap-based lock concentrates everything on one register: the
     covering technique (and hence BL93) has nothing to grab *)
  let r =
    Ts_mutex.Covering_search.search (Ts_mutex.Tas_lock.make ~n:4) ~max_configs:60_000
  in
  Alcotest.(check int) "tas covers exactly 1" 1 r.Ts_mutex.Covering_search.best_covered;
  Alcotest.(check bool) "exhaustive" false r.Ts_mutex.Covering_search.truncated

let test_covering_search_exhaustive_small () =
  let r = Ts_mutex.Covering_search.search (Ts_mutex.Peterson.make ~n:2) ~max_configs:10_000 in
  Alcotest.(check bool) "peterson-2 graph is finite" false r.Ts_mutex.Covering_search.truncated;
  Alcotest.(check bool) "explored something" true (r.Ts_mutex.Covering_search.configs_explored > 20)

let suite =
  ( "extras",
    [
      Alcotest.test_case "diagram: lanes" `Quick test_diagram_lanes;
      Alcotest.test_case "diagram: wrapping" `Quick test_diagram_wrapping;
      Alcotest.test_case "diagram: empty trace" `Quick test_diagram_empty;
      Alcotest.test_case "diagram: cell content" `Quick test_diagram_cells;
      Alcotest.test_case "valgraph: dot structure" `Quick test_valgraph_structure;
      Alcotest.test_case "valgraph: univalent regions" `Slow test_valgraph_univalent_regions_appear;
      Alcotest.test_case "valgraph: node cap" `Quick test_valgraph_node_cap;
      Alcotest.test_case "covering search: register locks cover n" `Slow
        test_covering_search_register_locks_cover_n;
      Alcotest.test_case "covering search: swap lock covers 1" `Quick
        test_covering_search_swap_covers_one;
      Alcotest.test_case "covering search: exhaustive small" `Quick
        test_covering_search_exhaustive_small;
    ] )
