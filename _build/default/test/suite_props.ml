(* Cross-cutting qcheck properties tying the subsystems together. *)
open Ts_model
open Ts_protocols

(* Run a racing instance under a seeded random schedule and return the
   per-step register states of the counter slots. *)
let racing_slot_histories ~n ~seed ~steps =
  let proto = Racing.make ~n in
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.int (Rng.int rng 2)) in
  let cfg = ref (Config.initial proto ~inputs) in
  let hist = ref [] in
  (try
     for _ = 1 to steps do
       let alive =
         List.filter (fun p -> Config.has_decided !cfg p = None) (List.init n Fun.id)
       in
       if alive = [] then raise Exit;
       let p = List.nth alive (Rng.int rng (List.length alive)) in
       let coin =
         match Config.poised proto !cfg p with
         | Some Action.Flip -> Some (Rng.bool rng)
         | _ -> None
       in
       let cfg', _ = Config.step proto !cfg p ~coin in
       cfg := cfg';
       hist :=
         Array.init (2 * n) (fun r ->
             match Config.register !cfg r with Value.Bot -> 0 | v -> Value.to_int v)
         :: !hist
     done
   with Exit -> ());
  List.rev !hist

let prop_racing_slots_monotone =
  QCheck.Test.make ~name:"racing: counter slots are monotone" ~count:40
    QCheck.(pair (int_range 2 4) small_int)
    (fun (n, seed) ->
      let hist = racing_slot_histories ~n ~seed ~steps:300 in
      let rec ok = function
        | a :: (b :: _ as rest) ->
          Array.for_all2 (fun x y -> x <= y) a b && ok rest
        | _ -> true
      in
      ok hist)

let prop_agreement_validity_random_runs =
  QCheck.Test.make ~name:"racing: agreement+validity under random schedules" ~count:40
    QCheck.(pair (int_range 2 5) small_int)
    (fun (n, seed) ->
      let proto = Racing.make ~n in
      let rng = Rng.create (seed + 1) in
      let inputs = Array.init n (fun _ -> Value.int (Rng.int rng 2)) in
      let o =
        Sim.run proto ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> Rng.bool rng)
          ~budget:500_000
      in
      (not o.Sim.ran_out)
      &&
      match Sim.agreement o with
      | Ok v -> Sim.valid ~inputs v
      | Error _ -> false)

let prop_kset_bound =
  QCheck.Test.make ~name:"kset: at most k distinct decisions" ~count:40
    QCheck.(triple (int_range 2 6) (int_range 1 6) small_int)
    (fun (n, k, seed) ->
      QCheck.assume (k <= n);
      let proto = Kset.make ~n ~k in
      let rng = Rng.create (seed + 3) in
      let inputs = Array.init n (fun _ -> Value.int (Rng.int rng 2)) in
      let o =
        Sim.run proto ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> true)
          ~budget:500_000
      in
      let decided = List.sort_uniq Value.compare (List.map snd o.Sim.decisions) in
      List.length decided <= k && List.for_all (Sim.valid ~inputs) decided)

let prop_multivalued_agreement =
  QCheck.Test.make ~name:"multivalued: random runs agree on an input" ~count:25
    QCheck.(triple (int_range 2 4) (int_range 1 4) small_int)
    (fun (n, bits, seed) ->
      let proto = Multivalued.make ~n ~bits in
      let rng = Rng.create (seed + 7) in
      let inputs = Array.init n (fun _ -> Value.int (Rng.int rng (1 lsl bits))) in
      let o =
        Sim.run proto ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> true)
          ~budget:1_000_000
      in
      match Sim.agreement o with
      | Ok v -> Sim.valid ~inputs v
      | Error _ -> false)

let prop_codec_roundtrip_random_orders =
  QCheck.Test.make ~name:"codec: round trip over random serial orders" ~count:30
    QCheck.(pair (int_range 2 10) small_int)
    (fun (n, seed) ->
      let alg = Ts_mutex.Tournament.make ~n in
      let order = Rng.permutation (Rng.create (seed + 11)) n in
      let o = Ts_mutex.Arena.serial alg ~order in
      match Ts_encoder.Codec.round_trip alg o with Ok _ -> true | Error _ -> false)

let prop_mutex_cost_decomposition =
  QCheck.Test.make ~name:"mutex: total cost = sum of per-process costs <= accesses" ~count:30
    QCheck.(pair (int_range 1 12) small_int)
    (fun (n, seed) ->
      let order = Rng.permutation (Rng.create (seed + 13)) n in
      let o = Ts_mutex.Arena.serial (Ts_mutex.Peterson.make ~n) ~order in
      Array.fold_left ( + ) 0 o.Ts_mutex.Arena.per_process_cost = o.Ts_mutex.Arena.cost
      && o.Ts_mutex.Arena.cost <= o.Ts_mutex.Arena.accesses)

let prop_valency_superset_monotone =
  QCheck.Test.make ~name:"valency: can_decide is monotone in P" ~count:20
    QCheck.(pair small_int (int_range 0 8))
    (fun (seed, prefix_len) ->
      let proto = Racing.make ~n:2 in
      let t = Ts_core.Valency.create proto ~horizon:30 in
      let rng = Rng.create (seed + 17) in
      let inputs = [| Value.int 0; Value.int 1 |] in
      let cfg = ref (Config.initial proto ~inputs) in
      (* walk a random prefix *)
      (try
         for _ = 1 to prefix_len do
           let alive =
             List.filter (fun p -> Config.has_decided !cfg p = None) [ 0; 1 ]
           in
           if alive = [] then raise Exit;
           let p = List.nth alive (Rng.int rng (List.length alive)) in
           cfg := fst (Config.step proto !cfg p ~coin:None)
         done
       with Exit -> ());
      List.for_all
        (fun v ->
          List.for_all
            (fun p ->
              match Ts_core.Valency.can_decide t !cfg (Pset.singleton p) v with
              | Some _ -> Ts_core.Valency.can_decide t !cfg (Pset.all 2) v <> None
              | None -> true)
            [ 0; 1 ])
        [ Ts_core.Valency.zero; Ts_core.Valency.one ])

let prop_theorem_writes_subset_accessed =
  QCheck.Test.make ~name:"theorem: written registers are accessed registers" ~count:5
    QCheck.unit
    (fun () ->
      let t = Ts_core.Valency.create (Racing.make ~n:2) ~horizon:40 in
      let cert = Ts_core.Theorem.theorem1 t in
      let accessed = Execution.accessed_registers cert.Ts_core.Theorem.trace in
      List.for_all (fun r -> List.mem r accessed) cert.Ts_core.Theorem.registers_written)

let prop_diagram_cell_conservation =
  QCheck.Test.make ~name:"diagram: one non-idle cell per step" ~count:30
    QCheck.(pair (int_range 2 4) (int_range 1 60))
    (fun (n, steps) ->
      let proto = Racing.make ~n in
      let inputs = Array.init n (fun p -> Value.int (p mod 2)) in
      let o =
        Sim.run proto ~inputs ~policy:Sim.Round_robin ~flips:(fun () -> true)
          ~budget:steps
      in
      let rendered = Diagram.render ~n o.Sim.trace in
      (* count cells that denote actions: r, w, x, f, D starts *)
      let actions = ref 0 in
      String.iteri
        (fun i c ->
          if (c = 'r' || c = 'w' || c = 'x' || c = 'f' || c = 'D')
             && (i = 0 || rendered.[i - 1] = ' ')
          then incr actions)
        rendered;
      !actions = List.length o.Sim.trace)

let prop_snapshot_random_linearizable =
  QCheck.Test.make ~name:"snapshot: random mixed histories linearizable" ~count:15
    QCheck.(pair (int_range 2 3) small_int)
    (fun (n, seed) ->
      let open Ts_objects in
      let impl = Snapshot.make ~n in
      let rng = Rng.create (seed + 23) in
      let s = Runner.create impl in
      let remaining = Array.make n 2 in
      let total () = Array.fold_left ( + ) 0 remaining in
      while total () > 0 || Array.exists Fun.id (Array.init n (Runner.busy s)) do
        let p = Rng.int rng n in
        if Runner.busy s p then ignore (Runner.step s p)
        else if remaining.(p) > 0 then begin
          remaining.(p) <- remaining.(p) - 1;
          let op =
            if Rng.bool rng then Snapshot.Update (Value.int (Rng.int rng 100))
            else Snapshot.Scan
          in
          Runner.invoke s p op
        end
      done;
      Linearize.check (Linearize.snapshot_spec ~n) (Runner.history s) <> None)

let suite =
  ( "properties",
    [
      QCheck_alcotest.to_alcotest prop_racing_slots_monotone;
      QCheck_alcotest.to_alcotest prop_agreement_validity_random_runs;
      QCheck_alcotest.to_alcotest prop_kset_bound;
      QCheck_alcotest.to_alcotest prop_multivalued_agreement;
      QCheck_alcotest.to_alcotest prop_codec_roundtrip_random_orders;
      QCheck_alcotest.to_alcotest prop_mutex_cost_decomposition;
      QCheck_alcotest.to_alcotest prop_valency_superset_monotone;
      QCheck_alcotest.to_alcotest prop_theorem_writes_subset_accessed;
      QCheck_alcotest.to_alcotest prop_diagram_cell_conservation;
      QCheck_alcotest.to_alcotest prop_snapshot_random_linearizable;
    ] )
