(* The bounded model checker. *)
open Ts_model
open Ts_checker
open Ts_protocols

let test_binary_inputs () =
  Alcotest.(check int) "2^3 vectors" 8 (List.length (Explore.binary_inputs 3));
  let all = Explore.binary_inputs 2 in
  Alcotest.(check bool) "vectors distinct" true
    (List.length (List.sort_uniq compare (List.map Array.to_list all)) = 4);
  List.iter
    (fun v -> Array.iter (fun x -> Alcotest.(check bool) "binary" true (Value.to_int x < 2)) v)
    all

let test_stats_reported () =
  let r =
    Explore.check_consensus (Racing.make ~n:2)
      ~inputs_list:[ [| Value.int 0; Value.int 1 |] ]
      ~max_configs:2_000 ~max_depth:25 ~solo_budget:100 ~check_solo:false
  in
  Alcotest.(check bool) "explored some" true (r.Explore.stats.Explore.configs_explored > 100);
  Alcotest.(check bool) "truncated (racing is infinite-state)" true r.Explore.stats.Explore.truncated;
  Alcotest.(check bool) "depth recorded" true (r.Explore.stats.Explore.deepest > 5)

let test_tiny_exhaustive_not_truncated () =
  (* the constant protocol has a tiny graph: exploration completes *)
  let r =
    Explore.check_consensus (Broken.oblivious_seven ~n:2)
      ~inputs_list:[ [| Value.int 7; Value.int 7 |] ]
      ~max_configs:1_000 ~max_depth:20 ~solo_budget:10 ~check_solo:true
  in
  (* inputs are 7 so deciding 7 is valid here; graph is finite *)
  Alcotest.(check bool) "verdict ok" true (r.Explore.verdict = Ok ());
  Alcotest.(check bool) "not truncated" false r.Explore.stats.Explore.truncated

let test_first_violation_stops_search () =
  let r =
    Explore.check_consensus (Broken.last_write_wins ~n:2)
      ~inputs_list:(Explore.binary_inputs 2) ~max_configs:100_000 ~max_depth:30
      ~solo_budget:50 ~check_solo:false
  in
  match r.Explore.verdict with
  | Error (Explore.Agreement_violation { values; _ }) ->
    Alcotest.(check int) "two values decided" 2 (List.length values)
  | _ -> Alcotest.fail "expected agreement violation"

let test_solo_check_flag () =
  (* with check_solo:false the insomniac passes; with true it is caught *)
  let run check_solo =
    (Explore.check_consensus (Broken.insomniac ~n:2)
       ~inputs_list:[ [| Value.int 0; Value.int 0 |] ]
       ~max_configs:100 ~max_depth:10 ~solo_budget:50 ~check_solo)
      .Explore.verdict
  in
  Alcotest.(check bool) "lenient without solo check" true (run false = Ok ());
  Alcotest.(check bool) "caught with solo check" true (run true <> Ok ())

let test_violation_pp () =
  let r =
    Explore.check_consensus (Broken.oblivious_seven ~n:2)
      ~inputs_list:[ [| Value.int 0; Value.int 0 |] ]
      ~max_configs:100 ~max_depth:10 ~solo_budget:10 ~check_solo:false
  in
  match r.Explore.verdict with
  | Error v ->
    let s = Format.asprintf "%a" Explore.pp_violation v in
    Alcotest.(check bool) "violation prints" true (String.length s > 10)
  | Ok () -> Alcotest.fail "expected validity violation"

let suite =
  ( "checker",
    [
      Alcotest.test_case "binary input vectors" `Quick test_binary_inputs;
      Alcotest.test_case "stats reported" `Quick test_stats_reported;
      Alcotest.test_case "finite graphs fully explored" `Quick test_tiny_exhaustive_not_truncated;
      Alcotest.test_case "first violation stops search" `Quick test_first_violation_stops_search;
      Alcotest.test_case "solo check flag" `Quick test_solo_check_flag;
      Alcotest.test_case "violation pretty-printing" `Quick test_violation_pp;
    ] )
