(* Swap in the consensus model — the §4 discussion, executable. *)
open Ts_model
open Ts_protocols
module E = Ts_checker.Explore

let test_two_process_correct () =
  (* full exhaustive check: the graph is tiny and finite *)
  let r =
    E.check_consensus (Swap_consensus.two_process ()) ~inputs_list:(E.binary_inputs 2)
      ~max_configs:1_000 ~max_depth:10 ~solo_budget:10 ~check_solo:true
  in
  (match r.E.verdict with
   | Ok () -> ()
   | Error v -> Alcotest.failf "swap consensus violated: %a" E.pp_violation v);
  Alcotest.(check bool) "exhaustive, not truncated" false r.E.stats.E.truncated

let test_two_process_first_swapper_wins () =
  let proto = Swap_consensus.two_process () in
  let cfg = Config.initial proto ~inputs:[| Value.int 0; Value.int 1 |] in
  let cfg, _ = Config.step proto cfg 1 ~coin:None in
  (* p1 swapped first: both decide 1 *)
  let cfg, _ = Config.step proto cfg 1 ~coin:None in
  let cfg, _ = Config.step proto cfg 0 ~coin:None in
  let cfg, _ = Config.step proto cfg 0 ~coin:None in
  Alcotest.(check (list string)) "both decide 1" [ "1" ]
    (List.map Value.to_string (Config.decided_values cfg))

let test_two_process_one_register () =
  Alcotest.(check int) "one register" 1
    (Swap_consensus.two_process ()).Protocol.num_registers

let test_naive_chain_caught () =
  let r =
    E.check_consensus (Swap_consensus.naive_chain ~n:3) ~inputs_list:(E.binary_inputs 3)
      ~max_configs:5_000 ~max_depth:12 ~solo_budget:10 ~check_solo:false
  in
  match r.E.verdict with
  | Error (E.Agreement_violation _) -> ()
  | _ -> Alcotest.fail "swap has consensus number 2: the chain must break at n=3"

let test_theorem1_on_swap_consensus () =
  (* the n-1 bound holds trivially at n = 2 and the engine verifies it on
     the swap protocol too: the solo deciding execution "writes" (swaps)
     one register *)
  let t = Ts_core.Valency.create (Swap_consensus.two_process ()) ~horizon:10 in
  let cert = Ts_core.Theorem.theorem1 t in
  Alcotest.(check int) "one register written" 1
    (List.length cert.Ts_core.Theorem.registers_written);
  match Ts_core.Theorem.verify cert (Swap_consensus.two_process ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "replay failed: %s" e

let test_swap_counts_as_covering () =
  let proto = Swap_consensus.two_process () in
  let cfg = Config.initial proto ~inputs:[| Value.int 0; Value.int 1 |] in
  Alcotest.(check (option int)) "poised swap covers R0" (Some 0) (Config.covers proto cfg 0);
  Alcotest.(check bool) "but both cover the SAME register" false
    (Config.covering_is_distinct proto cfg (Pset.all 2))

let test_swap_on_domains () =
  let s =
    Ts_runtime.Atomic_run.run (Swap_consensus.two_process ()) ~trials:50 ~seed:8
      ~step_budget:1_000 ~mixed_inputs:true
  in
  Alcotest.(check int) "agreement on atomics" 0 s.Ts_runtime.Atomic_run.agreement_failures;
  Alcotest.(check int) "validity on atomics" 0 s.Ts_runtime.Atomic_run.validity_failures;
  Alcotest.(check int) "wait-free: no timeouts" 0 s.Ts_runtime.Atomic_run.timeouts

let test_swap_trace_accounting () =
  let proto = Swap_consensus.two_process () in
  let cfg = Config.initial proto ~inputs:[| Value.int 0; Value.int 1 |] in
  let _, trace = Execution.apply proto cfg [ Execution.ev 0; Execution.ev 1 ] in
  Alcotest.(check (list int)) "swap counts as write" [ 0 ] (Execution.written_registers trace);
  Alcotest.(check bool) "swap action printed" true
    (List.exists (fun s -> Action.is_swap s.Execution.action) trace)

let suite =
  ( "swap",
    [
      Alcotest.test_case "2-process swap consensus is correct" `Quick test_two_process_correct;
      Alcotest.test_case "first swapper wins" `Quick test_two_process_first_swapper_wins;
      Alcotest.test_case "one register suffices" `Quick test_two_process_one_register;
      Alcotest.test_case "naive chain at n=3 caught" `Quick test_naive_chain_caught;
      Alcotest.test_case "Theorem 1 engine handles swap" `Quick test_theorem1_on_swap_consensus;
      Alcotest.test_case "swap covers its register" `Quick test_swap_counts_as_covering;
      Alcotest.test_case "swap consensus on domains" `Quick test_swap_on_domains;
      Alcotest.test_case "swap trace accounting" `Quick test_swap_trace_accounting;
    ] )
