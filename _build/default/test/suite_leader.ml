(* Splitter and tournament leader election. *)
open Ts_model
open Ts_objects
open Ts_leader

let run_splitter_interleaving ~n ~seed =
  let rng = Rng.create seed in
  let s = Runner.create (Splitter.make ~n) in
  for p = 0 to n - 1 do
    Runner.invoke s p Splitter.Split
  done;
  let results = Array.make n None in
  let pending = ref (List.init n Fun.id) in
  while !pending <> [] do
    let p = List.nth !pending (Rng.int rng (List.length !pending)) in
    match Runner.step s p with
    | `Returned v ->
      results.(p) <- Some (Splitter.outcome_of_value v);
      pending := List.filter (fun q -> q <> p) !pending
    | `Continues -> ()
  done;
  Array.to_list results |> List.map Option.get

let test_splitter_solo_stops () =
  let s = Runner.create (Splitter.make ~n:3) in
  let v, _ = Runner.op s 1 Splitter.Split in
  Alcotest.(check bool) "solo split stops" true (Splitter.outcome_of_value v = Splitter.Stop)

let test_splitter_uses_two_registers () =
  Alcotest.(check int) "two registers" 2 (Splitter.make ~n:16).Impl.num_registers

let test_splitter_properties_random () =
  List.iter
    (fun n ->
      for seed = 1 to 60 do
        let rs = run_splitter_interleaving ~n ~seed in
        let count o = List.length (List.filter (fun x -> x = o) rs) in
        Alcotest.(check bool) "at most one stop" true (count Splitter.Stop <= 1);
        Alcotest.(check bool) "not everyone right" true (count Splitter.Right <= n - 1);
        Alcotest.(check bool) "not everyone down" true (count Splitter.Down <= n - 1)
      done)
    [ 2; 3; 5 ]

let test_splitter_sequential_two () =
  (* second process to run alone after a Stop must not Stop *)
  let s = Runner.create (Splitter.make ~n:2) in
  let v0, _ = Runner.op s 0 Splitter.Split in
  let v1, _ = Runner.op s 1 Splitter.Split in
  Alcotest.(check bool) "first stops" true (Splitter.outcome_of_value v0 = Splitter.Stop);
  Alcotest.(check bool) "second does not stop" true
    (Splitter.outcome_of_value v1 <> Splitter.Stop)

let elect_all ~n ~seed =
  let rng = Rng.create seed in
  let s = Runner.create (Election.make ~n) in
  for p = 0 to n - 1 do
    Runner.invoke s p Election.Elect
  done;
  let results = Array.make n None in
  let pending = ref (List.init n Fun.id) in
  while !pending <> [] do
    let p = List.nth !pending (Rng.int rng (List.length !pending)) in
    match Runner.step s p with
    | `Returned v ->
      results.(p) <- Some (Value.to_bool v);
      pending := List.filter (fun q -> q <> p) !pending
    | `Continues -> ()
  done;
  Array.map Option.get results

let test_election_exactly_one_leader () =
  List.iter
    (fun n ->
      for seed = 1 to 40 do
        let rs = elect_all ~n ~seed in
        let leaders = Array.to_list rs |> List.filter Fun.id |> List.length in
        Alcotest.(check int) (Printf.sprintf "n=%d seed=%d: one leader" n seed) 1 leaders
      done)
    [ 1; 2; 3; 4; 5; 8 ]

let test_election_solo_is_leader () =
  let s = Runner.create (Election.make ~n:8) in
  let v, _ = Runner.op s 3 Election.Elect in
  Alcotest.(check bool) "solo elect wins" true (Value.to_bool v)

let test_election_solo_touches_log_registers () =
  (* space adaptivity: a solo passage touches only its root path *)
  let n = 16 in
  let impl = Election.make ~n in
  let s = Runner.create impl in
  ignore (Runner.op s 0 Election.Elect);
  let touched = List.length (Runner.op_accesses s 0) in
  Alcotest.(check bool) "solo touches 4*log2 n registers" true (touched <= 4 * 4);
  Alcotest.(check bool) "much less than total" true (touched * 3 < impl.Impl.num_registers)

let test_election_register_count () =
  Alcotest.(check int) "4(n-1) registers for power of two" 28
    (Election.make ~n:8).Impl.num_registers

let test_election_losers_terminate () =
  (* whoever loses still returns (obstruction-freedom in our schedules) *)
  let n = 4 in
  let rs = elect_all ~n ~seed:77 in
  Alcotest.(check int) "all return" n (Array.length rs)

let suite =
  ( "leader",
    [
      Alcotest.test_case "splitter: solo stops" `Quick test_splitter_solo_stops;
      Alcotest.test_case "splitter: two registers" `Quick test_splitter_uses_two_registers;
      Alcotest.test_case "splitter: properties under random schedules" `Quick
        test_splitter_properties_random;
      Alcotest.test_case "splitter: sequential pair" `Quick test_splitter_sequential_two;
      Alcotest.test_case "election: exactly one leader" `Slow test_election_exactly_one_leader;
      Alcotest.test_case "election: solo is leader" `Quick test_election_solo_is_leader;
      Alcotest.test_case "election: solo space adaptivity" `Quick
        test_election_solo_touches_log_registers;
      Alcotest.test_case "election: register count" `Quick test_election_register_count;
      Alcotest.test_case "election: losers terminate" `Quick test_election_losers_terminate;
    ] )
