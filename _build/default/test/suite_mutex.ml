(* Mutual exclusion: Peterson, the arbitration tree, the TAS lock, and the
   state-change cost model. *)
open Ts_model
open Ts_mutex

let algorithms n =
  [
    Algorithm.Packed (Peterson.make ~n);
    Algorithm.Packed (Tournament.make ~n);
    Algorithm.Packed (Tas_lock.make ~n);
  ]

let test_serial_identity_order () =
  List.iter
    (fun n ->
      List.iter
        (fun (Algorithm.Packed alg) ->
          let order = Array.init n Fun.id in
          let o = Arena.serial alg ~order in
          Alcotest.(check (list int))
            (Printf.sprintf "%s: serial order realized" o.Arena.algorithm)
            (Array.to_list order) o.Arena.cs_order)
        (algorithms n))
    [ 1; 2; 3; 5; 8 ]

let test_serial_arbitrary_orders () =
  let n = 6 in
  List.iter
    (fun seed ->
      let order = Rng.permutation (Rng.create seed) n in
      List.iter
        (fun (Algorithm.Packed alg) ->
          let o = Arena.serial alg ~order in
          Alcotest.(check (list int)) "any permutation is realizable" (Array.to_list order)
            o.Arena.cs_order)
        (algorithms n))
    [ 1; 2; 3; 4; 5 ]

let test_contended_everyone_enters () =
  List.iter
    (fun n ->
      List.iter
        (fun (Algorithm.Packed alg) ->
          let o = Arena.contended alg in
          Alcotest.(check (list int))
            (Printf.sprintf "%s: everyone enters exactly once" o.Arena.algorithm)
            (List.init n Fun.id)
            (List.sort compare o.Arena.cs_order))
        (algorithms n))
    [ 1; 2; 3; 4; 8; 16 ]

(* Random schedules: mutual exclusion must hold under any interleaving.
   The arena raises if two processes are ever in the CS together. *)
let test_random_schedules_mutual_exclusion () =
  let n = 4 in
  List.iter
    (fun (Algorithm.Packed alg) ->
      for seed = 1 to 20 do
        let rng = Rng.create seed in
        let s = Arena.session alg in
        for p = 0 to n - 1 do
          Arena.start_proc s p
        done;
        let remaining = ref n in
        let guard = ref 2_000_000 in
        while !remaining > 0 && !guard > 0 do
          decr guard;
          let alive = List.filter (Arena.active s) (List.init n Fun.id) in
          match alive with
          | [] -> remaining := 0
          | _ ->
            let p = List.nth alive (Rng.int rng (List.length alive)) in
            (match Arena.step_proc s p with `Done -> decr remaining | `Continues -> ())
        done;
        let o = Arena.session_outcome s in
        Alcotest.(check int) "all entered" n (List.length o.Arena.cs_order)
      done)
    (algorithms 4)

let test_cost_model_spinning_is_free () =
  (* a TAS process spinning on a held lock is charged once for the first
     miss, then spins free *)
  let alg = Tas_lock.make ~n:2 in
  let s = Arena.session alg in
  Arena.start_proc s 0;
  ignore (Arena.step_proc s 0);
  (* p0 holds the lock *)
  Arena.start_proc s 1;
  ignore (Arena.step_proc s 1);
  (* p1 swapped and failed: charged *)
  let o1 = (Arena.session_outcome s).Arena.per_process_cost.(1) in
  for _ = 1 to 50 do
    ignore (Arena.step_proc s 1)
  done;
  let o2 = (Arena.session_outcome s).Arena.per_process_cost.(1) in
  (* 50 spin reads of an unchanged register: at most one more charge *)
  Alcotest.(check bool) "spinning essentially free" true (o2 - o1 <= 1)

let test_cost_model_write_always_charged () =
  let alg = Peterson.make ~n:2 in
  let s = Arena.session alg in
  Arena.start_proc s 0;
  ignore (Arena.step_proc s 0);
  let c = (Arena.session_outcome s).Arena.per_process_cost.(0) in
  Alcotest.(check int) "first write charged" 1 c

let test_tournament_cost_scales_n_log_n () =
  let cost n =
    let o = Arena.serial (Tournament.make ~n) ~order:(Array.init n Fun.id) in
    o.Arena.cost
  in
  let c8 = cost 8 and c64 = cost 64 in
  (* n log n predicts a factor of 16 from 8 to 64; allow generous slack *)
  let ratio = float_of_int c64 /. float_of_int c8 in
  Alcotest.(check bool) "cost ratio betrays n log n" true (ratio > 10. && ratio < 24.)

let test_peterson_cost_scales_quadratically () =
  let cost n =
    let o = Arena.serial (Peterson.make ~n) ~order:(Array.init n Fun.id) in
    o.Arena.cost
  in
  let c8 = cost 8 and c32 = cost 32 in
  (* quadratic predicts 16x *)
  let ratio = float_of_int c32 /. float_of_int c8 in
  Alcotest.(check bool) "cost ratio betrays n^2" true (ratio > 10. && ratio < 24.)

let test_tas_cost_linear () =
  let cost n =
    let o = Arena.serial (Tas_lock.make ~n) ~order:(Array.init n Fun.id) in
    o.Arena.cost
  in
  Alcotest.(check int) "2 charged accesses per passage" (2 * 16) (cost 16)

let test_tournament_beats_peterson () =
  let n = 32 in
  let order = Array.init n Fun.id in
  let tp = (Arena.serial (Peterson.make ~n) ~order).Arena.cost in
  let tt = (Arena.serial (Tournament.make ~n) ~order).Arena.cost in
  let ts = (Arena.serial (Tas_lock.make ~n) ~order).Arena.cost in
  Alcotest.(check bool) "tournament beats Peterson" true (tt < tp);
  Alcotest.(check bool) "swap beats registers" true (ts < tt)

let test_uses_swap_flags () =
  Alcotest.(check bool) "peterson register-only" false (Peterson.make ~n:2).Algorithm.uses_swap;
  Alcotest.(check bool) "tournament register-only" false (Tournament.make ~n:2).Algorithm.uses_swap;
  Alcotest.(check bool) "tas uses swap" true (Tas_lock.make ~n:2).Algorithm.uses_swap

let test_register_counts () =
  Alcotest.(check int) "peterson registers 2n-1" 15 (Peterson.make ~n:8).Algorithm.num_registers;
  Alcotest.(check int) "tournament registers 3(n-1)" 21 (Tournament.make ~n:8).Algorithm.num_registers;
  Alcotest.(check int) "tas registers 1" 1 (Tas_lock.make ~n:8).Algorithm.num_registers

let test_step_log_consistency () =
  let alg = Tournament.make ~n:3 in
  let o = Arena.contended alg in
  let steps_in_log =
    List.length (List.filter (function Arena.Stepped _ -> true | Arena.Started _ -> false) o.Arena.step_log)
  in
  let charged_in_log =
    List.length (List.filter (function Arena.Stepped (_, true) -> true | _ -> false) o.Arena.step_log)
  in
  Alcotest.(check int) "log steps = steps" o.Arena.steps steps_in_log;
  (* CS transitions are logged as charged but not costed, so charged >= cost *)
  Alcotest.(check bool) "charged log entries cover the cost" true (charged_in_log >= o.Arena.cost)

let suite =
  ( "mutex",
    [
      Alcotest.test_case "serial identity order" `Quick test_serial_identity_order;
      Alcotest.test_case "serial arbitrary orders" `Quick test_serial_arbitrary_orders;
      Alcotest.test_case "contended: everyone enters once" `Quick test_contended_everyone_enters;
      Alcotest.test_case "random schedules keep mutual exclusion" `Slow
        test_random_schedules_mutual_exclusion;
      Alcotest.test_case "cost model: spinning is free" `Quick test_cost_model_spinning_is_free;
      Alcotest.test_case "cost model: writes charged" `Quick test_cost_model_write_always_charged;
      Alcotest.test_case "tournament cost ~ n log n" `Quick test_tournament_cost_scales_n_log_n;
      Alcotest.test_case "peterson cost ~ n^2" `Quick test_peterson_cost_scales_quadratically;
      Alcotest.test_case "tas cost linear" `Quick test_tas_cost_linear;
      Alcotest.test_case "relative ordering of the three locks" `Quick test_tournament_beats_peterson;
      Alcotest.test_case "uses_swap flags" `Quick test_uses_swap_flags;
      Alcotest.test_case "register counts" `Quick test_register_counts;
      Alcotest.test_case "step log consistency" `Quick test_step_log_consistency;
    ] )
