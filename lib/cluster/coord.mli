(** The cluster coordinator: drives N workers through a level-synchronous
    distributed BFS and reassembles the {e exact} serial answer.

    The partition of work is by configuration key ({!Shard}); each round
    the coordinator routes the frontier candidates to their owner shards
    (batched {b ingest}), collects dedup flags and examine results, asks
    the owners to {b expand} the surviving configurations, and reorders
    everything back into the serial BFS's dequeue order — which is
    (level, lexicographic-schedule) order, so the first violating
    configuration, every counter, and even the serial queue's high-water
    mark are reconstructed exactly.  docs/CLUSTER.md spells out the
    certification argument; test/suite_cluster.ml and the CI smoke hold
    the resulting [result] documents byte-identical to the serial
    engine's.

    A worker death (the resilient client exhausting its retries) or a
    blown coordinator deadline produces a structured {!failure} naming
    the dead workers, the shards lost with them and the reassignment a
    retry would use — degraded, never wrong. *)

module Json := Ts_analysis.Json

(** {1 Peers} *)

type peer = {
  wid : int;  (** worker index; shard assignment maps onto these *)
  name : string;  (** display name, e.g. ["127.0.0.1:4401"] *)
  call : Json.t -> (Json.t, string) result;
      (** one request/response exchange; [Error] marks the worker dead *)
  mutable alive : bool;
}

(** [tcp_peer ~wid ~host ~port] wraps a resilient retrying
    {!Ts_service.Client} (safe against the idempotent worker RPCs). *)
val tcp_peer : ?policy:Ts_service.Client.policy -> wid:int -> host:string -> port:int -> unit -> peer

(** [local_peer ~wid w] drives an in-process {!Worker.t} — no sockets,
    used by the test suite's differential harness. *)
val local_peer : wid:int -> Worker.t -> peer

(** {1 Parameters} *)

type op =
  | Check
  | Resilient
  | Valency

type params = {
  op : op;
  protocol : string;
  n : int;
  k : int;  (** set-agreement k for [Check] *)
  t_faults : int;  (** crash budget for [Resilient] *)
  max_configs : int;
  max_depth : int;
  solo_budget : int;
  check_solo : bool;
  horizon : int option;  (** [Valency]; defaults to [10 * n] *)
  shards : int;
  deadline : float option;  (** coordinator wall-clock budget, seconds *)
  steal_threshold : int;
      (** migrate a shard when an idle worker coexists with one holding
          at least this many pending candidates over >= 2 shards *)
  chunk : int;  (** max candidates per frame *)
}

(** Engine defaults mirroring the service request defaults: [k = 1],
    [t_faults = 1], [max_configs = 60_000], [max_depth = 40],
    [solo_budget = 300], [check_solo = true], [shards = 8],
    [steal_threshold = 64], [chunk = 256], no deadline.  The chunk
    default keeps a single ingest frame's engine work (deep updates plus
    solo probes per candidate) well under the peer RPC timeout: a slow
    frame must mean a dead worker, not a busy one. *)
val default_params : params

(** {1 Outcomes} *)

type failure = {
  reason : [ `Dead_workers | `Deadline ];
  dead : (int * string) list;  (** worker id, last error *)
  lost_shards : int list;  (** shards whose visited sets died with them *)
  reassignment : (int * int) list;
      (** shard -> surviving worker map a retry would start from *)
  completed_rounds : int;
  vector : int option;  (** input vector / valency probe in flight *)
}

type outcome =
  | Complete of {
      result : Json.t;
          (** byte-identical (when serialized by {!Ts_analysis.Json}) to
              the serial engine's result document for the same request *)
      telemetry : Json.t;  (** per-worker merged cluster counters *)
    }
  | Failed of failure

(** [run ?restarts params ~peers] executes the request.  On a worker
    death with [restarts > 0] and at least one survivor, the whole
    request is retried from scratch on the survivors (the answer is
    placement-independent, so the retry is byte-identical too). *)
val run : ?restarts:int -> params -> peers:peer list -> outcome

val failure_to_json : failure -> Json.t

(** The op's serial cache identity, salted with a cluster marker so a
    coordinator-side store tier can never collide with (and poison) the
    serial daemon's witness log entries. *)
val store_key : params -> Ts_model.Ckey.t
