(* Rendezvous (highest-random-weight) hashing over FNV-1a 64.  The score
   of (key, shard) folds the shard id into the digest's FNV state, so
   distinct shards see independent-looking scores for the same key and
   the argmax moves only when a *new* shard wins — the resharding
   stability the cluster's elasticity story rests on. *)

let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let score raw shard =
  let h = ref fnv_basis in
  let mix byte = h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime in
  String.iter (fun c -> mix (Char.code c)) raw;
  mix (shard land 0xff);
  mix ((shard lsr 8) land 0xff);
  mix ((shard lsr 16) land 0xff);
  mix ((shard lsr 24) land 0xff);
  !h

let owner_raw ~shards raw =
  if shards <= 0 then invalid_arg "Shard.owner_raw: shards must be positive";
  let best = ref 0 in
  let best_score = ref (score raw 0) in
  for s = 1 to shards - 1 do
    let sc = score raw s in
    (* unsigned comparison; ties (astronomically unlikely) keep the
       lower shard id, so the map is total and deterministic either way *)
    if Int64.unsigned_compare sc !best_score > 0 then begin
      best := s;
      best_score := sc
    end
  done;
  !best

let owner ~shards key = owner_raw ~shards (Ts_model.Ckey.to_raw key)

let round_robin ~shards ~workers =
  if workers <= 0 || shards <= 0 then
    invalid_arg "Shard.round_robin: need positive shards and workers";
  Array.init shards (fun s -> s mod workers)
