(** A cluster worker node: the shard-local half of the distributed
    search.

    A worker owns, per active search, a set of per-shard visited tables
    (keyed by raw {!Ts_model.Ckey} digests) and answers the
    coordinator's round messages: {b ingest} (deduplicate a batch of
    frontier candidates against the owner shard's table, examine the
    fresh ones), {b expand} (enumerate successors of previously
    ingested configurations, tagged with their owner shards), {b steal}
    (export/import a shard's visited set when the coordinator migrates
    it), and {b finish} (drop the search, report telemetry).  All
    compute runs on the event-loop domain — a worker is single-threaded
    by design; parallelism is across workers.

    {b Idempotency.}  Every state-mutating message carries a
    coordinator-assigned per-search sequence number.  The worker
    memoizes the last processed (seq, reply) pair and replays the reply
    verbatim on a duplicate, which is what makes the resilient
    retrying {!Ts_service.Client} safe to use against workers even
    though ingest/expand are not pure queries. *)

type t
(** The worker state container (all active searches). *)

val create : ?verbose:bool -> unit -> t

(** [handle t payload] processes one framed request payload and returns
    the reply document — the full message surface, exposed directly so
    tests and the in-process coordinator peers can drive a worker
    without sockets.  Never raises: failures become typed error
    documents. *)
val handle : t -> string -> string

val active_searches : t -> int

(** {1 TCP server} *)

type server

type config = {
  host : string;
  port : int;  (** [0] picks an ephemeral port *)
  verbose : bool;
}

val default_config : config

(** [start config] binds, announces ["cluster worker: listening on
    HOST:PORT"] on stdout, and serves on a spawned domain until
    {!request_stop}.
    @raise Unix.Unix_error if the address cannot be bound. *)
val start : config -> server

val port : server -> int
val request_stop : server -> unit

(** Join the loop domain (after {!request_stop}). *)
val wait : server -> unit

val stop : server -> unit
