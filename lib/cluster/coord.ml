open Ts_model
module Json = Ts_analysis.Json
module Explore = Ts_checker.Explore
module Valency = Ts_core.Valency
module Response = Ts_service.Response
module Client = Ts_service.Client

(* --- peers ---------------------------------------------------------------- *)

type peer = {
  wid : int;
  name : string;
  call : Json.t -> (Json.t, string) result;
  mutable alive : bool;
}

(* An ingest chunk does real engine work (deep updates, solo probes), so
   a worker can legitimately hold a frame for tens of seconds on a big
   frontier; the default RPC timeout must bound death detection, not the
   engine.  The seq protocol makes the retries safe either way. *)
let default_policy = { Client.default_policy with Client.timeout_ms = 60_000 }

let tcp_peer ?policy ~wid ~host ~port () =
  let policy = Option.value policy ~default:default_policy in
  let c = Client.make ~host ~policy ~port () in
  {
    wid;
    name = Printf.sprintf "%s:%d" host port;
    call = (fun doc -> Client.call c doc);
    alive = true;
  }

let local_peer ~wid w =
  {
    wid;
    name = Printf.sprintf "local-%d" wid;
    call =
      (fun doc ->
        match Json.of_string (Worker.handle w (Json.to_string doc)) with
        | Ok d -> Ok d
        | Error m -> Error ("parse: " ^ m));
    alive = true;
  }

(* --- parameters ----------------------------------------------------------- *)

type op =
  | Check
  | Resilient
  | Valency

let op_str = function
  | Check -> "check"
  | Resilient -> "resilient"
  | Valency -> "valency"

type params = {
  op : op;
  protocol : string;
  n : int;
  k : int;
  t_faults : int;
  max_configs : int;
  max_depth : int;
  solo_budget : int;
  check_solo : bool;
  horizon : int option;
  shards : int;
  deadline : float option;
  steal_threshold : int;
  chunk : int;
}

let default_params =
  {
    op = Check;
    protocol = "racing";
    n = 3;
    k = 1;
    t_faults = 1;
    max_configs = 60_000;
    max_depth = 40;
    solo_budget = 300;
    check_solo = true;
    horizon = None;
    shards = 8;
    deadline = None;
    steal_threshold = 64;
    chunk = 256;
  }

(* --- outcomes ------------------------------------------------------------- *)

type failure = {
  reason : [ `Dead_workers | `Deadline ];
  dead : (int * string) list;
  lost_shards : int list;
  reassignment : (int * int) list;
  completed_rounds : int;
  vector : int option;
}

type outcome =
  | Complete of {
      result : Json.t;
      telemetry : Json.t;
    }
  | Failed of failure

exception Dead_peers
exception Deadline_hit

(* --- coordinator state ---------------------------------------------------- *)

type state = {
  peers : peer array;
  params : params;
  assign : int array;  (* shard -> position in [peers]; mutated by steals *)
  seqs : int array;  (* per peer, reset at each search's init *)
  mutable round : int;
  mutable vector : int option;
  mutable dead : (int * string) list;
  mutable steals : int;
  deadline_at : float option;
  tele : (string, int) Hashtbl.t array;
}

let check_deadline st =
  match st.deadline_at with
  | Some t when Unix.gettimeofday () > t -> raise Deadline_hit
  | _ -> ()

let next_seq st w =
  st.seqs.(w) <- st.seqs.(w) + 1;
  st.seqs.(w)

(* A worker reply that violates the wire protocol is indistinguishable
   from a corrupted worker: retire it rather than risk a wrong answer. *)
let wire_fail st pos msg =
  st.peers.(pos).alive <- false;
  st.dead <- st.dead @ [ (st.peers.(pos).wid, "protocol: " ^ msg) ];
  raise Dead_peers

(* --- phases --------------------------------------------------------------- *)

let send_seq st pos docs =
  let peer = st.peers.(pos) in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | d :: rest -> (
      match peer.call d with
      | Error msg -> Error msg
      | Ok env -> (
        match Msg.result_of_envelope env with
        | Error msg -> Error msg
        | Ok r -> go (r :: acc) rest))
  in
  go [] docs

(* One job per worker, fanned out on domains; a phase is a barrier.  Each
   worker's documents are sent strictly sequentially (the seq protocol
   depends on it); workers run their jobs concurrently with each other. *)
let phase st jobs =
  check_deadline st;
  let jobs = List.filter (fun (_, docs) -> docs <> []) jobs in
  let results =
    match jobs with
    | [] -> []
    | [ (pos, docs) ] -> [ (pos, send_seq st pos docs) ]
    | _ ->
      let doms =
        List.map
          (fun (pos, docs) ->
            ( pos,
              Domain.spawn (fun () ->
                  try send_seq st pos docs
                  with exn -> Error ("exn: " ^ Printexc.to_string exn)) ))
          jobs
      in
      List.map (fun (pos, d) -> (pos, Domain.join d)) doms
  in
  let deads =
    List.filter_map
      (fun (pos, r) -> match r with Error m -> Some (pos, m) | Ok _ -> None)
      results
  in
  if deads <> [] then begin
    List.iter
      (fun (pos, msg) ->
        st.peers.(pos).alive <- false;
        st.dead <- st.dead @ [ (st.peers.(pos).wid, msg) ])
      deads;
    raise Dead_peers
  end;
  List.map
    (fun (pos, r) -> (pos, match r with Ok rs -> rs | Error _ -> assert false))
    results

let chunk_list n l =
  let rec go start acc cur k = function
    | [] -> List.rev (if cur = [] then acc else (start, List.rev cur) :: acc)
    | x :: rest ->
      if k = n then go (start + n) ((start, List.rev cur) :: acc) [ x ] 1 rest
      else go start acc (x :: cur) (k + 1) rest
  in
  if l = [] then [] else go 0 [] [] 0 l

(* --- the round messages --------------------------------------------------- *)

(* a routed candidate: owner shard, schedule string, generating parent's
   global dequeue index *)
type rc = {
  rshard : int;
  rsched : string;
  parent : int;
}

(* a deduplicated frontier member, in serial dequeue order *)
type item = {
  gidx : int;  (* 1-based global serial dequeue index *)
  sched : string;
  wpos : int;  (* peer holding it *)
  widx : int;  (* its worker-local pending index *)
  probes : int;
  vio : Json.t option;
  decided : bool;
}

type ingested = {
  items : item array;
  dup_hits : int;
  parent_miss : (int, int) Hashtbl.t;
}

let ingest st ~search ~examine ~gbase cands =
  let nw = Array.length st.peers in
  let per_w = Array.make nw [] in
  let counts = Array.make nw 0 in
  let wslot = Array.make (Array.length cands) (0, 0) in
  Array.iteri
    (fun gpos c ->
      let w = st.assign.(c.rshard) in
      let i = counts.(w) in
      counts.(w) <- i + 1;
      per_w.(w) <- c :: per_w.(w);
      wslot.(gpos) <- (w, i))
    cands;
  let jobs =
    List.init nw (fun w ->
        let docs =
          List.map
            (fun (off, chunk) ->
              Json.Obj
                [
                  ("op", Json.Str "cluster-ingest");
                  ("search", Json.Str search);
                  ("seq", Json.Int (next_seq st w));
                  ("reset", Json.Bool (off = 0));
                  ("base", Json.Int off);
                  ("examine", Json.Bool examine);
                  ( "cands",
                    Msg.cands_to_json
                      (List.map
                         (fun c -> { Msg.shard = c.rshard; sched = c.rsched })
                         chunk) );
                ])
            (chunk_list st.params.chunk (List.rev per_w.(w)))
        in
        (w, docs))
  in
  let replies = phase st jobs in
  let flags = Array.make nw "" in
  let exams = Array.init nw (fun _ -> Hashtbl.create 8) in
  List.iter
    (fun (w, rs) ->
      List.iter
        (fun r ->
          (match Option.bind (Json.member "flags" r) Json.to_str_opt with
          | Some f -> flags.(w) <- flags.(w) ^ f
          | None -> wire_fail st w "ingest reply missing flags");
          match Json.member "exams" r with
          | Some (Json.List es) ->
            List.iter
              (fun e ->
                match Option.bind (Json.member "i" e) Json.to_int_opt with
                | None -> wire_fail st w "exam entry missing i"
                | Some i ->
                  let probes =
                    Option.value ~default:0
                      (Option.bind (Json.member "p" e) Json.to_int_opt)
                  in
                  let vio = Json.member "v" e in
                  let decided =
                    match Json.member "d" e with
                    | Some (Json.Bool b) -> b
                    | _ -> false
                  in
                  Hashtbl.replace exams.(w) i (probes, vio, decided))
              es
          | _ -> wire_fail st w "ingest reply missing exams")
        rs)
    replies;
  Array.iteri
    (fun w f ->
      if String.length f <> counts.(w) then wire_fail st w "flag count mismatch")
    flags;
  let items = ref [] in
  let nitems = ref 0 in
  let dups = ref 0 in
  let pmiss = Hashtbl.create 64 in
  Array.iteri
    (fun gpos c ->
      let w, i = wslot.(gpos) in
      match flags.(w).[i] with
      | '0' -> incr dups
      | '1' ->
        incr nitems;
        let probes, vio, decided =
          match Hashtbl.find_opt exams.(w) i with
          | Some e -> e
          | None -> (0, None, false)
        in
        items :=
          { gidx = gbase + !nitems; sched = c.rsched; wpos = w; widx = i;
            probes; vio; decided }
          :: !items;
        Hashtbl.replace pmiss c.parent
          (1 + Option.value ~default:0 (Hashtbl.find_opt pmiss c.parent))
      | _ -> wire_fail st w "bad flag byte")
    cands;
  { items = Array.of_list (List.rev !items); dup_hits = !dups; parent_miss = pmiss }

let expand st ~search items =
  let nw = Array.length st.peers in
  let per_w = Array.make nw [] in
  Array.iter (fun it -> per_w.(it.wpos) <- it.widx :: per_w.(it.wpos)) items;
  let jobs =
    List.init nw (fun w ->
        let docs =
          List.map
            (fun (_, chunk) ->
              Json.Obj
                [
                  ("op", Json.Str "cluster-expand");
                  ("search", Json.Str search);
                  ("seq", Json.Int (next_seq st w));
                  ("items", Json.List (List.map (fun i -> Json.Int i) chunk));
                ])
            (chunk_list st.params.chunk (List.rev per_w.(w)))
        in
        (w, docs))
  in
  let replies = phase st jobs in
  let tbl = Hashtbl.create (max 16 (Array.length items * 2)) in
  List.iter
    (fun (w, rs) ->
      List.iter
        (fun r ->
          match Json.member "out" r with
          | Some (Json.List outs) ->
            List.iter
              (fun o ->
                match
                  ( Option.bind (Json.member "i" o) Json.to_int_opt,
                    Option.map Msg.cands_of_json (Json.member "c" o) )
                with
                | Some i, Some (Ok cs) -> Hashtbl.replace tbl (w, i) cs
                | _, Some (Error m) -> wire_fail st w m
                | _ -> wire_fail st w "malformed expand entry")
              outs
          | _ -> wire_fail st w "expand reply missing out")
        rs)
    replies;
  let out = ref [] in
  Array.iter
    (fun it ->
      match Hashtbl.find_opt tbl (it.wpos, it.widx) with
      | None -> wire_fail st it.wpos "expand reply missing item"
      | Some cs ->
        List.iter
          (fun { Msg.shard; sched } ->
            out := { rshard = shard; rsched = sched; parent = it.gidx } :: !out)
          cs)
    items;
  Array.of_list (List.rev !out)

(* --- work stealing --------------------------------------------------------

   Decided at the round barrier, after expansion: if some worker has no
   next-round candidates while another holds at least [steal_threshold]
   of them spread over >= 2 shards, migrate the busy worker's smallest
   nonempty shard (visited set and all) to the idle one.  The answer
   only ever depends on the key->shard partition, never on which worker
   holds a shard, so stealing is invisible to the result. *)

let maybe_steal st ~search next_cands =
  let nw = Array.length st.peers in
  if nw >= 2 then begin
    let sc = Array.make st.params.shards 0 in
    Array.iter (fun c -> sc.(c.rshard) <- sc.(c.rshard) + 1) next_cands;
    let wtotal = Array.make nw 0 in
    let wshards = Array.make nw 0 in
    Array.iteri
      (fun s cnt ->
        if cnt > 0 then begin
          let w = st.assign.(s) in
          wtotal.(w) <- wtotal.(w) + cnt;
          wshards.(w) <- wshards.(w) + 1
        end)
      sc;
    let idle = ref (-1) in
    let busy = ref (-1) in
    for w = nw - 1 downto 0 do
      if wtotal.(w) = 0 then idle := w
    done;
    for w = 0 to nw - 1 do
      if
        wtotal.(w) >= st.params.steal_threshold
        && wshards.(w) >= 2
        && (!busy < 0 || wtotal.(w) > wtotal.(!busy))
      then busy := w
    done;
    if !idle >= 0 && !busy >= 0 && !idle <> !busy then begin
      let victim = ref (-1) in
      for s = st.params.shards - 1 downto 0 do
        if st.assign.(s) = !busy && sc.(s) > 0 && (!victim < 0 || sc.(s) <= sc.(!victim))
        then victim := s
      done;
      if !victim >= 0 then begin
        let exp_doc =
          Json.Obj
            [
              ("op", Json.Str "cluster-steal-export");
              ("search", Json.Str search);
              ("seq", Json.Int (next_seq st !busy));
              ("shard", Json.Int !victim);
            ]
        in
        let keys =
          match phase st [ (!busy, [ exp_doc ]) ] with
          | [ (_, [ r ]) ] -> (
            match Json.member "keys" r with
            | Some (Json.List ks) -> ks
            | _ -> wire_fail st !busy "steal-export reply missing keys")
          | _ -> wire_fail st !busy "steal-export reply shape"
        in
        let imp_doc =
          Json.Obj
            [
              ("op", Json.Str "cluster-steal-import");
              ("search", Json.Str search);
              ("seq", Json.Int (next_seq st !idle));
              ("shard", Json.Int !victim);
              ("keys", Json.List keys);
            ]
        in
        ignore (phase st [ (!idle, [ imp_doc ]) ]);
        st.assign.(!victim) <- !idle;
        st.steals <- st.steals + 1
      end
    end
  end

(* --- one distributed BFS --------------------------------------------------

   Level-synchronous rounds over the workers, with the serial engine's
   counters reconstructed exactly on the coordinator:

   - the round-r candidate stream, walked in serial generation order,
     yields the serial dedup flag stream (same-key candidates route to
     the same shard in the same relative order), so table hits/misses
     and the new-item set are serial-identical;
   - new items inherit consecutive global dequeue indices [gidx] in
     (level, lex-schedule) order — the serial queue's dequeue order;
   - the serial queue length after expanding the item with index [g] is
     [cum_ins - g] where [cum_ins] counts insertions so far, so the
     queue's high-water mark is the max of that expression over expanded
     items (non-expanded dequeues only ever shrink the queue and cannot
     set a new peak);
   - a violating item W stops the serial search mid-round: items after W
     are never dequeued (their probes don't count), items before W were
     dequeued and expanded (their children's flags and the trunc check
     do count) — the drain pass reproduces exactly that. *)

type bfs_res = {
  found : (string * Json.t option) option;
      (* stopping item's schedule + violation payload (None = valency
         target decided) *)
  explored : int;
  insertions : int;
  hits : int;
  probes : int;
  deepest : int;
  truncated : bool;
  peak : int;
}

let bfs st ~search ~inputs ~mode_fields ~depth_limit ~cfg_limit =
  let nw = Array.length st.peers in
  Array.fill st.seqs 0 nw 0;
  st.round <- 0;
  let init_doc =
    Json.Obj
      ([
         ("op", Json.Str "cluster-init");
         ("search", Json.Str search);
         ("protocol", Json.Str st.params.protocol);
         ("n", Json.Int st.params.n);
         ("shards", Json.Int st.params.shards);
         ("inputs", Json.List (Array.to_list (Array.map Msg.value_to_json inputs)));
       ]
      @ mode_fields)
  in
  let replies = phase st (List.init nw (fun w -> (w, [ init_doc ]))) in
  let root_shard =
    match replies with
    | (w, r :: _) :: _ -> (
      match Option.bind (Json.member "root_shard" r) Json.to_int_opt with
      | Some s -> s
      | None -> wire_fail st w "init reply missing root_shard")
    | _ -> invalid_arg "cluster: no workers"
  in
  (* serial-counter accumulator; the root is pre-seeded exactly as the
     serial search seeds it (one insertion, peak 1) *)
  let ins = ref 1 in
  let hits = ref 0 in
  let probes = ref 0 in
  let deepest = ref 0 in
  let trunc = ref false in
  let cum = ref 1 in
  let peak = ref 1 in
  let gbase = ref 0 in
  let account parents pmiss =
    Array.iter
      (fun (it : item) ->
        cum := !cum + Option.value ~default:0 (Hashtbl.find_opt pmiss it.gidx);
        if !cum - it.gidx > !peak then peak := !cum - it.gidx)
      parents
  in
  let is_allowed round it = round < depth_limit && it.gidx < cfg_limit in
  let clean () =
    { found = None; explored = !ins; insertions = !ins; hits = !hits;
      probes = !probes; deepest = !deepest; truncated = !trunc; peak = !peak }
  in
  let rec go round cands parents =
    let ing = ingest st ~search ~examine:true ~gbase:!gbase cands in
    (* round 0 ingests the root, whose insertion is pre-seeded *)
    if round > 0 then begin
      hits := !hits + ing.dup_hits;
      ins := !ins + Array.length ing.items;
      account parents ing.parent_miss
    end;
    let items = ing.items in
    let stop = ref (-1) in
    Array.iteri
      (fun j it -> if !stop < 0 && (it.vio <> None || it.decided) then stop := j)
      items;
    st.round <- round;
    if !stop >= 0 then begin
      let j0 = !stop in
      let w = items.(j0) in
      for k = 0 to j0 do
        probes := !probes + items.(k).probes
      done;
      if round > !deepest then deepest := round;
      if j0 > 0 && (round >= depth_limit || w.gidx - 1 >= cfg_limit) then
        trunc := true;
      (* drain: the pre-W items of this round were expanded serially
         before W was dequeued — replay their children's dedup flags *)
      let pre_allowed =
        Array.of_list
          (List.filter (is_allowed round) (Array.to_list (Array.sub items 0 j0)))
      in
      if Array.length pre_allowed > 0 then begin
        let dr_cands = expand st ~search pre_allowed in
        let dr =
          ingest st ~search ~examine:false
            ~gbase:(!gbase + Array.length items)
            dr_cands
        in
        hits := !hits + dr.dup_hits;
        ins := !ins + Array.length dr.items;
        account pre_allowed dr.parent_miss
      end;
      { found = Some (w.sched, w.vio); explored = w.gidx; insertions = !ins;
        hits = !hits; probes = !probes; deepest = !deepest; truncated = !trunc;
        peak = !peak }
    end
    else begin
      Array.iter (fun (it : item) -> probes := !probes + it.probes) items;
      if Array.length items > 0 && round > !deepest then deepest := round;
      gbase := !gbase + Array.length items;
      let allowed =
        Array.of_list (List.filter (is_allowed round) (Array.to_list items))
      in
      if Array.length allowed < Array.length items then trunc := true;
      if Array.length allowed = 0 then clean ()
      else begin
        let next = expand st ~search allowed in
        if Array.length next = 0 then clean ()
        else begin
          maybe_steal st ~search next;
          go (round + 1) next allowed
        end
      end
    end
  in
  let res = go 0 [| { rshard = root_shard; rsched = ""; parent = 0 } |] [||] in
  (* free the search on every worker, folding its telemetry *)
  let fdoc =
    Json.Obj [ ("op", Json.Str "cluster-finish"); ("search", Json.Str search) ]
  in
  let freplies = phase st (List.init nw (fun w -> (w, [ fdoc ]))) in
  List.iter
    (fun (w, rs) ->
      List.iter
        (fun r ->
          match Json.member "stats" r with
          | Some (Json.Obj kvs) ->
            List.iter
              (fun (k, v) ->
                match Json.to_int_opt v with
                | Some i ->
                  Hashtbl.replace st.tele.(w) k
                    (i + Option.value ~default:0 (Hashtbl.find_opt st.tele.(w) k))
                | None -> ())
              kvs
          | _ -> ())
        rs)
    freplies;
  res

(* --- per-op drivers ------------------------------------------------------- *)

(* identical to the serial checker's private stats fold, re-stated here
   because the cluster reassembles per-vector stats itself *)
let empty_stats =
  {
    Explore.configs_explored = 0;
    truncated = false;
    deepest = 0;
    table_hits = 0;
    table_misses = 0;
    peak_frontier = 0;
    solo_cache_hits = 0;
    solo_cache_misses = 0;
  }

let merge_stats (a : Explore.stats) (b : Explore.stats) =
  {
    Explore.configs_explored = a.configs_explored + b.configs_explored;
    truncated = a.truncated || b.truncated;
    deepest = max a.deepest b.deepest;
    table_hits = a.table_hits + b.table_hits;
    table_misses = a.table_misses + b.table_misses;
    peak_frontier = max a.peak_frontier b.peak_frontier;
    solo_cache_hits = a.solo_cache_hits + b.solo_cache_hits;
    solo_cache_misses = a.solo_cache_misses + b.solo_cache_misses;
  }

let explore_driver st =
  let p = st.params in
  let mode_fields =
    match p.op with
    | Check ->
      [
        ("mode", Json.Str "check");
        ("k", Json.Int p.k);
        ("solo_budget", Json.Int p.solo_budget);
        ("check_solo", Json.Bool p.check_solo);
      ]
    | Resilient ->
      [
        ("mode", Json.Str "resilient");
        ("t", Json.Int p.t_faults);
        ("solo_budget", Json.Int p.solo_budget);
      ]
    | Valency -> assert false
  in
  (* vectors run sequentially, stopping at the first violating one, and
     their stats fold exactly as the serial checker folds them *)
  let rec go i acc = function
    | [] -> { Explore.verdict = Ok (); stats = acc; stopped = None; worker_errors = [] }
    | inputs :: rest -> (
      st.vector <- Some i;
      let search = Printf.sprintf "%s-v%d" (op_str p.op) i in
      let res =
        bfs st ~search ~inputs ~mode_fields ~depth_limit:p.max_depth
          ~cfg_limit:p.max_configs
      in
      let stats =
        {
          Explore.configs_explored = res.explored;
          truncated = res.truncated;
          deepest = res.deepest;
          table_hits = res.hits;
          table_misses = res.insertions;
          peak_frontier = res.peak;
          solo_cache_hits = 0;
          solo_cache_misses = res.probes;
        }
      in
      let acc = merge_stats acc stats in
      match res.found with
      | None -> go (i + 1) acc rest
      | Some (sched_s, payload) ->
        let schedule =
          match Msg.sched_of_string sched_s with
          | Ok s -> s
          | Error m -> invalid_arg ("cluster: " ^ m)
        in
        let vio =
          match payload with
          | None -> invalid_arg "cluster: examiner stopped without a violation"
          | Some pl -> (
            match Msg.violation_of_payload pl ~inputs ~schedule with
            | Ok v -> v
            | Error m -> invalid_arg ("cluster: " ^ m))
        in
        { Explore.verdict = Error vio; stats = acc; stopped = None;
          worker_errors = [] })
  in
  let result = go 0 empty_stats (Explore.binary_inputs p.n) in
  let replay =
    match (p.op, result.Explore.verdict) with
    | Resilient, Error v ->
      let (Protocol.Packed proto) =
        match Ts_protocols.Catalog.find p.protocol ~n:p.n with
        | Ok pk -> pk
        | Error m -> invalid_arg m
      in
      Some (Explore.replay proto v)
    | _ -> None
  in
  Response.explore_to_json ?replay result

let valency_driver st =
  let p = st.params in
  let horizon = match p.horizon with Some h -> h | None -> 10 * p.n in
  let inputs = Array.init p.n (fun q -> Value.int (if q = 1 then 1 else 0)) in
  let mask = (1 lsl p.n) - 1 in
  let probe target =
    st.vector <- Some target;
    let mode_fields =
      [
        ("mode", Json.Str "valency");
        ("target", Json.Int target);
        ("ps_mask", Json.Int mask);
      ]
    in
    bfs st
      ~search:(Printf.sprintf "valency-v%d" target)
      ~inputs ~mode_fields ~depth_limit:horizon ~cfg_limit:max_int
  in
  let r0 = probe 0 in
  let r1 = probe 1 in
  let wit r =
    Option.map
      (fun (s, _) ->
        match Msg.sched_of_string s with
        | Ok e -> e
        | Error m -> invalid_arg ("cluster: " ^ m))
      r.found
  in
  let verdict =
    match (wit r0, wit r1) with
    | Some w0, Some w1 -> Valency.Bivalent (w0, w1)
    | Some w0, None -> Valency.Univalent (Valency.zero, w0)
    | None, Some w1 -> Valency.Univalent (Valency.one, w1)
    | None, None -> Valency.Blocked
  in
  let stats =
    {
      Valency.searches = 2;
      nodes_expanded = r0.explored + r1.explored;
      memo_hits = 0;
      memo_misses = 2;
      peak_frontier = max r0.peak r1.peak;
    }
  in
  Response.valency_to_json ~inputs ~horizon verdict stats

(* --- failure assembly, telemetry, entry points ---------------------------- *)

let mk_failure st reason =
  let lost = ref [] in
  Array.iteri
    (fun s w -> if not st.peers.(w).alive then lost := s :: !lost)
    st.assign;
  let survivors = List.filter (fun pr -> pr.alive) (Array.to_list st.peers) in
  let reassignment =
    match survivors with
    | [] -> []
    | _ ->
      let arr = Array.of_list survivors in
      List.init st.params.shards (fun s -> (s, arr.(s mod Array.length arr).wid))
  in
  {
    reason;
    dead = st.dead;
    lost_shards = List.rev !lost;
    reassignment;
    completed_rounds = st.round;
    vector = st.vector;
  }

let failure_to_json f =
  Json.Obj
    [
      ("status", Json.Str "partial");
      ( "reason",
        Json.Str
          (match f.reason with
          | `Dead_workers -> "dead-workers"
          | `Deadline -> "deadline") );
      ( "dead",
        Json.List
          (List.map
             (fun (wid, msg) ->
               Json.Obj [ ("wid", Json.Int wid); ("error", Json.Str msg) ])
             f.dead) );
      ("lost_shards", Json.List (List.map (fun s -> Json.Int s) f.lost_shards));
      ( "reassignment",
        Json.List
          (List.map
             (fun (s, w) -> Json.List [ Json.Int s; Json.Int w ])
             f.reassignment) );
      ("completed_rounds", Json.Int f.completed_rounds);
      ( "vector",
        match f.vector with None -> Json.Null | Some v -> Json.Int v );
    ]

let telemetry_json st =
  let workers =
    Array.to_list
      (Array.mapi
         (fun w p ->
           let kvs = Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) st.tele.(w) [] in
           let kvs = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs in
           Json.Obj (("wid", Json.Int p.wid) :: ("name", Json.Str p.name) :: kvs))
         st.peers)
  in
  Json.Obj
    [
      ("shards", Json.Int st.params.shards);
      ("steals", Json.Int st.steals);
      ("workers", Json.List workers);
    ]

let run_once params peers_arr =
  (match Ts_protocols.Catalog.find params.protocol ~n:params.n with
  | Ok _ -> ()
  | Error m -> invalid_arg m);
  if params.shards < 1 then invalid_arg "cluster: shards must be >= 1";
  if params.chunk < 1 then invalid_arg "cluster: chunk must be >= 1";
  (match params.op with
  | Resilient when params.t_faults < 0 || params.t_faults > params.n - 1 ->
    invalid_arg "cluster: t_faults out of range"
  | Check when params.k < 1 -> invalid_arg "cluster: k must be >= 1"
  | _ -> ());
  let nw = Array.length peers_arr in
  let st =
    {
      peers = peers_arr;
      params;
      assign = Shard.round_robin ~shards:params.shards ~workers:nw;
      seqs = Array.make nw 0;
      round = 0;
      vector = None;
      dead = [];
      steals = 0;
      deadline_at =
        Option.map (fun d -> Unix.gettimeofday () +. d) params.deadline;
      tele = Array.init nw (fun _ -> Hashtbl.create 8);
    }
  in
  try
    let result =
      match params.op with
      | Valency -> valency_driver st
      | Check | Resilient -> explore_driver st
    in
    Complete { result; telemetry = telemetry_json st }
  with
  | Dead_peers -> Failed (mk_failure st `Dead_workers)
  | Deadline_hit -> Failed (mk_failure st `Deadline)

let run ?(restarts = 0) params ~peers =
  if peers = [] then invalid_arg "cluster: at least one worker required";
  let rec attempt budget ps =
    match run_once params (Array.of_list ps) with
    | Complete _ as c -> c
    | Failed f ->
      let survivors = List.filter (fun p -> p.alive) ps in
      if budget > 0 && f.reason = `Dead_workers && survivors <> [] then
        attempt (budget - 1) survivors
      else Failed f
  in
  attempt restarts peers

(* The coordinator's store tier keys with the op string salted by a
   "cluster-" prefix: the same varint packing discipline as the serial
   daemon's cache key, but a disjoint namespace, so a shared store file
   can never feed cluster bytes into the serial byte-differential. *)
let store_key p =
  let buf = Buffer.create 64 in
  let str s =
    Value.add_varint buf (String.length s);
    Buffer.add_string buf s
  in
  let int i = Value.add_varint buf i in
  str ("cluster-" ^ op_str p.op);
  str p.protocol;
  int p.n;
  int p.k;
  int p.t_faults;
  int p.max_configs;
  int p.max_depth;
  int p.solo_budget;
  int (if p.check_solo then 1 else 0);
  (match p.horizon with None -> int (-1) | Some h -> int h);
  Ckey.of_string (Buffer.contents buf)
