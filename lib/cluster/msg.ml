open Ts_model
module Json = Ts_analysis.Json
module Explore = Ts_checker.Explore

(* --- schedule codec ----------------------------------------------------- *)

let sched_to_string events =
  let buf = Buffer.create 64 in
  List.iteri
    (fun i { Execution.pid; coin } ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int pid);
      match coin with
      | Some true -> Buffer.add_char buf 'h'
      | Some false -> Buffer.add_char buf 't'
      | None -> ())
    events;
  Buffer.contents buf

let token_of_string tok =
  let len = String.length tok in
  if len = 0 then Error "empty schedule token"
  else
    let coin, digits =
      match tok.[len - 1] with
      | 'h' -> (Some true, String.sub tok 0 (len - 1))
      | 't' -> (Some false, String.sub tok 0 (len - 1))
      | _ -> (None, tok)
    in
    match int_of_string_opt digits with
    | Some pid when pid >= 0 -> Ok { Execution.pid; coin }
    | _ -> Error (Printf.sprintf "bad schedule token %S" tok)

let sched_of_string s =
  if s = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | tok :: rest -> (
        match token_of_string tok with
        | Ok e -> go (e :: acc) rest
        | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' s)

(* Serial event rank: pid major; within a pid, heads (and the coinless
   single step) before tails — the order [Explore.successors] emits. *)
let event_rank { Execution.pid; coin } =
  (pid * 2) + match coin with Some false -> 1 | _ -> 0

let rec compare_sched a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' ->
    let c = compare (event_rank x) (event_rank y) in
    if c <> 0 then c else compare_sched a' b'

(* --- hex codec ----------------------------------------------------------- *)

let hex_encode raw =
  let buf = Buffer.create (String.length raw * 2) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents buf

let hex_decode hex =
  let len = String.length hex in
  if len mod 2 <> 0 then Error "odd-length hex string"
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
      | _ -> Error (Printf.sprintf "bad hex character %C" c)
    in
    let buf = Buffer.create (len / 2) in
    let rec go i =
      if i >= len then Ok (Buffer.contents buf)
      else
        match (nibble hex.[i], nibble hex.[i + 1]) with
        | Ok hi, Ok lo ->
          Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
          go (i + 2)
        | Error e, _ | _, Error e -> Error e
    in
    go 0

(* --- field helpers ------------------------------------------------------- *)

let get_str doc k =
  match Option.bind (Json.member k doc) Json.to_str_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" k)

let get_int doc k =
  match Option.bind (Json.member k doc) Json.to_int_opt with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing or non-integer field %S" k)

let get_int_opt doc k ~default =
  match Json.member k doc with
  | None | Some Json.Null -> Ok default
  | Some v -> (
    match Json.to_int_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %S has the wrong type" k))

let get_bool_opt doc k ~default =
  match Json.member k doc with
  | None | Some Json.Null -> Ok default
  | Some v -> (
    match Json.to_bool_opt v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "field %S has the wrong type" k))

let get_list doc k =
  match Json.member k doc with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "missing or non-list field %S" k)

(* --- candidates ---------------------------------------------------------- *)

type cand = {
  shard : int;
  sched : string;
}

(* compact two-element array form: candidate lists dominate round
   payloads, so per-candidate key strings would be pure overhead *)
let cand_to_json { shard; sched } = Json.List [ Json.Int shard; Json.Str sched ]

let cand_of_json = function
  | Json.List [ Json.Int shard; Json.Str sched ] when shard >= 0 ->
    Ok { shard; sched }
  | _ -> Error "candidate must be [shard, sched]"

let cands_to_json cs = Json.List (List.map cand_to_json cs)

let cands_of_json = function
  | Json.List l ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest -> (
        match cand_of_json c with Ok c -> go (c :: acc) rest | Error _ as e -> e)
    in
    go [] l
  | _ -> Error "candidates must be a list"

(* --- values and violations ----------------------------------------------- *)

let rec value_to_json = function
  | Value.Bot -> Json.Null
  | Value.Int i -> Json.Int i
  | Value.Bool b -> Json.Bool b
  | Value.Pair (a, b) ->
    Json.Obj [ ("fst", value_to_json a); ("snd", value_to_json b) ]
  | Value.List vs -> Json.List (List.map value_to_json vs)

let rec value_of_json = function
  | Json.Null -> Ok Value.Bot
  | Json.Int i -> Ok (Value.Int i)
  | Json.Bool b -> Ok (Value.Bool b)
  | Json.Obj _ as doc -> (
    match (Json.member "fst" doc, Json.member "snd" doc) with
    | Some f, Some s ->
      Result.bind (value_of_json f) (fun f ->
          Result.bind (value_of_json s) (fun s -> Ok (Value.Pair (f, s))))
    | _ -> Error "value object must have fst/snd")
  | Json.List l ->
    let rec go acc = function
      | [] -> Ok (Value.List (List.rev acc))
      | v :: rest -> (
        match value_of_json v with Ok v -> go (v :: acc) rest | Error _ as e -> e)
    in
    go [] l
  | Json.Float _ | Json.Str _ -> Error "unencodable value"

let values_of_json l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | v :: rest -> (
      match value_of_json v with Ok v -> go (v :: acc) rest | Error _ as e -> e)
  in
  go [] l

let pids_of_json l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Json.Int p :: rest -> go (p :: acc) rest
    | _ -> Error "pid list must hold integers"
  in
  go [] l

let violation_payload_to_json v =
  let kind = Explore.violation_kind v in
  let extra =
    match v with
    | Explore.Agreement_violation { values; _ } ->
      [ ("values", Json.List (List.map value_to_json values)) ]
    | Explore.Validity_violation { value; _ } -> [ ("value", value_to_json value) ]
    | Explore.Solo_stuck { pid; _ } -> [ ("pid", Json.Int pid) ]
    | Explore.Crash_stuck { crashed; survivors; _ } ->
      [
        ("crashed", Json.List (List.map (fun p -> Json.Int p) crashed));
        ("survivors", Json.List (List.map (fun p -> Json.Int p) survivors));
      ]
  in
  Json.Obj (("kind", Json.Str kind) :: extra)

let violation_of_payload doc ~inputs ~schedule =
  let ( let* ) = Result.bind in
  let* kind = get_str doc "kind" in
  match kind with
  | "agreement" ->
    let* vs = get_list doc "values" in
    let* values = values_of_json vs in
    Ok (Explore.Agreement_violation { inputs; schedule; values })
  | "validity" -> (
    match Json.member "value" doc with
    | None -> Error "validity payload missing value"
    | Some v ->
      let* value = value_of_json v in
      Ok (Explore.Validity_violation { inputs; schedule; value }))
  | "solo-termination" ->
    let* pid = get_int doc "pid" in
    Ok (Explore.Solo_stuck { inputs; schedule; pid })
  | "resilience" ->
    let* cl = get_list doc "crashed" in
    let* sl = get_list doc "survivors" in
    let* crashed = pids_of_json cl in
    let* survivors = pids_of_json sl in
    Ok (Explore.Crash_stuck { inputs; schedule; crashed; survivors })
  | k -> Error (Printf.sprintf "unknown violation kind %S" k)

(* --- envelopes ----------------------------------------------------------- *)

let ok_result ~id result =
  Ts_service.Response.envelope_raw ~id ~provenance:None ~cache_key:None
    ~elapsed_ms:0. ~result:(Json.to_string result)

let result_of_envelope doc =
  match Json.member "ok" doc with
  | Some (Json.Bool true) -> (
    match Json.member "result" doc with
    | Some r -> Ok r
    | None -> Error "envelope missing result")
  | _ ->
    let code =
      Option.bind
        (Option.bind (Json.member "error" doc) (Json.member "code"))
        Json.to_str_opt
    and msg =
      Option.bind
        (Option.bind (Json.member "error" doc) (Json.member "message"))
        Json.to_str_opt
    in
    Error
      (Printf.sprintf "%s: %s"
         (Option.value code ~default:"error")
         (Option.value msg ~default:"unexplained failure envelope"))
