(** Consistent hashing of configuration keys onto shards.

    The reachable-configuration graph is partitioned by {!Ts_model.Ckey}
    digest: every configuration belongs to exactly one of [shards]
    shards, decided by highest-random-weight (rendezvous) hashing of the
    digest bytes against each shard id.  Rendezvous hashing gives the
    cluster its cheap elasticity property: growing the shard count from
    [s] to [s+1] only ever moves keys {e to} the new shard — a key's
    owner among the original [s] shards never changes (its old scores are
    untouched; only the new shard's score can beat them).  The
    resharding test in [test/suite_cluster.ml] pins exactly this.

    Shards are a unit of {e placement}, not of hashing: which worker
    serves a shard is a separate (mutable, work-stealing-adjusted)
    assignment map, so migrating a shard between workers never rehashes
    a key.  The answer of a distributed search depends only on the
    key→shard partition, never on the shard→worker placement. *)

(** [owner_raw ~shards raw] is the owning shard of a raw digest string,
    in [0, shards).  Deterministic, placement-independent.
    @raise Invalid_argument if [shards <= 0]. *)
val owner_raw : shards:int -> string -> int

(** [owner ~shards key] is [owner_raw] of the key's digest bytes. *)
val owner : shards:int -> Ts_model.Ckey.t -> int

(** [round_robin ~shards ~workers] is the initial shard→worker
    assignment map: shard [s] on worker [s mod workers].
    @raise Invalid_argument if [workers <= 0 || shards <= 0]. *)
val round_robin : shards:int -> workers:int -> int array
