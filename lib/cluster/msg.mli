(** Wire vocabulary of the coordinator↔worker protocol.

    Cluster messages ride the existing [ts_service] transport: one
    {!Ts_service.Frame} per message, a JSON object payload whose ["op"]
    starts with ["cluster-"], answered with the standard service
    envelope ([{"id":..,"ok":true,"result":...}] or the typed error
    document).  docs/CLUSTER.md is the operator-facing specification;
    this module is its single OCaml implementation, shared by the
    worker (decode requests, encode replies) and the coordinator
    (encode requests, decode replies).

    {b Schedules on the wire.}  A configuration is transmitted as the
    schedule reaching it from the initial configuration — a
    comma-separated token string, one token per event: the pid digits,
    suffixed ['h']/['t'] for a coin flip resolved heads/tails (["" ] is
    the empty schedule, i.e. the initial configuration).  Workers
    rematerialize the configuration by replaying the schedule
    ({!Ts_model.Execution.apply}); nothing protocol-state-specific ever
    crosses the wire, so the protocol works for every registry entry. *)

module Json := Ts_analysis.Json

(** {1 Schedule codec} *)

val sched_to_string : Ts_model.Execution.event list -> string
val sched_of_string : string -> (Ts_model.Execution.event list, string) result

(** Lexicographic schedule order by serial event rank (pid ascending,
    heads before tails) — the serial BFS's within-level dequeue order.
    Total on schedules of equal length; a strict prefix sorts first. *)
val compare_sched :
  Ts_model.Execution.event list -> Ts_model.Execution.event list -> int

(** {1 Raw-digest hex codec} (for visited-set migration) *)

val hex_encode : string -> string
val hex_decode : string -> (string, string) result

(** {1 Frontier candidates} *)

type cand = {
  shard : int;  (** owner shard of the configuration *)
  sched : string;  (** schedule token string reaching it *)
}

val cand_to_json : cand -> Json.t
val cand_of_json : Json.t -> (cand, string) result
val cands_to_json : cand list -> Json.t
val cands_of_json : Json.t -> (cand list, string) result

(** {1 Value / violation payload codec}

    The worker reports a violation's kind and payload; the coordinator
    re-attaches inputs and schedule and rebuilds the
    {!Ts_checker.Explore.violation}.  Value encoding mirrors the
    response-document encoding (Bot↦null, pairs↦{fst,snd}). *)

val value_to_json : Ts_model.Value.t -> Json.t
val value_of_json : Json.t -> (Ts_model.Value.t, string) result

val violation_payload_to_json : Ts_checker.Explore.violation -> Json.t

(** [violation_of_payload payload ~inputs ~schedule] rebuilds the full
    violation from a wire payload plus the coordinator-known inputs and
    witness schedule. *)
val violation_of_payload :
  Json.t ->
  inputs:Ts_model.Value.t array ->
  schedule:Ts_model.Execution.event list ->
  (Ts_checker.Explore.violation, string) result

(** {1 Envelope helpers} *)

(** [ok_result ~id result] is the standard service success envelope with
    [result] spliced in. *)
val ok_result : id:int -> Json.t -> string

(** [result_of_envelope doc] extracts the ["result"] member of a
    successful envelope, or the error code/message of a failure one. *)
val result_of_envelope : Json.t -> (Json.t, string) result

(** Mandatory members of every cluster request. *)
val get_str : Json.t -> string -> (string, string) result

val get_int : Json.t -> string -> (int, string) result
val get_int_opt : Json.t -> string -> default:int -> (int, string) result
val get_bool_opt : Json.t -> string -> default:bool -> (bool, string) result
val get_list : Json.t -> string -> (Json.t list, string) result
