open Ts_model
module Json = Ts_analysis.Json
module Explore = Ts_checker.Explore
module Valency = Ts_core.Valency
module Obs = Ts_obs.Obs

(* What the per-configuration work of a search is: the property examine
   of check/resilient, or the reachability test of a valency probe. *)
type 's skind =
  | Exam of 's Explore.examiner
  | Reach of Value.t * Pset.t

type 's search = {
  proto : 's Protocol.t;
  pk : 's Ckey.packer;
  inputs : Value.t array;
  skind : 's skind;
  shards : int;
  (* shard -> visited raw-digest set; tables appear on first ingest for
     the shard and leave wholesale on steal-export *)
  visited : (int, (string, unit) Hashtbl.t) Hashtbl.t;
  (* worker-local candidate index -> materialized config + forward
     schedule, for the round's expand phase *)
  pending : (int, 's Config.t * Execution.event list) Hashtbl.t;
  mutable last_seq : int;
  mutable last_reply : string option;
  (* telemetry, reported at finish *)
  mutable ingested : int;
  mutable examined : int;
  mutable expanded : int;
  mutable inserted : int;
  mutable dup_hits : int;
  mutable steals_out : int;
  mutable steals_in : int;
}

type packed = Search : 's search -> packed

type t = {
  searches : (string, packed) Hashtbl.t;
  verbose : bool;
}

let create ?(verbose = false) () = { searches = Hashtbl.create 8; verbose }
let active_searches t = Hashtbl.length t.searches

let log t fmt =
  if t.verbose then Printf.eprintf ("cluster worker: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let err ~id code msg = Json.to_string (Ts_service.Response.error ~id:(Some id) ~code msg)

exception Bad of string * string  (* code, message *)

let bad code msg = raise (Bad (code, msg))
let or_bad code = function Ok v -> v | Error msg -> bad code msg

let visited_for s shard =
  match Hashtbl.find_opt s.visited shard with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 1024 in
    Hashtbl.replace s.visited shard tbl;
    tbl

(* --- init ---------------------------------------------------------------- *)

let parse_inputs doc =
  let l = or_bad "bad-request" (Msg.get_list doc "inputs") in
  Array.of_list
    (List.map (fun v -> or_bad "bad-request" (Msg.value_of_json v)) l)

let handle_init t doc =
  let ( let$ ) r f = f (or_bad "bad-request" r) in
  let$ search_id = Msg.get_str doc "search" in
  let$ name = Msg.get_str doc "protocol" in
  let$ n = Msg.get_int doc "n" in
  let$ mode = Msg.get_str doc "mode" in
  let$ shards = Msg.get_int doc "shards" in
  if shards <= 0 then bad "bad-request" "shards must be positive";
  let inputs = parse_inputs doc in
  let (Protocol.Packed proto) =
    match Ts_protocols.Catalog.find name ~n with
    | Ok p -> p
    | Error msg -> bad "unknown-protocol" msg
  in
  let skind : _ skind =
    match mode with
    | "check" ->
      let k = or_bad "bad-request" (Msg.get_int_opt doc "k" ~default:1) in
      let solo_budget = or_bad "bad-request" (Msg.get_int doc "solo_budget") in
      let check_solo =
        or_bad "bad-request" (Msg.get_bool_opt doc "check_solo" ~default:true)
      in
      Exam (Explore.consensus_examiner proto ~k ~inputs ~solo_budget ~check_solo)
    | "resilient" ->
      let tf = or_bad "bad-request" (Msg.get_int doc "t") in
      let solo_budget = or_bad "bad-request" (Msg.get_int doc "solo_budget") in
      (match Explore.resilience_examiner proto ~t:tf ~inputs ~solo_budget with
       | ex -> Exam ex
       | exception Invalid_argument msg -> bad "invalid-argument" msg)
    | "valency" ->
      let target = or_bad "bad-request" (Msg.get_int doc "target") in
      let mask = or_bad "bad-request" (Msg.get_int doc "ps_mask") in
      let ps = Pset.filter (fun p -> mask land (1 lsl p) <> 0) (Pset.all n) in
      Reach (Value.int target, ps)
    | m -> bad "bad-request" (Printf.sprintf "unknown mode %S" m)
  in
  let pk = Ckey.packer proto in
  let s =
    {
      proto; pk; inputs; skind; shards;
      visited = Hashtbl.create 16;
      pending = Hashtbl.create 256;
      last_seq = 0;
      last_reply = None;
      ingested = 0; examined = 0; expanded = 0; inserted = 0; dup_hits = 0;
      steals_out = 0; steals_in = 0;
    }
  in
  (* re-init of a known id replaces it: init is the coordinator's first
     message per search, so a replacement only ever discards a state the
     same coordinator abandoned *)
  Hashtbl.replace t.searches search_id (Search s);
  log t "init %s: %s n=%d mode=%s shards=%d" search_id name n mode shards;
  let root = Config.initial proto ~inputs in
  let root_shard = Shard.owner ~shards (Ckey.pack pk root) in
  Json.Obj [ ("ready", Json.Bool true); ("root_shard", Json.Int root_shard) ]

(* --- per-round messages -------------------------------------------------- *)

let handle_ingest (Search s) doc =
  let reset = or_bad "bad-request" (Msg.get_bool_opt doc "reset" ~default:false) in
  let base = or_bad "bad-request" (Msg.get_int_opt doc "base" ~default:0) in
  let do_examine =
    or_bad "bad-request" (Msg.get_bool_opt doc "examine" ~default:true)
  in
  let cands =
    or_bad "bad-request"
      (Msg.cands_of_json
         (match Json.member "cands" doc with
          | Some l -> l
          | None -> Json.List []))
  in
  if reset then Hashtbl.reset s.pending;
  let sp = Obs.enter ~cat:"cluster" "cluster.ingest" in
  let flags = Buffer.create (List.length cands) in
  let exams = ref [] in
  List.iteri
    (fun i { Msg.shard; sched } ->
      s.ingested <- s.ingested + 1;
      let events = or_bad "bad-request" (Msg.sched_of_string sched) in
      let cfg, _ =
        Execution.apply s.proto (Config.initial s.proto ~inputs:s.inputs) events
      in
      let raw = Ckey.to_raw (Ckey.pack s.pk cfg) in
      let tbl = visited_for s shard in
      if Hashtbl.mem tbl raw then begin
        s.dup_hits <- s.dup_hits + 1;
        Buffer.add_char flags '0'
      end
      else begin
        Hashtbl.replace tbl raw ();
        s.inserted <- s.inserted + 1;
        Buffer.add_char flags '1';
        let idx = base + i in
        Hashtbl.replace s.pending idx (cfg, events);
        if do_examine then begin
          s.examined <- s.examined + 1;
          match s.skind with
          | Exam ex ->
            let vio, probes = Explore.examine ex cfg ~schedule:events in
            let entry =
              [ ("i", Json.Int idx); ("p", Json.Int probes) ]
              @
              match vio with
              | None -> []
              | Some v -> [ ("v", Msg.violation_payload_to_json v) ]
            in
            exams := Json.Obj entry :: !exams
          | Reach (v, _) ->
            if Valency.decides cfg v then
              exams := Json.Obj [ ("i", Json.Int idx); ("d", Json.Bool true) ] :: !exams
        end
      end)
    cands;
  Obs.set_int sp "cands" (List.length cands);
  Obs.close sp;
  Obs.Metrics.incr ~by:(List.length cands) "cluster.ingested";
  Json.Obj
    [ ("flags", Json.Str (Buffer.contents flags));
      ("exams", Json.List (List.rev !exams)) ]

let successor_cands s cfg events =
  let pack (e, cfg') =
    { Msg.shard = Shard.owner ~shards:s.shards (Ckey.pack s.pk cfg');
      sched = Msg.sched_to_string (events @ [ e ]) }
  in
  match s.skind with
  | Exam _ -> List.map pack (Explore.successors s.proto cfg)
  | Reach (_, ps) -> List.map pack (Valency.successors_within s.proto cfg ps)

let handle_expand (Search s) doc =
  let items = or_bad "bad-request" (Msg.get_list doc "items") in
  let sp = Obs.enter ~cat:"cluster" "cluster.expand" in
  let out =
    List.map
      (fun item ->
        let idx =
          match Json.to_int_opt item with
          | Some i -> i
          | None -> bad "bad-request" "items must be integers"
        in
        match Hashtbl.find_opt s.pending idx with
        | None -> bad "bad-request" (Printf.sprintf "no pending item %d" idx)
        | Some (cfg, events) ->
          s.expanded <- s.expanded + 1;
          let succs = successor_cands s cfg events in
          Json.Obj [ ("i", Json.Int idx); ("c", Msg.cands_to_json succs) ])
      items
  in
  Obs.set_int sp "items" (List.length items);
  Obs.close sp;
  Obs.Metrics.incr ~by:(List.length items) "cluster.expanded";
  Json.Obj [ ("out", Json.List out) ]

let handle_steal_export (Search s) doc =
  let shard = or_bad "bad-request" (Msg.get_int doc "shard") in
  let keys =
    match Hashtbl.find_opt s.visited shard with
    | None -> []
    | Some tbl ->
      let ks = Hashtbl.fold (fun raw () acc -> Msg.hex_encode raw :: acc) tbl [] in
      Hashtbl.remove s.visited shard;
      (* sorted so the export is deterministic — steals must not make a
         run depend on hash-table iteration order *)
      List.sort String.compare ks
  in
  s.steals_out <- s.steals_out + 1;
  Obs.Metrics.incr "cluster.steals_out";
  Json.Obj [ ("keys", Json.List (List.map (fun k -> Json.Str k) keys)) ]

let handle_steal_import (Search s) doc =
  let shard = or_bad "bad-request" (Msg.get_int doc "shard") in
  let keys = or_bad "bad-request" (Msg.get_list doc "keys") in
  let tbl = visited_for s shard in
  List.iter
    (fun k ->
      match Json.to_str_opt k with
      | None -> bad "bad-request" "keys must be hex strings"
      | Some hex ->
        Hashtbl.replace tbl (or_bad "bad-request" (Msg.hex_decode hex)) ())
    keys;
  s.steals_in <- s.steals_in + 1;
  Obs.Metrics.incr "cluster.steals_in";
  Json.Obj [ ("imported", Json.Int (List.length keys)) ]

let stats_json (Search s) =
  Json.Obj
    [
      ("ingested", Json.Int s.ingested);
      ("examined", Json.Int s.examined);
      ("expanded", Json.Int s.expanded);
      ("inserted", Json.Int s.inserted);
      ("dup_hits", Json.Int s.dup_hits);
      ("steals_out", Json.Int s.steals_out);
      ("steals_in", Json.Int s.steals_in);
      ("shards_held", Json.Int (Hashtbl.length s.visited));
    ]

(* --- dispatch ------------------------------------------------------------ *)

let mutating = function
  | "cluster-ingest" | "cluster-expand" | "cluster-steal-export"
  | "cluster-steal-import" -> true
  | _ -> false

let handle t payload =
  match Json.of_string payload with
  | Error msg -> err ~id:0 "bad-json" msg
  | Ok doc -> (
    let id =
      Option.value ~default:0 (Option.bind (Json.member "id" doc) Json.to_int_opt)
    in
    try
      let op = or_bad "bad-request" (Msg.get_str doc "op") in
      match op with
      | "cluster-ping" ->
        Msg.ok_result ~id
          (Json.Obj
             [ ("pong", Json.Bool true);
               ("searches", Json.Int (Hashtbl.length t.searches)) ])
      | "cluster-init" -> Msg.ok_result ~id (handle_init t doc)
      | "cluster-finish" -> (
        let search_id = or_bad "bad-request" (Msg.get_str doc "search") in
        match Hashtbl.find_opt t.searches search_id with
        | None ->
          (* a lost finish reply retried after the drop: still success *)
          Msg.ok_result ~id (Json.Obj [ ("already_finished", Json.Bool true) ])
        | Some packed ->
          Hashtbl.remove t.searches search_id;
          log t "finish %s" search_id;
          Msg.ok_result ~id (Json.Obj [ ("stats", stats_json packed) ]))
      | op when mutating op -> (
        let search_id = or_bad "bad-request" (Msg.get_str doc "search") in
        let seq = or_bad "bad-request" (Msg.get_int doc "seq") in
        match Hashtbl.find_opt t.searches search_id with
        | None -> err ~id "unknown-search" search_id
        | Some (Search s as packed) ->
          if seq = s.last_seq then begin
            (* duplicate delivery (a retry whose original answer was
               lost): replay the memoized reply byte-for-byte *)
            match s.last_reply with
            | Some r -> r
            | None -> err ~id "stale-seq" "duplicate of an unanswered seq"
          end
          else if seq < s.last_seq then err ~id "stale-seq" (string_of_int seq)
          else begin
            let result =
              match op with
              | "cluster-ingest" -> handle_ingest packed doc
              | "cluster-expand" -> handle_expand packed doc
              | "cluster-steal-export" -> handle_steal_export packed doc
              | "cluster-steal-import" -> handle_steal_import packed doc
              | _ -> assert false
            in
            let reply = Msg.ok_result ~id result in
            s.last_seq <- seq;
            s.last_reply <- Some reply;
            reply
          end)
      | op -> err ~id "bad-request" (Printf.sprintf "unknown op %S" op)
    with
    | Bad (code, msg) -> err ~id code msg
    | exn -> err ~id "internal" (Printexc.to_string exn))

(* --- TCP server ---------------------------------------------------------- *)

module Evloop = Ts_service.Evloop
module Frame = Ts_service.Frame

type config = {
  host : string;
  port : int;
  verbose : bool;
}

let default_config = { host = "127.0.0.1"; port = 0; verbose = false }

type server = {
  bound_port : int;
  stop_flag : bool Atomic.t;
  mutable loop_domain : unit Domain.t option;
  mutable waited : bool;
}

let start config =
  let worker = create ~verbose:config.verbose () in
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  (try
     Unix.bind lsock
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port))
   with e ->
     (try Unix.close lsock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen lsock 64;
  let bound_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let evloop = Evloop.create ~lsock in
  let stop_flag = Atomic.make false in
  let srv = { bound_port; stop_flag; loop_domain = None; waited = false } in
  srv.loop_domain <-
    Some
      (Domain.spawn (fun () ->
           Evloop.run evloop
             ~stop:(fun () -> Atomic.get stop_flag)
             ~on_payload:(fun _conn payload ->
               (* every answer is produced on the loop: worker compute is
                  the deliberately single-threaded shard-local step, and
                  one coordinator talks to us strictly sequentially *)
               Evloop.Now (handle worker payload))
             ~on_frame_error:(fun e ->
               Some
                 (Json.to_string
                    (Ts_service.Response.error ~id:None ~code:"bad-frame"
                       (Frame.error_to_string e))))));
  Printf.printf "cluster worker: listening on %s:%d\n%!" config.host bound_port;
  srv

let port srv = srv.bound_port
let request_stop srv = Atomic.set srv.stop_flag true

let wait srv =
  if not srv.waited then begin
    srv.waited <- true;
    match srv.loop_domain with Some d -> Domain.join d | None -> ()
  end

let stop srv =
  request_stop srv;
  wait srv
