open Ts_mutex

type encoding = {
  bits : string * int;
  events : int;
}

type event =
  | Start of int
  | Run of int * int  (* actor, consecutive steps *)

(* Merge consecutive steps by the same process into runs. *)
let events_of_log log =
  List.fold_left
    (fun acc entry ->
      match entry, acc with
      | Arena.Started p, _ -> Start p :: acc
      | Arena.Stepped (p, _), Run (q, len) :: rest when q = p -> Run (p, len + 1) :: rest
      | Arena.Stepped (p, _), _ -> Run (p, 1) :: acc)
    [] log
  |> List.rev

(* Move-to-front over process ids: recently scheduled processes get small
   ranks and hence short gamma codes. *)
module Mtf = struct
  type t = int list ref

  let create n : t = ref (List.init n Fun.id)

  let rank (t : t) p =
    let rec go i = function
      | [] -> invalid_arg "Mtf.rank: unknown process"
      | q :: _ when q = p -> i
      | _ :: rest -> go (i + 1) rest
    in
    let r = go 0 !t in
    t := p :: List.filter (fun q -> q <> p) !t;
    r

  let nth (t : t) r =
    let p = List.nth !t r in
    t := p :: List.filter (fun q -> q <> p) !t;
    p
end

let encode (o : Arena.outcome) =
  let events = events_of_log o.Arena.step_log in
  let w = Bits.writer () in
  let mtf = Mtf.create o.Arena.n in
  Bits.write_gamma w o.Arena.n;
  Bits.write_gamma w (List.length events + 1);
  List.iter
    (fun e ->
      match e with
      | Start p ->
        Bits.write_gamma w (Mtf.rank mtf p + 1);
        Bits.write_bit w false
      | Run (p, len) ->
        Bits.write_gamma w (Mtf.rank mtf p + 1);
        Bits.write_bit w true;
        Bits.write_gamma w len)
    events;
  { bits = Bits.contents w; events = List.length events }

let decode alg enc =
  let r = Bits.reader enc.bits in
  let n = Bits.read_gamma r in
  if n <> alg.Algorithm.num_processes then
    invalid_arg "Codec.decode: process count mismatch";
  let nevents = Bits.read_gamma r - 1 in
  let mtf = Mtf.create n in
  let session = Arena.session alg in
  for _ = 1 to nevents do
    let p = Mtf.nth mtf (Bits.read_gamma r - 1) in
    let is_run = Bits.read_bit r in
    if not is_run then Arena.start_proc session p
    else
      let len = Bits.read_gamma r in
      (* the run length came from the encoder counting real steps, so the
         process may complete only on the run's last step; [`Done] earlier
         means the bits don't describe an execution of this algorithm *)
      for k = 1 to len do
        match Arena.step_proc session p with
        | `Continues -> ()
        | `Done ->
          if k < len then
            invalid_arg "Codec.decode: process finished mid-run (corrupt encoding)"
      done
  done;
  Arena.session_outcome session

let round_trip alg (o : Arena.outcome) =
  let enc = encode o in
  match decode alg enc with
  | exception exn -> Error ("decode failed: " ^ Printexc.to_string exn)
  | o' ->
    if o'.Arena.cs_order <> o.Arena.cs_order then
      Error "decoded execution has a different critical-section order"
    else if o'.Arena.cost <> o.Arena.cost then Error "decoded execution has a different cost"
    else if o'.Arena.steps <> o.Arena.steps then Error "decoded execution has a different step count"
    else Ok enc
