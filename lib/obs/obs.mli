(** The engine's observability core: one event model for profiling spans,
    typed metrics, engine-log instants and the race detector's memory
    access log.

    Every instrumented layer — the valency oracle, the lemma and theorem
    constructions, the checker's reachability searches, the simulator, the
    domain fan-out — reports into the single global collector defined
    here.  Three independent {e interests} can be armed:

    - {b spans} ({!start_tracing}): hierarchical begin/end intervals with
      parent links, per-domain attribution and structured attributes;
      drained as {!event} lists and exported by {!Export} as phase-summary
      tables or Chrome [trace_event] JSON;
    - {b metrics} ({!Metrics.start}): named counters, gauges and
      histograms, snapshotted as a machine-readable blob the bench
      harness embeds in its [--json] output;
    - {b accesses} ({!start_accesses}): the shared-memory access and
      fork/join events the vector-clock race detector consumes
      ([Ts_model.Trace] is a thin facade over this buffer).

    All three share one event stream, so the analysis gate and the
    profiler consume the same model; draining one interest never discards
    another's buffered events.

    {b Cost discipline.}  Disarmed, every instrumentation point is one
    atomic load and {e allocates nothing}: {!enter} returns the static
    {!null_span}, {!close} and the attribute setters test the span id and
    return, {!Metrics.incr} tests the armed bit and returns.  A traced run
    must therefore be observationally identical to an untraced one —
    [test/suite_obs.ml] proves this differentially on the theorem and
    checker engines.  The one caveat: passing a {e computed} [float] to
    {!Metrics.observe_ms} boxes it at the call site even when disarmed, so
    float-valued call sites should guard with {!Metrics.armed}.

    Armed, events are appended to a mutex-protected buffer; any domain may
    record, which is what makes the per-domain fan-out spans of
    [Ts_model.Par] visible.  A span must be closed on the domain that
    entered it (the implicit parent stack is domain-local). *)

(** A structured span attribute value. *)
type attr =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

(** Memory-access kinds, for the race detector. *)
type kind =
  | Read
  | Write

(** The unified event stream.  Spans and instants carry wall-clock
    timestamps (seconds, [Unix.gettimeofday]); access and task events are
    untimed — the race detector needs only their order. *)
type event =
  | Span_open of {
      id : int;  (** process-unique span id *)
      parent : int;  (** enclosing span id on the same domain, or [-1] *)
      domain : int;  (** id of the domain that entered the span *)
      name : string;  (** e.g. ["lemma4"], ["valency.search"] *)
      cat : string;  (** coarse grouping, e.g. ["lemma"], ["explore"] *)
      t : float;  (** entry timestamp *)
    }
  | Span_close of {
      id : int;  (** id of the matching {!Span_open} *)
      t : float;  (** exit timestamp *)
      attrs : (string * attr) list;  (** attributes set during the span *)
    }
  | Instant of {
      domain : int;
      name : string;  (** the payload, e.g. an engine-log line *)
      cat : string;  (** e.g. ["log.info"] *)
      t : float;
    }
  | Access of { domain : int; loc : string; kind : kind; atomic : bool }
      (** A shared-memory access by [domain] at interned location [loc];
          accesses via [Atomic] never race with each other. *)
  | Fork of { parent : int; token : int }
      (** The parent domain is about to spawn task [token]. *)
  | Begin of { child : int; token : int }
      (** First event of the spawned task: inherits the parent's clock. *)
  | End of { child : int; token : int }
      (** Last event of the spawned task. *)
  | Join of { parent : int; token : int }
      (** The parent has joined task [token]: absorbs the child's clock. *)

(** {1 Spans} *)

type span
(** A handle to an open interval; attributes accumulate on it until
    {!close}.  Obtained from {!enter}; when tracing is disarmed every
    handle is the shared {!null_span} and all operations on it are
    no-ops. *)

(** The inert span: closing it or setting attributes on it does nothing.
    This is what {!enter} returns while tracing is disarmed. *)
val null_span : span

(** Whether span tracing is currently armed. *)
val tracing : unit -> bool

(** Arm span tracing, discarding previously buffered span/instant events
    (access events are untouched). *)
val start_tracing : unit -> unit

(** Disarm span tracing and drain the buffered span/instant events, oldest
    first.  Access events stay buffered for {!stop_accesses}. *)
val stop_tracing : unit -> event list

(** [enter ?cat name] opens a span on the calling domain.  The parent link
    is the innermost span currently open on this domain.  [cat] defaults
    to ["engine"]. *)
val enter : ?cat:string -> string -> span

(** [close sp] records the span's end.  Must run on the domain that
    entered it.  Closing {!null_span} is a no-op. *)
val close : span -> unit

(** [with_span ?cat name f] is [f sp] bracketed by {!enter}/{!close},
    closing on exceptions too.  Note the closure argument allocates at the
    call site even when disarmed — use explicit {!enter}/{!close} on hot
    paths. *)
val with_span : ?cat:string -> string -> (span -> 'a) -> 'a

(** [set_int sp k v] attaches attribute [k = v] to the span.  No-op (and
    allocation-free) on {!null_span}. *)
val set_int : span -> string -> int -> unit

val set_bool : span -> string -> bool -> unit
val set_str : span -> string -> string -> unit

(** [instant ?cat name] records a zero-duration event (engine-log lines
    use [cat "log.<level>"]).  No-op while tracing is disarmed. *)
val instant : ?cat:string -> string -> unit

(** {1 Metrics} *)

module Metrics : sig
  (** Typed counters, gauges and histograms, keyed by name.  The registry
      is global and mutex-protected; recording is a no-op (one atomic
      load) while disarmed. *)

  (** Histogram summary: observation count, sum, and range. *)
  type histo = {
    count : int;
    sum : float;
    min : float;
    max : float;
  }

  (** A point-in-time copy of the registry, each section sorted by name. *)
  type snapshot = {
    counters : (string * int) list;
    gauges : (string * int) list;
    histograms : (string * histo) list;
  }

  (** Whether metrics recording is armed.  Guard call sites that compute a
      float argument with this. *)
  val armed : unit -> bool

  (** Arm recording, clearing the registry. *)
  val start : unit -> unit

  (** Disarm recording and return the final snapshot. *)
  val stop : unit -> snapshot

  (** Copy the registry without disarming. *)
  val snapshot : unit -> snapshot

  (** [incr ?by name] adds [by] (default 1) to counter [name]. *)
  val incr : ?by:int -> string -> unit

  (** [gauge name v] sets gauge [name] to its latest value [v]. *)
  val gauge : string -> int -> unit

  (** [gauge_max name v] raises gauge [name] to [v] if [v] is larger —
      high-water marks (peak frontier, deepest configuration). *)
  val gauge_max : string -> int -> unit

  (** [observe_ms name v] adds an observation (milliseconds by
      convention) to histogram [name]. *)
  val observe_ms : string -> float -> unit

  val pp_snapshot : Format.formatter -> snapshot -> unit
end

(** {1 Memory-access log (race-detector feed)}

    [Ts_model.Trace] re-exports these under the engine's historical names;
    the vector-clock checker in [Ts_analysis.Race] consumes the drained
    events. *)

(** Whether access tracing is currently armed. *)
val accesses : unit -> bool

(** Arm access tracing, discarding previously buffered access/task events
    (span events are untouched). *)
val start_accesses : unit -> unit

(** Disarm access tracing and drain the buffered access/task events,
    oldest first.  Span/instant events stay buffered for
    {!stop_tracing}. *)
val stop_accesses : unit -> event list

(** [access ~loc kind ~atomic] logs a shared-memory access by the calling
    domain.  No-op (one atomic load) when disarmed. *)
val access : loc:string -> kind -> atomic:bool -> unit

(** [fork ()] allocates a task token and logs the {!Fork} edge.  Tokens
    are allocated even when disarmed (an atomic bump is cheaper than
    branching at every fork site). *)
val fork : unit -> int

(** [begin_task t] / [end_task t] bracket the spawned task's body. *)
val begin_task : int -> unit

val end_task : int -> unit

(** [join t] logs that the calling domain has joined task [t]. *)
val join : int -> unit

(** [fresh_loc prefix] is a process-unique location name
    ["prefix#<id>"] while access tracing is armed, and just [prefix]
    while disarmed (so the disarmed engine allocates nothing per
    structure).  Give every independently-owned mutable structure its own
    location so distinct per-worker tables never alias in the race
    detector. *)
val fresh_loc : string -> string

(** Human-readable rendering of any unified-stream event. *)
val pp_event : Format.formatter -> event -> unit
