(* Exporters over drained Obs event streams (see export.mli).  The JSON
   here is emitted directly into a Buffer: the observability layer sits
   below every other library in the repo, so it cannot borrow
   Ts_analysis.Json, and the two formats it speaks (Chrome trace_event,
   the metrics blob) are flat enough not to need a value tree. *)

let metrics_version = 1

(* RFC 8259 string escaping. *)
let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_attr buf = function
  | Obs.Int i -> Buffer.add_string buf (string_of_int i)
  | Obs.Float f -> Buffer.add_string buf (Printf.sprintf "%g" f)
  | Obs.Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Obs.Str s -> add_escaped buf s

let add_args buf attrs =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_escaped buf k;
      Buffer.add_char buf ':';
      add_attr buf v)
    attrs;
  Buffer.add_char buf '}'

(* --- Chrome trace_event ------------------------------------------------ *)

type open_info = {
  o_domain : int;
  o_name : string;
  o_cat : string;
}

let chrome_trace events =
  (* timestamps are microseconds relative to the earliest timed event *)
  let t0 =
    List.fold_left
      (fun acc e ->
        match e with
        | Obs.Span_open { t; _ } | Obs.Span_close { t; _ } | Obs.Instant { t; _ } ->
          Float.min acc t
        | _ -> acc)
      infinity events
  in
  let us t = (t -. t0) *. 1e6 in
  let opens : (int, open_info) Hashtbl.t = Hashtbl.create 64 in
  let domains : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e with
      | Obs.Span_open { id; domain; name; cat; _ } ->
        Hashtbl.replace opens id { o_domain = domain; o_name = name; o_cat = cat };
        Hashtbl.replace domains domain ()
      | Obs.Instant { domain; _ } -> Hashtbl.replace domains domain ()
      | _ -> ())
    events;
  let buf = Buffer.create 4096 in
  let first = ref true in
  let emit f =
    if !first then first := false else Buffer.add_string buf ",\n    ";
    f buf
  in
  Buffer.add_string buf "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n    ";
  (* one named track per domain, so the fan-out's load balance is visible *)
  Hashtbl.fold (fun d () acc -> d :: acc) domains []
  |> List.sort compare
  |> List.iter (fun d ->
         emit (fun buf ->
             Buffer.add_string buf
               (Printf.sprintf
                  "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
                  d d)));
  List.iter
    (fun e ->
      match e with
      | Obs.Span_open { id; domain; name; cat; t; _ } ->
        ignore id;
        emit (fun buf ->
            Buffer.add_string buf "{\"ph\":\"B\",\"name\":";
            add_escaped buf name;
            Buffer.add_string buf ",\"cat\":";
            add_escaped buf cat;
            Buffer.add_string buf
              (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"ts\":%.1f}" domain (us t)))
      | Obs.Span_close { id; t; attrs } ->
        (match Hashtbl.find_opt opens id with
         | None -> () (* close without an open in this drain: drop *)
         | Some o ->
           emit (fun buf ->
               Buffer.add_string buf "{\"ph\":\"E\",\"name\":";
               add_escaped buf o.o_name;
               Buffer.add_string buf ",\"cat\":";
               add_escaped buf o.o_cat;
               Buffer.add_string buf
                 (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"ts\":%.1f," o.o_domain (us t));
               add_args buf attrs;
               Buffer.add_char buf '}'))
      | Obs.Instant { domain; name; cat; t } ->
        emit (fun buf ->
            Buffer.add_string buf "{\"ph\":\"i\",\"s\":\"t\",\"name\":";
            add_escaped buf name;
            Buffer.add_string buf ",\"cat\":";
            add_escaped buf cat;
            Buffer.add_string buf
              (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"ts\":%.1f}" domain (us t)))
      | Obs.Access _ | Obs.Fork _ | Obs.Begin _ | Obs.End _ | Obs.Join _ ->
        (* untimed events have no place on a timeline *)
        ())
    events;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* --- phase-time breakdown ---------------------------------------------- *)

type phase = {
  name : string;
  cat : string;
  count : int;
  total_ms : float;
  mean_ms : float;
  max_ms : float;
}

let phases events =
  let open_t : (int, float * string * string) Hashtbl.t = Hashtbl.create 64 in
  let agg : (string, string * int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun e ->
      match e with
      | Obs.Span_open { id; name; cat; t; _ } -> Hashtbl.replace open_t id (t, name, cat)
      | Obs.Span_close { id; t; _ } ->
        (match Hashtbl.find_opt open_t id with
         | None -> ()
         | Some (t0, name, cat) ->
           Hashtbl.remove open_t id;
           let dur = (t -. t0) *. 1e3 in
           (match Hashtbl.find_opt agg name with
            | Some (_, n, total, mx) ->
              incr n;
              total := !total +. dur;
              if dur > !mx then mx := dur
            | None -> Hashtbl.replace agg name (cat, ref 1, ref dur, ref dur)))
      | _ -> ())
    events;
  Hashtbl.fold
    (fun name (cat, n, total, mx) acc ->
      {
        name;
        cat;
        count = !n;
        total_ms = !total;
        mean_ms = !total /. float_of_int !n;
        max_ms = !mx;
      }
      :: acc)
    agg []
  |> List.sort (fun a b -> compare b.total_ms a.total_ms)

let phase_table events =
  let ps = phases events in
  let buf = Buffer.create 512 in
  let grand = List.fold_left (fun acc p -> acc +. p.total_ms) 0.0 ps in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %-10s %7s %12s %11s %11s %6s\n" "phase" "cat" "count"
       "total ms" "mean ms" "max ms" "%");
  Buffer.add_string buf (String.make 90 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %-10s %7d %12.2f %11.3f %11.3f %6.1f\n" p.name p.cat
           p.count p.total_ms p.mean_ms p.max_ms
           (if grand > 0.0 then 100.0 *. p.total_ms /. grand else 0.0)))
    ps;
  if ps = [] then Buffer.add_string buf "(no closed spans captured)\n";
  Buffer.contents buf

(* --- metrics blob ------------------------------------------------------ *)

let metrics_json (s : Obs.Metrics.snapshot) =
  let buf = Buffer.create 512 in
  let obj fields render =
    Buffer.add_char buf '{';
    List.iteri
      (fun i kv ->
        if i > 0 then Buffer.add_char buf ',';
        render kv)
      fields;
    Buffer.add_char buf '}'
  in
  Buffer.add_string buf (Printf.sprintf "{\"version\":%d,\"counters\":" metrics_version);
  obj s.Obs.Metrics.counters (fun (k, v) ->
      add_escaped buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int v));
  Buffer.add_string buf ",\"gauges\":";
  obj s.Obs.Metrics.gauges (fun (k, v) ->
      add_escaped buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int v));
  Buffer.add_string buf ",\"histograms\":";
  obj s.Obs.Metrics.histograms (fun (k, (h : Obs.Metrics.histo)) ->
      add_escaped buf k;
      Buffer.add_string buf
        (Printf.sprintf ":{\"count\":%d,\"sum_ms\":%.3f,\"min_ms\":%.3f,\"max_ms\":%.3f}"
           h.Obs.Metrics.count h.Obs.Metrics.sum h.Obs.Metrics.min h.Obs.Metrics.max));
  Buffer.add_char buf '}';
  Buffer.contents buf
