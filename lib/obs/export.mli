(** Exporters over a drained {!Obs} event stream.

    Three formats, one source of truth:

    - {!chrome_trace} — Chrome [trace_event] JSON, loadable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}: spans
      become nested B/E intervals per domain track, instants become [i]
      markers, attributes become [args];
    - {!phase_table} / {!phases} — the human-readable phase-time
      breakdown printed by [tightspace trace] and the [--metrics] flags;
    - {!metrics_json} — the machine-readable metrics blob the bench
      harness embeds under its versioned ["metrics_v"] key.

    All functions are pure over the event list / snapshot; untimed events
    (accesses, fork/join edges) are skipped by the timed exporters. *)

(** Version of the {!metrics_json} blob format, embedded as ["version"]. *)
val metrics_version : int

(** [chrome_trace events] renders the span/instant events as a Chrome
    [trace_event] JSON document ([{"traceEvents": [...], ...}]).
    Timestamps are microseconds relative to the earliest event; each
    domain becomes one named thread track.  Unmatched opens (a span still
    open when tracing stopped) export as begin events without an end,
    which the viewers tolerate. *)
val chrome_trace : Obs.event list -> string

(** One row of the phase-time breakdown: all spans sharing a name,
    aggregated. *)
type phase = {
  name : string;
  cat : string;
  count : int;  (** spans with this name *)
  total_ms : float;  (** summed wall-clock duration *)
  mean_ms : float;
  max_ms : float;
}

(** Aggregate closed spans by name, sorted by descending total duration.
    Spans left open (no matching close) are dropped. *)
val phases : Obs.event list -> phase list

(** [phase_table events] is {!phases} rendered as an aligned text table
    with a percentage-of-total column. *)
val phase_table : Obs.event list -> string

(** [metrics_json snapshot] is the compact machine-readable metrics blob:
    [{"version": N, "counters": {...}, "gauges": {...},
    "histograms": {"name": {"count": ..., "sum_ms": ..., "min_ms": ...,
    "max_ms": ...}, ...}}].  Keys are sorted (snapshots are), so equal
    snapshots render byte-identically. *)
val metrics_json : Obs.Metrics.snapshot -> string
