(* The global observability collector (see obs.mli).  One atomic interest
   mask — bit 0 spans, bit 1 metrics, bit 2 accesses — consulted lock-free
   on every instrumentation point, and one mutex-protected event buffer
   shared by the profiler and the race detector.  Contention only matters
   while an interest is armed (analysis runs, `tightspace trace`), never
   on hot paths. *)

type attr =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string

type kind =
  | Read
  | Write

type event =
  | Span_open of {
      id : int;
      parent : int;
      domain : int;
      name : string;
      cat : string;
      t : float;
    }
  | Span_close of { id : int; t : float; attrs : (string * attr) list }
  | Instant of { domain : int; name : string; cat : string; t : float }
  | Access of { domain : int; loc : string; kind : kind; atomic : bool }
  | Fork of { parent : int; token : int }
  | Begin of { child : int; token : int }
  | End of { child : int; token : int }
  | Join of { parent : int; token : int }

(* --- the shared buffer ------------------------------------------------- *)

let spans_bit = 1
let metrics_bit = 2
let access_bit = 4
let mask = Atomic.make 0
let armed bit = Atomic.get mask land bit <> 0
let lock = Mutex.create ()
let events : event list ref = ref [] (* newest first; guarded by [lock] *)
let next_span = Atomic.make 0
let next_token = Atomic.make 0
let next_loc = Atomic.make 0

let self () = (Domain.self () :> int)
let now () = Unix.gettimeofday ()

let push e =
  Mutex.lock lock;
  events := e :: !events;
  Mutex.unlock lock

let is_access_event = function
  | Access _ | Fork _ | Begin _ | End _ | Join _ -> true
  | Span_open _ | Span_close _ | Instant _ -> false

(* Drop this interest's stale events, then arm.  The other interest's
   buffered events survive: draining one stream never clobbers the
   other. *)
let start_interest bit keep =
  Mutex.lock lock;
  events := List.filter keep !events;
  Atomic.set mask (Atomic.get mask lor bit);
  Mutex.unlock lock

(* Disarm, then split the buffer: return this interest's events (oldest
   first), keep the rest buffered. *)
let stop_interest bit mine =
  Mutex.lock lock;
  Atomic.set mask (Atomic.get mask land lnot bit);
  let ours, theirs = List.partition mine !events in
  events := theirs;
  Mutex.unlock lock;
  List.rev ours

(* --- spans ------------------------------------------------------------- *)

type span = {
  id : int; (* -1 = the inert null span *)
  mutable attrs : (string * attr) list;
}

let null_span = { id = -1; attrs = [] }
let tracing () = armed spans_bit
let start_tracing () = start_interest spans_bit is_access_event
let stop_tracing () = stop_interest spans_bit (fun e -> not (is_access_event e))

(* The implicit parent stack is domain-local, so concurrent workers each
   nest their own spans. *)
let stack_key : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let enter ?(cat = "engine") name =
  if not (tracing ()) then null_span
  else begin
    let id = Atomic.fetch_and_add next_span 1 in
    let st = Domain.DLS.get stack_key in
    let parent = match !st with [] -> -1 | p :: _ -> p in
    st := id :: !st;
    push (Span_open { id; parent; domain = self (); name; cat; t = now () });
    { id; attrs = [] }
  end

let close sp =
  if sp.id >= 0 then begin
    let st = Domain.DLS.get stack_key in
    (match !st with
     | top :: rest when top = sp.id -> st := rest
     | l -> st := List.filter (fun i -> i <> sp.id) l);
    if tracing () then
      push (Span_close { id = sp.id; t = now (); attrs = List.rev sp.attrs })
  end

let with_span ?cat name f =
  let sp = enter ?cat name in
  match f sp with
  | v ->
    close sp;
    v
  | exception e ->
    close sp;
    raise e

let set_attr sp k v = if sp.id >= 0 then sp.attrs <- (k, v) :: sp.attrs
let set_int sp k v = if sp.id >= 0 then set_attr sp k (Int v)
let set_bool sp k v = if sp.id >= 0 then set_attr sp k (Bool v)
let set_str sp k v = if sp.id >= 0 then set_attr sp k (Str v)

let instant ?(cat = "engine") name =
  if tracing () then push (Instant { domain = self (); name; cat; t = now () })

(* --- metrics ----------------------------------------------------------- *)

module Metrics = struct
  type histo = {
    count : int;
    sum : float;
    min : float;
    max : float;
  }

  type snapshot = {
    counters : (string * int) list;
    gauges : (string * int) list;
    histograms : (string * histo) list;
  }

  (* The registry shares the event-buffer mutex: recording is rare enough
     (end-of-search, end-of-span) that one lock keeps the story simple. *)
  let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32
  let gauges : (string, int ref) Hashtbl.t = Hashtbl.create 16
  let histograms : (string, histo ref) Hashtbl.t = Hashtbl.create 16
  let armed () = armed metrics_bit

  let clear () =
    Hashtbl.reset counters;
    Hashtbl.reset gauges;
    Hashtbl.reset histograms

  let start () =
    Mutex.lock lock;
    clear ();
    Atomic.set mask (Atomic.get mask lor metrics_bit);
    Mutex.unlock lock

  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, !v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let snapshot_locked () =
    { counters = sorted counters; gauges = sorted gauges; histograms = sorted histograms }

  let snapshot () =
    Mutex.lock lock;
    let s = snapshot_locked () in
    Mutex.unlock lock;
    s

  let stop () =
    Mutex.lock lock;
    Atomic.set mask (Atomic.get mask land lnot metrics_bit);
    let s = snapshot_locked () in
    clear ();
    Mutex.unlock lock;
    s

  let cell tbl name zero =
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
      let r = ref zero in
      Hashtbl.replace tbl name r;
      r

  let incr ?(by = 1) name =
    if armed () then begin
      Mutex.lock lock;
      let r = cell counters name 0 in
      r := !r + by;
      Mutex.unlock lock
    end

  let gauge name v =
    if armed () then begin
      Mutex.lock lock;
      let r = cell gauges name v in
      r := v;
      Mutex.unlock lock
    end

  let gauge_max name v =
    if armed () then begin
      Mutex.lock lock;
      let r = cell gauges name v in
      if v > !r then r := v;
      Mutex.unlock lock
    end

  let observe_ms name v =
    if armed () then begin
      Mutex.lock lock;
      (match Hashtbl.find_opt histograms name with
       | Some r ->
         let h = !r in
         r :=
           {
             count = h.count + 1;
             sum = h.sum +. v;
             min = Float.min h.min v;
             max = Float.max h.max v;
           }
       | None ->
         Hashtbl.replace histograms name
           (ref { count = 1; sum = v; min = v; max = v }));
      Mutex.unlock lock
    end

  let pp_snapshot ppf s =
    let sec title = Fmt.pf ppf "@,%s:" title in
    Fmt.pf ppf "@[<v>";
    if s.counters <> [] then begin
      sec "counters";
      List.iter (fun (k, v) -> Fmt.pf ppf "@,  %-36s %12d" k v) s.counters
    end;
    if s.gauges <> [] then begin
      sec "gauges";
      List.iter (fun (k, v) -> Fmt.pf ppf "@,  %-36s %12d" k v) s.gauges
    end;
    if s.histograms <> [] then begin
      sec "histograms (ms)";
      List.iter
        (fun (k, h) ->
          Fmt.pf ppf "@,  %-36s n=%d sum=%.2f min=%.3f max=%.3f" k h.count h.sum
            h.min h.max)
        s.histograms
    end;
    Fmt.pf ppf "@]"
end

(* --- memory-access log ------------------------------------------------- *)

let accesses () = armed access_bit
let start_accesses () = start_interest access_bit (fun e -> not (is_access_event e))
let stop_accesses () = stop_interest access_bit is_access_event

let access ~loc kind ~atomic =
  if accesses () then push (Access { domain = self (); loc; kind; atomic })

let fork () =
  let token = Atomic.fetch_and_add next_token 1 in
  if accesses () then push (Fork { parent = self (); token });
  token

let begin_task token = if accesses () then push (Begin { child = self (); token })
let end_task token = if accesses () then push (End { child = self (); token })
let join token = if accesses () then push (Join { parent = self (); token })

let fresh_loc prefix =
  if accesses () then Printf.sprintf "%s#%d" prefix (Atomic.fetch_and_add next_loc 1)
  else prefix

(* --- printing ---------------------------------------------------------- *)

let pp_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"

let pp_attr ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Bool b -> Fmt.bool ppf b
  | Str s -> Fmt.string ppf s

let pp_event ppf = function
  | Span_open { id; parent; domain; name; cat; t = _ } ->
    Fmt.pf ppf "d%d open s%d<-s%d %s [%s]" domain id parent name cat
  | Span_close { id; attrs; t = _ } ->
    Fmt.pf ppf "close s%d%a" id
      Fmt.(
        list ~sep:nop (fun ppf (k, v) -> Fmt.pf ppf " %s=%a" k pp_attr v))
      attrs
  | Instant { domain; name; cat; t = _ } -> Fmt.pf ppf "d%d instant [%s] %s" domain cat name
  | Access { domain; loc; kind; atomic } ->
    Fmt.pf ppf "d%d %a%s %s" domain pp_kind kind (if atomic then "[atomic]" else "") loc
  | Fork { parent; token } -> Fmt.pf ppf "d%d fork t%d" parent token
  | Begin { child; token } -> Fmt.pf ppf "d%d begin t%d" child token
  | End { child; token } -> Fmt.pf ppf "d%d end t%d" child token
  | Join { parent; token } -> Fmt.pf ppf "d%d join t%d" parent token
