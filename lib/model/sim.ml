type pid = int

type policy =
  | Round_robin
  | Random of Rng.t
  | Solo of pid
  | Alternating of pid * pid

type 's outcome = {
  final : 's Config.t;
  decisions : (pid * Value.t) list;
  steps : int;
  trace : Execution.trace;
  ran_out : bool;
  crashed : pid list;
  rng_state : int64 option;
}

(* A process is runnable if it has neither decided nor crashed. *)
let runnable tracker proto cfg =
  let n = proto.Protocol.num_processes in
  let rec go p acc =
    if p < 0 then acc
    else
      go (p - 1)
        (if Config.has_decided cfg p = None && not (Fault.crashed tracker p) then p :: acc
         else acc)
  in
  go (n - 1) []

let halted tracker cfg p = Config.has_decided cfg p <> None || Fault.crashed tracker p

(* The run is over when every relevant process has decided or crashed:
   crashed processes never decide, so waiting on them would spin forever. *)
let relevant_done tracker proto cfg policy =
  match policy with
  | Round_robin | Random _ -> runnable tracker proto cfg = []
  | Solo p -> halted tracker cfg p
  | Alternating (p, q) -> halted tracker cfg p && halted tracker cfg q

let pick tracker proto cfg policy tick =
  let alive = runnable tracker proto cfg in
  match policy with
  | Round_robin ->
    let n = proto.Protocol.num_processes in
    let rec find k =
      let p = (tick + k) mod n in
      if halted tracker cfg p then find (k + 1) else p
    in
    find 0
  | Random rng -> List.nth alive (Rng.int rng (List.length alive))
  | Solo p -> p
  | Alternating (p, q) ->
    (match List.filter (fun x -> not (halted tracker cfg x)) [ p; q ] with
     | [ x ] -> x
     | [ x; y ] -> if tick mod 2 = 0 then x else y
     | _ -> invalid_arg "Sim.run: alternating processes already halted")

let run ?(faults = Fault.none) proto ~inputs ~policy ~flips ~budget =
  let sp = Ts_obs.Obs.enter ~cat:"sim" "sim.run" in
  let rng_state =
    match policy with Random rng -> Some (Rng.state rng) | _ -> None
  in
  let tracker = Fault.tracker faults in
  let cfg0 = Config.initial proto ~inputs in
  let rec go cfg acc steps =
    Fault.fire tracker proto cfg;
    if relevant_done tracker proto cfg policy then cfg, acc, steps, false
    else if steps >= budget then cfg, acc, steps, true
    else
      let p = pick tracker proto cfg policy steps in
      let coin =
        match Config.poised proto cfg p with
        | Some Action.Flip -> Some (flips ())
        | _ -> None
      in
      let cfg', action = Config.step proto cfg p ~coin in
      Fault.note_step tracker p;
      go cfg' ({ Execution.actor = p; action; coin_used = coin } :: acc) (steps + 1)
  in
  let final, rev_trace, steps, ran_out =
    try go cfg0 [] 0 with e -> Ts_obs.Obs.close sp; raise e
  in
  Ts_obs.Obs.set_int sp "steps" steps;
  Ts_obs.Obs.set_bool sp "ran_out" ran_out;
  Ts_obs.Obs.set_int sp "crashed" (List.length (Fault.crashed_pids tracker));
  Ts_obs.Obs.close sp;
  let decisions =
    List.init proto.Protocol.num_processes (fun p ->
        Option.map (fun v -> p, v) (Config.has_decided final p))
    |> List.filter_map Fun.id
  in
  {
    final;
    decisions;
    steps;
    trace = List.rev rev_trace;
    ran_out;
    crashed = Fault.crashed_pids tracker;
    rng_state;
  }

let agreement outcome =
  match List.sort_uniq Value.compare (List.map snd outcome.decisions) with
  | [ v ] -> Ok v
  | vs -> Error vs

let valid ~inputs v = Array.exists (Value.equal v) inputs
