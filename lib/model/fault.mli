(** Crash-stop fault plans.

    Zhu's model is asynchronous shared memory with crash failures: a
    crashed process simply stops taking steps, its local state and any
    registers it wrote untouched.  A {!plan} describes which processes
    crash and when; {!Sim.run} consults it at every scheduling point, so
    the same plan replays the same crashes under the same schedule.

    Two trigger shapes cover the interesting adversaries:

    - {!After_steps}: crash once the process has taken that many steps —
      the basic crash-at-time-k fault;
    - {!Before_write}: crash the moment the process is poised to write —
      the worst case for covering arguments, since the pending write (and
      the information it would publish) is lost forever.

    Plans are immutable and printable; seeded random plans record their
    seed so a failing storm run can be rebuilt exactly. *)

type pid = int

type trigger =
  | After_steps of int  (** crash once the process has taken this many steps *)
  | Before_write  (** crash when next poised to write (or swap) a register *)

type plan

(** The empty plan: no process ever crashes. *)
val none : plan

(** [of_list crashes] crashes each listed process at its trigger.  A pid
    may appear at most once.
    @raise Invalid_argument on duplicate pids or negative step counts. *)
val of_list : (pid * trigger) list -> plan

(** [crash_after p k] is [of_list [p, After_steps k]]. *)
val crash_after : pid -> int -> plan

(** [crash_before_write p] is [of_list [p, Before_write]]. *)
val crash_before_write : pid -> plan

(** [union a b] crashes everything either plan crashes.
    @raise Invalid_argument if the plans share a pid. *)
val union : plan -> plan -> plan

(** [random ~seed ~n ~t ~max_delay] picks [t] distinct processes out of
    [0..n-1] uniformly (via {!Rng} from [seed]) and crashes each after a
    uniform delay in [0, max_delay] steps.  The seed is recorded in the
    plan and printed by {!pp}, so the storm is replayable.
    @raise Invalid_argument unless [0 <= t <= n]. *)
val random : seed:int -> n:int -> t:int -> max_delay:int -> plan

val crashes : plan -> (pid * trigger) list
val seed : plan -> int option
val is_empty : plan -> bool
val pp : Format.formatter -> plan -> unit

(** A tracker is the mutable per-run state of a plan: which crashes have
    fired and how many steps each process has taken.  One tracker per
    simulation run. *)
type tracker

val tracker : plan -> tracker

(** [fire tr proto cfg] evaluates the pending triggers at a scheduling
    point and marks any that are due as crashed.  A process that has
    already decided cannot crash (its decision stands). *)
val fire : tracker -> 's Protocol.t -> 's Config.t -> unit

(** [note_step tr p] records that [p] took a step. *)
val note_step : tracker -> pid -> unit

val crashed : tracker -> pid -> bool

(** Crashed pids so far, sorted. *)
val crashed_pids : tracker -> pid list
