(** Minimal domain fan-out for the search engine.

    Same [Domain.spawn]/[join] pattern as [Ts_runtime.Atomic_run], but
    dependency-free so the checker and core layers can use it.  Workers
    share no mutable state; results are reassembled in input order, so a
    parallel run is observationally identical to a serial one.  Workers
    catch everything and every spawned domain is joined before control
    returns, so a raising item never leaks a domain. *)

(** The runtime's recommended domain count for this machine. *)
val available_domains : unit -> int

(** [map_list ~domains f xs] is [List.map f xs], strided over a pool of
    [domains] domains (the calling domain is one of them).  If several
    applications raise, the exception of the earliest item is re-raised —
    exactly what a serial left-to-right map would have surfaced. *)
val map_list : domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_list_outcomes ~domains f xs] is the fault-contained variant: each
    item maps to [Ok (f x)], or [Error exn] if that application raised.
    One crashing worker item never discards a completed sibling's result —
    this is what lets a search fan-out degrade per-item instead of
    wholesale. *)
val map_list_outcomes : domains:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** [both f g] runs the two thunks concurrently (one on a fresh domain) and
    returns both results; always joins before re-raising (preferring [f]'s
    exception when both raise). *)
val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

(** Testing-only access to internal invariant guards. *)
module Internal : sig
  (** [strip_slot i slot] unwraps the reassembled outcome of item [i].
      @raise Invalid_argument naming item [i] if the slot is empty — the
      "worker slot went missing" guard on stride reassembly, impossible
      through the public API but kept loud rather than as a bare
      assertion. *)
  val strip_slot : int -> 'a option -> 'a
end
