type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }
let state t = t.state
let of_state s = { state = s }

(* splitmix64: fast, well distributed, trivially reproducible. *)
let bits64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n Fun.id in
  shuffle t arr;
  arr
