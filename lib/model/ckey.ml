(* Compact canonical keys for configurations.

   Every search in the engine (explore, valency, covering) keys a visited
   or memo table by a configuration.  The polymorphic [Hashtbl.hash] only
   inspects a bounded prefix of a value, so deep configurations collide
   catastrophically once the tables grow; polymorphic [=] then rescans long
   buckets.  A [Ckey.t] instead packs the configuration once into a byte
   string — per-process status via the protocol's state encoder, plus a
   register digest — and carries a full-width FNV-1a hash of it, giving the
   functorized tables O(1) behaviour at any depth.

   Injectivity: each component encoding is self-delimiting (tag bytes plus
   varints, or a Marshal frame), and the component count is fixed by the
   protocol, so distinct configurations pack to distinct strings. *)

type t = {
  digest : string;
  hash : int;
}

let fnv_prime = 0x100000001b3

let hash_string s =
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
  done;
  !h land max_int

let of_string digest = { digest; hash = hash_string digest }
let to_raw t = t.digest
let equal a b = a.hash = b.hash && String.equal a.digest b.digest
let hash t = t.hash
let compare a b = String.compare a.digest b.digest
let digest_bytes t = String.length t.digest

let to_hex t =
  let n = String.length t.digest in
  let out = Bytes.create (2 * n) in
  let hexdig k = Char.chr (if k < 10 then Char.code '0' + k else Char.code 'a' + k - 10) in
  for i = 0 to n - 1 do
    let c = Char.code (String.unsafe_get t.digest i) in
    Bytes.unsafe_set out (2 * i) (hexdig (c lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1) (hexdig (c land 0xf))
  done;
  Bytes.unsafe_to_string out

(* Fallback for states (and whole foreign configurations, e.g. the mutex
   lock snapshots) without a packed encoder.  Marshal frames carry their
   own length, so the output is self-delimiting too. *)
let marshal_to buf v = Buffer.add_string buf (Marshal.to_string v [])
let of_marshal v = of_string (Marshal.to_string v [])

(* A packer owns a scratch buffer, so one search (one domain) reuses the
   allocation across millions of packings.  Packers are not shareable
   across domains — create one per search. *)
type 's packer = {
  buf : Buffer.t;
  encode_state : Buffer.t -> 's -> unit;
  loc : string;  (* race-detector location of the scratch buffer *)
}

let packer proto =
  {
    buf = Buffer.create 256;
    encode_state =
      (match proto.Protocol.encode with
       | Protocol.Packed f -> f
       | Protocol.Generic -> marshal_to);
    loc = Trace.fresh_loc "ckey.packer";
  }

let pack pk (cfg : _ Config.t) =
  (* the scratch buffer is the packer's share-nothing hazard: flag any
     cross-domain reuse to the race detector *)
  Trace.access ~loc:pk.loc Trace.Write ~atomic:false;
  let buf = pk.buf in
  Buffer.clear buf;
  Array.iter
    (fun st ->
      match st with
      | Config.Decided v ->
        Buffer.add_char buf 'D';
        Value.encode buf v
      | Config.Running s ->
        Buffer.add_char buf 'R';
        pk.encode_state buf s)
    cfg.Config.procs;
  Array.iter (fun v -> Value.encode buf v) cfg.Config.regs;
  of_string (Buffer.contents buf)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* Keys salted with small integers (process id, participant mask, target
   value...) for memo tables whose key is a configuration plus context. *)
module Salted = struct
  type nonrec t = {
    ck : t;
    salt : int;
  }

  let make ck salt = { ck; salt }
  let equal a b = a.salt = b.salt && equal a.ck b.ck
  let hash { ck; salt } = (ck.hash + (salt * 0x9e3779b9)) land max_int
end

module Salted_tbl = Hashtbl.Make (Salted)
