(** Whole-system simulation drivers.

    These are the workload generators for the upper-bound experiments: they
    run a protocol instance to completion under a scheduling policy and
    report what happened (decisions, steps, registers touched).

    Runs may be subjected to a crash-stop {!Fault.plan}: crashed processes
    take no further steps and are dropped from the termination condition —
    the run ends when every {e surviving} relevant process has decided.
    Crashes are evaluated at every scheduling point, so a plan plus a
    deterministic (or state-captured random) schedule replays exactly. *)

type pid = int

type policy =
  | Round_robin  (** p0 p1 ... pn-1 p0 p1 ... skipping halted processes *)
  | Random of Rng.t  (** uniformly random runnable process each step *)
  | Solo of pid  (** only [pid] takes steps (obstruction-free run) *)
  | Alternating of pid * pid  (** two processes in lockstep *)

type 's outcome = {
  final : 's Config.t;  (** configuration when the run stopped *)
  decisions : (pid * Value.t) list;  (** decisions reached, by process *)
  steps : int;  (** total steps taken *)
  trace : Execution.trace;
  ran_out : bool;  (** true if the step budget was exhausted first *)
  crashed : pid list;  (** processes crashed by the fault plan, sorted *)
  rng_state : int64 option;
      (** for [Random] policies: the generator state at the start of the
          run.  Re-running with [Random (Rng.of_state s)] (and a [flips]
          drawing from that same generator) replays the run exactly — the
          replay token to print when a randomized run fails. *)
}

(** [run proto ~inputs ~policy ~flips ~budget] drives the system until every
    *relevant* process has decided or crashed (all of them for
    [Round_robin]/[Random], the named ones for [Solo]/[Alternating]) or
    [budget] steps have been taken.  Coin flips are resolved by [flips];
    [faults] (default {!Fault.none}) injects crash-stop failures. *)
val run :
  ?faults:Fault.plan ->
  's Protocol.t ->
  inputs:Value.t array ->
  policy:policy ->
  flips:(unit -> bool) ->
  budget:int ->
  's outcome

(** [agreement outcome] is [Ok v] if at least one process decided and all
    decisions agree on [v]; [Error vs] otherwise with the distinct decided
    values. *)
val agreement : 's outcome -> (Value.t, Value.t list) result

(** [valid ~inputs v] holds iff [v] is one of the inputs. *)
val valid : inputs:Value.t array -> Value.t -> bool
