(** A small deterministic PRNG (splitmix64).

    Experiments must be reproducible from a printed seed, so nothing in the
    library uses global randomness; every randomized component takes an
    explicit [Rng.t]. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t

val state : t -> int64
(** [state t] is the generator's current internal state.  Any splitmix64
    state is itself a valid seed: [of_state (state t)] replays the exact
    stream [t] would produce from here on — the replay token {!Sim.run}
    records for randomized schedules. *)

val of_state : int64 -> t
(** [of_state s] is a generator resuming from a captured {!state}. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool
val bits64 : t -> int64

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [permutation t n] is a uniform permutation of [0..n-1]. *)
val permutation : t -> int -> int array
