(** Compact canonical configuration keys for the search engine.

    Every BFS in the engine (the checker's exploration, the valency oracle,
    the mutex covering search) keys visited/memo tables by configurations.
    The polymorphic [Hashtbl.hash] only samples a bounded prefix of a value,
    so deep configurations collide catastrophically as tables grow, and
    polymorphic [=] then rescans long buckets.  A [Ckey.t] packs the
    configuration once into a byte string — per-process status via the
    protocol's {!Protocol.state_encoder} plus a register digest — and caches
    a full-width FNV-1a hash of it.

    Packings are injective: every component encoding is self-delimiting and
    the component count is fixed by the protocol, so distinct configurations
    produce distinct keys. *)

type t

val of_string : string -> t

(** The packed digest bytes themselves — the inverse of {!of_string}.  The
    persistent witness store keys its on-disk records by these raw bytes
    (hex doubles the footprint for no information), so the same golden
    digests that pin {!to_hex} pin the stored key bytes too. *)
val to_raw : t -> string
val equal : t -> t -> bool
val hash : t -> int
val compare : t -> t -> int

(** Number of bytes in the packed digest (observability/testing). *)
val digest_bytes : t -> int

(** Lowercase hexadecimal rendering of the packed digest.  Two keys render
    identically iff they are {!equal}, so the rendering is a stable,
    printable cache-key/fingerprint form: the service layer keys its result
    cache by it and the digest-stability regression test pins golden values
    of it.  Changing any component encoding changes these strings — bump
    the service cache version when that happens. *)
val to_hex : t -> string

(** [of_marshal v] keys an arbitrary plain-data value by its structural
    serialization — the fallback for state spaces without a packed encoder
    (e.g. the mutex lock snapshots). *)
val of_marshal : 'a -> t

(** A packer owns a scratch buffer reused across packings.  Packers are not
    shareable across domains: create one per search. *)
type 's packer

val packer : 's Protocol.t -> 's packer
val pack : 's packer -> 's Config.t -> t

(** Hash tables keyed by packed configurations. *)
module Tbl : Hashtbl.S with type key = t

(** Keys salted with a small integer of context (process id, participant
    mask, target value...) for memo tables whose key is a configuration
    plus context. *)
module Salted : sig
  type ckey := t

  type t

  val make : ckey -> int -> t
  val equal : t -> t -> bool
  val hash : t -> int
end

module Salted_tbl : Hashtbl.S with type key = Salted.t
