(* Minimal domain fan-out for the search engine (same Domain.spawn/join
   pattern as Ts_runtime.Atomic_run, but dependency-free so the checker and
   core layers can use it).  Workers share nothing mutable: each returns
   its (index, result) pairs and the parent reassembles them in order, so
   parallel runs are observationally identical to serial ones.  Workers
   catch everything and every spawned domain is joined before the parent
   returns or re-raises, so a raising item never leaks a domain.

   Every spawn/join edge and every touch of the shared reassembly array is
   logged through Trace when tracing is armed, so the analysis layer's
   vector-clock race detector can certify (or refute) the sharing
   discipline of a parallel run. *)

let available_domains () = Domain.recommended_domain_count ()

type 'a outcome =
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

let catch f x = try Done (f x) with e -> Raised (e, Printexc.get_raw_backtrace ())

(* Total reassembly: every item must have received exactly one outcome.
   A [None] here cannot arise from a raising [f] (workers catch) — it
   means the stride bookkeeping itself dropped a slot, which must surface
   loudly, not as a bare assertion. *)
let strip_slot i = function
  | Some r -> r
  | None ->
    invalid_arg
      (Printf.sprintf
         "Par.outcomes_array: no outcome for item %d: a worker slot went \
          missing during stride reassembly"
         i)

(* Strided fan-out shared by both maps: apply [catch f] to every item over
   a pool of [domains] domains (the caller's domain is one of them) and
   reassemble the outcomes in item order.  Total: every item gets exactly
   one outcome, whatever f raised. *)
let outcomes_array ~domains f items =
  let n = Array.length items in
  let domains = max 1 (min domains n) in
  if domains = 1 then Array.map (catch f) items
  else begin
    let worker k () =
      let acc = ref [] in
      let i = ref k in
      while !i < n do
        acc := (!i, catch f items.(!i)) :: !acc;
        i := !i + domains
      done;
      !acc
    in
    let spawned =
      Array.init (domains - 1) (fun k ->
          let token = Trace.fork () in
          ( token,
            Domain.spawn (fun () ->
                Trace.begin_task token;
                (* one span per spawned worker: the fan-out's load balance
                   shows up as the relative lengths of these tracks *)
                let sp = Ts_obs.Obs.enter ~cat:"par" "par.worker" in
                Ts_obs.Obs.set_int sp "stride" (k + 1);
                let r = worker (k + 1) () in
                Ts_obs.Obs.set_int sp "items" (List.length r);
                Ts_obs.Obs.close sp;
                Trace.end_task token;
                r) ))
    in
    let results = Array.make n None in
    let results_loc = Trace.fresh_loc "par.results" in
    let collect =
      List.iter (fun (i, r) ->
          Trace.access ~loc:results_loc Trace.Write ~atomic:false;
          results.(i) <- Some r)
    in
    collect (worker 0 ());
    Array.iter
      (fun (token, d) ->
        let r = Domain.join d in
        Trace.join token;
        collect r)
      spawned;
    Array.mapi strip_slot results
  end

(* [map_list ~domains f xs]: like [List.map f xs] but strided over a pool
   of [domains] domains.  Exceptions are re-raised in item order, matching
   what a serial left-to-right map would have surfaced first. *)
let map_list ~domains f xs =
  if domains <= 1 || List.compare_length_with xs 1 <= 0 then List.map f xs
  else
    outcomes_array ~domains f (Array.of_list xs)
    |> Array.to_list
    |> List.map (function
      | Done v -> v
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt)

(* Outcome-preserving variant: a raising item becomes [Error exn] in place
   while every completed sibling's result survives. *)
let map_list_outcomes ~domains f xs =
  outcomes_array ~domains f (Array.of_list xs)
  |> Array.to_list
  |> List.map (function Done v -> Ok v | Raised (e, _) -> Error e)

(* Run two independent thunks, one on a fresh domain.  Always joins before
   re-raising so no domain is leaked. *)
let both f g =
  let token = Trace.fork () in
  let d =
    Domain.spawn (fun () ->
        Trace.begin_task token;
        let sp = Ts_obs.Obs.enter ~cat:"par" "par.both" in
        let r = catch g () in
        Ts_obs.Obs.close sp;
        Trace.end_task token;
        r)
  in
  let a = catch f () in
  let b = Domain.join d in
  Trace.join token;
  match a, b with
  | Done a, Done b -> a, b
  | Raised (e, bt), _ -> Printexc.raise_with_backtrace e bt
  | _, Raised (e, bt) -> Printexc.raise_with_backtrace e bt

module Internal = struct
  let strip_slot = strip_slot
end
