(* Minimal domain fan-out for the search engine (same Domain.spawn/join
   pattern as Ts_runtime.Atomic_run, but dependency-free so the checker and
   core layers can use it).  Workers share nothing mutable: each returns
   its (index, result) pairs and the parent reassembles them in order, so
   parallel runs are observationally identical to serial ones. *)

let available_domains () = Domain.recommended_domain_count ()

type 'a outcome =
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

let catch f x = try Done (f x) with e -> Raised (e, Printexc.get_raw_backtrace ())

(* [map_list ~domains f xs]: like [List.map f xs] but strided over a pool
   of [domains] domains (the caller's domain is one of them).  Exceptions
   are re-raised in item order, matching what a serial left-to-right map
   would have surfaced first. *)
let map_list ~domains f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let domains = max 1 (min domains n) in
  if domains = 1 then List.map f xs
  else begin
    let worker k () =
      let acc = ref [] in
      let i = ref k in
      while !i < n do
        acc := (!i, catch f items.(!i)) :: !acc;
        i := !i + domains
      done;
      !acc
    in
    let spawned = Array.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    let results = Array.make n None in
    let collect = List.iter (fun (i, r) -> results.(i) <- Some r) in
    collect (worker 0 ());
    Array.iter (fun d -> collect (Domain.join d)) spawned;
    Array.to_list results
    |> List.map (function
      | Some (Done v) -> v
      | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
  end

(* Run two independent thunks, one on a fresh domain.  Always joins before
   re-raising so no domain is leaked. *)
let both f g =
  let d = Domain.spawn g in
  let a = catch f () in
  let b = Domain.join d in
  match a with
  | Done a -> a, b
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
