type t =
  | Bot
  | Int of int
  | Bool of bool
  | Pair of t * t
  | List of t list

let bot = Bot
let int n = Int n
let bool b = Bool b
let pair a b = Pair (a, b)
let list vs = List vs

let rec equal a b =
  match a, b with
  | Bot, Bot -> true
  | Int x, Int y -> Stdlib.Int.equal x y
  | Bool x, Bool y -> Stdlib.Bool.equal x y
  | Pair (x1, y1), Pair (x2, y2) -> equal x1 x2 && equal y1 y2
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Bot | Int _ | Bool _ | Pair _ | List _), _ -> false

let rec compare a b =
  match a, b with
  | Bot, Bot -> 0
  | Bot, _ -> -1
  | _, Bot -> 1
  | Int x, Int y -> Stdlib.Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Bool x, Bool y -> Stdlib.Bool.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Pair (x1, y1), Pair (x2, y2) ->
    let c = compare x1 x2 in
    if c <> 0 then c else compare y1 y2
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | List xs, List ys -> List.compare compare xs ys

let rec hash = function
  | Bot -> 0x42
  | Int n -> n * 0x1000193
  | Bool b -> if b then 0x2f else 0x3d
  | Pair (a, b) -> (hash a * 31) + hash b + 1
  | List vs -> List.fold_left (fun h v -> (h * 31) + hash v) 0x55 vs

(* Zigzag varint: a self-delimiting prefix code, so concatenations of
   encoded values decode unambiguously — key packings built from it are
   injective by construction. *)
let add_varint buf n =
  let n = (n lsl 1) lxor (n asr 62) in
  let rec go n =
    if n land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let rec encode buf = function
  | Bot -> Buffer.add_char buf '\000'
  | Int n ->
    Buffer.add_char buf '\001';
    add_varint buf n
  | Bool b -> Buffer.add_char buf (if b then '\002' else '\003')
  | Pair (a, b) ->
    Buffer.add_char buf '\004';
    encode buf a;
    encode buf b
  | List vs ->
    Buffer.add_char buf '\005';
    add_varint buf (List.length vs);
    List.iter (encode buf) vs

let to_int = function
  | Int n -> n
  | _ -> invalid_arg "Value.to_int: non-int"

let to_bool = function
  | Bool b -> b
  | _ -> invalid_arg "Value.to_bool: non-bool"

let to_pair = function
  | Pair (a, b) -> a, b
  | _ -> invalid_arg "Value.to_pair: non-pair"

let to_list = function
  | List vs -> vs
  | _ -> invalid_arg "Value.to_list: non-list"

let is_bot = function Bot -> true | Int _ | Bool _ | Pair _ | List _ -> false

let rec pp ppf = function
  | Bot -> Fmt.string ppf "⊥"
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b
  | Pair (a, b) -> Fmt.pf ppf "(%a,%a)" pp a pp b
  | List vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ";") pp) vs

let to_string v = Format.asprintf "%a" pp v
