type pid = int

(* How a protocol's local state is packed into the canonical search key
   (see Ckey).  [Packed] writers must emit a self-delimiting byte string —
   tag bytes plus [Value.add_varint] fields suffice — so that concatenating
   per-process encodings stays injective.  [Generic] falls back to a
   structural serialization of the state. *)
type 's state_encoder =
  | Generic
  | Packed of (Buffer.t -> 's -> unit)

type 's t = {
  name : string;
  description : string;
  num_processes : int;
  num_registers : int;
  init : pid:pid -> input:Value.t -> 's;
  poised : 's -> Action.t;
  on_read : 's -> Value.t -> 's;
  on_write : 's -> 's;
  on_swap : 's -> Value.t -> 's;
  on_flip : 's -> bool -> 's;
  pp_state : Format.formatter -> 's -> unit;
  encode : 's state_encoder;
}

type packed = Packed : 's t -> packed

let name_of_packed (Packed p) = p.name

let no_flip _ _ =
  invalid_arg "Protocol.no_flip: deterministic protocol asked to flip a coin"

let no_swap _ _ =
  invalid_arg "Protocol.no_swap: read/write protocol asked to swap"
