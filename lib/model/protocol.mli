(** Protocols as explicit deterministic state machines.

    A protocol assigns each process a deterministic algorithm over shared
    registers (Zhu §2): from any local state the process is *poised* to
    perform exactly one action, and its next state is a function of the
    action's result.  Randomized protocols surface their coin flips as
    [Action.Flip] steps, whose outcome is supplied by the environment — the
    adversary engine enumerates both outcomes (nondeterministic solo
    termination), the simulator draws them from a seeded RNG.

    States must be plain immutable OCaml data (no closures, no mutation):
    the engine memoizes on configurations using structural equality and
    hashing. *)

type pid = int

(** How a protocol's local state is serialized into the packed search keys
    of {!Ckey}.  A [Packed] writer must emit a self-delimiting byte string
    (tag bytes plus {!Value.add_varint} fields suffice) so that
    concatenating per-process encodings remains injective; [Generic] falls
    back to a structural serialization, correct for any plain-data state
    but slower and bulkier. *)
type 's state_encoder =
  | Generic
  | Packed of (Buffer.t -> 's -> unit)

type 's t = {
  name : string;  (** short identifier used in tables and traces *)
  description : string;  (** one-line human description *)
  num_processes : int;  (** the [n] the instance is built for *)
  num_registers : int;  (** registers the protocol may access: 0..num_registers-1 *)
  init : pid:pid -> input:Value.t -> 's;
      (** initial local state of process [pid] with input [input] *)
  poised : 's -> Action.t;  (** the unique step the state is poised to take *)
  on_read : 's -> Value.t -> 's;  (** state after a read returning the value *)
  on_write : 's -> 's;  (** state after the pending write is applied *)
  on_swap : 's -> Value.t -> 's;  (** state after a swap, given the displaced value *)
  on_flip : 's -> bool -> 's;  (** state after a coin flip *)
  pp_state : Format.formatter -> 's -> unit;
  encode : 's state_encoder;
      (** packs the state into search keys; see {!state_encoder} *)
}

(** Protocols with hidden state type, for registries and CLIs. *)
type packed = Packed : 's t -> packed

val name_of_packed : packed -> string

(** [no_flip] is a convenience [on_flip] for deterministic protocols; it
    raises if ever invoked. *)
val no_flip : 's -> bool -> 's

(** [no_swap] is a convenience [on_swap] for read/write-only protocols; it
    raises if ever invoked. *)
val no_swap : 's -> Value.t -> 's
