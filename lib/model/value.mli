(** Register values.

    Zhu's lower bound holds even for registers of unbounded size, so the
    model places no restriction on what a register may hold.  Values are a
    small algebraic universe that is closed under pairing and listing, which
    is enough to encode the states any of the shipped protocols wants to
    communicate (preferences, rounds, sequence numbers, embedded views). *)

type t =
  | Bot  (** the initial "blank" content of every register *)
  | Int of int
  | Bool of bool
  | Pair of t * t
  | List of t list

val bot : t
val int : int -> t
val bool : bool -> t
val pair : t -> t -> t
val list : t list -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [to_int v] projects an [Int] payload. @raise Invalid_argument otherwise *)
val to_int : t -> int

(** [to_bool v] projects a [Bool] payload. @raise Invalid_argument otherwise *)
val to_bool : t -> bool

(** [to_pair v] projects a [Pair] payload. @raise Invalid_argument otherwise *)
val to_pair : t -> t * t

(** [to_list v] projects a [List] payload. @raise Invalid_argument otherwise *)
val to_list : t -> t list

val is_bot : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [add_varint buf n] appends a zigzag varint — a self-delimiting prefix
    code over arbitrary ints — to [buf].  The building block for packed
    state encoders ({!Protocol.state_encoder}). *)
val add_varint : Buffer.t -> int -> unit

(** [encode buf v] appends a self-delimiting binary encoding of [v]; two
    values encode identically iff they are [equal]. *)
val encode : Buffer.t -> t -> unit
