type pid = int

type trigger =
  | After_steps of int
  | Before_write

type plan = {
  crashes : (pid * trigger) list;
  seed : int option;
}

let none = { crashes = []; seed = None }

let of_list crashes =
  let pids = List.map fst crashes in
  if List.length (List.sort_uniq Int.compare pids) <> List.length pids then
    invalid_arg "Fault.of_list: duplicate pid";
  List.iter
    (function
      | _, After_steps k when k < 0 -> invalid_arg "Fault.of_list: negative step count"
      | _ -> ())
    crashes;
  { crashes; seed = None }

let crash_after p k = of_list [ p, After_steps k ]
let crash_before_write p = of_list [ p, Before_write ]

let union a b =
  let merged = of_list (a.crashes @ b.crashes) in
  { merged with seed = (match a.seed with Some _ -> a.seed | None -> b.seed) }

let random ~seed ~n ~t ~max_delay =
  if t < 0 || t > n then invalid_arg "Fault.random: need 0 <= t <= n";
  if max_delay < 0 then invalid_arg "Fault.random: negative max_delay";
  let rng = Rng.create seed in
  let victims = Array.sub (Rng.permutation rng n) 0 t in
  let crashes =
    Array.to_list victims
    |> List.map (fun p -> p, After_steps (Rng.int rng (max_delay + 1)))
  in
  { crashes; seed = Some seed }

let crashes plan = plan.crashes
let seed plan = plan.seed
let is_empty plan = plan.crashes = []

let pp_trigger ppf = function
  | After_steps k -> Fmt.pf ppf "after %d steps" k
  | Before_write -> Fmt.string ppf "before next write"

let pp ppf plan =
  if is_empty plan then Fmt.string ppf "no faults"
  else
    Fmt.pf ppf "@[<h>crash {%a}%a@]"
      Fmt.(list ~sep:comma (pair ~sep:(any " ") (fmt "p%d") pp_trigger))
      plan.crashes
      Fmt.(option (fmt " (seed %d)"))
      plan.seed

type tracker = {
  mutable pending : (pid * trigger) list;
  mutable down : Pset.t;
  steps : (pid, int) Hashtbl.t;
}

let tracker plan = { pending = plan.crashes; down = Pset.empty; steps = Hashtbl.create 8 }

let steps_taken tr p = Option.value ~default:0 (Hashtbl.find_opt tr.steps p)

let note_step tr p = Hashtbl.replace tr.steps p (steps_taken tr p + 1)

let crashed tr p = Pset.mem p tr.down
let crashed_pids tr = Pset.to_list tr.down

let due tr proto cfg (p, trig) =
  Config.has_decided cfg p = None
  &&
  match trig with
  | After_steps k -> steps_taken tr p >= k
  | Before_write ->
    (match Config.poised proto cfg p with
     | Some a -> Action.written_register a <> None
     | None -> false)

let fire tr proto cfg =
  if tr.pending <> [] then begin
    let fired, pending = List.partition (due tr proto cfg) tr.pending in
    tr.pending <- pending;
    List.iter (fun (p, _) -> tr.down <- Pset.add p tr.down) fired
  end
