type pid = int

type 's status =
  | Running of 's
  | Decided of Value.t

type 's t = {
  procs : 's status array;
  regs : Value.t array;
}

let initial (proto : 's Protocol.t) ~inputs =
  if Array.length inputs <> proto.num_processes then
    invalid_arg "Config.initial: wrong number of inputs";
  {
    procs =
      Array.init proto.num_processes (fun p ->
          Running (proto.init ~pid:p ~input:inputs.(p)));
    regs = Array.make (max 1 proto.num_registers) Value.bot;
  }

let poised (proto : 's Protocol.t) cfg p =
  match cfg.procs.(p) with
  | Decided _ -> None
  | Running s -> Some (proto.poised s)

let with_proc cfg p status =
  let procs = Array.copy cfg.procs in
  procs.(p) <- status;
  { cfg with procs }

let step (proto : 's Protocol.t) cfg p ~coin =
  match cfg.procs.(p) with
  | Decided _ -> invalid_arg "Config.step: process has decided"
  | Running s ->
    let act = proto.poised s in
    let cfg' =
      match act, coin with
      | Action.Read r, None -> with_proc cfg p (Running (proto.on_read s cfg.regs.(r)))
      | Action.Write (r, v), None ->
        let regs = Array.copy cfg.regs in
        regs.(r) <- v;
        { procs = (let a = Array.copy cfg.procs in a.(p) <- Running (proto.on_write s); a);
          regs }
      | Action.Swap (r, v), None ->
        let old = cfg.regs.(r) in
        let regs = Array.copy cfg.regs in
        regs.(r) <- v;
        { procs = (let a = Array.copy cfg.procs in a.(p) <- Running (proto.on_swap s old); a);
          regs }
      | Action.Flip, Some b -> with_proc cfg p (Running (proto.on_flip s b))
      | Action.Decide v, None -> with_proc cfg p (Decided v)
      | Action.Flip, None -> invalid_arg "Config.step: flip needs a coin"
      | (Action.Read _ | Action.Write _ | Action.Swap _ | Action.Decide _), Some _ ->
        invalid_arg "Config.step: coin supplied to a non-flip step"
    in
    cfg', act

let has_decided cfg p =
  match cfg.procs.(p) with Decided v -> Some v | Running _ -> None

let decided_values cfg =
  Array.fold_left
    (fun acc st ->
      match st with
      | Decided v -> if List.exists (Value.equal v) acc then acc else v :: acc
      | Running _ -> acc)
    [] cfg.procs
  |> List.sort Value.compare

let covers proto cfg p =
  match poised proto cfg p with
  | Some a -> Action.written_register a
  | None -> None

let covered_registers proto cfg ps =
  Pset.fold
    (fun p acc -> match covers proto cfg p with Some r -> r :: acc | None -> acc)
    ps []
  |> List.sort_uniq Stdlib.compare

let covering_is_distinct proto cfg ps =
  let regs =
    Pset.fold
      (fun p acc ->
        match covers proto cfg p with Some r -> Some r :: acc | None -> None :: acc)
      ps []
  in
  List.for_all Option.is_some regs
  && List.length (List.sort_uniq Stdlib.compare regs) = List.length regs

(* Structural equality/hash.  Registers compare via [Value.equal]; process
   statuses compare per element, so only the (small) protocol state ever
   meets the polymorphic comparator.  The hash mixes a per-component digest
   instead of handing the whole record to [Hashtbl.hash], whose bounded
   traversal degenerates on deep configurations — the search tables
   themselves use the packed keys in [Ckey], which these definitions agree
   with. *)
let equal_status a b =
  match a, b with
  | Decided v, Decided w -> Value.equal v w
  | Running s, Running s' -> Stdlib.compare s s' = 0
  | (Decided _ | Running _), _ -> false

let array_for_all2 eq a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (eq a.(i) b.(i) && go (i + 1)) in
  go 0

let equal a b =
  array_for_all2 equal_status a.procs b.procs && array_for_all2 Value.equal a.regs b.regs

let hash c =
  let h = ref 0x3bf29ce4 in
  let mix x = h := ((!h lxor x) * 0x01000193) land max_int in
  Array.iter
    (fun st ->
      mix (match st with Decided v -> Value.hash v lxor 0x44 | Running s -> Hashtbl.hash s))
    c.procs;
  Array.iter (fun v -> mix (Value.hash v)) c.regs;
  !h
let register cfg r = cfg.regs.(r)

let pp (proto : 's Protocol.t) ppf cfg =
  let pp_status ppf = function
    | Decided v -> Fmt.pf ppf "decided %a" Value.pp v
    | Running s -> proto.pp_state ppf s
  in
  Fmt.pf ppf "@[<v>regs: %a@,%a@]"
    Fmt.(array ~sep:(any " ") Value.pp)
    cfg.regs
    Fmt.(array ~sep:cut (pair ~sep:(any ": ") (fmt "p%d") pp_status))
    (Array.mapi (fun i st -> i, st) cfg.procs)
