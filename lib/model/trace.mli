(** Shared-memory access tracing for the engine race detector.

    The domain fan-out ({!Par}, and the search loops built on it) is
    designed so workers share nothing mutable except the {!Ts_core.Budget}
    atomics.  That design is otherwise checked only indirectly, by
    parallel-vs-serial differential tests.  This module gives the claim a
    direct witness: when tracing is armed, the engine's shared-structure
    touch points log (domain, location, read/write, atomic?) events plus
    fork/join edges, and [Ts_analysis.Race] runs a vector-clock checker
    over the log to certify the run race-free (or to pinpoint the racing
    pair).

    Since the observability rework this module is a thin facade over
    {!Ts_obs.Obs}: the access log and the profiler's span stream share one
    event model and one buffer, so [Ts_analysis.Race] and the trace
    exporters consume the same {!event} type.  The type equations below
    make the two interchangeable; arming the access interest here does not
    disturb buffered span events and vice versa.

    Tracing is globally off by default and costs one atomic load per
    potential event when disarmed.  It is a test/analysis harness, not a
    production profiler: events are appended to one mutex-protected
    buffer, and [start]/[stop] are not meant to run concurrently with each
    other. *)

type kind = Ts_obs.Obs.kind =
  | Read
  | Write

(** The unified engine event stream (equal to {!Ts_obs.Obs.event}).  The
    race detector consumes the untimed access/task constructors; the
    span/instant constructors belong to the profiler and are ignored
    here. *)
type event = Ts_obs.Obs.event =
  | Span_open of {
      id : int;
      parent : int;
      domain : int;
      name : string;
      cat : string;
      t : float;
    }  (** profiler span entry — not produced by this interest *)
  | Span_close of { id : int; t : float; attrs : (string * Ts_obs.Obs.attr) list }
      (** profiler span exit — not produced by this interest *)
  | Instant of { domain : int; name : string; cat : string; t : float }
      (** profiler point event — not produced by this interest *)
  | Access of {
      domain : int;  (** id of the accessing domain *)
      loc : string;  (** interned location name, see {!fresh_loc} *)
      kind : kind;
      atomic : bool;  (** accesses via [Atomic] never race with each other *)
    }
  | Fork of { parent : int; token : int }
      (** the parent is about to spawn the task identified by [token] *)
  | Begin of { child : int; token : int }
      (** first event of the spawned task: inherits the parent's clock *)
  | End of { child : int; token : int }  (** last event of the spawned task *)
  | Join of { parent : int; token : int }
      (** the parent has joined the task: absorbs the child's clock *)

(** Whether tracing is currently armed. *)
val enabled : unit -> bool

(** Arm tracing and discard any previously buffered access events. *)
val start : unit -> unit

(** Disarm tracing and return the buffered access/task events, oldest
    first.  Span and instant events are never returned here. *)
val stop : unit -> event list

(** [access ~loc kind ~atomic] logs a shared-memory access by the calling
    domain.  No-op (one atomic load) when tracing is disarmed. *)
val access : loc:string -> kind -> atomic:bool -> unit

(** [fork ()] allocates a task token and logs the {!Fork} edge. *)
val fork : unit -> int

(** [begin_task t] / [end_task t] bracket the spawned task's body. *)
val begin_task : int -> unit

val end_task : int -> unit

(** [join t] logs that the calling domain has joined task [t]. *)
val join : int -> unit

(** [fresh_loc prefix] is a process-unique location name
    ["prefix#<id>"] while tracing is armed, and just [prefix] while
    disarmed (so the disarmed engine allocates nothing per structure).
    Give every independently-owned mutable structure its own location so
    that distinct per-worker tables never alias in the detector. *)
val fresh_loc : string -> string

val pp_event : Format.formatter -> event -> unit
