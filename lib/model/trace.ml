(* Facade over the unified observability collector (see trace.mli).  The
   access log used to own its own armed flag and buffer; both now live in
   Ts_obs.Obs so the race detector and the span profiler share one event
   model.  Everything here is delegation plus the type equations. *)

type kind = Ts_obs.Obs.kind =
  | Read
  | Write

type event = Ts_obs.Obs.event =
  | Span_open of {
      id : int;
      parent : int;
      domain : int;
      name : string;
      cat : string;
      t : float;
    }
  | Span_close of { id : int; t : float; attrs : (string * Ts_obs.Obs.attr) list }
  | Instant of { domain : int; name : string; cat : string; t : float }
  | Access of { domain : int; loc : string; kind : kind; atomic : bool }
  | Fork of { parent : int; token : int }
  | Begin of { child : int; token : int }
  | End of { child : int; token : int }
  | Join of { parent : int; token : int }

let enabled = Ts_obs.Obs.accesses
let start = Ts_obs.Obs.start_accesses
let stop = Ts_obs.Obs.stop_accesses
let access = Ts_obs.Obs.access
let fork = Ts_obs.Obs.fork
let begin_task = Ts_obs.Obs.begin_task
let end_task = Ts_obs.Obs.end_task
let join = Ts_obs.Obs.join
let fresh_loc = Ts_obs.Obs.fresh_loc
let pp_event = Ts_obs.Obs.pp_event
