(* Access tracing for the race detector (see trace.mli).  One global
   armed flag (an Atomic, so any domain can consult it without a lock)
   and one mutex-protected event buffer: contention only matters when
   tracing is armed, which happens in analysis runs, not hot paths. *)

type kind =
  | Read
  | Write

type event =
  | Access of { domain : int; loc : string; kind : kind; atomic : bool }
  | Fork of { parent : int; token : int }
  | Begin of { child : int; token : int }
  | End of { child : int; token : int }
  | Join of { parent : int; token : int }

let armed = Atomic.make false
let lock = Mutex.create ()
let events : event list ref = ref []  (* newest first; guarded by [lock] *)
let next_token = Atomic.make 0
let next_loc = Atomic.make 0

let enabled () = Atomic.get armed

let self () = (Domain.self () :> int)

let push e =
  Mutex.lock lock;
  events := e :: !events;
  Mutex.unlock lock

let start () =
  Mutex.lock lock;
  events := [];
  Mutex.unlock lock;
  Atomic.set armed true

let stop () =
  Atomic.set armed false;
  Mutex.lock lock;
  let evs = !events in
  events := [];
  Mutex.unlock lock;
  List.rev evs

let access ~loc kind ~atomic =
  if Atomic.get armed then push (Access { domain = self (); loc; kind; atomic })

(* Tokens are allocated even when disarmed: Par threads them through its
   workers unconditionally, and an Atomic bump is cheaper than branching
   on armedness at every fork site. *)
let fork () =
  let token = Atomic.fetch_and_add next_token 1 in
  if Atomic.get armed then push (Fork { parent = self (); token });
  token

let begin_task token =
  if Atomic.get armed then push (Begin { child = self (); token })

let end_task token =
  if Atomic.get armed then push (End { child = self (); token })

let join token =
  if Atomic.get armed then push (Join { parent = self (); token })

let fresh_loc prefix =
  if Atomic.get armed then
    Printf.sprintf "%s#%d" prefix (Atomic.fetch_and_add next_loc 1)
  else prefix

let pp_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"

let pp_event ppf = function
  | Access { domain; loc; kind; atomic } ->
    Fmt.pf ppf "d%d %a%s %s" domain pp_kind kind (if atomic then "[atomic]" else "") loc
  | Fork { parent; token } -> Fmt.pf ppf "d%d fork t%d" parent token
  | Begin { child; token } -> Fmt.pf ppf "d%d begin t%d" child token
  | End { child; token } -> Fmt.pf ppf "d%d end t%d" child token
  | Join { parent; token } -> Fmt.pf ppf "d%d join t%d" parent token
