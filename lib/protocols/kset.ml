open Ts_model

let group ~k p = p mod k
let group_rank ~k p = p / k

let group_size ~n ~k g =
  (* members of group g are g, g+k, g+2k, ... below n *)
  if g >= n then 0 else ((n - g - 1) / k) + 1

(* Register base of group [g]: groups are laid out consecutively, 2 slots
   per member (one per binary value). *)
let base ~n ~k g =
  let rec go h acc = if h = g then acc else go (h + 1) (acc + (2 * group_size ~n ~k h)) in
  go 0 0

type phase =
  | Scanning of { step : int; s_own : int; s_riv : int; my_own : int; my_riv : int }
  | Incrementing of int
  | Deciding

type state = {
  rank : int;  (* index within the group *)
  m : int;  (* group size *)
  base : int;  (* first register of the group's block *)
  pref : int;
  phase : phase;
}

let fresh_scan = Scanning { step = 0; s_own = 0; s_riv = 0; my_own = 0; my_riv = 0 }

let count_of = function Value.Bot -> 0 | v -> Value.to_int v

let slot st v rank = st.base + (v * st.m) + rank

let scan_target st step =
  let v = if step < st.m then st.pref else 1 - st.pref in
  slot st v (step mod st.m)

let poised st =
  match st.phase with
  | Scanning s -> Action.Read (scan_target st s.step)
  | Incrementing c -> Action.Write (slot st st.pref st.rank, Value.int c)
  | Deciding -> Action.Decide (Value.int st.pref)

let on_read st value =
  match st.phase with
  | Scanning s ->
    let c = count_of value in
    let own_phase = s.step < st.m in
    let idx = s.step mod st.m in
    let s_own = if own_phase then s.s_own + c else s.s_own in
    let s_riv = if own_phase then s.s_riv else s.s_riv + c in
    let my_own = if own_phase && idx = st.rank then c else s.my_own in
    let my_riv = if (not own_phase) && idx = st.rank then c else s.my_riv in
    if s.step = (2 * st.m) - 1 then
      if s_own >= s_riv + st.m then { st with phase = Deciding }
      else if s_riv > s_own then
        { st with pref = 1 - st.pref; phase = Incrementing (my_riv + 1) }
      else { st with phase = Incrementing (my_own + 1) }
    else { st with phase = Scanning { step = s.step + 1; s_own; s_riv; my_own; my_riv } }
  | Incrementing _ | Deciding -> invalid_arg "Kset.on_read"

let on_write st =
  match st.phase with
  | Incrementing _ -> { st with phase = fresh_scan }
  | Scanning _ | Deciding -> invalid_arg "Kset.on_write"

let encode_state buf st =
  Value.add_varint buf st.rank;
  Value.add_varint buf st.base;
  Value.add_varint buf st.pref;
  match st.phase with
  | Scanning s ->
    Buffer.add_char buf 'S';
    Value.add_varint buf s.step;
    Value.add_varint buf s.s_own;
    Value.add_varint buf s.s_riv;
    Value.add_varint buf s.my_own;
    Value.add_varint buf s.my_riv
  | Incrementing c ->
    Buffer.add_char buf 'I';
    Value.add_varint buf c
  | Deciding -> Buffer.add_char buf 'D'

let make ~n ~k : state Protocol.t =
  if k < 1 || k > n then invalid_arg "Kset.make: need 1 <= k <= n";
  {
    name = Printf.sprintf "kset-%d-of-%d" k n;
    description = "partitioned k-set agreement: one racing consensus per group";
    num_processes = n;
    num_registers = 2 * n;
    init =
      (fun ~pid ~input ->
        let pref = Value.to_int input in
        if pref <> 0 && pref <> 1 then invalid_arg "Kset.init: input must be 0 or 1";
        let g = group ~k pid in
        {
          rank = group_rank ~k pid;
          m = group_size ~n ~k g;
          base = base ~n ~k g;
          pref;
          phase = fresh_scan;
        });
    poised;
    on_read;
    on_write;
    on_swap = Protocol.no_swap;
    on_flip = Protocol.no_flip;
    pp_state =
      (fun ppf st ->
        Fmt.pf ppf "⟨g@%d rank=%d pref=%d⟩" st.base st.rank st.pref);
    encode = Protocol.Packed encode_state;
  }
