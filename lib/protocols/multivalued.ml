open Ts_model

let bit v i = (v lsr i) land 1

(* Register layout: posts 0..n-1, then bit-i race block at n + 2n*i with
   slot (v, p) at offset v*n + p. *)
let post_reg p = p
let race_slot ~n i v p = n + (2 * n * i) + (v * n) + p

type race = {
  step : int;  (* 0 .. 2n-1; < n = own-preference slots *)
  s_own : int;
  s_riv : int;
  my_own : int;
  my_riv : int;
}

let fresh_race = { step = 0; s_own = 0; s_riv = 0; my_own = 0; my_riv = 0 }

type phase =
  | Post
  | Racing of { round : int; pref : int; race : race }
  | Bumping of { round : int; pref : int; next : int }
      (* pending increment in round's race *)
  | Rescanning of { round : int; idx : int }
      (* candidate clashed with the decided prefix: scan the posts *)
  | Deciding

type state = {
  me : int;
  n : int;
  bits : int;
  cand : int;  (* current candidate value *)
  prefix : int;  (* decided bits 0..round-1, packed *)
  phase : phase;
}

let count_of = function Value.Bot -> 0 | v -> Value.to_int v

(* The embedded race for bit [round] ended with decision [d]. *)
let bit_decided st round d =
  let prefix = st.prefix lor (d lsl round) in
  let st = { st with prefix } in
  if bit st.cand round = d then
    if round + 1 = st.bits then { st with phase = Deciding }
    else { st with phase = Racing { round = round + 1; pref = bit st.cand (round + 1); race = fresh_race } }
  else { st with phase = Rescanning { round; idx = 0 } }

let race_read st ~round ~pref race value =
  let n = st.n in
  let c = count_of value in
  let own_phase = race.step < n in
  let idx = race.step mod n in
  let s_own = if own_phase then race.s_own + c else race.s_own in
  let s_riv = if own_phase then race.s_riv else race.s_riv + c in
  let my_own = if own_phase && idx = st.me then c else race.my_own in
  let my_riv = if (not own_phase) && idx = st.me then c else race.my_riv in
  if race.step = (2 * n) - 1 then
    if s_own >= s_riv + n then bit_decided st round pref
    else if s_riv > s_own then
      { st with phase = Bumping { round; pref = 1 - pref; next = my_riv + 1 } }
    else { st with phase = Bumping { round; pref; next = my_own + 1 } }
  else
    { st with phase = Racing { round; pref; race = { step = race.step + 1; s_own; s_riv; my_own; my_riv } } }

let matches_prefix st ~round v = v land ((1 lsl (round + 1)) - 1) = st.prefix

let encode_race buf r =
  Value.add_varint buf r.step;
  Value.add_varint buf r.s_own;
  Value.add_varint buf r.s_riv;
  Value.add_varint buf r.my_own;
  Value.add_varint buf r.my_riv

let encode_state buf st =
  Value.add_varint buf st.me;
  Value.add_varint buf st.cand;
  Value.add_varint buf st.prefix;
  match st.phase with
  | Post -> Buffer.add_char buf 'P'
  | Racing { round; pref; race } ->
    Buffer.add_char buf 'R';
    Value.add_varint buf round;
    Value.add_varint buf pref;
    encode_race buf race
  | Bumping { round; pref; next } ->
    Buffer.add_char buf 'B';
    Value.add_varint buf round;
    Value.add_varint buf pref;
    Value.add_varint buf next
  | Rescanning { round; idx } ->
    Buffer.add_char buf 'S';
    Value.add_varint buf round;
    Value.add_varint buf idx
  | Deciding -> Buffer.add_char buf 'D'

let make ~n ~bits : state Protocol.t =
  if n < 1 then invalid_arg "Multivalued.make: n >= 1";
  if bits < 1 || bits > 20 then invalid_arg "Multivalued.make: 1 <= bits <= 20";
  {
    name = Printf.sprintf "multi-%d-bit-%d" bits n;
    description = "multivalued consensus: posts + one binary race per bit";
    num_processes = n;
    num_registers = n + (2 * n * bits);
    init =
      (fun ~pid ~input ->
        let v = Value.to_int input in
        if v < 0 || v >= 1 lsl bits then
          invalid_arg "Multivalued.init: input out of range";
        { me = pid; n; bits; cand = v; prefix = 0; phase = Post });
    poised =
      (fun st ->
        match st.phase with
        | Post -> Action.Write (post_reg st.me, Value.int st.cand)
        | Racing { round; pref; race } ->
          let v = if race.step < st.n then pref else 1 - pref in
          Action.Read (race_slot ~n:st.n round v (race.step mod st.n))
        | Bumping { round; pref; next } ->
          Action.Write (race_slot ~n:st.n round pref st.me, Value.int next)
        | Rescanning { idx; _ } -> Action.Read (post_reg idx)
        | Deciding -> Action.Decide (Value.int st.cand));
    on_read =
      (fun st value ->
        match st.phase with
        | Racing { round; pref; race } -> race_read st ~round ~pref race value
        | Rescanning { round; idx } ->
          let adopt v =
            (* adopted candidate matches the decided prefix; race on *)
            let st = { st with cand = v } in
            if round + 1 = st.bits then { st with phase = Deciding }
            else
              { st with
                phase = Racing { round = round + 1; pref = bit v (round + 1); race = fresh_race }
              }
          in
          (match value with
           | Value.Int v when matches_prefix st ~round v -> adopt v
           | _ ->
             if idx + 1 >= st.n then
               (* cannot happen in a legal execution: the winning bit's
                  proposer posted a matching value before racing *)
               invalid_arg "Multivalued: no posted value matches the decided prefix"
             else { st with phase = Rescanning { round; idx = idx + 1 } })
        | Post | Bumping _ | Deciding -> invalid_arg "Multivalued.on_read");
    on_write =
      (fun st ->
        match st.phase with
        | Post ->
          { st with phase = Racing { round = 0; pref = bit st.cand 0; race = fresh_race } }
        | Bumping { round; pref; _ } ->
          { st with phase = Racing { round; pref; race = fresh_race } }
        | Racing _ | Rescanning _ | Deciding -> invalid_arg "Multivalued.on_write");
    on_swap = Protocol.no_swap;
    on_flip = Protocol.no_flip;
    pp_state =
      (fun ppf st ->
        let phase =
          match st.phase with
          | Post -> "post"
          | Racing { round; _ } -> Printf.sprintf "race@%d" round
          | Bumping { round; _ } -> Printf.sprintf "bump@%d" round
          | Rescanning { round; _ } -> Printf.sprintf "rescan@%d" round
          | Deciding -> "decide"
        in
        Fmt.pf ppf "⟨p%d cand=%d pfx=%d %s⟩" st.me st.cand st.prefix phase);
    encode = Protocol.Packed encode_state;
  }
