open Ts_model

let slot ~n v i = (v * n) + i

type phase =
  | Scanning of {
      step : int;  (* next slot to read, 0 .. 2n-1; < n means own counter *)
      s_own : int;  (* sum of own-preference slots read so far *)
      s_riv : int;  (* sum of rival slots read so far *)
      my_own : int;  (* last read of our own slot in the own counter *)
      my_riv : int;  (* last read of our own slot in the rival counter *)
    }
  | Tossing of { my_own : int; my_riv : int }
      (* randomized variant only: tie observed, coin pending; the coin
         picks which counter the next increment goes to *)
  | Incrementing of int  (* pending write of this count to our pref slot *)
  | Deciding

type state = {
  me : int;
  n : int;
  pref : int;  (* current preference, 0 or 1 *)
  phase : phase;
}

let fresh_scan = Scanning { step = 0; s_own = 0; s_riv = 0; my_own = 0; my_riv = 0 }

let init ~pid ~input =
  let pref = Value.to_int input in
  if pref <> 0 && pref <> 1 then
    invalid_arg "Racing.init: input must be 0 or 1";
  { me = pid; n = 0 (* patched by make *); pref; phase = fresh_scan }

let count_of = function
  | Value.Bot -> 0
  | v -> Value.to_int v

(* Which register the scan reads at [step]: own-preference slots first. *)
let scan_target st step =
  let v = if step < st.n then st.pref else 1 - st.pref in
  let i = step mod st.n in
  slot ~n:st.n v i

let poised st =
  match st.phase with
  | Scanning s -> Action.Read (scan_target st s.step)
  | Tossing _ -> Action.Flip
  | Incrementing c -> Action.Write (slot ~n:st.n st.pref st.me, Value.int c)
  | Deciding -> Action.Decide (Value.int st.pref)

(* End-of-collect transition, shared by both variants. [tie_flips] selects
   the randomized behaviour on exact ties. *)
let finish_scan ~tie_flips st s_own s_riv my_own my_riv =
  if s_own >= s_riv + st.n then { st with phase = Deciding }
  else if s_riv > s_own then
    { st with pref = 1 - st.pref; phase = Incrementing (my_riv + 1) }
  else if tie_flips && s_own = s_riv && s_own > 0 then
    (* Both counters positive and tied: both values are genuinely in play
       (a positive counter traces back to some process's input, so the
       coin cannot smuggle in a value nobody proposed — validity), and a
       random increment gives the tie-breaking walk its drift. *)
    { st with phase = Tossing { my_own; my_riv } }
  else { st with phase = Incrementing (my_own + 1) }

let on_read ~tie_flips st value =
  match st.phase with
  | Scanning s ->
    let c = count_of value in
    let own_phase = s.step < st.n in
    let idx = s.step mod st.n in
    let s_own = if own_phase then s.s_own + c else s.s_own in
    let s_riv = if own_phase then s.s_riv else s.s_riv + c in
    let my_own = if own_phase && idx = st.me then c else s.my_own in
    let my_riv = if (not own_phase) && idx = st.me then c else s.my_riv in
    if s.step = (2 * st.n) - 1 then
      finish_scan ~tie_flips st s_own s_riv my_own my_riv
    else
      { st with phase = Scanning { step = s.step + 1; s_own; s_riv; my_own; my_riv } }
  | Tossing _ | Incrementing _ | Deciding ->
    invalid_arg "Racing.on_read: not poised to read"

let on_write st =
  match st.phase with
  | Incrementing _ -> { st with phase = fresh_scan }
  | Scanning _ | Tossing _ | Deciding ->
    invalid_arg "Racing.on_write: not poised to write"

let on_flip st outcome =
  match st.phase with
  | Tossing { my_own; my_riv } ->
    (* The coin picks which counter to push: with an observed tie, an
       increment of either side is justified (we are not strictly behind),
       and actually incrementing is what makes the tie-breaking random
       walk drift.  Our slot values in both counters were captured during
       the scan, so the write value is known either way. *)
    let chosen = if outcome then 1 else 0 in
    if chosen = st.pref then { st with phase = Incrementing (my_own + 1) }
    else { st with pref = chosen; phase = Incrementing (my_riv + 1) }
  | Scanning _ | Incrementing _ | Deciding ->
    invalid_arg "Racing.on_flip: not poised to flip"

let pp_state ppf st =
  let phase =
    match st.phase with
    | Scanning s -> Printf.sprintf "scan@%d(%d/%d)" s.step s.s_own s.s_riv
    | Tossing _ -> "toss"
    | Incrementing c -> Printf.sprintf "inc->%d" c
    | Deciding -> "decide"
  in
  Fmt.pf ppf "⟨p%d pref=%d %s⟩" st.me st.pref phase

(* Packed key encoding: tag byte per phase + varint fields; [n] is fixed
   per protocol instance so it is not part of the key. *)
let encode_state buf st =
  Value.add_varint buf st.me;
  Value.add_varint buf st.pref;
  match st.phase with
  | Scanning s ->
    Buffer.add_char buf 'S';
    Value.add_varint buf s.step;
    Value.add_varint buf s.s_own;
    Value.add_varint buf s.s_riv;
    Value.add_varint buf s.my_own;
    Value.add_varint buf s.my_riv
  | Tossing { my_own; my_riv } ->
    Buffer.add_char buf 'T';
    Value.add_varint buf my_own;
    Value.add_varint buf my_riv
  | Incrementing c ->
    Buffer.add_char buf 'I';
    Value.add_varint buf c
  | Deciding -> Buffer.add_char buf 'D'

let build ~n ~tie_flips ~name ~description : state Protocol.t =
  if n < 1 then invalid_arg "Racing.make: n must be >= 1";
  {
    name;
    description;
    num_processes = n;
    num_registers = 2 * n;
    init = (fun ~pid ~input -> { (init ~pid ~input) with n });
    poised;
    on_read = on_read ~tie_flips;
    on_write;
    on_swap = Protocol.no_swap;
    on_flip =
      (if tie_flips then on_flip
       else fun _ _ -> invalid_arg "Racing: deterministic variant flipped");
    pp_state;
    encode = Protocol.Packed encode_state;
  }

let make ~n =
  build ~n ~tie_flips:false ~name:(Printf.sprintf "racing-%d" n)
    ~description:"obstruction-free racing-counters consensus (2n registers)"

let make_randomized ~n =
  build ~n ~tie_flips:true ~name:(Printf.sprintf "racing-rand-%d" n)
    ~description:"randomized racing-counters consensus (local coin on ties)"
