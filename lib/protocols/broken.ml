open Ts_model

type state =
  | Lww of { input : int; stage : int }  (* 0 write, 1 read, 2 decide v *)
  | Lww_done of int
  | Max of { me : int; n : int; pref : int; step : int; seen : int list }
  | Max_write of { me : int; n : int; pref : int; target : int }
  | Max_decide of int
  | Const of int
  | Spin
  | Wait of { me : int; input : int }
  | Wait_scan of { me : int; n : int; input : int; pos : int; best : int }
  | Wait_decide of int
  | Rogue of { input : int; stage : int }  (* 0: stray write, 1: decide *)
  | Scribble of { me : int; n : int; input : int; announced : bool }

let pp_state ppf = function
  | Lww { input; stage } -> Fmt.pf ppf "lww(%d,@%d)" input stage
  | Lww_done v -> Fmt.pf ppf "lww-done(%d)" v
  | Max { pref; step; _ } -> Fmt.pf ppf "max(pref=%d,@%d)" pref step
  | Max_write { pref; target; _ } -> Fmt.pf ppf "max-w(%d->R%d)" pref target
  | Max_decide v -> Fmt.pf ppf "max-d(%d)" v
  | Const v -> Fmt.pf ppf "const(%d)" v
  | Spin -> Fmt.string ppf "spin"
  | Wait { input; _ } -> Fmt.pf ppf "wait(%d)" input
  | Wait_scan { pos; best; _ } -> Fmt.pf ppf "wait-scan(@%d,best=%d)" pos best
  | Wait_decide v -> Fmt.pf ppf "wait-d(%d)" v
  | Rogue { input; stage } -> Fmt.pf ppf "rogue(%d,@%d)" input stage
  | Scribble { me; announced; _ } ->
    Fmt.pf ppf "scribble(p%d,%s)" me (if announced then "deciding" else "writing")

let encode_state buf = function
  | Lww { input; stage } ->
    Buffer.add_char buf 'L';
    Value.add_varint buf input;
    Value.add_varint buf stage
  | Lww_done v ->
    Buffer.add_char buf 'l';
    Value.add_varint buf v
  | Max { me; n = _; pref; step; seen } ->
    Buffer.add_char buf 'M';
    Value.add_varint buf me;
    Value.add_varint buf pref;
    Value.add_varint buf step;
    Value.add_varint buf (List.length seen);
    List.iter (Value.add_varint buf) seen
  | Max_write { me; n = _; pref; target } ->
    Buffer.add_char buf 'W';
    Value.add_varint buf me;
    Value.add_varint buf pref;
    Value.add_varint buf target
  | Max_decide v ->
    Buffer.add_char buf 'm';
    Value.add_varint buf v
  | Const v ->
    Buffer.add_char buf 'C';
    Value.add_varint buf v
  | Spin -> Buffer.add_char buf 'Z'
  | Wait { me; input } ->
    Buffer.add_char buf 'A';
    Value.add_varint buf me;
    Value.add_varint buf input
  | Wait_scan { me; n = _; input; pos; best } ->
    Buffer.add_char buf 'S';
    Value.add_varint buf me;
    Value.add_varint buf input;
    Value.add_varint buf pos;
    Value.add_varint buf best
  | Wait_decide v ->
    Buffer.add_char buf 'D';
    Value.add_varint buf v
  | Rogue { input; stage } ->
    Buffer.add_char buf 'R';
    Value.add_varint buf input;
    Value.add_varint buf stage
  | Scribble { me; n = _; input; announced } ->
    Buffer.add_char buf 'B';
    Value.add_varint buf me;
    Value.add_varint buf input;
    Buffer.add_char buf (if announced then '1' else '0')

let base ~name ~description ~n ~regs ~init ~poised ~on_read ~on_write :
    state Protocol.t =
  {
    name;
    description;
    num_processes = n;
    num_registers = regs;
    init;
    poised;
    on_read;
    on_write;
    on_swap = Protocol.no_swap;
    on_flip = Protocol.no_flip;
    pp_state;
    encode = Protocol.Packed encode_state;
  }

let last_write_wins ~n =
  base ~name:(Printf.sprintf "broken-lww-%d" n)
    ~description:"write input to R0, decide what a later read returns" ~n
    ~regs:1
    ~init:(fun ~pid:_ ~input -> Lww { input = Value.to_int input; stage = 0 })
    ~poised:(function
      | Lww { input; stage = 0 } -> Action.Write (0, Value.int input)
      | Lww { stage = 1; _ } -> Action.Read 0
      | Lww_done v -> Action.Decide (Value.int v)
      | _ -> assert false)
    ~on_read:(fun st v ->
      match st with
      | Lww { stage = 1; _ } -> Lww_done (Value.to_int v)
      | _ -> assert false)
    ~on_write:(function
      | Lww r -> Lww { r with stage = 1 }
      | _ -> assert false)

let naive_max ~n =
  let scan me n pref = Max { me; n; pref; step = 0; seen = [] } in
  base ~name:(Printf.sprintf "broken-max-%d" n)
    ~description:"roundless max-racing: decide on unanimous scan" ~n ~regs:n
    ~init:(fun ~pid ~input -> scan pid n (Value.to_int input))
    ~poised:(function
      | Max { step; _ } -> Action.Read step
      | Max_write { target; pref; _ } -> Action.Write (target, Value.int pref)
      | Max_decide v -> Action.Decide (Value.int v)
      | _ -> assert false)
    ~on_read:(fun st v ->
      match st with
      | Max ({ me; n; pref; step; seen } as r) ->
        let c = match v with Value.Bot -> -1 | v -> Value.to_int v in
        let seen = seen @ [ c ] in
        if step < n - 1 then Max { r with step = step + 1; seen }
        else if List.for_all (fun x -> x = pref) seen then Max_decide pref
        else
          let pref = List.fold_left max pref seen in
          let target =
            match
              List.find_index (fun x -> x <> pref) seen
            with
            | Some i -> i
            | None -> 0
          in
          Max_write { me; n; pref; target }
      | _ -> assert false)
    ~on_write:(function
      | Max_write { me; n; pref; _ } -> scan me n pref
      | _ -> assert false)

let oblivious_seven ~n =
  base ~name:(Printf.sprintf "broken-const-%d" n)
    ~description:"decides 7 whatever the inputs" ~n ~regs:1
    ~init:(fun ~pid:_ ~input:_ -> Const 7)
    ~poised:(function Const v -> Action.Decide (Value.int v) | _ -> assert false)
    ~on_read:(fun _ _ -> assert false)
    ~on_write:(fun _ -> assert false)

let wait_for_all ~n =
  base ~name:(Printf.sprintf "broken-wait-%d" n)
    ~description:"announce input, spin until all slots filled, decide max" ~n
    ~regs:n
    ~init:(fun ~pid ~input -> Wait { me = pid; input = Value.to_int input })
    ~poised:(function
      | Wait { me; input } -> Action.Write (me, Value.int input)
      | Wait_scan { pos; _ } -> Action.Read pos
      | Wait_decide v -> Action.Decide (Value.int v)
      | _ -> assert false)
    ~on_read:(fun st v ->
      match st with
      | Wait_scan ({ me = _; n; input; pos; best } as r) ->
        (match v with
         | Value.Bot ->
           (* someone hasn't announced yet: restart the scan *)
           Wait_scan { r with pos = 0; best = input }
         | v ->
           let best = max best (Value.to_int v) in
           if pos = n - 1 then Wait_decide best
           else Wait_scan { r with pos = pos + 1; best })
      | _ -> assert false)
    ~on_write:(function
      | Wait { me; input } -> Wait_scan { me; n; input; pos = 0; best = input }
      | _ -> assert false)

let rogue_writer ~n =
  base ~name:(Printf.sprintf "broken-rogue-%d" n)
    ~description:"declares 1 register but writes register 1 (out of range)" ~n
    ~regs:1
    ~init:(fun ~pid:_ ~input -> Rogue { input = Value.to_int input; stage = 0 })
    ~poised:(function
      | Rogue { input; stage = 0 } -> Action.Write (1, Value.int input)
      | Rogue { input; _ } -> Action.Decide (Value.int input)
      | _ -> assert false)
    ~on_read:(fun _ _ -> assert false)
    ~on_write:(function
      | Rogue r -> Rogue { r with stage = 1 }
      | _ -> assert false)

(* The crosscheck layer's planted divergence: each process announces its
   input in its own register, then decides the COMPLEMENT of it.  Every
   run terminates (so the static lint passes and both engines get to
   step it), and the revisionist engine happily parks every process on
   its own fresh announcing write and claims the n-1 bound — but this is
   not a consensus protocol at all: a solo run of p decides 1 - input,
   so the Lemmas engine correctly refuses at Proposition 2 (p cannot
   decide its own input solo) and the two engines must disagree.
   [tightspace crosscheck] is required to catch exactly this. *)
let scribbler ~n =
  base ~name:(Printf.sprintf "broken-scribbler-%d" n)
    ~description:"announce input, decide its complement" ~n ~regs:n
    ~init:(fun ~pid ~input ->
      Scribble { me = pid; n; input = Value.to_int input; announced = false })
    ~poised:(function
      | Scribble { me; input; announced = false; _ } ->
        Action.Write (me, Value.int input)
      | Scribble { input; announced = true; _ } ->
        Action.Decide (Value.int (1 - input))
      | _ -> assert false)
    ~on_read:(fun _ _ -> assert false)
    ~on_write:(function
      | Scribble r -> Scribble { r with announced = true }
      | _ -> assert false)

let insomniac ~n =
  base ~name:(Printf.sprintf "broken-spin-%d" n)
    ~description:"reads R0 forever, never decides" ~n ~regs:1
    ~init:(fun ~pid:_ ~input:_ -> Spin)
    ~poised:(function Spin -> Action.Read 0 | _ -> assert false)
    ~on_read:(fun st _ -> st)
    ~on_write:(fun _ -> assert false)
