(** The one name → protocol-instance factory.

    Before the service layer there were two independent copies of the
    "CLI name to protocol" match (the [tightspace] front end and the
    analysis registry); a long-lived daemon answering typed queries by
    protocol name makes a third copy untenable.  This is the single
    authority: every consumer — CLI subcommands, the analysis registry's
    names, the [ts_service] dispatcher and its cache keys — resolves
    protocol names here, so a name means the same instance everywhere.

    Names are {e stable identifiers}: they participate in service cache
    keys, so renaming or re-parameterizing an entry silently changes every
    digest built on it.  Add names freely; change existing semantics only
    together with a service cache-version bump. *)

open Ts_model

(** [find name ~n] instantiates protocol [name] for [n] processes.
    [Error msg] names the unknown protocol or the unsupported [n]
    (e.g. ["swap"] exists only for [n = 2]). *)
val find : string -> n:int -> (Protocol.packed, string) result

(** Registered names, in display order — the vocabulary accepted by
    [find], the CLI's [--protocol] and the service's ["protocol"]
    request field. *)
val names : unit -> string list

(** [names_doc ()] is the comma-separated name list, for CLI [--help]
    strings and error messages. *)
val names_doc : unit -> string
