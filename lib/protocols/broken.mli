(** Deliberately incorrect protocols, used as negative controls.

    A verifier that never rejects anything verifies nothing: these
    protocols each violate exactly one consensus property, and the test
    suite asserts that the model checker (and, where applicable, the
    adversary engine's premise checks) catch them. *)

type state

(** First write wins... except it doesn't: each process writes its input to
    register 0, reads it back, and decides what it read.  Violates
    agreement for n >= 2 (write/write/read/read interleaving). *)
val last_write_wins : n:int -> state Ts_model.Protocol.t

(** "Max racing" without rounds: scan all n registers; decide when all
    equal your preference; otherwise adopt the maximum value present and
    write it to the first disagreeing register.  Looks plausible, violates
    agreement: a decided 0 can be steamrolled by a late waker preferring 1.
    This is the protocol the racing-counters design notes reject. *)
val naive_max : n:int -> state Ts_model.Protocol.t

(** Decides the constant 7 regardless of inputs: violates validity. *)
val oblivious_seven : n:int -> state Ts_model.Protocol.t

(** The classic resilience counterexample: each process announces its input
    in its own slot, then scans all [n] slots — restarting whenever a slot
    is still empty — and decides the maximum once every slot is filled.
    Deterministic; satisfies agreement and validity, and the full group
    always terminates ([0]-resilient).  But it is not [1]-resilient: crash
    any one process before its announcing write and the survivors scan
    forever.  {!Ts_checker.Explore.check_t_resilient} finds the stuck
    witness at the initial configuration. *)
val wait_for_all : n:int -> state Ts_model.Protocol.t

(** Reads register 0 forever: violates (nondeterministic solo)
    termination. *)
val insomniac : n:int -> state Ts_model.Protocol.t

(** The two-engine crosscheck's planted divergence fixture: each process
    announces its input in its own register, then decides the
    {e complement} of it.  Every run terminates — so the static lint
    passes and both engines get to step it — but a solo run of [p]
    decides [1 - input], so this is not a consensus protocol.  The
    revisionist engine still parks every process on its own announcing
    write and claims the [n - 1] bound, while the Lemmas engine
    correctly refuses at Proposition 2 ([p] cannot decide its own input
    solo); the crosscheck gate must flag exactly this disagreement
    ([Ts_analysis.Crosscheck], [tightspace crosscheck --protocol
    broken-scribbler]). *)
val scribbler : n:int -> state Ts_model.Protocol.t

(** Declares a single register but is poised to write register 1 — outside
    the declared range.  The footprint lint's negative control: the stray
    write is caught {e statically} ({!Ts_analysis.Lint}), before any
    execution engine would crash on it. *)
val rogue_writer : n:int -> state Ts_model.Protocol.t
