open Ts_model

type state =
  | Swapping of int  (* my input *)
  | Decided_on of Value.t

let make ~n ~name ~description : state Protocol.t =
  {
    name;
    description;
    num_processes = n;
    num_registers = 1;
    init = (fun ~pid:_ ~input -> Swapping (Value.to_int input));
    poised =
      (function
        | Swapping v -> Action.Swap (0, Value.int v)
        | Decided_on v -> Action.Decide v);
    on_read = (fun _ _ -> invalid_arg "Swap_consensus.on_read");
    on_write = (fun _ -> invalid_arg "Swap_consensus.on_write");
    on_swap =
      (fun st old ->
        match st with
        | Swapping mine ->
          (* first swapper displaces ⊥ and wins; later swappers adopt the
             value they displaced *)
          Decided_on (if Value.is_bot old then Value.int mine else old)
        | Decided_on _ -> invalid_arg "Swap_consensus.on_swap");
    on_flip = Protocol.no_flip;
    pp_state =
      (fun ppf st ->
        match st with
        | Swapping v -> Fmt.pf ppf "⟨swap %d⟩" v
        | Decided_on v -> Fmt.pf ppf "⟨decided %a⟩" Value.pp v);
    encode =
      Protocol.Packed
        (fun buf st ->
          match st with
          | Swapping v ->
            Buffer.add_char buf 'S';
            Value.add_varint buf v
          | Decided_on v ->
            Buffer.add_char buf 'D';
            Value.encode buf v);
  }

let two_process () =
  make ~n:2 ~name:"swap-consensus-2"
    ~description:"wait-free 2-process consensus from one swap register"

let naive_chain ~n =
  if n < 3 then invalid_arg "Swap_consensus.naive_chain: n >= 3";
  make ~n ~name:(Printf.sprintf "swap-chain-%d" n)
    ~description:"the 2-process swap rule, wrongly applied to n >= 3 (broken)"
