open Ts_model

(* Display order is documentation order: legitimate protocols first, the
   negative controls after.  The names are cache-key material — see the
   .mli warning before touching an existing entry. *)
let entries :
    (string * string * (n:int -> (Protocol.packed, string) result)) list =
  [
    ("racing", "Zhu's racing-counters binary consensus",
     fun ~n -> Ok (Protocol.Packed (Racing.make ~n)));
    ("racing-rand", "racing with randomized tie-breaking coin flips",
     fun ~n -> Ok (Protocol.Packed (Racing.make_randomized ~n)));
    ("swap", "swap-register consensus (two processes)",
     fun ~n ->
       if n = 2 then Ok (Protocol.Packed (Swap_consensus.two_process ()))
       else Error "swap consensus exists only for n = 2");
    ("kset", "partitioned k-set agreement (k = 2)",
     fun ~n ->
       if n >= 2 then Ok (Protocol.Packed (Kset.make ~n ~k:2))
       else Error "kset with k = 2 needs n >= 2");
    ("multivalued", "multivalued consensus over 2-bit inputs",
     fun ~n -> Ok (Protocol.Packed (Multivalued.make ~n ~bits:2)));
    ("swap-chain", "naive chained swap (negative control)",
     fun ~n -> Ok (Protocol.Packed (Swap_consensus.naive_chain ~n)));
    ("broken-lww", "last-write-wins (agreement violation control)",
     fun ~n -> Ok (Protocol.Packed (Broken.last_write_wins ~n)));
    ("broken-max", "naive max (agreement violation control)",
     fun ~n -> Ok (Protocol.Packed (Broken.naive_max ~n)));
    ("broken-const", "decides a constant (validity violation control)",
     fun ~n -> Ok (Protocol.Packed (Broken.oblivious_seven ~n)));
    ("broken-spin", "spins forever (solo-termination control)",
     fun ~n -> Ok (Protocol.Packed (Broken.insomniac ~n)));
    ("broken-wait", "waits for all (resilience violation control)",
     fun ~n -> Ok (Protocol.Packed (Broken.wait_for_all ~n)));
    ("broken-rogue", "writes outside its declared registers (lint control)",
     fun ~n -> Ok (Protocol.Packed (Broken.rogue_writer ~n)));
    ("broken-scribbler", "announces then decides the complement (crosscheck divergence control)",
     fun ~n -> Ok (Protocol.Packed (Broken.scribbler ~n)));
  ]

let find name ~n =
  match List.find_opt (fun (nm, _, _) -> String.equal nm name) entries with
  | Some (_, _, make) -> make ~n
  | None -> Error ("unknown protocol: " ^ name)

let names () = List.map (fun (nm, _, _) -> nm) entries
let names_doc () = String.concat ", " (names ())
