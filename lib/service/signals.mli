(** SIGINT/SIGTERM plumbing for long-running runs.

    Two consumers with one need — "do something orderly when the user
    interrupts":

    - the {e daemon} installs a non-exiting handler that flips its stop
      flag, turning the signal into a graceful drain;
    - the {e long-running CLI subcommands} ([check], [resilient],
      [trace]) install an exiting handler that flushes whatever partial
      observability output exists (metrics snapshot, buffered spans)
      before leaving with the conventional [128 + signo] code.

    The installed callback is kept reachable so tests can drive the exact
    code path a real delivery would run ({!simulate}) without sending a
    signal or exiting the test runner. *)

(** The conventional shell exit code for dying by this signal: 130 for
    SIGINT, 143 for SIGTERM (the only two this module installs). *)
val exit_code : int -> int

(** [install ~exit_after ~on_signal] registers [on_signal] for SIGINT and
    SIGTERM.  With [exit_after], the process exits with {!exit_code}
    after the callback returns (the CLI mode); without, delivery only
    runs the callback (the daemon mode — the callback must make the
    process wind down itself).  Installing again replaces the previous
    callback. *)
val install : exit_after:bool -> on_signal:(int -> unit) -> unit

(** [simulate signo] runs the installed callback exactly as a delivery
    would, but never exits — the test hook.  No-op when nothing is
    installed. *)
val simulate : int -> unit

(** Whether a callback is currently installed. *)
val installed : unit -> bool

(** Remove the handlers and restore default signal behaviour. *)
val uninstall : unit -> unit
