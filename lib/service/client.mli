(** Minimal client for the [tightspace serve] wire protocol.

    Used by the [tightspace query] subcommand, the load generator and the
    end-to-end tests.  One {!conn} is one TCP connection carrying any
    number of sequential request/response exchanges. *)

module Json := Ts_analysis.Json

type conn

(** [connect ~port ()] opens a connection to a serving daemon.
    [host] defaults to ["127.0.0.1"].
    @raise Unix.Unix_error when the daemon is not reachable. *)
val connect : ?host:string -> port:int -> unit -> conn

val close : conn -> unit

(** [rpc conn doc] frames and sends [doc], then reads and parses one
    response frame.  [Error _] covers transport failures and unparsable
    responses — protocol-level errors arrive as [Ok] documents with an
    ["error"] field, exactly as the daemon sent them. *)
val rpc : conn -> Json.t -> (Json.t, string) result

(** [send_raw conn bytes] writes [bytes] verbatim — no framing, no
    validation.  Exists so tests and the CI smoke can poke the daemon
    with deliberately malformed input. *)
val send_raw : conn -> string -> unit

(** [recv conn] reads one response frame without having sent anything
    through {!rpc} (pairs with {!send_raw}). *)
val recv : conn -> (Json.t, string) result

(** One-shot convenience: connect, send one request, read one response,
    close. *)
val request : ?host:string -> port:int -> Json.t -> (Json.t, string) result
