(** Client for the [tightspace serve] wire protocol — a bare connection
    layer plus a resilient, retrying client built on it.

    Used by the [tightspace query] subcommand, the load generator and
    the end-to-end tests.  One {!conn} is one TCP connection carrying
    any number of sequential request/response exchanges.

    {b Error taxonomy.}  No function here lets [Unix.Unix_error] escape:
    every failure is an [Error msg] whose text starts with a stable tag
    (recoverable with {!error_tag}) —

    - ["conn_reset"]: the transport died (peer closed, RST, EPIPE, a
      stream that ended mid-frame);
    - ["parse"]: the peer's bytes are not the protocol (bad frame
      header, oversized claim, unparsable JSON payload);
    - ["timeout"]: the per-request deadline expired (SO_RCVTIMEO /
      SO_SNDTIMEO);
    - ["connect"]: no connection could be established;
    - ["io"]: any other OS-reported failure.

    Protocol-level failures ([{"ok":false,...}]) are {e not} errors at
    this layer: they arrive as [Ok] documents exactly as the daemon sent
    them.  The resilient {!call} additionally interprets the retryable
    subset of them (see below). *)

module Json := Ts_analysis.Json

(** {1 One connection} *)

type conn

(** [connect ~port ()] opens a connection to a serving daemon.  [host]
    defaults to ["127.0.0.1"].  [Error "connect: ..."] when unreachable. *)
val connect : ?host:string -> port:int -> unit -> (conn, string) result

(** [connect] for contexts that know the daemon is up (tests, bench
    setup); failures raise [Failure] with the tagged message. *)
val connect_exn : ?host:string -> port:int -> unit -> conn

val close : conn -> unit

(** [rpc conn doc] frames and sends [doc], then reads and parses one
    response frame.  [Error _] covers transport failures and unparsable
    responses, tagged as above — protocol-level errors arrive as [Ok]
    documents with an ["error"] field, exactly as the daemon sent them. *)
val rpc : conn -> Json.t -> (Json.t, string) result

(** [send_raw conn bytes] writes [bytes] verbatim — no framing, no
    validation.  Exists so tests and the CI smoke can poke the daemon
    with deliberately malformed input.
    @raise Unix.Unix_error if the socket is already dead (tests pair it
    with {!recv}/{!rpc}, which report the death as a tagged [Error]). *)
val send_raw : conn -> string -> unit

(** [recv conn] reads one response frame without having sent anything
    through {!rpc} (pairs with {!send_raw}). *)
val recv : conn -> (Json.t, string) result

(** One-shot convenience: connect, send one request, read one response,
    close.  Connect failures come back as tagged [Error]s. *)
val request : ?host:string -> port:int -> Json.t -> (Json.t, string) result

(** [error_tag msg] is the taxonomy tag of a tagged error message (the
    text before the first [':'], e.g. ["conn_reset"]). *)
val error_tag : string -> string

(** {1 The resilient client}

    A {!client} owns (at most) one connection and a retry budget, and
    turns a flaky network — the chaos proxy's habitat — into at most
    [attempts] tries per call.  Retrying whole requests is safe by
    construction: every operation the daemon serves is an idempotent
    pure query — asking twice can cost time, never correctness (the
    idempotency argument in docs/SERVICE.md "Failure model").

    What {!call} retries: every transport failure (reset, timeout,
    parse damage, failed connect — the connection is dropped and
    reopened first, since a transport fault poisons request/response
    pairing), plus the retryable failure envelopes [overloaded] and
    [shutting-down] (honoring their [retry_after_ms] hint when present)
    and [bad-frame]/[bad-json] — which, in response to a request this
    client framed and serialized itself, indicate in-flight corruption,
    not a malformed request.  Any other failure envelope
    ([unknown-protocol], [invalid-argument], ...) is a deterministic
    answer and is returned as-is without burning retries.

    Between attempts the client sleeps an exponential backoff with
    seeded half-jitter (uniform in [d/2, d], d doubling from
    [backoff_ms] up to [backoff_max_ms]) — deterministic given
    [policy.seed].

    The circuit breaker counts consecutive failed attempts; at
    [breaker_threshold] it opens for [breaker_cooldown_ms].  Because
    requests are idempotent and the caller asked for an answer, an open
    breaker {e delays} (sleeps out the remaining cooldown, then lets one
    half-open probe through) rather than failing fast; a successful
    probe closes it, a failed one re-opens it.  [breaker_threshold = 0]
    disables the breaker.

    Not thread-safe: one {!client} per domain (the load generator gives
    each worker its own). *)

type policy = {
  attempts : int;  (** total tries per {!call}, >= 1 *)
  backoff_ms : int;  (** first backoff step *)
  backoff_max_ms : int;  (** backoff ceiling *)
  timeout_ms : int;  (** per-request deadline; 0 = none *)
  breaker_threshold : int;  (** consecutive failures to open; 0 = off *)
  breaker_cooldown_ms : int;  (** how long an open breaker rests *)
  seed : int;  (** jitter determinism *)
}

(** 5 attempts, 20 ms doubling to 2 s, 10 s deadline, breaker at 8
    consecutive failures resting 500 ms. *)
val default_policy : policy

type client

val make : ?host:string -> ?policy:policy -> port:int -> unit -> client

(** [call client doc] sends [doc] with retries per the policy.  [Ok]
    responses (including non-retryable failure envelopes) come back
    as-is; [Error "exhausted: ..."] after the final attempt fails. *)
val call : client -> Json.t -> (Json.t, string) result

(** Close the underlying connection (the next {!call} reconnects). *)
val shutdown : client -> unit

type breaker_state =
  | Closed
  | Open
  | Half_open

val breaker_state : client -> breaker_state

type stats = {
  calls : int;
  attempts_made : int;
  retries : int;  (** attempts beyond each call's first *)
  reconnects : int;  (** connects beyond the client's first *)
  timeouts : int;
  conn_resets : int;
  parse_errors : int;
  connect_errors : int;
  server_busy : int;  (** retryable failure envelopes seen *)
  retry_after_honored : int;  (** times a server [retry_after_ms] was obeyed *)
  breaker_opens : int;
}

val stats : client -> stats
