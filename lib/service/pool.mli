(** A fixed pool of OCaml domains draining a bounded job queue.

    The daemon's concurrency backbone: connection handlers are submitted
    as jobs, [workers] domains execute them, and the queue bound is the
    admission-control valve — a full queue {e rejects} new work
    immediately instead of buffering unboundedly, which is what lets the
    server answer "overloaded" while it still has the breath to say so.

    Shutdown is a drain: no new jobs are accepted, every queued and
    running job completes, then the workers are joined.  Jobs must honour
    the cooperative stop signal they are given by the server (they poll a
    stop flag); the pool itself never kills a domain.

    A job that raises is contained: the exception is recorded in the
    pool's error counter and the worker survives to take the next job. *)

type t

(** [create ~workers ~queue_cap] spawns the worker domains immediately.
    @raise Invalid_argument unless both are positive. *)
val create : workers:int -> queue_cap:int -> t

type submit_result =
  | Accepted
  | Overloaded  (** queue at capacity — backpressure, try again later *)
  | Shutting_down  (** drain in progress — no new work *)

(** [submit t job] enqueues [job] for some worker, unless the queue is
    full or the pool is draining.  Never blocks. *)
val submit : t -> (unit -> unit) -> submit_result

(** Jobs currently queued (not yet picked up by a worker).  Also mirrored
    to the ["service.queue.depth"] gauge on every transition. *)
val queue_depth : t -> int

(** Jobs whose execution raised (the exceptions were swallowed after
    counting — see the containment contract above). *)
val job_errors : t -> int

(** Configured worker count. *)
val workers : t -> int

(** Drain and join: blocks until every accepted job has run and all
    workers have exited.  Idempotent. *)
val shutdown : t -> unit
