module Obs = Ts_obs.Obs

(* The queue state is separated from the pool handle so worker domains
   capture only [shared] — spawning them never needs a reference to the
   not-yet-constructed pool value. *)
type shared = {
  lock : Mutex.t;
  work : Condition.t;  (* signalled on enqueue and on stop *)
  jobs : (unit -> unit) Queue.t;
  queue_cap : int;
  mutable stopping : bool;
  errors : int Atomic.t;
}

type t = {
  s : shared;
  domains : unit Domain.t array;
  mutable joined : bool;
  join_lock : Mutex.t;
}

type submit_result =
  | Accepted
  | Overloaded
  | Shutting_down

let gauge_depth s = Obs.Metrics.gauge "service.queue.depth" (Queue.length s.jobs)

let rec worker_loop s =
  Mutex.lock s.lock;
  while Queue.is_empty s.jobs && not s.stopping do
    Condition.wait s.work s.lock
  done;
  if Queue.is_empty s.jobs then
    (* stopping and drained: exit *)
    Mutex.unlock s.lock
  else begin
    let job = Queue.pop s.jobs in
    gauge_depth s;
    Mutex.unlock s.lock;
    (try job ()
     with _ ->
       (* containment: a raising job must not take its worker down *)
       Atomic.incr s.errors);
    worker_loop s
  end

let create ~workers ~queue_cap =
  if workers < 1 then invalid_arg "Pool.create: workers must be positive";
  if queue_cap < 1 then invalid_arg "Pool.create: queue_cap must be positive";
  let s =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      jobs = Queue.create ();
      queue_cap;
      stopping = false;
      errors = Atomic.make 0;
    }
  in
  {
    s;
    domains = Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop s));
    joined = false;
    join_lock = Mutex.create ();
  }

let submit t job =
  let s = t.s in
  Mutex.lock s.lock;
  let result =
    if s.stopping then Shutting_down
    else if Queue.length s.jobs >= s.queue_cap then begin
      Obs.Metrics.incr "service.queue.rejections";
      Overloaded
    end
    else begin
      Queue.push job s.jobs;
      gauge_depth s;
      Obs.Metrics.gauge_max "service.queue.peak" (Queue.length s.jobs);
      Condition.signal s.work;
      Accepted
    end
  in
  Mutex.unlock s.lock;
  result

let queue_depth t =
  Mutex.lock t.s.lock;
  let d = Queue.length t.s.jobs in
  Mutex.unlock t.s.lock;
  d

let job_errors t = Atomic.get t.s.errors
let workers t = Array.length t.domains

let shutdown t =
  Mutex.lock t.s.lock;
  t.s.stopping <- true;
  Condition.broadcast t.s.work;
  Mutex.unlock t.s.lock;
  (* joining is serialized and idempotent so concurrent shutdown calls
     (signal handler + main) are safe *)
  Mutex.lock t.join_lock;
  let join_now = not t.joined in
  t.joined <- true;
  Mutex.unlock t.join_lock;
  if join_now then Array.iter Domain.join t.domains
