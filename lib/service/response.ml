open Ts_model
open Ts_core
module Json = Ts_analysis.Json
module Explore = Ts_checker.Explore

let rec value_to_json = function
  | Value.Bot -> Json.Null
  | Value.Int i -> Json.Int i
  | Value.Bool b -> Json.Bool b
  | Value.Pair (a, b) ->
    Json.Obj [ ("fst", value_to_json a); ("snd", value_to_json b) ]
  | Value.List vs -> Json.List (List.map value_to_json vs)

let values_to_json vs = Json.List (List.map value_to_json vs)
let inputs_to_json inputs = values_to_json (Array.to_list inputs)
let regs_to_json regs = Json.List (List.map (fun r -> Json.Int r) regs)

let breach_to_json = function
  | Budget.Deadline s ->
    Json.Obj [ ("limit", Json.Str "deadline"); ("allowance", Json.Float s) ]
  | Budget.Node_cap n ->
    Json.Obj [ ("limit", Json.Str "nodes"); ("allowance", Json.Int n) ]
  | Budget.Heap_cap w ->
    Json.Obj [ ("limit", Json.Str "heap"); ("allowance", Json.Int w) ]

let witness_to_json ~horizon_used ~verified (cert : Theorem.certificate) =
  Json.Obj
    [
      ("status", Json.Str "complete");
      ("protocol", Json.Str cert.Theorem.protocol_name);
      ("n", Json.Int cert.Theorem.n);
      ("horizon", Json.Int horizon_used);
      ("inputs", inputs_to_json cert.Theorem.inputs);
      ("schedule_length", Json.Int (List.length cert.Theorem.schedule));
      ("registers_written", regs_to_json cert.Theorem.registers_written);
      ("space_bound", Json.Int (List.length cert.Theorem.registers_written));
      ("covered_registers", regs_to_json cert.Theorem.covered_registers);
      ("fresh_register", Json.Int cert.Theorem.fresh_register);
      ("oracle_searches", Json.Int cert.Theorem.oracle_searches);
      ("verified",
       match verified with
       | Ok () -> Json.Bool true
       | Error msg ->
         Json.Obj [ ("failed", Json.Str msg) ]);
    ]

let stop_to_json = function
  | Theorem.Out_of_budget b ->
    Json.Obj [ ("reason", Json.Str "budget"); ("breach", breach_to_json b) ]
  | Theorem.Horizon_wall msg ->
    Json.Obj [ ("reason", Json.Str "horizon"); ("detail", Json.Str msg) ]

let witness_partial_to_json ~horizon_used stop (p : Theorem.progress) =
  Json.Obj
    [
      ("status", Json.Str "partial");
      ("horizon", Json.Int horizon_used);
      ("stop", stop_to_json stop);
      ("progress",
       Json.Obj
         [
           ("horizon", Json.Int p.Theorem.horizon);
           ("searches", Json.Int p.Theorem.searches);
           ("nodes_expanded", Json.Int p.Theorem.nodes_expanded);
         ]);
    ]

module Revisionist = Ts_revisionist.Revisionist

let revisionist_to_json ~max_solo_used ~verified
    (cert : Revisionist.certificate) =
  Json.Obj
    [
      ("status", Json.Str "complete");
      ("engine", Json.Str "revisionist");
      ("protocol", Json.Str cert.Revisionist.protocol_name);
      ("n", Json.Int cert.Revisionist.n);
      ("excluded",
       Json.List (List.map (fun p -> Json.Int p) cert.Revisionist.excluded));
      ("max_solo", Json.Int max_solo_used);
      ("inputs", inputs_to_json cert.Revisionist.inputs);
      ("schedule_length", Json.Int (List.length cert.Revisionist.schedule));
      ("registers_written", regs_to_json cert.Revisionist.registers_written);
      ("space_bound", Json.Int cert.Revisionist.bound);
      ("covered_registers", regs_to_json cert.Revisionist.covered_registers);
      ("fresh_register", Json.Int cert.Revisionist.fresh_register);
      ("parked",
       Json.List
         (List.map
            (fun (p, r) ->
              Json.Obj [ ("p", Json.Int p); ("register", Json.Int r) ])
            cert.Revisionist.parked));
      ("revisions", Json.Int cert.Revisionist.revisions);
      ("private_steps", Json.Int cert.Revisionist.private_steps);
      ("verified",
       match verified with
       | Ok () -> Json.Bool true
       | Error msg -> Json.Obj [ ("failed", Json.Str msg) ]);
    ]

let revisionist_stop_to_json = function
  | Revisionist.Out_of_budget b ->
    Json.Obj [ ("reason", Json.Str "budget"); ("breach", breach_to_json b) ]
  | Revisionist.Search_wall msg ->
    Json.Obj [ ("reason", Json.Str "search-wall"); ("detail", Json.Str msg) ]

let revisionist_partial_to_json ~max_solo_used stop
    (p : Revisionist.progress) =
  Json.Obj
    [
      ("status", Json.Str "partial");
      ("engine", Json.Str "revisionist");
      ("max_solo", Json.Int max_solo_used);
      ("stop", revisionist_stop_to_json stop);
      ("progress",
       Json.Obj
         [
           ("max_solo", Json.Int p.Revisionist.max_solo);
           ("parked", Json.Int p.Revisionist.parked);
           ("revisions", Json.Int p.Revisionist.revisions);
           ("private_steps", Json.Int p.Revisionist.private_steps);
         ]);
    ]

let violation_to_json v =
  let base =
    [
      ("kind", Json.Str (Explore.violation_kind v));
      ("inputs", inputs_to_json (Explore.violation_inputs v));
      ("schedule_length", Json.Int (List.length (Explore.violation_schedule v)));
    ]
  in
  let extra =
    match v with
    | Explore.Agreement_violation { values; _ } ->
      [ ("values", values_to_json values) ]
    | Explore.Validity_violation { value; _ } ->
      [ ("value", value_to_json value) ]
    | Explore.Solo_stuck { pid; _ } -> [ ("pid", Json.Int pid) ]
    | Explore.Crash_stuck { crashed; survivors; _ } ->
      [
        ("crashed", Json.List (List.map (fun p -> Json.Int p) crashed));
        ("survivors", Json.List (List.map (fun p -> Json.Int p) survivors));
      ]
  in
  Json.Obj (base @ extra)

let explore_stats_to_json (s : Explore.stats) =
  Json.Obj
    [
      ("configs_explored", Json.Int s.Explore.configs_explored);
      ("truncated", Json.Bool s.Explore.truncated);
      ("deepest", Json.Int s.Explore.deepest);
      ("table_hits", Json.Int s.Explore.table_hits);
      ("table_misses", Json.Int s.Explore.table_misses);
      ("peak_frontier", Json.Int s.Explore.peak_frontier);
      ("solo_cache_hits", Json.Int s.Explore.solo_cache_hits);
      ("solo_cache_misses", Json.Int s.Explore.solo_cache_misses);
    ]

let explore_to_json ?replay (r : Explore.result) =
  let verdict, violation =
    match r.Explore.verdict with
    | Ok () -> ("clean", Json.Null)
    | Error v -> ("violation", violation_to_json v)
  in
  let replay_field =
    match replay with
    | None -> []
    | Some (Ok ()) -> [ ("replay", Json.Str "confirmed") ]
    | Some (Error msg) ->
      [ ("replay", Json.Obj [ ("failed", Json.Str msg) ]) ]
  in
  Json.Obj
    ([
       ("verdict", Json.Str verdict);
       ("violation", violation);
       ("stats", explore_stats_to_json r.Explore.stats);
       ("stopped",
        match r.Explore.stopped with
        | None -> Json.Null
        | Some b -> breach_to_json b);
       ("worker_errors",
        Json.List
          (List.map
             (fun (idx, msg) ->
               Json.Obj [ ("vector", Json.Int idx); ("message", Json.Str msg) ])
             r.Explore.worker_errors));
     ]
    @ replay_field)

let valency_to_json ~inputs ~horizon verdict (s : Valency.stats) =
  let classification =
    match verdict with
    | Valency.Bivalent (w0, w1) ->
      [
        ("class", Json.Str "bivalent");
        ("witness0_length", Json.Int (List.length w0));
        ("witness1_length", Json.Int (List.length w1));
      ]
    | Valency.Univalent (v, w) ->
      [
        ("class", Json.Str "univalent");
        ("value", value_to_json v);
        ("witness_length", Json.Int (List.length w));
      ]
    | Valency.Blocked -> [ ("class", Json.Str "blocked") ]
  in
  Json.Obj
    (classification
    @ [
        ("inputs", inputs_to_json inputs);
        ("horizon", Json.Int horizon);
        ("stats",
         Json.Obj
           [
             ("searches", Json.Int s.Valency.searches);
             ("nodes_expanded", Json.Int s.Valency.nodes_expanded);
             ("memo_hits", Json.Int s.Valency.memo_hits);
             ("memo_misses", Json.Int s.Valency.memo_misses);
             ("peak_frontier", Json.Int s.Valency.peak_frontier);
           ]);
      ])

let store_stats_to_json (s : Ts_store.Store.stats) =
  Json.Obj
    [
      ("records", Json.Int s.Ts_store.Store.records);
      ("bytes", Json.Int s.Ts_store.Store.bytes);
      ("appends", Json.Int s.Ts_store.Store.appends);
      ("recovered", Json.Int s.Ts_store.Store.recovered);
      ("torn_truncations", Json.Int s.Ts_store.Store.torn_truncations);
      ("torn_bytes", Json.Int s.Ts_store.Store.torn_bytes);
      ("lookups", Json.Int s.Ts_store.Store.lookups);
      ("hits", Json.Int s.Ts_store.Store.hits);
      ("syncs", Json.Int s.Ts_store.Store.syncs);
    ]

let cache_stats_to_json (s : Ts_core.Cache.stats) =
  Json.Obj
    [
      ("hits", Json.Int s.Ts_core.Cache.hits);
      ("misses", Json.Int s.Ts_core.Cache.misses);
      ("evictions", Json.Int s.Ts_core.Cache.evictions);
      ("entries", Json.Int s.Ts_core.Cache.entries);
      ("capacity", Json.Int s.Ts_core.Cache.capacity);
      ("shards", Json.Int s.Ts_core.Cache.shards);
    ]

let envelope ~id ~provenance ~cache_key ~elapsed_ms result =
  let opt k v = match v with None -> [] | Some s -> [ (k, Json.Str s) ] in
  Json.Obj
    ([ ("id", Json.Int id); ("ok", Json.Bool true) ]
    @ opt "provenance" provenance
    @ opt "cache_key" cache_key
    @ [ ("elapsed_ms", Json.Float elapsed_ms); ("result", result) ])

(* The hot-path envelope: splices an already-serialized result body into
   the compact success document without rebuilding (or even parsing) it.
   Byte-compatible with [Json.to_string (envelope ...)] — the fragments
   that could diverge (string escaping, float rendering) are delegated to
   the one Json emitter. *)
let envelope_raw ~id ~provenance ~cache_key ~elapsed_ms ~result =
  let buf = Buffer.create (String.length result + 112) in
  Buffer.add_string buf "{\"id\":";
  Buffer.add_string buf (string_of_int id);
  Buffer.add_string buf ",\"ok\":true";
  (match provenance with
   | None -> ()
   | Some p ->
     Buffer.add_string buf ",\"provenance\":";
     Buffer.add_string buf (Json.to_string (Json.Str p)));
  (match cache_key with
   | None -> ()
   | Some k ->
     Buffer.add_string buf ",\"cache_key\":";
     Buffer.add_string buf (Json.to_string (Json.Str k)));
  Buffer.add_string buf ",\"elapsed_ms\":";
  Buffer.add_string buf (Json.to_string (Json.Float elapsed_ms));
  Buffer.add_string buf ",\"result\":";
  Buffer.add_string buf result;
  Buffer.add_char buf '}';
  Buffer.contents buf

let error ?retry_after_ms ~id ~code msg =
  Json.Obj
    [
      ("id", match id with None -> Json.Null | Some i -> Json.Int i);
      ("ok", Json.Bool false);
      ("error",
       Json.Obj
         ([ ("code", Json.Str code); ("message", Json.Str msg) ]
         @
         match retry_after_ms with
         | None -> []
         | Some ms -> [ ("retry_after_ms", Json.Int ms) ]));
    ]
