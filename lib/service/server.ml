module Json = Ts_analysis.Json
module Obs = Ts_obs.Obs

type config = {
  host : string;
  port : int;
  workers : int;
  queue_cap : int;
  cache_capacity : int;
  cache_shards : int;
  request_deadline : float option;
  max_nodes : int option;
  verbose : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    queue_cap = 64;
    cache_capacity = 4096;
    cache_shards = 8;
    request_deadline = Some 30.;
    max_nodes = None;
    verbose = false;
  }

type t = {
  config : config;
  lsock : Unix.file_descr;
  bound_port : int;
  stop : bool Atomic.t;
  pool : Pool.t;
  dispatch : Dispatch.t;
  mutable accept_domain : unit Domain.t option;
  started_at : float;
  connections : int Atomic.t;
  requests : int Atomic.t;
  malformed : int Atomic.t;
  refused : int Atomic.t;
  mutable waited : bool;
}

let log t fmt =
  if t.config.verbose then Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* Polling granularity of the accept and per-connection read loops: the
   latency ceiling on noticing a stop request. *)
let poll_interval = 0.2

let write_response fd doc =
  match Frame.write fd (Json.to_string doc) with
  | () -> true
  | exception Unix.Unix_error _ -> false

(* One connection, owned by one pool worker.  Requests are answered in
   order until EOF, framing damage, peer disappearance or server drain. *)
let handle_conn t fd =
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ fd ] [] [] poll_interval with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
        match Frame.read fd with
        | Error Frame.Eof -> ()
        | Error e ->
          (* framing damage desynchronizes the stream: answer once, close *)
          Atomic.incr t.malformed;
          Obs.Metrics.incr "service.malformed";
          ignore
            (write_response fd
               (Response.error ~id:None ~code:"bad-frame"
                  (Frame.error_to_string e)))
        | Ok payload ->
          let response =
            match Json.of_string payload with
            | Error msg ->
              Atomic.incr t.malformed;
              Obs.Metrics.incr "service.malformed";
              Response.error ~id:None ~code:"bad-json" msg
            | Ok doc -> (
              match Request.of_json doc with
              | Error msg ->
                Atomic.incr t.malformed;
                Obs.Metrics.incr "service.malformed";
                let id = Option.bind (Json.member "id" doc) Json.to_int_opt in
                Response.error ~id ~code:"bad-request" msg
              | Ok req ->
                Atomic.incr t.requests;
                Dispatch.handle t.dispatch req)
          in
          if write_response fd response then loop ())
  in
  Fun.protect
    (fun () -> loop ())
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())

let refuse t fd code msg =
  Atomic.incr t.refused;
  Obs.Metrics.incr "service.refused";
  ignore (write_response fd (Response.error ~id:None ~code msg));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ t.lsock ] [] [] poll_interval with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.accept ~cloexec:true t.lsock with
        | exception Unix.Unix_error _ -> loop ()
        | fd, peer ->
          Atomic.incr t.connections;
          log t "service: connection from %s"
            (match peer with
             | Unix.ADDR_INET (a, p) ->
               Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
             | Unix.ADDR_UNIX p -> p);
          (match Pool.submit t.pool (fun () -> handle_conn t fd) with
           | Pool.Accepted -> ()
           | Pool.Overloaded ->
             refuse t fd "overloaded"
               "job queue full; retry later or raise --queue-cap"
           | Pool.Shutting_down ->
             refuse t fd "shutting-down" "daemon is draining");
          loop ())
  in
  loop ();
  (try Unix.close t.lsock with Unix.Unix_error _ -> ())

let start config =
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  (try
     Unix.bind lsock
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port))
   with e -> (try Unix.close lsock with Unix.Unix_error _ -> ()); raise e);
  Unix.listen lsock 64;
  let bound_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  (* the dispatcher's stats hook needs the server record, which needs the
     dispatcher: tie the knot through a ref *)
  let stats_hook = ref (fun () -> []) in
  let dispatch =
    Dispatch.create ~cache_capacity:config.cache_capacity
      ~cache_shards:config.cache_shards
      ?default_deadline:config.request_deadline
      ?default_max_nodes:config.max_nodes
      ~extra_stats:(fun () -> !stats_hook ())
      ()
  in
  let pool = Pool.create ~workers:config.workers ~queue_cap:config.queue_cap in
  let stop = Atomic.make false in
  let t =
    {
      config;
      lsock;
      bound_port;
      stop;
      pool;
      dispatch;
      accept_domain = None;
      started_at = Unix.gettimeofday ();
      connections = Atomic.make 0;
      requests = Atomic.make 0;
      malformed = Atomic.make 0;
      refused = Atomic.make 0;
      waited = false;
    }
  in
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  stats_hook :=
    (fun () ->
      [
        ("queue_depth", Json.Int (Pool.queue_depth t.pool));
        ("workers", Json.Int (Pool.workers t.pool));
        ("connections", Json.Int (Atomic.get t.connections));
        ("requests", Json.Int (Atomic.get t.requests));
        ("malformed", Json.Int (Atomic.get t.malformed));
        ("refused", Json.Int (Atomic.get t.refused));
        ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
      ]);
  t

let port t = t.bound_port
let request_stop t = Atomic.set t.stop true
let stopping t = Atomic.get t.stop

let wait t =
  if not t.waited then begin
    t.waited <- true;
    (match t.accept_domain with Some d -> Domain.join d | None -> ());
    Pool.shutdown t.pool
  end

let stop t =
  request_stop t;
  wait t

let dispatcher t = t.dispatch

type summary = {
  connections : int;
  requests : int;
  malformed : int;
  refused : int;
  job_errors : int;
  cache : Ts_core.Cache.stats;
  uptime : float;
}

let summary (t : t) =
  {
    connections = Atomic.get t.connections;
    requests = Atomic.get t.requests;
    malformed = Atomic.get t.malformed;
    refused = Atomic.get t.refused;
    job_errors = Pool.job_errors t.pool;
    cache = Dispatch.cache_stats t.dispatch;
    uptime = Unix.gettimeofday () -. t.started_at;
  }

let summary_to_json s =
  Json.Obj
    [
      ("connections", Json.Int s.connections);
      ("requests", Json.Int s.requests);
      ("malformed", Json.Int s.malformed);
      ("refused", Json.Int s.refused);
      ("job_errors", Json.Int s.job_errors);
      ("cache",
       Json.Obj
         [
           ("hits", Json.Int s.cache.Ts_core.Cache.hits);
           ("misses", Json.Int s.cache.Ts_core.Cache.misses);
           ("evictions", Json.Int s.cache.Ts_core.Cache.evictions);
           ("entries", Json.Int s.cache.Ts_core.Cache.entries);
         ]);
      ("uptime_s", Json.Float s.uptime);
    ]

let pp_summary ppf s =
  Format.fprintf ppf
    "served %d request%s on %d connection%s in %.1fs (%d malformed, %d \
     refused, %d handler error%s)@.cache: %a"
    s.requests
    (if s.requests = 1 then "" else "s")
    s.connections
    (if s.connections = 1 then "" else "s")
    s.uptime s.malformed s.refused s.job_errors
    (if s.job_errors = 1 then "" else "s")
    Ts_core.Cache.pp_stats s.cache
