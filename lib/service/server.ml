module Json = Ts_analysis.Json
module Obs = Ts_obs.Obs
module Store = Ts_store.Store

type config = {
  host : string;
  port : int;
  workers : int;
  queue_cap : int;
  cache_capacity : int;
  cache_shards : int;
  request_deadline : float option;
  max_nodes : int option;
  store_path : string option;
  store_fsync : Store.fsync;
  retry_after_overloaded_ms : int;
  retry_after_draining_ms : int;
  verbose : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    queue_cap = 64;
    cache_capacity = 4096;
    cache_shards = 8;
    request_deadline = Some 30.;
    max_nodes = None;
    store_path = None;
    store_fsync = Store.Always;
    (* a full queue drains at worker speed — tell clients to come back
       after roughly one job's latency; a draining daemon never comes
       back, so steer them away for longer *)
    retry_after_overloaded_ms = 50;
    retry_after_draining_ms = 1000;
    verbose = false;
  }

type t = {
  config : config;
  bound_port : int;
  stop : bool Atomic.t;
  pool : Pool.t;
  dispatch : Dispatch.t;
  store : Store.t option;
  evloop : Evloop.t;
  mutable loop_domain : unit Domain.t option;
  started_at : float;
  requests : int Atomic.t;
  malformed : int Atomic.t;
  refused : int Atomic.t;
  direct : int Atomic.t;
  mutable waited : bool;
}

let log t fmt =
  if t.config.verbose then Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let err_doc ?retry_after_ms ~id code msg =
  Json.to_string (Response.error ?retry_after_ms ~id ~code msg)

let malformed_doc t ~id code msg =
  Atomic.incr t.malformed;
  Obs.Metrics.incr "service.malformed";
  err_doc ~id code msg

(* The loop-side request path.  Everything here must be cheap: parse the
   document, route it, and either answer in place (hits, cheap ops,
   errors) or park it in the pool. *)
let on_payload t conn payload =
  match Json.of_string payload with
  | Error msg -> Evloop.Now (malformed_doc t ~id:None "bad-json" msg)
  | Ok doc -> (
    match Request.of_json doc with
    | Error msg ->
      let id = Option.bind (Json.member "id" doc) Json.to_int_opt in
      Evloop.Now (malformed_doc t ~id "bad-request" msg)
    | Ok req -> (
      Atomic.incr t.requests;
      match Dispatch.route t.dispatch req with
      | Dispatch.Answered doc ->
        Atomic.incr t.direct;
        Obs.Metrics.incr "service.loop.direct";
        Evloop.Now doc
      | Dispatch.Deferred run -> (
        let id = Some req.Request.id in
        let job () =
          (* [run] never raises; the catch-all keeps a parked connection
             from being orphaned even if that contract breaks *)
          let doc =
            try run ()
            with exn -> err_doc ~id "internal" (Printexc.to_string exn)
          in
          Evloop.post t.evloop conn doc
        in
        match Pool.submit t.pool job with
        | Pool.Accepted -> Evloop.Later
        | Pool.Overloaded ->
          Atomic.incr t.refused;
          Obs.Metrics.incr "service.refused";
          Evloop.Now
            (err_doc ~retry_after_ms:t.config.retry_after_overloaded_ms ~id
               "overloaded" "job queue full; retry later or raise --queue-cap")
        | Pool.Shutting_down ->
          Atomic.incr t.refused;
          Obs.Metrics.incr "service.refused";
          Evloop.Now
            (err_doc ~retry_after_ms:t.config.retry_after_draining_ms ~id
               "shutting-down" "daemon is draining"))))

let on_frame_error t e =
  Atomic.incr t.malformed;
  Obs.Metrics.incr "service.malformed";
  Some (err_doc ~id:None "bad-frame" (Frame.error_to_string e))

let start config =
  let store =
    match config.store_path with
    | None -> None
    | Some path -> (
      match Store.open_ ~fsync:config.store_fsync path with
      | Ok st -> Some st
      | Error msg -> failwith ("witness store: " ^ msg))
  in
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  (try
     Unix.bind lsock
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port))
   with e ->
     (try Unix.close lsock with Unix.Unix_error _ -> ());
     (match store with Some st -> Store.close st | None -> ());
     raise e);
  Unix.listen lsock 64;
  let bound_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let evloop = Evloop.create ~lsock in
  (* the dispatcher's stats hook needs the server record, which needs the
     dispatcher: tie the knot through a ref *)
  let stats_hook = ref (fun () -> []) in
  let dispatch =
    Dispatch.create ~cache_capacity:config.cache_capacity
      ~cache_shards:config.cache_shards
      ?default_deadline:config.request_deadline
      ?default_max_nodes:config.max_nodes
      ~extra_stats:(fun () -> !stats_hook ())
      ?store ()
  in
  let pool = Pool.create ~workers:config.workers ~queue_cap:config.queue_cap in
  let stop = Atomic.make false in
  let t =
    {
      config;
      bound_port;
      stop;
      pool;
      dispatch;
      store;
      evloop;
      loop_domain = None;
      started_at = Unix.gettimeofday ();
      requests = Atomic.make 0;
      malformed = Atomic.make 0;
      refused = Atomic.make 0;
      direct = Atomic.make 0;
      waited = false;
    }
  in
  t.loop_domain <-
    Some
      (Domain.spawn (fun () ->
           Evloop.run evloop
             ~stop:(fun () -> Atomic.get stop)
             ~on_payload:(on_payload t) ~on_frame_error:(on_frame_error t)));
  stats_hook :=
    (fun () ->
      [
        ("queue_depth", Json.Int (Pool.queue_depth t.pool));
        ("workers", Json.Int (Pool.workers t.pool));
        ("connections", Json.Int (Evloop.accepted t.evloop));
        ("open_connections", Json.Int (Evloop.open_conns t.evloop));
        ("loop_iterations", Json.Int (Evloop.iterations t.evloop));
        ("direct", Json.Int (Atomic.get t.direct));
        ("requests", Json.Int (Atomic.get t.requests));
        ("malformed", Json.Int (Atomic.get t.malformed));
        ("refused", Json.Int (Atomic.get t.refused));
        ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
      ]);
  log t "service: listening on %s:%d%s" config.host bound_port
    (match config.store_path with
     | Some p -> Printf.sprintf " (store %s)" p
     | None -> "");
  t

let port t = t.bound_port
let request_stop t = Atomic.set t.stop true
let stopping t = Atomic.get t.stop

let wait t =
  if not t.waited then begin
    t.waited <- true;
    (* order matters: the loop's drain waits for parked answers, which
       come from pool workers — join the loop before stopping the pool *)
    (match t.loop_domain with Some d -> Domain.join d | None -> ());
    Pool.shutdown t.pool;
    match t.store with Some st -> Store.close st | None -> ()
  end

let stop t =
  request_stop t;
  wait t

let dispatcher t = t.dispatch

type summary = {
  connections : int;
  requests : int;
  malformed : int;
  refused : int;
  direct : int;
  job_errors : int;
  cache : Ts_core.Cache.stats;
  store : Store.stats option;
  uptime : float;
}

let summary (t : t) =
  {
    connections = Evloop.accepted t.evloop;
    requests = Atomic.get t.requests;
    malformed = Atomic.get t.malformed;
    refused = Atomic.get t.refused;
    direct = Atomic.get t.direct;
    job_errors = Pool.job_errors t.pool;
    cache = Dispatch.cache_stats t.dispatch;
    store = Dispatch.store_stats t.dispatch;
    uptime = Unix.gettimeofday () -. t.started_at;
  }

let summary_to_json s =
  Json.Obj
    ([
       ("connections", Json.Int s.connections);
       ("requests", Json.Int s.requests);
       ("malformed", Json.Int s.malformed);
       ("refused", Json.Int s.refused);
       ("direct", Json.Int s.direct);
       ("job_errors", Json.Int s.job_errors);
       ("cache",
        Json.Obj
          [
            ("hits", Json.Int s.cache.Ts_core.Cache.hits);
            ("misses", Json.Int s.cache.Ts_core.Cache.misses);
            ("evictions", Json.Int s.cache.Ts_core.Cache.evictions);
            ("entries", Json.Int s.cache.Ts_core.Cache.entries);
          ]);
     ]
    @ (match s.store with
       | None -> []
       | Some st -> [ ("store", Response.store_stats_to_json st) ])
    @ [ ("uptime_s", Json.Float s.uptime) ])

let pp_summary ppf s =
  Format.fprintf ppf
    "served %d request%s (%d direct) on %d connection%s in %.1fs (%d \
     malformed, %d refused, %d handler error%s)@.cache: %a"
    s.requests
    (if s.requests = 1 then "" else "s")
    s.direct s.connections
    (if s.connections = 1 then "" else "s")
    s.uptime s.malformed s.refused s.job_errors
    (if s.job_errors = 1 then "" else "s")
    Ts_core.Cache.pp_stats s.cache;
  match s.store with
  | None -> ()
  | Some st -> Format.fprintf ppf "@.store: %a" Store.pp_stats st
