(** The service brain: typed request → engine call → cached, enveloped
    response.

    One dispatcher owns one sharded result cache ({!Ts_core.Cache}) and
    answers every operation the daemon accepts.  Transport-free by
    design — the TCP server, the CLI's [--json] one-shots and the tests
    all call {!handle} directly, so wire handling and engine semantics
    are testable apart.

    {b Cache policy.}  An answer is cached iff it is {e complete}: a
    verified Theorem-1 certificate, an exploration that neither tripped
    its budget nor lost a worker, a valency classification, an analyzer
    report.  Partial results and errors are recomputed every time — a
    partial answer is an artifact of the requester's budget, not a fact
    about the protocol, and must never be served to a later caller with a
    bigger budget.

    {b Cache key anatomy.}  The key is a {!Ts_model.Ckey} digest of the
    canonical packing of every {e result-determining} request field:
    [cache_version ‖ op ‖ protocol ‖ n ‖ horizon ‖ seed ‖ max_configs ‖
    max_depth ‖ solo_budget ‖ check_solo ‖ t].  Budgets ([deadline],
    [max_nodes]) are deliberately excluded: they never change a complete
    answer, only whether an answer completes.  [cache_version] is baked
    into every digest, so bumping it invalidates the whole cache at once
    — required whenever the {!Ts_model.Ckey} component encodings or the
    {!Response} serialization change shape. *)

module Json := Ts_analysis.Json

(** Version stamp baked into every cache digest.  {b Bump this} whenever
    packed encodings ([Ckey], [Value.encode], a protocol state encoder) or
    the {!Response} result serialization change — the digest-stability
    regression test in [test/suite_digest.ml] fails loudly when that is
    forgotten. *)
val cache_version : int

type t

(** [create ()] builds a dispatcher.  [cache_capacity] (default [4096])
    and [cache_shards] (default [8]) size the result cache;
    [default_deadline]/[default_max_nodes] bound requests that carry no
    budget of their own; [extra_stats] is appended to the [stats]
    operation's result (the server injects queue depth and uptime). *)
val create :
  ?cache_capacity:int ->
  ?cache_shards:int ->
  ?default_deadline:float ->
  ?default_max_nodes:int ->
  ?extra_stats:(unit -> (string * Json.t) list) ->
  unit ->
  t

(** The request's cache digest (also computed for uncacheable ops —
    harmless, and useful for logging). *)
val cache_key : Request.t -> Ts_model.Ckey.t

(** Hex form of {!cache_key}, as reported in responses. *)
val cache_key_hex : Request.t -> string

(** [handle t req] executes the request and returns the full response
    document (success envelope or error).  Never raises: every engine
    exception maps to a stable error code. *)
val handle : t -> Request.t -> Json.t

(** Counters of the underlying result cache. *)
val cache_stats : t -> Ts_core.Cache.stats

(** Drop every cached result (tests; the [--no-cache] serve flag). *)
val clear_cache : t -> unit
