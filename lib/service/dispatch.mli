(** The service brain: typed request → engine call → cached, enveloped
    response.

    One dispatcher owns one sharded result cache ({!Ts_core.Cache}) and,
    optionally, the persistent witness store ({!Ts_store.Store}) behind
    it.  Transport-free by design — the TCP server, the CLI's [--json]
    one-shots and the tests all call {!handle} (or the raw forms below)
    directly, so wire handling and engine semantics are testable apart.

    {b Serving tiers.}  The cache stores the {e serialized} result body
    (the compact JSON bytes), not a tree: a hit is spliced straight into
    the response envelope without re-rendering, which is both the
    zero-copy hot path and the differential guarantee — cached, fresh and
    recovered answers are byte-identical because they are literally the
    same bytes.  With a store attached, every complete answer admitted to
    the cache is written through to the append-only log, and a miss
    consults the log before computing: a restarted daemon answers
    previously-seen queries from disk (["provenance": "recovered"]).

    {b Cache policy.}  An answer is cached iff it is {e complete}: a
    verified Theorem-1 certificate, an exploration that neither tripped
    its budget nor lost a worker, a valency classification, an analyzer
    report.  Partial results and errors are recomputed every time — a
    partial answer is an artifact of the requester's budget, not a fact
    about the protocol, and must never be served to a later caller with a
    bigger budget.

    {b Cache key anatomy.}  The key is a {!Ts_model.Ckey} digest of the
    canonical packing of every {e result-determining} request field:
    [cache_version ‖ op ‖ protocol ‖ n ‖ horizon ‖ seed ‖ max_configs ‖
    max_depth ‖ solo_budget ‖ check_solo ‖ t].  Budgets ([deadline],
    [max_nodes]) are deliberately excluded: they never change a complete
    answer, only whether an answer completes.  [cache_version] is baked
    into every digest, so bumping it invalidates the whole cache at once
    — required whenever the {!Ts_model.Ckey} component encodings or the
    {!Response} serialization change shape. *)

module Json := Ts_analysis.Json

(** Version stamp baked into every cache digest.  {b Bump this} whenever
    packed encodings ([Ckey], [Value.encode], a protocol state encoder) or
    the {!Response} result serialization change — the digest-stability
    regression test in [test/suite_digest.ml] fails loudly when that is
    forgotten. *)
val cache_version : int

type t

(** [create ()] builds a dispatcher.  [cache_capacity] (default [4096])
    and [cache_shards] (default [8]) size the result cache;
    [default_deadline]/[default_max_nodes] bound requests that carry no
    budget of their own; [extra_stats] is appended to the [stats]
    operation's result (the server injects queue depth and uptime);
    [store] attaches the persistent witness store as the durable tier
    behind the cache. *)
val create :
  ?cache_capacity:int ->
  ?cache_shards:int ->
  ?default_deadline:float ->
  ?default_max_nodes:int ->
  ?extra_stats:(unit -> (string * Json.t) list) ->
  ?store:Ts_store.Store.t ->
  unit ->
  t

(** The request's cache digest (also computed for uncacheable ops —
    harmless, and useful for logging). *)
val cache_key : Request.t -> Ts_model.Ckey.t

(** Hex form of {!cache_key}, as reported in responses. *)
val cache_key_hex : Request.t -> string

(** How {!route} answered, split by where the work may run:
    - [Answered doc]: produced on the calling thread in O(lookup) — a
      cache or store hit, a cheap op ([ping], [stats]) or a typed error.
      The event loop sends these without involving the pool.
    - [Deferred run]: an engine computation.  [run ()] executes it (on a
      worker domain), caches a complete answer and returns the response
      document; it never raises. *)
type outcome =
  | Answered of string
  | Deferred of (unit -> string)

(** [route t req] decides and, when cheap, answers.  Never raises. *)
val route : t -> Request.t -> outcome

(** [handle_raw t req] executes the request to completion on the calling
    thread and returns the full response document as its exact wire
    bytes.  Never raises. *)
val handle_raw : t -> Request.t -> string

(** {!handle_raw} parsed back to a tree — the CLI's [--json] one-shots
    and older tests.  Never raises. *)
val handle : t -> Request.t -> Json.t

(** Counters of the underlying result cache. *)
val cache_stats : t -> Ts_core.Cache.stats

(** Counters of the attached store, when one is. *)
val store_stats : t -> Ts_store.Store.stats option

(** Drop every cached result (tests; the [--no-cache] serve flag).  The
    durable store is untouched — dropped entries are re-recovered from
    disk on their next miss. *)
val clear_cache : t -> unit
