(* Seeded fault-injecting TCP relay.  See the .mli for the contract. *)

module Rng = Ts_model.Rng

type classes = {
  resets : bool;
  truncations : bool;
  corruption : bool;
  latency : bool;
  throttle : bool;
}

let all_classes =
  { resets = true; truncations = true; corruption = true; latency = true;
    throttle = true }

let no_classes =
  { resets = false; truncations = false; corruption = false; latency = false;
    throttle = false }

let classes_of_string s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  List.fold_left
    (fun acc part ->
      match acc with
      | Error _ as e -> e
      | Ok c -> (
        match part with
        | "all" -> Ok all_classes
        | "none" -> Ok no_classes
        | "reset" | "resets" -> Ok { c with resets = true }
        | "truncate" | "truncations" -> Ok { c with truncations = true }
        | "corrupt" | "corruption" -> Ok { c with corruption = true }
        | "delay" | "latency" -> Ok { c with latency = true }
        | "throttle" -> Ok { c with throttle = true }
        | other ->
          Error
            (Printf.sprintf
               "unknown fault class %S (reset, truncate, corrupt, delay, \
                throttle, all, none)"
               other)))
    (Ok no_classes) parts

let classes_to_string c =
  let names =
    (if c.resets then [ "reset" ] else [])
    @ (if c.truncations then [ "truncate" ] else [])
    @ (if c.corruption then [ "corrupt" ] else [])
    @ (if c.latency then [ "delay" ] else [])
    @ if c.throttle then [ "throttle" ] else []
  in
  match names with [] -> "none" | _ -> String.concat "," names

type config = {
  listen_host : string;
  listen_port : int;
  upstream_host : string;
  upstream_port : int;
  seed : int;
  fault_prob : float;
  classes : classes;
  max_delay_ms : int;
  verbose : bool;
}

let default_config ~upstream_port =
  {
    listen_host = "127.0.0.1";
    listen_port = 0;
    upstream_host = "127.0.0.1";
    upstream_port;
    seed = 2026;
    fault_prob = 0.6;
    classes = all_classes;
    max_delay_ms = 25;
    verbose = false;
  }

(* The byte corruption writes: 0x01 is not a digit (frame headers), and
   is an unescaped control character (illegal anywhere in JSON), so a
   corrupted frame can only ever fail to parse — never silently carry a
   different answer.  That property is what makes "byte-identical
   answers under corruption" a checkable acceptance bar. *)
let poison_byte = '\x01'

(* ---- per-connection fault plans --------------------------------------- *)

type plan = {
  plan_seed : int;
  delay : float;  (* seconds each relayed chunk is held back; 0 = none *)
  throttle_bytes : int;  (* max bytes per egress write; 0 = unlimited *)
  reset_after : int;  (* total egress bytes before the RST; -1 = never *)
  truncate_after : int;  (* daemon→client egress bytes before FIN; -1 = never *)
  corrupt_up : int list;  (* client→daemon stream offsets to poison *)
  corrupt_down : int list;
}

let clean_plan plan_seed =
  { plan_seed; delay = 0.; throttle_bytes = 0; reset_after = -1;
    truncate_after = -1; corrupt_up = []; corrupt_down = [] }

let plan_is_clean p =
  p.delay = 0. && p.throttle_bytes = 0 && p.reset_after < 0
  && p.truncate_after < 0 && p.corrupt_up = [] && p.corrupt_down = []

(* Every accepted connection gets its own derived seed, so one printed
   master seed replays the whole run and one printed plan seed replays
   one connection's faults. *)
let plan_seed_of ~seed ~id = seed + ((id + 1) * 1_000_003)

let sample_plan cfg ~id =
  let plan_seed = plan_seed_of ~seed:cfg.seed ~id in
  let rng = Rng.create plan_seed in
  let faulty =
    float_of_int (Rng.int rng 1_000_000) < cfg.fault_prob *. 1_000_000.
  in
  if not faulty then clean_plan plan_seed
  else begin
    let c = cfg.classes in
    (* every class draws from the stream whether enabled or not, so
       enabling one class never perturbs another's draws *)
    let w_delay = Rng.bool rng
    and w_throttle = Rng.bool rng
    and w_reset = Rng.bool rng
    and w_trunc = Rng.bool rng
    and w_corrupt = Rng.bool rng in
    let delay =
      let d = 1 + Rng.int rng (max 1 cfg.max_delay_ms) in
      if c.latency && w_delay then float_of_int d /. 1000. else 0.
    in
    let throttle_bytes =
      let b = 256 + Rng.int rng 3840 in
      if c.throttle && w_throttle then b else 0
    in
    let reset_after =
      let b = Rng.int rng 4096 in
      if c.resets && w_reset then b else -1
    in
    let truncate_after =
      let b = Rng.int rng 2048 in
      if c.truncations && w_trunc then b else -1
    in
    let n_corr = 1 + Rng.int rng 3 in
    let corrupt =
      List.init n_corr (fun _ ->
          let down = Rng.bool rng in
          let off = Rng.int rng 4096 in
          (down, off))
    in
    let corrupt_up, corrupt_down =
      if c.corruption && w_corrupt then
        ( List.filter_map (fun (d, o) -> if d then None else Some o) corrupt,
          List.filter_map (fun (d, o) -> if d then Some o else None) corrupt )
      else ([], [])
    in
    { plan_seed; delay; throttle_bytes; reset_after; truncate_after;
      corrupt_up; corrupt_down }
  end

let plan_to_string p =
  if plan_is_clean p then "clean"
  else
    String.concat "+"
      ((if p.delay > 0. then
          [ Printf.sprintf "delay %.0fms" (p.delay *. 1000.) ]
        else [])
      @ (if p.throttle_bytes > 0 then
           [ Printf.sprintf "throttle %dB" p.throttle_bytes ]
         else [])
      @ (if p.reset_after >= 0 then
           [ Printf.sprintf "reset@%d" p.reset_after ]
         else [])
      @ (if p.truncate_after >= 0 then
           [ Printf.sprintf "truncate@%d" p.truncate_after ]
         else [])
      @
      match p.corrupt_up @ p.corrupt_down with
      | [] -> []
      | offs ->
        [
          Printf.sprintf "corrupt@[%s]"
            (String.concat ";" (List.map string_of_int offs));
        ])

(* ---- relay state ------------------------------------------------------ *)

type chunk = { buf : Bytes.t; mutable off : int; ready_at : float }

type link = {
  id : int;
  plan : plan;
  cfd : Unix.file_descr;  (* client side *)
  ufd : Unix.file_descr;  (* upstream (daemon) side *)
  upq : chunk Queue.t;  (* client → daemon *)
  downq : chunk Queue.t;  (* daemon → client *)
  mutable in_up : int;  (* ingress stream offsets, for corruption *)
  mutable in_down : int;
  mutable out_up : int;  (* egress counts, for reset/truncate *)
  mutable out_down : int;
  mutable ceof : bool;
  mutable ueof : bool;
  mutable dead : bool;
}

type stats = {
  connections : int;
  faulted : int;
  resets : int;
  truncations : int;
  corruptions : int;
  delayed_chunks : int;
  throttled_chunks : int;
  bytes_up : int;
  bytes_down : int;
}

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  bound_port : int;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
  m : Mutex.t;  (* guards counters + events, read from other domains *)
  mutable s_connections : int;
  mutable s_faulted : int;
  mutable s_resets : int;
  mutable s_truncations : int;
  mutable s_corruptions : int;
  mutable s_delayed : int;
  mutable s_throttled : int;
  mutable s_bytes_up : int;
  mutable s_bytes_down : int;
  mutable events_rev : string list;
  mutable n_events : int;
}

let max_events = 1000

let locked t f =
  Mutex.lock t.m;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.m)

let event t fmt =
  Printf.ksprintf
    (fun msg ->
      if t.cfg.verbose then Printf.eprintf "chaos: %s\n%!" msg;
      locked t (fun () ->
          if t.n_events < max_events then begin
            t.events_rev <- msg :: t.events_rev;
            t.n_events <- t.n_events + 1
          end))
    fmt

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let kill link =
  if not link.dead then begin
    link.dead <- true;
    close_quiet link.cfd;
    close_quiet link.ufd
  end

(* An injected reset must look like a crash, not a polite close: linger 0
   turns the close into an RST on the wire. *)
let inject_reset t link =
  (try Unix.setsockopt_optint link.cfd Unix.SO_LINGER (Some 0)
   with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_optint link.ufd Unix.SO_LINGER (Some 0)
   with Unix.Unix_error _ -> ());
  locked t (fun () -> t.s_resets <- t.s_resets + 1);
  event t "conn %d: reset after %d relayed bytes (plan seed %d: %s)" link.id
    (link.out_up + link.out_down)
    link.plan.plan_seed (plan_to_string link.plan);
  kill link

let inject_truncate t link =
  locked t (fun () -> t.s_truncations <- t.s_truncations + 1);
  event t "conn %d: downstream truncated after %d bytes (plan seed %d: %s)"
    link.id link.out_down link.plan.plan_seed (plan_to_string link.plan);
  kill link

(* Poison every planned offset that falls inside [first, first+len) of
   this direction's ingress stream. *)
let corrupt t link ~offsets ~first buf len =
  List.iter
    (fun off ->
      if off >= first && off < first + len then begin
        Bytes.set buf (off - first) poison_byte;
        locked t (fun () -> t.s_corruptions <- t.s_corruptions + 1);
        event t "conn %d: byte at stream offset %d corrupted (plan seed %d)"
          link.id off link.plan.plan_seed
      end)
    offsets

(* ---- the relay loop --------------------------------------------------- *)

let read_side t link ~from_client scratch =
  let fd = if from_client then link.cfd else link.ufd in
  match Unix.read fd scratch 0 (Bytes.length scratch) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error (_, _, _) -> kill link
  | 0 -> if from_client then link.ceof <- true else link.ueof <- true
  | n ->
    let buf = Bytes.sub scratch 0 n in
    let first = if from_client then link.in_up else link.in_down in
    let offsets =
      if from_client then link.plan.corrupt_up else link.plan.corrupt_down
    in
    corrupt t link ~offsets ~first buf n;
    if from_client then link.in_up <- link.in_up + n
    else link.in_down <- link.in_down + n;
    let now = Unix.gettimeofday () in
    if link.plan.delay > 0. then
      locked t (fun () -> t.s_delayed <- t.s_delayed + 1);
    Queue.push
      { buf; off = 0; ready_at = now +. link.plan.delay }
      (if from_client then link.upq else link.downq)

let write_side t link ~to_client =
  let fd = if to_client then link.cfd else link.ufd in
  let q = if to_client then link.downq else link.upq in
  if not (Queue.is_empty q) then begin
    let c = Queue.peek q in
    let len = Bytes.length c.buf - c.off in
    let len, clipped =
      if link.plan.throttle_bytes > 0 && len > link.plan.throttle_bytes then
        (link.plan.throttle_bytes, true)
      else (len, false)
    in
    (* a planned reset caps how many bytes may ever leave the proxy *)
    let reset_allow =
      if link.plan.reset_after >= 0 then
        link.plan.reset_after - (link.out_up + link.out_down)
      else max_int
    in
    let trunc_allow =
      if to_client && link.plan.truncate_after >= 0 then
        link.plan.truncate_after - link.out_down
      else max_int
    in
    if reset_allow <= 0 then inject_reset t link
    else if trunc_allow <= 0 then inject_truncate t link
    else begin
      let len = min len (min reset_allow trunc_allow) in
      match Unix.write fd c.buf c.off len with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error (_, _, _) -> kill link
      | k ->
        if clipped && k > 0 then
          locked t (fun () -> t.s_throttled <- t.s_throttled + 1);
        c.off <- c.off + k;
        if to_client then begin
          link.out_down <- link.out_down + k;
          locked t (fun () -> t.s_bytes_down <- t.s_bytes_down + k)
        end
        else begin
          link.out_up <- link.out_up + k;
          locked t (fun () -> t.s_bytes_up <- t.s_bytes_up + k)
        end;
        if c.off >= Bytes.length c.buf then ignore (Queue.pop q)
    end
  end

(* Propagate EOFs once the pending bytes for that direction have been
   relayed; release the link when both directions are finished. *)
let maybe_finish link =
  if not link.dead then begin
    if link.ceof && Queue.is_empty link.upq then
      (try Unix.shutdown link.ufd Unix.SHUTDOWN_SEND
       with Unix.Unix_error _ | Invalid_argument _ -> ());
    if link.ueof && Queue.is_empty link.downq then
      (try Unix.shutdown link.cfd Unix.SHUTDOWN_SEND
       with Unix.Unix_error _ | Invalid_argument _ -> ());
    if
      link.ceof && link.ueof && Queue.is_empty link.upq
      && Queue.is_empty link.downq
    then kill link
  end

let accept_one t links next_id =
  match Unix.accept ~cloexec:true t.lsock with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error (_, _, _) -> ()
  | cfd, _ -> (
    let id = !next_id in
    incr next_id;
    let plan = sample_plan t.cfg ~id in
    locked t (fun () ->
        t.s_connections <- t.s_connections + 1;
        if not (plan_is_clean plan) then t.s_faulted <- t.s_faulted + 1);
    if not (plan_is_clean plan) then
      event t "conn %d: plan %s (seed %d)" id (plan_to_string plan)
        plan.plan_seed;
    match Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> close_quiet cfd
    | ufd -> (
      match
        Unix.connect ufd
          (Unix.ADDR_INET
             (Unix.inet_addr_of_string t.cfg.upstream_host, t.cfg.upstream_port))
      with
      | exception Unix.Unix_error (err, _, _) ->
        event t "conn %d: upstream connect failed: %s" id
          (Unix.error_message err);
        close_quiet ufd;
        close_quiet cfd
      | () ->
        Unix.set_nonblock cfd;
        Unix.set_nonblock ufd;
        (try Unix.setsockopt cfd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        (try Unix.setsockopt ufd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        links :=
          {
            id; plan; cfd; ufd;
            upq = Queue.create ();
            downq = Queue.create ();
            in_up = 0; in_down = 0; out_up = 0; out_down = 0;
            ceof = false; ueof = false; dead = false;
          }
          :: !links))

let relay t =
  let links = ref [] in
  let next_id = ref 0 in
  let scratch = Bytes.create 8192 in
  while not (Atomic.get t.stop_flag) do
    links := List.filter (fun l -> not l.dead) !links;
    let now = Unix.gettimeofday () in
    let due q =
      (not (Queue.is_empty q)) && (Queue.peek q).ready_at <= now
    in
    let rds = ref [ t.lsock ] and wrs = ref [] and timeout = ref 0.05 in
    List.iter
      (fun l ->
        (* stop reading a side whose outbound queue has grown deep —
           cheap backpressure so a throttled link cannot buffer a run's
           whole traffic *)
        if (not l.ceof) && Queue.length l.upq < 128 then rds := l.cfd :: !rds;
        if (not l.ueof) && Queue.length l.downq < 128 then rds := l.ufd :: !rds;
        if due l.upq then wrs := l.ufd :: !wrs
        else if not (Queue.is_empty l.upq) then
          timeout := min !timeout ((Queue.peek l.upq).ready_at -. now);
        if due l.downq then wrs := l.cfd :: !wrs
        else if not (Queue.is_empty l.downq) then
          timeout := min !timeout ((Queue.peek l.downq).ready_at -. now))
      !links;
    let timeout = Float.max 0.001 !timeout in
    match Unix.select !rds !wrs [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
      (* a link died under select; the prune at the top of the next
         iteration drops it *)
      ()
    | rd, wr, _ ->
      if List.memq t.lsock rd then accept_one t links next_id;
      List.iter
        (fun l ->
          if not l.dead then begin
            if List.memq l.cfd rd then read_side t l ~from_client:true scratch;
            if (not l.dead) && List.memq l.ufd rd then
              read_side t l ~from_client:false scratch;
            if (not l.dead) && List.memq l.ufd wr then
              write_side t l ~to_client:false;
            if (not l.dead) && List.memq l.cfd wr then
              write_side t l ~to_client:true;
            maybe_finish l
          end)
        !links
  done;
  List.iter kill !links;
  close_quiet t.lsock

(* ---- lifecycle -------------------------------------------------------- *)

let start cfg =
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  (try
     Unix.bind lsock
       (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.listen_host, cfg.listen_port))
   with e ->
     close_quiet lsock;
     raise e);
  Unix.listen lsock 64;
  Unix.set_nonblock lsock;
  let bound_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.listen_port
  in
  let t =
    {
      cfg;
      lsock;
      bound_port;
      stop_flag = Atomic.make false;
      domain = None;
      m = Mutex.create ();
      s_connections = 0;
      s_faulted = 0;
      s_resets = 0;
      s_truncations = 0;
      s_corruptions = 0;
      s_delayed = 0;
      s_throttled = 0;
      s_bytes_up = 0;
      s_bytes_down = 0;
      events_rev = [];
      n_events = 0;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> relay t));
  t

let port t = t.bound_port

let stop t =
  Atomic.set t.stop_flag true;
  match t.domain with
  | None -> ()
  | Some d ->
    t.domain <- None;
    Domain.join d

let stats t =
  locked t (fun () ->
      {
        connections = t.s_connections;
        faulted = t.s_faulted;
        resets = t.s_resets;
        truncations = t.s_truncations;
        corruptions = t.s_corruptions;
        delayed_chunks = t.s_delayed;
        throttled_chunks = t.s_throttled;
        bytes_up = t.s_bytes_up;
        bytes_down = t.s_bytes_down;
      })

let events t = locked t (fun () -> List.rev t.events_rev)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d connection%s (%d faulted): %d reset%s, %d truncation%s, %d corrupted \
     byte%s, %d delayed chunk%s, %d throttled write%s, %d B up / %d B down"
    s.connections
    (if s.connections = 1 then "" else "s")
    s.faulted s.resets
    (if s.resets = 1 then "" else "s")
    s.truncations
    (if s.truncations = 1 then "" else "s")
    s.corruptions
    (if s.corruptions = 1 then "" else "s")
    s.delayed_chunks
    (if s.delayed_chunks = 1 then "" else "s")
    s.throttled_chunks
    (if s.throttled_chunks = 1 then "" else "s")
    s.bytes_up s.bytes_down
