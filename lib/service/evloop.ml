(* Readiness event loop.  See the .mli for the design contract.

   Single-owner discipline: every connection, buffer and table in here is
   touched only by the domain running [run].  The one cross-domain door is
   [post]: a mutex-guarded mailbox plus a self-pipe byte to make a
   blocked [select] return.  The externally readable gauges are atomics. *)

module Obs = Ts_obs.Obs
module Trace = Ts_model.Trace

let poll_interval = 0.1
(* stop-flag latency ceiling, as in the old accept loop *)

let drain_grace = 5.0
(* seconds granted after [stop] for parked answers to arrive and flush *)

let initial_rbuf = 8 * 1024
let rbuf_cap = Frame.max_frame_bytes + 16
(* one max frame + its header always fits *)

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;  (* reusable read buffer *)
  mutable rpos : int;  (* parse cursor into rbuf *)
  mutable rlen : int;  (* valid bytes in rbuf *)
  mutable obuf : Bytes.t;  (* batched outgoing bytes *)
  mutable opos : int;  (* written prefix of obuf *)
  mutable olen : int;  (* valid bytes in obuf *)
  mutable inflight : bool;  (* a request is parked in the pool *)
  mutable no_more_reads : bool;  (* EOF seen or stream desynchronized *)
  mutable closed : bool;
}

type reply =
  | Now of string
  | Later

type t = {
  lsock : Unix.file_descr;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  mailbox : (conn * string) Queue.t;
  mbox_lock : Mutex.t;
  mbox_loc : string;  (* race-detector location of the mailbox *)
  n_open : int Atomic.t;
  n_iterations : int Atomic.t;
  n_accepted : int Atomic.t;
}

let create ~lsock =
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  Unix.set_nonblock lsock;
  {
    lsock;
    pipe_r;
    pipe_w;
    conns = Hashtbl.create 64;
    mailbox = Queue.create ();
    mbox_lock = Mutex.create ();
    mbox_loc = Trace.fresh_loc "evloop.mailbox";
    n_open = Atomic.make 0;
    n_iterations = Atomic.make 0;
    n_accepted = Atomic.make 0;
  }

let open_conns t = Atomic.get t.n_open
let iterations t = Atomic.get t.n_iterations
let accepted t = Atomic.get t.n_accepted

let post t conn response =
  (* cross-domain door: pool workers push, the loop drains — logged for
     the vector-clock race detector like the cache shards are *)
  Trace.access ~loc:t.mbox_loc Trace.Write ~atomic:true;
  Mutex.lock t.mbox_lock;
  Queue.push (conn, response) t.mailbox;
  Mutex.unlock t.mbox_lock;
  (* a full pipe already guarantees a pending wakeup *)
  match Unix.write t.pipe_w (Bytes.make 1 '!') 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _)
    -> ()

(* ---- per-connection buffer plumbing ---------------------------------- *)

let close_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    Hashtbl.remove t.conns conn.fd;
    Atomic.decr t.n_open;
    Obs.Metrics.gauge "service.loop.connections" (Atomic.get t.n_open);
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let out_pending conn = conn.olen > conn.opos

(* Append one framed response to the connection's output batch. *)
let send conn payload =
  let header = string_of_int (String.length payload) in
  let need = conn.olen + String.length header + 1 + String.length payload in
  if Bytes.length conn.obuf < need then begin
    let cap = ref (max 4096 (Bytes.length conn.obuf)) in
    while !cap < need do
      cap := !cap * 2
    done;
    let fresh = Bytes.create !cap in
    Bytes.blit conn.obuf 0 fresh 0 conn.olen;
    conn.obuf <- fresh
  end;
  Bytes.blit_string header 0 conn.obuf conn.olen (String.length header);
  conn.olen <- conn.olen + String.length header;
  Bytes.set conn.obuf conn.olen '\n';
  conn.olen <- conn.olen + 1;
  Bytes.blit_string payload 0 conn.obuf conn.olen (String.length payload);
  conn.olen <- conn.olen + String.length payload

(* Flush as much batched output as the socket accepts, in one syscall per
   readiness event.  Returns [false] when the connection died. *)
let do_write t conn =
  if conn.closed || not (out_pending conn) then true
  else
    match Unix.write conn.fd conn.obuf conn.opos (conn.olen - conn.opos) with
    | k ->
      conn.opos <- conn.opos + k;
      if conn.opos = conn.olen then begin
        conn.opos <- 0;
        conn.olen <- 0
      end;
      true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> true
    | exception Unix.Unix_error _ ->
      close_conn t conn;
      false

(* A connection that will never produce another request dies as soon as
   nothing is owed to it. *)
let maybe_close t conn =
  if
    (not conn.closed) && conn.no_more_reads && (not conn.inflight)
    && not (out_pending conn)
  then close_conn t conn

let compact conn =
  if conn.rpos = conn.rlen then begin
    conn.rpos <- 0;
    conn.rlen <- 0
  end
  else if conn.rpos > 0 then begin
    Bytes.blit conn.rbuf conn.rpos conn.rbuf 0 (conn.rlen - conn.rpos);
    conn.rlen <- conn.rlen - conn.rpos;
    conn.rpos <- 0
  end

(* Process every complete frame sitting in the read buffer, stopping when
   a request is parked in the pool (ordering) or the stream breaks. *)
let rec pump t conn ~on_payload ~on_frame_error =
  if conn.closed || conn.inflight || conn.no_more_reads then ()
  else
    match Frame.parse conn.rbuf ~pos:conn.rpos ~len:conn.rlen with
    | `Need_more -> compact conn
    | `Error e ->
      (* the stream cannot be re-synchronized: best-effort answer, then
         no further reads; the close happens once the answer flushes *)
      (match on_frame_error e with Some doc -> send conn doc | None -> ());
      conn.no_more_reads <- true
    | `Frame (off, n) ->
      conn.rpos <- off + n;
      let payload = Bytes.sub_string conn.rbuf off n in
      (match on_payload conn payload with
       | Now doc ->
         send conn doc;
         pump t conn ~on_payload ~on_frame_error
       | Later -> conn.inflight <- true)

let do_read t conn ~on_payload ~on_frame_error =
  if conn.closed then ()
  else begin
    (* make room: slide the parsed prefix out, then grow up to the cap *)
    if conn.rlen = Bytes.length conn.rbuf then compact conn;
    if conn.rlen = Bytes.length conn.rbuf && Bytes.length conn.rbuf < rbuf_cap
    then begin
      let fresh = Bytes.create (min rbuf_cap (2 * Bytes.length conn.rbuf)) in
      Bytes.blit conn.rbuf 0 fresh 0 conn.rlen;
      conn.rbuf <- fresh
    end;
    let room = Bytes.length conn.rbuf - conn.rlen in
    if room > 0 then begin
      match Unix.read conn.fd conn.rbuf conn.rlen room with
      | 0 ->
        (* EOF: never read again; drop now unless an answer is still owed
           or buffered *)
        conn.no_more_reads <- true;
        if (not conn.inflight) && not (out_pending conn) then close_conn t conn
      | k ->
        conn.rlen <- conn.rlen + k;
        pump t conn ~on_payload ~on_frame_error
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> close_conn t conn
    end
  end

let accept_ready t =
  let rec go () =
    match Unix.accept ~cloexec:true t.lsock with
    | fd, _peer ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      let conn =
        {
          fd;
          rbuf = Bytes.create initial_rbuf;
          rpos = 0;
          rlen = 0;
          obuf = Bytes.create initial_rbuf;
          opos = 0;
          olen = 0;
          inflight = false;
          no_more_reads = false;
          closed = false;
        }
      in
      Hashtbl.replace t.conns fd conn;
      Atomic.incr t.n_open;
      Atomic.incr t.n_accepted;
      Obs.Metrics.gauge "service.loop.connections" (Atomic.get t.n_open);
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let drain_mailbox t ~on_payload ~on_frame_error =
  (* swallow the wakeup bytes first so a post between drain and select
     still leaves a byte in the pipe *)
  let sink = Bytes.create 256 in
  let rec slurp () =
    match Unix.read t.pipe_r sink 0 256 with
    | 256 -> slurp ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  in
  slurp ();
  let pending = Queue.create () in
  Trace.access ~loc:t.mbox_loc Trace.Read ~atomic:true;
  Mutex.lock t.mbox_lock;
  Queue.transfer t.mailbox pending;
  Mutex.unlock t.mbox_lock;
  Queue.iter
    (fun (conn, response) ->
      if not conn.closed then begin
        conn.inflight <- false;
        send conn response;
        (* the parked stream may hold complete frames already *)
        pump t conn ~on_payload ~on_frame_error;
        if do_write t conn then maybe_close t conn
      end)
    pending

let run t ~stop ~on_payload ~on_frame_error =
  let drain_until = ref None in
  let finished () =
    if not (stop ()) then false
    else begin
      let deadline =
        match !drain_until with
        | Some d -> d
        | None ->
          let d = Unix.gettimeofday () +. drain_grace in
          drain_until := Some d;
          d
      in
      let quiescent =
        Hashtbl.fold
          (fun _ conn acc -> acc && (not conn.inflight) && not (out_pending conn))
          t.conns true
      in
      quiescent || Unix.gettimeofday () > deadline
    end
  in
  let rec loop () =
    if finished () then ()
    else begin
      Atomic.incr t.n_iterations;
      Obs.Metrics.incr "service.loop.iterations";
      let stopping = stop () in
      let rfds = ref [ t.pipe_r ] in
      if not stopping then rfds := t.lsock :: !rfds;
      let wfds = ref [] in
      Hashtbl.iter
        (fun fd conn ->
          if
            (not stopping) && (not conn.no_more_reads)
            && (conn.rlen < Bytes.length conn.rbuf || conn.rpos > 0
                (* a full buffer holding one incomplete frame is not
                   backpressure: do_read can still grow it toward the
                   frame cap, so the fd must stay in the read set or the
                   connection deadlocks on any frame over the initial
                   buffer size *)
               || Bytes.length conn.rbuf < rbuf_cap)
          then rfds := fd :: !rfds;
          if out_pending conn then wfds := fd :: !wfds)
        t.conns;
      (match Unix.select !rfds !wfds [] poll_interval with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | readable, writable, _ ->
         if List.memq t.pipe_r readable then
           drain_mailbox t ~on_payload ~on_frame_error;
         List.iter
           (fun fd ->
             if fd == t.lsock then accept_ready t
             else if fd != t.pipe_r then
               match Hashtbl.find_opt t.conns fd with
               | Some conn ->
                 do_read t conn ~on_payload ~on_frame_error;
                 (* opportunistic flush: the whole burst of direct answers
                    leaves in one write without waiting a select round *)
                 if do_write t conn then maybe_close t conn
               | None -> ())
           readable;
         List.iter
           (fun fd ->
             match Hashtbl.find_opt t.conns fd with
             | Some conn -> if do_write t conn then maybe_close t conn
             | None -> ())
           writable);
      loop ()
    end
  in
  Fun.protect
    (fun () -> loop ())
    ~finally:(fun () ->
      let all = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      List.iter (fun c -> close_conn t c) all;
      (try Unix.close t.lsock with Unix.Unix_error _ -> ());
      (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
      try Unix.close t.pipe_w with Unix.Unix_error _ -> ())
