open Ts_model
open Ts_core
module Json = Ts_analysis.Json
module Explore = Ts_checker.Explore
module Obs = Ts_obs.Obs
module Store = Ts_store.Store

let cache_version = 2

type t = {
  cache : string Cache.t;
  (* The cache holds the serialized result body, not a tree: hits splice
     into envelopes without re-rendering, and what the store persists is
     exactly what the cache would serve. *)
  store : Store.t option;
  default_deadline : float option;
  default_max_nodes : int option;
  extra_stats : unit -> (string * Json.t) list;
}

let create ?(cache_capacity = 4096) ?(cache_shards = 8) ?default_deadline
    ?default_max_nodes ?(extra_stats = fun () -> []) ?store () =
  let cache =
    Cache.create ~shards:cache_shards ~name:"service.cache"
      ~capacity:cache_capacity ()
  in
  (match store with
   | None -> ()
   | Some st ->
     Cache.set_write_through cache (fun key value ->
         ignore (Store.append st ~key ~value)));
  { cache; store; default_deadline; default_max_nodes; extra_stats }

(* The canonical key packing: varints and length-prefixed strings, the
   same self-delimiting building blocks as the engine's configuration
   keys, so the digest is injective over the field tuple. *)
let cache_key (r : Request.t) =
  let buf = Buffer.create 64 in
  let str s =
    Value.add_varint buf (String.length s);
    Buffer.add_string buf s
  in
  let int i = Value.add_varint buf i in
  let opt_int = function None -> int (-1) | Some i -> int i in
  int cache_version;
  str (Request.op_to_string r.Request.op);
  str r.Request.protocol;
  int r.Request.n;
  opt_int r.Request.horizon;
  int r.Request.seed;
  int r.Request.max_configs;
  int r.Request.max_depth;
  int r.Request.solo_budget;
  int (if r.Request.check_solo then 1 else 0);
  int r.Request.t_faults;
  int (if r.Request.certificate then 1 else 0);
  Ckey.of_string (Buffer.contents buf)

let cache_key_hex r = Ckey.to_hex (cache_key r)

let budget_of t (r : Request.t) =
  let deadline =
    match r.Request.deadline with Some d -> Some d | None -> t.default_deadline
  in
  let max_nodes =
    match r.Request.max_nodes with
    | Some m -> Some m
    | None -> t.default_max_nodes
  in
  match deadline, max_nodes with
  | None, None -> Budget.unlimited
  | _ -> Budget.create ?deadline ?max_nodes ()

(* The canonical bivalent initial assignment the Theorem-1 construction
   uses: p1 has input 1, everyone else 0. *)
let canonical_inputs n = Array.init n (fun p -> Value.int (if p = 1 then 1 else 0))

exception Reject of string * string  (* code, message *)

(* Splice an emitted certificate into a result document.  The certificate
   is built in its own canonical JSON and re-parsed here: the digest binds
   the tree, not the rendering, so the round trip is harmless and cached /
   recovered copies stay independently checkable. *)
let with_certificate cert json =
  match cert with
  | None -> json
  | Some c -> (
    let cj =
      match Json.of_string (Ts_cert.Cert.to_string c) with
      | Ok j -> j
      | Error _ -> Json.Null
    in
    match json with
    | Json.Obj kvs -> Json.Obj (kvs @ [ ("certificate", cj) ])
    | other -> other)

let protocol_of (r : Request.t) =
  match Ts_protocols.Catalog.find r.Request.protocol ~n:r.Request.n with
  | Ok p -> p
  | Error msg -> raise (Reject ("unknown-protocol", msg))

(* Each computation returns the result document plus whether it is a
   complete answer (cacheable) — see the .mli cache policy. *)
let compute t (r : Request.t) : Json.t * bool =
  match r.Request.op with
  | Request.Ping -> (Json.Obj [ ("pong", Json.Bool true) ], false)
  | Request.Health ->
    (* liveness + a load snapshot cheap enough for the loop: the resilient
       client (and an eventual load balancer) reads this to decide whether
       to route, back off or fail over *)
    ( Json.Obj
        ([ ("status", Json.Str "ok"); ("store", Json.Bool (t.store <> None)) ]
        @ t.extra_stats ()),
      false )
  | Request.Stats ->
    ( Json.Obj
        ([ ("cache", Response.cache_stats_to_json (Cache.stats t.cache)) ]
        @ (match t.store with
           | None -> []
           | Some st ->
             [ ("store", Response.store_stats_to_json (Store.stats st)) ])
        @ t.extra_stats ()),
      false )
  | Request.Witness ->
    let (Protocol.Packed proto) = protocol_of r in
    let budget = budget_of t r in
    let outcome, horizon_used =
      match r.Request.horizon with
      | Some h ->
        let v = Valency.create ~budget proto ~horizon:h in
        (Theorem.theorem1_outcome v, h)
      | None ->
        Theorem.theorem1_escalate ~budget proto
          ~initial_horizon:(10 * r.Request.n)
    in
    (match outcome with
     | Theorem.Complete cert ->
       let verified = Theorem.verify cert proto in
       let emitted =
         if r.Request.certificate then Some (Ts_cert.Cert.of_theorem proto cert)
         else None
       in
       ( with_certificate emitted
           (Response.witness_to_json ~horizon_used ~verified cert),
         verified = Ok () )
     | Theorem.Partial (stop, progress) ->
       (Response.witness_partial_to_json ~horizon_used stop progress, false))
  | Request.Check ->
    let (Protocol.Packed proto) = protocol_of r in
    let result =
      Explore.check_consensus proto ~budget:(budget_of t r)
        ~inputs_list:(Explore.binary_inputs r.Request.n)
        ~max_configs:r.Request.max_configs ~max_depth:r.Request.max_depth
        ~solo_budget:r.Request.solo_budget ~check_solo:r.Request.check_solo
    in
    let emitted =
      match (r.Request.certificate, result.Explore.verdict) with
      | true, Error v -> Some (Ts_cert.Cert.of_violation proto v)
      | _ -> None
    in
    ( with_certificate emitted (Response.explore_to_json result),
      result.Explore.stopped = None && result.Explore.worker_errors = [] )
  | Request.Resilient ->
    let (Protocol.Packed proto) = protocol_of r in
    let result =
      Explore.check_t_resilient proto ~t:r.Request.t_faults
        ~budget:(budget_of t r)
        ~inputs_list:(Explore.binary_inputs r.Request.n)
        ~max_configs:r.Request.max_configs ~max_depth:r.Request.max_depth
        ~solo_budget:r.Request.solo_budget
    in
    let replay =
      match result.Explore.verdict with
      | Error v -> Some (Explore.replay proto v)
      | Ok () -> None
    in
    let emitted =
      match (r.Request.certificate, result.Explore.verdict) with
      | true, Error v -> Some (Ts_cert.Cert.of_violation proto v)
      | _ -> None
    in
    ( with_certificate emitted (Response.explore_to_json ?replay result),
      result.Explore.stopped = None && result.Explore.worker_errors = [] )
  | Request.Valency ->
    let (Protocol.Packed proto) = protocol_of r in
    let horizon =
      match r.Request.horizon with Some h -> h | None -> 10 * r.Request.n
    in
    let v = Valency.create ~budget:(budget_of t r) proto ~horizon in
    let inputs = canonical_inputs r.Request.n in
    let i0 = Config.initial proto ~inputs in
    let verdict = Valency.classify v i0 (Pset.all r.Request.n) in
    (Response.valency_to_json ~inputs ~horizon verdict (Valency.stats v), true)
  | Request.Analyze -> (
    match Ts_analysis.Registry.find r.Request.protocol with
    | None ->
      raise
        (Reject
           ( "unknown-protocol",
             Printf.sprintf "no registry entry %S (known: %s)"
               r.Request.protocol
               (String.concat ", " (Ts_analysis.Registry.names ())) ))
    | Some entry ->
      let report = Ts_analysis.Analyze.analyze entry in
      (Ts_analysis.Analyze.report_to_json report, true))

let cacheable_op (r : Request.t) =
  match r.Request.op with
  | Request.Ping | Request.Stats | Request.Health -> false
  | Request.Witness | Request.Check | Request.Resilient | Request.Valency
  | Request.Analyze -> true

(* Map every engine exception to its stable error code; [f] produces the
   success document. *)
let guard ~id f =
  let err code msg =
    Obs.Metrics.incr "service.errors";
    Json.to_string (Response.error ~id:(Some id) ~code msg)
  in
  match f () with
  | response -> response
  | exception Reject (code, msg) -> err code msg
  | exception Invalid_argument msg -> err "invalid-argument" msg
  | exception Failure msg -> err "construction-failed" msg
  | exception Budget.Exhausted b ->
    err "out-of-budget" (Format.asprintf "%a" Budget.pp_breach b)
  | exception Valency.Horizon_exceeded msg ->
    err "construction-failed" ("oracle horizon too small: " ^ msg)
  | exception exn -> err "internal" (Printexc.to_string exn)

(* One "service.request" span per request, opened wherever the answer is
   actually produced (the loop for hits, a worker for computations). *)
let in_span (r : Request.t) f =
  let sp = Obs.enter ~cat:"service" "service.request" in
  Obs.set_str sp "op" (Request.op_to_string r.Request.op);
  Obs.set_str sp "protocol" r.Request.protocol;
  let out = guard ~id:r.Request.id f in
  Obs.close sp;
  out

type outcome =
  | Answered of string
  | Deferred of (unit -> string)

let route t (r : Request.t) =
  Obs.Metrics.incr "service.requests";
  if not (cacheable_op r) then
    (* ping/stats: O(counters), answered on the calling thread *)
    Answered
      (in_span r (fun () ->
           let started = Unix.gettimeofday () in
           let result, _ = compute t r in
           Response.envelope_raw ~id:r.Request.id ~provenance:None
             ~cache_key:None
             ~elapsed_ms:((Unix.gettimeofday () -. started) *. 1000.)
             ~result:(Json.to_string result)))
  else begin
    let key = cache_key r in
    let key_hex = Ckey.to_hex key in
    let hit provenance body started =
      Response.envelope_raw ~id:r.Request.id ~provenance:(Some provenance)
        ~cache_key:(Some key_hex)
        ~elapsed_ms:((Unix.gettimeofday () -. started) *. 1000.)
        ~result:body
    in
    let started = Unix.gettimeofday () in
    match Cache.find t.cache key with
    | Some body -> Answered (in_span r (fun () -> hit "cached" body started))
    | None -> (
      match
        match t.store with None -> None | Some st -> Store.find st key
      with
      | Some body ->
        (* warm the memory tier from the log — without re-appending what
           was just read *)
        Cache.put ~write_through:false t.cache key body;
        Answered (in_span r (fun () -> hit "recovered" body started))
      | None ->
        Deferred
          (fun () ->
            in_span r (fun () ->
                let started = Unix.gettimeofday () in
                let result, complete = compute t r in
                let body = Json.to_string result in
                if complete then Cache.put t.cache key body;
                hit "fresh" body started)))
  end

let handle_raw t r =
  match route t r with Answered doc -> doc | Deferred run -> run ()

let handle t r =
  let raw = handle_raw t r in
  match Json.of_string raw with
  | Ok doc -> doc
  | Error msg ->
    (* a response we emitted must parse; anything else is a serializer bug *)
    invalid_arg ("Dispatch.handle: self-emitted document unparseable: " ^ msg)

let cache_stats t = Cache.stats t.cache
let store_stats t = Option.map Store.stats t.store
let clear_cache t = Cache.clear t.cache
