module Json = Ts_analysis.Json
module Rng = Ts_model.Rng

type conn = { fd : Unix.file_descr }

(* ---- error taxonomy --------------------------------------------------- *)

(* Every [Error] string starts with a stable tag followed by ": ".
   "conn_reset" = the transport died under us, "parse" = the peer spoke
   bytes that are not the protocol, "timeout" = the per-request deadline
   expired, "connect" = no connection could be made, "io" = anything
   else the OS reported.  [error_tag] recovers the tag. *)
let error_tag msg =
  match String.index_opt msg ':' with
  | Some i -> String.sub msg 0 i
  | None -> msg

let tag_of_unix_error = function
  | Unix.ECONNRESET | Unix.EPIPE | Unix.ECONNABORTED | Unix.ENOTCONN
  | Unix.ESHUTDOWN | Unix.EBADF ->
    "conn_reset"
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT -> "timeout"
  | _ -> "io"

let unix_err ~what err =
  Printf.sprintf "%s: %s failed: %s" (tag_of_unix_error err) what
    (Unix.error_message err)

(* ---- one connection --------------------------------------------------- *)

let connect ?(host = "127.0.0.1") ~port () =
  match Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "connect: socket: %s" (Unix.error_message err))
  | fd -> (
    match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
    | () -> Ok { fd }
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match e with
      | Unix.Unix_error (err, _, _) ->
        Error
          (Printf.sprintf "connect: %s:%d: %s" host port (Unix.error_message err))
      | _ ->
        Error
          (Printf.sprintf "connect: %s:%d: %s" host port (Printexc.to_string e))))

let connect_exn ?host ~port () =
  match connect ?host ~port () with Ok c -> c | Error e -> failwith e

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* [set_deadline] arms SO_RCVTIMEO/SO_SNDTIMEO so a stalled peer turns
   into a tagged "timeout" error instead of a hung client. *)
let set_deadline c ~ms =
  if ms > 0 then begin
    let s = float_of_int ms /. 1000. in
    try
      Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float c.fd Unix.SO_SNDTIMEO s
    with Unix.Unix_error _ -> ()
  end

let recv c =
  match Frame.read c.fd with
  | exception Unix.Unix_error (err, _, _) -> Error (unix_err ~what:"recv" err)
  | Error Frame.Eof -> Error "conn_reset: peer closed the connection"
  | Error (Frame.Truncated _ as e) ->
    Error (Printf.sprintf "conn_reset: %s" (Frame.error_to_string e))
  | Error ((Frame.Bad_length _ | Frame.Too_large _) as e) ->
    Error (Printf.sprintf "parse: %s" (Frame.error_to_string e))
  | Ok payload -> (
    match Json.of_string payload with
    | Error msg -> Error (Printf.sprintf "parse: unparsable response: %s" msg)
    | Ok doc -> Ok doc)

let rpc c doc =
  match Frame.write c.fd (Json.to_string doc) with
  | exception Unix.Unix_error (err, _, _) -> Error (unix_err ~what:"send" err)
  | () -> recv c

let send_raw c bytes =
  let n = String.length bytes in
  let rec go off =
    if off < n then
      let w = Unix.write_substring c.fd bytes off (n - off) in
      go (off + w)
  in
  go 0

let request ?host ~port doc =
  match connect ?host ~port () with
  | Error _ as e -> e
  | Ok c -> Fun.protect (fun () -> rpc c doc) ~finally:(fun () -> close c)

(* ---- the resilient client --------------------------------------------- *)

type policy = {
  attempts : int;
  backoff_ms : int;
  backoff_max_ms : int;
  timeout_ms : int;
  breaker_threshold : int;
  breaker_cooldown_ms : int;
  seed : int;
}

let default_policy =
  {
    attempts = 5;
    backoff_ms = 20;
    backoff_max_ms = 2000;
    timeout_ms = 10_000;
    breaker_threshold = 8;
    breaker_cooldown_ms = 500;
    seed = 2026;
  }

type breaker_state =
  | Closed
  | Open
  | Half_open

type stats = {
  calls : int;
  attempts_made : int;
  retries : int;
  reconnects : int;
  timeouts : int;
  conn_resets : int;
  parse_errors : int;
  connect_errors : int;
  server_busy : int;
  retry_after_honored : int;
  breaker_opens : int;
}

type client = {
  host : string;
  cport : int;
  policy : policy;
  rng : Rng.t;
  mutable conn : conn option;
  mutable connects : int;  (* successful connects, first one included *)
  mutable state : breaker_state;
  mutable consec_failures : int;
  mutable open_until : float;
  mutable s_calls : int;
  mutable s_attempts : int;
  mutable s_retries : int;
  mutable s_timeouts : int;
  mutable s_conn_resets : int;
  mutable s_parse : int;
  mutable s_connect : int;
  mutable s_busy : int;
  mutable s_retry_after : int;
  mutable s_breaker_opens : int;
}

let make ?(host = "127.0.0.1") ?(policy = default_policy) ~port () =
  if policy.attempts < 1 then invalid_arg "Client.make: attempts < 1";
  {
    host;
    cport = port;
    policy;
    rng = Rng.create policy.seed;
    conn = None;
    connects = 0;
    state = Closed;
    consec_failures = 0;
    open_until = 0.;
    s_calls = 0;
    s_attempts = 0;
    s_retries = 0;
    s_timeouts = 0;
    s_conn_resets = 0;
    s_parse = 0;
    s_connect = 0;
    s_busy = 0;
    s_retry_after = 0;
    s_breaker_opens = 0;
  }

let breaker_state cl = cl.state

let stats cl =
  {
    calls = cl.s_calls;
    attempts_made = cl.s_attempts;
    retries = cl.s_retries;
    reconnects = max 0 (cl.connects - 1);
    timeouts = cl.s_timeouts;
    conn_resets = cl.s_conn_resets;
    parse_errors = cl.s_parse;
    connect_errors = cl.s_connect;
    server_busy = cl.s_busy;
    retry_after_honored = cl.s_retry_after;
    breaker_opens = cl.s_breaker_opens;
  }

let drop_conn cl =
  match cl.conn with
  | None -> ()
  | Some c ->
    close c;
    cl.conn <- None

let shutdown cl = drop_conn cl

let get_conn cl =
  match cl.conn with
  | Some c -> Ok c
  | None -> (
    match connect ~host:cl.host ~port:cl.cport () with
    | Error _ as e -> e
    | Ok c ->
      set_deadline c ~ms:cl.policy.timeout_ms;
      cl.connects <- cl.connects + 1;
      cl.conn <- Some c;
      Ok c)

let count_tag cl msg =
  match error_tag msg with
  | "timeout" -> cl.s_timeouts <- cl.s_timeouts + 1
  | "conn_reset" -> cl.s_conn_resets <- cl.s_conn_resets + 1
  | "parse" -> cl.s_parse <- cl.s_parse + 1
  | "connect" -> cl.s_connect <- cl.s_connect + 1
  | _ -> ()

let note_failure cl =
  cl.consec_failures <- cl.consec_failures + 1;
  if
    cl.policy.breaker_threshold > 0
    && cl.consec_failures >= cl.policy.breaker_threshold
    && cl.state <> Open
  then begin
    cl.state <- Open;
    cl.open_until <-
      Unix.gettimeofday () +. (float_of_int cl.policy.breaker_cooldown_ms /. 1000.);
    cl.s_breaker_opens <- cl.s_breaker_opens + 1
  end

let note_success cl =
  cl.consec_failures <- 0;
  cl.state <- Closed

(* Exponential backoff with seeded half-jitter: attempt [i] (1-based)
   sleeps a uniform draw from [d/2, d] where d = base * 2^(i-1), capped. *)
let backoff_sleep cl i =
  let d =
    min cl.policy.backoff_max_ms (cl.policy.backoff_ms * (1 lsl min (i - 1) 16))
  in
  if d > 0 then begin
    let half = d / 2 in
    let ms = half + Rng.int cl.rng (d - half + 1) in
    Unix.sleepf (float_of_int ms /. 1000.)
  end

(* The breaker never turns a call into a hard failure while attempts
   remain — requests are idempotent pure queries, so the safe reaction
   to a sick server is to stop hammering it, not to fabricate an error.
   An open breaker therefore *sleeps out* the cooldown and lets the
   next attempt through as the half-open probe. *)
let breaker_gate cl =
  match cl.state with
  | Closed | Half_open -> ()
  | Open ->
    let now = Unix.gettimeofday () in
    if cl.open_until > now then Unix.sleepf (cl.open_until -. now);
    cl.state <- Half_open

(* A failure envelope the client should transparently retry:
   [overloaded]/[shutting-down] are explicit backpressure (and carry the
   server's [retry_after_ms] hint), while [bad-frame]/[bad-json] in
   response to a request *we* framed and serialized means the bytes were
   damaged in flight — a transport fault wearing a protocol error's
   clothes.  The daemon closes the connection after [bad-frame], so that
   one also drops ours. *)
let retry_hint doc =
  match Json.member "ok" doc with
  | Some (Json.Bool false) -> (
    match Json.member "error" doc with
    | None -> `Final
    | Some err -> (
      let ra = Option.bind (Json.member "retry_after_ms" err) Json.to_int_opt in
      match Option.bind (Json.member "code" err) Json.to_str_opt with
      | Some (("overloaded" | "shutting-down") as code) ->
        `Retry (code, ra, `Keep)
      | Some ("bad-frame" as code) -> `Retry (code, ra, `Drop)
      | Some ("bad-json" as code) -> `Retry (code, ra, `Keep)
      | _ -> `Final))
  | _ -> `Final

let call cl doc =
  cl.s_calls <- cl.s_calls + 1;
  let fail_after msg =
    Error
      (Printf.sprintf "exhausted: %d attempt(s) failed; last error: %s"
         cl.policy.attempts msg)
  in
  let rec attempt i last_err =
    if i > cl.policy.attempts then fail_after last_err
    else begin
      if i > 1 then cl.s_retries <- cl.s_retries + 1;
      cl.s_attempts <- cl.s_attempts + 1;
      breaker_gate cl;
      match get_conn cl with
      | Error e ->
        count_tag cl e;
        note_failure cl;
        if i < cl.policy.attempts then backoff_sleep cl i;
        attempt (i + 1) e
      | Ok c -> (
        match rpc c doc with
        | Error e ->
          (* any transport failure poisons request/response pairing on
             this connection (a late response could answer the wrong
             request), so the connection is always dropped *)
          drop_conn cl;
          count_tag cl e;
          note_failure cl;
          if i < cl.policy.attempts then backoff_sleep cl i;
          attempt (i + 1) e
        | Ok resp -> (
          match retry_hint resp with
          | `Final ->
            note_success cl;
            Ok resp
          | `Retry (code, ra, conn_fate) ->
            cl.s_busy <- cl.s_busy + 1;
            (match conn_fate with `Drop -> drop_conn cl | `Keep -> ());
            note_failure cl;
            (match ra with
            | Some ms when ms >= 0 ->
              cl.s_retry_after <- cl.s_retry_after + 1;
              if i < cl.policy.attempts then
                Unix.sleepf (float_of_int ms /. 1000.)
            | _ -> if i < cl.policy.attempts then backoff_sleep cl i);
            attempt (i + 1) (Printf.sprintf "server: %s" code)))
    end
  in
  attempt 1 "no attempt made"
