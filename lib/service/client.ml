module Json = Ts_analysis.Json

type conn = { fd : Unix.file_descr }

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let recv c =
  match Frame.read c.fd with
  | Error e -> Error (Frame.error_to_string e)
  | Ok payload -> (
    match Json.of_string payload with
    | Error msg -> Error (Printf.sprintf "unparsable response: %s" msg)
    | Ok doc -> Ok doc)

let rpc c doc =
  match Frame.write c.fd (Json.to_string doc) with
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "send failed: %s" (Unix.error_message err))
  | () -> recv c

let send_raw c bytes =
  let n = String.length bytes in
  let rec go off =
    if off < n then
      let w = Unix.write_substring c.fd bytes off (n - off) in
      go (off + w)
  in
  go 0

let request ?host ~port doc =
  let c = connect ?host ~port () in
  Fun.protect (fun () -> rpc c doc) ~finally:(fun () -> close c)
