(** A seeded fault-injecting TCP proxy — the adversarial {e environment}
    for the service stack.

    The paper's engine reasons about worst-case schedules; this module
    gives the daemon the same treatment at the transport layer.  The
    proxy sits between a client and a serving daemon and, per a seeded
    per-connection fault plan (the {!Ts_model.Fault} discipline applied
    to sockets), injects:

    - {b latency}: every relayed chunk held back a fixed seeded delay;
    - {b bandwidth throttling}: each side's writes capped per loop tick;
    - {b connection resets}: after a seeded number of relayed bytes the
      connection is killed with an RST (SO_LINGER 0) — usually
      mid-frame;
    - {b frame truncation}: the daemon→client stream is cut with a FIN
      after a seeded byte count, so the client sees a frame shorter
      than its header promised;
    - {b byte corruption}: seeded stream offsets are overwritten with
      [0x01] — a byte that can never appear in a well-formed frame
      (not a digit in the header, an unescaped control character
      inside JSON), so corruption is always {e detectable}, never a
      silent answer change.  This is what lets the chaos acceptance
      bar demand byte-identical answers under corruption.

    Every connection's plan derives from [config.seed] and the
    connection's accept ordinal, every injected fault is logged with
    both ({!events}), and the whole run replays exactly from the one
    printed seed.

    The proxy is one extra domain running a [Unix.select] relay loop —
    stdlib only, same discipline as {!Evloop}. *)

(** Which fault classes the plan sampler may draw.  A disabled class is
    never injected regardless of seed. *)
type classes = {
  resets : bool;
  truncations : bool;
  corruption : bool;
  latency : bool;
  throttle : bool;
}

val all_classes : classes

val no_classes : classes

(** [classes_of_string "reset,corrupt"] enables the named classes
    (names: [reset], [truncate], [corrupt], [delay], [throttle]; [all]
    and [none] as shorthands).  [Error] on an unknown name. *)
val classes_of_string : string -> (classes, string) result

val classes_to_string : classes -> string

type config = {
  listen_host : string;
  listen_port : int;  (** [0] picks an ephemeral port — see {!port} *)
  upstream_host : string;
  upstream_port : int;
  seed : int;  (** master seed; every plan derives from it *)
  fault_prob : float;
      (** probability an accepted connection draws a faulty plan at
          all; clean connections relay verbatim *)
  classes : classes;
  max_delay_ms : int;  (** latency draws are uniform in [1, max] *)
  verbose : bool;  (** log every injected fault to stderr as it fires *)
}

(** Listens ephemerally on localhost, faults every class with
    probability 0.6, delays up to 25 ms. *)
val default_config : upstream_port:int -> config

type t

(** [start config] binds the listener, spawns the relay domain and
    returns immediately.
    @raise Unix.Unix_error if the listen address cannot be bound. *)
val start : config -> t

(** The actually bound listen port. *)
val port : t -> int

(** Stop accepting, kill every live relay, join the domain. *)
val stop : t -> unit

type stats = {
  connections : int;  (** accepted *)
  faulted : int;  (** connections whose plan held at least one fault *)
  resets : int;  (** RSTs injected *)
  truncations : int;  (** FIN-mid-frame injections *)
  corruptions : int;  (** bytes overwritten *)
  delayed_chunks : int;  (** chunks held back by injected latency *)
  throttled_chunks : int;  (** writes clipped by the bandwidth cap *)
  bytes_up : int;  (** client→daemon bytes relayed *)
  bytes_down : int;  (** daemon→client bytes relayed *)
}

val stats : t -> stats

(** Chronological log of injected faults ("conn 3: reset after 57
    bytes (plan seed 0x...)"), newest last; capped at the most recent
    1000 entries. *)
val events : t -> string list

val pp_stats : Format.formatter -> stats -> unit
