(** Deterministic JSON serialization of engine results.

    These serializers are the {e single} rendering of engine answers: the
    daemon's response bodies, the CLI's [--json] output and the cache's
    stored entries all go through them.  That sharing is what gives the
    service its differential guarantee — a cached answer is the stored
    output of the very function a cold recomputation would call, so
    "cached equals fresh" reduces to the serializers being deterministic.

    Accordingly, {b nothing here may depend on wall-clock, addresses,
    hashing order or domain count}: inputs, schedules, stats counters and
    verdicts only.  Timing lives in the response {e envelope}
    ({!envelope}'s [elapsed_ms]), which is never cached. *)

open Ts_model
open Ts_core
module Json := Ts_analysis.Json

(** Structural rendering of a register value: [Bot] as [null], ints and
    bools natively, pairs as [{"fst": ..., "snd": ...}], lists as
    arrays. *)
val value_to_json : Value.t -> Json.t

(** A tripped budget limit: [{"limit": "deadline"|"nodes"|"heap",
    "allowance": ...}]. *)
val breach_to_json : Budget.breach -> Json.t

(** Theorem-1 outcome.  [verified] is the caller's independent
    {!Ts_core.Theorem.verify} replay of the certificate (run it before
    serializing — a service must never cache an unreplayed witness). *)
val witness_to_json :
  horizon_used:int ->
  verified:(unit, string) result ->
  Theorem.certificate ->
  Json.t

(** A stopped Theorem-1 construction: status ["partial"] with the stop
    reason and progress counters. *)
val witness_partial_to_json :
  horizon_used:int -> Theorem.stop -> Theorem.progress -> Json.t

(** Revisionist-engine outcome, the [--engine revisionist] sibling of
    {!witness_to_json}.  [verified] is the caller's independent
    [Ts_revisionist.Revisionist.verify] replay. *)
val revisionist_to_json :
  max_solo_used:int ->
  verified:(unit, string) result ->
  Ts_revisionist.Revisionist.certificate ->
  Json.t

(** A stopped revisionist construction: status ["partial"] with the stop
    reason and progress counters. *)
val revisionist_partial_to_json :
  max_solo_used:int ->
  Ts_revisionist.Revisionist.stop ->
  Ts_revisionist.Revisionist.progress ->
  Json.t

(** A checker result: verdict, optional violation (kind via
    {!Ts_checker.Explore.violation_kind}, inputs, schedule length and the
    kind-specific payload), full stats, optional breach, worker errors.
    [replay] (for [resilient]) reports the independent witness replay. *)
val explore_to_json :
  ?replay:(unit, string) result -> Ts_checker.Explore.result -> Json.t

(** A valency classification of the canonical initial configuration. *)
val valency_to_json :
  inputs:Value.t array ->
  horizon:int ->
  Valency.verdict ->
  Valency.stats ->
  Json.t

(** On-disk witness store counters, the ["store"] section of the stats
    document. *)
val store_stats_to_json : Ts_store.Store.stats -> Json.t

(** Result-cache counters, the ["cache"] section of the stats document. *)
val cache_stats_to_json : Cache.stats -> Json.t

(** [envelope ~id ~provenance ~cache_key ~elapsed_ms result] is the
    framed success document: [{"id": ..., "ok": true, "provenance":
    "fresh"|"cached", "cache_key": ..., "elapsed_ms": ..., "result":
    ...}].  [provenance]/[cache_key] are omitted for uncacheable ops. *)
val envelope :
  id:int ->
  provenance:string option ->
  cache_key:string option ->
  elapsed_ms:float ->
  Json.t ->
  Json.t

(** [envelope_raw ~id ~provenance ~cache_key ~elapsed_ms ~result] builds
    the success document directly as bytes, splicing [result] (an
    already-serialized body) without parsing or re-rendering it — the
    event loop's hot path.  Byte-for-byte identical to
    [Json.to_string (envelope ... (parse result))] for any [result] this
    module produced. *)
val envelope_raw :
  id:int ->
  provenance:string option ->
  cache_key:string option ->
  elapsed_ms:float ->
  result:string ->
  string

(** [error ~id ~code msg] is the failure document: [{"id": ..., "ok":
    false, "error": {"code": ..., "message": ...}}].  Stable codes:
    ["bad-frame"], ["bad-json"], ["bad-request"], ["unknown-protocol"],
    ["invalid-argument"], ["construction-failed"], ["overloaded"],
    ["shutting-down"], ["internal"].  [retry_after_ms] adds the
    machine-readable backpressure hint ([{"retry_after_ms": ...}] inside
    the error object) that backpressure refusals ([overloaded],
    [shutting-down]) carry and the resilient client honors — see
    docs/SERVICE.md "Error envelope schema". *)
val error : ?retry_after_ms:int -> id:int option -> code:string -> string -> Json.t
