module Json = Ts_analysis.Json

type op =
  | Witness
  | Check
  | Resilient
  | Valency
  | Analyze
  | Ping
  | Stats
  | Health

let op_to_string = function
  | Witness -> "witness"
  | Check -> "check"
  | Resilient -> "resilient"
  | Valency -> "valency"
  | Analyze -> "analyze"
  | Ping -> "ping"
  | Stats -> "stats"
  | Health -> "health"

let op_of_string = function
  | "witness" -> Some Witness
  | "check" -> Some Check
  | "resilient" -> Some Resilient
  | "valency" -> Some Valency
  | "analyze" -> Some Analyze
  | "ping" -> Some Ping
  | "stats" -> Some Stats
  | "health" -> Some Health
  | _ -> None

type t = {
  id : int;
  op : op;
  protocol : string;
  n : int;
  horizon : int option;
  seed : int;
  max_configs : int;
  max_depth : int;
  solo_budget : int;
  check_solo : bool;
  t_faults : int;
  certificate : bool;
  deadline : float option;
  max_nodes : int option;
}

(* Mirrors the CLI flag defaults in bin/tightspace.ml. *)
let defaults =
  {
    id = 0;
    op = Ping;
    protocol = "racing";
    n = 3;
    horizon = None;
    seed = 2026;
    max_configs = 60_000;
    max_depth = 40;
    solo_budget = 300;
    check_solo = true;
    t_faults = 1;
    certificate = false;
    deadline = None;
    max_nodes = None;
  }

(* Field decoding is total-with-defaults for optional fields but strict on
   type mismatches: a client sending {"n": "three"} gets an error, not the
   default silently. *)
let field_err k = Error (Printf.sprintf "field %S has the wrong type" k)

let get_int doc k default =
  match Json.member k doc with
  | None | Some Json.Null -> Ok default
  | Some v -> ( match Json.to_int_opt v with Some i -> Ok i | None -> field_err k)

let get_int_opt doc k default =
  match Json.member k doc with
  | None -> Ok default
  | Some Json.Null -> Ok None
  | Some v -> (
    match Json.to_int_opt v with Some i -> Ok (Some i) | None -> field_err k)

let get_float_opt doc k default =
  match Json.member k doc with
  | None -> Ok default
  | Some Json.Null -> Ok None
  | Some v -> (
    match Json.to_float_opt v with Some f -> Ok (Some f) | None -> field_err k)

let get_bool doc k default =
  match Json.member k doc with
  | None | Some Json.Null -> Ok default
  | Some v -> ( match Json.to_bool_opt v with Some b -> Ok b | None -> field_err k)

let get_str doc k default =
  match Json.member k doc with
  | None | Some Json.Null -> Ok default
  | Some v -> ( match Json.to_str_opt v with Some s -> Ok s | None -> field_err k)

let of_json doc =
  let ( let* ) = Result.bind in
  match doc with
  | Json.Obj _ ->
    let* op_name =
      match Json.member "op" doc with
      | None -> Error "missing required field \"op\""
      | Some v -> (
        match Json.to_str_opt v with Some s -> Ok s | None -> field_err "op")
    in
    let* op =
      match op_of_string op_name with
      | Some op -> Ok op
      | None -> Error (Printf.sprintf "unknown op %S" op_name)
    in
    let d = defaults in
    let* id = get_int doc "id" d.id in
    let* protocol = get_str doc "protocol" d.protocol in
    let* n = get_int doc "n" d.n in
    let* horizon = get_int_opt doc "horizon" d.horizon in
    let* seed = get_int doc "seed" d.seed in
    let* max_configs = get_int doc "max_configs" d.max_configs in
    let* max_depth = get_int doc "max_depth" d.max_depth in
    let* solo_budget = get_int doc "solo_budget" d.solo_budget in
    let* check_solo = get_bool doc "check_solo" d.check_solo in
    let* t_faults = get_int doc "t" d.t_faults in
    let* certificate = get_bool doc "certificate" d.certificate in
    let* deadline = get_float_opt doc "deadline" d.deadline in
    let* max_nodes = get_int_opt doc "max_nodes" d.max_nodes in
    Ok
      {
        id; op; protocol; n; horizon; seed; max_configs; max_depth;
        solo_budget; check_solo; t_faults; certificate; deadline; max_nodes;
      }
  | _ -> Error "request must be a JSON object"

let to_json r =
  let opt_int = function None -> Json.Null | Some i -> Json.Int i in
  let opt_float = function None -> Json.Null | Some f -> Json.Float f in
  Json.Obj
    [
      ("id", Json.Int r.id);
      ("op", Json.Str (op_to_string r.op));
      ("protocol", Json.Str r.protocol);
      ("n", Json.Int r.n);
      ("horizon", opt_int r.horizon);
      ("seed", Json.Int r.seed);
      ("max_configs", Json.Int r.max_configs);
      ("max_depth", Json.Int r.max_depth);
      ("solo_budget", Json.Int r.solo_budget);
      ("check_solo", Json.Bool r.check_solo);
      ("t", Json.Int r.t_faults);
      ("certificate", Json.Bool r.certificate);
      ("deadline", opt_float r.deadline);
      ("max_nodes", opt_int r.max_nodes);
    ]
