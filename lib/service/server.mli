(** The [tightspace serve] daemon: framed JSON over TCP on a
    single-threaded {!Evloop} readiness loop, with engine work on a
    {!Pool} of worker domains and (optionally) the persistent witness
    store ({!Ts_store.Store}) behind the result cache.

    {b Connection model.}  One domain runs the event loop and owns every
    socket: accepts, incremental frame parsing into per-connection
    reusable buffers, and batched writes all happen there.  A request the
    dispatcher can answer in O(lookup) — a cache or store hit, [ping],
    [stats], a typed parse error — is answered directly on the loop;
    engine computations are submitted to the pool and their answers
    posted back to the loop.  Responses on one connection are always
    delivered in request order, and clients may pipeline freely.  When
    the pool's queue is full the {e request} is answered with an
    ["overloaded"] error frame on the spot — admission control, not
    silent queueing — and the connection survives.

    {b Persistence.}  With [store_path] set, every complete answer is
    written through to the append-only witness log, and a restarted
    daemon opening the same path serves previously-seen queries from disk
    (["provenance": "recovered"]) without recomputation.

    {b Robustness.}  A malformed frame or unparsable request earns an
    error response and (for framing damage, which desynchronizes the
    stream) a closed connection — never a dead daemon.  Per-request
    engine work is bounded by the configured default budget unless the
    request carries its own.

    {b Shutdown.}  {!request_stop} (also safe from a signal handler)
    begins a graceful drain: the loop stops accepting and reading,
    parked requests get their answers, buffered output flushes (bounded
    by a few seconds), the pool drains, the store syncs and closes, and
    {!wait} returns.  [tightspace serve] wires SIGINT/SIGTERM to exactly
    this. *)

module Json := Ts_analysis.Json

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port — see {!port} *)
  workers : int;  (** worker domains for engine computations *)
  queue_cap : int;  (** submitted-but-unserved computation bound *)
  cache_capacity : int;  (** result-cache entries *)
  cache_shards : int;
  request_deadline : float option;
      (** default per-request wall-clock budget, seconds *)
  max_nodes : int option;  (** default per-request search-node budget *)
  store_path : string option;
      (** attach the persistent witness store at this path *)
  store_fsync : Ts_store.Store.fsync;  (** durability policy for appends *)
  retry_after_overloaded_ms : int;
      (** [retry_after_ms] hint carried by ["overloaded"] refusals *)
  retry_after_draining_ms : int;
      (** [retry_after_ms] hint carried by ["shutting-down"] refusals *)
  verbose : bool;  (** log lifecycle events to stderr *)
}

val default_config : config

type t

(** [start config] binds, listens, opens the store (when configured),
    spawns the loop domain and the worker pool, and returns immediately.
    @raise Unix.Unix_error if the address cannot be bound.
    @raise Failure if the store path exists but is not a valid log. *)
val start : config -> t

(** The actually bound port (interesting when [config.port = 0]). *)
val port : t -> int

(** Begin a graceful drain.  Async-signal-safe (one atomic store). *)
val request_stop : t -> unit

val stopping : t -> bool

(** Block until the drain completes: loop domain joined, pool drained
    and joined, listener closed, store closed.  Call {!request_stop}
    first (or from a signal handler). *)
val wait : t -> unit

(** [stop t] is {!request_stop} followed by {!wait}. *)
val stop : t -> unit

(** The dispatcher, for in-process use (tests, the load generator's
    baseline measurements). *)
val dispatcher : t -> Dispatch.t

type summary = {
  connections : int;  (** connections accepted by the loop *)
  requests : int;  (** well-formed requests dispatched *)
  malformed : int;  (** frames or documents rejected *)
  refused : int;  (** requests refused by admission control *)
  direct : int;  (** requests answered on the loop, no pool involved *)
  job_errors : int;  (** pool jobs that raised (contained) *)
  cache : Ts_core.Cache.stats;
  store : Ts_store.Store.stats option;  (** when a store is attached *)
  uptime : float;  (** seconds since {!start} *)
}

val summary : t -> summary
val summary_to_json : summary -> Json.t
val pp_summary : Format.formatter -> summary -> unit
