(** The [tightspace serve] daemon: framed JSON over TCP, answered by a
    {!Dispatch} dispatcher on a {!Pool} of worker domains.

    {b Connection model.}  The accept loop runs on its own domain and
    submits each accepted connection to the pool as one job; a worker owns
    the connection for its lifetime and answers its requests sequentially.
    When the pool's queue is full the connection is refused on the spot
    with an ["overloaded"] error frame — admission control, not silent
    queueing.

    {b Robustness.}  A malformed frame or unparsable request earns an
    error response and (for framing damage, which desynchronizes the
    stream) a closed connection — never a dead daemon.  Per-request
    engine work is bounded by the configured default budget unless the
    request carries its own.

    {b Shutdown.}  {!request_stop} (also safe from a signal handler)
    begins a graceful drain: the listener closes, in-flight connections
    finish their current request and close, the pool drains, and
    {!wait} returns.  [tightspace serve] wires SIGINT/SIGTERM to exactly
    this. *)

module Json := Ts_analysis.Json

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port — see {!port} *)
  workers : int;  (** worker domains (= max concurrent connections) *)
  queue_cap : int;  (** accepted-but-unserved connection bound *)
  cache_capacity : int;  (** result-cache entries *)
  cache_shards : int;
  request_deadline : float option;
      (** default per-request wall-clock budget, seconds *)
  max_nodes : int option;  (** default per-request search-node budget *)
  verbose : bool;  (** log per-connection events to stderr *)
}

val default_config : config

type t

(** [start config] binds, listens, spawns the accept domain and the
    worker pool, and returns immediately.
    @raise Unix.Unix_error if the address cannot be bound. *)
val start : config -> t

(** The actually bound port (interesting when [config.port = 0]). *)
val port : t -> int

(** Begin a graceful drain.  Async-signal-safe (one atomic store). *)
val request_stop : t -> unit

val stopping : t -> bool

(** Block until the drain completes: accept domain joined, pool drained
    and joined, listener closed.  Call {!request_stop} first (or from a
    signal handler). *)
val wait : t -> unit

(** [stop t] is {!request_stop} followed by {!wait}. *)
val stop : t -> unit

(** The dispatcher, for in-process use (tests, the load generator's
    baseline measurements). *)
val dispatcher : t -> Dispatch.t

type summary = {
  connections : int;  (** accepted, including refused-overloaded ones *)
  requests : int;  (** well-formed requests dispatched *)
  malformed : int;  (** frames or documents rejected *)
  refused : int;  (** connections refused by admission control *)
  job_errors : int;  (** connection handlers that raised (contained) *)
  cache : Ts_core.Cache.stats;
  uptime : float;  (** seconds since {!start} *)
}

val summary : t -> summary
val summary_to_json : summary -> Json.t
val pp_summary : Format.formatter -> summary -> unit
