let exit_code signo =
  if signo = Sys.sigint then 130
  else if signo = Sys.sigterm then 143
  else 128 (* not installed by this module; conservative fallback *)

(* The currently installed callback, reachable for [simulate].  A plain
   ref: handlers run on the main domain at safe points, and installers
   run before any signal can be delivered. *)
let handler : (int -> unit) option ref = ref None
let exits = ref false

let deliver signo =
  match !handler with
  | None -> ()
  | Some f ->
    f signo;
    if !exits then Stdlib.exit (exit_code signo)

let install ~exit_after ~on_signal =
  handler := Some on_signal;
  exits := exit_after;
  Sys.set_signal Sys.sigint (Sys.Signal_handle deliver);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle deliver)

let simulate signo = match !handler with None -> () | Some f -> f signo
let installed () = !handler <> None

let uninstall () =
  handler := None;
  exits := false;
  Sys.set_signal Sys.sigint Sys.Signal_default;
  Sys.set_signal Sys.sigterm Sys.Signal_default
