(** The service wire framing: length-prefixed JSON over a stream socket.

    A frame is an ASCII decimal byte count, a single ['\n'], then exactly
    that many payload bytes (the JSON document).  The prefix is
    self-describing and trivially debuggable with netcat:

    {v 22\n{"id":1,"op":"ping"}\n v}

    (the payload may itself end in a newline or not — only the counted
    bytes matter).

    Reading distinguishes a clean end-of-stream from a malformed prefix
    from an oversized claim, because the daemon treats them differently: a
    clean EOF ends the connection silently, while a malformed or oversized
    prefix means the stream can no longer be re-synchronized and the
    connection is dropped after a best-effort error frame.  A payload that
    is valid framing but invalid JSON is {e not} a framing error — the
    connection survives it. *)

(** Hard cap on accepted payload sizes, in bytes.  A frame claiming more
    is rejected without reading it ([Too_large]) — admission control
    against a client asking the daemon to buffer gigabytes. *)
val max_frame_bytes : int

type error =
  | Eof  (** the stream ended cleanly before a prefix byte *)
  | Bad_length of string  (** the length prefix is not a plain decimal *)
  | Too_large of int  (** the claimed length, which exceeds {!max_frame_bytes} *)
  | Truncated of int  (** the stream ended [n] bytes short of the claim *)

val error_to_string : error -> string

(** [read fd] reads one frame, blocking until it is complete.
    Socket-level failures ([Unix.Unix_error]) propagate. *)
val read : Unix.file_descr -> (string, error) result

(** [parse buf ~pos ~len] scans [buf[pos..len)] for one complete frame
    without copying or allocating on the happy path — the event loop's
    incremental half of the framing (the blocking {!read} stays for the
    synchronous client).

    - [`Frame (off, n)]: a complete frame; the payload is the [n] bytes
      at [off], and parsing of the next frame resumes at [off + n].
    - [`Need_more]: no complete frame yet; read more bytes and retry.
    - [`Error e]: the stream is desynchronized ([Bad_length]) or the
      claim oversized ([Too_large]); the connection cannot continue. *)
val parse :
  Bytes.t ->
  pos:int ->
  len:int ->
  [ `Frame of int * int | `Need_more | `Error of error ]

(** [write fd payload] writes one frame, looping until every byte is on
    the wire.  @raise Invalid_argument if the payload exceeds
    {!max_frame_bytes}. *)
val write : Unix.file_descr -> string -> unit
