(** Typed service requests, and their JSON wire form.

    One flat record covers every operation; fields an operation does not
    use are simply ignored by the dispatcher (but still participate in the
    cache key, so two requests that differ only in an ignored field are
    distinct cache entries — harmless, and far simpler to reason about
    than per-op key schemas). *)

type op =
  | Witness  (** run the Zhu Theorem-1 adversary *)
  | Check  (** bounded consensus model-check *)
  | Resilient  (** t-resilient termination under crash-stop faults *)
  | Valency  (** classify the canonical initial configuration *)
  | Analyze  (** static-analysis passes of a registry entry *)
  | Ping  (** liveness probe; never cached *)
  | Stats  (** daemon/cache counters; never cached *)
  | Health  (** readiness + load snapshot for retry decisions; never cached *)

val op_to_string : op -> string
val op_of_string : string -> op option

type t = {
  id : int;  (** client-chosen correlation id, echoed in the response *)
  op : op;
  protocol : string;  (** catalog name; registry name for [Analyze] *)
  n : int;  (** number of processes *)
  horizon : int option;  (** valency-oracle depth; [None] = escalate *)
  seed : int;  (** reserved for randomized workloads; cache-key material *)
  max_configs : int;
  max_depth : int;
  solo_budget : int;
  check_solo : bool;
  t_faults : int;  (** crash-fault tolerance for [Resilient] *)
  certificate : bool;
      (** request an embedded {!Ts_cert.Cert} certificate with the answer
          ([Witness]/[Check]/[Resilient]); cache-key material *)
  deadline : float option;  (** per-request wall-clock budget, seconds *)
  max_nodes : int option;  (** per-request search-node budget *)
}

(** Defaults mirror the CLI subcommands' flag defaults, so a daemon query
    and a one-shot CLI run of the same operation compute the same
    answer. *)
val defaults : t

(** [of_json doc] decodes a request object.  Unknown fields are ignored
    (forward compatibility); a missing ["op"], an unknown op name, or a
    type-mismatched field is an [Error]. *)
val of_json : Ts_analysis.Json.t -> (t, string) result

(** [to_json r] is the wire form; [of_json (to_json r) = Ok r]. *)
val to_json : t -> Ts_analysis.Json.t
