let max_frame_bytes = 4 * 1024 * 1024

type error =
  | Eof
  | Bad_length of string
  | Too_large of int
  | Truncated of int

let error_to_string = function
  | Eof -> "end of stream"
  | Bad_length s -> Printf.sprintf "malformed frame length %S" (String.escaped s)
  | Too_large n ->
    Printf.sprintf "frame of %d bytes exceeds the %d-byte cap" n max_frame_bytes
  | Truncated n -> Printf.sprintf "stream ended %d bytes short of the frame" n

(* The length prefix is read byte-at-a-time: prefixes are at most 8 bytes,
   so the syscall count per frame stays constant, and we never consume
   payload bytes while hunting for the '\n'. *)
let read_length fd =
  let buf = Bytes.create 1 in
  let digits = Buffer.create 8 in
  let rec go first =
    if Buffer.length digits > 8 then Error (Bad_length (Buffer.contents digits))
    else
      match Unix.read fd buf 0 1 with
      | 0 -> if first then Error Eof else Error (Bad_length (Buffer.contents digits))
      | _ -> (
        match Bytes.get buf 0 with
        | '\n' ->
          let s = Buffer.contents digits in
          if s = "" then Error (Bad_length s)
          else (
            match int_of_string_opt s with
            | Some n when n >= 0 ->
              if n > max_frame_bytes then Error (Too_large n) else Ok n
            | _ -> Error (Bad_length s))
        | '0' .. '9' as c ->
          Buffer.add_char digits c;
          go false
        | c ->
          Buffer.add_char digits c;
          Error (Bad_length (Buffer.contents digits)))
  in
  go true

(* Incremental, allocation-free parse over a caller-owned buffer: the
   event loop's half of the framing.  Scans [buf[pos..len)] for one
   complete frame and returns the payload's {e bounds} — no bytes are
   copied here; the caller decides when (and whether) to materialize the
   payload.  The length prefix grammar matches [read_length]: at most 8
   digits, terminated by '\n'. *)
let parse buf ~pos ~len =
  if pos >= len then `Need_more
  else begin
    let hdr_limit = pos + 9 in
    (* 8 digits + '\n' *)
    let bad upto =
      `Error (Bad_length (Bytes.sub_string buf pos (min (upto - pos) (len - pos))))
    in
    let rec scan i n ndigits =
      if i >= len then if i >= hdr_limit then bad i else `Need_more
      else
        match Bytes.unsafe_get buf i with
        | '\n' ->
          if ndigits = 0 then bad (i + 1)
          else if n > max_frame_bytes then `Error (Too_large n)
          else if i + 1 + n > len then `Need_more
          else `Frame (i + 1, n)
        | '0' .. '9' when i < hdr_limit - 1 ->
          scan (i + 1) ((n * 10) + (Char.code (Bytes.unsafe_get buf i) - Char.code '0'))
            (ndigits + 1)
        | _ -> bad (i + 1)
    in
    scan pos 0 0
  end

let read fd =
  match read_length fd with
  | Error _ as e -> e
  | Ok n ->
    let payload = Bytes.create n in
    let rec fill off =
      if off = n then Ok (Bytes.unsafe_to_string payload)
      else
        match Unix.read fd payload off (n - off) with
        | 0 -> Error (Truncated (n - off))
        | k -> fill (off + k)
    in
    fill 0

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let k = Unix.write_substring fd s off (n - off) in
      go (off + k)
  in
  go 0

let write fd payload =
  if String.length payload > max_frame_bytes then
    invalid_arg "Frame.write: payload exceeds max_frame_bytes";
  (* one write for the header+payload when small keeps frames atomic
     enough for interleaving-free debugging with strace *)
  write_all fd (string_of_int (String.length payload) ^ "\n" ^ payload)
