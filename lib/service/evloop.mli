(** The single-threaded readiness event loop at the heart of the daemon.

    PR 5's server parked one pool worker per connection in a blocking
    [Frame.read]; BENCH_PR5 showed the warm path entirely cache-bound,
    dominated by that handoff and by per-request frame allocation.  This
    loop replaces it with the classic epoll-shaped design (on
    [Unix.select], the portable stdlib spelling):

    - every socket is non-blocking; one domain owns all of them;
    - each connection carries a {e reusable} read buffer into which the
      kernel scatters bytes and {!Frame.parse} finds frame bounds in
      place — the hit path allocates the payload string and the response,
      nothing else;
    - responses accumulate in a per-connection output buffer and reach
      the kernel in one [write] per readiness event (writev-style
      batching: a pipelined client's whole burst is answered with one
      syscall);
    - cache hits are answered directly on the loop; anything expensive is
      handed to the worker {!Pool} and its answer is delivered back to
      the loop over a self-pipe ({!post}), so the loop never blocks.

    {b Ordering.}  Responses on one connection are delivered in request
    order: while a request is parked in the pool, later frames from the
    same connection wait (buffered, bounded) until its answer is posted.

    {b Threading.}  {!run} and the callbacks execute on the loop's domain
    only.  {!post} is the one thread-safe entry point — call it from any
    worker domain exactly once per [Later] reply. *)

type t

(** One client connection, owned by the loop.  Opaque to callers except
    as a token to hand back to {!post}. *)
type conn

(** What the payload callback decided:
    - [Now response]: answer immediately from the loop (cache hit, cheap
      op, typed error) — the response is queued on the connection in
      order;
    - [Later]: the work went to a pool; the loop parks the connection's
      request stream until {!post} delivers the answer. *)
type reply =
  | Now of string
  | Later

val create : lsock:Unix.file_descr -> t

(** [run t ~stop ~on_payload ~on_frame_error] drives the loop on the
    calling domain until [stop ()] holds and the drain completes (all
    parked requests answered and all output flushed, bounded by a few
    seconds).  [on_payload conn payload] is called once per well-framed
    payload; [on_frame_error err] supplies the best-effort error document
    sent before a desynchronized connection is dropped ([None] drops it
    silently).  On exit every connection and the listening socket are
    closed. *)
val run :
  t ->
  stop:(unit -> bool) ->
  on_payload:(conn -> string -> reply) ->
  on_frame_error:(Frame.error -> string option) ->
  unit

(** [post t conn response] delivers a parked request's answer from any
    domain.  Safe after the connection died (the answer is dropped). *)
val post : t -> conn -> string -> unit

(** Loop gauges, readable from any domain (plain reads of monotone or
    point-in-time values — observability, not synchronization). *)
val open_conns : t -> int

val iterations : t -> int
val accepted : t -> int
