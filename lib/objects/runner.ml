open Ts_model

type ('s, 'op) t = {
  impl : ('s, 'op) Impl.t;
  regs : Value.t array;  (* mutated in place; replaced only by [clone] *)
  states : 's option array;
  mutable hist : 'op History.event list;  (* newest first *)
  accesses : Action.reg list array;  (* per-process, current op *)
  mutable written : Action.reg list;  (* distinct, unsorted *)
}

let create impl =
  {
    impl;
    regs = Array.make (max 1 impl.Impl.num_registers) Value.bot;
    states = Array.make impl.Impl.num_processes None;
    hist = [];
    accesses = Array.make impl.Impl.num_processes [];
    written = [];
  }

let clone t =
  {
    t with
    regs = Array.copy t.regs;
    states = Array.copy t.states;
    accesses = Array.copy t.accesses;
  }

let impl t = t.impl
let busy t p = Option.is_some t.states.(p)

let invoke t p op =
  if busy t p then invalid_arg "Runner.invoke: operation already in progress";
  t.states.(p) <- Some (t.impl.Impl.begin_op ~pid:p op);
  t.accesses.(p) <- [];
  t.hist <- History.Inv (p, op) :: t.hist

let poised t p = Option.map t.impl.Impl.poised t.states.(p)

let record_access t p r =
  if not (List.mem r t.accesses.(p)) then t.accesses.(p) <- r :: t.accesses.(p)

let step t p =
  match t.states.(p) with
  | None -> invalid_arg "Runner.step: no operation in progress"
  | Some s ->
    (match t.impl.Impl.poised s with
     | Impl.Read r ->
       record_access t p r;
       t.states.(p) <- Some (t.impl.Impl.on_read s t.regs.(r));
       `Continues
     | Impl.Write (r, v) ->
       record_access t p r;
       if not (List.mem r t.written) then t.written <- r :: t.written;
       t.regs.(r) <- v;
       t.states.(p) <- Some (t.impl.Impl.on_write s);
       `Continues
     | Impl.Return v ->
       t.states.(p) <- None;
       t.hist <- History.Res (p, v) :: t.hist;
       `Returned v)

let finish t p =
  let budget = 1_000_000 in
  let rec go n =
    if n >= budget then
      invalid_arg "Runner.finish: operation did not return (not wait-free?)"
    else
      match step t p with
      | `Continues -> go (n + 1)
      | `Returned v -> v, n + 1
  in
  go 0

let op t p o =
  invoke t p o;
  finish t p

let history t = List.rev t.hist
let op_accesses t p = List.sort_uniq Stdlib.compare t.accesses.(p)
let written t = List.sort_uniq Stdlib.compare t.written
let register t r = t.regs.(r)
