(* Append-only witness log.  See the .mli for the format contract. *)

open Ts_model
module Obs = Ts_obs.Obs
module Trace = Ts_model.Trace

let store_version = 1
let magic = "TSWITLOG"
let header_len = 16
let record_header_len = 12
let max_key_bytes = 64 * 1024
let max_value_bytes = 4 * 1024 * 1024

type fsync =
  | Always
  | Interval of float
  | Never

type crash_point =
  | Crash_after_bytes of int
  | Crash_before_sync

exception Injected_crash

type t = {
  fd : Unix.file_descr;
  path : string;
  lock : Mutex.t;
  loc : string;  (* race-detector location of the log + index *)
  index : (int * int) Ckey.Tbl.t;  (* key -> value offset, value length *)
  fsync : fsync;
  scratch : Buffer.t;  (* record assembly, reused across appends *)
  mutable size : int;  (* current file size = append offset *)
  mutable dirty : bool;  (* appended since the last sync *)
  mutable last_sync : float;
  mutable closed : bool;
  mutable failpoint : crash_point option;  (* armed crash injection, tests only *)
  (* counters, all under [lock] *)
  mutable appends : int;
  mutable recovered : int;
  mutable torn_truncations : int;
  mutable torn_bytes : int;
  mutable lookups : int;
  mutable hits : int;
  mutable syncs : int;
}

let u32_to buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let u32_of b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let header_bytes =
  let buf = Buffer.create header_len in
  Buffer.add_string buf magic;
  u32_to buf store_version;
  u32_to buf 0;
  Buffer.contents buf

let record_crc ~key ~value =
  let lens = Buffer.create 8 in
  u32_to lens (String.length key);
  u32_to lens (String.length value);
  let crc = Crc32.update_string Crc32.init (Buffer.contents lens) 0 8 in
  let crc = Crc32.update_string crc key 0 (String.length key) in
  let crc = Crc32.update_string crc value 0 (String.length value) in
  Int32.to_int (Crc32.finish crc) land 0xffffffff

let add_record buf ~key ~value =
  u32_to buf (String.length key);
  u32_to buf (String.length value);
  u32_to buf (record_crc ~key ~value);
  Buffer.add_string buf key;
  Buffer.add_string buf value

let record_bytes ~key ~value =
  let buf = Buffer.create (record_header_len + String.length key + String.length value) in
  add_record buf ~key ~value;
  Buffer.contents buf

(* ---- low-level file I/O (caller holds the lock) ---------------------- *)

let write_all fd b off len =
  let rec go off len =
    if len > 0 then begin
      let k = Unix.write fd b off len in
      go (off + k) (len - k)
    end
  in
  go off len

(* [read_exact] returns how many bytes it actually got; a short count is
   how recovery detects a torn tail without raising. *)
let read_upto fd b off len =
  let rec go off len got =
    if len = 0 then got
    else
      match Unix.read fd b off len with
      | 0 -> got
      | k -> go (off + k) (len - k) (got + k)
  in
  go off len 0

let pread t ~off ~len =
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let b = Bytes.create len in
  if read_upto t.fd b 0 len <> len then None else Some (Bytes.unsafe_to_string b)

(* ---- open & recovery -------------------------------------------------- *)

let gauge_records t =
  Obs.Metrics.gauge "store.records" (Ckey.Tbl.length t.index);
  Obs.Metrics.gauge "store.bytes" t.size

(* Scan the record region, indexing every intact record; the first damaged
   one marks the torn tail.  Returns the last valid end offset. *)
let recover t file_size =
  let hdr = Bytes.create record_header_len in
  let rec scan off =
    if off >= file_size then off
    else begin
      ignore (Unix.lseek t.fd off Unix.SEEK_SET);
      if read_upto t.fd hdr 0 record_header_len <> record_header_len then off
      else
        let klen = u32_of hdr 0 and vlen = u32_of hdr 4 and crc = u32_of hdr 8 in
        if
          klen < 1 || klen > max_key_bytes || vlen < 0 || vlen > max_value_bytes
          || off + record_header_len + klen + vlen > file_size
        then off
        else begin
          let payload = Bytes.create (klen + vlen) in
          if read_upto t.fd payload 0 (klen + vlen) <> klen + vlen then off
          else begin
            let key = Bytes.sub_string payload 0 klen in
            let value = Bytes.sub_string payload klen vlen in
            if record_crc ~key ~value <> crc then off
            else begin
              Ckey.Tbl.replace t.index (Ckey.of_string key)
                (off + record_header_len + klen, vlen);
              t.recovered <- t.recovered + 1;
              scan (off + record_header_len + klen + vlen)
            end
          end
        end
    end
  in
  scan header_len

let open_ ?(fsync = Always) path =
  match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 with
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (Printf.sprintf "cannot open witness store %s: %s" path
         (Unix.error_message err))
  | fd ->
    let fail msg =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error msg
    in
    let file_size = (Unix.fstat fd).Unix.st_size in
    let t =
      {
        fd;
        path;
        lock = Mutex.create ();
        loc = Trace.fresh_loc "store.log";
        index = Ckey.Tbl.create 1024;
        fsync;
        scratch = Buffer.create 4096;
        size = 0;
        dirty = false;
        last_sync = Unix.gettimeofday ();
        closed = false;
        failpoint = None;
        appends = 0;
        recovered = 0;
        torn_truncations = 0;
        torn_bytes = 0;
        lookups = 0;
        hits = 0;
        syncs = 0;
      }
    in
    if file_size = 0 then begin
      (* fresh log: stamp the header *)
      let hdr = Bytes.of_string header_bytes in
      write_all fd hdr 0 header_len;
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      t.size <- header_len;
      Ok t
    end
    else if file_size < header_len then
      fail (Printf.sprintf "witness store %s: truncated file header" path)
    else begin
      let hdr = Bytes.create header_len in
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      if read_upto fd hdr 0 header_len <> header_len then
        fail (Printf.sprintf "witness store %s: unreadable header" path)
      else if Bytes.sub_string hdr 0 8 <> magic then
        fail (Printf.sprintf "witness store %s: bad magic (not a witness log)" path)
      else begin
        let version = u32_of hdr 8 in
        if version <> store_version then
          fail
            (Printf.sprintf
               "witness store %s: format version %d, this build speaks %d \
                (recompute the corpus or migrate the log)"
               path version store_version)
        else begin
          let good_end = recover t file_size in
          if good_end < file_size then begin
            (* torn tail: drop it so the next append starts on a clean
               record boundary *)
            t.torn_truncations <- 1;
            t.torn_bytes <- file_size - good_end;
            Unix.ftruncate fd good_end;
            Obs.Metrics.incr "store.torn_truncations"
          end;
          t.size <- good_end;
          ignore (Unix.lseek fd good_end Unix.SEEK_SET);
          gauge_records t;
          Ok t
        end
      end
    end

(* ---- operations ------------------------------------------------------- *)

let locked t f =
  if t.closed then invalid_arg "Store: handle is closed";
  Mutex.lock t.lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.lock)

(* A fired crash point behaves like the process dying at that instant:
   the handle becomes unusable and the fd is closed *without* a sync, so
   whatever reached the page cache is what a reopen will see.  The caller
   holds the lock (released by [locked]'s protect). *)
let fire_crash t =
  t.failpoint <- None;
  t.closed <- true;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  raise Injected_crash

(* All record bytes go through this hook.  Disarmed (the production case)
   it costs one immediate pattern match on [None] per append. *)
let crash_write t b off len =
  match t.failpoint with
  | None -> write_all t.fd b off len
  | Some (Crash_after_bytes budget) ->
    if budget < len then begin
      if budget > 0 then write_all t.fd b off budget;
      fire_crash t
    end
    else begin
      write_all t.fd b off len;
      t.failpoint <- Some (Crash_after_bytes (budget - len))
    end
  | Some Crash_before_sync -> write_all t.fd b off len

let do_sync t =
  if t.dirty then begin
    (match t.failpoint with
    | Some Crash_before_sync -> fire_crash t
    | _ -> ());
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    t.dirty <- false;
    t.syncs <- t.syncs + 1;
    t.last_sync <- Unix.gettimeofday ()
  end

let sync_per_policy t =
  match t.fsync with
  | Always -> do_sync t
  | Never -> ()
  | Interval s ->
    if Unix.gettimeofday () -. t.last_sync >= s then do_sync t

let append t ~key ~value =
  let kraw = Ckey.to_raw key in
  if String.length kraw > max_key_bytes then
    invalid_arg "Store.append: key exceeds max_key_bytes";
  if String.length kraw = 0 then invalid_arg "Store.append: empty key";
  if String.length value > max_value_bytes then
    invalid_arg "Store.append: value exceeds max_value_bytes";
  (* the cache write-through hook lands here from whichever domain
     computed the answer — logged for the race detector *)
  Trace.access ~loc:t.loc Trace.Write ~atomic:true;
  locked t @@ fun () ->
  if Ckey.Tbl.mem t.index key then false
  else begin
    Buffer.clear t.scratch;
    add_record t.scratch ~key:kraw ~value;
    let len = Buffer.length t.scratch in
    let b = Buffer.to_bytes t.scratch in
    ignore (Unix.lseek t.fd t.size Unix.SEEK_SET);
    crash_write t b 0 len;
    Ckey.Tbl.replace t.index key
      (t.size + record_header_len + String.length kraw, String.length value);
    t.size <- t.size + len;
    t.dirty <- true;
    t.appends <- t.appends + 1;
    Obs.Metrics.incr "store.appends";
    gauge_records t;
    sync_per_policy t;
    true
  end

let find t key =
  Trace.access ~loc:t.loc Trace.Read ~atomic:true;
  locked t @@ fun () ->
  t.lookups <- t.lookups + 1;
  match Ckey.Tbl.find_opt t.index key with
  | None ->
    Obs.Metrics.incr "store.misses";
    None
  | Some (off, len) -> (
    match pread t ~off ~len with
    | Some _ as v ->
      t.hits <- t.hits + 1;
      Obs.Metrics.incr "store.hits";
      v
    | None ->
      (* an indexed record that cannot be read back means the file shrank
         under us; treat as a miss rather than corrupting the answer *)
      Obs.Metrics.incr "store.misses";
      None)

let mem t key =
  Trace.access ~loc:t.loc Trace.Read ~atomic:true;
  locked t @@ fun () ->
  t.lookups <- t.lookups + 1;
  let m = Ckey.Tbl.mem t.index key in
  if m then begin
    t.hits <- t.hits + 1;
    Obs.Metrics.incr "store.hits"
  end
  else Obs.Metrics.incr "store.misses";
  m

let iter t f =
  locked t @@ fun () ->
  Ckey.Tbl.iter (fun k (_, vlen) -> f k vlen) t.index

let sync t = locked t @@ fun () -> do_sync t

let close t =
  locked t @@ fun () ->
  do_sync t;
  t.closed <- true;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* [abandon] is [close] minus the sync and the closed-handle check: the
   torture harness's "the process died between appends" move. *)
let abandon t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let inject_crash t p =
  Mutex.lock t.lock;
  t.failpoint <- Some p;
  Mutex.unlock t.lock

let crash_disarm t =
  Mutex.lock t.lock;
  t.failpoint <- None;
  Mutex.unlock t.lock

let crash_armed t = t.failpoint

let path t = t.path

type stats = {
  records : int;
  bytes : int;
  appends : int;
  recovered : int;
  torn_truncations : int;
  torn_bytes : int;
  lookups : int;
  hits : int;
  syncs : int;
}

(* readable after [close] — the counters outlive the fd, and the daemon's
   exit summary runs after the drain has closed the store *)
let stats t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  {
    records = Ckey.Tbl.length t.index;
    bytes = t.size;
    appends = t.appends;
    recovered = t.recovered;
    torn_truncations = t.torn_truncations;
    torn_bytes = t.torn_bytes;
    lookups = t.lookups;
    hits = t.hits;
    syncs = t.syncs;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d record%s, %d bytes (%d appended, %d recovered%s), %d/%d lookup hit%s, \
     %d fsync%s"
    s.records
    (if s.records = 1 then "" else "s")
    s.bytes s.appends s.recovered
    (if s.torn_truncations > 0 then
       Printf.sprintf ", torn tail of %d bytes truncated" s.torn_bytes
     else "")
    s.hits s.lookups
    (if s.hits = 1 then "" else "s")
    s.syncs
    (if s.syncs = 1 then "" else "s")
