(* CRC-32 (IEEE), table-driven, reflected form.  The table is computed
   once at module initialization: 256 entries of the standard reflected
   polynomial 0xedb88320. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xedb88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let init = 0xffffffffl
let finish crc = Int32.logxor crc 0xffffffffl

let feed crc byte =
  let t = Lazy.force table in
  Int32.logxor
    t.(Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xffl))
    (Int32.shift_right_logical crc 8)

let update crc b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32.update";
  let crc = ref crc in
  for i = off to off + len - 1 do
    crc := feed !crc (Char.code (Bytes.unsafe_get b i))
  done;
  !crc

let update_string crc s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc32.update_string";
  let crc = ref crc in
  for i = off to off + len - 1 do
    crc := feed !crc (Char.code (String.unsafe_get s i))
  done;
  !crc

let string s = finish (update_string init s 0 (String.length s))
