(** CRC-32 (IEEE 802.3, the zlib/gzip polynomial), self-contained so the
    witness store adds no compression-library dependency.

    Every record in the append-only witness log carries a CRC over its
    header lengths and payload bytes; recovery after a crash walks the log
    and stops at the first record whose checksum disagrees — that is the
    torn tail.  The polynomial choice is deliberate: the values match
    [python3 -c 'import zlib; print(zlib.crc32(b"..."))'], so a log file
    is auditable with stock tooling. *)

(** [string s] is the CRC-32 of all of [s]. *)
val string : string -> int32

(** Incremental interface: [update crc b off len] folds [len] bytes of [b]
    starting at [off] into a running checksum seeded by {!init}. *)
val init : int32

val update : int32 -> Bytes.t -> int -> int -> int32
val update_string : int32 -> string -> int -> int -> int32

(** Finalize a running checksum started from {!init}. *)
val finish : int32 -> int32
