(* Crash-torture loop for the witness log.  See the .mli for the contract. *)

open Ts_model

type report = {
  iterations : int;
  seed : int;
  acked : int;
  crashes_mid_write : int;
  crashes_mid_header : int;
  crashes_before_sync : int;
  crashes_at_close : int;
  abandons : int;
  clean_closes : int;
  torn_tails : int;
  torn_bytes : int;
  records_final : int;
  syncs : int;
}

exception Violation of string

let fail fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

(* Deterministic record material: keys are digests of a run-unique
   counter (never colliding, so the dedup path stays out of the model);
   values are printable noise of seeded length. *)
let gen_record rng ~seed counter =
  let key = Ckey.of_string (Printf.sprintf "torture-%d-%d" seed counter) in
  let len =
    if Rng.int rng 10 = 0 then 1 + Rng.int rng 2000 else 1 + Rng.int rng 120
  in
  let value = String.init len (fun _ -> Char.chr (32 + Rng.int rng 95)) in
  (key, value)

let pick_policy rng =
  match Rng.int rng 4 with
  | 0 -> Store.Always
  | 1 -> Store.Interval 0.
  | 2 -> Store.Interval 3600.
  | _ -> Store.Never

(* The model check: everything ever acknowledged (or predicted durable)
   is present byte-identical, nothing else is, and the torn tail is
   exactly the one the armed crash point predicts. *)
let verify st ~it ~seed ~expected ~torn_count ~torn_len =
  let s = Store.stats st in
  if s.torn_truncations <> torn_count || s.torn_bytes <> torn_len then
    fail
      "iteration %d (seed %d): recovery truncated %d tail(s) / %d byte(s), \
       crash model predicts %d / %d"
      it seed s.torn_truncations s.torn_bytes torn_count torn_len;
  if s.records <> Ckey.Tbl.length expected then
    fail
      "iteration %d (seed %d): recovered %d record(s), model holds %d — %s"
      it seed s.records
      (Ckey.Tbl.length expected)
      (if s.records < Ckey.Tbl.length expected then
         "an acknowledged append was lost"
       else "recovery invented a record");
  Ckey.Tbl.iter
    (fun key value ->
      match Store.find st key with
      | None ->
        fail "iteration %d (seed %d): acknowledged record %s missing" it seed
          (Ckey.to_hex key)
      | Some v when not (String.equal v value) ->
        fail
          "iteration %d (seed %d): record %s recovered with different bytes \
           (%d vs %d)"
          it seed (Ckey.to_hex key) (String.length v) (String.length value)
      | Some _ -> ())
    expected

let run ?fsync ~seed ~iterations ~path () =
  if iterations < 1 then invalid_arg "Torture.run: iterations < 1";
  if Sys.file_exists path then Sys.remove path;
  let rng = Rng.create seed in
  let expected : string Ckey.Tbl.t = Ckey.Tbl.create 1024 in
  let counter = ref 0 in
  (* what the last death predicts the next recovery will truncate *)
  let torn_count = ref 0 and torn_len = ref 0 in
  let acked = ref 0
  and mid_write = ref 0
  and mid_header = ref 0
  and before_sync = ref 0
  and at_close = ref 0
  and abandons = ref 0
  and clean = ref 0
  and torn_tails = ref 0
  and torn_bytes = ref 0
  and syncs = ref 0 in
  let account_death st =
    let s = Store.stats st in
    syncs := !syncs + s.syncs
  in
  try
    for it = 1 to iterations do
      let policy = match fsync with Some p -> p | None -> pick_policy rng in
      match Store.open_ ~fsync:policy path with
      | Error e -> fail "iteration %d (seed %d): recovery failed: %s" it seed e
      | exception exn ->
        fail "iteration %d (seed %d): recovery raised %s" it seed
          (Printexc.to_string exn)
      | Ok st ->
        verify st ~it ~seed ~expected ~torn_count:!torn_count
          ~torn_len:!torn_len;
        let s = Store.stats st in
        torn_tails := !torn_tails + s.torn_truncations;
        torn_bytes := !torn_bytes + s.torn_bytes;
        let n_app = 1 + Rng.int rng 5 in
        let crash_at =
          if Rng.int rng 4 < 3 then Some (Rng.int rng n_app) else None
        in
        let crashed = ref false in
        for j = 0 to n_app - 1 do
          if not !crashed then begin
            let key, value = gen_record rng ~seed !counter in
            incr counter;
            if crash_at = Some j then begin
              let rec_len =
                String.length (Store.record_bytes ~key:(Ckey.to_raw key) ~value)
              in
              let kind =
                if Rng.bool rng then begin
                  (* bias one tear in four into the 12-byte record header *)
                  let budget =
                    if Rng.int rng 4 = 0 then
                      Rng.int rng Store.record_header_len
                    else Rng.int rng rec_len
                  in
                  `After budget
                end
                else `Before
              in
              (match kind with
              | `After b -> Store.inject_crash st (Store.Crash_after_bytes b)
              | `Before -> Store.inject_crash st Store.Crash_before_sync);
              match Store.append st ~key ~value with
              | exception Store.Injected_crash ->
                crashed := true;
                (match kind with
                | `After b ->
                  (* the in-flight record tore: exactly [b] stray bytes
                     for the next recovery to cut, and the record itself
                     must NOT come back *)
                  incr mid_write;
                  if b < Store.record_header_len then incr mid_header;
                  torn_count := if b > 0 then 1 else 0;
                  torn_len := b
                | `Before ->
                  (* record bytes were fully written before the sync died:
                     durable but unacknowledged — recovery must surface it *)
                  incr before_sync;
                  torn_count := 0;
                  torn_len := 0;
                  Ckey.Tbl.replace expected key value);
                account_death st
              | _acked ->
                (* a lazy fsync policy deferred the sync, so Before_sync
                   hasn't fired yet: the append is acknowledged and the
                   crash waits at the close below *)
                incr acked;
                Ckey.Tbl.replace expected key value
            end
            else begin
              ignore (Store.append st ~key ~value : bool);
              incr acked;
              Ckey.Tbl.replace expected key value
            end
          end
        done;
        if not !crashed then begin
          torn_count := 0;
          torn_len := 0;
          if Rng.bool rng then (
            match Store.close st with
            | () -> incr clean
            | exception Store.Injected_crash -> incr at_close)
          else begin
            (* drop the handle cold: no sync, no crash point — every
               acknowledged record must still recover *)
            incr abandons;
            Store.abandon st
          end;
          account_death st
        end
    done;
    (* final reopen: one last full verification, then a clean close *)
    match Store.open_ ?fsync:None path with
    | Error e -> fail "final reopen (seed %d): recovery failed: %s" seed e
    | Ok st ->
      verify st ~it:(iterations + 1) ~seed ~expected ~torn_count:!torn_count
        ~torn_len:!torn_len;
      let records_final = (Store.stats st).records in
      let torn_final = (Store.stats st).torn_truncations in
      torn_tails := !torn_tails + torn_final;
      torn_bytes := !torn_bytes + (Store.stats st).torn_bytes;
      Store.close st;
      account_death st;
      Ok
        {
          iterations;
          seed;
          acked = !acked;
          crashes_mid_write = !mid_write;
          crashes_mid_header = !mid_header;
          crashes_before_sync = !before_sync;
          crashes_at_close = !at_close;
          abandons = !abandons;
          clean_closes = !clean;
          torn_tails = !torn_tails;
          torn_bytes = !torn_bytes;
          records_final;
          syncs = !syncs;
        }
  with Violation msg -> Error msg

let pp_report ppf r =
  Format.fprintf ppf
    "%d iterations (seed %d): %d acked appends, %d records recovered at the \
     end; crashes: %d mid-write (%d mid-header), %d before-sync, %d at-close, \
     %d abandons, %d clean closes; %d torn tail(s) truncated (%d bytes), %d \
     fsyncs"
    r.iterations r.seed r.acked r.records_final r.crashes_mid_write
    r.crashes_mid_header r.crashes_before_sync r.crashes_at_close r.abandons
    r.clean_closes r.torn_tails r.torn_bytes r.syncs

let report_to_json r =
  Printf.sprintf
    "{\"iterations\":%d,\"seed\":%d,\"acked\":%d,\"crashes_mid_write\":%d,\"crashes_mid_header\":%d,\"crashes_before_sync\":%d,\"crashes_at_close\":%d,\"abandons\":%d,\"clean_closes\":%d,\"torn_tails\":%d,\"torn_bytes\":%d,\"records_final\":%d,\"syncs\":%d}"
    r.iterations r.seed r.acked r.crashes_mid_write r.crashes_mid_header
    r.crashes_before_sync r.crashes_at_close r.abandons r.clean_closes
    r.torn_tails r.torn_bytes r.records_final r.syncs
