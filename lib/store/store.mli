(** The persistent witness store: an append-only, CRC-framed,
    content-addressed log of engine answers.

    The ROADMAP's serving story treats witnesses like a CDN treats
    objects: an answer is a pure function of its request digest
    ({!Ts_model.Ckey}), immutable once computed, and therefore safe to
    persist forever and serve from anywhere.  This module is the disk
    half of that story.  The service dispatcher writes every complete,
    cacheable answer through to the log; a restarted daemon replays the
    log's index at open and answers previously-seen queries from disk
    without recomputation.

    {b File anatomy} (all integers little-endian; see docs/SERVICE.md for
    the diagram):

    {v
    offset 0   8 bytes   magic "TSWITLOG"
    offset 8   4 bytes   store format version (u32)
    offset 12  4 bytes   reserved, zero
    then, repeated until EOF:
      4 bytes  klen (u32)   length of the key bytes
      4 bytes  vlen (u32)   length of the value bytes
      4 bytes  CRC-32 over the 8 length bytes, the key and the value
      klen bytes  raw Ckey digest bytes
      vlen bytes  the serialized answer (compact JSON)
    v}

    {b Recovery.}  Open scans the log record by record.  The first record
    that is truncated, oversized or checksum-damaged marks the torn tail:
    the file is truncated back to the last valid record boundary and the
    scan's survivors form the in-memory index.  A crash mid-append
    therefore loses at most the record being appended, never an earlier
    one — replay-from-log recovery in the Aspnes logging discipline.

    {b Durability.}  [Always] fsyncs after every append (the default:
    appends only happen on fresh engine computations, which dwarf an
    fsync), [Interval s] at most every [s] seconds, [Never] leaves
    flushing to the OS.  [close] always syncs.

    {b Concurrency.}  All operations are serialized by an internal mutex:
    the event loop appends while pool workers look up.  The store keeps
    only offsets in memory — values are read from disk on demand, so a
    million-witness corpus costs the daemon index entries, not heap.

    {b Versioning.}  [store_version] participates in the same golden-guard
    discipline as the dispatcher's cache version: any change to the header
    or record byte layout must bump it (test/suite_digest.ml pins the
    encoded bytes), and opening a log of a different version is refused
    rather than misread. *)

type t

(** When appended records are forced to disk. *)
type fsync =
  | Always  (** fsync after every append *)
  | Interval of float  (** fsync at most every [s] seconds, and on close *)
  | Never  (** leave flushing to the OS; crash may lose recent appends *)

(** The on-disk format version.  Bump on any header/record layout change
    and refresh the goldens in test/suite_digest.ml. *)
val store_version : int

(** The 8 magic bytes opening every log file. *)
val magic : string

(** The exact bytes of a fresh log's 16-byte file header (golden-guard
    material). *)
val header_bytes : string

(** [record_bytes ~key ~value] is the exact on-disk encoding of one
    record — the pure function the golden-format test pins. *)
val record_bytes : key:string -> value:string -> string

(** Bytes of the klen/vlen/crc prefix of every record (12): the
    crash-torture harness uses it to aim tears inside a header. *)
val record_header_len : int

(** Caps on a single record's components; [append] refuses beyond them
    (and recovery treats larger claims as tail damage). *)
val max_key_bytes : int

val max_value_bytes : int

(** [open_ path] opens or creates the log at [path], recovering the index
    from disk.  [Error] on a foreign or version-mismatched file, or an
    unopenable path. *)
val open_ : ?fsync:fsync -> string -> (t, string) result

val path : t -> string

(** [append t ~key ~value] persists one record and indexes it.  Returns
    [false] without touching disk when [key] is already stored — records
    are content-addressed and immutable, so a second append of the same
    key is a no-op by design.
    @raise Invalid_argument when the key or value exceeds its cap. *)
val append : t -> key:Ts_model.Ckey.t -> value:string -> bool

(** [find t key] reads the stored answer back from disk. *)
val find : t -> Ts_model.Ckey.t -> string option

val mem : t -> Ts_model.Ckey.t -> bool

(** [iter t f] calls [f key value_length] for every indexed record, in
    unspecified order (the inspector's walk; values stay on disk). *)
val iter : t -> (Ts_model.Ckey.t -> int -> unit) -> unit

(** Force buffered appends to disk now (whatever the policy). *)
val sync : t -> unit

(** Sync and release the file descriptor.  Further use raises. *)
val close : t -> unit

(** Release the file descriptor {e without} syncing and without touching
    anything else — the "process died here" move for crash testing.
    Idempotent; a no-op on a closed handle.  Further use raises. *)
val abandon : t -> unit

(** {1 Crash-point injection}

    Deterministic simulated crashes for the torture harness
    ({!Torture}) and the store test suite.  A crash point is {e armed}
    on a live handle; when the guarded operation reaches it, the store
    behaves as if the process died at that instant: the armed point is
    cleared, the handle is marked closed, the fd is closed {e without}
    fsync, and {!Injected_crash} is raised to the caller.  Whatever
    bytes the kernel had already accepted are what a subsequent
    {!open_} recovers — exactly the failure surface real crashes
    expose.

    Disarmed (the production state) the hook costs a single pattern
    match on [None] per append and per sync — there is no code path,
    allocation or syscall difference. *)

type crash_point =
  | Crash_after_bytes of int
      (** Let [n] more record bytes reach the kernel, then die inside
          the write that would exceed the allowance.  [n] below the
          12-byte record header tears mid-header; any [n] short of the
          full record produces a torn tail for recovery to truncate. *)
  | Crash_before_sync
      (** Die at the next fsync attempt, after the record bytes were
          written but before durability was promised.  With
          [Interval]/[Never] policies this models losing the page
          cache's word. *)

exception Injected_crash

(** Arm [p] on a live handle (replacing any previously armed point). *)
val inject_crash : t -> crash_point -> unit

(** Disarm without firing. *)
val crash_disarm : t -> unit

(** Currently armed point, if any. *)
val crash_armed : t -> crash_point option

(** Point-in-time counters. *)
type stats = {
  records : int;  (** indexed records right now *)
  bytes : int;  (** log file size in bytes *)
  appends : int;  (** records appended by this handle *)
  recovered : int;  (** records replayed from disk at open *)
  torn_truncations : int;  (** torn tails cut at open (0 or 1) *)
  torn_bytes : int;  (** bytes discarded by the truncation *)
  lookups : int;  (** [find]/[mem] calls *)
  hits : int;  (** lookups that found their key *)
  syncs : int;  (** fsyncs issued *)
}

(** Unlike every other operation, {!stats} stays readable after
    {!close} — the counters outlive the fd, and a daemon's exit summary
    renders after the drain has closed its store. *)
val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
