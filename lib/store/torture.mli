(** Seeded crash-torture for the witness log.

    The store's recovery contract (.mli of {!Store}) promises exactly
    three things after a crash: the recovered log is a prefix of the
    acknowledged appends plus at most the record that was in flight,
    every acknowledged record survives with byte-identical value, and
    recovery itself never raises.  This harness drives that contract
    hundreds of times in a row from one printed seed: open → verify the
    survivors against a model of every acknowledgement ever made →
    append a few records → die at a seeded crash point
    ({!Store.Crash_after_bytes} mid-record or mid-header,
    {!Store.Crash_before_sync}, a bare {!Store.abandon}, or a clean
    close) → repeat on the same file.

    Because the crash points are armed with exact byte budgets, the
    checks are sharp, not just "something recovered": a mid-write crash
    of [b] bytes must produce a torn tail of exactly [b] bytes at the
    next open (and nothing else), a before-sync crash must recover the
    fully-written-but-unacknowledged record, and the record counts must
    match the model exactly — no lost acknowledgement, no invented
    record.

    Any violation aborts with the iteration number and the run seed, so
    a CI failure replays locally with the same [--seed]. *)

type report = {
  iterations : int;
  seed : int;
  acked : int;  (** appends acknowledged ([append] returned) across the run *)
  crashes_mid_write : int;  (** [Crash_after_bytes] fired mid-record *)
  crashes_mid_header : int;  (** of those, torn inside the 12-byte header *)
  crashes_before_sync : int;  (** [Crash_before_sync] fired during an append *)
  crashes_at_close : int;  (** [Crash_before_sync] deferred to the close's sync *)
  abandons : int;  (** handle dropped with no sync and no crash point *)
  clean_closes : int;
  torn_tails : int;  (** torn tails truncated by recovery, total *)
  torn_bytes : int;  (** bytes those truncations discarded, total *)
  records_final : int;  (** records in the final verified reopen *)
  syncs : int;  (** fsyncs issued across every handle of the run *)
}

val pp_report : Format.formatter -> report -> unit

(** Flat JSON rendering of a report (no dependency on the JSON library —
    the store stays at the bottom of the dependency graph). *)
val report_to_json : report -> string

(** [run ~seed ~iterations ~path ()] tortures a fresh log at [path]
    (any existing file there is removed first) and returns the report,
    or [Error msg] naming the first violated invariant, its iteration
    and the seed.  [?fsync] pins the durability policy; by default each
    iteration draws one of [Always], [Interval 0.], [Interval 3600.],
    [Never] from the seed so every policy faces every crash class. *)
val run :
  ?fsync:Store.fsync ->
  seed:int ->
  iterations:int ->
  path:string ->
  unit ->
  (report, string) result
