open Ts_model
module Obs = Ts_obs.Obs

type lemma1_result = {
  phi : Execution.event list;
  z : int;
}

let fail fmt = Format.kasprintf (fun s -> raise (Valency.Horizon_exceeded s)) fmt

let apply_schedule t cfg sched =
  Execution.apply (Valency.protocol t) cfg sched

(* The value [1 - v] for binary decisions. *)
let negate v = Value.int (1 - Value.to_int v)

let lemma1 t c p =
  if Pset.cardinal p < 3 then invalid_arg "Lemmas.lemma1: |P| must be >= 3";
  Engine_log.Log.debug (fun m -> m "lemma1: P=%a" Pset.pp p);
  Obs.with_span ~cat:"lemma" "lemma1" @@ fun sp ->
  Obs.set_int sp "participants" (Pset.cardinal p);
  (* A candidate z works at configuration [cfg] if P - {z} is bivalent. *)
  let find_z cfg =
    List.find_opt (fun z -> Valency.is_bivalent t cfg (Pset.remove z p)) (Pset.to_list p)
  in
  match find_z c with
  | Some z -> { phi = []; z }
  | None ->
    (* All P - {z} are univalent from C.  As in the proof, walk a witness
       execution deciding the value opposite to the common univalency and
       stop at the first prefix after which some P - {z} turns bivalent. *)
    let v =
      let z0 = Pset.choose p in
      match Valency.univalent_value t c (Pset.remove z0 p) with
      | Some v -> v
      | None -> fail "lemma1: P-{z} neither bivalent nor univalent (horizon?)"
    in
    let psi =
      match Valency.can_decide t c p (negate v) with
      | Some w -> w
      | None -> fail "lemma1: P not bivalent from C (premise violated or horizon)"
    in
    let rec walk cfg prefix_rev = function
      | [] -> fail "lemma1: walked the whole witness without finding z"
      | e :: rest ->
        Budget.check (Valency.budget t);
        let cfg', _ = apply_schedule t cfg [ e ] in
        let prefix_rev = e :: prefix_rev in
        (match find_z cfg' with
         | Some z -> { phi = List.rev prefix_rev; z }
         | None -> walk cfg' prefix_rev rest)
    in
    walk c [] psi

let solo_deciding t c z =
  Obs.with_span ~cat:"lemma" "solo_deciding" @@ fun sp ->
  Obs.set_int sp "pid" z;
  let zs = Pset.singleton z in
  match Valency.can_decide t c zs Valency.zero with
  | Some w -> w
  | None ->
    (match Valency.can_decide t c zs Valency.one with
     | Some w -> w
     | None -> fail "solo_deciding: p%d has no deciding solo execution in horizon" z)

let split_at_uncovered_write t c _z ~covered ~zeta =
  (* the executable Lemma 2: walk the solo execution to its first write
     outside the covered set *)
  Obs.with_span ~cat:"lemma" "lemma2" @@ fun sp ->
  Obs.set_int sp "covered" (List.length covered);
  Obs.set_int sp "zeta_len" (List.length zeta);
  let proto = Valency.protocol t in
  let in_covered r = List.mem r covered in
  let rec go cfg applied_rev = function
    | [] ->
      fail "split_at_uncovered_write: solo execution decides without leaving %a"
        Fmt.(Dump.list int) covered
    | e :: rest ->
      let uncovered_write =
        match Config.poised proto cfg e.Execution.pid with
        | Some a ->
          (match Action.written_register a with
           | Some r when not (in_covered r) -> Some r
           | Some _ | None -> None)
        | None -> None
      in
      (match uncovered_write with
       | Some r -> List.rev applied_rev, cfg, r
       | None ->
         let cfg', _ = apply_schedule t cfg [ e ] in
         go cfg' (e :: applied_rev) rest)
  in
  go c [] zeta

let lemma2_holds t c ~r ~z =
  let proto = Valency.protocol t in
  let covered = Covering.covered_set proto c r in
  let zeta = solo_deciding t c z in
  match split_at_uncovered_write t c z ~covered ~zeta with
  | _ -> true
  | exception Valency.Horizon_exceeded _ -> false

type lemma3_result = {
  phi3 : Execution.event list;
  q : int;
  v_r : Value.t;
}

let lemma3 t c ~p ~r =
  Engine_log.Log.debug (fun m -> m "lemma3: P=%a R=%a" Pset.pp p Pset.pp r);
  let proto = Valency.protocol t in
  if Pset.is_empty r then invalid_arg "Lemmas.lemma3: R must be non-empty";
  Obs.with_span ~cat:"lemma" "lemma3" @@ fun sp ->
  Obs.set_int sp "covering" (Pset.cardinal r);
  if not (Pset.subset r p) then invalid_arg "Lemmas.lemma3: R must be a subset of P";
  if not (Covering.is_covering proto c r) then
    invalid_arg "Lemmas.lemma3: R is not a covering set";
  let q_set = Pset.diff p r in
  let beta = Covering.block_write r in
  let with_beta cfg = fst (apply_schedule t cfg beta) in
  (* v = a value R can decide from C·β (Proposition 1(i)). *)
  let v =
    match Valency.classify t (with_beta c) r with
    | Valency.Univalent (v, _) -> v
    | Valency.Bivalent _ -> Valency.zero
    | Valency.Blocked -> fail "lemma3: R can decide nothing from C·β within horizon"
  in
  (* ψ = Q-only execution from C deciding v̄ (Q is bivalent from C). *)
  let psi =
    match Valency.can_decide t c q_set (negate v) with
    | Some w -> w
    | None -> fail "lemma3: Q = P-R not bivalent from C (premise or horizon)"
  in
  (* φ = longest prefix of ψ such that R can decide v from C·φ·β; the next
     step is by the q we return. *)
  let r_can_decide_v cfg = Valency.can_decide t (with_beta cfg) r v <> None in
  if not (r_can_decide_v c) then
    fail "lemma3: R cannot decide %a from C·β (oracle inconsistency)" Value.pp v;
  let rec walk cfg phi_rev = function
    | [] -> fail "lemma3: walked the whole witness, R still decides v after β"
    | e :: rest ->
      Budget.check (Valency.budget t);
      let cfg', _ = apply_schedule t cfg [ e ] in
      if r_can_decide_v cfg' then walk cfg' (e :: phi_rev) rest
      else begin
        (* Verify the lemma's conclusion before returning. *)
        let phi3 = List.rev phi_rev in
        let q = e.Execution.pid in
        let cfg_phi_beta = with_beta cfg in
        if not (Valency.is_bivalent t cfg_phi_beta (Pset.add q r)) then
          fail "lemma3: R ∪ {q} not verifiably bivalent from C·φ·β (horizon)";
        { phi3; q; v_r = v }
      end
  in
  walk c [] psi
