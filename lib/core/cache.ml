(* Sharded LRU cache.  See the .mli for the design contract.

   Each shard is a packed-key hash table of entries carrying a monotone
   use stamp; eviction scans the (small, capacity/shards-sized) shard for
   the minimum stamp.  An O(size) eviction scan on tables of a few dozen
   to a few hundred entries is cheaper in practice than maintaining an
   intrusive list, and it keeps the hot find path allocation-free. *)

open Ts_model
module Obs = Ts_obs.Obs

type 'v provenance =
  | Fresh of 'v
  | Cached of 'v

let value = function Fresh v | Cached v -> v
let is_cached = function Cached _ -> true | Fresh _ -> false

type 'v entry = {
  mutable v : 'v;
  mutable stamp : int;  (* last-use tick of the owning shard *)
}

type 'v shard = {
  lock : Mutex.t;
  tbl : 'v entry Ckey.Tbl.t;
  mutable tick : int;
  cap : int;  (* max entries in this shard *)
  loc : string;  (* race-detector location of this shard's state *)
  (* per-shard counters, summed by [stats]; plain ints are fine under the
     shard lock *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type 'v t = {
  shards : 'v shard array;
  name : string;
  capacity : int;
  (* durability tap: called after each write-through insert, outside any
     shard lock (the store serializes internally) *)
  mutable write_through : (Ts_model.Ckey.t -> 'v -> unit) option;
}

let create ?(shards = 8) ?(name = "cache") ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  if shards < 1 then invalid_arg "Cache.create: shards must be positive";
  let shards = min shards capacity in
  let cap_of i =
    (* divide capacity evenly; the first (capacity mod shards) shards take
       the remainder, so total capacity is exact *)
    (capacity / shards) + (if i < capacity mod shards then 1 else 0)
  in
  {
    shards =
      Array.init shards (fun i ->
          {
            lock = Mutex.create ();
            tbl = Ckey.Tbl.create 64;
            tick = 0;
            cap = cap_of i;
            loc = Trace.fresh_loc "cache.shard";
            hits = 0;
            misses = 0;
            evictions = 0;
          });
    name;
    capacity;
    write_through = None;
  }

let set_write_through t hook = t.write_through <- Some hook

let shard_of t key = t.shards.(Ckey.hash key mod Array.length t.shards)

(* Every entry to a shard's critical section logs one access to the race
   detector's feed.  The accesses are mutex-synchronized; the detector
   models no lock happens-before edges, so they are logged as [atomic]
   (the detector's "never races with its own kind" class) — exactly the
   claim the mutex makes.  A buggy caller touching shard internals outside
   the lock would log a non-atomic access and be flagged. *)
let log_access shard kind = Trace.access ~loc:shard.loc kind ~atomic:true

let locked shard kind f =
  log_access shard kind;
  Mutex.lock shard.lock;
  Fun.protect f ~finally:(fun () -> Mutex.unlock shard.lock)

let touch shard e =
  shard.tick <- shard.tick + 1;
  e.stamp <- shard.tick

let evict_lru shard =
  (* called under the shard lock with the shard full: drop the entry with
     the smallest use stamp *)
  let victim = ref None in
  Ckey.Tbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    shard.tbl;
  match !victim with
  | Some (k, _) ->
    Ckey.Tbl.remove shard.tbl k;
    shard.evictions <- shard.evictions + 1
  | None -> ()

let insert_locked shard key v =
  match Ckey.Tbl.find_opt shard.tbl key with
  | Some e ->
    e.v <- v;
    touch shard e
  | None ->
    if Ckey.Tbl.length shard.tbl >= shard.cap then evict_lru shard;
    let e = { v; stamp = 0 } in
    touch shard e;
    Ckey.Tbl.add shard.tbl key e

let metrics_hit t = Obs.Metrics.incr (t.name ^ ".hits")
let metrics_miss t = Obs.Metrics.incr (t.name ^ ".misses")

let metrics_entries t =
  if Obs.Metrics.armed () then begin
    let total =
      Array.fold_left (fun acc s -> acc + Ckey.Tbl.length s.tbl) 0 t.shards
    in
    Obs.Metrics.gauge (t.name ^ ".entries") total
  end

let find t key =
  let shard = shard_of t key in
  locked shard Trace.Read @@ fun () ->
  match Ckey.Tbl.find_opt shard.tbl key with
  | Some e ->
    shard.hits <- shard.hits + 1;
    metrics_hit t;
    touch shard e;
    Some e.v
  | None ->
    shard.misses <- shard.misses + 1;
    metrics_miss t;
    None

let put ?(write_through = true) t key v =
  let shard = shard_of t key in
  (locked shard Trace.Write @@ fun () -> insert_locked shard key v);
  metrics_entries t;
  (* outside the shard lock: a slow durable append must never block other
     requests hashing to this shard *)
  if write_through then
    match t.write_through with None -> () | Some hook -> hook key v

let find_or_compute t key f =
  match find t key with
  | Some v -> Cached v
  | None ->
    (* compute with no lock held; a concurrent miss on the same key also
       computes, and [insert_locked] makes the overwrite benign *)
    let v = f () in
    put t key v;
    Fresh v

let clear t =
  Array.iter
    (fun shard ->
      locked shard Trace.Write @@ fun () -> Ckey.Tbl.reset shard.tbl)
    t.shards;
  metrics_entries t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  shards : int;
}

let stats (t : _ t) =
  let acc =
    Array.fold_left
      (fun acc shard ->
        locked shard Trace.Read @@ fun () ->
        {
          acc with
          hits = acc.hits + shard.hits;
          misses = acc.misses + shard.misses;
          evictions = acc.evictions + shard.evictions;
          entries = acc.entries + Ckey.Tbl.length shard.tbl;
        })
      { hits = 0; misses = 0; evictions = 0; entries = 0;
        capacity = t.capacity; shards = Array.length t.shards }
      t.shards
  in
  acc

let pp_stats ppf s =
  Format.fprintf ppf
    "hits %d, misses %d, evictions %d, entries %d/%d over %d shard%s"
    s.hits s.misses s.evictions s.entries s.capacity s.shards
    (if s.shards = 1 then "" else "s")
