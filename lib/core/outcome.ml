open Ts_model

type engine =
  | Lemmas
  | Revisionist

let engine_name = function
  | Lemmas -> "lemmas"
  | Revisionist -> "revisionist"

let engine_of_name = function
  | "lemmas" -> Some Lemmas
  | "revisionist" -> Some Revisionist
  | _ -> None

type summary = {
  engine : engine;
  protocol_name : string;
  n : int;
  excluded : int list;
  bound : int;
  registers_written : Action.reg list;
  schedule_length : int;
  search_effort : int;
}

let of_theorem (c : Theorem.certificate) =
  {
    engine = Lemmas;
    protocol_name = c.Theorem.protocol_name;
    n = c.Theorem.n;
    excluded = [];
    bound = c.Theorem.n - 1;
    registers_written = c.Theorem.registers_written;
    schedule_length = List.length c.Theorem.schedule;
    search_effort = c.Theorem.oracle_searches;
  }

let agree a b =
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  if not (String.equal a.protocol_name b.protocol_name) then
    fail "different protocols: %s vs %s" a.protocol_name b.protocol_name
  else if a.n <> b.n then fail "different n: %d vs %d" a.n b.n
  else if a.excluded <> b.excluded then
    fail "different excluded process sets: {%s} vs {%s}"
      (String.concat "," (List.map string_of_int a.excluded))
      (String.concat "," (List.map string_of_int b.excluded))
  else if a.bound <> b.bound then
    fail "bound mismatch: %s claims %d, %s claims %d" (engine_name a.engine)
      a.bound (engine_name b.engine) b.bound
  else if List.length a.registers_written < a.bound then
    fail "%s witness writes %d distinct registers, below its own bound %d"
      (engine_name a.engine)
      (List.length a.registers_written)
      a.bound
  else if List.length b.registers_written < b.bound then
    fail "%s witness writes %d distinct registers, below its own bound %d"
      (engine_name b.engine)
      (List.length b.registers_written)
      b.bound
  else Ok a.bound

let pp_summary ppf s =
  Fmt.pf ppf "%s: %s n=%d bound=%d (writes %d regs, schedule %d, effort %d)"
    (engine_name s.engine) s.protocol_name s.n s.bound
    (List.length s.registers_written)
    s.schedule_length s.search_effort
