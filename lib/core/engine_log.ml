(* The engine's log source, tapped into the observability stream (see
   engine_log.mli).  Every message still flows to whatever Logs reporter
   the host installed; while span tracing is armed, each message is
   additionally rendered and recorded as an Obs instant so engine-log
   lines land on the same timeline as the profiler's spans. *)

let src = Logs.Src.create "tightspace.core" ~doc:"Zhu lower-bound engine"

module Inner = (val Logs.src_log src : Logs.LOG)

let level_name = function
  | Logs.App -> "app"
  | Logs.Error -> "error"
  | Logs.Warning -> "warning"
  | Logs.Info -> "info"
  | Logs.Debug -> "debug"

(* Render the message into a buffer and emit it as an instant.  Logs'
   msgf hands us a format4 whose formatter parameter is a real
   Format.formatter, so kfprintf (not kasprintf) is the right driver. *)
let tap level msgf =
  let buf = Buffer.create 80 in
  let ppf = Format.formatter_of_buffer buf in
  msgf (fun ?header:_ ?tags:_ fmt ->
      Format.kfprintf (fun ppf -> Format.pp_print_flush ppf ()) ppf fmt);
  Ts_obs.Obs.instant ~cat:("log." ^ level_name level) (Buffer.contents buf)

module Log : Logs.LOG = struct
  let msg level msgf =
    if Ts_obs.Obs.tracing () then tap level msgf;
    Inner.msg level msgf

  let app msgf = msg Logs.App msgf
  let err msgf = msg Logs.Error msgf
  let warn msgf = msg Logs.Warning msgf
  let info msgf = msg Logs.Info msgf
  let debug msgf = msg Logs.Debug msgf

  (* The continuation-passing and result-handling entry points delegate
     untapped: they are not used on the engine's hot logging paths, and
     their 'b-polymorphic continuations do not fit the unit-typed tap. *)
  let kmsg = Inner.kmsg
  let on_error = Inner.on_error
  let on_error_msg = Inner.on_error_msg
end
