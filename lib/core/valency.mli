(** The refined valency oracle (Zhu, Definition 1 and Proposition 1).

    [P can decide v from C] iff there is a P-only execution from [C] in
    which [v] is decided.  [P] is bivalent from [C] if it can decide both 0
    and 1, and v-univalent if it can decide [v] but not [1-v].

    Exact valency is undecidable in general — the P-only reachable set of a
    protocol like racing counters is infinite — so the oracle searches up to
    a configurable [horizon] of steps.  Consequences, which the rest of the
    engine is built around:

    - a positive answer ([can_decide = Some w]) is always sound: [w] is a
      real P-only execution of the protocol deciding [v];
    - a negative answer means "not within [horizon] steps" and can
      misclassify a bivalent set as univalent if the horizon is too small.
      Every construction in {!Lemmas} and {!Theorem} therefore re-verifies
      its conclusion with positive witnesses, and raises
      {!Horizon_exceeded} instead of returning an unverified result.

    Coin flips ([Action.Flip]) are resolved nondeterministically — both
    outcomes are explored — which matches Zhu's "nondeterministic solo
    terminating" protocol class. *)

open Ts_model

type 's t
(** A memoizing oracle for one protocol instance. *)

exception Horizon_exceeded of string
(** Raised by engine components when a bounded-search answer could not be
    verified; retry with a larger horizon. *)

(** [create ?parallel ?budget proto ~horizon] builds an oracle.  With
    [parallel:true], {!classify}'s two independent probes run concurrently
    on separate OCaml domains when both miss the memo table; answers are
    identical to the serial oracle's.  All visited/memo tables key by
    packed configurations ({!Ts_model.Ckey}).  Every search charges
    [budget] (default {!Budget.unlimited}) one node per expanded
    configuration and raises {!Budget.Exhausted} when it trips; the
    outcome-returning wrappers in {!Theorem} catch that and report a
    partial result. *)
val create : ?parallel:bool -> ?budget:Budget.t -> 's Protocol.t -> horizon:int -> 's t

val protocol : 's t -> 's Protocol.t
val horizon : 's t -> int

(** The resource guard this oracle charges. *)
val budget : 's t -> Budget.t

(** [can_decide t cfg ps v] is a P-only schedule from [cfg] after which [v]
    is decided, if the bounded search finds one.  A configuration in which
    some process has already decided [v] yields [Some []]. *)
val can_decide : 's t -> 's Config.t -> Pset.t -> Value.t -> Execution.event list option

(** Binary-consensus classification of [ps] from [cfg]. *)
type verdict =
  | Bivalent of Execution.event list * Execution.event list
      (** witnesses deciding 0 and 1 respectively *)
  | Univalent of Value.t * Execution.event list
      (** can decide only this value (within horizon) *)
  | Blocked  (** can decide neither within horizon *)

val classify : 's t -> 's Config.t -> Pset.t -> verdict
val is_bivalent : 's t -> 's Config.t -> Pset.t -> bool

(** [univalent_value t cfg ps] is [Some v] if [ps] is v-univalent (within
    horizon) from [cfg]. *)
val univalent_value : 's t -> 's Config.t -> Pset.t -> Value.t option

(** Number of [can_decide] searches actually run (memo misses). *)
val searches : 's t -> int

(** Cumulative search-engine counters of this oracle. *)
type stats = {
  searches : int;  (** BFS searches actually run (memo misses) *)
  nodes_expanded : int;  (** configurations dequeued across all searches *)
  memo_hits : int;
  memo_misses : int;
  peak_frontier : int;  (** high-water mark of any single search's queue *)
}

val stats : 's t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {2 Cluster hooks}

    Exported internals of {!search}'s BFS step, so the distributed
    valency engine reproduces the serial frontier (and hence the serial
    witness and node counts) exactly rather than re-deriving the order. *)

(** [decides cfg v] is the dequeue test of {!search}: some process has
    decided [v] in [cfg]. *)
val decides : 's Config.t -> Value.t -> bool

(** [successors_within proto cfg ps] enumerates the P-only successor
    configurations in exactly {!search}'s expansion order: members of
    [ps] ascending, a coin flip resolved heads before tails. *)
val successors_within :
  's Protocol.t -> 's Config.t -> Pset.t -> (Execution.event * 's Config.t) list

(** The two binary decision values, [Value.int 0] and [Value.int 1]. *)
val zero : Value.t

(** See {!zero}. *)
val one : Value.t
