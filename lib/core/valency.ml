open Ts_model
module Obs = Ts_obs.Obs

exception Horizon_exceeded of string

type stats = {
  searches : int;
  nodes_expanded : int;
  memo_hits : int;
  memo_misses : int;
  peak_frontier : int;
}

(* Memo keys: packed configuration + participant mask + target value. *)
module Memo_key = struct
  type t = {
    ck : Ckey.t;
    mask : int;
    v : int;
  }

  let equal a b = a.mask = b.mask && a.v = b.v && Ckey.equal a.ck b.ck
  let hash { ck; mask; v } = (Ckey.hash ck + (mask * 0x9e3779b9) + (v * 0x85ebca6b)) land max_int
end

module Memo = Hashtbl.Make (Memo_key)

type 's t = {
  proto : 's Protocol.t;
  horizon : int;
  parallel : bool;
  budget : Budget.t;
  memo : Execution.event list option Memo.t;
  pk : 's Ckey.packer;  (* coordinator-domain packer for memo keys *)
  mutable searches : int;
  mutable nodes_expanded : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable peak_frontier : int;
}

let create ?(parallel = false) ?(budget = Budget.unlimited) proto ~horizon =
  {
    proto;
    horizon;
    parallel;
    budget;
    memo = Memo.create 4096;
    pk = Ckey.packer proto;
    searches = 0;
    nodes_expanded = 0;
    memo_hits = 0;
    memo_misses = 0;
    peak_frontier = 0;
  }

let protocol t = t.proto
let horizon t = t.horizon
let budget t = t.budget
let searches t = t.searches

let stats t =
  {
    searches = t.searches;
    nodes_expanded = t.nodes_expanded;
    memo_hits = t.memo_hits;
    memo_misses = t.memo_misses;
    peak_frontier = t.peak_frontier;
  }

let zero = Value.int 0
let one = Value.int 1

let decided_here cfg v = List.exists (Value.equal v) (Config.decided_values cfg)

(* Breadth-first search for a P-only execution from [cfg] deciding [v].
   BFS visits every configuration at its shortest P-only distance, so
   together with the visited table the search is *complete* for executions
   of length <= horizon, and the returned witness is one of minimal
   length.  Negative answers still only mean "not within horizon".

   Self-contained and effect-free on [t]'s mutable fields — it builds its
   own packer and visited table, keyed by packed configurations — so two
   searches may run on separate domains; counters come back as data and
   are folded into [t] by the (single-domain) coordinator. *)
let search t cfg ps v =
  (* explicit enter/close (not with_span): this is the engine's hottest
     entry point and the closure must not allocate while disarmed *)
  let sp = Obs.enter ~cat:"valency" "valency.search" in
  let pk = Ckey.packer t.proto in
  let visited = Ckey.Tbl.create 1024 in
  let q = Queue.create () in
  Queue.add (cfg, [], 0) q;
  Ckey.Tbl.replace visited (Ckey.pack pk cfg) ();
  let result = ref None in
  let nodes = ref 0 in
  let peak = ref 1 in
  (* a tripped budget is captured, not raised: the caller's [record] must
     account this search's work first (and, under [parallel], the raise
     must happen on the coordinator's domain, after the join) *)
  let stop = ref None in
  (try
     while not (Queue.is_empty q) do
       let cfg, rev_sched, depth = Queue.pop q in
       incr nodes;
       Budget.charge t.budget 1;
       if decided_here cfg v then begin
         result := Some (List.rev rev_sched);
         raise Exit
       end;
       if depth < t.horizon then begin
         Pset.iter
           (fun p ->
             let push coin =
               let cfg', _ = Config.step t.proto cfg p ~coin in
               let key = Ckey.pack pk cfg' in
               if not (Ckey.Tbl.mem visited key) then begin
                 Ckey.Tbl.replace visited key ();
                 Queue.add (cfg', { Execution.pid = p; coin } :: rev_sched, depth + 1) q
               end
             in
             match Config.poised t.proto cfg p with
             | None -> ()
             | Some Action.Flip ->
               push (Some true);
               push (Some false)
             | Some _ -> push None)
           ps;
         let frontier = Queue.length q in
         if frontier > !peak then peak := frontier
       end
     done
   with
   | Exit -> ()
   | Budget.Exhausted _ as e -> stop := Some e);
  Obs.set_int sp "target" (Value.to_int v);
  Obs.set_int sp "nodes" !nodes;
  Obs.set_int sp "peak_frontier" !peak;
  Obs.set_bool sp "decided" (!result <> None);
  Obs.close sp;
  !result, !nodes, !peak, !stop

let record t (result, nodes, peak, stop) =
  t.searches <- t.searches + 1;
  t.nodes_expanded <- t.nodes_expanded + nodes;
  if peak > t.peak_frontier then t.peak_frontier <- peak;
  Obs.Metrics.incr "valency.searches";
  Obs.Metrics.incr ~by:nodes "valency.nodes_expanded";
  Obs.Metrics.gauge_max "valency.peak_frontier" peak;
  (* an aborted search has no trustworthy answer: re-raise (after the
     accounting above) and never memoize it *)
  match stop with Some e -> raise e | None -> result

let memo_hit t n =
  t.memo_hits <- t.memo_hits + n;
  Obs.Metrics.incr ~by:n "valency.memo_hits"

let memo_miss t n =
  t.memo_misses <- t.memo_misses + n;
  Obs.Metrics.incr ~by:n "valency.memo_misses"

let memo_key t cfg ps v =
  { Memo_key.ck = Ckey.pack t.pk cfg; mask = Pset.to_mask ps; v = Value.to_int v }

let can_decide t cfg ps v =
  let key = memo_key t cfg ps v in
  match Memo.find_opt t.memo key with
  | Some r ->
    memo_hit t 1;
    r
  | None ->
    memo_miss t 1;
    let r = record t (search t cfg ps v) in
    Memo.replace t.memo key r;
    r

type verdict =
  | Bivalent of Execution.event list * Execution.event list
  | Univalent of Value.t * Execution.event list
  | Blocked

let verdict_of = function
  | Some w0, Some w1 -> Bivalent (w0, w1)
  | Some w0, None -> Univalent (zero, w0)
  | None, Some w1 -> Univalent (one, w1)
  | None, None -> Blocked

(* The two probes of [classify] are independent searches; with [parallel]
   oracles the misses run concurrently on separate domains (the memo is
   only ever touched from the coordinator's domain). *)
let classify t cfg ps =
  if not t.parallel then verdict_of (can_decide t cfg ps zero, can_decide t cfg ps one)
  else begin
    let k0 = memo_key t cfg ps zero and k1 = memo_key t cfg ps one in
    match Memo.find_opt t.memo k0, Memo.find_opt t.memo k1 with
    | Some r0, Some r1 ->
      memo_hit t 2;
      verdict_of (r0, r1)
    | None, None ->
      memo_miss t 2;
      let s0, s1 =
        Par.both (fun () -> search t cfg ps zero) (fun () -> search t cfg ps one)
      in
      let r0 = record t s0 and r1 = record t s1 in
      Memo.replace t.memo k0 r0;
      Memo.replace t.memo k1 r1;
      verdict_of (r0, r1)
    | Some r0, None ->
      memo_hit t 1;
      memo_miss t 1;
      let r1 = record t (search t cfg ps one) in
      Memo.replace t.memo k1 r1;
      verdict_of (r0, r1)
    | None, Some r1 ->
      memo_hit t 1;
      memo_miss t 1;
      let r0 = record t (search t cfg ps zero) in
      Memo.replace t.memo k0 r0;
      verdict_of (r0, r1)
  end

let is_bivalent t cfg ps =
  match classify t cfg ps with
  | Bivalent _ -> true
  | Univalent _ | Blocked -> false

let univalent_value t cfg ps =
  match classify t cfg ps with
  | Univalent (v, _) -> Some v
  | Bivalent _ | Blocked -> None

(* --- cluster hooks ------------------------------------------------------ *)

let decides cfg v = decided_here cfg v

let successors_within proto cfg ps =
  let acc = ref [] in
  Pset.iter
    (fun p ->
      let push coin =
        let cfg', _ = Config.step proto cfg p ~coin in
        acc := ({ Execution.pid = p; coin }, cfg') :: !acc
      in
      match Config.poised proto cfg p with
      | None -> ()
      | Some Action.Flip ->
        push (Some true);
        push (Some false)
      | Some _ -> push None)
    ps;
  List.rev !acc

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "%d searches over %d nodes, memo %d/%d hit/miss, frontier peak %d"
    s.searches s.nodes_expanded s.memo_hits s.memo_misses s.peak_frontier
