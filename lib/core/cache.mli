(** A sharded, mutex-striped LRU result cache for the search engine.

    The adversary constructions are expensive and perfectly cacheable:
    PR 1's packed configuration keys ({!Ts_model.Ckey}) make every query
    the engine answers identifiable by a canonical digest, and the service
    layer's whole point is answering repeat queries without re-running the
    valency searches that dominate wall-clock.  This module is the storage
    half of that design, kept in core so any cache-aware entry-point
    wrapper — the service dispatcher today, a memoized oracle tomorrow —
    shares one implementation.

    {b Sharding.}  The key's full-width FNV hash picks one of [shards]
    independent LRU shards, each guarded by its own [Mutex]: concurrent
    requests for different shards never contend, and a shard's lock is
    never held while a caller computes a missing value.

    {b Eviction.}  Exact LRU per shard, tracked by a monotone use stamp;
    capacity is divided evenly across shards (each shard holds at least
    one entry).

    {b Concurrency contract.}  [find_or_compute] runs the computation
    {e outside} the shard lock, so two domains missing on the same key may
    both compute; the first insert wins and both callers get their own
    (equal, for deterministic computations) result.  Duplicated work on a
    cold key is the price of never blocking reads behind a slow compute.

    {b Observability.}  Hits, misses, evictions and the entry gauge mirror
    into {!Ts_obs.Obs.Metrics} under [<name>.hits] etc. (no-ops while
    metrics are disarmed), and every shard logs its accesses to the race
    detector's feed ({!Ts_model.Trace}) as synchronized accesses, so an
    instrumented hammer run can certify the striping sound. *)

(** Where an answer came from: computed on this call, or served from the
    cache.  The payload is the answer either way — provenance is for the
    caller's reporting (the service's ["provenance"] response field, the
    differential cached-equals-fresh tests). *)
type 'v provenance =
  | Fresh of 'v
  | Cached of 'v

val value : 'v provenance -> 'v
val is_cached : 'v provenance -> bool

type 'v t

(** [create ~capacity ()] builds a cache holding at most [capacity]
    entries across [shards] (default 8) LRU shards.  [name] (default
    ["cache"]) prefixes the mirrored metrics.
    @raise Invalid_argument if [capacity < 1] or [shards < 1]. *)
val create : ?shards:int -> ?name:string -> capacity:int -> unit -> 'v t

(** [find_or_compute t key f] is [Cached v] when [key] is present, else
    [Fresh (f ())] after inserting the computed value.  [f] runs without
    any lock held; see the concurrency contract above. *)
val find_or_compute : 'v t -> Ts_model.Ckey.t -> (unit -> 'v) -> 'v provenance

(** [find t key] peeks without computing (still refreshes recency). *)
val find : 'v t -> Ts_model.Ckey.t -> 'v option

(** [put t key v] inserts or overwrites unconditionally, then (by
    default) feeds the entry to the write-through hook.  Pass
    [~write_through:false] when the value is being {e loaded from} the
    durable layer — re-persisting what was just read would loop. *)
val put : ?write_through:bool -> 'v t -> Ts_model.Ckey.t -> 'v -> unit

(** [set_write_through t hook] taps every (write-through) insert:
    [hook key v] runs after the in-memory insert, outside any shard
    lock.  The service dispatcher points this at the persistent witness
    store, making the LRU a write-through cache over the append-only
    log.  The hook must be thread-safe — inserts come from any worker
    domain. *)
val set_write_through : 'v t -> (Ts_model.Ckey.t -> 'v -> unit) -> unit

(** Drop every entry (stats survive). *)
val clear : 'v t -> unit

(** Point-in-time counters, summed over shards. *)
type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** live entries right now *)
  capacity : int;  (** configured total capacity *)
  shards : int;
}

val stats : 'v t -> stats
val pp_stats : Format.formatter -> stats -> unit
