open Ts_model

type stats = {
  nodes : int;
  edges : int;
  bivalent : int;
  univalent0 : int;
  univalent1 : int;
  blocked : int;
}

let dot t ~inputs ~pset ~depth ~max_nodes =
  Ts_obs.Obs.with_span ~cat:"valency" "valgraph.dot" @@ fun sp ->
  let proto = Valency.protocol t in
  let cfg0 = Config.initial proto ~inputs in
  let pk = Ckey.packer proto in
  let ids = Ckey.Tbl.create 256 in
  let next_id = ref 0 in
  let id_of cfg =
    let key = Ckey.pack pk cfg in
    match Ckey.Tbl.find_opt ids key with
    | Some i -> i, false
    | None ->
      let i = !next_id in
      incr next_id;
      Ckey.Tbl.replace ids key i;
      i, true
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph valency {\n  rankdir=TB;\n  node [fontsize=10];\n";
  let nodes = ref 0 and edges = ref 0 in
  let biv = ref 0 and uni0 = ref 0 and uni1 = ref 0 and blk = ref 0 in
  let emit_node i cfg =
    incr nodes;
    let shape, color, label =
      match Valency.classify t cfg pset with
      | Valency.Bivalent _ ->
        incr biv;
        "ellipse", "khaki", "bi"
      | Valency.Univalent (v, _) ->
        let v = Value.to_int v in
        if v = 0 then incr uni0 else incr uni1;
        "box", (if v = 0 then "lightcoral" else "lightblue"), Printf.sprintf "%d" v
      | Valency.Blocked ->
        incr blk;
        "diamond", "gray", "?"
    in
    let decided =
      match Config.decided_values cfg with
      | [] -> ""
      | vs -> Printf.sprintf "\\ndec %s" (String.concat "," (List.map Value.to_string vs))
    in
    Buffer.add_string buf
      (Printf.sprintf "  c%d [shape=%s,style=filled,fillcolor=%s,label=\"%s%s\"];\n" i
         shape color label decided)
  in
  let q = Queue.create () in
  let i0, _ = id_of cfg0 in
  emit_node i0 cfg0;
  Queue.add (cfg0, i0, 0) q;
  (try
     while not (Queue.is_empty q) do
       let cfg, i, d = Queue.pop q in
       if d < depth then
         for p = 0 to proto.Protocol.num_processes - 1 do
           let push coin label =
             let cfg', _ = Config.step proto cfg p ~coin in
             let j, fresh = id_of cfg' in
             if fresh then begin
               if !nodes >= max_nodes then raise Exit;
               emit_node j cfg';
               Queue.add (cfg', j, d + 1) q
             end;
             incr edges;
             Buffer.add_string buf (Printf.sprintf "  c%d -> c%d [label=\"%s\"];\n" i j label)
           in
           match Config.poised proto cfg p with
           | None -> ()
           | Some Action.Flip ->
             push (Some true) (Printf.sprintf "p%d+" p);
             push (Some false) (Printf.sprintf "p%d-" p)
           | Some _ -> push None (Printf.sprintf "p%d" p)
         done
     done
   with Exit -> ());
  Buffer.add_string buf "}\n";
  Ts_obs.Obs.set_int sp "nodes" !nodes;
  Ts_obs.Obs.set_int sp "edges" !edges;
  ( Buffer.contents buf,
    {
      nodes = !nodes;
      edges = !edges;
      bivalent = !biv;
      univalent0 = !uni0;
      univalent1 = !uni1;
      blocked = !blk;
    } )
