open Ts_model
module Obs = Ts_obs.Obs

type 's nice = {
  alpha : Execution.event list;
  cfg : 's Config.t;
  q_pair : Pset.t;
  cover : Pset.t;
}

let fail fmt = Format.kasprintf (fun s -> raise (Valency.Horizon_exceeded s)) fmt

let apply t cfg sched = fst (Lemmas.apply_schedule t cfg sched)

(* One round of Lemma 4's constructed sequence D_0, D_1, ... *)
type 's iteration = {
  d : 's Config.t;
  v : Action.reg list;  (* registers covered by R_i in [d] *)
}

(* Transition pieces from D_i to D_{i+1}: alpha_i = phi_i · beta_i · psi_i *)
type transition = {
  t_phi : Execution.event list;
  t_beta : Execution.event list;
  t_psi : Execution.event list;
}

let transition_schedule tr = tr.t_phi @ tr.t_beta @ tr.t_psi

let rec lemma4 t c p =
  let proto = Valency.protocol t in
  let card = Pset.cardinal p in
  if card < 2 then invalid_arg "Theorem.lemma4: |P| must be >= 2";
  Engine_log.Log.debug (fun m -> m "lemma4: P=%a" Pset.pp p);
  if not (Valency.is_bivalent t c p) then
    fail "lemma4: P=%a not bivalent from C within horizon" Pset.pp p;
  if card = 2 then { alpha = []; cfg = c; q_pair = p; cover = Pset.empty }
  else begin
    Obs.with_span ~cat:"lemma" "lemma4" @@ fun l4_sp ->
    Obs.set_int l4_sp "participants" card;
    (* Lemma 1: peel off a process z, keeping P - {z} bivalent. *)
    let { Lemmas.phi = gamma; z } = Lemmas.lemma1 t c p in
    let d = apply t c gamma in
    let p' = Pset.remove z p in
    (* D_0 by the induction hypothesis. *)
    let rec0 = lemma4 t d p' in
    let iterations : 's iteration list ref = ref [] in
    let transitions : transition list ref = ref [] in
    let max_rounds = (1 lsl min proto.Protocol.num_registers 16) + 2 in
    (* Walk D_i -> D_{i+1} until two rounds cover the same register set.
       Each round runs inside its own span; the recursion happens outside
       it (a span cannot bracket a tail call), so the round's decision is
       computed under the span and acted on after it closes. *)
    let rec build d_i q_i round =
      Budget.check (Valency.budget t);
      if round > max_rounds then
        fail "lemma4: no pigeonhole repeat after %d rounds" max_rounds;
      let decision =
        Obs.with_span ~cat:"lemma" "lemma4.round" @@ fun sp ->
        Obs.set_int sp "round" round;
        let r_i = Pset.diff p' q_i in
        let v_i = Covering.covered_set proto d_i r_i in
        Obs.set_int sp "registers_covered" (List.length v_i);
        let repeat =
          List.find_index (fun it -> it.v = v_i) (List.rev !iterations)
        in
        match repeat with
        | Some i0 ->
          Engine_log.Log.debug (fun m ->
              m "lemma4: pigeonhole at rounds %d/%d over {%a}" i0 round
                Fmt.(list ~sep:comma (fmt "R%d")) v_i);
          Obs.set_bool sp "pigeonhole" true;
          `Finish (r_i, v_i, i0)
        | None ->
          iterations := { d = d_i; v = v_i } :: !iterations;
          if Pset.is_empty r_i then begin
            (* Empty covering set: D_{i+1} = D_i with an empty transition;
               the next round repeats V = [] and triggers the pigeonhole. *)
            transitions := { t_phi = []; t_beta = []; t_psi = [] } :: !transitions;
            `Next (d_i, q_i)
          end
          else begin
            let l3 = Lemmas.lemma3 t d_i ~p:p' ~r:r_i in
            let beta = Covering.block_write r_i in
            let d_phi_beta =
              Obs.with_span ~cat:"covering" "block_write" @@ fun bsp ->
              Obs.set_int bsp "writers" (Pset.cardinal r_i);
              apply t d_i (l3.Lemmas.phi3 @ beta)
            in
            let rec_i = lemma4 t d_phi_beta p' in
            transitions :=
              { t_phi = l3.Lemmas.phi3; t_beta = beta; t_psi = rec_i.alpha }
              :: !transitions;
            `Next (rec_i.cfg, rec_i.q_pair)
          end
      in
      match decision with
      | `Finish (r_i, v_i, i0) -> finish d_i q_i r_i v_i i0
      | `Next (d, q) -> build d q (round + 1)
    (* Index j = current round; V_j equals V_{i0}: insert z's hidden steps
       at round i0 and replay the rest. *)
    and finish d_j q_j r_j v_j i0 =
      (* the covering extension: insert z's hidden solo steps at the
         pigeonhole round so z joins the cover invisibly *)
      Obs.with_span ~cat:"covering" "covering_extension" @@ fun sp ->
      Obs.set_int sp "pigeonhole_round" i0;
      let iters = List.rev !iterations in
      let trans = List.rev !transitions in
      let it0 = List.nth iters i0 in
      let tr0 = List.nth trans i0 in
      (* z's solo deciding execution from D_{i0}·phi_{i0}, cut just before
         its first write outside V_{i0} (Lemma 2 guarantees one exists). *)
      let cfg_phi = apply t it0.d tr0.t_phi in
      let zeta = Lemmas.solo_deciding t cfg_phi z in
      let zeta', _, fresh =
        Lemmas.split_at_uncovered_write t cfg_phi z ~covered:it0.v ~zeta
      in
      let before = List.filteri (fun k _ -> k < i0) trans in
      let after = List.filteri (fun k _ -> k > i0) trans in
      let alpha =
        gamma @ rec0.alpha
        @ List.concat_map transition_schedule before
        @ tr0.t_phi @ zeta' @ tr0.t_beta @ tr0.t_psi
        @ List.concat_map transition_schedule after
      in
      let final = apply t c alpha in
      (* The paper's indistinguishability claim, checked structurally: the
         processes of P' and all registers agree between C·alpha and D_j. *)
      Pset.iter
        (fun pr ->
          if final.Config.procs.(pr) <> d_j.Config.procs.(pr) then
            fail "lemma4: hidden insertion visible to p%d" pr)
        p';
      if final.Config.regs <> d_j.Config.regs then
        fail "lemma4: hidden insertion altered register contents";
      let cover = Pset.add z r_j in
      if not (Covering.well_spread proto final cover) then
        fail "lemma4: final covering set not well spread";
      (match Config.covers proto final z with
       | Some r when not (List.mem r v_j) -> ()
       | Some r -> fail "lemma4: z covers R%d which is already covered" r
       | None -> fail "lemma4: z no longer covers a register");
      if not (Valency.is_bivalent t final q_j) then
        fail "lemma4: final pair %a not verifiably bivalent" Pset.pp q_j;
      ignore fresh;
      Obs.set_int sp "registers_covered" (Pset.cardinal cover);
      Obs.set_int sp "alpha_len" (List.length alpha);
      { alpha; cfg = final; q_pair = q_j; cover }
    in
    build rec0.cfg rec0.q_pair 0
  end

type certificate = {
  protocol_name : string;
  n : int;
  inputs : Value.t array;
  schedule : Execution.event list;
  trace : Execution.trace;
  registers_written : Action.reg list;
  covered_registers : Action.reg list;
  fresh_register : Action.reg;
  oracle_searches : int;
}

let theorem1 t =
  let proto = Valency.protocol t in
  let n = proto.Protocol.num_processes in
  if n < 2 then invalid_arg "Theorem.theorem1: need n >= 2";
  (* Proposition 2: p0 input 0, p1 input 1 makes {p0,p1} bivalent. *)
  let inputs = Array.init n (fun p -> if p = 1 then Value.int 1 else Value.int 0) in
  let i0 = Config.initial proto ~inputs in
  Engine_log.Log.info (fun m ->
      m "theorem1: %s, n=%d, horizon=%d" proto.Protocol.name n (Valency.horizon t));
  Obs.with_span ~cat:"theorem" "theorem1" @@ fun t1_sp ->
  Obs.set_int t1_sp "n" n;
  Obs.set_str t1_sp "protocol" proto.Protocol.name;
  (match Valency.can_decide t i0 (Pset.singleton 0) Valency.zero with
   | Some _ -> ()
   | None -> fail "theorem1: {p0} cannot decide 0 solo (Prop. 2 fails)");
  (match Valency.can_decide t i0 (Pset.singleton 1) Valency.one with
   | Some _ -> ()
   | None -> fail "theorem1: {p1} cannot decide 1 solo (Prop. 2 fails)");
  let finish schedule covered fresh =
    let final_cfg, trace = Lemmas.apply_schedule t i0 schedule in
    ignore final_cfg;
    let written = Execution.written_registers trace in
    if List.length written < n - 1 then
      failwith
        (Format.asprintf
           "theorem1: construction wrote only %d registers for n=%d — %s"
           (List.length written) n
           "the protocol under test violates consensus or the engine is wrong");
    {
      protocol_name = proto.Protocol.name;
      n;
      inputs;
      schedule;
      trace;
      registers_written = written;
      covered_registers = covered;
      fresh_register = fresh;
      oracle_searches = Valency.searches t;
    }
  in
  if n = 2 then begin
    (* The paper's base case: if p0 decides solo without writing, p1 cannot
       distinguish the result from its own solo world and decides 1. *)
    let zeta = Lemmas.solo_deciding t i0 0 in
    let zeta', _, fresh =
      Lemmas.split_at_uncovered_write t i0 0 ~covered:[] ~zeta
    in
    ignore zeta';
    finish zeta [] fresh
  end
  else begin
    let all = Pset.all n in
    let nice = lemma4 t i0 all in
    (* Lemma 3 once more from the nice configuration... *)
    let l3 = Lemmas.lemma3 t nice.cfg ~p:all ~r:nice.cover in
    let z =
      match Pset.to_list (Pset.remove l3.Lemmas.q nice.q_pair) with
      | z :: _ -> z
      | [] -> fail "theorem1: q-pair collapsed"
    in
    (* ... and Lemma 2 on the remaining pair process z: its solo deciding
       execution from C·alpha·phi must write outside the covered set. *)
    let cfg'' = apply t nice.cfg l3.Lemmas.phi3 in
    let covered = Covering.covered_set (Valency.protocol t) cfg'' nice.cover in
    let zeta = Lemmas.solo_deciding t cfg'' z in
    let _, _, fresh =
      Lemmas.split_at_uncovered_write t cfg'' z ~covered ~zeta
    in
    let beta = Covering.block_write nice.cover in
    let schedule = nice.alpha @ l3.Lemmas.phi3 @ zeta @ beta in
    finish schedule covered fresh
  end

type progress = {
  horizon : int;
  searches : int;
  nodes_expanded : int;
}

type stop =
  | Out_of_budget of Budget.breach
  | Horizon_wall of string

type outcome =
  | Complete of certificate
  | Partial of stop * progress

let progress_of t =
  let s = Valency.stats t in
  { horizon = Valency.horizon t; searches = s.Valency.searches;
    nodes_expanded = s.Valency.nodes_expanded }

let theorem1_outcome t =
  match theorem1 t with
  | cert -> Complete cert
  | exception Budget.Exhausted b ->
    Engine_log.Log.info (fun m ->
        m "theorem1: partial after %d searches — %a" (Valency.searches t)
          Budget.pp_breach b);
    Partial (Out_of_budget b, progress_of t)
  | exception Valency.Horizon_exceeded msg ->
    Engine_log.Log.info (fun m ->
        m "theorem1: horizon %d insufficient (%s)" (Valency.horizon t) msg);
    Partial (Horizon_wall msg, progress_of t)

(* Adaptive horizon escalation: geometric backoff on an exhausted horizon,
   at most [retries] doublings, a fresh oracle per attempt.  The budget is
   shared across attempts — it guards the whole escalation, so a capped
   run returns [Partial (Out_of_budget _, _)] instead of looping. *)
let theorem1_escalate ?(budget = Budget.unlimited) ?(retries = 4) proto ~initial_horizon =
  if initial_horizon < 1 then invalid_arg "Theorem.theorem1_escalate: bad initial horizon";
  if retries < 0 then invalid_arg "Theorem.theorem1_escalate: negative retries";
  let rec go horizon attempt =
    let t = Valency.create ~budget proto ~horizon in
    match theorem1_outcome t with
    | Partial (Horizon_wall msg, _) when attempt < retries ->
      Engine_log.Log.info (fun m ->
          m "horizon %d insufficient (%s); deepening to %d" horizon msg (2 * horizon));
      go (2 * horizon) (attempt + 1)
    | outcome -> outcome, horizon
  in
  go initial_horizon 0

let theorem1_auto proto ~initial_horizon ~max_horizon =
  if initial_horizon < 1 || initial_horizon > max_horizon then
    invalid_arg "Theorem.theorem1_auto: bad horizon range";
  (* largest number of doublings that stays within max_horizon *)
  let retries =
    let rec go h r = if 2 * h > max_horizon then r else go (2 * h) (r + 1) in
    go initial_horizon 0
  in
  match theorem1_escalate proto ~initial_horizon ~retries with
  | Complete cert, horizon -> cert, horizon
  | Partial (Horizon_wall msg, _), _ -> raise (Valency.Horizon_exceeded msg)
  | Partial (Out_of_budget b, _), _ ->
    (* unreachable: escalate ran with the unlimited budget *)
    raise (Budget.Exhausted b)

let verify cert (proto : 's Protocol.t) =
  if proto.Protocol.num_processes <> cert.n then Error "process count mismatch"
  else
    match
      Execution.apply proto (Config.initial proto ~inputs:cert.inputs) cert.schedule
    with
    | exception exn -> Error ("replay failed: " ^ Printexc.to_string exn)
    | _, trace ->
      let written = Execution.written_registers trace in
      if written <> cert.registers_written then
        Error "written-register sets differ on replay"
      else if List.length written < cert.n - 1 then
        Error
          (Printf.sprintf "only %d registers written, expected >= %d"
             (List.length written) (cert.n - 1))
      else Ok ()

let pp_stop ppf = function
  | Out_of_budget b -> Budget.pp_breach ppf b
  | Horizon_wall msg -> Fmt.pf ppf "oracle horizon exhausted: %s" msg

let pp_progress ppf p =
  Fmt.pf ppf "horizon %d, %d valency searches over %d nodes" p.horizon p.searches
    p.nodes_expanded

let pp_certificate ppf c =
  Fmt.pf ppf
    "@[<v>protocol %s, n=%d: %d distinct registers written (bound: n-1 = %d)@,\
     inputs: [%a]@,covered at nice configuration: {%a}; forced fresh write: R%d@,\
     witness schedule length: %d steps; valency searches: %d@]"
    c.protocol_name c.n
    (List.length c.registers_written)
    (c.n - 1)
    Fmt.(array ~sep:(any ";") Value.pp) c.inputs
    Fmt.(list ~sep:comma (fmt "R%d")) c.covered_registers
    c.fresh_register (List.length c.schedule) c.oracle_searches
