type breach =
  | Deadline of float
  | Node_cap of int
  | Heap_cap of int

exception Exhausted of breach

type limits = {
  allowance : float;  (* seconds granted, for reporting *)
  deadline : float;  (* absolute Unix.gettimeofday cutoff, infinity if none *)
  max_nodes : int;  (* max_int if none *)
  max_heap_words : int;  (* max_int if none *)
}

type t = {
  limits : limits option;  (* None: the unlimited guard *)
  nodes : int Atomic.t;
}

let unlimited = { limits = None; nodes = Atomic.make 0 }

let create ?deadline ?max_nodes ?max_heap_words () =
  let pos name = function
    | Some x when x <= 0 -> invalid_arg ("Budget.create: " ^ name ^ " must be positive")
    | _ -> ()
  in
  pos "max_nodes" max_nodes;
  pos "max_heap_words" max_heap_words;
  (match deadline with
   | Some d when d <= 0.0 -> invalid_arg "Budget.create: deadline must be positive"
   | _ -> ());
  let allowance = Option.value ~default:infinity deadline in
  {
    limits =
      Some
        {
          allowance;
          deadline =
            (match deadline with
             | Some d -> Unix.gettimeofday () +. d
             | None -> infinity);
          max_nodes = Option.value ~default:max_int max_nodes;
          max_heap_words = Option.value ~default:max_int max_heap_words;
        };
    nodes = Atomic.make 0;
  }

let is_unlimited t = t.limits = None
let spent t = Atomic.get t.nodes

(* The clock and the heap are sampled only when the node counter crosses a
   multiple of [sample_every]: gettimeofday and Gc.quick_stat are cheap but
   not free, and searches charge per expanded configuration. *)
let sample_every = 256

let slow_breach l =
  if Unix.gettimeofday () > l.deadline then Some (Deadline l.allowance)
  else if l.max_heap_words < max_int
          && (Gc.quick_stat ()).Gc.heap_words > l.max_heap_words then
    Some (Heap_cap l.max_heap_words)
  else None

let breached t =
  match t.limits with
  | None -> None
  | Some l ->
    if Atomic.get t.nodes > l.max_nodes then Some (Node_cap l.max_nodes)
    else slow_breach l

let check t =
  match breached t with None -> () | Some b -> raise (Exhausted b)

let charge t k =
  match t.limits with
  | None -> ()
  | Some l ->
    (* the node counter is the one structure domain-parallel searches
       genuinely share; it is atomic by design, and logging it as such
       lets the race detector certify exactly that *)
    Ts_model.Trace.access ~loc:"budget.nodes" Ts_model.Trace.Write ~atomic:true;
    let before = Atomic.fetch_and_add t.nodes k in
    let after = before + k in
    if after > l.max_nodes then raise (Exhausted (Node_cap l.max_nodes));
    if before / sample_every <> after / sample_every then
      match slow_breach l with None -> () | Some b -> raise (Exhausted b)

let pp_breach ppf = function
  | Deadline s -> Fmt.pf ppf "wall-clock deadline (%gs) exceeded" s
  | Node_cap n -> Fmt.pf ppf "search-node cap (%d nodes) exceeded" n
  | Heap_cap w -> Fmt.pf ppf "live-heap cap (%d words) exceeded" w
