(** Zhu's Lemma 4 and Theorem 1, as witness-producing constructions.

    {!lemma4} builds, for a bivalent set [P], an execution leading to a
    "nice" configuration: a pair of processes still bivalent while the
    other [|P| - 2] processes cover pairwise distinct registers.
    {!theorem1} composes it with Lemmas 2 and 3 into a complete execution
    of the protocol under test in which at least [n - 1] distinct registers
    are written — the executable content of the n−1 space lower bound.

    All intermediate facts are re-verified; the final certificate is
    additionally checked by replaying the execution from the initial
    configuration and counting written registers directly on the trace. *)

open Ts_model

(** A "nice" configuration reached from some base configuration. *)
type 's nice = {
  alpha : Execution.event list;  (** the P-only execution from the base *)
  cfg : 's Config.t;  (** the configuration [C·alpha] *)
  q_pair : Pset.t;  (** two processes, bivalent from [cfg] *)
  cover : Pset.t;  (** [P − q_pair], covering distinct registers in [cfg] *)
}

(** [lemma4 t c p] — Zhu's Lemma 4 by induction on [|p|], including the
    pigeonhole argument over covered register sets and the hidden-write
    insertion of the process removed by Lemma 1.  Requires [|p| >= 2] and
    [p] bivalent from [c] (checked). *)
val lemma4 : 's Valency.t -> 's Config.t -> Pset.t -> 's nice

(** Everything {!theorem1} established, with the raw material to audit it. *)
type certificate = {
  protocol_name : string;
  n : int;  (** number of processes *)
  inputs : Value.t array;  (** the bivalent initial assignment used *)
  schedule : Execution.event list;  (** full witness schedule from the initial configuration *)
  trace : Execution.trace;  (** its trace *)
  registers_written : Action.reg list;  (** distinct registers written in [trace] *)
  covered_registers : Action.reg list;  (** the distinct registers covered at the final nice configuration *)
  fresh_register : Action.reg;  (** the uncovered register the Lemma-2 process was forced to write *)
  oracle_searches : int;  (** valency searches spent *)
}

(** [theorem1 t] runs the whole construction from the canonical bivalent
    initial configuration (p0 has input 0, p1 input 1, the rest 0) and
    returns a certificate with
    [List.length registers_written >= n - 1].
    @raise Valency.Horizon_exceeded if the oracle horizon is too small.
    @raise Invalid_argument if the protocol has fewer than 2 processes. *)
val theorem1 : 's Valency.t -> certificate

(** How far a stopped construction got: the horizon it was using and the
    oracle work it had spent. *)
type progress = {
  horizon : int;
  searches : int;
  nodes_expanded : int;
}

(** Why a construction stopped short of a certificate. *)
type stop =
  | Out_of_budget of Budget.breach  (** the {!Budget} guard tripped *)
  | Horizon_wall of string  (** the oracle horizon could not verify a step *)

type outcome =
  | Complete of certificate
  | Partial of stop * progress

(** [theorem1_outcome t] is {!theorem1} with structured degradation: a
    tripped {!Budget} or an exhausted horizon yields [Partial] (logged via
    [Engine_log]) instead of an exception.  [Invalid_argument] (caller
    errors) still raises. *)
val theorem1_outcome : 's Valency.t -> outcome

(** [theorem1_escalate ?budget ?retries proto ~initial_horizon] is the
    adaptive wrapper: on [Horizon_wall] the horizon doubles (geometric
    backoff, a fresh oracle per attempt) up to [retries] times (default 4).
    [budget] (default unlimited) spans {e all} attempts, so a capped run
    degrades to [Partial (Out_of_budget _, _)] rather than hanging.
    Returns the outcome and the last horizon tried. *)
val theorem1_escalate :
  ?budget:Budget.t ->
  ?retries:int ->
  's Protocol.t ->
  initial_horizon:int ->
  outcome * int

(** [theorem1_auto proto ~initial_horizon ~max_horizon] runs {!theorem1}
    with iterative deepening: on [Horizon_exceeded] the horizon doubles (a
    fresh oracle each time) until the construction succeeds or
    [max_horizon] is passed (in which case [Horizon_exceeded] is
    re-raised).  Returns the certificate and the horizon that sufficed.
    The exception-free equivalent is {!theorem1_escalate}. *)
val theorem1_auto :
  's Protocol.t -> initial_horizon:int -> max_horizon:int -> certificate * int

val pp_stop : Format.formatter -> stop -> unit
val pp_progress : Format.formatter -> progress -> unit

(** [verify cert proto] independently replays the certificate's schedule on
    a fresh initial configuration of [proto] and re-checks the register
    count.  Returns an error message on any mismatch. *)
val verify : certificate -> 's Protocol.t -> (unit, string) result

(** Human-readable rendering of a certificate: the space bound, the
    witness execution length and the registers it writes. *)
val pp_certificate : Format.formatter -> certificate -> unit
