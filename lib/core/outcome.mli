(** Engine-independent outcome summaries.

    The repo now carries two independent lower-bound engines — the Lemma
    1–4 construction ({!Theorem}) and the revisionist-simulation engine
    ([Ts_revisionist.Revisionist]) — and the cross-validation layer
    ([Ts_analysis.Crosscheck]) needs to diff their answers without caring
    which machinery produced them.  A {!summary} is the common currency:
    the claimed register-count bound, the witness shape, and how much
    search the engine spent.  Each engine provides a converter into this
    type; {!agree} is the comparison both the CLI's [--engine both] mode
    and the crosscheck gate rely on. *)

open Ts_model

(** Which lower-bound engine produced a result. *)
type engine =
  | Lemmas  (** the Lemma 1–4 / Theorem 1 construction in {!Theorem} *)
  | Revisionist  (** the revisionist-simulation engine, [Ts_revisionist] *)

val engine_name : engine -> string

(** [engine_of_name s] inverts {!engine_name} ("lemmas"/"revisionist"). *)
val engine_of_name : string -> engine option

(** What an engine established, reduced to the comparable facts. *)
type summary = {
  engine : engine;
  protocol_name : string;
  n : int;  (** processes in the protocol instance *)
  excluded : int list;  (** processes the construction never schedules (crash plans); [[]] for both engines' fault-free runs *)
  bound : int;  (** claimed space lower bound: distinct registers the witness writes *)
  registers_written : Action.reg list;  (** distinct registers the witness trace writes, sorted *)
  schedule_length : int;
  search_effort : int;  (** engine-specific work counter: oracle searches (lemmas) or revisions (revisionist) *)
}

(** Summarize a Theorem-1 certificate. *)
val of_theorem : Theorem.certificate -> summary

(** [agree a b] is [Ok bound] when the two summaries make the same claim
    about the same protocol instance: equal protocol name, [n], excluded
    set and bound, with each witness writing at least [bound] distinct
    registers.  Any mismatch yields a human-readable divergence reason.
    Witness {e schedules} are allowed to differ — the engines construct
    different executions — so only the claims are compared. *)
val agree : summary -> summary -> (int, string) result

val pp_summary : Format.formatter -> summary -> unit
