(** The engine's log source.

    The adversary constructions are search procedures; when a horizon is
    too small it helps to see how far they got.  Enable with:

    {[
      Logs.set_reporter (Logs.format_reporter ());
      Logs.Src.set_level Engine_log.src (Some Logs.Debug)
    ]}

    The log is unified with the observability stream: while span tracing
    is armed ({!Ts_obs.Obs.start_tracing}), every message sent through
    {!Log} is additionally recorded as an {!Ts_obs.Obs.Instant} with
    category ["log.<level>"], so engine-log lines appear on the same
    Chrome-trace timeline as the profiler's spans.  The installed Logs
    reporter sees every message regardless. *)

val src : Logs.src

(** The tapped logger.  [Log.msg] and the level shortcuts ([app], [err],
    [warn], [info], [debug]) feed both the Logs reporter and, when armed,
    the observability stream; [kmsg] and the [on_error] helpers delegate
    to the plain source logger. *)
module Log : Logs.LOG
