(** Resource guards for the search engine.

    The adversary constructions are unbounded searches over infinite-state
    protocols: an undersized horizon, a pathological protocol, or an
    over-ambitious [n] can otherwise hang a run or eat the heap.  A
    [Budget.t] is a shared guard — wall-clock deadline, search-node cap,
    live-heap high-water mark — that every search loop charges as it
    expands nodes.  When a limit trips, the loop raises {!Exhausted}; the
    engine's public entry points catch it and return a structured
    {e partial} outcome recording how far they got, instead of hanging or
    surfacing a backtrace.

    One budget is meant to span a whole run: the valency oracle, the
    lemma walks and the checker all charge the same counter (an [Atomic],
    so domain-parallel searches charge it safely), which is what makes
    "this invocation gets 10 seconds and 5M nodes, total" enforceable. *)

type breach =
  | Deadline of float  (** the wall-clock allowance, in seconds *)
  | Node_cap of int  (** the search-node allowance *)
  | Heap_cap of int  (** the live major-heap allowance, in words *)

exception Exhausted of breach

type t

(** The no-op guard: never trips, charges cost one branch. *)
val unlimited : t

(** [create ?deadline ?max_nodes ?max_heap_words ()] starts the clock now:
    [deadline] is seconds of wall-clock from this call.  Omitted limits
    don't apply.
    @raise Invalid_argument if a given limit is not positive. *)
val create : ?deadline:float -> ?max_nodes:int -> ?max_heap_words:int -> unit -> t

val is_unlimited : t -> bool

(** Search nodes charged so far. *)
val spent : t -> int

(** [charge t k] adds [k] search nodes and raises {!Exhausted} if any limit
    is now breached.  The node cap is checked on every call; the clock and
    the heap are sampled every few hundred nodes. *)
val charge : t -> int -> unit

(** [check t] re-checks every limit without charging.  For loops whose unit
    of work is not node expansion (lemma walks, retry loops). *)
val check : t -> unit

(** The first limit currently breached, without raising. *)
val breached : t -> breach option

(** Human-readable rendering of a breach, naming the limit that tripped. *)
val pp_breach : Format.formatter -> breach -> unit
