open Ts_model

type violation =
  | Agreement_violation of { inputs : Value.t array; schedule : Execution.event list; values : Value.t list }
  | Validity_violation of { inputs : Value.t array; schedule : Execution.event list; value : Value.t }
  | Solo_stuck of { inputs : Value.t array; schedule : Execution.event list; pid : int }

type stats = {
  configs_explored : int;
  truncated : bool;
  deepest : int;
  table_hits : int;
  table_misses : int;
  peak_frontier : int;
  solo_cache_hits : int;
  solo_cache_misses : int;
}

let empty_stats =
  {
    configs_explored = 0;
    truncated = false;
    deepest = 0;
    table_hits = 0;
    table_misses = 0;
    peak_frontier = 0;
    solo_cache_hits = 0;
    solo_cache_misses = 0;
  }

let merge_stats a b =
  {
    configs_explored = a.configs_explored + b.configs_explored;
    truncated = a.truncated || b.truncated;
    deepest = max a.deepest b.deepest;
    table_hits = a.table_hits + b.table_hits;
    table_misses = a.table_misses + b.table_misses;
    peak_frontier = max a.peak_frontier b.peak_frontier;
    solo_cache_hits = a.solo_cache_hits + b.solo_cache_hits;
    solo_cache_misses = a.solo_cache_misses + b.solo_cache_misses;
  }

type result = {
  verdict : (unit, violation) Stdlib.result;
  stats : stats;
}

(* Mutable per-search counter block, folded into a [stats] at the end. *)
type counters = {
  mutable explored : int;
  mutable trunc : bool;
  mutable deep : int;
  mutable hits : int;
  mutable misses : int;
  mutable peak : int;
  mutable solo_hits : int;
  mutable solo_misses : int;
}

let fresh_counters () =
  { explored = 0; trunc = false; deep = 0; hits = 0; misses = 0; peak = 0;
    solo_hits = 0; solo_misses = 0 }

let stats_of_counters c =
  {
    configs_explored = c.explored;
    truncated = c.trunc;
    deepest = c.deep;
    table_hits = c.hits;
    table_misses = c.misses;
    peak_frontier = c.peak;
    solo_cache_hits = c.solo_hits;
    solo_cache_misses = c.solo_misses;
  }

(* Can [p], running alone from [cfg], decide within [budget] steps for some
   resolution of its coin flips?  BFS over coin outcomes with a visited set
   (BFS + visited is complete for "reachable within budget").  Both the
   memo and the visited table key by the packed configuration. *)
let solo_can_decide proto pk cfg p ~budget ~cache ~counters =
  let key = Ckey.Salted.make (Ckey.pack pk cfg) p in
  match Ckey.Salted_tbl.find_opt cache key with
  | Some r ->
    counters.solo_hits <- counters.solo_hits + 1;
    r
  | None ->
    counters.solo_misses <- counters.solo_misses + 1;
    let visited = Ckey.Tbl.create 64 in
    let q = Queue.create () in
    Queue.add (cfg, 0) q;
    Ckey.Tbl.replace visited (Ckey.pack pk cfg) ();
    let found = ref false in
    (try
       while not (Queue.is_empty q) do
         let cfg, depth = Queue.pop q in
         (match Config.has_decided cfg p with
          | Some _ ->
            found := true;
            raise Exit
          | None -> ());
         if depth < budget then
           let push cfg' =
             let k = Ckey.pack pk cfg' in
             if not (Ckey.Tbl.mem visited k) then begin
               Ckey.Tbl.replace visited k ();
               Queue.add (cfg', depth + 1) q
             end
           in
           match Config.poised proto cfg p with
           | None -> ()
           | Some Action.Flip ->
             push (fst (Config.step proto cfg p ~coin:(Some true)));
             push (fst (Config.step proto cfg p ~coin:(Some false)))
           | Some _ -> push (fst (Config.step proto cfg p ~coin:None))
       done
     with Exit -> ());
    Ckey.Salted_tbl.replace cache key !found;
    !found

exception Found of violation

(* One input vector's search, self-contained: its own packer, tables,
   budget and counters.  This is the unit of parallelism — runs of
   different input vectors share nothing, so fanning them out over domains
   produces bit-identical verdicts and stats. *)
let check_from proto ~k ~inputs ~max_configs ~max_depth ~solo_budget ~check_solo =
  let pk = Ckey.packer proto in
  let counters = fresh_counters () in
  (* sized to the budget, not a fixed large block: small searches (few
     dozen configurations per input vector) shouldn't pay for 4096-bucket
     tables they never fill *)
  let table_size = max 64 (min 4096 (max_configs / 8)) in
  let solo_cache = Ckey.Salted_tbl.create (if check_solo then table_size else 1) in
  let visited = Ckey.Tbl.create table_size in
  let cfg0 = Config.initial proto ~inputs in
  (* queue holds (config, reversed schedule, depth) *)
  let q = Queue.create () in
  Queue.add (cfg0, [], 0) q;
  Ckey.Tbl.replace visited (Ckey.pack pk cfg0) ();
  counters.misses <- 1;
  counters.peak <- 1;
  let check cfg rev_sched =
    let schedule () = List.rev rev_sched in
    let decided = Config.decided_values cfg in
    List.iter
      (fun v ->
        if not (Array.exists (Value.equal v) inputs) then
          raise (Found (Validity_violation { inputs; schedule = schedule (); value = v })))
      decided;
    if List.length decided > k then
      raise (Found (Agreement_violation { inputs; schedule = schedule (); values = decided }));
    if check_solo then
      for p = 0 to proto.Protocol.num_processes - 1 do
        if Config.has_decided cfg p = None
           && not
                (solo_can_decide proto pk cfg p ~budget:solo_budget ~cache:solo_cache
                   ~counters)
        then raise (Found (Solo_stuck { inputs; schedule = schedule (); pid = p }))
      done
  in
  let verdict =
    try
      while not (Queue.is_empty q) do
        let cfg, rev_sched, depth = Queue.pop q in
        counters.explored <- counters.explored + 1;
        if depth > counters.deep then counters.deep <- depth;
        check cfg rev_sched;
        if depth >= max_depth || counters.explored >= max_configs then
          counters.trunc <- true
        else begin
          (* inline successor expansion: no intermediate list *)
          let push e cfg' =
            let key = Ckey.pack pk cfg' in
            if Ckey.Tbl.mem visited key then counters.hits <- counters.hits + 1
            else begin
              counters.misses <- counters.misses + 1;
              Ckey.Tbl.replace visited key ();
              Queue.add (cfg', e :: rev_sched, depth + 1) q
            end
          in
          for p = 0 to proto.Protocol.num_processes - 1 do
            match Config.poised proto cfg p with
            | None -> ()
            | Some Action.Flip ->
              push (Execution.flip p true) (fst (Config.step proto cfg p ~coin:(Some true)));
              push (Execution.flip p false) (fst (Config.step proto cfg p ~coin:(Some false)))
            | Some _ -> push (Execution.ev p) (fst (Config.step proto cfg p ~coin:None))
          done;
          let frontier = Queue.length q in
          if frontier > counters.peak then counters.peak <- frontier
        end
      done;
      Ok ()
    with Found v -> Error v
  in
  { verdict; stats = stats_of_counters counters }

let check_set_agreement ?(domains = 1) ~k proto ~inputs_list ~max_configs ~max_depth
    ~solo_budget ~check_solo =
  let run inputs =
    check_from proto ~k ~inputs ~max_configs ~max_depth ~solo_budget ~check_solo
  in
  let results =
    if domains <= 1 then begin
      (* serial: stop after the first violating input vector *)
      let rec go acc = function
        | [] -> List.rev acc
        | inputs :: rest ->
          let r = run inputs in
          (match r.verdict with
           | Error _ -> List.rev (r :: acc)
           | Ok () -> go (r :: acc) rest)
      in
      go [] inputs_list
    end
    else Par.map_list ~domains run inputs_list
  in
  (* Fold results up to and including the first violation (in input order).
     The parallel path computes results for every vector but reports the
     same prefix, so both paths return identical verdicts and stats. *)
  let rec fold acc = function
    | [] -> { verdict = Ok (); stats = acc }
    | r :: rest ->
      let acc = merge_stats acc r.stats in
      (match r.verdict with
       | Error _ -> { r with stats = acc }
       | Ok () -> fold acc rest)
  in
  fold empty_stats results

let check_consensus ?domains proto = check_set_agreement ?domains ~k:1 proto

let binary_inputs n =
  let rec go k =
    if k = 0 then [ [] ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun tl -> [ 0 :: tl; 1 :: tl ]) rest
  in
  List.map (fun bits -> Array.of_list (List.map Value.int bits)) (go n)

let pp_stats ppf s =
  Fmt.pf ppf
    "%d configs (deepest %d%s), frontier peak %d, table %d/%d hit/miss, solo cache %d/%d"
    s.configs_explored s.deepest
    (if s.truncated then ", truncated" else ", exhaustive")
    s.peak_frontier s.table_hits s.table_misses s.solo_cache_hits s.solo_cache_misses

let pp_violation ppf = function
  | Agreement_violation { inputs; values; schedule } ->
    Fmt.pf ppf "agreement violated: inputs=[%a] decided {%a} after %d steps"
      Fmt.(array ~sep:(any ";") Value.pp) inputs
      Fmt.(list ~sep:comma Value.pp) values
      (List.length schedule)
  | Validity_violation { inputs; value; schedule } ->
    Fmt.pf ppf "validity violated: inputs=[%a] decided %a after %d steps"
      Fmt.(array ~sep:(any ";") Value.pp) inputs
      Value.pp value (List.length schedule)
  | Solo_stuck { inputs; pid; schedule } ->
    Fmt.pf ppf
      "solo termination violated: inputs=[%a], p%d cannot decide solo after %d prefix steps"
      Fmt.(array ~sep:(any ";") Value.pp) inputs
      pid (List.length schedule)
