open Ts_model
open Ts_core
module Obs = Ts_obs.Obs

type violation =
  | Agreement_violation of { inputs : Value.t array; schedule : Execution.event list; values : Value.t list }
  | Validity_violation of { inputs : Value.t array; schedule : Execution.event list; value : Value.t }
  | Solo_stuck of { inputs : Value.t array; schedule : Execution.event list; pid : int }
  | Crash_stuck of {
      inputs : Value.t array;
      schedule : Execution.event list;
      crashed : int list;
      survivors : int list;
    }

type stats = {
  configs_explored : int;
  truncated : bool;
  deepest : int;
  table_hits : int;
  table_misses : int;
  peak_frontier : int;
  solo_cache_hits : int;
  solo_cache_misses : int;
}

let empty_stats =
  {
    configs_explored = 0;
    truncated = false;
    deepest = 0;
    table_hits = 0;
    table_misses = 0;
    peak_frontier = 0;
    solo_cache_hits = 0;
    solo_cache_misses = 0;
  }

let merge_stats a b =
  {
    configs_explored = a.configs_explored + b.configs_explored;
    truncated = a.truncated || b.truncated;
    deepest = max a.deepest b.deepest;
    table_hits = a.table_hits + b.table_hits;
    table_misses = a.table_misses + b.table_misses;
    peak_frontier = max a.peak_frontier b.peak_frontier;
    solo_cache_hits = a.solo_cache_hits + b.solo_cache_hits;
    solo_cache_misses = a.solo_cache_misses + b.solo_cache_misses;
  }

type result = {
  verdict : (unit, violation) Stdlib.result;
  stats : stats;
  stopped : Budget.breach option;
  worker_errors : (int * string) list;
}

(* Mutable per-search counter block, folded into a [stats] at the end. *)
type counters = {
  mutable explored : int;
  mutable trunc : bool;
  mutable deep : int;
  mutable hits : int;
  mutable misses : int;
  mutable peak : int;
  mutable solo_hits : int;
  mutable solo_misses : int;
}

let fresh_counters () =
  { explored = 0; trunc = false; deep = 0; hits = 0; misses = 0; peak = 0;
    solo_hits = 0; solo_misses = 0 }

let stats_of_counters c =
  {
    configs_explored = c.explored;
    truncated = c.trunc;
    deepest = c.deep;
    table_hits = c.hits;
    table_misses = c.misses;
    peak_frontier = c.peak;
    solo_cache_hits = c.solo_hits;
    solo_cache_misses = c.solo_misses;
  }

(* Can some process of [ps], with only (undecided) members of [ps] taking
   steps from [cfg], decide within [budget] steps for some resolution of
   the coin flips?  BFS over schedules with a visited set (BFS + visited is
   complete for "reachable within budget").  Both the memo and the visited
   table key by the packed configuration, salted with the participant
   mask.  [Pset.singleton p] gives the classic solo-termination probe;
   larger sets give the survivor-group probes of the t-resilience check. *)
let group_can_decide proto pk cfg ps ~budget ~guard ~cache ~cache_loc ~counters =
  let key = Ckey.Salted.make (Ckey.pack pk cfg) (Pset.to_mask ps) in
  Trace.access ~loc:cache_loc Trace.Read ~atomic:false;
  match Ckey.Salted_tbl.find_opt cache key with
  | Some r ->
    counters.solo_hits <- counters.solo_hits + 1;
    r
  | None ->
    counters.solo_misses <- counters.solo_misses + 1;
    let visited = Ckey.Tbl.create 64 in
    let q = Queue.create () in
    Queue.add (cfg, 0) q;
    Ckey.Tbl.replace visited (Ckey.pack pk cfg) ();
    let found = ref false in
    (try
       while not (Queue.is_empty q) do
         let cfg, depth = Queue.pop q in
         Budget.charge guard 1;
         if Pset.exists (fun p -> Config.has_decided cfg p <> None) ps then begin
           found := true;
           raise Exit
         end;
         if depth < budget then
           let push cfg' =
             let k = Ckey.pack pk cfg' in
             if not (Ckey.Tbl.mem visited k) then begin
               Ckey.Tbl.replace visited k ();
               Queue.add (cfg', depth + 1) q
             end
           in
           Pset.iter
             (fun p ->
               match Config.poised proto cfg p with
               | None -> ()
               | Some Action.Flip ->
                 push (fst (Config.step proto cfg p ~coin:(Some true)));
                 push (fst (Config.step proto cfg p ~coin:(Some false)))
               | Some _ -> push (fst (Config.step proto cfg p ~coin:None)))
             ps
       done
     with Exit -> ());
    Trace.access ~loc:cache_loc Trace.Write ~atomic:false;
    Ckey.Salted_tbl.replace cache key !found;
    !found

let solo_can_decide proto pk cfg p ~budget ~guard ~cache ~cache_loc ~counters =
  group_can_decide proto pk cfg (Pset.singleton p) ~budget ~guard ~cache ~cache_loc
    ~counters

exception Found of violation

(* Close one finished per-vector search into the profiler: span attributes
   for the phase table, counter increments for the bench metrics blob.
   The span is entered by [observed_bfs] around [bfs_reachable]. *)
let observe_vector sp counters verdict =
  Obs.set_int sp "configs" counters.explored;
  Obs.set_int sp "deepest" counters.deep;
  Obs.set_bool sp "truncated" counters.trunc;
  Obs.set_bool sp "violation" (Result.is_error verdict);
  Obs.close sp;
  Obs.Metrics.incr "explore.vectors";
  Obs.Metrics.incr ~by:counters.explored "explore.configs_explored";
  Obs.Metrics.incr ~by:counters.hits "explore.table_hits";
  Obs.Metrics.incr ~by:counters.misses "explore.table_misses";
  Obs.Metrics.incr ~by:counters.solo_hits "explore.solo_cache_hits";
  Obs.Metrics.incr ~by:counters.solo_misses "explore.solo_cache_misses";
  Obs.Metrics.gauge_max "explore.peak_frontier" counters.peak;
  Obs.Metrics.gauge_max "explore.deepest" counters.deep

(* The shared BFS over one input vector's reachable configurations,
   self-contained: its own packer, tables, budget and counters.  [examine]
   is called on every dequeued configuration and raises [Found] to stop
   with a violation.  This is the unit of parallelism — runs of different
   input vectors share nothing, so fanning them out over domains produces
   bit-identical verdicts and stats. *)
let bfs_reachable proto ~inputs ~max_configs ~max_depth ~guard ~counters ~examine =
  let pk = Ckey.packer proto in
  (* sized to the budget, not a fixed large block: small searches (few
     dozen configurations per input vector) shouldn't pay for 4096-bucket
     tables they never fill *)
  let table_size = max 64 (min 4096 (max_configs / 8)) in
  let visited = Ckey.Tbl.create table_size in
  (* each search owns its visited table; a distinct location per table
     lets the race detector prove no cross-domain sharing ever happens *)
  let visited_loc = Trace.fresh_loc "explore.visited" in
  let cfg0 = Config.initial proto ~inputs in
  (* queue holds (config, reversed schedule, depth) *)
  let q = Queue.create () in
  Queue.add (cfg0, [], 0) q;
  Trace.access ~loc:visited_loc Trace.Write ~atomic:false;
  Ckey.Tbl.replace visited (Ckey.pack pk cfg0) ();
  counters.misses <- 1;
  counters.peak <- 1;
  try
    while not (Queue.is_empty q) do
      let cfg, rev_sched, depth = Queue.pop q in
      counters.explored <- counters.explored + 1;
      Budget.charge guard 1;
      if depth > counters.deep then counters.deep <- depth;
      examine pk cfg rev_sched;
      if depth >= max_depth || counters.explored >= max_configs then
        counters.trunc <- true
      else begin
        (* inline successor expansion: no intermediate list *)
        let push e cfg' =
          let key = Ckey.pack pk cfg' in
          Trace.access ~loc:visited_loc Trace.Read ~atomic:false;
          if Ckey.Tbl.mem visited key then counters.hits <- counters.hits + 1
          else begin
            counters.misses <- counters.misses + 1;
            Trace.access ~loc:visited_loc Trace.Write ~atomic:false;
            Ckey.Tbl.replace visited key ();
            Queue.add (cfg', e :: rev_sched, depth + 1) q
          end
        in
        for p = 0 to proto.Protocol.num_processes - 1 do
          match Config.poised proto cfg p with
          | None -> ()
          | Some Action.Flip ->
            push (Execution.flip p true) (fst (Config.step proto cfg p ~coin:(Some true)));
            push (Execution.flip p false) (fst (Config.step proto cfg p ~coin:(Some false)))
          | Some _ -> push (Execution.ev p) (fst (Config.step proto cfg p ~coin:None))
        done;
        let frontier = Queue.length q in
        if frontier > counters.peak then counters.peak <- frontier
      end
    done;
    Ok (), None
  with
  | Found v -> Error v, None
  | Budget.Exhausted b ->
    counters.trunc <- true;
    Ok (), Some b

(* [bfs_reachable] wrapped in an ["explore.vector"] span; a raising
   protocol callback must not leak the span (its close runs on this
   domain's parent stack). *)
let observed_bfs proto ~inputs ~max_configs ~max_depth ~guard ~counters ~examine =
  let sp = Obs.enter ~cat:"explore" "explore.vector" in
  match bfs_reachable proto ~inputs ~max_configs ~max_depth ~guard ~counters ~examine with
  | verdict, stopped ->
    observe_vector sp counters verdict;
    verdict, stopped
  | exception e ->
    Obs.close sp;
    raise e

(* One input vector's consensus-property search. *)
let check_from proto ~k ~inputs ~max_configs ~max_depth ~solo_budget ~check_solo ~guard =
  let counters = fresh_counters () in
  let table_size = max 64 (min 4096 (max_configs / 8)) in
  let solo_cache = Ckey.Salted_tbl.create (if check_solo then table_size else 1) in
  let solo_loc = Trace.fresh_loc "explore.solo_cache" in
  let examine pk cfg rev_sched =
    let schedule () = List.rev rev_sched in
    let decided = Config.decided_values cfg in
    List.iter
      (fun v ->
        if not (Array.exists (Value.equal v) inputs) then
          raise (Found (Validity_violation { inputs; schedule = schedule (); value = v })))
      decided;
    if List.length decided > k then
      raise (Found (Agreement_violation { inputs; schedule = schedule (); values = decided }));
    if check_solo then
      for p = 0 to proto.Protocol.num_processes - 1 do
        if Config.has_decided cfg p = None
           && not
                (solo_can_decide proto pk cfg p ~budget:solo_budget ~guard
                   ~cache:solo_cache ~cache_loc:solo_loc ~counters)
        then raise (Found (Solo_stuck { inputs; schedule = schedule (); pid = p }))
      done
  in
  let verdict, stopped =
    observed_bfs proto ~inputs ~max_configs ~max_depth ~guard ~counters ~examine
  in
  { verdict; stats = stats_of_counters counters; stopped; worker_errors = [] }

(* Fan one self-contained per-vector search out over the input vectors and
   reassemble.  The fold walks results in input order up to and including
   the first violation, so the parallel path (which computes results for
   every vector) reports exactly what the serial early-exit reports.  With
   [domains > 1] a crashed worker — a raising protocol callback, say —
   surfaces as a per-vector entry in [worker_errors] while completed
   sibling verdicts survive; serially the exception propagates as usual. *)
let run_vectors ~domains run inputs_list =
  let results =
    if domains <= 1 then begin
      (* serial: stop after the first violating input vector *)
      let rec go acc = function
        | [] -> List.rev acc
        | inputs :: rest ->
          let r = run inputs in
          (match r.verdict with
           | Error _ -> List.rev (Ok r :: acc)
           | Ok () -> go (Ok r :: acc) rest)
      in
      go [] inputs_list
    end
    else Par.map_list_outcomes ~domains run inputs_list
  in
  let rec fold acc stopped errs idx = function
    | [] -> { verdict = Ok (); stats = acc; stopped; worker_errors = List.rev errs }
    | Error e :: rest ->
      fold acc stopped ((idx, Printexc.to_string e) :: errs) (idx + 1) rest
    | Ok r :: rest ->
      let acc = merge_stats acc r.stats in
      let stopped = if stopped = None then r.stopped else stopped in
      (match r.verdict with
       | Error _ -> { r with stats = acc; stopped; worker_errors = List.rev errs }
       | Ok () -> fold acc stopped errs (idx + 1) rest)
  in
  fold empty_stats None [] 0 results

let check_set_agreement ?(domains = 1) ?(budget = Budget.unlimited) ~k proto
    ~inputs_list ~max_configs ~max_depth ~solo_budget ~check_solo =
  run_vectors ~domains
    (fun inputs ->
      check_from proto ~k ~inputs ~max_configs ~max_depth ~solo_budget ~check_solo
        ~guard:budget)
    inputs_list

let check_consensus ?domains ?budget proto =
  check_set_agreement ?domains ?budget ~k:1 proto

(* --- crash-fault resilience ------------------------------------------- *)

(* All process subsets of size [t], as Pset masks in increasing mask
   order.  n <= 62 (Pset's representation bound), and t-resilience checks
   are meant for small n, so plain mask enumeration is fine. *)
let subsets_of_size n t =
  let rec go mask acc =
    if mask < 0 then acc
    else
      go (mask - 1)
        (let rec popcount m c = if m = 0 then c else popcount (m land (m - 1)) (c + 1) in
         if popcount mask 0 = t then
           Pset.filter (fun p -> mask land (1 lsl p) <> 0) (Pset.all n) :: acc
         else acc)
  in
  go ((1 lsl n) - 1) []

(* One input vector's t-resilience search: from every reachable
   configuration, after crash-stopping any set of exactly [t] processes
   (smaller crash sets only enlarge the survivor group, and a group that
   contains a live one is live), the surviving group must still be able to
   reach a decision on its own within [solo_budget] steps. *)
let check_resilient_from proto ~t ~inputs ~max_configs ~max_depth ~solo_budget ~guard =
  let n = proto.Protocol.num_processes in
  if t < 0 || t >= n then
    invalid_arg "Explore.check_t_resilient: need 0 <= t <= n-1";
  let crash_sets = subsets_of_size n t in
  let counters = fresh_counters () in
  let table_size = max 64 (min 4096 (max_configs / 8)) in
  let cache = Ckey.Salted_tbl.create table_size in
  let cache_loc = Trace.fresh_loc "explore.group_cache" in
  let examine pk cfg rev_sched =
    List.iter
      (fun f ->
        let survivors = Pset.diff (Pset.all n) f in
        if not (group_can_decide proto pk cfg survivors ~budget:solo_budget ~guard
                  ~cache ~cache_loc ~counters)
        then
          raise
            (Found
               (Crash_stuck
                  {
                    inputs;
                    schedule = List.rev rev_sched;
                    crashed = Pset.to_list f;
                    survivors = Pset.to_list survivors;
                  })))
      crash_sets
  in
  let verdict, stopped =
    observed_bfs proto ~inputs ~max_configs ~max_depth ~guard ~counters ~examine
  in
  { verdict; stats = stats_of_counters counters; stopped; worker_errors = [] }

let check_t_resilient ?(domains = 1) ?(budget = Budget.unlimited) ~t proto ~inputs_list
    ~max_configs ~max_depth ~solo_budget =
  run_vectors ~domains
    (fun inputs ->
      check_resilient_from proto ~t ~inputs ~max_configs ~max_depth ~solo_budget
        ~guard:budget)
    inputs_list

(* --- cluster-facing hooks ---------------------------------------------- *)

(* Successor enumeration in exactly the order [bfs_reachable] inlines it:
   pid ascending, a Flip resolved heads before tails.  The distributed
   engine's parallel==serial certification leans on this order being the
   one serial insertion order, so it is exported as a named hook rather
   than re-derived (and possibly re-derived differently) in lib/cluster. *)
let successors proto cfg =
  let acc = ref [] in
  for p = proto.Protocol.num_processes - 1 downto 0 do
    match Config.poised proto cfg p with
    | None -> ()
    | Some Action.Flip ->
      acc :=
        (Execution.flip p true, fst (Config.step proto cfg p ~coin:(Some true)))
        :: (Execution.flip p false, fst (Config.step proto cfg p ~coin:(Some false)))
        :: !acc
    | Some _ ->
      acc := (Execution.ev p, fst (Config.step proto cfg p ~coin:None)) :: !acc
  done;
  !acc

(* One externally-materialized configuration put through the same property
   checks as a [bfs_reachable] examine, with the same probe order and an
   exact count of the solo/group probes run (every probe is a cache miss:
   probe keys are (config, mask) pairs and a deduplicated search examines
   each configuration once).  The cache is still consulted so the code
   path — including its counter discipline — is the serial one. *)
type 's examiner = {
  ex_run : 's Config.t -> Execution.event list -> violation option * int;
}

let consensus_examiner proto ~k ~inputs ~solo_budget ~check_solo =
  let pk = Ckey.packer proto in
  let solo_cache = Ckey.Salted_tbl.create 256 in
  let solo_loc = Trace.fresh_loc "explore.cluster_solo_cache" in
  let run cfg schedule =
    let counters = fresh_counters () in
    let check () =
      let decided = Config.decided_values cfg in
      List.iter
        (fun v ->
          if not (Array.exists (Value.equal v) inputs) then
            raise (Found (Validity_violation { inputs; schedule; value = v })))
        decided;
      if List.length decided > k then
        raise (Found (Agreement_violation { inputs; schedule; values = decided }));
      if check_solo then
        for p = 0 to proto.Protocol.num_processes - 1 do
          if Config.has_decided cfg p = None
             && not
                  (solo_can_decide proto pk cfg p ~budget:solo_budget
                     ~guard:Budget.unlimited ~cache:solo_cache ~cache_loc:solo_loc
                     ~counters)
          then raise (Found (Solo_stuck { inputs; schedule; pid = p }))
        done
    in
    match check () with
    | () -> (None, counters.solo_misses)
    | exception Found v -> (Some v, counters.solo_misses)
  in
  { ex_run = run }

let resilience_examiner proto ~t ~inputs ~solo_budget =
  let n = proto.Protocol.num_processes in
  if t < 0 || t >= n then
    invalid_arg "Explore.resilience_examiner: need 0 <= t <= n-1";
  let pk = Ckey.packer proto in
  let crash_sets = subsets_of_size n t in
  let cache = Ckey.Salted_tbl.create 256 in
  let cache_loc = Trace.fresh_loc "explore.cluster_group_cache" in
  let run cfg schedule =
    let counters = fresh_counters () in
    let check () =
      List.iter
        (fun f ->
          let survivors = Pset.diff (Pset.all n) f in
          if not
               (group_can_decide proto pk cfg survivors ~budget:solo_budget
                  ~guard:Budget.unlimited ~cache ~cache_loc ~counters)
          then
            raise
              (Found
                 (Crash_stuck
                    {
                      inputs;
                      schedule;
                      crashed = Pset.to_list f;
                      survivors = Pset.to_list survivors;
                    })))
        crash_sets
    in
    match check () with
    | () -> (None, counters.solo_misses)
    | exception Found v -> (Some v, counters.solo_misses)
  in
  { ex_run = run }

let examine ex cfg ~schedule = ex.ex_run cfg schedule

(* --- counterexample replay -------------------------------------------- *)

let values_equal xs ys =
  List.length xs = List.length ys && List.for_all2 Value.equal xs ys

(* A reported violation must survive an independent replay: re-apply its
   schedule step by step ([Execution.apply] is [Config.step] folded) from
   the initial configuration and re-check the claimed property failure. *)
let replay ?(solo_budget = 300) proto violation =
  Obs.with_span ~cat:"explore" "explore.replay" @@ fun _sp ->
  let apply inputs schedule =
    match Execution.apply proto (Config.initial proto ~inputs) schedule with
    | cfg, _ -> Ok cfg
    | exception exn -> Error ("schedule does not replay: " ^ Printexc.to_string exn)
  in
  let stuck_group inputs schedule group what =
    Result.bind (apply inputs schedule) (fun cfg ->
        match Pset.to_list (Pset.filter (fun p -> Config.has_decided cfg p <> None) group) with
        | p :: _ -> Error (Printf.sprintf "p%d decided on replay; %s not stuck" p what)
        | [] ->
          let pk = Ckey.packer proto in
          let cache = Ckey.Salted_tbl.create 64 in
          let cache_loc = Trace.fresh_loc "explore.replay_cache" in
          let counters = fresh_counters () in
          if group_can_decide proto pk cfg group ~budget:solo_budget
               ~guard:Budget.unlimited ~cache ~cache_loc ~counters
          then Error (what ^ " can decide on replay")
          else Ok ())
  in
  match violation with
  | Agreement_violation { inputs; schedule; values } ->
    Result.bind (apply inputs schedule) (fun cfg ->
        if values_equal (Config.decided_values cfg) values then Ok ()
        else Error "replayed configuration decides a different value set")
  | Validity_violation { inputs; schedule; value } ->
    Result.bind (apply inputs schedule) (fun cfg ->
        if not (List.exists (Value.equal value) (Config.decided_values cfg)) then
          Error "claimed invalid value not decided on replay"
        else if Array.exists (Value.equal value) inputs then
          Error "claimed invalid value is among the inputs"
        else Ok ())
  | Solo_stuck { inputs; schedule; pid } ->
    stuck_group inputs schedule (Pset.singleton pid) (Printf.sprintf "p%d solo" pid)
  | Crash_stuck { inputs; schedule; survivors; _ } ->
    stuck_group inputs schedule (Pset.of_list survivors) "survivor group"

let binary_inputs n =
  let rec go k =
    if k = 0 then [ [] ]
    else
      let rest = go (k - 1) in
      List.concat_map (fun tl -> [ 0 :: tl; 1 :: tl ]) rest
  in
  List.map (fun bits -> Array.of_list (List.map Value.int bits)) (go n)

let violation_kind = function
  | Agreement_violation _ -> "agreement"
  | Validity_violation _ -> "validity"
  | Solo_stuck _ -> "solo-termination"
  | Crash_stuck _ -> "resilience"

let violation_inputs = function
  | Agreement_violation { inputs; _ }
  | Validity_violation { inputs; _ }
  | Solo_stuck { inputs; _ }
  | Crash_stuck { inputs; _ } -> inputs

let violation_schedule = function
  | Agreement_violation { schedule; _ }
  | Validity_violation { schedule; _ }
  | Solo_stuck { schedule; _ }
  | Crash_stuck { schedule; _ } -> schedule

let pp_stats ppf s =
  Fmt.pf ppf
    "%d configs (deepest %d%s), frontier peak %d, table %d/%d hit/miss, solo cache %d/%d"
    s.configs_explored s.deepest
    (if s.truncated then ", truncated" else ", exhaustive")
    s.peak_frontier s.table_hits s.table_misses s.solo_cache_hits s.solo_cache_misses

let pp_violation ppf = function
  | Agreement_violation { inputs; values; schedule } ->
    Fmt.pf ppf "agreement violated: inputs=[%a] decided {%a} after %d steps"
      Fmt.(array ~sep:(any ";") Value.pp) inputs
      Fmt.(list ~sep:comma Value.pp) values
      (List.length schedule)
  | Validity_violation { inputs; value; schedule } ->
    Fmt.pf ppf "validity violated: inputs=[%a] decided %a after %d steps"
      Fmt.(array ~sep:(any ";") Value.pp) inputs
      Value.pp value (List.length schedule)
  | Solo_stuck { inputs; pid; schedule } ->
    Fmt.pf ppf
      "solo termination violated: inputs=[%a], p%d cannot decide solo after %d prefix steps"
      Fmt.(array ~sep:(any ";") Value.pp) inputs
      pid (List.length schedule)
  | Crash_stuck { inputs; crashed; survivors; schedule } ->
    Fmt.pf ppf
      "resilience violated: inputs=[%a], after %d steps crashing {%a} leaves survivors {%a} stuck"
      Fmt.(array ~sep:(any ";") Value.pp) inputs
      (List.length schedule)
      Fmt.(list ~sep:comma (fmt "p%d")) crashed
      Fmt.(list ~sep:comma (fmt "p%d")) survivors
