(** Bounded exhaustive exploration of a protocol's configuration graph.

    Verifies the three consensus properties on all configurations reachable
    within the given bounds:

    - {b Agreement}: no reachable configuration contains two different
      decisions.
    - {b Validity}: every decision is one of the inputs.
    - {b Solo termination}: from every reachable configuration, every
      undecided process has a solo execution that decides within
      [solo_budget] steps (for protocols with coin flips, some resolution
      of the coins decides — Zhu's "nondeterministic solo termination").

    {!check_t_resilient} verifies the crash-fault analogue: from every
    reachable configuration, crash-stopping {e any} set of at most [t]
    processes leaves the surviving group able to reach a decision on its
    own.  Crash-stop faults don't alter the configuration, so this is
    group-decidability of every survivor set; by monotonicity (a superset
    of a live group is live) only the maximal crash sets, [|F| = t], need
    checking.

    Exploration is exhaustive up to [max_configs] distinct configurations
    and [max_depth] steps {e per input vector}; racing-style protocols have
    infinite reachable sets under adversarial scheduling, so a clean run is
    a *bounded* guarantee — [stats.truncated] says whether a bound was hit.
    A reported violation is always a genuine counterexample, replayable
    from the returned schedule ({!replay} does exactly that).

    Each input vector's search is fully self-contained (its own visited
    table, solo cache and budget), which is what makes the optional
    [?domains] fan-out sound: with [domains > 1] the vectors are checked in
    parallel on separate OCaml domains and the results reassembled in input
    order, so verdict {e and} stats are identical to a serial run.  Worker
    crashes are contained per input vector: a raising protocol callback
    surfaces in [result.worker_errors] while sibling verdicts survive.  All
    tables key by packed configuration keys ({!Ts_model.Ckey}) rather than
    polymorphic hashing.

    All entry points accept a {!Ts_core.Budget} guard.  A search that trips
    the guard stops cleanly: the verdict covers what was explored,
    [stats.truncated] is set, and [result.stopped] records the breach —
    a {e partial} result rather than an exception or a hang. *)

open Ts_model
open Ts_core

type violation =
  | Agreement_violation of { inputs : Value.t array; schedule : Execution.event list; values : Value.t list }
  | Validity_violation of { inputs : Value.t array; schedule : Execution.event list; value : Value.t }
  | Solo_stuck of { inputs : Value.t array; schedule : Execution.event list; pid : int }
  | Crash_stuck of {
      inputs : Value.t array;
      schedule : Execution.event list;
      crashed : int list;  (** the crash set [F], sorted *)
      survivors : int list;  (** the stuck survivor group, sorted *)
    }
      (** After running [schedule] from the initial configuration for
          [inputs], crash-stopping [crashed] leaves [survivors] unable to
          decide within the probe budget. *)

type stats = {
  configs_explored : int;
  truncated : bool;  (** true if max_configs, max_depth or the budget stopped a search *)
  deepest : int;  (** depth of the deepest configuration explored *)
  table_hits : int;  (** successor already in a visited table *)
  table_misses : int;  (** fresh configurations inserted *)
  peak_frontier : int;  (** high-water mark of the BFS queue *)
  solo_cache_hits : int;  (** solo/group-termination probes answered by the cache *)
  solo_cache_misses : int;  (** solo/group-termination probes that ran a BFS *)
}

type result = {
  verdict : (unit, violation) Stdlib.result;
  stats : stats;
  stopped : Budget.breach option;
      (** [Some b] if the {!Budget} guard stopped a search: the verdict is
          partial, covering only what was explored before the breach. *)
  worker_errors : (int * string) list;
      (** Input vectors (by index into [inputs_list]) whose parallel worker
          raised, with the exception text.  Always [[]] on serial runs,
          where the exception propagates instead. *)
}

(** [check_consensus proto ~inputs_list ~max_configs ~max_depth ~solo_budget
    ~check_solo] explores from each initial input vector and reports the
    violation of the earliest violating vector, if any.  [?domains]
    (default 1) fans the vectors out over that many OCaml domains;
    [?budget] (default {!Budget.unlimited}) bounds the whole call. *)
val check_consensus :
  ?domains:int ->
  ?budget:Budget.t ->
  's Protocol.t ->
  inputs_list:Value.t array list ->
  max_configs:int ->
  max_depth:int ->
  solo_budget:int ->
  check_solo:bool ->
  result

(** [check_set_agreement ~k proto ...] is {!check_consensus} with agreement
    relaxed to k-set agreement: a configuration with more than [k] distinct
    decided values is an [Agreement_violation].  [check_consensus] is the
    [k = 1] case. *)
val check_set_agreement :
  ?domains:int ->
  ?budget:Budget.t ->
  k:int ->
  's Protocol.t ->
  inputs_list:Value.t array list ->
  max_configs:int ->
  max_depth:int ->
  solo_budget:int ->
  check_solo:bool ->
  result

(** [check_t_resilient ~t proto ~inputs_list ~max_configs ~max_depth
    ~solo_budget] verifies [t]-resilient termination: from every reachable
    configuration, for every crash set [F] with [|F| = t], the survivor
    group [all - F] can still decide within [solo_budget] steps.  A failure
    is a {!Crash_stuck} witness; {!replay} re-validates it independently.
    [t = 0] degenerates to joint termination of the full group;
    [t = n - 1] is wait-freedom of every solo survivor.
    @raise Invalid_argument unless [0 <= t <= n-1]. *)
val check_t_resilient :
  ?domains:int ->
  ?budget:Budget.t ->
  t:int ->
  's Protocol.t ->
  inputs_list:Value.t array list ->
  max_configs:int ->
  max_depth:int ->
  solo_budget:int ->
  result

(** {2 Cluster hooks}

    The distributed search engine ({!module:Ts_cluster}) re-runs this
    module's BFS as a level-synchronous fan-out over worker nodes and
    certifies its answer {e byte-identical} to the serial one.  That
    argument needs two serial internals exported verbatim rather than
    re-derived: the successor order (= the serial insertion order) and the
    examine semantics (= the serial violation and probe-count semantics). *)

(** [successors proto cfg] enumerates the successor configurations of
    [cfg] in exactly the order the serial BFS inlines them: pid ascending,
    a coin flip resolved heads before tails.  Each successor is paired
    with the event that reaches it. *)
val successors :
  's Protocol.t -> 's Config.t -> (Execution.event * 's Config.t) list

type 's examiner
(** The property checks one dequeued configuration undergoes, packaged
    with its probe cache.  Build one per search; it is not thread-safe. *)

(** The consensus-property examine of {!check_consensus} /
    {!check_set_agreement}: validity, then [k]-agreement, then (when
    [check_solo]) per-pid solo termination in pid order. *)
val consensus_examiner :
  's Protocol.t ->
  k:int ->
  inputs:Value.t array ->
  solo_budget:int ->
  check_solo:bool ->
  's examiner

(** The crash-resilience examine of {!check_t_resilient}: every crash set
    of size [t] in increasing mask order, survivor-group decidability
    probed within [solo_budget].
    @raise Invalid_argument unless [0 <= t <= n-1]. *)
val resilience_examiner :
  's Protocol.t ->
  t:int ->
  inputs:Value.t array ->
  solo_budget:int ->
  's examiner

(** [examine ex cfg ~schedule] checks one configuration and returns the
    violation (if any) together with the number of solo/group probes run
    — exactly the serial search's [solo_cache_misses] contribution for
    this configuration ({e every} probe misses: probe keys are distinct
    (configuration, mask) pairs and a deduplicated search examines each
    configuration once).  [schedule] is the forward schedule reaching
    [cfg], embedded in any violation witness. *)
val examine :
  's examiner ->
  's Config.t ->
  schedule:Execution.event list ->
  violation option * int

(** [replay proto v] independently re-validates a reported violation:
    re-applies its schedule step by step from the initial configuration
    (via {!Ts_model.Execution.apply}, i.e. [Config.step] folded) and
    re-checks the claimed property failure on the resulting configuration.
    [solo_budget] (default 300) bounds the re-run decidability probes for
    [Solo_stuck]/[Crash_stuck].  [Ok ()] means the counterexample is
    genuine; [Error msg] says what failed to reproduce. *)
val replay :
  ?solo_budget:int -> 's Protocol.t -> violation -> (unit, string) Stdlib.result

(** All 2^n binary input vectors for [n] processes. *)
val binary_inputs : int -> Value.t array list

(** Stable machine-readable tag of a violation's kind — ["agreement"],
    ["validity"], ["solo-termination"] or ["resilience"].  Part of the
    service wire vocabulary and the CLI [--json] output; keep the strings
    fixed. *)
val violation_kind : violation -> string

(** The input vector a violation was found under. *)
val violation_inputs : violation -> Value.t array

(** The violating schedule prefix. *)
val violation_schedule : violation -> Execution.event list

val pp_stats : Format.formatter -> stats -> unit
val pp_violation : Format.formatter -> violation -> unit
