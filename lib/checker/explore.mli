(** Bounded exhaustive exploration of a protocol's configuration graph.

    Verifies the three consensus properties on all configurations reachable
    within the given bounds:

    - {b Agreement}: no reachable configuration contains two different
      decisions.
    - {b Validity}: every decision is one of the inputs.
    - {b Solo termination}: from every reachable configuration, every
      undecided process has a solo execution that decides within
      [solo_budget] steps (for protocols with coin flips, some resolution
      of the coins decides — Zhu's "nondeterministic solo termination").

    Exploration is exhaustive up to [max_configs] distinct configurations
    and [max_depth] steps {e per input vector}; racing-style protocols have
    infinite reachable sets under adversarial scheduling, so a clean run is
    a *bounded* guarantee — [stats.truncated] says whether a bound was hit.
    A reported violation is always a genuine counterexample, replayable
    from the returned schedule.

    Each input vector's search is fully self-contained (its own visited
    table, solo cache and budget), which is what makes the optional
    [?domains] fan-out sound: with [domains > 1] the vectors are checked in
    parallel on separate OCaml domains and the results reassembled in input
    order, so verdict {e and} stats are identical to a serial run.  All
    tables key by packed configuration keys ({!Ts_model.Ckey}) rather than
    polymorphic hashing. *)

open Ts_model

type violation =
  | Agreement_violation of { inputs : Value.t array; schedule : Execution.event list; values : Value.t list }
  | Validity_violation of { inputs : Value.t array; schedule : Execution.event list; value : Value.t }
  | Solo_stuck of { inputs : Value.t array; schedule : Execution.event list; pid : int }

type stats = {
  configs_explored : int;
  truncated : bool;  (** true if max_configs or max_depth stopped a search *)
  deepest : int;  (** depth of the deepest configuration explored *)
  table_hits : int;  (** successor already in a visited table *)
  table_misses : int;  (** fresh configurations inserted *)
  peak_frontier : int;  (** high-water mark of the BFS queue *)
  solo_cache_hits : int;  (** solo-termination probes answered by the cache *)
  solo_cache_misses : int;  (** solo-termination probes that ran a BFS *)
}

type result = {
  verdict : (unit, violation) Stdlib.result;
  stats : stats;
}

(** [check_consensus proto ~inputs_list ~max_configs ~max_depth ~solo_budget
    ~check_solo] explores from each initial input vector and reports the
    violation of the earliest violating vector, if any.  [?domains]
    (default 1) fans the vectors out over that many OCaml domains. *)
val check_consensus :
  ?domains:int ->
  's Protocol.t ->
  inputs_list:Value.t array list ->
  max_configs:int ->
  max_depth:int ->
  solo_budget:int ->
  check_solo:bool ->
  result

(** [check_set_agreement ~k proto ...] is {!check_consensus} with agreement
    relaxed to k-set agreement: a configuration with more than [k] distinct
    decided values is an [Agreement_violation].  [check_consensus] is the
    [k = 1] case. *)
val check_set_agreement :
  ?domains:int ->
  k:int ->
  's Protocol.t ->
  inputs_list:Value.t array list ->
  max_configs:int ->
  max_depth:int ->
  solo_budget:int ->
  check_solo:bool ->
  result

(** All 2^n binary input vectors for [n] processes. *)
val binary_inputs : int -> Value.t array list

val pp_stats : Format.formatter -> stats -> unit
val pp_violation : Format.formatter -> violation -> unit
