open Ts_model
open Ts_objects

type report = {
  object_name : string;
  n : int;
  cover : (int * Action.reg) list;
  distinct_covered : int;
  probe_accesses : int;
  probe_steps : int;
  base_probe : Value.t;
  hidden_probe : Value.t;
  completed_probe : Value.t;
  hidden_invisible : bool;
  completed_visible : bool;
  jtt_bound : int;
}

(* Drive [pid] until it is poised to write a register outside [avoid],
   issuing fresh [op]s as needed.  Leaves the write pending ("covering"). *)
let park session pid op ~avoid =
  let max_ops = 64 and max_steps = 100_000 in
  let rec attempt ops_left =
    if ops_left = 0 then
      invalid_arg "Adversary.park: process never writes a fresh register";
    if not (Runner.busy session pid) then Runner.invoke session pid op;
    let rec steps fuel =
      if fuel = 0 then invalid_arg "Adversary.park: operation too long"
      else
        match Runner.poised session pid with
        | Some (Impl.Write (r, _)) when not (List.mem r avoid) -> Some r
        | Some (Impl.Return _) ->
          (* a Return-poised step must complete the operation *)
          (match Runner.step session pid with
           | `Returned _ -> ()
           | `Continues ->
             invalid_arg "Adversary.park: Return-poised step did not return");
          None
        | Some (Impl.Read _ | Impl.Write _) ->
          (* a memory step never completes the operation *)
          (match Runner.step session pid with
           | `Continues -> ()
           | `Returned _ ->
             invalid_arg "Adversary.park: memory step unexpectedly returned");
          steps (fuel - 1)
        | None -> None
    in
    match steps max_steps with
    | Some r -> r
    | None -> attempt (ops_left - 1)
  in
  attempt max_ops

(* Build a covering configuration: each pid in [pids], in order, parked on
   a write to a register none of the previous ones covers. *)
let build_cover session pids op =
  List.fold_left
    (fun acc pid ->
      let r = park session pid op ~avoid:(List.map snd acc) in
      acc @ [ pid, r ])
    [] pids

(* Perform the pending block write of every covering process.  Each pid
   was parked by [park] poised on a Write, and a write step never completes
   an operation, so the step must report [`Continues]. *)
let block_write session cover =
  List.iter
    (fun (pid, _) ->
      match Runner.step session pid with
      | `Continues -> ()
      | `Returned _ ->
        invalid_arg "Adversary.block_write: covering write unexpectedly returned")
    cover

let probe_on session prober probe =
  Runner.invoke session prober probe;
  let v, steps = Runner.finish session prober in
  v, steps, List.length (Runner.op_accesses session prober)

let run_general impl ~perturb ~disturb ~probe =
  let n = impl.Impl.num_processes in
  if n < 2 then invalid_arg "Adversary.run: need n >= 2";
  let prober = n - 1 in
  (* Stage n-1: the full covering construction (the space measurement). *)
  let s = Runner.create impl in
  let cover = build_cover s (List.init (n - 1) Fun.id) perturb in
  let full = Runner.clone s in
  block_write full cover;
  let _, probe_steps, probe_accesses = probe_on full prober probe in
  (* Stage n-2: one process left over for the hiding demonstration. *)
  let s2 = Runner.create impl in
  let cover2 = build_cover s2 (List.init (n - 2) Fun.id) perturb in
  let lambda_proc = n - 2 in
  let base = Runner.clone s2 in
  block_write base cover2;
  let base_probe, _, _ = probe_on base prober probe in
  let hid = Runner.clone s2 in
  (* λ truncated just before its first fresh write: its covered writes are
     then obliterated by the block write — invisible to the prober.  The
     parked register index is irrelevant here (only the truncation point
     matters), so discarding it is sound. *)
  ignore (park hid lambda_proc disturb ~avoid:(List.map snd cover2) : int);
  block_write hid cover2;
  let hidden_probe, _, _ = probe_on hid prober probe in
  let comp = Runner.clone s2 in
  (* λ run to completion: its fresh write survives the block write. *)
  Runner.invoke comp lambda_proc disturb;
  (* only completion matters, not λ's response or step count: the probe
     below measures visibility of the completed write, so the discarded
     pair carries no information this construction needs *)
  ignore (Runner.finish comp lambda_proc : Value.t * int);
  block_write comp cover2;
  let completed_probe, _, _ = probe_on comp prober probe in
  {
    object_name = impl.Impl.name;
    n;
    cover;
    distinct_covered = List.length (List.sort_uniq Stdlib.compare (List.map snd cover));
    probe_accesses;
    probe_steps;
    base_probe;
    hidden_probe;
    completed_probe;
    hidden_invisible = Value.equal hidden_probe base_probe;
    completed_visible = not (Value.equal completed_probe base_probe);
    jtt_bound = n - 1;
  }

let run impl ~perturb ~probe = run_general impl ~perturb ~disturb:perturb ~probe

let run_counter ~n =
  run_general (Counter.make ~n) ~perturb:Counter.Inc ~disturb:Counter.Inc
    ~probe:Counter.Read_count

let run_maxreg ~n =
  run_general (Maxreg.make ~n) ~perturb:(Maxreg.Write_max 1)
    ~disturb:(Maxreg.Write_max 99) ~probe:Maxreg.Read_max

let run_snapshot ~n =
  run_general (Snapshot.make ~n) ~perturb:(Snapshot.Update (Value.int 1))
    ~disturb:(Snapshot.Update (Value.int 99)) ~probe:Snapshot.Scan

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>%s, n=%d: %d processes cover %d distinct registers (JTT bound %d)@,\
     probe: %d steps, %d distinct registers accessed@,\
     hiding: base=%a truncated=%a (invisible: %b), completed=%a (visible: %b)@]"
    r.object_name r.n (List.length r.cover) r.distinct_covered r.jtt_bound
    r.probe_steps r.probe_accesses Value.pp r.base_probe Value.pp r.hidden_probe
    r.hidden_invisible Value.pp r.completed_probe r.completed_visible
