open Ts_model
module Budget = Ts_core.Budget
module Outcome = Ts_core.Outcome
module Covering = Ts_core.Covering
module Obs = Ts_obs.Obs

type pid = int

type certificate = {
  protocol_name : string;
  n : int;
  inputs : Value.t array;
  excluded : pid list;
  schedule : Execution.event list;
  trace : Execution.trace;
  registers_written : Action.reg list;
  parked : (pid * Action.reg) list;
  covered_registers : Action.reg list;
  fresh_register : Action.reg;
  bound : int;
  revisions : int;
  private_steps : int;
}

type progress = {
  max_solo : int;
  parked : int;
  revisions : int;
  private_steps : int;
}

type stop =
  | Out_of_budget of Budget.breach
  | Search_wall of string

type outcome =
  | Complete of certificate
  | Partial of stop * progress

exception Wall of string

(* Mutable search counters, shared between the construction and the
   partial-result reporting when it stops short. *)
type counters = {
  mutable steps : int;  (* private steps simulated, failed branches included *)
  mutable revs : int;  (* backed-out choice points *)
  mutable deepest : int;  (* high-water parking level *)
}

let canonical_inputs n =
  Array.init n (fun p -> if p = 1 then Value.int 1 else Value.int 0)

(* The last element of a non-empty list and everything before it. *)
let split_last l =
  match List.rev l with
  | [] -> invalid_arg "split_last"
  | last :: rev_init -> (List.rev rev_init, last)

let construct_exn ~faults ~budget ~max_solo ~(c : counters)
    (proto : 's Protocol.t) : certificate =
  let n = proto.Protocol.num_processes in
  if n < 2 then invalid_arg "Revisionist.construct: need at least 2 processes";
  let excluded = List.sort Int.compare (List.map fst (Fault.crashes faults)) in
  let survivors =
    List.filter (fun p -> not (List.mem p excluded)) (List.init n Fun.id)
  in
  let n_surv = List.length survivors in
  if n_surv < 2 then
    invalid_arg "Revisionist.construct: fewer than 2 surviving processes";
  let target = n_surv - 1 in
  let inputs = canonical_inputs n in
  let cfg0 = Config.initial proto ~inputs in
  (* [private_run cfg z ~covered _ count k] advances [z] alone from [cfg]
     until it is poised to write a register outside [covered], then hands
     the pre-park configuration (the fresh write still pending), the
     segment of events taken, and the fresh register to [k].  [k]
     answering [None] — a deeper parking level failed — demands the next
     alternative, so coin flips below are genuine revision points.  [None]
     overall means no revision of this run parks: the process decided
     first, or the [max_solo] allowance ran out. *)
  let rec private_run cfg z ~covered steps_rev count k =
    Budget.charge budget 1;
    c.steps <- c.steps + 1;
    match Config.poised proto cfg z with
    | None -> None
    | Some a -> (
      match Action.written_register a with
      | Some r when not (List.mem r covered) -> k (cfg, List.rev steps_rev, r)
      | _ ->
        if count >= max_solo then None
        else (
          match a with
          | Action.Decide _ -> None
          | Action.Flip ->
            let attempt b =
              let cfg', _ = Config.step proto cfg z ~coin:(Some b) in
              private_run cfg' z ~covered
                (Execution.flip z b :: steps_rev)
                (count + 1) k
            in
            (match attempt false with
             | Some _ as s -> s
             | None ->
               c.revs <- c.revs + 1;
               attempt true)
          | _ ->
            let cfg', _ = Config.step proto cfg z ~coin:None in
            private_run cfg' z ~covered
              (Execution.ev z :: steps_rev)
              (count + 1) k))
  in
  (* Park processes one by one; trying the remaining candidates in order
     at each level is the other revision axis. *)
  let rec place cfg ~covered ~parked ~active ~segs_rev ~depth =
    if depth > c.deepest then c.deepest <- depth;
    if depth = target then Some (List.rev segs_rev, List.rev parked, cfg)
    else
      let rec candidates = function
        | [] -> None
        | z :: rest -> (
          let attempt =
            private_run cfg z ~covered [] 0 (fun (cfg_park, seg, r) ->
                place cfg_park ~covered:(r :: covered)
                  ~parked:((z, r) :: parked)
                  ~active:(List.filter (fun p -> p <> z) active)
                  ~segs_rev:(seg :: segs_rev) ~depth:(depth + 1))
          in
          match attempt with
          | Some _ as s -> s
          | None ->
            c.revs <- c.revs + 1;
            candidates rest)
      in
      candidates active
  in
  match
    place cfg0 ~covered:[] ~parked:[] ~active:survivors ~segs_rev:[] ~depth:0
  with
  | None ->
    Obs.Metrics.incr "revisionist.walls";
    raise
      (Wall
         (Printf.sprintf
            "no revision of the parking order parks %d processes within %d \
             private steps each"
            target max_solo))
  | Some (segs, parked, cfg_parked) ->
    (* The parked set must be well spread — each pending write distinct —
       or the release below would not write [target] registers. *)
    let pset = Pset.of_list (List.map fst parked) in
    if not (Covering.well_spread proto cfg_parked pset) then
      raise (Wall "internal: parked processes are not well spread");
    let release = List.map (fun (p, _) -> Execution.ev p) parked in
    let schedule = List.concat segs @ release in
    let _, trace = Execution.apply proto cfg0 schedule in
    let written = Execution.written_registers trace in
    if List.length written < target then
      raise (Wall "internal: release wrote fewer registers than were parked");
    let covered_registers, fresh_register = split_last (List.map snd parked) in
    Obs.Metrics.incr "revisionist.constructs";
    Obs.Metrics.incr ~by:target "revisionist.parks";
    {
      protocol_name = proto.Protocol.name;
      n;
      inputs;
      excluded;
      schedule;
      trace;
      registers_written = written;
      parked;
      covered_registers = List.sort_uniq Int.compare covered_registers;
      fresh_register;
      bound = target;
      revisions = c.revs;
      private_steps = c.steps;
    }

let construct ?(faults = Fault.none) ?(budget = Budget.unlimited)
    ?(max_solo = 64) proto : outcome =
  let c = { steps = 0; revs = 0; deepest = 0 } in
  let progress () =
    { max_solo; parked = c.deepest; revisions = c.revs; private_steps = c.steps }
  in
  let sp = Obs.enter ~cat:"revisionist" "revisionist.construct" in
  let finish outcome =
    Obs.set_int sp "private_steps" c.steps;
    Obs.set_int sp "revisions" c.revs;
    Obs.set_int sp "deepest" c.deepest;
    Obs.set_bool sp "complete"
      (match outcome with Complete _ -> true | Partial _ -> false);
    Obs.close sp;
    Obs.Metrics.incr ~by:c.steps "revisionist.private_steps";
    Obs.Metrics.incr ~by:c.revs "revisionist.revisions";
    outcome
  in
  match construct_exn ~faults ~budget ~max_solo ~c proto with
  | cert -> finish (Complete cert)
  | exception Budget.Exhausted b ->
    finish (Partial (Out_of_budget b, progress ()))
  | exception Wall msg -> finish (Partial (Search_wall msg, progress ()))
  | exception e ->
    Obs.close sp;
    raise e

let escalate ?budget ?(retries = 4) ?faults proto ~initial_solo =
  let rec go attempt max_solo =
    match construct ?faults ?budget ~max_solo proto with
    | Complete _ as o -> (o, max_solo)
    | Partial (Search_wall _, _) when attempt < retries ->
      go (attempt + 1) (max_solo * 2)
    | o -> (o, max_solo)
  in
  go 0 (max initial_solo 1)

let verify (cert : certificate) (proto : 's Protocol.t) : (unit, string) result
    =
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  if proto.Protocol.num_processes <> cert.n then
    fail "protocol has %d processes, certificate says %d"
      proto.Protocol.num_processes cert.n
  else if cert.bound <> cert.n - List.length cert.excluded - 1 then
    fail "claimed bound %d is not survivors - 1" cert.bound
  else if
    List.exists
      (fun (e : Execution.event) -> List.mem e.Execution.pid cert.excluded)
      cert.schedule
  then fail "schedule steps a crashed process"
  else
    match
      Execution.apply proto (Config.initial proto ~inputs:cert.inputs)
        cert.schedule
    with
    | exception Invalid_argument m -> fail "schedule not applicable: %s" m
    | _, trace ->
      let written = Execution.written_registers trace in
      if written <> cert.registers_written then
        fail "recorded register set differs from the replay's"
      else if List.length written < cert.bound then
        fail "replay writes %d distinct registers, below the bound %d"
          (List.length written) cert.bound
      else
        let writes_r p r (s : Execution.step_record) =
          s.Execution.actor = p
          &&
          match Action.written_register s.Execution.action with
          | Some r' -> r' = r
          | None -> false
        in
        (match
           List.find_opt
             (fun (p, r) -> not (List.exists (writes_r p r) trace))
             cert.parked
         with
        | Some (p, r) ->
          fail "parked process %d never writes register %d in the replay" p r
        | None -> Ok ())

let summary (c : certificate) : Outcome.summary =
  {
    Outcome.engine = Outcome.Revisionist;
    protocol_name = c.protocol_name;
    n = c.n;
    excluded = c.excluded;
    bound = c.bound;
    registers_written = c.registers_written;
    schedule_length = List.length c.schedule;
    search_effort = c.revisions;
  }

let pp_certificate ppf (c : certificate) =
  Fmt.pf ppf
    "@[<v>revisionist witness for %s (n = %d%s):@,\
     space bound %d: %d distinct registers written {%s}@,\
     parked: %s@,\
     schedule: %d steps (%d revisions, %d private steps simulated)@]"
    c.protocol_name c.n
    (match c.excluded with
     | [] -> ""
     | l ->
       Printf.sprintf ", crashed {%s}"
         (String.concat "," (List.map string_of_int l)))
    c.bound
    (List.length c.registers_written)
    (String.concat "," (List.map string_of_int c.registers_written))
    (String.concat ", "
       (List.map (fun (p, r) -> Printf.sprintf "p%d@R%d" p r) c.parked))
    (List.length c.schedule)
    c.revisions c.private_steps

let pp_stop ppf = function
  | Out_of_budget b -> Fmt.pf ppf "out of budget (%a)" Budget.pp_breach b
  | Search_wall m -> Fmt.pf ppf "search wall: %s" m

let pp_progress ppf (p : progress) =
  Fmt.pf ppf
    "allowance %d: parked %d, %d revisions, %d private steps" p.max_solo
    p.parked p.revisions p.private_steps
