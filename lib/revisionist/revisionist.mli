(** The revisionist-simulation lower-bound engine.

    A second, independent construction of the n−1 space bound, after
    Ellen–Gelashvili–Zhu's {e Revisionist Simulations} (PAPERS.md,
    arXiv 1711.02455).  Where {!Ts_core.Theorem} walks Zhu's Lemmas 1–4 —
    valency oracle, pigeonhole over covered sets, nice configurations —
    this engine plays the revisionist adversary directly:

    + run one process {e privately} (solo, unobserved) until it is poised
      to write a register no already-parked process covers;
    + {e park} it there, its fresh write pending, and move on to the next
      process against the configuration the private run produced;
    + when a private run goes wrong — the process decides without ever
      covering a fresh register, or exhausts its step allowance — {e
      revise} history: back out the choice and replay from an earlier
      branch point (a different process order, the other coin outcome);
    + once [n − 1] processes are parked on pairwise distinct registers,
      release the block write.

    The resulting schedule is one real execution of the protocol writing
    at least [n − 1] distinct registers, so the certificate is
    self-evident: {!verify} replays it with {!Ts_model.Execution.apply}
    and counts, with no dependence on the valency oracle the first engine
    is built on.  The two engines share only the substrate
    ({!Ts_model.Protocol}, [Config], [Execution], {!Ts_core.Budget}) —
    which is what makes diffing their answers
    ([Ts_analysis.Crosscheck]) meaningful.

    Like the first engine, a capped run degrades to a structured
    {!Partial} rather than raising: {!Ts_core.Budget.Exhausted} and the
    engine's own {!Search_wall} are both caught by {!construct}.

    Instrumentation: spans [revisionist.construct] (cat [revisionist])
    with revision/step counts as attributes; counters
    [revisionist.private_steps], [revisionist.revisions],
    [revisionist.parks], [revisionist.constructs], [revisionist.walls]
    (see docs/OBSERVABILITY.md). *)

open Ts_model

type pid = int

(** Everything the construction established, with the raw material to
    audit it.  [schedule] is the full witness — the private segments in
    parking order followed by the release block write — and [trace] its
    trace from the canonical initial configuration. *)
type certificate = {
  protocol_name : string;
  n : int;  (** processes in the protocol instance *)
  inputs : Value.t array;  (** the canonical initial assignment (p1 has 1, the rest 0) *)
  excluded : pid list;  (** processes a crash plan removed; never scheduled *)
  schedule : Execution.event list;
  trace : Execution.trace;
  registers_written : Action.reg list;  (** distinct registers written, sorted *)
  parked : (pid * Action.reg) list;  (** who was parked covering what, in parking order *)
  covered_registers : Action.reg list;  (** registers covered when the last process parked (all parked but the last), sorted *)
  fresh_register : Action.reg;  (** the last-parked register — fresh relative to [covered_registers] *)
  bound : int;  (** the claimed space bound: survivors − 1 *)
  revisions : int;  (** backed-out choice points *)
  private_steps : int;  (** total solo steps simulated, failed branches included *)
}

(** How far a stopped construction got. *)
type progress = {
  max_solo : int;  (** the per-process private-run step allowance in force *)
  parked : int;  (** deepest parking level reached *)
  revisions : int;
  private_steps : int;
}

(** Why a construction stopped short of a certificate. *)
type stop =
  | Out_of_budget of Ts_core.Budget.breach  (** the {!Ts_core.Budget} guard tripped *)
  | Search_wall of string
      (** every revision of the parking order failed within [max_solo]
          private steps per process; retry with a larger allowance *)

type outcome =
  | Complete of certificate
  | Partial of stop * progress

(** [construct ?faults ?budget ?max_solo proto] runs the revisionist
    adversary from the canonical initial configuration.  Processes named
    by [faults] (default none) are treated as crashed from the start: the
    adversary never schedules them and parks [survivors − 1] of the rest,
    so the claimed bound drops accordingly.  [max_solo] (default 64)
    bounds each private run; [budget] (default unlimited) is charged one
    node per simulated private step.
    @raise Invalid_argument if fewer than 2 processes survive. *)
val construct :
  ?faults:Fault.plan ->
  ?budget:Ts_core.Budget.t ->
  ?max_solo:int ->
  's Protocol.t ->
  outcome

(** [escalate ?budget ?retries ?faults proto ~initial_solo] is the
    adaptive wrapper: on {!Search_wall} the private-run allowance doubles
    (geometric backoff) up to [retries] times (default 4).  [budget]
    spans all attempts.  Returns the outcome and the last allowance
    tried. *)
val escalate :
  ?budget:Ts_core.Budget.t ->
  ?retries:int ->
  ?faults:Fault.plan ->
  's Protocol.t ->
  initial_solo:int ->
  outcome * int

(** [verify cert proto] independently replays the certificate's schedule
    on a fresh initial configuration and re-checks every claim: the
    recorded register set, the bound arithmetic, that no excluded process
    takes a step, and that every parked process's covering write really
    lands.  Returns an error message on any mismatch. *)
val verify : certificate -> 's Protocol.t -> (unit, string) result

(** Reduce a certificate to the engine-independent comparison currency. *)
val summary : certificate -> Ts_core.Outcome.summary

val pp_certificate : Format.formatter -> certificate -> unit
val pp_stop : Format.formatter -> stop -> unit
val pp_progress : Format.formatter -> progress -> unit
