open Ts_model

type report = {
  algorithm : string;
  n : int;
  best_covered : int;
  configs_explored : int;
  truncated : bool;
  exclusion_violated : bool;
}

(* A pure configuration: immutable snapshot of the whole lock. *)
type 's cfg = {
  states : 's option array;  (* None once back in the remainder section *)
  regs : Value.t array;
  in_cs : int option;
}

let initial alg =
  let n = alg.Algorithm.num_processes in
  {
    states = Array.init n (fun p -> Some (alg.Algorithm.start ~pid:p));
    regs = Array.make (max 1 alg.Algorithm.num_registers) Value.bot;
    in_cs = None;
  }

let covered_registers alg cfg =
  Array.to_list cfg.states
  |> List.filter_map (fun st ->
      match st with
      | None -> None
      | Some st ->
        (match alg.Algorithm.poised st with
         | Algorithm.Write (r, _) | Algorithm.Swap (r, _) -> Some r
         | Algorithm.Read _ | Algorithm.Enter_cs | Algorithm.Exit_cs | Algorithm.Done -> None))
  |> List.sort_uniq compare
  |> List.length

(* One step of process [p]; [None] if the step is an Enter_cs while the
   critical section is occupied (that successor is a mutual-exclusion
   violation, reported by the caller). *)
let step alg cfg p =
  match cfg.states.(p) with
  | None -> `Idle
  | Some st ->
    let with_state st' = { cfg with states = (let a = Array.copy cfg.states in a.(p) <- st'; a) } in
    (match alg.Algorithm.poised st with
     | Algorithm.Read r -> `Ok (with_state (Some (alg.Algorithm.on_read st cfg.regs.(r))))
     | Algorithm.Write (r, v) ->
       let regs = Array.copy cfg.regs in
       regs.(r) <- v;
       `Ok { (with_state (Some (alg.Algorithm.on_write st))) with regs }
     | Algorithm.Swap (r, v) ->
       let old = cfg.regs.(r) in
       let regs = Array.copy cfg.regs in
       regs.(r) <- v;
       `Ok { (with_state (Some (alg.Algorithm.on_swap st old))) with regs }
     | Algorithm.Enter_cs ->
       (match cfg.in_cs with
        | Some _ -> `Violation
        | None -> `Ok { (with_state (Some (alg.Algorithm.on_enter st))) with in_cs = Some p })
     | Algorithm.Exit_cs ->
       `Ok { (with_state (Some (alg.Algorithm.on_exit st))) with in_cs = None }
     | Algorithm.Done -> `Ok (with_state None))

(* Lock snapshots have no protocol-supplied encoder; key them by their
   structural serialization (still a full-width hash, unlike the truncated
   polymorphic one). *)
let key cfg = Ckey.of_marshal cfg

let search alg ~max_configs =
  let sp = Ts_obs.Obs.enter ~cat:"covering" "covering_search" in
  Ts_obs.Obs.set_str sp "algorithm" alg.Algorithm.name;
  let n = alg.Algorithm.num_processes in
  let visited = Ckey.Tbl.create 4096 in
  let q = Queue.create () in
  let cfg0 = initial alg in
  Ckey.Tbl.replace visited (key cfg0) ();
  Queue.add cfg0 q;
  let best = ref 0 in
  let explored = ref 0 in
  let truncated = ref false in
  let violated = ref false in
  while not (Queue.is_empty q) do
    let cfg = Queue.pop q in
    incr explored;
    best := max !best (covered_registers alg cfg);
    if !explored >= max_configs then begin
      truncated := true;
      Queue.clear q
    end
    else
      for p = 0 to n - 1 do
        match step alg cfg p with
        | `Idle -> ()
        | `Violation -> violated := true
        | `Ok cfg' ->
          let k = key cfg' in
          if not (Ckey.Tbl.mem visited k) then begin
            Ckey.Tbl.replace visited k ();
            Queue.add cfg' q
          end
      done
  done;
  Ts_obs.Obs.set_int sp "configs" !explored;
  Ts_obs.Obs.set_int sp "best_covered" !best;
  Ts_obs.Obs.close sp;
  {
    algorithm = alg.Algorithm.name;
    n;
    best_covered = !best;
    configs_explored = !explored;
    truncated = !truncated;
    exclusion_violated = !violated;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "%s (n=%d): best covering found = %d distinct registers over %d configurations%s%s"
    r.algorithm r.n r.best_covered r.configs_explored
    (if r.truncated then " (truncated)" else " (exhaustive)")
    (if r.exclusion_violated then " — MUTUAL EXCLUSION VIOLATED" else "")
