open Ts_model

type phase =
  | Try_swap
  | Spin
  | At_cs
  | In_cs
  | Release
  | Finished

type state = { me : int; phase : phase }

let locked = Value.int 1
let unlocked = Value.bot

let make ~n : state Algorithm.t =
  {
    name = Printf.sprintf "tas-%d" n;
    description = "test-and-test-and-set lock from one swap register";
    num_processes = n;
    num_registers = 1;
    uses_swap = true;
    start = (fun ~pid -> { me = pid; phase = Try_swap });
    poised =
      (fun st ->
        match st.phase with
        | Try_swap -> Algorithm.Swap (0, locked)
        | Spin -> Algorithm.Read 0
        | At_cs -> Algorithm.Enter_cs
        | In_cs -> Algorithm.Exit_cs
        | Release -> Algorithm.Write (0, unlocked)
        | Finished -> Algorithm.Done);
    on_read =
      (fun st v ->
        match st.phase with
        | Spin -> if Value.is_bot v then { st with phase = Try_swap } else st
        | _ -> invalid_arg (Printf.sprintf "Tas_lock.on_read: p%d out of phase" st.me));
    on_write =
      (fun st ->
        match st.phase with
        | Release -> { st with phase = Finished }
        | _ -> invalid_arg (Printf.sprintf "Tas_lock.on_write: p%d out of phase" st.me));
    on_swap =
      (fun st old ->
        match st.phase with
        | Try_swap ->
          if Value.is_bot old then { st with phase = At_cs } else { st with phase = Spin }
        | _ -> invalid_arg (Printf.sprintf "Tas_lock.on_swap: p%d out of phase" st.me));
    on_enter =
      (fun st -> match st.phase with At_cs -> { st with phase = In_cs } | _ -> invalid_arg (Printf.sprintf "Tas_lock.on_enter: p%d out of phase" st.me));
    on_exit =
      (fun st -> match st.phase with In_cs -> { st with phase = Release } | _ -> invalid_arg (Printf.sprintf "Tas_lock.on_exit: p%d out of phase" st.me));
  }
