open Ts_model

(* Internal nodes are heap-indexed 1 .. leaves-1; each has registers
   flag[0], flag[1], turn at consecutive indices. *)
let flag_reg node side = ((node - 1) * 3) + side
let turn_reg node = ((node - 1) * 3) + 2

let rec leaves_for n acc = if acc >= n then acc else leaves_for n (2 * acc)

(* The lock path of process [p]: (node, side) pairs from its leaf's parent
   up to the root. *)
let path_of ~leaves p =
  let rec go c acc = if c <= 1 then List.rev acc else go (c / 2) ((c / 2, c land 1) :: acc) in
  go (leaves + p) []

type phase =
  | Lock_flag of int  (* acquiring path element [i]: write flag[side] = 1 *)
  | Lock_turn of int  (* write turn = side *)
  | Wait_flag of int  (* read the rival flag *)
  | Wait_turn of int  (* read turn *)
  | At_cs
  | In_cs
  | Unlock of int  (* releasing path element [i], descending *)
  | Finished

type state = {
  me : int;
  path : (int * int) list;  (* (node, side), leaf-side first *)
  phase : phase;
}

let node_side st i = List.nth st.path i

let int_of = function Value.Bot -> -1 | v -> Value.to_int v

let acquired st i =
  if i + 1 >= List.length st.path then { st with phase = At_cs }
  else { st with phase = Lock_flag (i + 1) }

let make ~n : state Algorithm.t =
  if n < 1 then invalid_arg "Tournament.make: n >= 1";
  let leaves = leaves_for n 1 in
  {
    name = Printf.sprintf "tournament-%d" n;
    description = "arbitration tree of 2-process Peterson locks (registers only)";
    num_processes = n;
    num_registers = 3 * max 1 (leaves - 1);
    uses_swap = false;
    start =
      (fun ~pid ->
        let path = path_of ~leaves pid in
        { me = pid; path; phase = (if path = [] then At_cs else Lock_flag 0) });
    poised =
      (fun st ->
        match st.phase with
        | Lock_flag i ->
          let node, side = node_side st i in
          Algorithm.Write (flag_reg node side, Value.int 1)
        | Lock_turn i ->
          let node, side = node_side st i in
          Algorithm.Write (turn_reg node, Value.int side)
        | Wait_flag i ->
          let node, side = node_side st i in
          Algorithm.Read (flag_reg node (1 - side))
        | Wait_turn i ->
          let node, _ = node_side st i in
          Algorithm.Read (turn_reg node)
        | At_cs -> Algorithm.Enter_cs
        | In_cs -> Algorithm.Exit_cs
        | Unlock i ->
          let node, side = node_side st i in
          Algorithm.Write (flag_reg node side, Value.int 0)
        | Finished -> Algorithm.Done);
    on_read =
      (fun st v ->
        match st.phase with
        | Wait_flag i ->
          if int_of v <= 0 then acquired st i else { st with phase = Wait_turn i }
        | Wait_turn i ->
          let _, side = node_side st i in
          if int_of v <> side then acquired st i else { st with phase = Wait_flag i }
        | Lock_flag _ | Lock_turn _ | At_cs | In_cs | Unlock _ | Finished ->
          invalid_arg (Printf.sprintf "Tournament.on_read: p%d out of phase" st.me));
    on_write =
      (fun st ->
        match st.phase with
        | Lock_flag i -> { st with phase = Lock_turn i }
        | Lock_turn i -> { st with phase = Wait_flag i }
        | Unlock i ->
          if i = 0 then { st with phase = Finished } else { st with phase = Unlock (i - 1) }
        | Wait_flag _ | Wait_turn _ | At_cs | In_cs | Finished ->
          invalid_arg (Printf.sprintf "Tournament.on_write: p%d out of phase" st.me));
    on_swap = Algorithm.no_swap;
    on_enter =
      (fun st -> match st.phase with At_cs -> { st with phase = In_cs } | _ -> invalid_arg (Printf.sprintf "Tournament.on_enter: p%d out of phase" st.me));
    on_exit =
      (fun st ->
        match st.phase with
        | In_cs ->
          let top = List.length st.path - 1 in
          if top < 0 then { st with phase = Finished } else { st with phase = Unlock top }
        | _ -> invalid_arg (Printf.sprintf "Tournament.on_exit: p%d out of phase" st.me));
  }
