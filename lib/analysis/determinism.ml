open Ts_model

let report = Finding.Sink.report

(* Outcome of one attempted step, reduced to comparable data: the packed
   digest of the successor plus the performed action, or the exception
   text.  Digest comparison is exactly the equality the memo tables use,
   so "same outcome" here means "the search core cannot be confused". *)
let outcome proto pk cfg p ~coin =
  match Config.step proto cfg p ~coin with
  | cfg', act -> Ok (Ckey.pack pk cfg', act)
  | exception e -> Error (Printexc.to_string e)

let outcomes_equal a b =
  match a, b with
  | Ok (d1, a1), Ok (d2, a2) -> Ckey.equal d1 d2 && Action.equal a1 a2
  | Error e1, Error e2 -> String.equal e1 e2
  | _ -> false

let describe = function
  | Ok (_, act) -> Format.asprintf "%a" Action.pp act
  | Error e -> "raise " ^ e

(* A shadow copy of the configuration: a structural round-trip severs any
   aliasing from the state into mutable store outside the configuration.
   States are required to be plain immutable data, so this must both
   succeed and behave identically. *)
let shadow_copy (cfg : 's Config.t) : 's Config.t option =
  match Marshal.to_string cfg [] with
  | s -> Some (Marshal.from_string s 0)
  | exception _ -> None

let run ?(max_configs = 1_500) ?(max_depth = 20) proto ~inputs_list =
  let n = proto.Protocol.num_processes in
  let snk = Finding.Sink.create ~protocol:proto.Protocol.name ~pass:"determinism" in
  let pk = Ckey.packer proto in
  let visited = Ckey.Tbl.create 256 in
  let explored = ref 0 in
  let q = Queue.create () in
  List.iter
    (fun inputs ->
      match Config.initial proto ~inputs with
      | cfg0 ->
        let k = Ckey.pack pk cfg0 in
        if not (Ckey.Tbl.mem visited k) then begin
          Ckey.Tbl.replace visited k ();
          Queue.add (cfg0, 0) q
        end
      | exception e ->
        report snk ~code:"init-raised" Finding.Error
          (Printf.sprintf "init raised: %s" (Printexc.to_string e)))
    inputs_list;
  while not (Queue.is_empty q) do
    let cfg, depth = Queue.pop q in
    incr explored;
    if depth < max_depth && !explored < max_configs then
      for p = 0 to n - 1 do
        (* poised must be a pure observation: ask twice *)
        let poised () = try Ok (Config.poised proto cfg p) with e -> Error (Printexc.to_string e) in
        let p1 = poised () and p2 = poised () in
        if p1 <> p2 then
          report snk ~code:"unstable-poised" Finding.Error
            (Printf.sprintf
               "poised for p%d changed between two observations of the same \
                configuration: hidden mutable state"
               p);
        match p1 with
        | Error _ | Ok None -> ()
        | Ok (Some act) ->
          let coins =
            match act with Action.Flip -> [ Some true; Some false ] | _ -> [ None ]
          in
          List.iter
            (fun coin ->
              let o1 = outcome proto pk cfg p ~coin in
              let o2 = outcome proto pk cfg p ~coin in
              if not (outcomes_equal o1 o2) then
                report snk ~code:"hidden-nondeterminism" Finding.Error
                  (Printf.sprintf
                     "stepping p%d twice from one configuration diverged (%s vs %s): \
                      nondeterminism not routed through a declared coin"
                     p (describe o1) (describe o2));
              (match shadow_copy cfg with
               | None ->
                 report snk ~code:"state-not-plain-data" Finding.Error
                   (Printf.sprintf
                      "configuration is not structurally serializable (closure or \
                       custom block in p%d's state?): memoization and replay are \
                       unsound"
                      p)
               | Some cfg_shadow ->
                 let o3 = outcome proto pk cfg_shadow p ~coin in
                 if not (outcomes_equal o1 o3) then
                   report snk ~code:"impure-transition" Finding.Error
                     (Printf.sprintf
                        "stepping p%d from a shadow copy diverged (%s vs %s): the \
                         transition reads state outside the configuration"
                        p (describe o1) (describe o3)));
              match o1 with
              | Error _ -> ()
              | Ok _ ->
                (* expand from a fresh step so the enqueued successor is the
                   protocol's honest output, not an artifact of the probes *)
                (match Config.step proto cfg p ~coin with
                 | cfg', _ ->
                   let k = Ckey.pack pk cfg' in
                   if not (Ckey.Tbl.mem visited k) then begin
                     Ckey.Tbl.replace visited k ();
                     Queue.add (cfg', depth + 1) q
                   end
                 | exception _ -> ()))
            coins
      done
  done;
  Finding.Sink.findings snk
