(** Engine race detector: a vector-clock (epoch/lockset-style) checker
    over {!Ts_model.Trace} access logs.

    The parallel search's safety argument is "workers share nothing
    mutable except the budget atomics".  When tracing is armed, the
    engine's shared-structure touch points ({!Ts_model.Par} reassembly,
    {!Ts_model.Ckey} packers, the checker's visited/solo tables,
    {!Ts_core.Budget} counters) log access events plus fork/join edges;
    this module replays the log with one vector clock per domain
    (fork/begin and end/join edges transfer clocks, FastTrack-style merged
    epochs per location) and reports every pair of conflicting accesses —
    at least one write, not both atomic — that are not ordered by
    happens-before.

    [certify_engine] runs an instrumented domain-parallel consensus search
    and must come back race-free; [planted] runs a deliberately racy
    fan-out (two domains bumping one plain ref) and must not. *)

open Ts_model

type access = {
  domain : int;
  loc : string;
  kind : Trace.kind;
  atomic : bool;
  index : int;  (** position in the event log, for reporting *)
}

type race = {
  loc : string;
  first : access;  (** the earlier access of the unordered conflicting pair *)
  second : access;
}

type report = {
  events : int;  (** total events checked *)
  accesses : int;  (** access events among them *)
  locations : int;  (** distinct locations touched *)
  domains : int;  (** distinct domains seen *)
  races : race list;  (** at most one reported race per location *)
}

(** [check events] replays a {!Ts_model.Trace} log through the
    vector-clock checker. *)
val check : Trace.event list -> report

val race_free : report -> bool

(** Run {!Ts_checker.Explore.check_consensus} on the racing protocol over
    [domains] domains (default 4) with tracing armed, and check the log.
    This is the shipped-workload certificate. *)
val certify_engine : ?domains:int -> unit -> report

(** The planted-race fixture: fan a plain (non-atomic) read-modify-write
    counter out over [domains] domains (default 2) through {!Ts_model.Par}
    with tracing armed.  The checker must report a race on
    ["planted.cell"] — a detector that cannot catch this certifies
    nothing. *)
val planted : ?domains:int -> unit -> report

(** Machine-readable form of a race report. *)
val to_json : report -> Json.t

(** Human-readable rendering of a race report. *)
val pp_report : Format.formatter -> report -> unit
