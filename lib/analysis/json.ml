type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%g" f)

(* [indent < 0] means compact; otherwise the current indentation depth. *)
let rec add buf ~indent v =
  let nl depth =
    if indent >= 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (max 0 indent + 1);
        add buf ~indent:(if indent >= 0 then indent + 1 else indent) item)
      items;
    nl (max 0 indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (max 0 indent + 1);
        add_escaped buf k;
        Buffer.add_string buf (if indent >= 0 then ": " else ":");
        add buf ~indent:(if indent >= 0 then indent + 1 else indent) item)
      fields;
    nl (max 0 indent);
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf ~indent:(-1) v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  add buf ~indent:0 v;
  Buffer.contents buf

(* --- parsing -----------------------------------------------------------

   A hand-rolled recursive-descent parser, the read half of the emitter
   above: the service daemon must parse request frames off the wire and
   the container may not carry a JSON library.  Accepts exactly RFC-8259
   JSON (with \uXXXX escapes decoded to UTF-8); rejects everything else
   with a position-stamped message. *)

exception Parse_error of string

let parse_error pos msg =
  raise (Parse_error (Printf.sprintf "at byte %d: %s" pos msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_error !pos (Printf.sprintf "expected %c, found %c" c c')
    | None -> parse_error !pos (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else parse_error !pos ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then parse_error !pos "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> parse_error !pos "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    (* code point to UTF-8; surrogate pairs were already combined *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents buf
      | '\\' ->
        advance ();
        (if !pos >= n then parse_error !pos "unterminated escape";
         (match s.[!pos] with
          | '"' -> advance (); Buffer.add_char buf '"'
          | '\\' -> advance (); Buffer.add_char buf '\\'
          | '/' -> advance (); Buffer.add_char buf '/'
          | 'b' -> advance (); Buffer.add_char buf '\b'
          | 'f' -> advance (); Buffer.add_char buf '\012'
          | 'n' -> advance (); Buffer.add_char buf '\n'
          | 'r' -> advance (); Buffer.add_char buf '\r'
          | 't' -> advance (); Buffer.add_char buf '\t'
          | 'u' ->
            advance ();
            let cp = hex4 () in
            let cp =
              if cp >= 0xd800 && cp <= 0xdbff then begin
                (* high surrogate: a \uXXXX low surrogate must follow *)
                if !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo < 0xdc00 || lo > 0xdfff then
                    parse_error !pos "invalid low surrogate";
                  0x10000 + (((cp - 0xd800) lsl 10) lor (lo - 0xdc00))
                end
                else parse_error !pos "lone high surrogate"
              end
              else if cp >= 0xdc00 && cp <= 0xdfff then
                parse_error !pos "lone low surrogate"
              else cp
            in
            add_utf8 buf cp
          | c -> parse_error !pos (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | c when Char.code c < 0x20 -> parse_error !pos "unescaped control character"
      | c -> advance (); Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then parse_error !pos "expected digit"
    in
    if peek () = Some '-' then advance ();
    (match peek () with
     | Some '0' -> advance ()
     | Some ('1' .. '9') -> digits ()
     | _ -> parse_error !pos "expected digit");
    let fractional = peek () = Some '.' in
    if fractional then begin advance (); digits () end;
    let exponent = match peek () with Some ('e' | 'E') -> true | _ -> false in
    if exponent then begin
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    end;
    let lexeme = String.sub s start (!pos - start) in
    if (not fractional) && not exponent then
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> Float (float_of_string lexeme)
    else Float (float_of_string lexeme)
  in
  let rec parse_value depth =
    if depth > 512 then parse_error !pos "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [ parse_value (depth + 1) ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value (depth + 1) :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> parse_error !pos (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then parse_error !pos "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- field accessors ---------------------------------------------------

   Tiny lookup helpers for consumers of parsed documents (the service's
   request decoder, the tests).  All are total: a missing or mistyped
   field is [None], never an exception. *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
