type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%g" f)

(* [indent < 0] means compact; otherwise the current indentation depth. *)
let rec add buf ~indent v =
  let nl depth =
    if indent >= 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (max 0 indent + 1);
        add buf ~indent:(if indent >= 0 then indent + 1 else indent) item)
      items;
    nl (max 0 indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (max 0 indent + 1);
        add_escaped buf k;
        Buffer.add_string buf (if indent >= 0 then ": " else ":");
        add buf ~indent:(if indent >= 0 then indent + 1 else indent) item)
      fields;
    nl (max 0 indent);
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf ~indent:(-1) v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  add buf ~indent:0 v;
  Buffer.contents buf
