(** The gating analyzer driver behind [tightspace analyze].

    Per registered protocol ({!Registry}), runs three passes in order:

    + {!Lint} — abstract footprint lint over the bounded reachable space;
    + {!Determinism} — double-step / shadow-copy purity replay;
    + a bounded {e property} pass ({!Ts_checker.Explore.check_set_agreement}
      with the entry's [k]) translating any violation into a finding.

    The property pass is skipped (with an [Info] note) when lint or
    determinism already produced errors: stepping a protocol whose
    footprint is illegal (e.g. an out-of-range write) would fault the
    engine rather than produce a verdict.

    A protocol is {e flagged} when any pass emits an [Error].  A report is
    {e ok} when flaggedness matches the registry's expectation — the
    negative controls must be flagged, the legitimate protocols must not
    be.  {!analyze_all} additionally certifies the parallel engine
    race-free ({!Race.certify_engine}) and proves the detector can fire
    ({!Race.planted}); [overall.ok] is the CI gate. *)

type protocol_report = {
  entry : Registry.entry;
  findings : Finding.t list;  (** all passes, in pass order *)
  summary : Lint.summary;
  flagged : bool;  (** some finding is an [Error] *)
  ok : bool;  (** [flagged = not entry.expect_clean] *)
}

type overall = {
  reports : protocol_report list;
  engine : Race.report;  (** instrumented parallel search, must be race-free *)
  planted : Race.report;  (** planted-race fixture, must NOT be race-free *)
  unregistered : string list;
      (** protocols in {!Ts_protocols.Catalog} missing from the registry —
          drift that would let a new protocol dodge the analyzers; gating *)
  uncataloged : string list;
      (** registered protocols missing from the catalog; gating *)
  ok : bool;
}

(** [analyze entry] runs the three passes on one registry entry.
    [?domains] (default 1) fans the property pass's input vectors out. *)
val analyze : ?domains:int -> Registry.entry -> protocol_report

(** [analyze_all ()] analyzes every registry entry plus the race-detector
    pair.  [?domains] also sizes the instrumented engine certification. *)
val analyze_all : ?domains:int -> unit -> overall

(** Machine-readable form of one protocol's report, as emitted by
    [tightspace analyze --protocol NAME --json]. *)
val report_to_json : protocol_report -> Json.t

(** Machine-readable form of a whole gate run, as emitted by
    [tightspace analyze --all --json]. *)
val overall_to_json : overall -> Json.t

(** Human-readable rendering of one protocol's report. *)
val pp_report : Format.formatter -> protocol_report -> unit

(** Human-readable rendering of a whole gate run. *)
val pp_overall : Format.formatter -> overall -> unit
