(** The gating certificate pass behind [tightspace analyze --certify].

    Harvests the engine's witnesses for every registry entry — Theorem-1
    space-bound certificates for the tractable clean protocols, property
    violations for the negative controls, a resilience violation for the
    crash control, a 1-agreement violation for the k-set protocol — and
    demands that every emitted certificate passes {e both} independent
    checks ({!Ts_microcheck.Microcheck} and the engine-side
    {!Ts_cert.Cert.validate}) while every mutated variant (byte flip,
    schedule truncation with a forged digest, verdict rewrite with a
    forged digest, digest zeroing) is rejected.

    Entries with no executable witness (the lint controls, or clean
    protocols whose Theorem-1 construction is out of reach at gate
    budgets) are recorded as skipped with a reason.  [report.ok] — every
    witness validated, every mutant rejected, at least one witness
    overall — is the CI gate. *)

type protocol_report = {
  name : string;
  witnesses : int;  (** certificates emitted for this protocol *)
  validated : int;  (** accepted by micro-checker + engine replay *)
  tampers : int;  (** mutants generated *)
  tampers_rejected : int;
  skipped : string option;  (** reason when no witness was attempted *)
  errors : string list;
  checker_ns : int64;  (** total micro-checker time, wall clock *)
  engine_ns : int64;  (** total witness-producing engine time *)
}

type report = { protocols : protocol_report list; ok : bool }

(** Run the pass over the whole registry.  [?domains] (default 1) fans
    the property searches out. *)
val run : ?domains:int -> unit -> report

val report_to_json : report -> Json.t
val pp_report : Format.formatter -> report -> unit
