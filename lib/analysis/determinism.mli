(** Determinism and purity checker.

    The memoized search core ({!Ts_checker.Explore}) and the witness
    replayer ({!Ts_checker.Explore.replay}) both assume that a protocol's
    transitions are pure functions of the configuration: stepping the same
    process with the same coin from structurally equal configurations must
    yield structurally equal results, every time.  A protocol that hides
    mutable state in a closure, consults a global, or flips an undeclared
    coin breaks that silently — memo tables then cache lies and replays
    diverge.

    This pass replays every enumerated step {e twice} from the same
    configuration, and a third time from a shadow copy (a structural
    round-trip of the configuration, so any aliasing into hidden mutable
    state is severed).  Outcomes are compared by packed configuration
    digest plus performed action:

    - repeat divergence → ["hidden-nondeterminism"]: the transition is not
      a function of its arguments;
    - shadow divergence → ["impure-transition"]: the transition depends on
      state shared outside the configuration;
    - unstable poised → ["unstable-poised"]: [poised] itself is impure;
    - states that a structural round-trip cannot serialize (closures,
      custom blocks) → ["state-not-plain-data"].

    All divergence not routed through the declared coin ({!Ts_model.Rng}
    resolutions surface as explicit [Flip] actions, which this pass pins to
    both outcomes) is flagged. *)

open Ts_model

(** [run proto ~inputs_list] replays a bounded exploration of [proto]
    from every input vector with the double-step and shadow-copy probes
    armed, returning every divergence found (empty means the protocol
    passed).  [?max_configs] and [?max_depth] bound each exploration. *)
val run :
  ?max_configs:int ->
  ?max_depth:int ->
  's Protocol.t ->
  inputs_list:Value.t array list ->
  Finding.t list
