open Ts_model

type xcheck =
  | Expect_agree
  | Expect_diverge
  | Informational

type entry = {
  cli_name : string;
  protocol : Protocol.packed;
  claims : Lint.claims;
  inputs_list : Value.t array list;
  k : int;
  max_configs : int;
  max_depth : int;
  solo_budget : int;
  expect_clean : bool;
  xcheck : xcheck;
}

let rw_det = { Lint.binary_decides = true; may_swap = false; may_flip = false }

(* Inputs 0..2^bits-1 per process, full cross product — the multivalued
   protocol's domain is wider than binary. *)
let range_inputs n ~lo ~hi =
  let rec go p =
    if p = n then [ [] ]
    else
      let rest = go (p + 1) in
      List.concat_map (fun v -> List.map (fun tl -> Value.int v :: tl) rest)
        (List.init (hi - lo + 1) (fun i -> lo + i))
  in
  List.map Array.of_list (go 0)

let entry ?(claims = rw_det) ?(k = 1) ?(max_configs = 4_000) ?(max_depth = 25)
    ?(solo_budget = 300) ?(inputs_list : Value.t array list option)
    ?(expect_clean = true) ?(xcheck = Informational) cli_name
    (Protocol.Packed p as protocol) =
  let inputs_list =
    match inputs_list with
    | Some l -> l
    | None -> Ts_checker.Explore.binary_inputs p.Protocol.num_processes
  in
  { cli_name; protocol; claims; inputs_list; k; max_configs; max_depth;
    solo_budget; expect_clean; xcheck }

let all () =
  let open Ts_protocols in
  [
    entry "racing" (Protocol.Packed (Racing.make ~n:2)) ~xcheck:Expect_agree;
    entry "racing-rand"
      (Protocol.Packed (Racing.make_randomized ~n:2))
      ~claims:{ rw_det with may_flip = true }
      ~xcheck:Expect_agree;
    entry "swap"
      (Protocol.Packed (Swap_consensus.two_process ()))
      ~claims:{ rw_det with may_swap = true }
      ~xcheck:Expect_agree;
    entry "kset" (Protocol.Packed (Kset.make ~n:3 ~k:2)) ~k:2
      ~max_configs:12_000 ~solo_budget:150;
    entry "multivalued"
      (Protocol.Packed (Multivalued.make ~n:2 ~bits:2))
      ~claims:{ rw_det with binary_decides = false }
      ~inputs_list:(range_inputs 2 ~lo:0 ~hi:3)
      ~max_configs:12_000 ~solo_budget:400;
    (* negative controls: the gate requires each to be flagged *)
    entry "swap-chain"
      (Protocol.Packed (Swap_consensus.naive_chain ~n:3))
      ~claims:{ rw_det with may_swap = true }
      ~expect_clean:false;
    entry "broken-lww" (Protocol.Packed (Broken.last_write_wins ~n:2))
      ~expect_clean:false;
    entry "broken-max" (Protocol.Packed (Broken.naive_max ~n:2))
      ~max_configs:50_000 ~max_depth:30 ~expect_clean:false;
    entry "broken-const" (Protocol.Packed (Broken.oblivious_seven ~n:2))
      ~expect_clean:false;
    entry "broken-spin" (Protocol.Packed (Broken.insomniac ~n:2))
      ~expect_clean:false;
    entry "broken-wait" (Protocol.Packed (Broken.wait_for_all ~n:2))
      ~expect_clean:false;
    entry "broken-rogue" (Protocol.Packed (Broken.rogue_writer ~n:2))
      ~expect_clean:false;
    (* the crosscheck layer's planted divergence: the revisionist engine
       claims a bound here, the Lemmas engine refuses — the gate must
       catch the disagreement *)
    entry "broken-scribbler" (Protocol.Packed (Broken.scribbler ~n:2))
      ~expect_clean:false ~xcheck:Expect_diverge;
  ]

let find name = List.find_opt (fun e -> String.equal e.cli_name name) (all ())
let names () = List.map (fun e -> e.cli_name) (all ())
