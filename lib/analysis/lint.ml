open Ts_model

type claims = {
  binary_decides : bool;
  may_swap : bool;
  may_flip : bool;
}

type summary = {
  configs : int;
  truncated : bool;
  max_register : int;
  registers_touched : int;
  reads : int;
  writes : int;
  swaps : int;
  flips : int;
  decides : int;
  decide_reachable : bool;
}

let report = Finding.Sink.report
let findings = Finding.Sink.findings
let is_binary v = Value.equal v (Value.int 0) || Value.equal v (Value.int 1)

let run ?(max_configs = 4_000) ?(max_depth = 25) claims proto ~inputs_list =
  let n = proto.Protocol.num_processes in
  let nregs = proto.Protocol.num_registers in
  let snk = Finding.Sink.create ~protocol:proto.Protocol.name ~pass:"lint" in
  let pk = Ckey.packer proto in
  let visited = Ckey.Tbl.create 256 in
  let regs_touched = Hashtbl.create 16 in
  let max_reg = ref (-1) in
  let reads = ref 0 and writes = ref 0 and swaps = ref 0 in
  let flips = ref 0 and decides = ref 0 in
  let explored = ref 0 in
  let truncated = ref false in
  let touch r =
    Hashtbl.replace regs_touched r ();
    if r > !max_reg then max_reg := r
  in
  let in_range r = r >= 0 && r < nregs in
  (* Examine the action process [p] is poised to take; [true] iff stepping
     it is safe (the footprint is legal, so the engine cannot fault). *)
  let examine_action p act =
    (match Action.accessed_register act with
     | Some r -> touch r
     | None -> ());
    match act with
    | Action.Read r ->
      incr reads;
      if in_range r then true
      else begin
        report snk ~code:"register-out-of-range" Finding.Error
          (Printf.sprintf "p%d poised to read register %d outside 0..%d" p r (nregs - 1));
        false
      end
    | Action.Write (r, _) ->
      incr writes;
      if in_range r then true
      else begin
        report snk ~code:"register-out-of-range" Finding.Error
          (Printf.sprintf "p%d poised to write register %d outside 0..%d" p r (nregs - 1));
        false
      end
    | Action.Swap (r, _) ->
      incr swaps;
      if not claims.may_swap then
        report snk ~code:"primitive-outside-model" Finding.Error
          (Printf.sprintf
             "p%d poised to swap register %d but the declared model is read/write only"
             p r);
      if in_range r then claims.may_swap
      else begin
        report snk ~code:"register-out-of-range" Finding.Error
          (Printf.sprintf "p%d poised to swap register %d outside 0..%d" p r (nregs - 1));
        false
      end
    | Action.Flip ->
      incr flips;
      if not claims.may_flip then begin
        report snk ~code:"undeclared-flip" Finding.Error
          (Printf.sprintf "p%d poised to flip a coin but the protocol claims determinism" p);
        false
      end
      else true
    | Action.Decide v ->
      incr decides;
      if claims.binary_decides && not (is_binary v) then
        report snk ~code:"nonbinary-decide" Finding.Error
          (Printf.sprintf "p%d poised to decide %s outside the binary domain {0,1}" p
             (Value.to_string v));
      true
  in
  (* One shared visited table across input vectors: the footprint is a
     property of the whole reachable space, and vectors overlap. *)
  let q = Queue.create () in
  List.iter
    (fun inputs ->
      match Config.initial proto ~inputs with
      | cfg0 ->
        let k = Ckey.pack pk cfg0 in
        if not (Ckey.Tbl.mem visited k) then begin
          Ckey.Tbl.replace visited k ();
          Queue.add (cfg0, 0) q
        end
      | exception e ->
        report snk ~code:"transition-raised" Finding.Error
          (Printf.sprintf "init raised on inputs [%s]: %s"
             (String.concat ";" (Array.to_list (Array.map Value.to_string inputs)))
             (Printexc.to_string e)))
    inputs_list;
  while not (Queue.is_empty q) do
    let cfg, depth = Queue.pop q in
    incr explored;
    if depth >= max_depth || !explored >= max_configs then truncated := true
    else
      for p = 0 to n - 1 do
        match Config.poised proto cfg p with
        | None -> ()
        | Some act ->
          let safe = examine_action p act in
          if safe then begin
            let coins = match act with Action.Flip -> [ Some true; Some false ] | _ -> [ None ] in
            List.iter
              (fun coin ->
                match Config.step proto cfg p ~coin with
                | cfg', _ ->
                  let k = Ckey.pack pk cfg' in
                  if not (Ckey.Tbl.mem visited k) then begin
                    Ckey.Tbl.replace visited k ();
                    Queue.add (cfg', depth + 1) q
                  end
                | exception e ->
                  report snk ~code:"transition-raised" Finding.Error
                    (Printf.sprintf "p%d's transition raised on a reachable state: %s" p
                       (Printexc.to_string e)))
              coins
          end
        | exception e ->
          report snk ~code:"transition-raised" Finding.Error
            (Printf.sprintf "poised raised for p%d on a reachable state: %s" p
               (Printexc.to_string e))
      done
  done;
  if !decides = 0 then
    if !truncated then
      report snk ~code:"no-decision-within-bounds" Finding.Warning
        "no reachable configuration decides within the explored bounds"
    else
      report snk ~code:"decision-unreachable" Finding.Error
        "no reachable configuration ever decides: termination is impossible \
         (the enumeration was exhaustive)";
  if claims.may_flip && !flips = 0 then
    report snk ~code:"flips-unexercised" Finding.Info
      "protocol declares coin flips but never reached a flip";
  if claims.may_swap && !swaps = 0 then
    report snk ~code:"swaps-unexercised" Finding.Info
      "protocol declares the historyless model but never reached a swap";
  if !writes = 0 && !swaps = 0 then
    report snk ~code:"write-free" Finding.Info
      "protocol never writes shared memory within the explored bounds";
  ( findings snk,
    {
      configs = !explored;
      truncated = !truncated;
      max_register = !max_reg;
      registers_touched = Hashtbl.length regs_touched;
      reads = !reads;
      writes = !writes;
      swaps = !swaps;
      flips = !flips;
      decides = !decides;
      decide_reachable = !decides > 0;
    } )

let summary_to_json s =
  Json.Obj
    [
      "configs", Json.Int s.configs;
      "truncated", Json.Bool s.truncated;
      "max_register", Json.Int s.max_register;
      "registers_touched", Json.Int s.registers_touched;
      "reads", Json.Int s.reads;
      "writes", Json.Int s.writes;
      "swaps", Json.Int s.swaps;
      "flips", Json.Int s.flips;
      "decides", Json.Int s.decides;
      "decide_reachable", Json.Bool s.decide_reachable;
    ]

let pp_summary ppf s =
  Fmt.pf ppf
    "%d configs%s; regs touched %d (max R%d); actions r/w/s/f/d = %d/%d/%d/%d/%d"
    s.configs
    (if s.truncated then " (truncated)" else "")
    s.registers_touched s.max_register s.reads s.writes s.swaps s.flips s.decides
