open Ts_model

type protocol_report = {
  entry : Registry.entry;
  findings : Finding.t list;
  summary : Lint.summary;
  flagged : bool;
  ok : bool;
}

type overall = {
  reports : protocol_report list;
  engine : Race.report;
  planted : Race.report;
  unregistered : string list;
  uncataloged : string list;
  ok : bool;
}

(* The property pass: bounded model checking as an analyzer, its verdict
   rendered as findings like any other pass. *)
let property_findings ?(domains = 1) (e : Registry.entry) =
  let (Protocol.Packed proto) = e.protocol in
  let snk = Finding.Sink.create ~protocol:proto.Protocol.name ~pass:"property" in
  let report = Finding.Sink.report in
  let r =
    Ts_checker.Explore.check_set_agreement ~domains ~k:e.k proto
      ~inputs_list:e.inputs_list ~max_configs:e.max_configs
      ~max_depth:e.max_depth ~solo_budget:e.solo_budget ~check_solo:true
  in
  (match r.Ts_checker.Explore.verdict with
   | Ok () -> ()
   | Error v ->
     let code, msg =
       match v with
       | Ts_checker.Explore.Agreement_violation { values; _ } ->
         ( "agreement-violation",
           Printf.sprintf "reachable configuration decides %d distinct values (k = %d)"
             (List.length values) e.k )
       | Ts_checker.Explore.Validity_violation { value; _ } ->
         ( "validity-violation",
           Printf.sprintf "reachable configuration decides %s, which no process proposed"
             (Value.to_string value) )
       | Ts_checker.Explore.Solo_stuck { pid; _ } ->
         ( "solo-nontermination",
           Printf.sprintf
             "p%d has a reachable configuration with no deciding solo run within %d steps"
             pid e.solo_budget )
       | Ts_checker.Explore.Crash_stuck { crashed; _ } ->
         ( "crash-stuck",
           Printf.sprintf "crashing {%s} leaves the survivors unable to decide"
             (String.concat "," (List.map string_of_int crashed)) )
     in
     report snk ~code Finding.Error msg);
  List.iter
    (fun (i, msg) ->
      report snk ~code:"worker-raised" Finding.Error
        (Printf.sprintf "parallel worker for input vector %d raised: %s" i msg))
    r.Ts_checker.Explore.worker_errors;
  (match r.Ts_checker.Explore.stopped with
   | None -> ()
   | Some b ->
     report snk ~code:"budget-breached" Finding.Warning
       (Format.asprintf "property pass stopped early: %a" Ts_core.Budget.pp_breach b));
  Finding.Sink.findings snk

let analyze ?(domains = 1) (e : Registry.entry) =
  let (Protocol.Packed proto) = e.protocol in
  let lint_findings, summary =
    Lint.run e.claims proto ~inputs_list:e.inputs_list
      ~max_configs:e.max_configs ~max_depth:e.max_depth
  in
  let det_findings = Determinism.run proto ~inputs_list:e.inputs_list in
  let static_errors = Finding.errors (lint_findings @ det_findings) <> [] in
  let prop_findings =
    if static_errors then
      [ Finding.v ~protocol:proto.Protocol.name ~pass:"property"
          ~code:"property-pass-skipped" Finding.Info
          "skipped: earlier passes reported errors, stepping this protocol is unsafe" ]
    else property_findings ~domains e
  in
  let findings = lint_findings @ det_findings @ prop_findings in
  let flagged = Finding.errors findings <> [] in
  { entry = e; findings; summary; flagged; ok = flagged = not e.expect_clean }

let analyze_all ?(domains = 1) () =
  let reports = List.map (analyze ~domains) (Registry.all ()) in
  let engine = Race.certify_engine ~domains:(max 2 domains) () in
  let planted = Race.planted () in
  (* Registry drift: every protocol the CLI catalog ships must be
     registered here (and vice versa), or the gate fails loudly — a new
     protocol cannot slip past the analyzers by simply never being
     registered. *)
  let registered = Registry.names () in
  let cataloged = Ts_protocols.Catalog.names () in
  let missing_from xs ys = List.filter (fun x -> not (List.mem x ys)) xs in
  let unregistered = missing_from cataloged registered in
  let uncataloged = missing_from registered cataloged in
  let ok =
    List.for_all (fun (r : protocol_report) -> r.ok) reports
    && Race.race_free engine
    && not (Race.race_free planted)
    && unregistered = [] && uncataloged = []
  in
  { reports; engine; planted; unregistered; uncataloged; ok }

let report_to_json r =
  Json.Obj
    [
      "protocol", Json.Str r.entry.Registry.cli_name;
      "expect_clean", Json.Bool r.entry.Registry.expect_clean;
      "flagged", Json.Bool r.flagged;
      "ok", Json.Bool r.ok;
      "summary", Lint.summary_to_json r.summary;
      "findings", Json.List (List.map Finding.to_json r.findings);
    ]

let overall_to_json o =
  Json.Obj
    [
      "ok", Json.Bool o.ok;
      "protocols", Json.List (List.map report_to_json o.reports);
      "engine_race_check", Race.to_json o.engine;
      "planted_race_check", Race.to_json o.planted;
      "planted_race_caught", Json.Bool (not (Race.race_free o.planted));
      "unregistered_protocols",
      Json.List (List.map (fun s -> Json.Str s) o.unregistered);
      "uncataloged_protocols",
      Json.List (List.map (fun s -> Json.Str s) o.uncataloged);
    ]

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s: %s (expected %s)@,  footprint: %a%a@]"
    r.entry.Registry.cli_name
    (if r.flagged then "FLAGGED" else "clean")
    (if r.entry.Registry.expect_clean then "clean" else "flagged")
    Lint.pp_summary r.summary
    (Fmt.list ~sep:Fmt.nop (fun ppf f -> Fmt.pf ppf "@,  %a" Finding.pp f))
    r.findings

let pp_overall ppf o =
  Fmt.pf ppf "@[<v>%a@,engine race check: %a@,planted race check: %a (%s)%a%a@,overall: %s@]"
    (Fmt.list ~sep:Fmt.cut pp_report) o.reports
    Race.pp_report o.engine Race.pp_report o.planted
    (if Race.race_free o.planted then "NOT caught — detector is blind"
     else "caught, as required")
    (fun ppf -> function
      | [] -> ()
      | l -> Fmt.pf ppf "@,UNREGISTERED protocols (in catalog, not in registry): %s"
               (String.concat ", " l))
    o.unregistered
    (fun ppf -> function
      | [] -> ()
      | l -> Fmt.pf ppf "@,UNCATALOGED protocols (registered, not in catalog): %s"
               (String.concat ", " l))
    o.uncataloged
    (if o.ok then "PASS" else "FAIL")
