open Ts_model
module Cert = Ts_cert.Cert
module Explore = Ts_checker.Explore
module Theorem = Ts_core.Theorem

(* The gating certificate pass behind [tightspace analyze --certify].

   For every registry entry it harvests the engine's witnesses — Theorem-1
   space-bound certificates where the construction is tractable, property
   violations for the negative controls, a resilience violation for the
   crash control, a 1-agreement violation for the k-set protocol — wraps
   each in a {!Ts_cert.Cert} certificate and demands that

   - the independent micro-checker accepts it,
   - the engine-side protocol replay ({!Ts_cert.Cert.validate}) accepts it,
   - every mutated variant (schedule tamper, forged-verdict tamper with a
     recomputed digest, digest tamper, single byte flip) is rejected.

   A protocol with no executable witness (the lint controls, or a clean
   protocol whose Theorem-1 run is out of reach at gate budgets) is
   recorded as skipped with its reason; everything else must certify. *)

type protocol_report = {
  name : string;
  witnesses : int;  (** certificates emitted for this protocol *)
  validated : int;  (** accepted by micro-checker + engine replay *)
  tampers : int;  (** mutants generated *)
  tampers_rejected : int;
  skipped : string option;  (** reason when no witness was attempted *)
  errors : string list;
  checker_ns : int64;  (** total micro-checker time, wall clock *)
  engine_ns : int64;  (** total witness-producing engine time *)
}

type report = { protocols : protocol_report list; ok : bool }

(* Protocols whose Theorem-1 construction completes at gate budgets; the
   other clean entries certify through violation witnesses instead (kset
   at k = 1) or are skipped with a reason (multivalued: the n - 1 bound
   construction is out of reach at CI time scales). *)
let theorem_entries = [ "racing"; "racing-rand"; "swap" ]

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  (x, Int64.of_float ((t1 -. t0) *. 1e9))

(* Every mutation a certificate must survive^W die from. *)
let tampers (s : string) : (string * string) list =
  let mutants = ref [] in
  let add name m = mutants := (name, m) :: !mutants in
  (* 1. a single flipped byte, mid-document *)
  let b = Bytes.of_string s in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  add "byte-flip" (Bytes.to_string b);
  (match Cert.of_string s with
  | Error _ -> ()
  | Ok cert ->
      let module J = Ts_microcheck.Microcheck.Json in
      let doc = Cert.to_json cert in
      (match doc with
      | J.Obj kvs ->
          (* 2. schedule tamper with a forged digest — rejection must come
             from the replay, not the digest.  Reattribute the first step
             to a different process (the trace no longer agrees); an empty
             schedule gains a phantom step the trace does not have. *)
          let swap_field name f =
            List.map (fun (k, v) -> if k = name then (k, f v) else (k, v)) kvs
          in
          let tampered_schedule = function
            | J.List [] -> J.List [ J.Obj [ ("p", J.Int 0) ] ]
            | J.List (J.Obj ev :: rest) ->
                let ev =
                  List.map
                    (fun (k, v) ->
                      match (k, v) with
                      | "p", J.Int p -> (k, J.Int (p + 1))
                      | kv -> kv)
                    ev
                in
                J.List (J.Obj ev :: rest)
            | other -> other
          in
          add "schedule-tamper"
            (Cert.to_string
               (Cert.resign
                  (Cert.of_json
                     (J.Obj (swap_field "schedule" tampered_schedule)))));
          (* 3. verdict tamper: rewrite the claim wholesale (an empty
             object claims nothing the checker recognizes), digest forged *)
          add "verdict-tamper"
            (Cert.to_string
               (Cert.resign
                  (Cert.of_json (J.Obj (swap_field "claim" (fun _ -> J.Obj []))))));
          (* 4. digest tamper: zero the self-digest *)
          add "digest-tamper"
            (Cert.to_string
               (Cert.of_json
                  (J.Obj
                     (swap_field "digest" (fun _ -> J.Str (String.make 16 '0'))))))
      | _ -> ()));
  List.rev !mutants

(* Harvest the witnesses for one entry: (description, certificate) pairs,
   or a skip reason. *)
let harvest (e : Registry.entry) ~domains :
    ((string * Cert.t) list, string) result * int64 =
  let (Protocol.Packed proto) = e.Registry.protocol in
  (* the lint controls cannot be stepped; mirror the analyzer's skip *)
  let lint_findings, _ =
    Lint.run e.Registry.claims proto ~inputs_list:e.Registry.inputs_list
      ~max_configs:e.Registry.max_configs ~max_depth:e.Registry.max_depth
  in
  if Finding.errors lint_findings <> [] then
    (Error "static lint errors — stepping this protocol is unsafe", 0L)
  else
    let certs = ref [] in
    let explore ~k ~check_solo () =
      Explore.check_set_agreement ~domains ~k proto
        ~inputs_list:e.Registry.inputs_list ~max_configs:e.Registry.max_configs
        ~max_depth:e.Registry.max_depth ~solo_budget:e.Registry.solo_budget
        ~check_solo
    in
    let (), engine_ns =
      timed @@ fun () ->
      (* property violations: what makes the negative controls negative *)
      (match (explore ~k:e.Registry.k ~check_solo:true ()).Explore.verdict with
      | Error v ->
          certs :=
            ( Explore.violation_kind v,
              Cert.of_violation ~k:e.Registry.k proto v )
            :: !certs
      | Ok () -> ());
      (* k-set protocols also violate plain consensus: a second witness *)
      if e.Registry.k > 1 then (
        match (explore ~k:1 ~check_solo:false ()).Explore.verdict with
        | Error v -> certs := ("k1-" ^ Explore.violation_kind v,
                               Cert.of_violation ~k:1 proto v) :: !certs
        | Ok () -> ());
      (* the crash control yields a resilience witness *)
      if e.Registry.cli_name = "broken-wait" then (
        let r =
          Explore.check_t_resilient ~domains ~t:1 proto
            ~inputs_list:e.Registry.inputs_list
            ~max_configs:e.Registry.max_configs
            ~max_depth:e.Registry.max_depth
            ~solo_budget:e.Registry.solo_budget
        in
        match r.Explore.verdict with
        | Error v -> certs := ("resilience", Cert.of_violation proto v) :: !certs
        | Ok () -> ());
      (* space-bound witnesses for the tractable clean entries, from BOTH
         lower-bound engines: the revisionist witness certifies under the
         same kind, so the micro-checker and the mutant battery exercise
         second-engine certificates exactly like first-engine ones *)
      if List.mem e.Registry.cli_name theorem_entries then begin
        (let budget = Ts_core.Budget.create ~deadline:60.0 () in
         match Theorem.theorem1_escalate ~budget proto ~initial_horizon:8 with
         | Theorem.Complete c, _ ->
             certs := ("space_bound", Cert.of_theorem proto c) :: !certs
         | Theorem.Partial _, _ -> ());
        let budget = Ts_core.Budget.create ~deadline:60.0 () in
        let module R = Ts_revisionist.Revisionist in
        match R.escalate ~budget proto ~initial_solo:32 with
        | R.Complete c, _ ->
            certs :=
              ("space_bound-revisionist", Cert.of_revisionist proto c) :: !certs
        | R.Partial _, _ -> ()
      end
    in
    match List.rev !certs with
    | [] -> (Error "no witness emitted at gate budgets", engine_ns)
    | l -> (Ok l, engine_ns)

let certify_entry ~domains (e : Registry.entry) : protocol_report =
  let (Protocol.Packed proto) = e.Registry.protocol in
  let harvested, engine_ns = harvest e ~domains in
  match harvested with
  | Error reason ->
      { name = e.Registry.cli_name; witnesses = 0; validated = 0; tampers = 0;
        tampers_rejected = 0; skipped = Some reason; errors = [];
        checker_ns = 0L; engine_ns }
  | Ok certs ->
      let errors = ref [] in
      let validated = ref 0 in
      let tamper_total = ref 0 in
      let tamper_rejected = ref 0 in
      let checker_ns = ref 0L in
      List.iter
        (fun (what, cert) ->
          let s = Cert.to_string cert in
          let micro, ns = timed (fun () -> Cert.microcheck_string s) in
          checker_ns := Int64.add !checker_ns ns;
          let engine_side = Cert.validate proto cert in
          (match (micro, engine_side) with
          | Ok (), Ok () -> incr validated
          | Error m, _ ->
              errors :=
                Printf.sprintf "%s: micro-checker rejected a genuine witness: %s"
                  what m
                :: !errors
          | _, Error m ->
              errors :=
                Printf.sprintf "%s: engine replay rejected a genuine witness: %s"
                  what m
                :: !errors);
          List.iter
            (fun (mname, mutant) ->
              incr tamper_total;
              let verdict, ns =
                timed (fun () -> Cert.microcheck_string mutant)
              in
              checker_ns := Int64.add !checker_ns ns;
              match verdict with
              | Error _ -> incr tamper_rejected
              | Ok () ->
                  errors :=
                    Printf.sprintf "%s: %s mutant was ACCEPTED" what mname
                    :: !errors)
            (tampers s))
        certs;
      { name = e.Registry.cli_name; witnesses = List.length certs;
        validated = !validated; tampers = !tamper_total;
        tampers_rejected = !tamper_rejected; skipped = None;
        errors = List.rev !errors; checker_ns = !checker_ns; engine_ns }

let run ?(domains = 1) () =
  let protocols = List.map (certify_entry ~domains) (Registry.all ()) in
  let ok =
    protocols <> []
    && List.exists (fun p -> p.witnesses > 0) protocols
    && List.for_all
         (fun p ->
           p.errors = [] && p.validated = p.witnesses
           && p.tampers_rejected = p.tampers)
         protocols
  in
  { protocols; ok }

let report_to_json (r : report) =
  Json.Obj
    [
      "ok", Json.Bool r.ok;
      "protocols",
      Json.List
        (List.map
           (fun p ->
             Json.Obj
               [
                 "protocol", Json.Str p.name;
                 "witnesses", Json.Int p.witnesses;
                 "validated", Json.Int p.validated;
                 "tampers", Json.Int p.tampers;
                 "tampers_rejected", Json.Int p.tampers_rejected;
                 "skipped",
                 (match p.skipped with
                 | None -> Json.Null
                 | Some s -> Json.Str s);
                 "errors", Json.List (List.map (fun e -> Json.Str e) p.errors);
                 "checker_ns", Json.Int (Int64.to_int p.checker_ns);
                 "engine_ns", Json.Int (Int64.to_int p.engine_ns);
               ])
           r.protocols);
    ]

let pp_protocol ppf (p : protocol_report) =
  match p.skipped with
  | Some reason -> Fmt.pf ppf "%-14s skipped: %s" p.name reason
  | None ->
      Fmt.pf ppf
        "%-14s %d witness%s validated %d/%d, tampers rejected %d/%d (engine %.1f ms, checker %.3f ms)%a"
        p.name p.witnesses
        (if p.witnesses = 1 then "" else "es")
        p.validated p.witnesses p.tampers_rejected p.tampers
        (Int64.to_float p.engine_ns /. 1e6)
        (Int64.to_float p.checker_ns /. 1e6)
        (Fmt.list ~sep:Fmt.nop (fun ppf e -> Fmt.pf ppf "@,    ERROR: %s" e))
        p.errors

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>%a@,certify: %s@]"
    (Fmt.list ~sep:Fmt.cut pp_protocol)
    r.protocols
    (if r.ok then "PASS" else "FAIL")
