(** Structured analyzer findings.

    Every pass (footprint lint, determinism checker, bounded property
    check, race detector) reports its results as a flat list of findings:
    a stable machine-readable code, a severity, and a human sentence.  The
    gate logic never parses messages — it looks only at severities and
    codes — so the codes are part of the CLI contract and must stay
    stable. *)

type severity =
  | Error  (** a model-conformance or correctness defect: fails the gate *)
  | Warning  (** suspicious but not conclusive within the explored bounds *)
  | Info  (** observability: summaries, unexercised handlers, skipped passes *)

type t = {
  protocol : string;  (** protocol instance name, or ["engine"] for engine-level passes *)
  pass : string;  (** ["lint"], ["determinism"], ["property"] or ["race"] *)
  code : string;  (** stable finding identifier, e.g. ["register-out-of-range"] *)
  severity : severity;
  message : string;
}

val v : protocol:string -> pass:string -> code:string -> severity -> string -> t

(** The [Error]-severity subset. *)
val errors : t list -> t list

val severity_to_string : severity -> string
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit

(** Deduplicating accumulator: the same defect shows up in many
    configurations, and one witness per distinct (code, message) pair is
    what the gate and a reviewer need. *)
module Sink : sig
  type finding := t

  type t

  val create : protocol:string -> pass:string -> t
  val report : t -> code:string -> severity -> string -> unit

  (** Findings in report order. *)
  val findings : t -> finding list
end
