open Ts_model

type access = {
  domain : int;
  loc : string;
  kind : Trace.kind;
  atomic : bool;
  index : int;
}

type race = {
  loc : string;
  first : access;
  second : access;
}

type report = {
  events : int;
  accesses : int;
  locations : int;
  domains : int;
  races : race list;
}

(* Vector clocks over domain ids.  Domains are sparse (OCaml allocates
   fresh ids per spawn), so a map is the honest representation. *)
module IM = Map.Make (Int)

type vc = int IM.t

let vc_get d (c : vc) = Option.value ~default:0 (IM.find_opt d c)
let vc_join (a : vc) (b : vc) : vc = IM.union (fun _ x y -> Some (max x y)) a b

(* [a <= b] pointwise: every event summarized by [a] happens-before the
   point summarized by [b]. *)
let vc_leq (a : vc) (b : vc) = IM.for_all (fun d x -> x <= vc_get d b) a

(* Per-location state: merged vector clocks of all plain/atomic reads and
   writes so far (FastTrack's read/write clocks, split by atomicity), plus
   the last contributing access of each category for race reporting. *)
type loc_state = {
  mutable plain_w : vc;
  mutable plain_w_last : access option;
  mutable atomic_w : vc;
  mutable atomic_w_last : access option;
  mutable plain_r : vc;
  mutable plain_r_last : access option;
  mutable atomic_r : vc;
  mutable atomic_r_last : access option;
}

let fresh_loc_state () =
  {
    plain_w = IM.empty;
    plain_w_last = None;
    atomic_w = IM.empty;
    atomic_w_last = None;
    plain_r = IM.empty;
    plain_r_last = None;
    atomic_r = IM.empty;
    atomic_r_last = None;
  }

let check events =
  (* clock of each domain; a domain's own component ticks per event *)
  let clocks : (int, vc) Hashtbl.t = Hashtbl.create 16 in
  let clock d =
    match Hashtbl.find_opt clocks d with
    | Some c -> c
    | None ->
      let c = IM.singleton d 1 in
      Hashtbl.replace clocks d c;
      c
  in
  let tick d = Hashtbl.replace clocks d (IM.add d (vc_get d (clock d) + 1) (clock d)) in
  let absorb d c = Hashtbl.replace clocks d (vc_join (clock d) c) in
  (* fork tokens carry the parent clock to Begin, child clock to Join *)
  let fork_snap : (int, vc) Hashtbl.t = Hashtbl.create 16 in
  let end_snap : (int, vc) Hashtbl.t = Hashtbl.create 16 in
  let locs : (string, loc_state) Hashtbl.t = Hashtbl.create 64 in
  let raced : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let races = ref [] in
  let domains : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let n_access = ref 0 in
  let n_events = ref 0 in
  List.iteri
    (fun index ev ->
      incr n_events;
      match ev with
      | Trace.Fork { parent; token } ->
        Hashtbl.replace domains parent ();
        Hashtbl.replace fork_snap token (clock parent);
        tick parent
      | Trace.Begin { child; token } ->
        Hashtbl.replace domains child ();
        (match Hashtbl.find_opt fork_snap token with
         | Some c -> absorb child c
         | None -> ());
        tick child
      | Trace.End { child; token } ->
        Hashtbl.replace domains child ();
        Hashtbl.replace end_snap token (clock child);
        tick child
      | Trace.Join { parent; token } ->
        Hashtbl.replace domains parent ();
        (match Hashtbl.find_opt end_snap token with
         | Some c -> absorb parent c
         | None -> ());
        tick parent
      | Trace.Access { domain; loc; kind; atomic } ->
        Hashtbl.replace domains domain ();
        incr n_access;
        let a = { domain; loc; kind; atomic; index } in
        let st =
          match Hashtbl.find_opt locs loc with
          | Some st -> st
          | None ->
            let st = fresh_loc_state () in
            Hashtbl.replace locs loc st;
            st
        in
        let now = clock domain in
        (* which recorded categories conflict with this access?  at least
           one write, not both atomic *)
        let against =
          match kind, atomic with
          | Trace.Write, false ->
            [ st.plain_w, st.plain_w_last; st.atomic_w, st.atomic_w_last;
              st.plain_r, st.plain_r_last; st.atomic_r, st.atomic_r_last ]
          | Trace.Write, true -> [ st.plain_w, st.plain_w_last; st.plain_r, st.plain_r_last ]
          | Trace.Read, false -> [ st.plain_w, st.plain_w_last; st.atomic_w, st.atomic_w_last ]
          | Trace.Read, true -> [ st.plain_w, st.plain_w_last ]
        in
        if not (Hashtbl.mem raced loc) then
          List.iter
            (fun (cat_vc, cat_last) ->
              if (not (Hashtbl.mem raced loc)) && not (vc_leq cat_vc now) then begin
                Hashtbl.replace raced loc ();
                match cat_last with
                | Some first -> races := { loc; first; second = a } :: !races
                | None -> ()
              end)
            against;
        (match kind, atomic with
         | Trace.Write, false ->
           st.plain_w <- vc_join st.plain_w now;
           st.plain_w_last <- Some a
         | Trace.Write, true ->
           st.atomic_w <- vc_join st.atomic_w now;
           st.atomic_w_last <- Some a
         | Trace.Read, false ->
           st.plain_r <- vc_join st.plain_r now;
           st.plain_r_last <- Some a
         | Trace.Read, true ->
           st.atomic_r <- vc_join st.atomic_r now;
           st.atomic_r_last <- Some a);
        tick domain
      | Trace.Span_open _ | Trace.Span_close _ | Trace.Instant _ ->
        (* profiler events share the unified stream but carry no
           happens-before information; count and skip *)
        ())
    events;
  {
    events = !n_events;
    accesses = !n_access;
    locations = Hashtbl.length locs;
    domains = Hashtbl.length domains;
    races = List.rev !races;
  }

let race_free r = r.races = []

let certify_engine ?(domains = 4) () =
  Trace.start ();
  let finish () = check (Trace.stop ()) in
  match
    let proto = Ts_protocols.Racing.make ~n:2 in
    Ts_checker.Explore.check_consensus proto ~domains
      ~budget:(Ts_core.Budget.create ~max_nodes:2_000_000 ())
      ~inputs_list:(Ts_checker.Explore.binary_inputs 2)
      ~max_configs:300 ~max_depth:12 ~solo_budget:60 ~check_solo:true
  with
  | _ -> finish ()
  | exception e ->
    ignore (finish ());
    raise e

let planted ?(domains = 2) () =
  Trace.start ();
  let cell = ref 0 in
  let bump _ =
    for _ = 1 to 8 do
      Trace.access ~loc:"planted.cell" Trace.Read ~atomic:false;
      let v = !cell in
      Trace.access ~loc:"planted.cell" Trace.Write ~atomic:false;
      cell := v + 1
    done
  in
  ignore (Par.map_list ~domains bump [ 0; 1; 2; 3 ]);
  check (Trace.stop ())

let json_of_access a =
  Json.Obj
    [
      "domain", Json.Int a.domain;
      "loc", Json.Str a.loc;
      "kind", Json.Str (match a.kind with Trace.Read -> "read" | Trace.Write -> "write");
      "atomic", Json.Bool a.atomic;
      "index", Json.Int a.index;
    ]

let to_json r =
  Json.Obj
    [
      "events", Json.Int r.events;
      "accesses", Json.Int r.accesses;
      "locations", Json.Int r.locations;
      "domains", Json.Int r.domains;
      "race_free", Json.Bool (race_free r);
      ( "races",
        Json.List
          (List.map
             (fun rc ->
               Json.Obj
                 [
                   "loc", Json.Str rc.loc;
                   "first", json_of_access rc.first;
                   "second", json_of_access rc.second;
                 ])
             r.races) );
    ]

let pp_access ppf a =
  Fmt.pf ppf "d%d %s%s@%d"
    a.domain
    (match a.kind with Trace.Read -> "read" | Trace.Write -> "write")
    (if a.atomic then "[atomic]" else "")
    a.index

let pp_report ppf r =
  if race_free r then
    Fmt.pf ppf "race-free: %d events (%d accesses) over %d locations, %d domains"
      r.events r.accesses r.locations r.domains
  else
    Fmt.pf ppf "@[<v>%d race(s) in %d events:%a@]" (List.length r.races) r.events
      (Fmt.list ~sep:Fmt.nop (fun ppf rc ->
           Fmt.pf ppf "@,  %s: %a unordered with %a" rc.loc pp_access rc.first
             pp_access rc.second))
      r.races
