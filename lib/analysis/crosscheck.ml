open Ts_model
module Theorem = Ts_core.Theorem
module Budget = Ts_core.Budget
module Outcome = Ts_core.Outcome
module Revisionist = Ts_revisionist.Revisionist
module Cert = Ts_cert.Cert
module Obs = Ts_obs.Obs

type engine_result =
  | Completed of Outcome.summary * string list
  | Stopped of string

type verdict =
  | Agreed of int
  | Diverged of string
  | Unavailable of string

type row = {
  name : string;
  expect : Registry.xcheck;
  lemmas : engine_result option;
  revisionist : engine_result option;
  verdict : verdict;
  lemmas_ns : int64;
  revisionist_ns : int64;
}

type report = { rows : row list; ok : bool }

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  (x, Int64.of_float ((t1 -. t0) *. 1e9))

(* Witness acceptance: the engine-side replay on the shared execution
   substrate, plus the certificate pipeline (engine validate + the
   independent micro-checker) where the fault-free space_bound kind
   applies.  Returns the (empty-iff-accepted) error list. *)
let acceptance ~replay ~cert proto =
  let errs = ref [] in
  (match replay with
  | Ok () -> ()
  | Error m -> errs := ("replay: " ^ m) :: !errs);
  (match cert () with
  | exception Invalid_argument m ->
      errs := ("certificate build: " ^ m) :: !errs
  | c -> (
      (match Cert.validate proto c with
      | Ok () -> ()
      | Error m -> errs := ("certificate replay: " ^ m) :: !errs);
      match Cert.microcheck c with
      | Ok () -> ()
      | Error m -> errs := ("microcheck: " ^ m) :: !errs));
  List.rev !errs

let run_lemmas proto ~deadline =
  let budget = Budget.create ~deadline () in
  match Theorem.theorem1_escalate ~budget proto ~initial_horizon:8 with
  | Theorem.Complete c, _ ->
      let errs =
        acceptance proto ~replay:(Theorem.verify c proto)
          ~cert:(fun () -> Cert.of_theorem proto c)
      in
      Completed (Outcome.of_theorem c, errs)
  | Theorem.Partial (stop, _), _ ->
      Stopped (Format.asprintf "%a" Theorem.pp_stop stop)

let run_revisionist proto ~deadline =
  let budget = Budget.create ~deadline () in
  match Revisionist.escalate ~budget proto ~initial_solo:32 with
  | Revisionist.Complete c, _ ->
      let errs =
        acceptance proto ~replay:(Revisionist.verify c proto)
          ~cert:(fun () -> Cert.of_revisionist proto c)
      in
      Completed (Revisionist.summary c, errs)
  | Revisionist.Partial (stop, _), _ ->
      Stopped (Format.asprintf "%a" Revisionist.pp_stop stop)

let verdict_of lemmas revisionist =
  match (lemmas, revisionist) with
  | None, _ | _, None ->
      Unavailable "static lint errors — stepping this protocol is unsafe"
  | Some (Completed (a, [])), Some (Completed (b, [])) -> (
      match Outcome.agree a b with
      | Ok bound -> Agreed bound
      | Error m -> Diverged m)
  | Some (Completed (_, e :: _)), _ ->
      Diverged ("lemmas witness rejected: " ^ e)
  | _, Some (Completed (_, e :: _)) ->
      Diverged ("revisionist witness rejected: " ^ e)
  | Some (Completed _), Some (Stopped m) ->
      Diverged ("only lemmas completed; revisionist stopped: " ^ m)
  | Some (Stopped m), Some (Completed _) ->
      Diverged ("only revisionist completed; lemmas stopped: " ^ m)
  | Some (Stopped a), Some (Stopped b) ->
      Unavailable
        (Printf.sprintf "neither engine completed (lemmas: %s; revisionist: %s)"
           a b)

let run_entry ?(deadline = 15.0) (e : Registry.entry) : row =
  let (Protocol.Packed proto) = e.Registry.protocol in
  let sp = Obs.enter ~cat:"crosscheck" "crosscheck.protocol" in
  Obs.set_str sp "protocol" e.Registry.cli_name;
  Fun.protect ~finally:(fun () -> Obs.close sp) @@ fun () ->
  (* the lint controls cannot be stepped; mirror the analyzer's skip *)
  let lint_findings, _ =
    Lint.run e.Registry.claims proto ~inputs_list:e.Registry.inputs_list
      ~max_configs:e.Registry.max_configs ~max_depth:e.Registry.max_depth
  in
  let row =
    if Finding.errors lint_findings <> [] then
      {
        name = e.Registry.cli_name;
        expect = e.Registry.xcheck;
        lemmas = None;
        revisionist = None;
        verdict = Unavailable "static lint errors — stepping this protocol is unsafe";
        lemmas_ns = 0L;
        revisionist_ns = 0L;
      }
    else
      let lemmas, lemmas_ns = timed (fun () -> run_lemmas proto ~deadline) in
      let revisionist, revisionist_ns =
        timed (fun () -> run_revisionist proto ~deadline)
      in
      let lemmas = Some lemmas and revisionist = Some revisionist in
      {
        name = e.Registry.cli_name;
        expect = e.Registry.xcheck;
        lemmas;
        revisionist;
        verdict = verdict_of lemmas revisionist;
        lemmas_ns;
        revisionist_ns;
      }
  in
  Obs.Metrics.incr "crosscheck.compared";
  (match row.verdict with
  | Agreed _ -> Obs.Metrics.incr "crosscheck.agreed"
  | Diverged _ -> Obs.Metrics.incr "crosscheck.diverged"
  | Unavailable _ -> Obs.Metrics.incr "crosscheck.unavailable");
  (match row.verdict with
  | Agreed b -> Obs.set_int sp "bound" b
  | Diverged _ -> Obs.set_bool sp "diverged" true
  | Unavailable _ -> Obs.set_bool sp "unavailable" true);
  row

let row_ok (r : row) =
  match (r.expect, r.verdict) with
  | Registry.Expect_agree, Agreed _ -> true
  | Registry.Expect_agree, _ -> false
  | Registry.Expect_diverge, Diverged _ -> true
  | Registry.Expect_diverge, _ -> false
  | Registry.Informational, _ -> true

let run ?(domains = 1) ?deadline () : report =
  let entries = Registry.all () in
  let rows =
    if domains <= 1 then List.map (run_entry ?deadline) entries
    else Par.map_list ~domains (run_entry ?deadline) entries
  in
  let ok =
    List.for_all row_ok rows
    && List.exists (fun r -> match r.verdict with Agreed _ -> true | _ -> false) rows
  in
  { rows; ok }

(* --- rendering --------------------------------------------------------- *)

let expect_name = function
  | Registry.Expect_agree -> "agree"
  | Registry.Expect_diverge -> "diverge"
  | Registry.Informational -> "informational"

let summary_to_json (s : Outcome.summary) =
  Json.Obj
    [
      ("engine", Json.Str (Outcome.engine_name s.Outcome.engine));
      ("n", Json.Int s.Outcome.n);
      ("bound", Json.Int s.Outcome.bound);
      ("registers_written",
       Json.List (List.map (fun r -> Json.Int r) s.Outcome.registers_written));
      ("schedule_length", Json.Int s.Outcome.schedule_length);
      ("search_effort", Json.Int s.Outcome.search_effort);
    ]

let engine_result_to_json = function
  | Completed (s, errs) ->
      Json.Obj
        [
          ("status", Json.Str "complete");
          ("summary", summary_to_json s);
          ("witness_errors", Json.List (List.map (fun e -> Json.Str e) errs));
        ]
  | Stopped reason ->
      Json.Obj [ ("status", Json.Str "partial"); ("reason", Json.Str reason) ]

let verdict_to_json = function
  | Agreed bound ->
      Json.Obj [ ("status", Json.Str "agreed"); ("bound", Json.Int bound) ]
  | Diverged reason ->
      Json.Obj [ ("status", Json.Str "diverged"); ("reason", Json.Str reason) ]
  | Unavailable reason ->
      Json.Obj
        [ ("status", Json.Str "unavailable"); ("reason", Json.Str reason) ]

let row_to_json (r : row) =
  Json.Obj
    [
      ("protocol", Json.Str r.name);
      ("expect", Json.Str (expect_name r.expect));
      ("verdict", verdict_to_json r.verdict);
      ("ok", Json.Bool (row_ok r));
      ("lemmas",
       match r.lemmas with
       | None -> Json.Null
       | Some e -> engine_result_to_json e);
      ("revisionist",
       match r.revisionist with
       | None -> Json.Null
       | Some e -> engine_result_to_json e);
      ("lemmas_ns", Json.Int (Int64.to_int r.lemmas_ns));
      ("revisionist_ns", Json.Int (Int64.to_int r.revisionist_ns));
    ]

let report_to_json (r : report) =
  let count p = List.length (List.filter p r.rows) in
  Json.Obj
    [
      ("ok", Json.Bool r.ok);
      ("agreed",
       Json.Int (count (fun x -> match x.verdict with Agreed _ -> true | _ -> false)));
      ("diverged",
       Json.Int
         (count (fun x -> match x.verdict with Diverged _ -> true | _ -> false)));
      ("unavailable",
       Json.Int
         (count (fun x ->
              match x.verdict with Unavailable _ -> true | _ -> false)));
      ("rows", Json.List (List.map row_to_json r.rows));
    ]

let pp_verdict ppf = function
  | Agreed bound -> Fmt.pf ppf "AGREE (bound %d)" bound
  | Diverged reason -> Fmt.pf ppf "DIVERGE: %s" reason
  | Unavailable reason -> Fmt.pf ppf "unavailable: %s" reason

let pp_row ppf (r : row) =
  Fmt.pf ppf "%-16s [expect %-13s] %a%s" r.name (expect_name r.expect)
    pp_verdict r.verdict
    (if row_ok r then "" else "  <-- gate failure")

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>%a@,crosscheck: %s@]"
    (Fmt.list ~sep:Fmt.cut pp_row)
    r.rows
    (if r.ok then "PASS" else "FAIL")
