type severity =
  | Error
  | Warning
  | Info

type t = {
  protocol : string;
  pass : string;
  code : string;
  severity : severity;
  message : string;
}

let v ~protocol ~pass ~code severity message =
  { protocol; pass; code; severity; message }

let errors = List.filter (fun f -> f.severity = Error)

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_json f =
  Json.Obj
    [
      "protocol", Json.Str f.protocol;
      "pass", Json.Str f.pass;
      "code", Json.Str f.code;
      "severity", Json.Str (severity_to_string f.severity);
      "message", Json.Str f.message;
    ]

let pp ppf f =
  Fmt.pf ppf "[%s] %s/%s %s: %s"
    (severity_to_string f.severity)
    f.protocol f.pass f.code f.message

module Sink = struct
  type finding = t

  type nonrec t = {
    mutable rev_findings : finding list;
    seen : (string * string, unit) Hashtbl.t;
    protocol : string;
    pass : string;
  }

  let create ~protocol ~pass =
    { rev_findings = []; seen = Hashtbl.create 16; protocol; pass }

  let report t ~code severity message =
    if not (Hashtbl.mem t.seen (code, message)) then begin
      Hashtbl.replace t.seen (code, message) ();
      t.rev_findings <-
        v ~protocol:t.protocol ~pass:t.pass ~code severity message :: t.rev_findings
    end

  let findings t = List.rev t.rev_findings
end
