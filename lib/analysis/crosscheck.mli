(** The two-engine cross-validation gate.

    Runs both lower-bound engines — the Lemma 1–4 construction
    ({!Ts_core.Theorem}) and the revisionist-simulation engine
    ([Ts_revisionist.Revisionist]) — over every {!Registry} entry and
    diffs their answers.  For each protocol the gate demands exactly what
    the entry's {!Registry.xcheck} expectation declares:

    - [Expect_agree]: both engines complete, claim the identical
      register-count bound, and each witness is {e accepted} — it replays
      on the shared execution substrate ({!Ts_core.Theorem.verify} /
      [Revisionist.verify]) and its ["space_bound"] certificate passes
      both the engine replay ({!Ts_cert.Cert.validate}) and the
      independent micro-checker;
    - [Expect_diverge]: the engines must disagree — the planted
      [broken-scribbler] fixture, on which the revisionist adversary
      happily claims a bound while the Lemmas engine correctly finds no
      bivalent initial configuration.  A gate that cannot catch a planted
      divergence would never catch a real one;
    - [Informational]: the row is computed and reported but not gated
      (negative controls, and clean protocols where one construction is
      out of reach at gate budgets).

    Each engine runs under its own per-entry {!Ts_core.Budget} deadline,
    so a stuck construction degrades to a recorded partial rather than
    hanging the gate.  Rows can be fanned out over domains with
    {!Ts_model.Par}.

    Instrumentation: span [crosscheck.protocol] (cat [crosscheck]) per
    row; counters [crosscheck.compared], [crosscheck.agreed],
    [crosscheck.diverged], [crosscheck.unavailable]
    (docs/OBSERVABILITY.md). *)

(** One engine's result on one protocol. *)
type engine_result =
  | Completed of Ts_core.Outcome.summary * string list
      (** construction complete; the list holds witness-acceptance
          errors (replay / certificate validation / micro-checker) and
          is empty iff the witness is accepted *)
  | Stopped of string  (** structured partial, with the stop reason *)

(** What the diff of the two answers came to. *)
type verdict =
  | Agreed of int  (** both complete and accepted, equal bound *)
  | Diverged of string  (** any disagreement, with the reason *)
  | Unavailable of string
      (** nothing to compare: static lint errors, or neither engine
          completes at gate budgets *)

type row = {
  name : string;
  expect : Registry.xcheck;
  lemmas : engine_result option;  (** [None] when lint-skipped *)
  revisionist : engine_result option;
  verdict : verdict;
  lemmas_ns : int64;
  revisionist_ns : int64;
}

type report = {
  rows : row list;
  ok : bool;
      (** every [Expect_agree] row agreed, every [Expect_diverge] row
          diverged, and at least one agreement exists *)
}

(** [run_entry ?deadline e] cross-checks a single registry entry.
    [deadline] (default 15 s) caps {e each} engine separately. *)
val run_entry : ?deadline:float -> Registry.entry -> row

(** [run ?domains ?deadline ()] cross-checks the whole registry,
    fanning rows out over [domains] (default 1) with {!Ts_model.Par}. *)
val run : ?domains:int -> ?deadline:float -> unit -> report

(** Whether a single row meets its own expectation (the single-protocol
    gate behind [tightspace crosscheck --protocol NAME]). *)
val row_ok : row -> bool

val report_to_json : report -> Json.t
val row_to_json : row -> Json.t
val pp_row : Format.formatter -> row -> unit
val pp_report : Format.formatter -> report -> unit
