(** Protocol lint: abstract footprint analysis.

    Zhu's bound (and its relatives: Gelashvili's anonymous bound, Ovens'
    swap bound) is parameterized by exactly which primitives a protocol may
    use and what it may decide.  This pass drives a protocol's transition
    function over its bounded reachable state space — the same enumeration
    the checker performs, keyed by packed {!Ts_model.Ckey} configurations —
    and checks the {e declared} model against the {e observed} footprint:

    - every read/write/swap must target a register in
      [0 .. num_registers - 1];
    - a protocol claiming the read/write model must not be poised to swap;
    - a protocol claiming determinism must not be poised to flip;
    - a protocol claiming binary consensus must only decide 0 or 1;
    - a transition function must never raise on a reachable state;
    - some reachable configuration must decide (else termination is
      impossible — reported as an error when the enumeration was
      exhaustive, a warning when truncated).

    Successors of a footprint-violating action are not expanded (stepping
    them would fault the engine — that is the point of linting first). *)

open Ts_model

(** What the protocol claims about itself; the registry declares these. *)
type claims = {
  binary_decides : bool;  (** decisions must lie in {0,1} *)
  may_swap : bool;  (** historyless model: swap allowed *)
  may_flip : bool;  (** randomized: coin flips allowed *)
}

(** Observed over-approximated footprint, aggregated over every explored
    input vector. *)
type summary = {
  configs : int;  (** distinct configurations enumerated *)
  truncated : bool;  (** a bound stopped the enumeration *)
  max_register : int;  (** highest register index touched; -1 if none *)
  registers_touched : int;  (** distinct registers read/written/swapped *)
  reads : int;  (** poised-action histogram, counted per (config, process) *)
  writes : int;
  swaps : int;
  flips : int;
  decides : int;
  decide_reachable : bool;
}

(** [run claims proto ~inputs_list] abstractly enumerates the actions
    [proto] can perform from the given input vectors, checks them against
    [claims] and the protocol's own declarations, and returns the findings
    plus the footprint summary.  [?max_configs] and [?max_depth] bound the
    enumeration. *)
val run :
  ?max_configs:int ->
  ?max_depth:int ->
  claims ->
  's Protocol.t ->
  inputs_list:Value.t array list ->
  Finding.t list * summary

(** Machine-readable form of the footprint summary. *)
val summary_to_json : summary -> Json.t

(** Human-readable rendering of the footprint summary. *)
val pp_summary : Format.formatter -> summary -> unit
