(** The analyzable protocol registry.

    One entry per shipped protocol instance: the packed protocol, its
    declared model {!Lint.claims}, the input vectors the analyzers drive it
    over, the agreement arity [k] its property pass checks, and whether the
    gate expects it to come out clean.  The negative controls
    ([broken-*], [swap-chain]) are registered with [expect_clean = false]:
    an analyzer that fails to flag them fails the gate just as loudly as
    one that flags a legitimate protocol. *)

open Ts_model

(** What the two-engine cross-validation gate ({!Crosscheck}) expects of
    this entry.  [Expect_agree] entries must have both lower-bound
    engines complete with identical bounds and accepted witnesses;
    [Expect_diverge] is the planted fixture the gate must catch
    disagreeing; [Informational] rows are recorded but not gated — the
    negative controls, and clean protocols where one engine's
    construction is out of reach at gate budgets. *)
type xcheck =
  | Expect_agree
  | Expect_diverge
  | Informational

type entry = {
  cli_name : string;  (** stable name used by [tightspace analyze --protocol] *)
  protocol : Protocol.packed;
  claims : Lint.claims;
  inputs_list : Value.t array list;
  k : int;  (** agreement arity for the bounded property pass *)
  max_configs : int;  (** property-pass exploration cap *)
  max_depth : int;
  solo_budget : int;
  expect_clean : bool;
  xcheck : xcheck;  (** the two-engine cross-check gate's expectation *)
}

(** Every registered instance, in display order. *)
val all : unit -> entry list

(** Look an entry up by its registered name. *)
val find : string -> entry option

(** The registered names, in display order. *)
val names : unit -> string list
