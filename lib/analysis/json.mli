(** A minimal JSON value and serializer.

    The analyzer's [--json] output must be machine-readable without adding
    a dependency the container may not carry, so this is a tiny,
    allocation-honest emitter: enough JSON to describe findings, summaries
    and race reports, nothing more.  Strings are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line rendering. *)
val to_string : t -> string

(** Two-space indented rendering, for humans reading the gate output. *)
val to_string_pretty : t -> string

(** [of_string s] parses one RFC-8259 JSON document — the read half of the
    emitter, added for the service daemon's wire frames.  Numbers without a
    fraction or exponent that fit in an OCaml [int] parse as [Int], all
    others as [Float]; [\uXXXX] escapes (including surrogate pairs) decode
    to UTF-8.  Trailing non-whitespace after the document is an error.
    [Error msg] carries a byte position. *)
val of_string : string -> (t, string) result

(** [member k doc] is field [k] of [doc] when [doc] is an object carrying
    it, else [None]. *)
val member : string -> t -> t option

(** Total projections; [None] on a type mismatch. [to_float_opt] also
    accepts [Int]. *)
val to_int_opt : t -> int option

val to_str_opt : t -> string option
val to_bool_opt : t -> bool option
val to_float_opt : t -> float option
