(** A minimal JSON value and serializer.

    The analyzer's [--json] output must be machine-readable without adding
    a dependency the container may not carry, so this is a tiny,
    allocation-honest emitter: enough JSON to describe findings, summaries
    and race reports, nothing more.  Strings are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact single-line rendering. *)
val to_string : t -> string

(** Two-space indented rendering, for humans reading the gate output. *)
val to_string_pretty : t -> string
