(* The certificate micro-checker.  Stdlib only — see the .mli and the dune
   stanza: this file must not acquire engine dependencies. *)

let supported_cert_version = 1

(* --- JSON ------------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Str of string
    | List of t list
    | Obj of (string * t) list

  (* Canonical serializer: compact, fields in order, strings escape only
     what RFC 8259 requires.  Digests are computed over this rendering. *)

  let add_escaped buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Str s -> add_escaped buf s
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            write buf v)
          l;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            add_escaped buf k;
            Buffer.add_char buf ':';
            write buf v)
          kvs;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf

  (* Parser: recursive descent.  Certificates carry no floats, so numbers
     with a fraction or exponent are rejected outright. *)

  exception Parse of int * string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some got when got = c -> advance ()
      | Some got -> fail (Printf.sprintf "expected %c, got %c" c got)
      | None -> fail (Printf.sprintf "expected %c, got end of input" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then (
        pos := !pos + l;
        value)
      else fail ("invalid literal, expected " ^ word)
    in
    let add_utf8 buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then (
        Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f))))
      else if cp < 0x10000 then (
        Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f))))
      else (
        Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f))))
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = ref 0 in
      for _ = 1 to 4 do
        let d =
          match s.[!pos] with
          | '0' .. '9' as c -> Char.code c - Char.code '0'
          | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
          | _ -> fail "bad hex digit in \\u escape"
        in
        v := (!v * 16) + d;
        advance ()
      done;
      !v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' -> (
            advance ();
            if !pos >= n then fail "truncated escape";
            let c = s.[!pos] in
            advance ();
            match c with
            | '"' -> Buffer.add_char buf '"'; go ()
            | '\\' -> Buffer.add_char buf '\\'; go ()
            | '/' -> Buffer.add_char buf '/'; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'u' ->
                let cp = hex4 () in
                let cp =
                  if cp >= 0xd800 && cp <= 0xdbff then (
                    (* high surrogate: a low surrogate must follow *)
                    if
                      !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                    then (
                      pos := !pos + 2;
                      let lo = hex4 () in
                      if lo < 0xdc00 || lo > 0xdfff then
                        fail "unpaired surrogate"
                      else
                        0x10000
                        + ((cp - 0xd800) lsl 10)
                        + (lo - 0xdc00))
                    else fail "unpaired surrogate")
                  else if cp >= 0xdc00 && cp <= 0xdfff then
                    fail "unpaired surrogate"
                  else cp
                in
                add_utf8 buf cp;
                go ()
            | _ -> fail "unknown escape")
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_int () =
      let start = !pos in
      if peek () = Some '-' then advance ();
      if not (match peek () with Some '0' .. '9' -> true | _ -> false) then
        fail "expected digit";
      while match peek () with Some '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      (match peek () with
      | Some ('.' | 'e' | 'E') -> fail "floats are not allowed in certificates"
      | _ -> ());
      match int_of_string_opt (String.sub s start (!pos - start)) with
      | Some i -> i
      | None -> fail "integer out of range"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some ('-' | '0' .. '9') -> Int (parse_int ())
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (
            advance ();
            List [])
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List (List.rev (v :: acc))
              | _ -> fail "expected , or ] in array"
            in
            items []
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (
            advance ();
            Obj [])
          else
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let rec fields acc =
              let k, v = field () in
              if List.mem_assoc k acc then fail ("duplicate key " ^ k);
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or } in object"
            in
            fields []
      | Some c -> fail (Printf.sprintf "unexpected character %c" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage after document";
      v
    with
    | v -> Ok v
    | exception Parse (p, msg) ->
        Error (Printf.sprintf "parse error at byte %d: %s" p msg)

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  let rec equal a b =
    match (a, b) with
    | Null, Null -> true
    | Bool x, Bool y -> x = y
    | Int x, Int y -> x = y
    | Str x, Str y -> String.equal x y
    | List x, List y -> List.equal equal x y
    | Obj x, Obj y ->
        List.equal
          (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
          x y
    | _ -> false
end

(* --- digest ----------------------------------------------------------- *)

let fnv64_hex s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  Printf.sprintf "%016Lx" !h

(* --- the checker ------------------------------------------------------ *)

open Json

let ( let* ) = Result.bind

let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let field name doc =
  match member name doc with
  | Some v -> Ok v
  | None -> errf "missing field %s" name

let int_field name doc =
  match member name doc with
  | Some (Int i) -> Ok i
  | Some _ -> errf "field %s is not an integer" name
  | None -> errf "missing field %s" name

let str_field name doc =
  match member name doc with
  | Some (Str s) -> Ok s
  | Some _ -> errf "field %s is not a string" name
  | None -> errf "missing field %s" name

let list_field name doc =
  match member name doc with
  | Some (List l) -> Ok l
  | Some _ -> errf "field %s is not an array" name
  | None -> errf "missing field %s" name

(* Register values in a certificate are the engine's value universe mapped
   onto JSON: Bot -> null, Int, Bool, Pair -> {"fst":_,"snd":_},
   List -> array.  The checker only needs well-formedness and structural
   equality. *)
let rec well_formed_value = function
  | Null | Int _ | Bool _ -> true
  | Obj [ ("fst", a); ("snd", b) ] -> well_formed_value a && well_formed_value b
  | List l -> List.for_all well_formed_value l
  | Str _ | Obj _ -> false

let value_field name doc =
  let* v = field name doc in
  if well_formed_value v then Ok v
  else errf "field %s is not a well-formed register value" name

(* Strictly increasing register/process index lists (sorted, distinct). *)
let index_list name ~limit doc =
  let* l = list_field name doc in
  let rec go prev = function
    | [] -> Ok ()
    | Int i :: rest ->
        if i < 0 || i >= limit then errf "%s: index %d out of range" name i
        else if i <= prev then errf "%s: not strictly increasing" name
        else go i rest
    | _ -> errf "%s: non-integer element" name
  in
  let* () = go (-1) l in
  Ok (List.map (function Int i -> i | _ -> assert false) l)

let expected_fields =
  [
    "cert_version"; "kind"; "protocol"; "inputs"; "schedule"; "trace";
    "final"; "state_digest"; "claim"; "digest";
  ]

(* One replayed step, as the checker understands it. *)
type step =
  | Read of int * Json.t
  | Write of int * Json.t
  | Swap of int * Json.t * Json.t  (* register, written, displaced *)
  | Flip of bool
  | Decide of Json.t

let step_keys = function
  | Read _ | Write _ -> [ "p"; "a"; "r"; "v" ]
  | Swap _ -> [ "p"; "a"; "r"; "v"; "prev" ]
  | Flip _ -> [ "p"; "a"; "coin" ]
  | Decide _ -> [ "p"; "a"; "v" ]

let parse_step i ~registers doc =
  let* p = int_field "p" doc in
  let* a = str_field "a" doc in
  let* step =
    match a with
    | "read" | "write" | "swap" ->
        let* r = int_field "r" doc in
        if r < 0 || r >= registers then
          errf "trace step %d: register %d out of range" i r
        else
          let* v = value_field "v" doc in
          if a = "swap" then
            let* prev = value_field "prev" doc in
            Ok (Swap (r, v, prev))
          else Ok (if a = "read" then Read (r, v) else Write (r, v))
    | "flip" -> (
        match member "coin" doc with
        | Some (Bool b) -> Ok (Flip b)
        | _ -> errf "trace step %d: flip without boolean coin" i)
    | "decide" ->
        let* v = value_field "v" doc in
        Ok (Decide v)
    | other -> errf "trace step %d: unknown action %s" i other
  in
  (* no stray fields: the digest already binds them, but a canonical step
     carries exactly its own keys *)
  match doc with
  | Obj kvs ->
      let allowed = step_keys step in
      if List.for_all (fun (k, _) -> List.mem k allowed) kvs then Ok (p, step)
      else errf "trace step %d: unexpected field" i
  | _ -> errf "trace step %d: not an object" i

let parse_schedule_event i doc =
  match doc with
  | Obj kvs ->
      let* p = int_field "p" doc in
      let* coin =
        match member "coin" doc with
        | None -> Ok None
        | Some (Bool b) -> Ok (Some b)
        | Some _ -> errf "schedule step %d: coin is not a boolean" i
      in
      if List.for_all (fun (k, _) -> k = "p" || k = "coin") kvs then
        Ok (p, coin)
      else errf "schedule step %d: unexpected field" i
  | _ -> errf "schedule step %d: not an object" i

(* Replay the trace over a fresh register file, checking legality of every
   step against the schedule, and return the final registers + decisions. *)
let replay ~n ~registers ~schedule ~trace =
  let regs = Array.make registers Null in
  let decided = Array.make n None in
  let rec go i sched tr =
    match (sched, tr) with
    | [], [] -> Ok ()
    | [], _ :: _ | _ :: _, [] ->
        errf "schedule and trace have different lengths"
    | sev :: sched, tev :: tr ->
        let* sp, coin = parse_schedule_event i sev in
        let* tp, step = parse_step i ~registers tev in
        if sp < 0 || sp >= n then errf "schedule step %d: pid %d out of range" i sp
        else if sp <> tp then
          errf "step %d: schedule pid %d but trace pid %d" i sp tp
        else if decided.(sp) <> None then
          errf "step %d: process %d steps after deciding" i sp
        else
          let* () =
            match (step, coin) with
            | Flip b, Some c ->
                if b = c then Ok ()
                else errf "step %d: coin disagrees with schedule" i
            | Flip _, None -> errf "step %d: flip without schedule coin" i
            | _, Some _ -> errf "step %d: schedule coin on a non-flip step" i
            | Read (r, v), None ->
                if Json.equal regs.(r) v then Ok ()
                else errf "step %d: read of register %d returned a stale value" i r
            | Write (r, v), None ->
                regs.(r) <- v;
                Ok ()
            | Swap (r, v, prev), None ->
                if Json.equal regs.(r) prev then (
                  regs.(r) <- v;
                  Ok ())
                else errf "step %d: swap displaced value mismatch on register %d" i r
            | Decide v, None ->
                decided.(sp) <- Some v;
                Ok ()
          in
          go (i + 1) sched tr
  in
  let* () = go 0 schedule trace in
  Ok (regs, decided)

(* Distinct registers written (or swapped) in the trace, sorted. *)
let written_registers trace =
  let regs =
    List.filter_map
      (fun tev ->
        match (member "a" tev, member "r" tev) with
        | Some (Str ("write" | "swap")), Some (Int r) -> Some r
        | _ -> None)
      trace
  in
  List.sort_uniq compare regs

let check_claim ~kind ~n ~registers ~inputs ~trace ~decided claim =
  let decided_list =
    Array.to_list decided
    |> List.filteri (fun _ v -> v <> None)
    |> List.map (function Some v -> v | None -> assert false)
  in
  let distinct_decided =
    List.fold_left
      (fun acc v -> if List.exists (Json.equal v) acc then acc else v :: acc)
      [] decided_list
    |> List.rev
  in
  match kind with
  | "space_bound" ->
      let* bound = int_field "bound" claim in
      let* claimed = index_list "registers_written" ~limit:registers claim in
      let* covered = index_list "covered" ~limit:registers claim in
      let* fresh = int_field "fresh_register" claim in
      if bound <> n - 1 then errf "claim.bound %d is not n - 1" bound
      else if written_registers trace <> claimed then
        errf "claim.registers_written disagrees with the trace"
      else if List.length claimed < bound then
        errf "only %d distinct registers written, claim needs %d"
          (List.length claimed) bound
      else if fresh < 0 || fresh >= registers then
        errf "claim.fresh_register out of range"
      else if List.mem fresh covered then
        errf "claim.fresh_register is among the covered registers"
      else Ok ()
  | "agreement" ->
      let* k = int_field "k" claim in
      let* values = list_field "values" claim in
      let distinct_claim =
        List.fold_left
          (fun acc v -> if List.exists (Json.equal v) acc then acc else v :: acc)
          [] values
      in
      if k < 1 then errf "claim.k must be positive"
      else if List.length distinct_claim <> List.length values then
        errf "claim.values contains duplicates"
      else if List.length values <= k then
        errf "%d decision values do not violate %d-agreement"
          (List.length values) k
      else if
        List.for_all (fun v -> List.exists (Json.equal v) distinct_decided) values
        && List.for_all
             (fun v -> List.exists (Json.equal v) values)
             distinct_decided
      then Ok ()
      else errf "claim.values disagree with the decisions of the replay"
  | "validity" ->
      let* v = value_field "value" claim in
      if not (List.exists (Json.equal v) decided_list) then
        errf "claimed invalid decision was never decided in the replay"
      else if List.exists (Json.equal v) inputs then
        errf "claimed invalid decision is one of the inputs"
      else Ok ()
  | "solo-termination" ->
      let* pid = int_field "pid" claim in
      if pid < 0 || pid >= n then errf "claim.pid out of range"
      else if decided.(pid) <> None then
        errf "claimed stuck process %d decided in the replay" pid
      else Ok ()
  | "resilience" ->
      let* crashed = index_list "crashed" ~limit:n claim in
      let* survivors = index_list "survivors" ~limit:n claim in
      if survivors = [] then errf "claim.survivors is empty"
      else if List.exists (fun p -> List.mem p survivors) crashed then
        errf "claim.crashed and claim.survivors overlap"
      else if
        List.sort compare (crashed @ survivors) <> List.init n (fun i -> i)
      then errf "claim.crashed and claim.survivors do not partition 0..n-1"
      else if List.exists (fun p -> decided.(p) <> None) survivors then
        errf "a claimed stuck survivor decided in the replay"
      else Ok ()
  | other -> errf "unknown certificate kind %s" other

let check doc =
  let* kvs =
    match doc with
    | Obj kvs -> Ok kvs
    | _ -> Error "certificate is not a JSON object"
  in
  let* () =
    if List.for_all (fun (k, _) -> List.mem k expected_fields) kvs then Ok ()
    else Error "certificate carries an unexpected top-level field"
  in
  let* version = int_field "cert_version" doc in
  let* () =
    if version = supported_cert_version then Ok ()
    else
      errf "unsupported cert_version %d (checker understands %d)" version
        supported_cert_version
  in
  (* The self-digest first: it binds every byte of the document, so any
     tampering is caught before the semantic checks run. *)
  let* stored = str_field "digest" doc in
  let body = Obj (List.filter (fun (k, _) -> k <> "digest") kvs) in
  let recomputed = fnv64_hex (to_string body) in
  let* () =
    if String.equal stored recomputed then Ok ()
    else errf "digest mismatch: certificate was altered (stored %s, recomputed %s)"
        stored recomputed
  in
  let* protocol = field "protocol" doc in
  let* name = str_field "name" protocol in
  let* () = if name = "" then Error "empty protocol name" else Ok () in
  let* n = int_field "n" protocol in
  let* registers = int_field "registers" protocol in
  let* () =
    if n < 1 then errf "protocol.n %d is not positive" n
    else if registers < 0 then errf "negative register count"
    else Ok ()
  in
  let* kind = str_field "kind" doc in
  let* inputs = list_field "inputs" doc in
  let* () =
    if List.length inputs <> n then
      errf "%d inputs for %d processes" (List.length inputs) n
    else if List.for_all well_formed_value inputs then Ok ()
    else Error "malformed input value"
  in
  let* schedule = list_field "schedule" doc in
  let* trace = list_field "trace" doc in
  let* regs, decided = replay ~n ~registers ~schedule ~trace in
  (* The claimed final state must be exactly what the replay produced. *)
  let decided_json =
    List.init n (fun p ->
        match decided.(p) with
        | Some v -> Some (Obj [ ("p", Int p); ("v", v) ])
        | None -> None)
    |> List.filter_map Fun.id
  in
  let final_mine =
    Obj [ ("regs", List (Array.to_list regs)); ("decided", List decided_json) ]
  in
  let* final_given = field "final" doc in
  let* () =
    if Json.equal final_given final_mine then Ok ()
    else Error "claimed final state disagrees with the replay"
  in
  let* state_digest = str_field "state_digest" doc in
  let* () =
    if String.equal state_digest (fnv64_hex (to_string final_mine)) then Ok ()
    else Error "state digest disagrees with the replayed final state"
  in
  let* claim = field "claim" doc in
  check_claim ~kind ~n ~registers ~inputs ~trace ~decided claim

let check_string s =
  match Json.of_string s with
  | Error e -> Error e
  | Ok doc -> check doc
