(** The independent certificate micro-checker.

    This module is the small trusted base of the certificate story: given
    the canonical-JSON certificate emitted by [ts_cert] (see
    [docs/CERTIFICATES.md]), it re-implements just enough of the
    read/write/swap register step semantics to replay the embedded
    schedule over a fresh register file and confirm — or reject — the
    claimed verdict.  It deliberately shares {e no} code with the engine:
    no [ts_model], no [ts_core], nothing beyond the OCaml stdlib (the dune
    stanza has no [libraries] field, and CI greps to keep it that way).

    What the checker establishes, entirely from the certificate bytes:

    - the self-digest binds the whole document (any altered field is
      caught before semantic checks run);
    - the step trace is a legal register history: every read returns the
      current register contents, every swap displaces them, writes land,
      decided processes take no further steps, all indices are in range,
      and the trace agrees step-by-step with the schedule;
    - the claimed final state (registers, decisions, state digest) is
      exactly what the replay produces;
    - the claim itself follows from the replay (registers written,
      decision values, undecided processes — per certificate kind).

    What it cannot establish is that each step is what the {e protocol}
    was poised to do — that needs the protocol's code, which the checker
    must not link.  That half is discharged by the engine-side
    [Ts_cert.Cert.validate], which regenerates the trace from the
    protocol; the two checks together are the trust argument. *)

(** The certificate format version this checker understands.  Must equal
    [Ts_cert.Cert.cert_version]; the golden test pins both. *)
val supported_cert_version : int

(** A self-contained JSON tree, parser and canonical serializer.  The
    serializer is the canonical form: compact (no insignificant
    whitespace), object fields in emission order, no floats.  Digests are
    computed over this form, so any syntactically different rendering of
    the same tree still digests identically after a parse/re-serialize
    round trip. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Str of string
    | List of t list
    | Obj of (string * t) list

  (** Canonical compact rendering. *)
  val to_string : t -> string

  (** Parse one JSON document.  Floats are rejected (certificates carry
      none), duplicate object keys are rejected, trailing garbage is an
      error.  [Error msg] carries a byte position. *)
  val of_string : string -> (t, string) result

  (** [member k doc] is field [k] of object [doc], if present. *)
  val member : string -> t -> t option

  val equal : t -> t -> bool
end

(** FNV-1a 64-bit hash of a byte string, as 16 lowercase hex characters.
    The digest primitive of the certificate format. *)
val fnv64_hex : string -> string

(** [check doc] replays the certificate and verifies digest, trace and
    claim.  [Error msg] pinpoints the first inconsistency. *)
val check : Json.t -> (unit, string) result

(** [check_string s] parses and {!check}s.  A parse error is a rejection. *)
val check_string : string -> (unit, string) result
