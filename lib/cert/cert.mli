(** Witness certificates: self-contained, independently checkable records
    of what the engine claims to have found.

    A certificate packages everything a third party needs to audit an
    answer without trusting the engine: the protocol id and parameters,
    the input vector, the full schedule (steps and coin resolutions), the
    step-by-step trace the schedule induces (with the value every read
    returned and every swap displaced), the final state it reaches, and
    the claimed verdict — a Theorem-1 space bound, or a violation kind
    with its witness data.  The whole document is serialized to canonical
    JSON and bound by a self-digest; [docs/CERTIFICATES.md] describes the
    format and the trust argument.

    Two independent parties check a certificate:

    - {!Ts_microcheck.Microcheck} (stdlib only, no engine code) replays
      the trace over a bare register file and confirms the claim;
    - {!validate} here re-runs the {e protocol} over the schedule and
      requires the regenerated trace and final state to agree byte for
      byte — the half the micro-checker cannot see.

    Emission is zero-cost when not requested: nothing below constructs a
    certificate unless explicitly called. *)

open Ts_model

(** Certificate format version.  Bump when the canonical serialization
    changes; {!Ts_microcheck.Microcheck.supported_cert_version} and the
    golden test in [suite_digest] pin it. *)
val cert_version : int

type t
(** A built certificate (an immutable canonical-JSON tree). *)

(** [of_theorem proto cert] packages a Theorem-1 certificate: kind
    ["space_bound"], claiming [n - 1] distinct registers written.
    @raise Invalid_argument if the schedule does not replay on [proto]. *)
val of_theorem : 's Protocol.t -> Ts_core.Theorem.certificate -> t

(** [of_revisionist proto cert] packages a revisionist-engine witness
    under the same ["space_bound"] kind and claim shape as
    {!of_theorem} — the micro-checker validates both engines' witnesses
    identically.
    @raise Invalid_argument if the schedule does not replay on [proto],
    or if the construction excluded crashed processes (its bound is below
    [n - 1] and does not fit this claim). *)
val of_revisionist : 's Protocol.t -> Ts_revisionist.Revisionist.certificate -> t

(** [of_violation ?k proto v] packages an {!Ts_checker.Explore.violation}
    ([k] is the set-agreement arity behind an agreement violation,
    default 1).
    @raise Invalid_argument if the schedule does not replay on [proto]. *)
val of_violation : ?k:int -> 's Protocol.t -> Ts_checker.Explore.violation -> t

(** Canonical serialization (compact JSON, self-digest included). *)
val to_string : t -> string

(** Parse a serialized certificate.  No validation beyond JSON syntax —
    use {!microcheck} / {!validate} for that. *)
val of_string : string -> (t, string) result

(** Run the independent micro-checker on a certificate. *)
val microcheck : t -> (unit, string) result

(** {!microcheck} straight from serialized bytes. *)
val microcheck_string : string -> (unit, string) result

(** [validate proto t] is the engine-side half of the audit: first
    {!microcheck}, then re-run [proto] over the certificate's inputs and
    schedule and require the regenerated trace, final state and digests
    to be identical.  Rejects certificates whose steps are legal register
    operations but not what the protocol was poised to do. *)
val validate : 's Protocol.t -> t -> (unit, string) result

(** [resign t] recomputes the self-digest after a structural edit — the
    forgery primitive the tamper tests use to prove that rejection does
    not hinge on the digest alone. *)
val resign : t -> t

(** Structured access for tamper tests: the underlying JSON tree. *)
val to_json : t -> Ts_microcheck.Microcheck.Json.t

val of_json : Ts_microcheck.Microcheck.Json.t -> t
