open Ts_model
module M = Ts_microcheck.Microcheck
module J = M.Json

let cert_version = 1

type t = J.t

let to_json t = t
let of_json j = j

(* --- value / schedule encoding ---------------------------------------- *)

let rec value_to_json (v : Value.t) : J.t =
  match v with
  | Value.Bot -> J.Null
  | Value.Int i -> J.Int i
  | Value.Bool b -> J.Bool b
  | Value.Pair (a, b) ->
      J.Obj [ ("fst", value_to_json a); ("snd", value_to_json b) ]
  | Value.List l -> J.List (List.map value_to_json l)

let rec value_of_json (j : J.t) : Value.t =
  match j with
  | J.Null -> Value.bot
  | J.Int i -> Value.int i
  | J.Bool b -> Value.bool b
  | J.Obj [ ("fst", a); ("snd", b) ] ->
      Value.pair (value_of_json a) (value_of_json b)
  | J.List l -> Value.list (List.map value_of_json l)
  | J.Str _ | J.Obj _ -> invalid_arg "Cert: malformed register value"

let event_to_json (e : Execution.event) : J.t =
  match e.Execution.coin with
  | None -> J.Obj [ ("p", J.Int e.Execution.pid) ]
  | Some b -> J.Obj [ ("p", J.Int e.Execution.pid); ("coin", J.Bool b) ]

let event_of_json (j : J.t) : Execution.event =
  match (J.member "p" j, J.member "coin" j) with
  | Some (J.Int p), None -> Execution.ev p
  | Some (J.Int p), Some (J.Bool b) -> Execution.flip p b
  | _ -> invalid_arg "Cert: malformed schedule event"

(* --- construction ------------------------------------------------------ *)

(* Replay [schedule] from the initial configuration for [inputs], recording
   per-step read results and swap-displaced values (the trace's [Action.t]
   alone does not carry them), and build the certificate body. *)
let build (proto : 's Protocol.t) ~kind ~(inputs : Value.t array) ~schedule
    ~claim : t =
  let cfg0 = Config.initial proto ~inputs in
  let final_cfg, trace = Execution.apply proto cfg0 schedule in
  let regs = Array.make proto.Protocol.num_registers Value.bot in
  let steps =
    List.map
      (fun (s : Execution.step_record) ->
        let p = ("p", J.Int s.Execution.actor) in
        match s.Execution.action with
        | Action.Read r ->
            J.Obj
              [ p; ("a", J.Str "read"); ("r", J.Int r);
                ("v", value_to_json regs.(r)) ]
        | Action.Write (r, v) ->
            regs.(r) <- v;
            J.Obj
              [ p; ("a", J.Str "write"); ("r", J.Int r);
                ("v", value_to_json v) ]
        | Action.Swap (r, v) ->
            let prev = regs.(r) in
            regs.(r) <- v;
            J.Obj
              [ p; ("a", J.Str "swap"); ("r", J.Int r);
                ("v", value_to_json v); ("prev", value_to_json prev) ]
        | Action.Flip ->
            let c =
              match s.Execution.coin_used with
              | Some b -> b
              | None -> invalid_arg "Cert: flip step without a coin"
            in
            J.Obj [ p; ("a", J.Str "flip"); ("coin", J.Bool c) ]
        | Action.Decide v ->
            J.Obj [ p; ("a", J.Str "decide"); ("v", value_to_json v) ])
      trace
  in
  if
    not
      (Array.for_all2 Value.equal regs
         (Array.init proto.Protocol.num_registers (Config.register final_cfg)))
  then invalid_arg "Cert: emission replay diverged from the configuration";
  let decided =
    List.init proto.Protocol.num_processes (fun p ->
        Option.map
          (fun v -> J.Obj [ ("p", J.Int p); ("v", value_to_json v) ])
          (Config.has_decided final_cfg p))
    |> List.filter_map Fun.id
  in
  let final =
    J.Obj
      [
        ("regs", J.List (Array.to_list (Array.map value_to_json regs)));
        ("decided", J.List decided);
      ]
  in
  let body =
    [
      ("cert_version", J.Int cert_version);
      ("kind", J.Str kind);
      ( "protocol",
        J.Obj
          [
            ("name", J.Str proto.Protocol.name);
            ("n", J.Int proto.Protocol.num_processes);
            ("registers", J.Int proto.Protocol.num_registers);
          ] );
      ("inputs", J.List (List.map value_to_json (Array.to_list inputs)));
      ("schedule", J.List (List.map event_to_json schedule));
      ("trace", J.List steps);
      ("final", final);
      ("state_digest", J.Str (M.fnv64_hex (J.to_string final)));
      ("claim", claim);
    ]
  in
  let digest = M.fnv64_hex (J.to_string (J.Obj body)) in
  J.Obj (body @ [ ("digest", J.Str digest) ])

let resign t =
  match t with
  | J.Obj kvs ->
      let body = J.Obj (List.filter (fun (k, _) -> k <> "digest") kvs) in
      let digest = M.fnv64_hex (J.to_string body) in
      (match body with
      | J.Obj kvs -> J.Obj (kvs @ [ ("digest", J.Str digest) ])
      | _ -> assert false)
  | other -> other

let of_theorem proto (c : Ts_core.Theorem.certificate) =
  let regs l = J.List (List.map (fun r -> J.Int r) l) in
  let claim =
    J.Obj
      [
        ("bound", J.Int (c.Ts_core.Theorem.n - 1));
        ("registers_written", regs c.Ts_core.Theorem.registers_written);
        ("covered", regs c.Ts_core.Theorem.covered_registers);
        ("fresh_register", J.Int c.Ts_core.Theorem.fresh_register);
      ]
  in
  build proto ~kind:"space_bound" ~inputs:c.Ts_core.Theorem.inputs
    ~schedule:c.Ts_core.Theorem.schedule ~claim

(* The revisionist engine's witness makes the same shape of claim as the
   Theorem-1 construction — n-1 distinct registers written, a covered set
   and the fresh register the last parked process was forced onto — so it
   certifies under the same "space_bound" kind and the micro-checker needs
   no new knowledge.  Crash-faulted constructions claim survivors-1 < n-1
   and are not certifiable in this format. *)
let of_revisionist proto (c : Ts_revisionist.Revisionist.certificate) =
  let open Ts_revisionist.Revisionist in
  if c.excluded <> [] then
    invalid_arg "Cert.of_revisionist: crash-faulted constructions (bound < n - 1) are not certifiable";
  let regs l = J.List (List.map (fun r -> J.Int r) l) in
  let claim =
    J.Obj
      [
        ("bound", J.Int c.bound);
        ("registers_written", regs c.registers_written);
        ("covered", regs c.covered_registers);
        ("fresh_register", J.Int c.fresh_register);
      ]
  in
  build proto ~kind:"space_bound" ~inputs:c.inputs ~schedule:c.schedule ~claim

let of_violation ?(k = 1) proto (v : Ts_checker.Explore.violation) =
  let open Ts_checker.Explore in
  match v with
  | Agreement_violation { inputs; schedule; values } ->
      build proto ~kind:"agreement" ~inputs ~schedule
        ~claim:
          (J.Obj
             [
               ("k", J.Int k);
               ("values", J.List (List.map value_to_json values));
             ])
  | Validity_violation { inputs; schedule; value } ->
      build proto ~kind:"validity" ~inputs ~schedule
        ~claim:(J.Obj [ ("value", value_to_json value) ])
  | Solo_stuck { inputs; schedule; pid } ->
      build proto ~kind:"solo-termination" ~inputs ~schedule
        ~claim:(J.Obj [ ("pid", J.Int pid) ])
  | Crash_stuck { inputs; schedule; crashed; survivors } ->
      let pids l = J.List (List.map (fun p -> J.Int p) l) in
      build proto ~kind:"resilience" ~inputs ~schedule
        ~claim:(J.Obj [ ("crashed", pids crashed); ("survivors", pids survivors) ])

(* --- serialization / checking ------------------------------------------ *)

let to_string = J.to_string
let of_string = J.of_string
let microcheck = M.check
let microcheck_string = M.check_string

let validate proto t =
  match M.check t with
  | Error _ as e -> e
  | Ok () -> (
      (* Regenerate the certificate from its own inputs + schedule by
         running the real protocol, holding kind and claim fixed: byte
         equality then certifies that every step of the trace is exactly
         what the protocol was poised to do. *)
      try
        let field name =
          match J.member name t with
          | Some v -> v
          | None -> invalid_arg ("Cert: missing field " ^ name)
        in
        let kind =
          match field "kind" with
          | J.Str s -> s
          | _ -> invalid_arg "Cert: malformed kind"
        in
        let inputs =
          match field "inputs" with
          | J.List l -> Array.of_list (List.map value_of_json l)
          | _ -> invalid_arg "Cert: malformed inputs"
        in
        let schedule =
          match field "schedule" with
          | J.List l -> List.map event_of_json l
          | _ -> invalid_arg "Cert: malformed schedule"
        in
        let named =
          match J.member "name" (field "protocol") with
          | Some (J.Str s) -> s
          | _ -> invalid_arg "Cert: malformed protocol id"
        in
        if named <> proto.Protocol.name then
          Error
            (Printf.sprintf "certificate is for protocol %s, not %s" named
               proto.Protocol.name)
        else
          let rebuilt =
            build proto ~kind ~inputs ~schedule ~claim:(field "claim")
          in
          if String.equal (to_string rebuilt) (to_string t) then Ok ()
          else Error "protocol replay disagrees with the certificate trace"
      with
      | Invalid_argument msg -> Error msg
      | Failure msg -> Error msg)
