(* Load generator for the ts_service daemon (experiment E22).

   Starts an in-process server on an ephemeral port backed by a fresh
   witness store, then drives it over real TCP through three phases:

     cold           every distinct query once, cache and store empty —
                    each answer is a fresh engine run
     warm           the same queries repeated from [clients] concurrent
                    connections against the warm in-memory cache
     restart-warm   the server is stopped and a new one opened on the
                    same store file — previously-seen queries are served
                    from disk ("recovered") and then from memory

   Each warm phase takes two measurements, because they bound different
   things:

     latency    synchronous request/response round trips, >= 1k samples
                by default, reported as p50/p90/p99/max
     throughput pipelined batches over raw sockets with a buffered frame
                scanner, time-boxed — measures the event loop's ceiling,
                not the client's syscall overhead

   The differential guarantee is checked explicitly: the "result" bytes
   of fresh, cached and recovered responses to the same query must be
   identical, and the run fails loudly if not.  --json FILE writes
   BENCH_PR6.json with all sections. *)

module Json = Ts_analysis.Json
module Server = Ts_service.Server
module Client = Ts_service.Client
module Request = Ts_service.Request
module Frame = Ts_service.Frame

(* BENCH_PR5's warm throughput: the baseline the tentpole is gated on *)
let pr5_warm_rps = 14_200.
let warm_rps_bar = 70_000.

let base_queries =
  let base = Request.defaults in
  [
    { base with Request.op = Request.Witness; protocol = "racing"; n = 2 };
    { base with Request.op = Request.Witness; protocol = "racing"; n = 3 };
    { base with Request.op = Request.Witness; protocol = "swap"; n = 2 };
    { base with Request.op = Request.Check; protocol = "broken-lww"; n = 2 };
    { base with Request.op = Request.Check; protocol = "broken-max"; n = 2 };
    { base with Request.op = Request.Check; protocol = "racing"; n = 2;
                max_configs = 20_000 };
    { base with Request.op = Request.Valency; protocol = "racing"; n = 2 };
    { base with Request.op = Request.Valency; protocol = "racing"; n = 3 };
  ]

(* --mix N: first N base queries; beyond 8, seed variants (the seed is
   cache-key material, so each variant is a distinct cache entry) *)
let make_queries mix =
  List.init mix (fun i ->
      let q = List.nth base_queries (i mod List.length base_queries) in
      { q with Request.seed = q.Request.seed + (i / List.length base_queries) })

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float ((float_of_int (n - 1) *. p) +. 0.5)))

type latency_stats = {
  samples : int;
  elapsed : float;
  p50 : float;  (* milliseconds *)
  p90 : float;
  p99 : float;
  max : float;
}

let latency_stats latencies elapsed =
  let sorted = Array.of_list latencies in
  Array.sort compare sorted;
  {
    samples = Array.length sorted;
    elapsed;
    p50 = percentile sorted 0.5;
    p90 = percentile sorted 0.9;
    p99 = percentile sorted 0.99;
    max = (if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1));
  }

let pp_latency name s =
  Format.printf
    "  %-12s %6d samples in %6.2fs  p50 %8.3fms  p90 %8.3fms  p99 %8.3fms  max %8.3fms@."
    name s.samples s.elapsed s.p50 s.p90 s.p99 s.max

let latency_json s =
  Json.Obj
    [
      ("samples", Json.Int s.samples);
      ("elapsed_s", Json.Float s.elapsed);
      ("p50_ms", Json.Float s.p50);
      ("p90_ms", Json.Float s.p90);
      ("p99_ms", Json.Float s.p99);
      ("max_ms", Json.Float s.max);
    ]

(* One timed request over an open connection; the response must be ok. *)
let timed_rpc conn req =
  let t0 = Unix.gettimeofday () in
  match Client.rpc conn (Request.to_json req) with
  | Error msg -> failwith ("loadgen: rpc failed: " ^ msg)
  | Ok doc ->
    (match Json.member "ok" doc with
     | Some (Json.Bool true) -> ()
     | _ -> failwith ("loadgen: error response: " ^ Json.to_string doc));
    (Unix.gettimeofday () -. t0) *. 1000.

(* A sync pass capturing the "provenance" and "result" of each query —
   the differential material. *)
let provenance_pass port queries =
  let conn = Client.connect_exn ~port () in
  Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
  List.map
    (fun q ->
      match Client.rpc conn (Request.to_json q) with
      | Error msg -> failwith ("loadgen: rpc failed: " ^ msg)
      | Ok doc ->
        let prov =
          match Json.member "provenance" doc with
          | Some (Json.Str s) -> s
          | _ -> "?"
        in
        let body =
          match Json.member "result" doc with
          | Some r -> Json.to_string r
          | None -> failwith ("loadgen: no result: " ^ Json.to_string doc)
        in
        (prov, body))
    queries

let run_cold port queries =
  let conn = Client.connect_exn ~port () in
  let t0 = Unix.gettimeofday () in
  let lats = List.map (fun q -> timed_rpc conn q) queries in
  let elapsed = Unix.gettimeofday () -. t0 in
  Client.close conn;
  latency_stats lats elapsed

(* [clients] domains, each its own TCP connection, each sending [rounds]
   synchronous passes over the query mix. *)
let run_latency port queries ~clients ~rounds =
  let t0 = Unix.gettimeofday () in
  let workers =
    Array.init clients (fun _ ->
        Domain.spawn (fun () ->
            let conn = Client.connect_exn ~port () in
            let lats = ref [] in
            for _ = 1 to rounds do
              List.iter (fun q -> lats := timed_rpc conn q :: !lats) queries
            done;
            Client.close conn;
            !lats))
  in
  let lats = Array.to_list workers |> List.concat_map Domain.join in
  let elapsed = Unix.gettimeofday () -. t0 in
  latency_stats lats elapsed

(* ---- pipelined throughput ---------------------------------------------- *)

type throughput_stats = {
  tput_requests : int;
  tput_elapsed : float;
  rps : float;
}

let frame_of req =
  let s = Json.to_string (Request.to_json req) in
  string_of_int (String.length s) ^ "\n" ^ s

(* Drain [expect] response frames from [fd] using a buffered incremental
   scan — no per-response JSON parsing, no byte-at-a-time header reads.
   Each response is spot-checked for the "ok":true marker. *)
let drain_responses fd rbuf rpos rlen expect =
  let remaining = ref expect in
  while !remaining > 0 do
    (match Frame.parse rbuf ~pos:!rpos ~len:!rlen with
     | `Frame (off, n) ->
       (* "id" then "ok" lead the envelope; 24 bytes cover both *)
       let head = Bytes.sub_string rbuf off (min n 24) in
       let ok =
         let rec find i =
           i + 9 <= String.length head
           && (String.sub head i 9 = "\"ok\":true" || find (i + 1))
         in
         find 0
       in
       if not ok then
         failwith ("loadgen: pipelined response not ok: " ^ head);
       rpos := off + n;
       decr remaining
     | `Error e -> failwith ("loadgen: response stream: " ^ Frame.error_to_string e)
     | `Need_more ->
       (* slide the consumed prefix out, then refill *)
       if !rpos > 0 then begin
         Bytes.blit rbuf !rpos rbuf 0 (!rlen - !rpos);
         rlen := !rlen - !rpos;
         rpos := 0
       end;
       let k = Unix.read fd rbuf !rlen (Bytes.length rbuf - !rlen) in
       if k = 0 then failwith "loadgen: server closed mid-batch";
       rlen := !rlen + k)
  done

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* Each client connection writes whole batches of pre-serialized frames
   and drains the batched answers, for [seconds] of wall clock. *)
let run_throughput port queries ~clients ~seconds =
  let mix = List.length queries in
  let depth = max 1 (256 / mix) in
  let batch =
    String.concat ""
      (List.concat (List.init depth (fun _ -> List.map frame_of queries)))
  in
  let per_batch = depth * mix in
  let t0 = Unix.gettimeofday () in
  let workers =
    Array.init clients (fun _ ->
        Domain.spawn (fun () ->
            let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd
              (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            let rbuf = Bytes.create (1 lsl 20) in
            let rpos = ref 0 and rlen = ref 0 in
            let count = ref 0 in
            let deadline = Unix.gettimeofday () +. seconds in
            while Unix.gettimeofday () < deadline do
              write_all fd batch;
              drain_responses fd rbuf rpos rlen per_batch;
              count := !count + per_batch
            done;
            (try Unix.close fd with Unix.Unix_error _ -> ());
            !count))
  in
  let requests = Array.fold_left (fun acc d -> acc + Domain.join d) 0 workers in
  let elapsed = Unix.gettimeofday () -. t0 in
  {
    tput_requests = requests;
    tput_elapsed = elapsed;
    rps = float_of_int requests /. elapsed;
  }

let pp_throughput name s =
  Format.printf "  %-12s %7d pipelined requests in %6.2fs  (%9.1f req/s)@." name
    s.tput_requests s.tput_elapsed s.rps

(* ---- chaos mode (experiment E23) --------------------------------------- *)

module Chaos = Ts_service.Chaos

(* Aggregated resilient-client counters across the worker domains. *)
let sum_client_stats stats_list =
  List.fold_left
    (fun acc (s : Client.stats) ->
      {
        Client.calls = acc.Client.calls + s.Client.calls;
        attempts_made = acc.Client.attempts_made + s.Client.attempts_made;
        retries = acc.Client.retries + s.Client.retries;
        reconnects = acc.Client.reconnects + s.Client.reconnects;
        timeouts = acc.Client.timeouts + s.Client.timeouts;
        conn_resets = acc.Client.conn_resets + s.Client.conn_resets;
        parse_errors = acc.Client.parse_errors + s.Client.parse_errors;
        connect_errors = acc.Client.connect_errors + s.Client.connect_errors;
        server_busy = acc.Client.server_busy + s.Client.server_busy;
        retry_after_honored =
          acc.Client.retry_after_honored + s.Client.retry_after_honored;
        breaker_opens = acc.Client.breaker_opens + s.Client.breaker_opens;
      })
    {
      Client.calls = 0; attempts_made = 0; retries = 0; reconnects = 0;
      timeouts = 0; conn_resets = 0; parse_errors = 0; connect_errors = 0;
      server_busy = 0; retry_after_honored = 0; breaker_opens = 0;
    }
    stats_list

(* Drive the query mix through the chaos proxy with resilient clients and
   demand 100% eventual success with answers byte-identical to a
   fault-free baseline.  The proxy may reset, truncate, corrupt, delay
   and throttle; the retry layer must absorb all of it. *)
let chaos_main ~clients ~rounds ~mix ~seed ~fault_prob ~class_spec ~json_file =
  let queries = make_queries mix in
  let classes =
    match Chaos.classes_of_string class_spec with
    | Ok c -> c
    | Error msg ->
      prerr_endline ("loadgen: --chaos-classes: " ^ msg);
      exit 2
  in
  let store_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tightspace-chaos-%d.log" (Unix.getpid ()))
  in
  (try Sys.remove store_path with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove store_path with Sys_error _ -> ())
  @@ fun () ->
  let config =
    {
      Server.default_config with
      port = 0;
      workers = clients;
      store_path = Some store_path;
    }
  in
  let server = Server.start config in
  let port = Server.port server in
  (* fault-free baseline over a direct connection: the reference bodies
     every answer delivered through the proxy must match byte for byte *)
  let baseline = Array.of_list (List.map snd (provenance_pass port queries)) in
  let proxy =
    Chaos.start
      { (Chaos.default_config ~upstream_port:port) with seed; fault_prob; classes }
  in
  let pport = Chaos.port proxy in
  Format.printf
    "loadgen --chaos: daemon on 127.0.0.1:%d behind chaos proxy on :%d (seed \
     %d, fault-prob %.2f, classes %s)@."
    port pport seed fault_prob
    (Chaos.classes_to_string classes);
  let t0 = Unix.gettimeofday () in
  let workers =
    Array.init clients (fun w ->
        Domain.spawn (fun () ->
            (* generous attempt budget: a call may only fail once the
               whole budget is spent, and chaos CI demands zero of those *)
            let policy =
              {
                Client.default_policy with
                attempts = 12;
                seed = seed + (7919 * (w + 1));
              }
            in
            let cl = Client.make ~policy ~port:pport () in
            let ok = ref 0 and failed = ref 0 and mismatched = ref 0 in
            let lats = ref [] in
            for _ = 1 to rounds do
              List.iteri
                (fun i q ->
                  let c0 = Unix.gettimeofday () in
                  (match Client.call cl (Request.to_json q) with
                   | Error _ -> incr failed
                   | Ok doc -> (
                     match (Json.member "ok" doc, Json.member "result" doc) with
                     | Some (Json.Bool true), Some r
                       when Json.to_string r = baseline.(i) ->
                       incr ok
                     | Some (Json.Bool true), _ -> incr mismatched
                     | _ -> incr failed));
                  (* call latency includes every retry and backoff sleep:
                     the price of eventual success, not of one attempt *)
                  lats := ((Unix.gettimeofday () -. c0) *. 1000.) :: !lats)
                queries
            done;
            let stats = Client.stats cl in
            Client.shutdown cl;
            (!ok, !failed, !mismatched, stats, !lats)))
  in
  let per_worker = Array.to_list workers |> List.map Domain.join in
  let elapsed = Unix.gettimeofday () -. t0 in
  Chaos.stop proxy;
  let pstats = Chaos.stats proxy in
  let events = Chaos.events proxy in
  Server.stop server;
  let ok = List.fold_left (fun a (k, _, _, _, _) -> a + k) 0 per_worker in
  let failed = List.fold_left (fun a (_, k, _, _, _) -> a + k) 0 per_worker in
  let mismatched =
    List.fold_left (fun a (_, _, k, _, _) -> a + k) 0 per_worker
  in
  let cs = sum_client_stats (List.map (fun (_, _, _, s, _) -> s) per_worker) in
  let lat =
    latency_stats
      (List.concat_map (fun (_, _, _, _, l) -> l) per_worker)
      elapsed
  in
  let calls = ok + failed + mismatched in
  let success_rate =
    if calls = 0 then 0. else 100. *. float_of_int ok /. float_of_int calls
  in
  Format.printf
    "  %d calls from %d clients in %.2fs: %d ok, %d failed, %d mismatched \
     (eventual success %.2f%%)@."
    calls clients elapsed ok failed mismatched success_rate;
  Format.printf
    "  client: %d attempts, %d retries, %d reconnects (resets %d, timeouts \
     %d, parse %d, connect %d, busy %d, retry-after honored %d, breaker \
     opens %d)@."
    cs.Client.attempts_made cs.Client.retries cs.Client.reconnects
    cs.Client.conn_resets cs.Client.timeouts cs.Client.parse_errors
    cs.Client.connect_errors cs.Client.server_busy
    cs.Client.retry_after_honored cs.Client.breaker_opens;
  pp_latency "chaos" lat;
  Format.printf "  proxy: %a@." Chaos.pp_stats pstats;
  List.iteri
    (fun i e -> if i < 3 then Format.printf "    e.g. %s@." e)
    events;
  (match json_file with
   | None -> ()
   | Some file ->
     let doc =
       Json.Obj
         [
           ("harness", Json.Str "tightspace-loadgen");
           ("experiment",
            Json.Str
              "E23 chaos: resilient client through a fault-injecting proxy");
           ("seed", Json.Int seed);
           ("fault_prob", Json.Float fault_prob);
           ("classes", Json.Str (Chaos.classes_to_string classes));
           ("clients", Json.Int clients);
           ("rounds", Json.Int rounds);
           ("query_mix", Json.Int (List.length queries));
           ("elapsed_s", Json.Float elapsed);
           ("calls", Json.Int calls);
           ("ok", Json.Int ok);
           ("failed", Json.Int failed);
           ("mismatched", Json.Int mismatched);
           ("eventual_success_pct", Json.Float success_rate);
           ("latency", latency_json lat);
           ("client",
            Json.Obj
              [
                ("attempts", Json.Int cs.Client.attempts_made);
                ("retries", Json.Int cs.Client.retries);
                ("reconnects", Json.Int cs.Client.reconnects);
                ("timeouts", Json.Int cs.Client.timeouts);
                ("conn_resets", Json.Int cs.Client.conn_resets);
                ("parse_errors", Json.Int cs.Client.parse_errors);
                ("connect_errors", Json.Int cs.Client.connect_errors);
                ("server_busy", Json.Int cs.Client.server_busy);
                ("retry_after_honored", Json.Int cs.Client.retry_after_honored);
                ("breaker_opens", Json.Int cs.Client.breaker_opens);
              ]);
           ("proxy",
            Json.Obj
              [
                ("connections", Json.Int pstats.Chaos.connections);
                ("faulted", Json.Int pstats.Chaos.faulted);
                ("resets", Json.Int pstats.Chaos.resets);
                ("truncations", Json.Int pstats.Chaos.truncations);
                ("corruptions", Json.Int pstats.Chaos.corruptions);
                ("delayed_chunks", Json.Int pstats.Chaos.delayed_chunks);
                ("throttled_chunks", Json.Int pstats.Chaos.throttled_chunks);
                ("bytes_up", Json.Int pstats.Chaos.bytes_up);
                ("bytes_down", Json.Int pstats.Chaos.bytes_down);
              ]);
         ]
     in
     let oc = open_out file in
     output_string oc (Json.to_string_pretty doc);
     output_char oc '\n';
     close_out oc;
     Format.printf "wrote %s@." file);
  if failed = 0 && mismatched = 0 && calls = clients * rounds * List.length queries
  then begin
    Format.printf
      "  chaos: 100%% eventual success, answers byte-identical to the \
       fault-free run@.";
    exit 0
  end
  else begin
    Format.printf
      "FAIL: chaos run did not reach 100%% eventual success with identical \
       answers (replay with --chaos-seed %d)@."
      seed;
    exit 1
  end

(* ---- cluster mode (experiment E25) ------------------------------------- *)

module Coord = Ts_cluster.Coord
module CWorker = Ts_cluster.Worker

(* Serial vs 1-worker vs 2-worker cluster on the heaviest query in the
   mix (check racing n=2 at --cluster-configs).  The differential bar is
   absolute — every leg's result document must be byte-identical to the
   serial engine's.  The speedup bar (2 workers >= 1.5x over 1) is only
   enforced when the machine actually has >= 2 cores; the cores count is
   recorded in the JSON either way so the numbers stay honest. *)
let cluster_main ~max_configs ~json_file =
  let cores = Domain.recommended_domain_count () in
  let protocol = "racing" and n = 3 and max_depth = 40 in
  let params =
    { Coord.default_params with Coord.protocol; n; max_configs; max_depth }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* serial leg through the dispatcher — the daemon's own code path *)
  let req =
    { Request.defaults with Request.op = Request.Check; protocol; n;
      max_configs; max_depth }
  in
  let disp = Ts_service.Dispatch.create () in
  let serial_doc, serial_s =
    time (fun () -> Ts_service.Dispatch.handle disp req)
  in
  let serial_result =
    match Json.member "result" serial_doc with
    | Some r -> Json.to_string r
    | None -> failwith ("loadgen: serial dispatch failed: "
                        ^ Json.to_string serial_doc)
  in
  let visits doc_str =
    match Json.of_string doc_str with
    | Ok doc -> (
      match Json.member "stats" doc with
      | Some stats -> (
        match Json.member "configs_explored" stats with
        | Some (Json.Int v) -> v
        | _ -> -1)
      | None -> -1)
    | Error _ -> -1
  in
  let run_cluster workers =
    let servers =
      List.init workers (fun _ ->
          CWorker.start { CWorker.default_config with CWorker.port = 0 })
    in
    Fun.protect ~finally:(fun () -> List.iter CWorker.stop servers)
    @@ fun () ->
    let peers =
      List.mapi
        (fun wid s ->
          Coord.tcp_peer ~wid ~host:"127.0.0.1" ~port:(CWorker.port s) ())
        servers
    in
    let outcome, secs = time (fun () -> Coord.run params ~peers) in
    match outcome with
    | Coord.Complete { result; telemetry } ->
      (Json.to_string result, telemetry, secs)
    | Coord.Failed _ -> failwith "loadgen: cluster leg returned partial"
  in
  Format.printf
    "cluster: check %s n=%d max-configs %d on %d core(s)@." protocol n
    max_configs cores;
  Format.printf "  %-12s %8.2fs  %d configurations@." "serial" serial_s
    (visits serial_result);
  let r1, tel1, t1 = run_cluster 1 in
  Format.printf "  %-12s %8.2fs  %d configurations  identical: %b@."
    "1-worker" t1 (visits r1) (r1 = serial_result);
  let r2, tel2, t2 = run_cluster 2 in
  Format.printf "  %-12s %8.2fs  %d configurations  identical: %b@."
    "2-worker" t2 (visits r2) (r2 = serial_result);
  let speedup = t1 /. (if t2 > 0. then t2 else epsilon_float) in
  let bar_enforced = cores >= 2 in
  Format.printf "  2-worker vs 1-worker: %.2fx (bar %s: %d core(s))@." speedup
    (if bar_enforced then "enforced" else "recorded only") cores;
  (match json_file with
   | None -> ()
   | Some file ->
     let leg secs body telemetry =
       Json.Obj
         [
           ("elapsed_s", Json.Float secs);
           ("configs_explored", Json.Int (visits body));
           ("identical_to_serial", Json.Bool (body = serial_result));
           ("telemetry", telemetry);
         ]
     in
     let doc =
       Json.Obj
         [
           ("harness", Json.Str "tightspace-loadgen");
           ("experiment",
            Json.Str
              "E25 sharded cluster search: serial vs 1-worker vs 2-worker");
           ("protocol", Json.Str protocol);
           ("n", Json.Int n);
           ("max_configs", Json.Int max_configs);
           ("max_depth", Json.Int max_depth);
           ("cores", Json.Int cores);
           ("shards", Json.Int params.Coord.shards);
           ("serial",
            Json.Obj
              [
                ("elapsed_s", Json.Float serial_s);
                ("configs_explored", Json.Int (visits serial_result));
              ]);
           ("cluster_1worker", leg t1 r1 tel1);
           ("cluster_2worker", leg t2 r2 tel2);
           ("speedup_2worker_vs_1worker", Json.Float speedup);
           ("speedup_bar", Json.Float 1.5);
           ("speedup_bar_enforced", Json.Bool bar_enforced);
         ]
     in
     let oc = open_out file in
     output_string oc (Json.to_string_pretty doc);
     output_char oc '\n';
     close_out oc;
     Format.printf "wrote %s@." file);
  if r1 <> serial_result || r2 <> serial_result then begin
    Format.printf
      "FAIL: cluster results not byte-identical to the serial engine@.";
    exit 1
  end;
  if bar_enforced && speedup < 1.5 then begin
    Format.printf "FAIL: 2-worker speedup %.2fx below the 1.5x bar@." speedup;
    exit 1
  end;
  Format.printf
    "  cluster: all legs byte-identical to the serial engine@.";
  exit 0

(* ---- reporting --------------------------------------------------------- *)

let throughput_json s =
  Json.Obj
    [
      ("requests", Json.Int s.tput_requests);
      ("elapsed_s", Json.Float s.tput_elapsed);
      ("throughput_rps", Json.Float s.rps);
    ]

let () =
  let json_file = ref None in
  let clients = ref 4 in
  let rounds = ref 40 in
  let mix = ref (List.length base_queries) in
  let seconds = ref 1.0 in
  let chaos = ref false in
  let chaos_seed = ref 2026 in
  let chaos_fault_prob = ref 0.6 in
  let chaos_classes = ref "all" in
  let cluster = ref false in
  let cluster_configs = ref 20_000 in
  Arg.parse
    [
      ("--json", Arg.String (fun f -> json_file := Some f), "FILE write results JSON");
      ("--clients", Arg.Set_int clients, "N concurrent client domains (default 4)");
      ("--rounds", Arg.Set_int rounds, "N latency passes per client (default 40)");
      ("--mix", Arg.Set_int mix,
       "N distinct queries in the mix (default 8; beyond 8 adds seed variants)");
      ("--tput-seconds", Arg.Set_float seconds,
       "S wall-clock budget per pipelined throughput pass (default 1.0)");
      ("--chaos", Arg.Set chaos,
       " drive the mix through a fault-injecting proxy with resilient \
        clients instead of the perf phases; fails unless every call \
        eventually succeeds byte-identically");
      ("--chaos-seed", Arg.Set_int chaos_seed,
       "SEED master seed for the fault schedule (default 2026)");
      ("--chaos-fault-prob", Arg.Set_float chaos_fault_prob,
       "P probability a connection draws a faulty plan (default 0.6)");
      ("--chaos-classes", Arg.Set_string chaos_classes,
       "SPEC fault classes: reset,truncate,corrupt,delay,throttle or all/none");
      ("--cluster", Arg.Set cluster,
       " run the sharded-cluster experiment (serial vs 1-worker vs \
        2-worker over localhost TCP) instead of the perf phases; fails \
        unless every leg is byte-identical to the serial engine");
      ("--cluster-configs", Arg.Set_int cluster_configs,
       "N exploration cap for the cluster experiment (default 20000)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "loadgen [--json FILE] [--clients N] [--rounds N] [--mix N] [--tput-seconds S] [--chaos] [--cluster]";
  if !cluster then
    cluster_main ~max_configs:!cluster_configs ~json_file:!json_file;
  if !chaos then
    chaos_main ~clients:!clients ~rounds:!rounds ~mix:!mix ~seed:!chaos_seed
      ~fault_prob:!chaos_fault_prob ~class_spec:!chaos_classes
      ~json_file:!json_file;
  let queries = make_queries !mix in
  let store_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tightspace-loadgen-%d.log" (Unix.getpid ()))
  in
  (try Sys.remove store_path with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove store_path with Sys_error _ -> ())
  @@ fun () ->
  Ts_obs.Obs.Metrics.start ();
  let config =
    {
      Server.default_config with
      port = 0;
      workers = !clients;
      store_path = Some store_path;
    }
  in
  let server = Server.start config in
  let port = Server.port server in
  Format.printf
    "loadgen: daemon on 127.0.0.1:%d, %d queries in the mix, store %s@." port
    (List.length queries) store_path;

  (* phase 1: cold — every answer a fresh engine run, persisted *)
  let cold = run_cold port queries in
  pp_latency "cold" cold;
  let fresh_bodies = List.map snd (provenance_pass port queries) in

  (* phase 2: warm in-memory *)
  let warm = run_latency port queries ~clients:!clients ~rounds:!rounds in
  pp_latency "warm" warm;
  let cached = provenance_pass port queries in
  let cached_identical =
    List.for_all2
      (fun fresh (prov, body) -> prov = "cached" && body = fresh)
      fresh_bodies cached
  in
  let warm_tput = run_throughput port queries ~clients:!clients ~seconds:!seconds in
  pp_throughput "warm" warm_tput;
  let cache = Ts_service.Dispatch.cache_stats (Server.dispatcher server) in
  Server.stop server;

  (* phase 3a: a restart serves every seen query from disk, byte-identical *)
  let server = Server.start config in
  let recovered = provenance_pass (Server.port server) queries in
  let recovered_identical =
    List.for_all2
      (fun fresh (prov, body) -> prov = "recovered" && body = fresh)
      fresh_bodies recovered
  in
  Server.stop server;

  (* phase 3b: restart-warm measurement on one more fresh process image —
     the latency pass's first touches hit the disk tier, the rest the
     re-warmed memory tier, which is exactly what a restarted daemon's
     clients experience *)
  let server = Server.start config in
  let rport = Server.port server in
  let restart_warm = run_latency rport queries ~clients:!clients ~rounds:!rounds in
  pp_latency "restart-warm" restart_warm;
  let restart_tput = run_throughput rport queries ~clients:!clients ~seconds:!seconds in
  pp_throughput "restart-warm" restart_tput;
  let store_stats = Ts_service.Dispatch.store_stats (Server.dispatcher server) in
  Server.stop server;
  let metrics = Ts_obs.Obs.Metrics.stop () in

  let differential_ok = cached_identical && recovered_identical in
  Format.printf
    "  differential: cached %s, recovered %s (over %d queries)@."
    (if cached_identical then "identical" else "MISMATCH")
    (if recovered_identical then "identical" else "MISMATCH")
    (List.length queries);
  let p50_ratio =
    restart_warm.p50 /. (if warm.p50 > 0. then warm.p50 else epsilon_float)
  in
  Format.printf
    "  warm %7.0f req/s (%.1fx PR5 baseline);  restart-warm p50 %.3fms = %.2fx warm p50@."
    warm_tput.rps (warm_tput.rps /. pr5_warm_rps) restart_warm.p50 p50_ratio;

  (match !json_file with
   | None -> ()
   | Some file ->
     let doc =
       Json.Obj
         [
           ("harness", Json.Str "tightspace-loadgen");
           ("experiment",
            Json.Str "E22 event-loop serving with persistent witness store");
           ("query_mix", Json.Int (List.length queries));
           ("clients", Json.Int !clients);
           ("rounds", Json.Int !rounds);
           ("baseline_pr5_warm_rps", Json.Float pr5_warm_rps);
           ("cold", latency_json cold);
           ("warm",
            Json.Obj
              [
                ("latency", latency_json warm);
                ("throughput", throughput_json warm_tput);
              ]);
           ("restart_warm",
            Json.Obj
              ([
                 ("latency", latency_json restart_warm);
                 ("throughput", throughput_json restart_tput);
                 ("p50_vs_warm", Json.Float p50_ratio);
               ]
              @
              match store_stats with
              | None -> []
              | Some st ->
                [ ("store", Ts_service.Response.store_stats_to_json st) ]));
           ("differential",
            Json.Obj
              [
                ("queries", Json.Int (List.length queries));
                ("cached_identical", Json.Bool cached_identical);
                ("recovered_identical", Json.Bool recovered_identical);
              ]);
           ("speedup_warm_rps_vs_pr5", Json.Float (warm_tput.rps /. pr5_warm_rps));
           ("cache",
            Json.Obj
              [
                ("hits", Json.Int cache.Ts_core.Cache.hits);
                ("misses", Json.Int cache.Ts_core.Cache.misses);
                ("evictions", Json.Int cache.Ts_core.Cache.evictions);
                ("entries", Json.Int cache.Ts_core.Cache.entries);
              ]);
         ]
     in
     let oc = open_out file in
     (* metrics_json is a raw blob; splice it under the bench files' usual
        versioned key rather than re-parsing it *)
     let body = Json.to_string_pretty doc in
     let body = String.sub body 0 (String.length body - 2) in
     Printf.fprintf oc "%s,\n  \"metrics_v\": %s\n}\n" body
       (Ts_obs.Export.metrics_json metrics);
     close_out oc;
     Format.printf "wrote %s@." file);

  (* the tentpole's acceptance bars *)
  let failed = ref false in
  if warm_tput.rps < warm_rps_bar then begin
    Format.printf "FAIL: warm throughput %.0f req/s below the %.0f bar@."
      warm_tput.rps warm_rps_bar;
    failed := true
  end;
  if p50_ratio > 2. then begin
    Format.printf "FAIL: restart-warm p50 %.2fx warm p50 (bar: 2x)@." p50_ratio;
    failed := true
  end;
  if not differential_ok then begin
    Format.printf "FAIL: fresh/cached/recovered responses not byte-identical@.";
    failed := true
  end;
  if !failed then exit 1
