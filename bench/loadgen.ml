(* Load generator for the ts_service daemon (experiment E21).

   Starts an in-process server on an ephemeral port, then drives it over
   real TCP from several client domains with a fixed mix of witness /
   check / valency queries:

     cold phase   every distinct query once, cache empty — each answer is
                  a fresh engine run
     warm phase   the same queries repeated round-robin from [clients]
                  concurrent connections — after the first pass every
                  answer is a cache hit

   Reported per phase: request throughput and the p50/p99/max latency of
   the request round trip, plus the cold/warm speedup on the matched
   query mix.  --json FILE writes the numbers (and the armed engine
   metrics, including cache hit/miss counters) for BENCH_PR5.json. *)

module Json = Ts_analysis.Json
module Server = Ts_service.Server
module Client = Ts_service.Client
module Request = Ts_service.Request

let queries =
  let base = Request.defaults in
  [
    { base with Request.op = Request.Witness; protocol = "racing"; n = 2 };
    { base with Request.op = Request.Witness; protocol = "racing"; n = 3 };
    { base with Request.op = Request.Witness; protocol = "swap"; n = 2 };
    { base with Request.op = Request.Check; protocol = "broken-lww"; n = 2 };
    { base with Request.op = Request.Check; protocol = "broken-max"; n = 2 };
    { base with Request.op = Request.Check; protocol = "racing"; n = 2;
                max_configs = 20_000 };
    { base with Request.op = Request.Valency; protocol = "racing"; n = 2 };
    { base with Request.op = Request.Valency; protocol = "racing"; n = 3 };
  ]

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (float_of_int (n - 1) *. p +. 0.5)))

type phase_stats = {
  requests : int;
  elapsed : float;
  p50 : float;  (* milliseconds *)
  p99 : float;
  max : float;
}

let phase_stats latencies elapsed =
  let sorted = Array.of_list latencies in
  Array.sort compare sorted;
  {
    requests = Array.length sorted;
    elapsed;
    p50 = percentile sorted 0.5;
    p99 = percentile sorted 0.99;
    max = (if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1));
  }

let throughput s = float_of_int s.requests /. s.elapsed

let pp_phase name s =
  Format.printf
    "  %-6s %5d requests in %6.2fs  (%7.1f req/s)  p50 %8.3fms  p99 %8.3fms  max %8.3fms@."
    name s.requests s.elapsed (throughput s) s.p50 s.p99 s.max

(* One timed request over an open connection; the response must be ok. *)
let timed_rpc conn req =
  let t0 = Unix.gettimeofday () in
  match Client.rpc conn (Request.to_json req) with
  | Error msg -> failwith ("loadgen: rpc failed: " ^ msg)
  | Ok doc ->
    (match Json.member "ok" doc with
     | Some (Json.Bool true) -> ()
     | _ -> failwith ("loadgen: error response: " ^ Json.to_string doc));
    (Unix.gettimeofday () -. t0) *. 1000.

let run_cold port =
  let conn = Client.connect ~port () in
  let t0 = Unix.gettimeofday () in
  let lats = List.map (fun q -> timed_rpc conn q) queries in
  let elapsed = Unix.gettimeofday () -. t0 in
  Client.close conn;
  phase_stats lats elapsed

(* [clients] domains, each its own TCP connection, each sending
   [rounds] passes over the query mix. *)
let run_warm port ~clients ~rounds =
  let t0 = Unix.gettimeofday () in
  let workers =
    Array.init clients (fun _ ->
        Domain.spawn (fun () ->
            let conn = Client.connect ~port () in
            let lats = ref [] in
            for _ = 1 to rounds do
              List.iter (fun q -> lats := timed_rpc conn q :: !lats) queries
            done;
            Client.close conn;
            !lats))
  in
  let lats = Array.to_list workers |> List.concat_map Domain.join in
  let elapsed = Unix.gettimeofday () -. t0 in
  phase_stats lats elapsed

let write_json file ~cold ~warm ~speedup ~cache metrics =
  let phase s =
    Json.Obj
      [
        ("requests", Json.Int s.requests);
        ("elapsed_s", Json.Float s.elapsed);
        ("throughput_rps", Json.Float (throughput s));
        ("p50_ms", Json.Float s.p50);
        ("p99_ms", Json.Float s.p99);
        ("max_ms", Json.Float s.max);
      ]
  in
  let doc =
    Json.Obj
      [
        ("harness", Json.Str "tightspace-loadgen");
        ("experiment", Json.Str "E21 cold vs warm service throughput");
        ("query_mix", Json.Int (List.length queries));
        ("cold", phase cold);
        ("warm", phase warm);
        ("speedup_p50", Json.Float speedup);
        ("cache",
         Json.Obj
           [
             ("hits", Json.Int cache.Ts_core.Cache.hits);
             ("misses", Json.Int cache.Ts_core.Cache.misses);
             ("evictions", Json.Int cache.Ts_core.Cache.evictions);
             ("entries", Json.Int cache.Ts_core.Cache.entries);
           ]);
      ]
  in
  let oc = open_out file in
  (* metrics_json is a raw blob; splice it under the bench files' usual
     versioned key rather than re-parsing it *)
  let body = Json.to_string_pretty doc in
  let body = String.sub body 0 (String.length body - 2) in
  Printf.fprintf oc "%s,\n  \"metrics_v\": %s\n}\n" body
    (Ts_obs.Export.metrics_json metrics);
  close_out oc;
  Format.printf "wrote %s@." file

let () =
  let json_file = ref None in
  let clients = ref 4 in
  let rounds = ref 25 in
  Arg.parse
    [
      ("--json", Arg.String (fun f -> json_file := Some f), "FILE write results JSON");
      ("--clients", Arg.Set_int clients, "N concurrent client domains (default 4)");
      ("--rounds", Arg.Set_int rounds, "N warm passes per client (default 25)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "loadgen [--json FILE] [--clients N] [--rounds N]";
  Ts_obs.Obs.Metrics.start ();
  let server =
    Server.start { Server.default_config with port = 0; workers = !clients }
  in
  let port = Server.port server in
  Format.printf "loadgen: daemon on 127.0.0.1:%d, %d queries in the mix@." port
    (List.length queries);
  let cold = run_cold port in
  pp_phase "cold" cold;
  let warm = run_warm port ~clients:!clients ~rounds:!rounds in
  pp_phase "warm" warm;
  let speedup = cold.p50 /. (if warm.p50 > 0. then warm.p50 else epsilon_float) in
  let cache = Ts_service.Dispatch.cache_stats (Server.dispatcher server) in
  Format.printf
    "  speedup (cold p50 / warm p50): %.0fx;  cache: %d hits, %d misses, %d entries@."
    speedup cache.Ts_core.Cache.hits cache.Ts_core.Cache.misses
    cache.Ts_core.Cache.entries;
  Server.stop server;
  let metrics = Ts_obs.Obs.Metrics.stop () in
  (match !json_file with
   | Some f -> write_json f ~cold ~warm ~speedup ~cache metrics
   | None -> ());
  (* the tentpole's acceptance bar: repeated queries must be >= 5x faster *)
  if speedup < 5. then begin
    Format.printf "FAIL: warm-cache speedup %.1fx below the 5x bar@." speedup;
    exit 1
  end
