(* Benchmark harness: prints every experiment table (E1-E14), then runs one
   bechamel timing per table so the engine's throughput is tracked too.

   --tables-only   skip the bechamel timings (CI smoke mode)
   --bench-only    skip the tables, only time the engine
   --deep          larger n for the tables
   --json FILE     also write the bechamel OLS estimates to FILE as JSON *)
open Bechamel
open Toolkit
open Ts_model
open Ts_core
open Ts_protocols

let stage = Staged.stage

(* One representative timed workload per experiment table.  The tables
   themselves (Tables.all) are the scientific artifact; these measure how
   fast the machinery that produces them runs. *)
let bechamel_tests () =
  [
    Test.make ~name:"e1-theorem1-racing2" (stage (fun () ->
        let t = Valency.create (Racing.make ~n:2) ~horizon:40 in
        ignore (Theorem.theorem1 t)));
    Test.make ~name:"e2-solo-run-racing16" (stage (fun () ->
        let proto = Racing.make ~n:16 in
        let inputs = Array.init 16 (fun p -> Value.int (p mod 2)) in
        ignore (Sim.run proto ~inputs ~policy:(Sim.Solo 0) ~flips:(fun () -> true)
                  ~budget:1_000_000)));
    Test.make ~name:"e3-bound-curves" (stage (fun () ->
        for n = 2 to 256 do
          ignore (Bounds.zhu_space n + Bounds.fhs_space n)
        done));
    Test.make ~name:"e4-valency-classify-racing2" (stage (fun () ->
        let proto = Racing.make ~n:2 in
        let t = Valency.create proto ~horizon:30 in
        let i0 = Config.initial proto ~inputs:[| Value.int 0; Value.int 1 |] in
        ignore (Valency.classify t i0 (Pset.all 2))));
    Test.make ~name:"e5-lemma1-racing3" (stage (fun () ->
        let proto = Racing.make ~n:3 in
        let t = Valency.create proto ~horizon:60 in
        let i0 = Config.initial proto ~inputs:[| Value.int 0; Value.int 1; Value.int 0 |] in
        ignore (Lemmas.lemma1 t i0 (Pset.all 3))));
    Test.make ~name:"e6-lemma4-racing3" (stage (fun () ->
        let proto = Racing.make ~n:3 in
        let t = Valency.create proto ~horizon:60 in
        let i0 = Config.initial proto ~inputs:[| Value.int 0; Value.int 1; Value.int 0 |] in
        ignore (Theorem.lemma4 t i0 (Pset.all 3))));
    Test.make ~name:"e7-jtt-counter8" (stage (fun () ->
        ignore (Ts_perturb.Adversary.run_counter ~n:8)));
    Test.make ~name:"e8-serial-tournament32" (stage (fun () ->
        ignore (Ts_mutex.Arena.serial (Ts_mutex.Tournament.make ~n:32)
                  ~order:(Array.init 32 Fun.id))));
    Test.make ~name:"e9-codec-roundtrip16" (stage (fun () ->
        let alg = Ts_mutex.Tournament.make ~n:16 in
        let o = Ts_mutex.Arena.serial alg ~order:(Array.init 16 Fun.id) in
        match Ts_encoder.Codec.round_trip alg o with
        | Ok _ -> ()
        | Error e -> failwith e));
    Test.make ~name:"e10-solo-election16" (stage (fun () ->
        let s = Ts_objects.Runner.create (Ts_leader.Election.make ~n:16) in
        ignore (Ts_objects.Runner.op s 0 Ts_leader.Election.Elect)));
    Test.make ~name:"e11-randomized-racing4" (stage (fun () ->
        let rng = Rng.create 7 in
        let proto = Racing.make_randomized ~n:4 in
        let inputs = Array.init 4 (fun _ -> Value.int (Rng.int rng 2)) in
        ignore (Sim.run proto ~inputs ~policy:(Sim.Random rng)
                  ~flips:(fun () -> Rng.bool rng) ~budget:2_000_000)));
    Test.make ~name:"e12-domains-racing2" (stage (fun () ->
        ignore (Ts_runtime.Atomic_run.run (Racing.make ~n:2) ~trials:1 ~seed:3
                  ~step_budget:500_000 ~mixed_inputs:true)));
    Test.make ~name:"e13-tas-serial32" (stage (fun () ->
        ignore (Ts_mutex.Arena.serial (Ts_mutex.Tas_lock.make ~n:32)
                  ~order:(Array.init 32 Fun.id))));
    Test.make ~name:"e14-explore-broken" (stage (fun () ->
        ignore (Ts_checker.Explore.check_consensus (Broken.last_write_wins ~n:2)
                  ~inputs_list:(Ts_checker.Explore.binary_inputs 2) ~max_configs:10_000
                  ~max_depth:30 ~solo_budget:50 ~check_solo:false)));
    (* E24: auditing an answer vs producing it.  The e1 workload above is
       the producer; these two time building the certificate from an
       already-won Theorem-1 run and micro-checking its bytes. *)
    (let proto = Racing.make ~n:2 in
     let t = Valency.create proto ~horizon:40 in
     let thm = Theorem.theorem1 t in
     Test.make ~name:"e24-cert-build-racing2" (stage (fun () ->
         ignore (Ts_cert.Cert.of_theorem proto thm))));
    (let proto = Racing.make ~n:2 in
     let t = Valency.create proto ~horizon:40 in
     let bytes = Ts_cert.Cert.to_string (Ts_cert.Cert.of_theorem proto (Theorem.theorem1 t)) in
     Test.make ~name:"e24-microcheck-racing2" (stage (fun () ->
         match Ts_microcheck.Microcheck.check_string bytes with
         | Ok () -> ()
         | Error e -> failwith e)));
    (* E26: the second engine's construction, and the full two-engine
       agreement check the crosscheck gate runs per protocol. *)
    Test.make ~name:"e26-revisionist-racing2" (stage (fun () ->
        let module R = Ts_revisionist.Revisionist in
        match R.construct (Racing.make ~n:2) with
        | R.Complete _ -> ()
        | R.Partial _ -> failwith "revisionist stopped on racing n=2"));
    Test.make ~name:"e26-two-engine-racing2" (stage (fun () ->
        let module R = Ts_revisionist.Revisionist in
        let proto = Racing.make ~n:2 in
        let t = Valency.create proto ~horizon:40 in
        let lem = Theorem.theorem1 t in
        match R.construct proto with
        | R.Complete rev ->
          (match Ts_core.Outcome.agree (Ts_core.Outcome.of_theorem lem) (R.summary rev) with
           | Ok _ -> ()
           | Error m -> failwith m)
        | R.Partial _ -> failwith "revisionist stopped on racing n=2"));
  ]

(* Search-engine observability: run the e14 and e5/e6 workloads once more
   outside the timer, with the metrics registry armed, and print the
   counters the engine kept.  The returned snapshot goes into the --json
   file under the versioned "metrics_v" key. *)
let engine_stats () =
  Format.printf "@.%s@.Search-engine metrics (one untimed run of the core workloads)@.%s@."
    (String.make 78 '-') (String.make 78 '-');
  Ts_obs.Obs.Metrics.start ();
  let module E = Ts_checker.Explore in
  let r =
    E.check_consensus (Broken.last_write_wins ~n:2)
      ~inputs_list:(E.binary_inputs 2) ~max_configs:10_000 ~max_depth:30
      ~solo_budget:50 ~check_solo:false
  in
  Format.printf "  explore broken-2:  %a@." E.pp_stats r.E.stats;
  let proto = Racing.make ~n:3 in
  let t = Valency.create proto ~horizon:60 in
  let i0 = Config.initial proto ~inputs:[| Value.int 0; Value.int 1; Value.int 0 |] in
  ignore (Theorem.lemma4 t i0 (Pset.all 3));
  Format.printf "  lemma4 racing-3:   %a@." Valency.pp_stats (Valency.stats t);
  let snap = Ts_obs.Obs.Metrics.stop () in
  Format.printf "%a@." Ts_obs.Obs.Metrics.pp_snapshot snap;
  snap

(* Minimal JSON escaping for benchmark names (alphanumeric + dashes in
   practice, but be safe). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The harness/unit/estimator/results keys render byte-identically to the
   pre-metrics format (BENCH_PR1.json comparisons parse unchanged); the
   engine-metrics snapshot rides along under the versioned "metrics_v"
   key. *)
let write_json file results metrics =
  let oc = open_out file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"harness\": \"tightspace-bench\",\n";
  p "  \"unit\": \"ns/run\",\n";
  p "  \"estimator\": \"bechamel OLS, monotonic clock\",\n";
  p "  \"results\": {\n";
  List.iteri
    (fun i (name, est) ->
      p "    \"%s\": %.1f%s\n" (json_escape name) est
        (if i = List.length results - 1 then "" else ","))
    results;
  p "  },\n";
  p "  \"metrics_v\": %s\n" (Ts_obs.Export.metrics_json metrics);
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." file

let run_bechamel ~json ~metrics () =
  Format.printf "@.%s@.Bechamel timings (one per table; OLS ns/run over a short quota)@.%s@."
    (String.make 78 '-') (String.make 78 '-');
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let tests = Test.make_grouped ~name:"tightspace" ~fmt:"%s %s" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> Format.printf "no clock results?@."
  | Some tbl ->
    let estimates =
      Hashtbl.fold
        (fun name ols acc ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> (name, est) :: acc
          | Some _ | None -> acc)
        tbl []
      |> List.sort compare
    in
    List.iter (fun (name, est) -> Format.printf "  %-42s %12.0f ns/run@." name est) estimates;
    Option.iter (fun file -> write_json file estimates metrics) json

(* Poor man's argv parsing: flags plus one optional "--json FILE" pair. *)
let rec find_json = function
  | "--json" :: file :: _ -> Some file
  | _ :: rest -> find_json rest
  | [] -> None

let () =
  let args = Array.to_list Sys.argv in
  let tables_only = List.mem "--tables-only" args in
  let bench_only = List.mem "--bench-only" args in
  let json = find_json args in
  let max_n = if List.mem "--deep" args then 4 else 3 in
  Format.printf "tightspace benchmark harness — reproduction of Zhu, 'A Tight Space Bound@.";
  Format.printf "for Consensus' (PODC'16 BA / STOC'16), plus the JTT and Fan-Lynch bounds.@.";
  if not bench_only then Tables.all ~max_n ();
  if not tables_only then begin
    let metrics = engine_stats () in
    run_bechamel ~json ~metrics ()
  end;
  Format.printf "@.done.@."
