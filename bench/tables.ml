(* The experiment tables of EXPERIMENTS.md: one function per experiment id,
   each printing the measured quantities next to the proved bound curves. *)
open Ts_model
open Ts_core
open Ts_protocols

let line = String.make 78 '-'

let header id title =
  Format.printf "@.%s@.%s — %s@.%s@." line id title line

(* E1: Theorem 1 witnesses — the paper's main result, machine-checked. *)
let e1 ?(max_n = 3) () =
  header "E1" "Zhu Theorem 1: adversary-constructed executions writing >= n-1 registers";
  Format.printf "%-12s %4s %18s %10s %14s %10s@." "protocol" "n" "registers-written"
    "bound n-1" "schedule-len" "searches";
  List.iter
    (fun n ->
      let proto = Racing.make ~n in
      let horizon = 30 * n in
      let t = Valency.create proto ~horizon in
      match Theorem.theorem1 t with
      | cert ->
        let ok =
          match Theorem.verify cert proto with Ok () -> "" | Error e -> " REPLAY-FAIL: " ^ e
        in
        Format.printf "%-12s %4d %18d %10d %14d %10d%s@." proto.Protocol.name n
          (List.length cert.Theorem.registers_written)
          (Bounds.zhu_space n)
          (List.length cert.Theorem.schedule)
          cert.Theorem.oracle_searches ok
      | exception Valency.Horizon_exceeded msg ->
        Format.printf "%-12s %4d   horizon %d too small (%s)@." proto.Protocol.name n horizon
          msg)
    (List.init (max_n - 1) (fun i -> i + 2));
  (* the bound covers randomized protocols: same construction, coins
     resolved adversarially *)
  List.iter
    (fun n ->
      let proto = Racing.make_randomized ~n in
      let t = Valency.create proto ~horizon:(30 * n) in
      match Theorem.theorem1 t with
      | cert ->
        Format.printf "%-12s %4d %18d %10d %14d %10d@." proto.Protocol.name n
          (List.length cert.Theorem.registers_written)
          (Bounds.zhu_space n)
          (List.length cert.Theorem.schedule)
          cert.Theorem.oracle_searches
      | exception Valency.Horizon_exceeded msg ->
        Format.printf "%-12s %4d   horizon too small (%s)@." proto.Protocol.name n msg)
    [ 2; 3 ]

(* E2: upper bounds — registers touched by real protocols. *)
let e2 () =
  header "E2" "Upper bounds: registers allocated/written by consensus protocols";
  Format.printf "%-16s %4s %10s %12s %12s %10s@." "protocol" "n" "allocated" "solo-written"
    "rr-written" "bound n-1";
  List.iter
    (fun n ->
      List.iter
        (fun proto ->
          let inputs = Array.init n (fun p -> Value.int (p mod 2)) in
          let solo =
            Sim.run proto ~inputs ~policy:(Sim.Solo 0) ~flips:(fun () -> true)
              ~budget:2_000_000
          in
          let rr =
            Sim.run proto ~inputs ~policy:Sim.Round_robin ~flips:(fun () -> true)
              ~budget:2_000_000
          in
          Format.printf "%-16s %4d %10d %12d %12d %10d@." proto.Protocol.name n
            proto.Protocol.num_registers
            (List.length (Execution.written_registers solo.Sim.trace))
            (List.length (Execution.written_registers rr.Sim.trace))
            (Bounds.zhu_space n))
        [ Racing.make ~n ])
    [ 2; 4; 8; 16; 32; 64 ]

(* E3: the gap the paper closed. *)
let e3 () =
  header "E3" "The FHS sqrt(n) -> Zhu n-1 gap (bound curves vs implemented protocol)";
  Format.printf "%4s %14s %12s %14s@." "n" "FHS-sqrt(n)" "Zhu n-1" "racing (2n)";
  List.iter
    (fun n ->
      Format.printf "%4d %14d %12d %14d@." n (Bounds.fhs_space n) (Bounds.zhu_space n)
        (2 * n))
    [ 2; 4; 8; 16; 32; 64; 128; 256 ]

(* E4: Proposition 2 and Lemma 1 (Figure 2). *)
let e4 () =
  header "E4" "Prop. 2 initial valencies and Lemma 1 witnesses (Figure 2)";
  let n = 3 in
  let proto = Racing.make ~n in
  let t = Valency.create proto ~horizon:70 in
  let i0 = Config.initial proto ~inputs:[| Value.int 0; Value.int 1; Value.int 0 |] in
  Format.printf "initial configuration I, inputs [0;1;0]:@.";
  List.iter
    (fun ps ->
      let verdict =
        match Valency.classify t i0 ps with
        | Valency.Bivalent (w0, w1) ->
          Printf.sprintf "bivalent (witnesses: %d and %d steps)" (List.length w0)
            (List.length w1)
        | Valency.Univalent (v, w) ->
          Printf.sprintf "%s-univalent (witness: %d steps)" (Value.to_string v)
            (List.length w)
        | Valency.Blocked -> "blocked"
      in
      Format.printf "  %-14s %s@." (Format.asprintf "%a" Pset.pp ps) verdict)
    [ Pset.singleton 0; Pset.singleton 1; Pset.of_list [ 0; 1 ]; Pset.all 3 ];
  let { Lemmas.phi; z } = Lemmas.lemma1 t i0 (Pset.all 3) in
  Format.printf "Lemma 1 on P={p0,p1,p2}: phi has %d steps, z = p%d, P-{z} bivalent at C·phi@."
    (List.length phi) z;
  (* the valency-annotated configuration graph of racing-2 (Figure-2 style) *)
  let proto2 = Racing.make ~n:2 in
  let t2 = Valency.create proto2 ~horizon:40 in
  let _, g =
    Valgraph.dot t2 ~inputs:[| Value.int 0; Value.int 1 |] ~pset:(Pset.all 2)
      ~depth:12 ~max_nodes:4_000
  in
  Format.printf
    "valency atlas of racing-2 to depth 12: %d configurations (%d bivalent, %d 0-univalent, %d 1-univalent)@."
    g.Valgraph.nodes g.Valgraph.bivalent g.Valgraph.univalent0 g.Valgraph.univalent1

(* E5: Lemma 3 (Figure 3). *)
let e5 () =
  header "E5" "Lemma 3 (Figure 3): block write absorbed while staying bivalent";
  let n = 3 in
  let proto = Racing.make ~n in
  let t = Valency.create proto ~horizon:70 in
  let i0 = Config.initial proto ~inputs:[| Value.int 0; Value.int 1; Value.int 0 |] in
  let nice = Theorem.lemma4 t i0 (Pset.all 3) in
  let l3 = Lemmas.lemma3 t nice.Theorem.cfg ~p:(Pset.all 3) ~r:nice.Theorem.cover in
  Format.printf
    "from the nice configuration: cover R = %a over registers {%a}@.\
     Lemma 3 gives phi (%d steps), q = p%d, R can decide %a after the block write;@.\
     R ∪ {q} re-verified bivalent from C·phi·beta@."
    Pset.pp nice.Theorem.cover
    Fmt.(list ~sep:comma (fmt "R%d"))
    (Covering.covered_set proto nice.Theorem.cfg nice.Theorem.cover)
    (List.length l3.Lemmas.phi3) l3.Lemmas.q Value.pp l3.Lemmas.v_r

(* E6: Lemma 4 (Figure 4). *)
let e6 () =
  header "E6" "Lemma 4 (Figure 4): the pigeonhole construction with hidden insertion";
  let n = 3 in
  let proto = Racing.make ~n in
  let t = Valency.create proto ~horizon:70 in
  let i0 = Config.initial proto ~inputs:[| Value.int 0; Value.int 1; Value.int 0 |] in
  let nice = Theorem.lemma4 t i0 (Pset.all 3) in
  Format.printf
    "lemma4(I, {p0,p1,p2}) = alpha with %d steps@.\
     final pair %a bivalent; covering set %a well spread over {%a}@.\
     (the hidden z-insertion was verified structurally: register contents and@.\
      P-{z} states match the uninstrumented run)@."
    (List.length nice.Theorem.alpha) Pset.pp nice.Theorem.q_pair Pset.pp nice.Theorem.cover
    Fmt.(list ~sep:comma (fmt "R%d"))
    (Covering.covered_set proto nice.Theorem.cfg nice.Theorem.cover)

(* E7: the JTT perturbable-object bound. *)
let e7 () =
  header "E7" "Jayanti–Tan–Toueg: covering adversary on perturbable objects";
  Format.printf "%-18s %4s %10s %10s %14s %12s %10s@." "object" "n" "covered" "bound n-1"
    "probe-regs" "probe-steps" "hiding";
  List.iter
    (fun n ->
      List.iter
        (fun run ->
          let r = run ~n in
          Format.printf "%-18s %4d %10d %10d %14d %12d %10s@."
            r.Ts_perturb.Adversary.object_name n r.Ts_perturb.Adversary.distinct_covered
            r.Ts_perturb.Adversary.jtt_bound r.Ts_perturb.Adversary.probe_accesses
            r.Ts_perturb.Adversary.probe_steps
            (if r.Ts_perturb.Adversary.hidden_invisible && r.Ts_perturb.Adversary.completed_visible
             then "ok"
             else "FAILED"))
        [
          Ts_perturb.Adversary.run_counter;
          Ts_perturb.Adversary.run_maxreg;
          Ts_perturb.Adversary.run_snapshot;
        ])
    [ 2; 4; 8; 16 ]

(* E8: Fan–Lynch mutex cost. *)
let e8 () =
  header "E8" "Fan–Lynch: state-change cost of canonical executions";
  Format.printf "%4s %12s %10s %12s %10s %14s %16s@." "n" "peterson" "bakery" "tournament"
    "tas(swap)" "bound nlog2n" "contended-tree";
  List.iter
    (fun n ->
      let order = Array.init n Fun.id in
      let cost alg = (Ts_mutex.Arena.serial alg ~order).Ts_mutex.Arena.cost in
      let contended = (Ts_mutex.Arena.contended (Ts_mutex.Tournament.make ~n)).Ts_mutex.Arena.cost in
      Format.printf "%4d %12d %10d %12d %10d %14.0f %16d@." n
        (cost (Ts_mutex.Peterson.make ~n))
        (cost (Ts_mutex.Bakery.make ~n))
        (cost (Ts_mutex.Tournament.make ~n))
        (cost (Ts_mutex.Tas_lock.make ~n))
        (Bounds.fan_lynch_cost n) contended)
    [ 2; 4; 8; 16; 32; 64 ]

(* E9: the encoder/decoder. *)
let e9 () =
  header "E9" "Fan–Lynch encoder/decoder: schedule bits vs entropy floor";
  Format.printf "%4s %14s %12s %12s %12s %10s@." "n" "bits(serial)" "log2(n!)"
    "cost(serial)" "bits(cont.)" "roundtrip";
  List.iter
    (fun n ->
      let alg = Ts_mutex.Tournament.make ~n in
      let order = Rng.permutation (Rng.create (n + 1)) n in
      let o = Ts_mutex.Arena.serial alg ~order in
      let oc = Ts_mutex.Arena.contended alg in
      match Ts_encoder.Codec.round_trip alg o, Ts_encoder.Codec.round_trip alg oc with
      | Ok e, Ok ec ->
        Format.printf "%4d %14d %12.1f %12d %12d %10s@." n (snd e.Ts_encoder.Codec.bits)
          (Bounds.log2_factorial n) o.Ts_mutex.Arena.cost (snd ec.Ts_encoder.Codec.bits) "ok"
      | Error e, _ | _, Error e -> Format.printf "%4d round trip FAILED: %s@." n e)
    [ 2; 4; 8; 16; 32; 64 ]

(* E10: leader election vs consensus space. *)
let e10 () =
  header "E10" "Weak leader election vs consensus (the introduction's contrast)";
  Format.printf "%4s %16s %16s %14s %12s %12s@." "n" "election-regs" "solo-touched"
    "GHHW-O(logn)" "consensus" "Zhu n-1";
  List.iter
    (fun n ->
      let impl = Ts_leader.Election.make ~n in
      let s = Ts_objects.Runner.create impl in
      ignore (Ts_objects.Runner.op s 0 Ts_leader.Election.Elect);
      Format.printf "%4d %16d %16d %14d %12d %12d@." n impl.Ts_objects.Impl.num_registers
        (List.length (Ts_objects.Runner.op_accesses s 0))
        (Bounds.leader_election_space n) (2 * n) (Bounds.zhu_space n))
    [ 2; 4; 8; 16; 32; 64 ];
  (* a second sub-consensus task from the same splitters: one-shot renaming *)
  Format.printf "@.Moir-Anderson renaming from the same splitters (weaker than consensus):@.";
  Format.printf "%4s %14s %16s %14s@." "n" "name-space" "regs (2 names)" "distinct-names";
  List.iter
    (fun n ->
      let rng = Rng.create (3 * n) in
      let s = Ts_objects.Runner.create (Ts_leader.Renaming.make ~n) in
      for p = 0 to n - 1 do
        Ts_objects.Runner.invoke s p Ts_leader.Renaming.Rename
      done;
      let names = ref [] in
      let pending = ref (List.init n Fun.id) in
      while !pending <> [] do
        let p = List.nth !pending (Rng.int rng (List.length !pending)) in
        match Ts_objects.Runner.step s p with
        | `Returned v ->
          names := Value.to_int v :: !names;
          pending := List.filter (fun q -> q <> p) !pending
        | `Continues -> ()
      done;
      Format.printf "%4d %14d %16d %14d@." n (Ts_leader.Renaming.name_space n)
        (Ts_leader.Renaming.make ~n).Ts_objects.Impl.num_registers
        (List.length (List.sort_uniq compare !names)))
    [ 2; 4; 8; 16 ]

(* E11: randomized consensus total steps. *)
let e11 () =
  header "E11" "Randomized racing consensus: agreement across seeds, steps vs n^2";
  Format.printf "%4s %8s %12s %14s %14s@." "n" "trials" "disagree" "avg-steps" "AC08 n^2";
  List.iter
    (fun n ->
      let proto = Racing.make_randomized ~n in
      let trials = 40 in
      let disagree = ref 0 and steps = ref 0 in
      for seed = 1 to trials do
        let rng = Rng.create (seed * 131) in
        let inputs = Array.init n (fun _ -> Value.int (Rng.int rng 2)) in
        let o =
          Sim.run proto ~inputs ~policy:(Sim.Random rng)
            ~flips:(fun () -> Rng.bool rng)
            ~budget:3_000_000
        in
        steps := !steps + o.Sim.steps;
        match Sim.agreement o with Ok _ -> () | Error _ -> incr disagree
      done;
      Format.printf "%4d %8d %12d %14d %14d@." n trials !disagree (!steps / trials)
        (Bounds.attiya_censor_steps n))
    [ 2; 4; 8; 16 ];
  (* the weak-shared-coin building block of AH90-style protocols *)
  Format.printf "@.weak shared coin (±1 random walk, threshold 3n): unanimity rate@.";
  List.iter
    (fun n ->
      let trials = 30 in
      let unanimous = ref 0 in
      for seed = 1 to trials do
        let rng = Rng.create (seed * 389) in
        let s = Ts_objects.Runner.create (Ts_objects.Shared_coin.make ~n ~k:3) in
        for p = 0 to n - 1 do
          Ts_objects.Runner.invoke s p (Ts_objects.Shared_coin.Toss { seed = seed + (p * 101) })
        done;
        let outs = ref [] in
        let pending = ref (List.init n Fun.id) in
        while !pending <> [] do
          let p = List.nth !pending (Rng.int rng (List.length !pending)) in
          match Ts_objects.Runner.step s p with
          | `Returned v ->
            outs := Value.to_bool v :: !outs;
            pending := List.filter (fun q -> q <> p) !pending
          | `Continues -> ()
        done;
        if List.length (List.sort_uniq compare !outs) = 1 then incr unanimous
      done;
      Format.printf "  n=%2d: %d/%d trials unanimous@." n !unanimous trials)
    [ 2; 3; 4 ]

(* E12: multicore validation. *)
let e12 () =
  header "E12" "Multicore: the same protocol code on OCaml 5 atomics and domains";
  List.iter
    (fun (proto, trials) ->
      let s =
        Ts_runtime.Atomic_run.run proto ~trials ~seed:2026 ~step_budget:1_000_000
          ~mixed_inputs:true
      in
      Format.printf "  %a@." Ts_runtime.Atomic_run.pp_stats s)
    [ Racing.make ~n:2, 60; Racing.make ~n:3, 40; Racing.make ~n:4, 25;
      Racing.make_randomized ~n:3, 25 ]

(* E13: the historyless contrast of the conclusion. *)
let e13 () =
  header "E13" "Historyless primitives (swap): what the conclusion says registers can't do";
  Format.printf "%4s %22s %22s@." "n" "tas(1 swap reg) cost" "tournament(regs) cost";
  List.iter
    (fun n ->
      let order = Array.init n Fun.id in
      Format.printf "%4d %22d %22d@." n
        (Ts_mutex.Arena.serial (Ts_mutex.Tas_lock.make ~n) ~order).Ts_mutex.Arena.cost
        (Ts_mutex.Arena.serial (Ts_mutex.Tournament.make ~n) ~order).Ts_mutex.Arena.cost)
    [ 2; 8; 32; 64 ];
  Format.printf
    "  one swap register replaces Ω(n) read/write registers — the FHS Ω(sqrt n)@.\
  \  bound still applies to historyless objects, Zhu's n-1 proof does not (§4).@."

(* E14: negative controls. *)
let e14 () =
  header "E14" "Negative controls: broken protocols are rejected";
  let explore proto =
    Ts_checker.Explore.check_consensus proto
      ~inputs_list:(Ts_checker.Explore.binary_inputs 2) ~max_configs:20_000 ~max_depth:30
      ~solo_budget:200 ~check_solo:true
  in
  List.iter
    (fun (Protocol.Packed proto) ->
      let r = explore proto in
      Format.printf "  %-16s %s@." proto.Protocol.name
        (match r.Ts_checker.Explore.verdict with
         | Ok () -> "NOT CAUGHT (bug!)"
         | Error v -> Format.asprintf "caught: %a" Ts_checker.Explore.pp_violation v))
    [
      Protocol.Packed (Broken.last_write_wins ~n:2);
      Protocol.Packed (Broken.naive_max ~n:2);
      Protocol.Packed (Broken.oblivious_seven ~n:2);
      Protocol.Packed (Broken.insomniac ~n:2);
    ];
  let r = explore (Racing.make ~n:2) in
  Format.printf "  %-16s %s@." "racing-2 (control)"
    (match r.Ts_checker.Explore.verdict with
     | Ok () ->
       Printf.sprintf "clean (%d configurations explored)"
         r.Ts_checker.Explore.stats.Ts_checker.Explore.configs_explored
     | Error _ -> "FALSE POSITIVE (bug!)")

(* E15: the conclusion's k-set agreement direction. *)
let e15 () =
  header "E15" "k-set agreement (§4): partitioned protocol vs the bound curves";
  Format.printf "%4s %4s %12s %14s %16s %16s@." "n" "k" "regs-used" "BRS15 n-k+1"
    "conj. n-k" "distinct-decided";
  List.iter
    (fun (n, k) ->
      let proto = Kset.make ~n ~k in
      let rng = Rng.create (n + k) in
      let inputs = Array.init n (fun _ -> Value.int (Rng.int rng 2)) in
      let o =
        Sim.run proto ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> true)
          ~budget:2_000_000
      in
      let decided = List.sort_uniq Value.compare (List.map snd o.Sim.decisions) in
      Format.printf "%4d %4d %12d %14d %16d %16d@." n k proto.Protocol.num_registers
        (n - k + 1) (n - k) (List.length decided))
    [ 2, 1; 4, 2; 8, 2; 8, 4; 16, 4; 32, 8 ];
  (* multivalued consensus: the per-instance bound composes *)
  Format.printf "@.multivalued consensus (bit-by-bit over binary instances):@.";
  Format.printf "%4s %6s %12s %18s@." "n" "bits" "regs-used" "n-1 per instance";
  List.iter
    (fun (n, bits) ->
      let proto = Multivalued.make ~n ~bits in
      Format.printf "%4d %6d %12d %18d@." n bits proto.Protocol.num_registers (n - 1))
    [ 4, 2; 4, 4; 8, 4; 8, 8 ]

(* E16: Burns-Lynch covering configurations in real locks. *)
let e16 () =
  header "E16" "Burns-Lynch covering (the technique Zhu builds on), measured on real locks";
  Format.printf "%-16s %4s %14s %12s %12s %12s@." "lock" "n" "best-covered" "registers"
    "configs" "exhaustive";
  List.iter
    (fun (Ts_mutex.Algorithm.Packed alg) ->
      let r = Ts_mutex.Covering_search.search alg ~max_configs:120_000 in
      Format.printf "%-16s %4d %14d %12d %12d %12b@." r.Ts_mutex.Covering_search.algorithm
        r.Ts_mutex.Covering_search.n r.Ts_mutex.Covering_search.best_covered
        alg.Ts_mutex.Algorithm.num_registers r.Ts_mutex.Covering_search.configs_explored
        (not r.Ts_mutex.Covering_search.truncated))
    [
      Ts_mutex.Algorithm.Packed (Ts_mutex.Peterson.make ~n:2);
      Ts_mutex.Algorithm.Packed (Ts_mutex.Peterson.make ~n:3);
      Ts_mutex.Algorithm.Packed (Ts_mutex.Tournament.make ~n:2);
      Ts_mutex.Algorithm.Packed (Ts_mutex.Tournament.make ~n:3);
      Ts_mutex.Algorithm.Packed (Ts_mutex.Bakery.make ~n:2);
      Ts_mutex.Algorithm.Packed (Ts_mutex.Tas_lock.make ~n:4);
    ];
  Format.printf
    "  BL93: a deadlock-free n-process register lock admits n covered registers;@.  \  the swap lock concentrates on one — historyless primitives evade covering.@."

(* E17: swap in the consensus model itself. *)
let e17 () =
  header "E17" "Swap in the consensus model (§4): one register, consensus number 2";
  let module E = Ts_checker.Explore in
  let proto2 = Swap_consensus.two_process () in
  let r2 =
    E.check_consensus proto2 ~inputs_list:(E.binary_inputs 2) ~max_configs:1_000
      ~max_depth:10 ~solo_budget:10 ~check_solo:true
  in
  Format.printf "  swap-consensus-2 (1 register): %s@."
    (match r2.E.verdict with
     | Ok () ->
       Printf.sprintf "correct — exhaustively checked (%d configurations)"
         r2.E.stats.E.configs_explored
     | Error _ -> "VIOLATION (bug!)");
  let t = Valency.create proto2 ~horizon:10 in
  (match Theorem.theorem1 t with
   | cert ->
     Format.printf "  Theorem 1 on it: %d register written = bound n-1 = 1 (tight)@."
       (List.length cert.Theorem.registers_written)
   | exception Valency.Horizon_exceeded m -> Format.printf "  engine failed: %s@." m);
  let r3 =
    E.check_consensus (Swap_consensus.naive_chain ~n:3) ~inputs_list:(E.binary_inputs 3)
      ~max_configs:5_000 ~max_depth:12 ~solo_budget:10 ~check_solo:false
  in
  Format.printf "  swap-chain-3: %s@."
    (match r3.E.verdict with
     | Error v -> Format.asprintf "caught — %a (consensus number of swap is 2)" E.pp_violation v
     | Ok () -> "NOT caught (bug!)");
  Format.printf
    "  One swap register solves 2-process consensus wait-free; registers cannot.@.  \  Zhu's proof machinery runs on swap protocols but its n-1 bound is only@.  \  known for read/write registers — the open problem of §4.@."

(* E26: the two lower-bound engines side by side.  Same protocols, same
   claimed bound, incomparable machinery: the Lemmas engine pays for
   valency-oracle searches, the revisionist engine for simulated private
   steps and revisions.  Both witnesses are re-verified in the loop, so a
   row of this table is a completed crosscheck agreement. *)
let e26 () =
  header "E26" "Two engines, one bound: Lemmas 1-4 vs revisionist simulations";
  let module R = Ts_revisionist.Revisionist in
  Format.printf "%-14s %4s %6s | %12s %9s %8s | %12s %9s %8s@." "protocol" "n"
    "agree" "lemmas-sched" "searches" "ms" "rev-sched" "revisions" "ms";
  let timed f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  List.iter
    (fun (Protocol.Packed proto) ->
      let n = proto.Protocol.num_processes in
      let lem, lem_ms =
        timed (fun () ->
            match Theorem.theorem1_escalate proto ~initial_horizon:(10 * n) with
            | Theorem.Complete c, _ when Theorem.verify c proto = Ok () -> Some c
            | _ -> None)
      in
      let rev, rev_ms =
        timed (fun () ->
            match R.escalate proto ~initial_solo:(10 * n) with
            | R.Complete c, _ when R.verify c proto = Ok () -> Some c
            | _ -> None)
      in
      match (lem, rev) with
      | Some lc, Some rc ->
        let agree =
          match Outcome.agree (Outcome.of_theorem lc) (R.summary rc) with
          | Ok b -> string_of_int b
          | Error _ -> "DIVERGE"
        in
        Format.printf "%-14s %4d %6s | %12d %9d %8.1f | %12d %9d %8.1f@."
          proto.Protocol.name n agree
          (List.length lc.Theorem.schedule)
          lc.Theorem.oracle_searches lem_ms
          (List.length rc.R.schedule)
          rc.R.revisions rev_ms
      | _ ->
        Format.printf "%-14s %4d %6s@." proto.Protocol.name n
          "(an engine stopped)")
    [
      Protocol.Packed (Racing.make ~n:2);
      Protocol.Packed (Racing.make ~n:3);
      Protocol.Packed (Racing.make_randomized ~n:2);
      Protocol.Packed (Swap_consensus.two_process ());
    ];
  Format.printf
    "  Same bound from disjoint proofs: the oracle-driven Lemma walk and the@.  \  parking adversary agree register-for-register (tightspace crosscheck@.  \  gates CI on exactly this agreement).@."

let all ?max_n () =
  e1 ?max_n ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  e17 ();
  e26 ()
