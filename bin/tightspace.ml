(* tightspace: command-line front end to the reproduction.

   Subcommands mirror the experiment families:
     witness    run the Zhu Theorem-1 adversary against a protocol
     check      bounded model-check a protocol's consensus properties
     jtt        run the perturbable-object covering adversary
     mutex      cost canonical mutual-exclusion executions
     encode     Fan-Lynch encoder/decoder round trip
     elect      run weak leader election under a random schedule
     multicore  run a protocol on real domains over atomics
     resilient  check t-resilient termination under crash-stop faults  *)
open Cmdliner
open Ts_model
open Ts_core
open Ts_protocols

let n_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let seed_arg =
  Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let protocol_of_name name n =
  match name with
  | "racing" -> Ok (Protocol.Packed (Racing.make ~n))
  | "racing-rand" -> Ok (Protocol.Packed (Racing.make_randomized ~n))
  | "broken-lww" -> Ok (Protocol.Packed (Broken.last_write_wins ~n))
  | "broken-max" -> Ok (Protocol.Packed (Broken.naive_max ~n))
  | "broken-const" -> Ok (Protocol.Packed (Broken.oblivious_seven ~n))
  | "broken-spin" -> Ok (Protocol.Packed (Broken.insomniac ~n))
  | "broken-wait" -> Ok (Protocol.Packed (Broken.wait_for_all ~n))
  | "swap" ->
    if n = 2 then Ok (Protocol.Packed (Swap_consensus.two_process ()))
    else Error (`Msg "swap consensus exists only for n = 2")
  | "swap-chain" -> Ok (Protocol.Packed (Swap_consensus.naive_chain ~n))
  | _ -> Error (`Msg ("unknown protocol: " ^ name))

let protocol_arg =
  Arg.(value & opt string "racing"
       & info [ "protocol" ] ~docv:"NAME"
           ~doc:"Protocol: racing, racing-rand, swap, swap-chain, broken-lww, broken-max, broken-const, broken-spin, broken-wait.")

(* Resource-guard flags shared by the search subcommands. *)
let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SECS"
           ~doc:"Wall-clock budget; a tripped budget yields a partial result.")

let max_nodes_arg =
  Arg.(value & opt (some int) None
       & info [ "max-nodes" ] ~docv:"N"
           ~doc:"Search-node budget across the whole invocation.")

let budget_of ?deadline ?max_nodes () =
  match deadline, max_nodes with
  | None, None -> Budget.unlimited
  | _ -> Budget.create ?deadline ?max_nodes ()

module Obs = Ts_obs.Obs
module Obs_export = Ts_obs.Export

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Arm the engine's metrics registry for the run and print the \
                 counter/gauge/histogram summary afterwards.")

(* Run [f] with metrics armed when requested; the summary prints even if
   [f] raises (partial runs are exactly when the counters are interesting). *)
let with_metrics enabled f =
  if not enabled then f ()
  else begin
    Obs.Metrics.start ();
    Fun.protect f ~finally:(fun () ->
        Format.printf "@.engine metrics:@.%a@." Obs.Metrics.pp_snapshot
          (Obs.Metrics.stop ()))
  end

(* witness *)
let witness n horizon protocol diagram deadline max_nodes metrics =
  match protocol_of_name protocol n with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok (Protocol.Packed proto) ->
    with_metrics metrics @@ fun () ->
    let budget = budget_of ?deadline ?max_nodes () in
    let outcome, used =
      match horizon with
      | Some h ->
        (* an explicit horizon is a promise: no escalation, just report *)
        let t = Valency.create ~budget proto ~horizon:h in
        Theorem.theorem1_outcome t, h
      | None -> Theorem.theorem1_escalate ~budget proto ~initial_horizon:(10 * n)
    in
    (match outcome with
     | Theorem.Complete cert ->
       Format.printf "%a@.(oracle horizon: %d)@." Theorem.pp_certificate cert used;
       if diagram then
         Format.printf "@.%s@." (Diagram.render ~n cert.Theorem.trace);
       (match Theorem.verify cert proto with
        | Ok () -> Format.printf "independent replay: verified.@."; 0
        | Error e -> Format.printf "replay FAILED: %s@." e; 1)
     | Theorem.Partial (stop, progress) ->
       Format.printf "partial result: %a@.progress: %a@." Theorem.pp_stop stop
         Theorem.pp_progress progress;
       (match stop with
        | Theorem.Horizon_wall _ ->
          Format.printf "hint: raise --horizon beyond %d (or drop it to escalate automatically).@." used
        | Theorem.Out_of_budget _ ->
          Format.printf "hint: raise --deadline / --max-nodes and rerun.@.");
       2
     | exception Failure msg -> Format.printf "construction failed: %s@." msg; 1)

let horizon_arg =
  Arg.(value & opt (some int) None & info [ "horizon" ] ~docv:"H"
         ~doc:"Valency oracle search depth (default: escalate from 10n).")

let witness_cmd =
  let diagram =
    Arg.(value & flag & info [ "diagram" ] ~doc:"Render the witness as a space-time diagram.")
  in
  Cmd.v (Cmd.info "witness" ~doc:"Run the Zhu Theorem-1 adversary")
    Term.(const witness $ n_arg $ horizon_arg $ protocol_arg $ diagram
          $ deadline_arg $ max_nodes_arg $ metrics_arg)

(* check: shared result reporting for the exploration subcommands *)
let report_explore r =
  let open Ts_checker.Explore in
  List.iter
    (fun (idx, msg) ->
      Format.printf "worker error on input vector %d: %s@." idx msg)
    r.worker_errors;
  (match r.stopped with
   | Some b ->
     Format.printf "budget tripped (%a): verdict below is partial; raise --deadline / --max-nodes.@."
       Budget.pp_breach b
   | None -> ());
  match r.verdict with
  | Ok () ->
    let s = r.stats in
    Format.printf "clean: %d configurations explored (truncated: %b, deepest: %d)@."
      s.configs_explored s.truncated s.deepest;
    if r.worker_errors <> [] then 1 else 0
  | Error v ->
    Format.printf "VIOLATION: %a@." pp_violation v;
    1

let max_configs_arg =
  Arg.(value & opt int 60_000 & info [ "max-configs" ] ~doc:"Exploration cap.")

let max_depth_arg =
  Arg.(value & opt int 40 & info [ "max-depth" ] ~doc:"Depth cap.")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"D" ~doc:"Check input vectors on D domains.")

let check n protocol max_configs max_depth domains deadline max_nodes metrics =
  match protocol_of_name protocol n with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok (Protocol.Packed proto) ->
    with_metrics metrics @@ fun () ->
    report_explore
      (Ts_checker.Explore.check_consensus proto ~domains
         ~budget:(budget_of ?deadline ?max_nodes ())
         ~inputs_list:(Ts_checker.Explore.binary_inputs n) ~max_configs ~max_depth
         ~solo_budget:300 ~check_solo:true)

let check_cmd =
  Cmd.v (Cmd.info "check" ~doc:"Bounded model-check a protocol")
    Term.(const check $ n_arg $ protocol_arg $ max_configs_arg $ max_depth_arg
          $ domains_arg $ deadline_arg $ max_nodes_arg $ metrics_arg)

(* resilient *)
let resilient n t protocol max_configs max_depth domains deadline max_nodes metrics =
  match protocol_of_name protocol n with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok (Protocol.Packed proto) ->
    with_metrics metrics @@ fun () ->
    let r =
      Ts_checker.Explore.check_t_resilient proto ~domains ~t
        ~budget:(budget_of ?deadline ?max_nodes ())
        ~inputs_list:(Ts_checker.Explore.binary_inputs n) ~max_configs ~max_depth
        ~solo_budget:300
    in
    (match r.Ts_checker.Explore.verdict with
     | Error v ->
       (* a resilience witness must survive an independent replay *)
       (match Ts_checker.Explore.replay proto v with
        | Ok () -> Format.printf "witness replayed independently: confirmed.@."
        | Error e -> Format.printf "witness replay FAILED: %s@." e)
     | Ok () -> ());
    report_explore r

let resilient_cmd =
  let t =
    Arg.(value & opt int 1
         & info [ "t" ] ~docv:"T" ~doc:"Crash-fault tolerance to check (0 <= t <= n-1).")
  in
  Cmd.v
    (Cmd.info "resilient"
       ~doc:"Check t-resilient termination under crash-stop faults")
    Term.(const resilient $ n_arg $ t $ protocol_arg $ max_configs_arg
          $ max_depth_arg $ domains_arg $ deadline_arg $ max_nodes_arg
          $ metrics_arg)

(* jtt *)
let jtt n obj =
  let run =
    match obj with
    | "counter" -> Some Ts_perturb.Adversary.run_counter
    | "maxreg" -> Some Ts_perturb.Adversary.run_maxreg
    | "snapshot" -> Some Ts_perturb.Adversary.run_snapshot
    | _ -> None
  in
  match run with
  | None -> prerr_endline ("unknown object: " ^ obj); 1
  | Some run ->
    Format.printf "%a@." Ts_perturb.Adversary.pp_report (run ~n);
    0

let jtt_cmd =
  let obj =
    Arg.(value & opt string "counter"
         & info [ "object" ] ~docv:"OBJ" ~doc:"counter, maxreg or snapshot.")
  in
  Cmd.v (Cmd.info "jtt" ~doc:"Run the perturbable-object covering adversary")
    Term.(const jtt $ n_arg $ obj)

(* mutex *)
let mutex n alg contended =
  let packed =
    match alg with
    | "peterson" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Peterson.make ~n))
    | "tournament" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Tournament.make ~n))
    | "bakery" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Bakery.make ~n))
    | "tas" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Tas_lock.make ~n))
    | _ -> None
  in
  match packed with
  | None -> prerr_endline ("unknown algorithm: " ^ alg); 1
  | Some (Ts_mutex.Algorithm.Packed a) ->
    let o =
      if contended then Ts_mutex.Arena.contended a
      else Ts_mutex.Arena.serial a ~order:(Array.init n Fun.id)
    in
    Format.printf "%s n=%d: cost=%d accesses=%d steps=%d (FL bound nlog2n = %.0f)@."
      o.Ts_mutex.Arena.algorithm n o.Ts_mutex.Arena.cost o.Ts_mutex.Arena.accesses
      o.Ts_mutex.Arena.steps (Bounds.fan_lynch_cost n);
    Format.printf "CS order: %a@." Fmt.(Dump.list int) o.Ts_mutex.Arena.cs_order;
    0

let mutex_cmd =
  let alg =
    Arg.(value & opt string "tournament"
         & info [ "alg" ] ~docv:"ALG" ~doc:"peterson, bakery, tournament or tas.")
  in
  let contended =
    Arg.(value & flag & info [ "contended" ] ~doc:"Round-robin contention instead of serial.")
  in
  Cmd.v (Cmd.info "mutex" ~doc:"Cost a canonical mutual-exclusion execution")
    Term.(const mutex $ n_arg $ alg $ contended)

(* encode *)
let encode n seed =
  let alg = Ts_mutex.Tournament.make ~n in
  let order = Rng.permutation (Rng.create seed) n in
  let o = Ts_mutex.Arena.serial alg ~order in
  match Ts_encoder.Codec.round_trip alg o with
  | Ok enc ->
    Format.printf "order %a -> %d bits (entropy floor log2(n!) = %.1f); decoded OK@."
      Fmt.(Dump.list int) (Array.to_list order) (snd enc.Ts_encoder.Codec.bits)
      (Bounds.log2_factorial n);
    0
  | Error e ->
    Format.printf "round trip failed: %s@." e;
    1

let encode_cmd =
  Cmd.v (Cmd.info "encode" ~doc:"Fan-Lynch encoder/decoder round trip")
    Term.(const encode $ n_arg $ seed_arg)

(* elect *)
let elect n seed =
  let rng = Rng.create seed in
  let s = Ts_objects.Runner.create (Ts_leader.Election.make ~n) in
  for p = 0 to n - 1 do
    Ts_objects.Runner.invoke s p Ts_leader.Election.Elect
  done;
  let pending = ref (List.init n Fun.id) in
  let leader = ref None in
  while !pending <> [] do
    let p = List.nth !pending (Rng.int rng (List.length !pending)) in
    match Ts_objects.Runner.step s p with
    | `Returned v ->
      if Value.to_bool v then leader := Some p;
      pending := List.filter (fun q -> q <> p) !pending
    | `Continues -> ()
  done;
  (match !leader with
   | Some p -> Format.printf "leader: p%d (everyone else learned they lost)@." p
   | None -> Format.printf "BUG: no leader elected@.");
  if !leader = None then 1 else 0

let elect_cmd =
  Cmd.v (Cmd.info "elect" ~doc:"Weak leader election under a random schedule")
    Term.(const elect $ n_arg $ seed_arg)

(* multicore *)
let multicore n trials seed =
  let s =
    Ts_runtime.Atomic_run.run (Racing.make ~n) ~trials ~seed ~step_budget:1_000_000
      ~mixed_inputs:true
  in
  Format.printf "%a@." Ts_runtime.Atomic_run.pp_stats s;
  if s.Ts_runtime.Atomic_run.agreement_failures = 0 then 0 else 1

let multicore_cmd =
  let trials = Arg.(value & opt int 20 & info [ "trials" ] ~doc:"Number of trials.") in
  Cmd.v (Cmd.info "multicore" ~doc:"Run racing consensus on real domains")
    Term.(const multicore $ n_arg $ trials $ seed_arg)

(* kset *)
let kset n k seed =
  let proto = Kset.make ~n ~k in
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.int (Rng.int rng 2)) in
  let o =
    Sim.run proto ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> Rng.bool rng)
      ~budget:2_000_000
  in
  let decided = List.sort_uniq Value.compare (List.map snd o.Sim.decisions) in
  Format.printf "inputs [%a]: %d processes decided %d distinct value(s) {%a} (k = %d)@."
    Fmt.(array ~sep:(any ";") Value.pp) inputs
    (List.length o.Sim.decisions) (List.length decided)
    Fmt.(list ~sep:comma Value.pp) decided k;
  if List.length decided <= k then 0 else 1

let kset_cmd =
  let k = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"At most k distinct decisions.") in
  Cmd.v (Cmd.info "kset" ~doc:"Run partitioned k-set agreement")
    Term.(const kset $ n_arg $ k $ seed_arg)

(* multi *)
let multi n bits seed =
  let proto = Multivalued.make ~n ~bits in
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Value.int (Rng.int rng (1 lsl bits))) in
  let o =
    Sim.run proto ~inputs ~policy:(Sim.Random rng) ~flips:(fun () -> Rng.bool rng)
      ~budget:3_000_000
  in
  (match Sim.agreement o with
   | Ok v ->
     Format.printf "inputs [%a] -> agreed on %a (%d-bit values, %d registers)@."
       Fmt.(array ~sep:(any ";") Value.pp) inputs Value.pp v bits
       proto.Protocol.num_registers;
     0
   | Error vs ->
     Format.printf "DISAGREEMENT: %a@." Fmt.(Dump.list Value.pp) vs;
     1)

let multi_cmd =
  let bits = Arg.(value & opt int 3 & info [ "bits" ] ~docv:"B" ~doc:"Input width in bits.") in
  Cmd.v (Cmd.info "multi" ~doc:"Run multivalued consensus (bit-by-bit reduction)")
    Term.(const multi $ n_arg $ bits $ seed_arg)

(* dot *)
let dot_out n depth file =
  let proto = Racing.make ~n in
  let t = Valency.create proto ~horizon:(30 * n) in
  let inputs = Array.init n (fun p -> Value.int (if p = 1 then 1 else 0)) in
  let dot, stats =
    Valgraph.dot t ~inputs ~pset:(Pset.all n) ~depth ~max_nodes:5_000
  in
  let oc = open_out file in
  output_string oc dot;
  close_out oc;
  Format.printf
    "wrote %s: %d configurations, %d edges (%d bivalent, %d 0-univalent, %d 1-univalent)@."
    file stats.Valgraph.nodes stats.Valgraph.edges stats.Valgraph.bivalent
    stats.Valgraph.univalent0 stats.Valgraph.univalent1;
  0

let dot_cmd =
  let depth = Arg.(value & opt int 10 & info [ "depth" ] ~docv:"D" ~doc:"Exploration depth.") in
  let file =
    Arg.(value & opt string "valency.dot" & info [ "o" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v (Cmd.info "dot" ~doc:"Export the valency-annotated configuration graph (Graphviz)")
    Term.(const dot_out $ n_arg $ depth $ file)

(* cover *)
let cover n alg budget =
  let packed =
    match alg with
    | "peterson" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Peterson.make ~n))
    | "tournament" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Tournament.make ~n))
    | "bakery" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Bakery.make ~n))
    | "tas" -> Some (Ts_mutex.Algorithm.Packed (Ts_mutex.Tas_lock.make ~n))
    | _ -> None
  in
  match packed with
  | None -> prerr_endline ("unknown algorithm: " ^ alg); 1
  | Some (Ts_mutex.Algorithm.Packed a) ->
    Format.printf "%a@." Ts_mutex.Covering_search.pp_report
      (Ts_mutex.Covering_search.search a ~max_configs:budget);
    0

(* trace *)
let trace_run n horizon protocol out metrics deadline max_nodes =
  match protocol_of_name protocol n with
  | Error (`Msg m) -> prerr_endline m; 1
  | Ok (Protocol.Packed proto) ->
    let budget = budget_of ?deadline ?max_nodes () in
    Obs.start_tracing ();
    if metrics then Obs.Metrics.start ();
    (* Capture construction failures so a failed run still exports the
       spans recorded up to the failure point. *)
    let outcome =
      match
        match horizon with
        | Some h ->
          let t = Valency.create ~budget proto ~horizon:h in
          Theorem.theorem1_outcome t
        | None ->
          fst (Theorem.theorem1_escalate ~budget proto ~initial_horizon:(10 * n))
      with
      | o -> Ok o
      | exception Failure msg -> Error msg
    in
    let events = Obs.stop_tracing () in
    let oc = open_out out in
    output_string oc (Obs_export.chrome_trace events);
    close_out oc;
    print_string (Obs_export.phase_table events);
    Format.printf
      "@.wrote %s (%d events); load it in chrome://tracing or https://ui.perfetto.dev@."
      out (List.length events);
    if metrics then
      Format.printf "@.engine metrics:@.%a@." Obs.Metrics.pp_snapshot
        (Obs.Metrics.stop ());
    (match outcome with
     | Ok (Theorem.Complete _) ->
       Format.printf "@.theorem 1 construction complete.@."; 0
     | Ok (Theorem.Partial (stop, _)) ->
       Format.printf
         "@.partial run traced (%a): the spans cover the work done before the budget tripped.@."
         Theorem.pp_stop stop;
       2
     | Error msg -> Format.printf "@.construction failed: %s@." msg; 1)

let trace_cmd =
  let protocol_pos =
    Arg.(value & pos 0 string "racing"
         & info [] ~docv:"PROTOCOL"
             ~doc:"Protocol to trace (same names as --protocol elsewhere).")
  in
  let out =
    Arg.(value & opt string "trace.json"
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Chrome trace_event JSON output file.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run the Theorem-1 adversary with span tracing armed and export \
             the phase breakdown plus a Chrome/Perfetto trace")
    Term.(const trace_run $ n_arg $ horizon_arg $ protocol_pos $ out
          $ metrics_arg $ deadline_arg $ max_nodes_arg)

(* analyze *)
let analyze all protocol json domains =
  let module A = Ts_analysis.Analyze in
  let pr_json j =
    print_endline (Ts_analysis.Json.to_string_pretty j)
  in
  if all then begin
    let o = A.analyze_all ~domains () in
    if json then pr_json (A.overall_to_json o)
    else Format.printf "%a@." A.pp_overall o;
    if o.A.ok then 0 else 1
  end
  else
    match protocol with
    | None ->
      prerr_endline "analyze: pass --all or --protocol NAME";
      2
    | Some name ->
      (match Ts_analysis.Registry.find name with
       | None ->
         Printf.eprintf "analyze: unknown protocol %s (known: %s)\n" name
           (String.concat ", " (Ts_analysis.Registry.names ()));
         2
       | Some entry ->
         let r = A.analyze ~domains entry in
         if json then pr_json (A.report_to_json r)
         else Format.printf "%a@." A.pp_report r;
         (* single-protocol mode gates on the protocol itself: flagged means
            defective, whatever the registry expected *)
         if r.A.flagged then 1 else 0)

let analyze_cmd =
  let all =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"Analyze every registered protocol and certify the parallel \
                   engine race-free (the CI gate).")
  in
  let protocol =
    Arg.(value & opt (some string) None
         & info [ "protocol" ] ~docv:"NAME" ~doc:"Analyze a single registered protocol.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.") in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the static analyzers: footprint lint, determinism checker, \
             bounded property pass, engine race detector")
    Term.(const analyze $ all $ protocol $ json $ domains_arg)

let cover_cmd =
  let alg =
    Arg.(value & opt string "peterson" & info [ "alg" ] ~docv:"ALG" ~doc:"peterson, bakery, tournament or tas.")
  in
  let budget = Arg.(value & opt int 100_000 & info [ "budget" ] ~doc:"Configuration cap.") in
  Cmd.v (Cmd.info "cover" ~doc:"Search a lock's state space for covering configurations (BL93)")
    Term.(const cover $ n_arg $ alg $ budget)

let () =
  let doc = "executable reproduction of 'A Tight Space Bound for Consensus'" in
  let info = Cmd.info "tightspace" ~version:"1.0.0" ~doc in
  (* Last-resort guard: engine exceptions that slip past a subcommand must
     surface as an actionable message and a nonzero exit, never as a raw
     backtrace. *)
  let code =
    try
      Cmd.eval'
        (Cmd.group info
           [
             witness_cmd; check_cmd; resilient_cmd; jtt_cmd; mutex_cmd;
             encode_cmd; elect_cmd; multicore_cmd; kset_cmd; multi_cmd;
             dot_cmd; cover_cmd; analyze_cmd; trace_cmd;
           ])
    with
    | Valency.Horizon_exceeded msg ->
      Format.eprintf
        "tightspace: oracle horizon too small: %s@.hint: raise --horizon (or drop it to let the engine escalate).@."
        msg;
      3
    | Budget.Exhausted b ->
      Format.eprintf
        "tightspace: resource budget tripped (%a).@.hint: raise --deadline / --max-nodes and rerun.@."
        Budget.pp_breach b;
      3
    | Invalid_argument msg ->
      Format.eprintf
        "tightspace: invalid arguments: %s@.hint: check -n, --t, --k and the chosen --protocol fit together.@."
        msg;
      2
  in
  exit code
